// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VII). Each benchmark regenerates its figure at a reduced
// scale (bench.Quick) so `go test -bench=.` completes in minutes; run
// `go run ./cmd/experiments -all` for the full 13-workload matrix, and
// see EXPERIMENTS.md for recorded paper-vs-measured values.
//
// The interesting output is the custom metrics (speedup-x, hit rates),
// not ns/op: these are macro-benchmarks of whole simulations.
package ndpext_test

import (
	"os"
	"testing"

	"ndpext/internal/bench"
)

// benchOpts picks the experiment scale: quick by default, the full paper
// matrix when NDPEXT_BENCH_FULL=1.
func benchOpts() bench.Options {
	if os.Getenv("NDPEXT_BENCH_FULL") == "1" {
		return bench.Default()
	}
	o := bench.Quick()
	o.AccessesPerCore = 6000
	return o
}

func BenchmarkFig2LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig4bMaxflowAssign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, times := bench.Fig4b()
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(float64(times[512].Microseconds()), "us-at-512-streams")
		}
	}
}

func BenchmarkFig5aOverallHBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, geo, vsNexus, err := bench.Fig5(false, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(vsNexus, "ndpext-vs-nexus-x")
			b.ReportMetric(geo["NDPExt"], "ndpext-vs-host-x")
		}
	}
}

func BenchmarkFig5bOverallHMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, _, vsNexus, err := bench.Fig5(true, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(vsNexus, "ndpext-vs-nexus-x")
		}
	}
}

func BenchmarkFig6Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, ratio, err := bench.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(ratio, "nexus-over-ndpext-energy-x")
		}
	}
}

func BenchmarkFig7InterconnectMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig8aCoreScaling(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = opt.Workloads[:2] // two workloads x six machines
	for i := 0; i < b.N; i++ {
		tbl, _, err := bench.Fig8a(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig8bCXLLatency(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = opt.Workloads[:2]
	for i := 0; i < b.N; i++ {
		tbl, sp, err := bench.Fig8b(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp[400]/sp[50], "slow-vs-fast-link-gain")
		}
	}
}

func BenchmarkFig9aAssociativity(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"pr"} // graphs benefit the most (paper)
	for i := 0; i < b.N; i++ {
		tbl, sp, err := bench.Fig9a(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp[64], "64way-vs-direct-x")
		}
	}
}

func BenchmarkFig9bBlockSize(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"mv", "hotspot"}
	for i := 0; i < b.N; i++ {
		tbl, _, err := bench.Fig9b(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig9cAffineCap(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"mv"}
	for i := 0; i < b.N; i++ {
		tbl, sp, err := bench.Fig9c(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp[1<<20], "unrestricted-vs-default-x")
		}
	}
}

func BenchmarkFig9dSamplerSets(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"recsys"}
	for i := 0; i < b.N; i++ {
		tbl, _, err := bench.Fig9d(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig9eReconfigMethod(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"mv", "pr"} // the paper's highlighted pair
	for i := 0; i < b.N; i++ {
		tbl, _, err := bench.Fig9e(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkFig9fReconfigInterval(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"pr"}
	for i := 0; i < b.N; i++ {
		tbl, _, err := bench.Fig9f(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkSecVDConsistentHash(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = opt.Workloads[:2]
	for i := 0; i < b.N; i++ {
		tbl, sp, inv, err := bench.SecVD(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp, "speedup-x")
			b.ReportMetric(100*inv, "invalidation-reduction-pct")
		}
	}
}

func BenchmarkMetadataHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := bench.MetaHitRates(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// Beyond-paper ablations: the design alternatives the paper discusses but
// does not evaluate (§III-A attach technologies, §IV-C way prediction).

func BenchmarkAblationExtAttach(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = opt.Workloads[:2]
	for i := 0; i < b.N; i++ {
		tbl, sp, err := bench.AblationExtAttach(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp["dimm"], "dimm-vs-cxl-x")
			b.ReportMetric(sp["host-relay"], "hostrelay-vs-cxl-x")
		}
	}
}

func BenchmarkAblationWayPredict(b *testing.B) {
	opt := benchOpts()
	opt.Workloads = []string{"pr", "recsys"}
	for i := 0; i < b.N; i++ {
		tbl, sp, err := bench.AblationWayPredict(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(sp["4-way way-predicted"], "waypred-vs-direct-x")
		}
	}
}

func BenchmarkFaultSweep(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl, err := bench.FaultSweep(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

func BenchmarkAdaptSweep(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl, metrics, err := bench.AdaptSweep(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
			b.ReportMetric(metrics["mab_vs_best_fixed"], "mab-vs-best-fixed")
		}
	}
}
