package system

import (
	"math/rand/v2"
	"testing"

	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// Metamorphic invariant tests: properties that must hold for ANY
// configuration, so a hot-path optimization that silently perturbs the
// accounting trips them even on configurations the golden suite does not
// pin. They complement internal/golden (exact values on a fixed matrix)
// with relations (conservation laws, proportionality) on a randomized
// matrix.

// levelCounter tallies how many accesses each pipeline level served.
type levelCounter struct {
	total    uint64
	byServed [telemetry.NumLevels]uint64
}

func (c *levelCounter) Record(ev *telemetry.Event) {
	c.total++
	c.byServed[ev.Served]++
}

// traceFor generates a trace for the small 8-core machine.
func traceFor(t *testing.T, name string, seed uint64, sc workloads.Scale) *workloads.Trace {
	t.Helper()
	gen, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := gen(8, seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// checkConservation asserts the access accounting conservation laws on a
// finished run observed through probe counts:
//
//	probe events        == Result.Accesses   (every access is observed)
//	served at the core  == L1 hits
//	cache + extended    == post-L1 accesses  (nothing vanishes, nothing is
//	                                          double-served)
//	Result.CacheMisses  <= served-extended   (bypass/redirect accesses go
//	                                          extended without a miss)
func checkConservation(t *testing.T, label string, res *Result, lc *levelCounter) {
	t.Helper()
	if lc.total != res.Accesses {
		t.Errorf("%s: probe saw %d accesses, Result.Accesses = %d", label, lc.total, res.Accesses)
	}
	if got := lc.byServed[telemetry.LevelCore]; got != res.L1Hits {
		t.Errorf("%s: served-at-core %d != L1Hits %d", label, got, res.L1Hits)
	}
	postL1 := res.Accesses - res.L1Hits
	cache := lc.byServed[telemetry.LevelCacheDRAM]
	ext := lc.byServed[telemetry.LevelExtended]
	if cache+ext != postL1 {
		t.Errorf("%s: cache-served %d + extended-served %d != post-L1 %d",
			label, cache, ext, postL1)
	}
	if res.CacheMisses > ext {
		t.Errorf("%s: CacheMisses %d > served-extended %d", label, res.CacheMisses, ext)
	}
	if res.CacheHits+res.CacheMisses > postL1 {
		t.Errorf("%s: hits %d + misses %d > post-L1 accesses %d",
			label, res.CacheHits, res.CacheMisses, postL1)
	}
}

// checkEnergy asserts the energy breakdown is a true decomposition: the
// total equals the explicit sum of every component (guards against a new
// component being added but dropped from Total) and no component is
// negative.
func checkEnergy(t *testing.T, label string, res *Result) {
	t.Helper()
	e := res.Energy
	sum := e.StaticPJ + e.NDPDramPJ + e.ExtDramPJ + e.NoCPJ + e.CXLLinkPJ + e.SRAMPJ
	if got := e.Total(); got != sum {
		t.Errorf("%s: Energy.Total() = %g, component sum = %g", label, got, sum)
	}
	for name, v := range map[string]float64{
		"static": e.StaticPJ, "ndpDram": e.NDPDramPJ, "extDram": e.ExtDramPJ,
		"noc": e.NoCPJ, "cxl": e.CXLLinkPJ, "sram": e.SRAMPJ,
	} {
		if v < 0 {
			t.Errorf("%s: negative %s energy %g", label, name, v)
		}
	}
	// The Host baseline carries no energy model (it is the normalization
	// denominator); for NDP designs a finished run must burn static power.
	if res.Time > 0 && e.Total() > 0 && e.StaticPJ <= 0 {
		t.Errorf("%s: run took %v but static energy is %g", label, res.Time, e.StaticPJ)
	}
}

// TestMetamorphicAccessScaling doubles a workload's access budget and
// demands the served-access counters scale proportionally: the trace
// generator soft-bounds per-core length, so the total must land within a
// tight band of 2x, and the conservation laws must hold at both scales.
func TestMetamorphicAccessScaling(t *testing.T) {
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	sc.AccessesPerCore = 2000
	sc2 := sc
	sc2.AccessesPerCore = 4000

	for _, wl := range []string{"pr", "mv", "backprop"} {
		run := func(s workloads.Scale) (*Result, *levelCounter) {
			t.Helper()
			lc := &levelCounter{}
			cfg := smallConfig(NDPExt)
			cfg.Probe = lc
			res, err := Run(cfg, traceFor(t, wl, 42, s))
			if err != nil {
				t.Fatalf("%s: %v", wl, err)
			}
			return res, lc
		}
		r1, lc1 := run(sc)
		r2, lc2 := run(sc2)
		checkConservation(t, wl+"/1x", r1, lc1)
		checkConservation(t, wl+"/2x", r2, lc2)

		ratio := float64(r2.Accesses) / float64(r1.Accesses)
		if ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: doubling AccessesPerCore scaled accesses %d -> %d (ratio %.2f, want ~2)",
				wl, r1.Accesses, r2.Accesses, ratio)
		}
		// The longer trace is a superset of work: it can never serve
		// FEWER post-L1 accesses (for cache-friendly kernels the extra
		// accesses may all hit L1, so equality is legitimate).
		post1 := r1.Accesses - r1.L1Hits
		post2 := r2.Accesses - r2.L1Hits
		if post2 < post1 {
			t.Errorf("%s: post-L1 accesses shrank with a longer trace (%d -> %d)", wl, post1, post2)
		}
	}
}

// TestMetamorphicZeroCapacityDegradesToExtended starves the stream cache
// down to a single row per unit: with effectively no cache capacity the
// design must degrade to the extended-memory path, not invent hits.
func TestMetamorphicZeroCapacityDegradesToExtended(t *testing.T) {
	tr := tinyTrace(t, "pr")

	starved := smallConfig(NDPExt)
	starved.UnitRows = 1 // one 2 kB row per unit: effectively zero capacity
	starved.Sampler.MaxBytes = 8 * starved.UnitCacheBytes()
	lcS := &levelCounter{}
	starved.Probe = lcS
	resS, err := Run(starved, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "starved", resS, lcS)

	healthy := smallConfig(NDPExt)
	lcH := &levelCounter{}
	healthy.Probe = lcH
	resH, err := Run(healthy, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "healthy", resH, lcH)

	// Starving capacity must push traffic to extended memory, never pull
	// it: the starved run sends strictly more accesses off-device and
	// hits strictly less often than the healthy run.
	extS := lcS.byServed[telemetry.LevelExtended]
	extH := lcH.byServed[telemetry.LevelExtended]
	if extH >= extS {
		t.Errorf("starved cache sent %d accesses to extended memory, healthy sent %d (want starved > healthy)", extS, extH)
	}
	if resH.CacheHitRate() <= resS.CacheHitRate() {
		t.Errorf("healthy hit rate %.3f not above starved %.3f",
			resH.CacheHitRate(), resS.CacheHitRate())
	}
}

// TestMetamorphicBypassAllExtended runs a trace whose accesses belong to
// no annotated stream: with nothing for the stream cache to hold, every
// post-L1 access must bypass to extended memory and the cache counters
// must stay at zero — the limiting case of the starvation test above.
func TestMetamorphicBypassAllExtended(t *testing.T) {
	cfg := smallConfig(NDPExt)
	lc := &levelCounter{}
	cfg.Probe = lc

	cores := cfg.NumUnits()
	tr := &workloads.Trace{Name: "bypass", Table: stream.NewTable(), PerCore: make([][]workloads.Access, cores)}
	rng := rand.New(rand.NewPCG(9, 9))
	for c := 0; c < cores; c++ {
		accs := make([]workloads.Access, 2000)
		for i := range accs {
			// A wide random address range defeats the tiny L1 so most
			// accesses actually exercise the bypass path.
			accs[i] = workloads.Access{Addr: rng.Uint64N(1 << 30), Gap: uint8(i % 7)}
		}
		tr.PerCore[c] = accs
	}

	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "bypass", res, lc)
	postL1 := res.Accesses - res.L1Hits
	if ext := lc.byServed[telemetry.LevelExtended]; ext != postL1 {
		t.Errorf("served-extended %d != post-L1 %d: bypass accesses leaked into the cache path", ext, postL1)
	}
	if res.CacheHits != 0 {
		t.Errorf("stream cache counted %d hits on a stream-free trace", res.CacheHits)
	}
	// Result.CacheMisses counts extended-memory-served requests (misses,
	// no-space, and bypasses — Fig. 7's dot metric), so here it must
	// equal the whole post-L1 load.
	if res.CacheMisses != postL1 {
		t.Errorf("CacheMisses = %d, want %d (every post-L1 access bypasses)", res.CacheMisses, postL1)
	}
}

// TestMetamorphicRandomConfigs runs 20 seeded random configurations
// across designs, workloads, and machine knobs and asserts the
// conservation and energy-decomposition invariants on every one.
func TestMetamorphicRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 805))
	designs := NDPDesigns()
	wls := []string{"pr", "mv", "backprop", "hotspot", "bfs"}
	for i := 0; i < 20; i++ {
		d := designs[rng.IntN(len(designs))]
		wl := wls[rng.IntN(len(wls))]
		cfg := smallConfig(d)
		cfg.UnitRows = uint32(16 << rng.IntN(3)) // 16..64 rows per unit
		cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
		cfg.EpochCycles = int64(30_000 + rng.IntN(4)*20_000)
		cfg.ConsistentHash = rng.IntN(2) == 0
		cfg.L1Bytes = 1024 << rng.IntN(2)
		cfg.Seed = rng.Uint64()

		sc := workloads.TinyScale()
		sc.CoresPerProc = 4
		sc.AccessesPerCore = 1500
		lc := &levelCounter{}
		cfg.Probe = lc
		res, err := Run(cfg, traceFor(t, wl, rng.Uint64(), sc))
		if err != nil {
			t.Fatalf("config %d (%v/%s): %v", i, d, wl, err)
		}
		label := res.Design.String() + "/" + wl
		checkConservation(t, label, res, lc)
		checkEnergy(t, label, res)
		if res.Accesses == 0 {
			t.Errorf("%s: run served no accesses", label)
		}
		if res.Time <= 0 {
			t.Errorf("%s: non-positive makespan %v", label, res.Time)
		}
	}
}

// TestMetamorphicHostConservation applies the same conservation laws to
// the host baseline, whose path (LLC instead of stream cache) shares the
// telemetry plumbing but none of the NDP code.
func TestMetamorphicHostConservation(t *testing.T) {
	cfg := smallConfig(Host)
	lc := &levelCounter{}
	cfg.Probe = lc
	res, err := Run(cfg, tinyTrace(t, "mv"))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, "host", res, lc)
	checkEnergy(t, "host", res)
}
