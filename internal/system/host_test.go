package system

import (
	"testing"

	"ndpext/internal/workloads"
)

func TestHostFoldsWideTraces(t *testing.T) {
	// A 8-core trace on a 2-core host: per-core order must be preserved
	// and every access simulated.
	gen, _ := workloads.Get("mv")
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	tr, err := gen(8, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(Host)
	cfg.HostCores = 2
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != uint64(tr.TotalAccesses()) {
		t.Fatalf("folded host simulated %d of %d accesses", res.Accesses, tr.TotalAccesses())
	}
}

func TestHostFewerCoresIsSlower(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	times := map[int]int64{}
	for _, cores := range []int{2, 8} {
		cfg := smallConfig(Host)
		cfg.HostCores = cores
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		times[cores] = int64(res.Time)
	}
	if times[2] <= times[8] {
		t.Fatalf("2-core host (%d) not slower than 8-core host (%d)", times[2], times[8])
	}
}

func TestHostLLCSizeMatters(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	small := smallConfig(Host)
	small.HostLLCBytes = 4 << 10
	big := smallConfig(Host)
	big.HostLLCBytes = 512 << 10
	rs, err := Run(small, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if rb.CacheHitRate() <= rs.CacheHitRate() {
		t.Fatalf("bigger LLC hit rate %.3f not above smaller %.3f",
			rb.CacheHitRate(), rs.CacheHitRate())
	}
	if rb.Time >= rs.Time {
		t.Fatalf("bigger LLC (%v) not faster than smaller (%v)", rb.Time, rs.Time)
	}
}

func TestHostEnergyIsZeroByDesign(t *testing.T) {
	// The host baseline only normalizes performance (Fig. 5); the paper's
	// energy comparison (Fig. 6) is NDPExt vs Nexus, so the host model
	// does not account energy.
	tr := tinyTrace(t, "pr")
	res, err := Run(smallConfig(Host), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() != 0 {
		t.Fatalf("host accounted energy %v; it is a performance-only baseline", res.Energy)
	}
}
