// Package system assembles the full NDP-with-extended-memory machine of
// the paper's Table II and runs trace-driven, cycle-approximate
// simulations of it under the different cache management designs: NDPExt
// (the paper's proposal), NDPExt-static, the NUCA baselines (Jigsaw,
// Whirlpool, Nexus, static interleaving), and the non-NDP host processor.
//
// Capacities are scaled down from the paper (configurable via
// CapacityDivisor) so that runs complete in seconds while footprints keep
// the same ratio to cache capacity; timing and energy constants are the
// paper's own.
package system

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ndpext/internal/adapt"
	"ndpext/internal/cxl"
	"ndpext/internal/dram"
	"ndpext/internal/fault"
	"ndpext/internal/noc"
	"ndpext/internal/sampler"
	"ndpext/internal/sim"
	"ndpext/internal/streamcache"
	"ndpext/internal/telemetry"
)

// Design selects the cache management scheme under evaluation.
type Design int

const (
	// NDPExt is the paper's proposal: stream cache + configuration
	// algorithm with per-stream replication.
	NDPExt Design = iota
	// NDPExtStatic is NDPExt without runtime reconfiguration: equal
	// static allocation per stream (§VI).
	NDPExtStatic
	// Nexus, Whirlpool, Jigsaw and StaticInterleave are the cacheline
	// NUCA baselines adapted to the DRAM cache (§VI).
	Nexus
	Whirlpool
	Jigsaw
	StaticInterleave
	// Host is the non-NDP 64-core host processor with a Jigsaw-style
	// LLC and DDR5 main memory, the Fig. 5 normalization baseline.
	Host
	// NDPExtMAB is the adaptive extension (internal/adapt): NDPExt's
	// machinery, but the epoch configuration is chosen by a seeded
	// Thompson-sampling bandit over shadow-evaluated candidate policies.
	// Appended after Host so the earlier designs keep their canonical
	// serialization values.
	NDPExtMAB
)

// String returns the design name used in the paper's figures.
func (d Design) String() string {
	switch d {
	case NDPExt:
		return "NDPExt"
	case NDPExtStatic:
		return "NDPExt-static"
	case Nexus:
		return "Nexus"
	case Whirlpool:
		return "Whirlpool"
	case Jigsaw:
		return "Jigsaw"
	case StaticInterleave:
		return "Static"
	case Host:
		return "Host"
	case NDPExtMAB:
		return "NDPExt-MAB"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// NDPDesigns lists the designs that run on the NDP system, in the order
// the paper's Fig. 5 plots them.
func NDPDesigns() []Design {
	return []Design{StaticInterleave, Jigsaw, Whirlpool, Nexus, NDPExtStatic, NDPExt}
}

// AllDesigns lists every registered design: the Fig. 5 NDP rows, the
// host baseline, and the adaptive extension. This is the design
// universe of ParseDesign and `ndpsim -list-designs`.
func AllDesigns() []Design {
	return append(NDPDesigns(), Host, NDPExtMAB)
}

// DesignNames returns the String names of all registered designs.
func DesignNames() []string {
	ds := AllDesigns()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// UnknownDesignError reports a design name that matched nothing,
// carrying the valid names so callers (the CLI, the serving API's 422
// response) can list them instead of making users guess.
type UnknownDesignError struct {
	Name  string
	Valid []string
}

func (e *UnknownDesignError) Error() string {
	return fmt.Sprintf("system: unknown design %q (valid: %s)", e.Name, strings.Join(e.Valid, ", "))
}

// ParseDesign parses a design by its String name, case-insensitively
// (the form used by the CLI flags and the serving API). An unmatched
// name yields an *UnknownDesignError listing the valid designs.
func ParseDesign(s string) (Design, error) {
	for _, d := range AllDesigns() {
		if strings.EqualFold(d.String(), s) {
			return d, nil
		}
	}
	return 0, &UnknownDesignError{Name: s, Valid: DesignNames()}
}

// ParseReconfigMode parses "full", "partial", or "static".
func ParseReconfigMode(s string) (ReconfigMode, error) {
	switch strings.ToLower(s) {
	case "full":
		return ReconfigFull, nil
	case "partial":
		return ReconfigPartial, nil
	case "static":
		return ReconfigStatic, nil
	default:
		return 0, fmt.Errorf("system: unknown reconfig mode %q", s)
	}
}

// ReconfigMode selects the Fig. 9(e) reconfiguration method.
type ReconfigMode int

const (
	// ReconfigFull reconfigures every epoch (NDPExt's default).
	ReconfigFull ReconfigMode = iota
	// ReconfigPartial reconfigures only during the first PartialEpochs
	// epochs, then freezes.
	ReconfigPartial
	// ReconfigStatic never reconfigures after the initial equal split.
	ReconfigStatic
)

// CapacityDivisor scales the paper's capacities down to model scale:
// per-unit DRAM cache 256 MB -> 256 kB, affine cap 16 MB -> 16 kB,
// host LLC 32 MB -> 32 kB. Footprints in internal/workloads are scaled
// to match, so footprint:cache ratios track the paper's setup.
const CapacityDivisor = 1024

// Config describes one simulated machine.
type Config struct {
	Design Design

	Mem dram.Params // NDP stack memory technology (HBM3 or HMC2)
	NoC noc.Config
	CXL cxl.Config

	CoreFreqMHz float64
	L1Bytes     int
	L1Assoc     int
	L1LineBytes int
	L1LatCycles int64

	UnitRows     uint32 // DRAM cache rows per NDP unit
	BanksPerUnit int

	// NDPExt knobs (Fig. 9 design studies).
	Stream         streamcache.Params
	Sampler        sampler.Config
	EpochCycles    int64
	Reconfig       ReconfigMode
	PartialEpochs  int
	ConsistentHash bool

	SLBLatCycles      int64
	SLBMissPenalty    sim.Time // host remap-table walk + refill
	MetaLatCycles     int64    // baseline metadata-cache lookup
	WriteExceptionLat sim.Time // host exception on first write (§IV-B)

	// Host baseline knobs.
	HostCores    int
	HostLLCBytes int
	HostLLCAssoc int
	HostLLCLat   int64 // cycles
	HostNoCLat   int64 // cycles per LLC access for routing

	CoreStaticMW float64 // per NDP core static power

	// OnEpoch, when set, is called at every epoch boundary with a
	// summary of what the host runtime did -- an observability hook for
	// library users tuning policies. Nil (the default) costs nothing.
	OnEpoch func(EpochInfo)

	// Probe, when set, receives a telemetry.Event for every simulated
	// memory access (core, stream, level served, per-level latency).
	// Wrap with telemetry.Sampled to subsample; nil costs nothing.
	Probe telemetry.Probe

	// DebugReconfig enables per-stream reconfiguration tracing at every
	// epoch boundary, written to DebugWriter. DefaultConfig seeds it
	// from the NDPEXT_DEBUG environment variable.
	DebugReconfig bool
	// DebugWriter receives reconfiguration traces; nil means os.Stdout.
	DebugWriter io.Writer

	// Adapt tunes the NDPExt-MAB design's bandit-driven configurator
	// (arm set, migration model, posterior decay); zero value = the
	// adapt package defaults. Ignored by every other design.
	Adapt adapt.Params
	// BanditSeed seeds the NDPExt-MAB Thompson sampler's RNG substream;
	// 0 falls back to Seed. Part of CanonicalBytes: two runs with
	// different bandit seeds may install different configurations and
	// must never share a cache entry.
	BanditSeed uint64

	// Faults selects the fault models injected into the memory path
	// (see internal/fault). Empty (the default) disables injection and
	// leaves every simulated result bit-identical to a fault-free build.
	Faults fault.Spec
	// FaultSeed seeds the injector's RNG substream; 0 falls back to Seed.
	FaultSeed uint64

	// Watchdog limits. MaxWall aborts a runaway run after that much
	// wall-clock time (inherently nondeterministic: use for protection,
	// not reproducible truncation); MaxCycles aborts deterministically
	// once simulated time passes that many core cycles. Either trip
	// flushes partial results with Result.Truncated set. Zero disables.
	MaxWall   time.Duration
	MaxCycles int64

	Seed uint64
}

// AttachProbe adds p to the configuration's probe chain. Unlike
// assigning Config.Probe directly — which silently replaces whatever
// sink was installed before — AttachProbe composes via
// telemetry.Multi, so a sampled JSONL emitter and a full-rate trace
// recorder (or any number of other sinks) all observe the same run.
// Attaching nil is a no-op.
func (c *Config) AttachProbe(p telemetry.Probe) {
	c.Probe = telemetry.Multi(c.Probe, p)
}

// debugWriter resolves the reconfiguration trace destination.
func (c Config) debugWriter() io.Writer {
	if c.DebugWriter != nil {
		return c.DebugWriter
	}
	return os.Stdout
}

// EpochInfo summarizes one host-runtime epoch for Config.OnEpoch.
type EpochInfo struct {
	Epoch          int
	ActiveStreams  int // streams accessed this epoch
	Reconfigured   bool
	ItemsKept      int // survived reconfiguration in place
	ItemsDropped   int // invalidated by reconfiguration
	SamplerCovered int // streams assigned a sampler for the next epoch

	// NDPExt-MAB fields: the live arm chosen for the next epoch and
	// whether this boundary switched arms (empty/false otherwise).
	Arm         string
	ArmSwitched bool

	// Degraded-mode fields (fault injection).
	Degraded        bool // a vault failure or link degradation was active
	FailedUnits     int  // vaults offline at this boundary
	RemappedStreams int  // streams remapped off failed vaults this epoch

	// Counters is a snapshot of the run's hot-path counters at this
	// boundary — a plain value safe to hand to other goroutines (the
	// serving layer streams it as live progress).
	Counters telemetry.Snapshot
}

// DefaultConfig returns the Table II machine at model scale with the
// given design, HBM3-style NDP memory, and the paper's default NDPExt
// parameters.
func DefaultConfig(d Design) Config {
	rowBytes := 2048
	unitRows := uint32(256 << 10 / rowBytes) // 256 kB per unit at model scale
	sp := streamcache.DefaultParams()
	sp.RowBytes = rowBytes
	sp.AffineCapBytes = 16 << 10 // 16 MB / CapacityDivisor
	unitBytes := int64(unitRows) * int64(rowBytes)
	sc := sampler.DefaultConfig(unitBytes)
	sc.MinBytes = 4 << 10
	// At model scale a stream's footprint can span several units (in the
	// paper one unit's 256 MB dwarfs any stream), so the monitored
	// capacity range must cover multi-unit group sizes.
	sc.MaxBytes = 8 * unitBytes

	return Config{
		Design: d,
		Mem:    dram.HBM3(),
		NoC:    noc.DefaultConfig(),
		CXL:    cxl.DefaultConfig(),

		CoreFreqMHz: 2000,
		L1Bytes:     2048,
		L1Assoc:     4,
		L1LineBytes: 64,
		L1LatCycles: 2,

		UnitRows:     unitRows,
		BanksPerUnit: 8,

		Stream:         sp,
		Sampler:        sc,
		EpochCycles:    600_000, // 50 M cycles, scaled with the capacities
		Reconfig:       ReconfigFull,
		PartialEpochs:  2,
		ConsistentHash: true,

		SLBLatCycles:      2,
		SLBMissPenalty:    sim.FromNS(300),
		MetaLatCycles:     2,
		WriteExceptionLat: sim.Microsecond,

		HostCores:    64,
		HostLLCBytes: 32 << 10, // 32 MB / CapacityDivisor
		HostLLCAssoc: 16,
		HostLLCLat:   9,
		HostNoCLat:   3,

		CoreStaticMW: 15,

		DebugReconfig: os.Getenv("NDPEXT_DEBUG") != "",

		Seed: 1,
	}
}

// HMCConfig is DefaultConfig with HMC2-style stack memory (Fig. 5(b)).
func HMCConfig(d Design) Config {
	c := DefaultConfig(d)
	c.Mem = dram.HMC2()
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.NoC.Validate(); err != nil {
		return err
	}
	if err := c.CXL.Validate(); err != nil {
		return err
	}
	if err := c.Stream.Validate(); err != nil {
		return err
	}
	if err := c.Sampler.Validate(); err != nil {
		return err
	}
	if c.UnitRows == 0 || c.BanksPerUnit <= 0 {
		return fmt.Errorf("system: invalid unit geometry")
	}
	if c.CoreFreqMHz <= 0 {
		return fmt.Errorf("system: invalid core frequency")
	}
	if c.L1Bytes <= 0 || c.L1LineBytes <= 0 || c.L1Assoc <= 0 {
		return fmt.Errorf("system: invalid L1 geometry")
	}
	if c.Stream.RowBytes != c.rowBytes() {
		return fmt.Errorf("system: stream cache row size %d disagrees with %d", c.Stream.RowBytes, c.rowBytes())
	}
	if err := c.Faults.Validate(c.NumUnits()); err != nil {
		return err
	}
	if c.MaxWall < 0 || c.MaxCycles < 0 {
		return fmt.Errorf("system: watchdog limits must be non-negative")
	}
	if c.Design == NDPExtMAB {
		if err := c.Adapt.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// rowBytes is the DRAM cache allocation granule.
func (c Config) rowBytes() int { return c.Stream.RowBytes }

// NumUnits returns the NDP unit (and core) count.
func (c Config) NumUnits() int { return c.NoC.NumUnits() }

// UnitCacheBytes returns the per-unit DRAM cache capacity.
func (c Config) UnitCacheBytes() int64 {
	return int64(c.UnitRows) * int64(c.rowBytes())
}
