package system

import (
	"testing"

	"ndpext/internal/stream"
	"ndpext/internal/workloads"
)

// bypassTrace builds a trace where some accesses fall outside every
// configured stream (the <0.1% case of §IV-C: bypass the DRAM cache and
// go directly to extended memory).
func bypassTrace(t *testing.T, cores int) *workloads.Trace {
	t.Helper()
	b := workloads.NewBuilder("bypass", cores, 400)
	s := b.Indirect(1024, 4)
	tr := b.Build()
	for c := 0; c < cores; c++ {
		var accs []workloads.Access
		for i := 0; i < 300; i++ {
			if i%10 == 0 {
				// An address far outside any stream.
				accs = append(accs, workloads.Access{Addr: 0xF000000000 + uint64(c*64+i), Gap: 1})
			} else {
				accs = append(accs, workloads.Access{Addr: s.Base + uint64(i%1024)*4, Gap: 1})
			}
		}
		tr.PerCore[c] = accs
	}
	return tr
}

func TestBypassAccessesReachExtendedMemory(t *testing.T) {
	tr := bypassTrace(t, 8)
	for _, d := range []Design{NDPExt, Nexus} {
		res, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Accesses != uint64(tr.TotalAccesses()) {
			t.Fatalf("%v: lost accesses", d)
		}
		if res.Breakdown.Extended <= 0 {
			t.Fatalf("%v: bypass accesses never reached extended memory", d)
		}
	}
}

func TestWriteExceptionPathEndToEnd(t *testing.T) {
	// A stream that is read for a while and then written must raise
	// exactly one exception per stream and keep simulating correctly.
	b := workloads.NewBuilder("rw-flip", 8, 600)
	s := b.Indirect(2048, 4)
	for c := 0; c < 8; c++ {
		for i := 0; i < 400; i++ {
			b.Read(c, s, (i*13+c)%2048, 1)
		}
		for i := 0; i < 200; i++ {
			b.Write(c, s, (i*7+c)%2048, 1)
		}
	}
	tr := b.Build()
	res, err := Run(smallConfig(NDPExt), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exceptions != 1 {
		t.Fatalf("exceptions = %d, want exactly 1 (one per stream)", res.Exceptions)
	}
}

func TestAllWorkloadsRunOnNDPExt(t *testing.T) {
	// Integration sweep: every built-in workload simulates end to end on
	// the small machine without error and with sane statistics.
	if testing.Short() {
		t.Skip("integration sweep")
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	for _, name := range workloads.Names() {
		gen, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := gen(8, 7, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := Run(smallConfig(NDPExt), tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Accesses != uint64(tr.TotalAccesses()) {
			t.Fatalf("%s: %d of %d accesses simulated", name, res.Accesses, tr.TotalAccesses())
		}
		if hr := res.CacheHitRate(); hr < 0 || hr > 1 {
			t.Fatalf("%s: hit rate %v", name, hr)
		}
		if res.Time <= 0 || res.Energy.Total() <= 0 {
			t.Fatalf("%s: degenerate result", name)
		}
	}
}

func TestReconfigModesOrdering(t *testing.T) {
	// Full reconfiguration must at least not be catastrophically worse
	// than never reconfiguring on a phase-changing workload, and the
	// machinery must produce different configurations.
	tr := tinyTrace(t, "backprop")
	times := map[ReconfigMode]int64{}
	for _, m := range []ReconfigMode{ReconfigStatic, ReconfigFull} {
		cfg := smallConfig(NDPExt)
		cfg.Reconfig = m
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		times[m] = int64(res.Time)
	}
	if times[ReconfigFull] > times[ReconfigStatic]*3 {
		t.Fatalf("full reconfig (%d) catastrophically slower than static (%d)",
			times[ReconfigFull], times[ReconfigStatic])
	}
}

func TestWayPredictEndToEnd(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	cfg := smallConfig(NDPExt)
	cfg.Stream.IndirectWays = 4
	cfg.Stream.WayPredict = true
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ideal := smallConfig(NDPExt)
	ideal.Stream.IndirectWays = 4
	resIdeal, err := Run(ideal, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Way prediction pays extra DRAM accesses per misprediction; at tiny
	// scale scheduling butterflies dominate exact ordering, so just
	// require the penalty to stay bounded.
	if res.Time > resIdeal.Time*2 {
		t.Fatalf("way-predicted (%v) wildly slower than idealized (%v)", res.Time, resIdeal.Time)
	}
}

func TestStreamReportsPopulated(t *testing.T) {
	tr := tinyTrace(t, "mv")
	res, err := Run(smallConfig(NDPExt), tr)
	if err != nil {
		t.Fatal(err)
	}
	reports := res.StreamReports()
	if len(reports) == 0 {
		t.Fatal("no stream reports")
	}
	var withTraffic int
	for _, sr := range reports {
		if sr.Hits+sr.Misses > 0 {
			withTraffic++
		}
		if sr.SID == stream.NoStream {
			t.Fatal("reserved sid in reports")
		}
	}
	if withTraffic == 0 {
		t.Fatal("no stream saw traffic")
	}
}

func TestOnEpochHook(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	cfg := smallConfig(NDPExt)
	var infos []EpochInfo
	cfg.OnEpoch = func(e EpochInfo) { infos = append(infos, e) }
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("hook never fired")
	}
	if infos[0].Epoch != 1 {
		t.Fatalf("first epoch = %d", infos[0].Epoch)
	}
	reconfigs := 0
	for _, e := range infos {
		if e.Reconfigured {
			reconfigs++
		}
		if e.ActiveStreams < 0 {
			t.Fatal("negative stream count")
		}
	}
	if reconfigs != res.Reconfigs {
		t.Fatalf("hook saw %d reconfigs, result says %d", reconfigs, res.Reconfigs)
	}
	// The hook must not change the simulation outcome.
	plain := smallConfig(NDPExt)
	ref, err := Run(plain, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Time != res.Time {
		t.Fatalf("observer changed the simulation: %v vs %v", res.Time, ref.Time)
	}
}
