package system

import (
	"ndpext/internal/nuca"
	"ndpext/internal/sim"
	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// nucaPath is the baseline memory path: metadata cache -> (DRAM metadata
// at the home unit on miss) -> data home -> extended memory on miss.
type nucaPath struct {
	*pathDeps
	nc *nuca.Controller
}

// Access implements MemPath.
func (p *nucaPath) Access(t sim.Time, core int, a workloads.Access) (sim.Time, telemetry.Level, stream.ID) {
	tel := p.tel
	lk := p.nc.Lookup(core, a.Addr, a.Write)

	m := t
	t += p.clock.Cycles(p.cfg.MetaLatCycles)
	tel.Add(telemetry.LevelMeta, t-m)
	if lk.SID != stream.NoStream {
		p.observe(core, lk.SID, a.Addr/uint64(64))
	}

	if p.inj != nil && p.devs[lk.Home].Offline(t) {
		// Dead home vault (fault injection): fall back to extended
		// memory and skip the fill, as in streamPath.
		p.inj.RecordRedirect()
		return p.ext.access(t, core, a.Addr, max(lk.FetchBytes, 64), a.Write),
			telemetry.LevelExtended, lk.SID
	}

	if !lk.MetaHit {
		// Walk to the home unit for the DRAM metadata access.
		tr1 := p.net.Route(t, core, lk.Home, 32)
		tel.Add(telemetry.LevelIntraNoC, tr1.IntraDelay)
		tel.Add(telemetry.LevelInterNoC, tr1.InterDelay)
		t = tr1.Arrive
		m = t
		t, _ = p.devs[lk.Home].Access(t, lk.MetaDRAMRow, 64, false)
		tel.Add(telemetry.LevelMeta, t-m)
		served := telemetry.LevelCacheDRAM
		if lk.Hit {
			d := t
			t, _ = p.devs[lk.Home].Access(t, lk.HomeRow, 64, a.Write)
			tel.Add(telemetry.LevelCacheDRAM, t-d)
			tel.CacheHits++
		} else {
			served = telemetry.LevelExtended
			tel.CacheMisses++
			t = p.ext.access(t, lk.Home, a.Addr, lk.FetchBytes, false)
			p.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
			if lk.WritebackBytes > 0 {
				p.ext.writeback(t, lk.Home, a.Addr, lk.WritebackBytes)
			}
		}
		tr2 := p.net.Route(t, lk.Home, core, 96)
		tel.Add(telemetry.LevelIntraNoC, tr2.IntraDelay)
		tel.Add(telemetry.LevelInterNoC, tr2.InterDelay)
		return tr2.Arrive, served, lk.SID
	}

	// Metadata hit at the requester: the location and tag are known.
	if lk.Hit {
		tr1 := p.net.Route(t, core, lk.Home, 32)
		tel.Add(telemetry.LevelIntraNoC, tr1.IntraDelay)
		tel.Add(telemetry.LevelInterNoC, tr1.InterDelay)
		t = tr1.Arrive
		d := t
		t, _ = p.devs[lk.Home].Access(t, lk.HomeRow, 64, a.Write)
		tel.Add(telemetry.LevelCacheDRAM, t-d)
		tel.CacheHits++
		tr2 := p.net.Route(t, lk.Home, core, 96)
		tel.Add(telemetry.LevelIntraNoC, tr2.IntraDelay)
		tel.Add(telemetry.LevelInterNoC, tr2.InterDelay)
		return tr2.Arrive, telemetry.LevelCacheDRAM, lk.SID
	}
	tel.CacheMisses++
	t = p.ext.access(t, core, a.Addr, lk.FetchBytes, a.Write)
	p.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
	if lk.WritebackBytes > 0 {
		p.ext.writeback(t, lk.Home, a.Addr, lk.WritebackBytes)
	}
	return t, telemetry.LevelExtended, lk.SID
}
