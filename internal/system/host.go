package system

import (
	"context"
	"time"

	"ndpext/internal/cache"
	"ndpext/internal/dram"
	"ndpext/internal/sim"
	"ndpext/internal/stats"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// runHost simulates the non-NDP baseline of §VI: a 64-core host processor
// with private L1s, a shared Jigsaw-style LLC (modelled as a shared
// set-associative cache with bank + routing latency), and DDR5 main
// memory. Traces generated for the NDP core count are folded onto the
// host cores, preserving per-core access order. Accounting flows through
// the same telemetry counters as the NDP designs. Cancellation follows
// RunContext's contract: partial results plus ctx's error.
func runHost(ctx context.Context, cfg Config, in simInput) (*Result, error) {
	nc := cfg.HostCores
	if nc <= 0 {
		nc = 64
	}
	clock := sim.NewClock(cfg.CoreFreqMHz)
	l1s := make([]*cache.Cache, nc)
	for i := range l1s {
		l1, err := cache.NewChecked(cfg.L1Bytes, cfg.L1LineBytes, cfg.L1Assoc)
		if err != nil {
			return nil, err
		}
		l1s[i] = l1
	}
	llc, err := cache.NewChecked(cfg.HostLLCBytes, cfg.L1LineBytes, cfg.HostLLCAssoc)
	if err != nil {
		return nil, err
	}
	// DDR5 main memory: same channel organization as the extended
	// memory, minus the CXL link.
	chans := make([]*dram.Device, cfg.CXL.Channels)
	for i := range chans {
		chans[i] = dram.NewDevice(dram.DDR5(), cfg.CXL.BanksPerChannel)
	}
	rowBytes := uint64(dram.DDR5().RowBytes)

	// Fold the trace onto the host cores: host core hc plays the source
	// cores congruent to hc mod nc, in core order, each to exhaustion —
	// exactly the concatenation the materialized path used to build
	// up front, but pulled incrementally so a streaming source replays
	// with bounded memory.
	cur := make([]int, nc)
	for hc := range cur {
		cur[hc] = hc
	}
	next := func(hc int) (workloads.Access, bool) {
		for cur[hc] < in.cores {
			if a, ok := in.next(cur[hc]); ok {
				return a, true
			}
			cur[hc] += nc
		}
		return workloads.Access{}, false
	}

	res := &Result{Design: Host, Workload: in.name}
	var tel telemetry.Counters
	probe := cfg.Probe
	var q sim.EventQueue
	pending := make([]workloads.Access, nc)
	for hc := 0; hc < nc; hc++ {
		if a, ok := next(hc); ok {
			pending[hc] = a
			q.Push(0, hc)
		}
	}
	// Watchdog limits (same semantics as ndpSim.loop).
	var cycleBudget sim.Time
	if cfg.MaxCycles > 0 {
		cycleBudget = clock.Cycles(cfg.MaxCycles)
	}
	var deadline time.Time
	if cfg.MaxWall > 0 {
		deadline = time.Now().Add(cfg.MaxWall)
	}
	var end sim.Time
	for n := 0; q.Len() > 0; n++ {
		ev := q.Pop()
		if cycleBudget > 0 && ev.When >= cycleBudget {
			res.Truncated, res.TruncateReason = true, "cycle budget exceeded"
			break
		}
		if n&1023 == 0 {
			if cfg.MaxWall > 0 && !time.Now().Before(deadline) {
				res.Truncated, res.TruncateReason = true, "wall-clock limit exceeded"
				break
			}
			if ctx.Err() != nil {
				res.Truncated, res.TruncateReason = true, truncatedCanceled
				break
			}
		}
		c := ev.ID
		a := pending[c]
		var snap [telemetry.NumLevels]sim.Time
		if probe != nil {
			snap = tel.Levels
		}
		tel.Accesses++
		served := telemetry.LevelCore

		t := ev.When + clock.Cycles(int64(a.Gap)) + clock.Cycles(cfg.L1LatCycles)
		if hit, _, _ := l1s[c].Access(a.Addr, a.Write); hit {
			tel.Add(telemetry.LevelCore, t-ev.When)
			tel.L1Hits++
		} else {
			tel.Add(telemetry.LevelCore, t-ev.When)
			// Shared LLC: bank latency + NUCA routing.
			l := t
			t += clock.Cycles(cfg.HostLLCLat + cfg.HostNoCLat)
			hit, victim, wb := llc.Access(a.Addr, a.Write)
			tel.Add(telemetry.LevelCacheDRAM, t-l)
			if hit {
				served = telemetry.LevelCacheDRAM
				tel.CacheHits++
			} else {
				served = telemetry.LevelExtended
				tel.CacheMisses++
				globalRow := a.Addr / rowBytes
				ch := int(globalRow % uint64(len(chans)))
				row := int64(globalRow / uint64(len(chans)))
				e := t
				t, _ = chans[ch].Access(t, row, cfg.L1LineBytes, false)
				tel.Add(telemetry.LevelExtended, t-e)
				if wb {
					vRow := victim / rowBytes
					vch := int(vRow % uint64(len(chans)))
					chans[vch].Access(t, int64(vRow/uint64(len(chans))), cfg.L1LineBytes, true)
				}
			}
		}

		if probe != nil {
			pev := telemetry.Event{
				Seq:    tel.Accesses - 1,
				Core:   c,
				SID:    -1,
				Addr:   a.Addr,
				Write:  a.Write,
				Gap:    a.Gap,
				Served: served,
				Start:  ev.When,
				End:    t,
			}
			for l := telemetry.Level(0); l < telemetry.NumLevels; l++ {
				pev.Levels[l] = tel.Levels[l] - snap[l]
			}
			probe.Record(&pev)
		}

		if t > end {
			end = t
		}
		if na, ok := next(c); ok {
			pending[c] = na
			q.Push(t, c)
		}
	}
	res.Time = end
	res.Accesses = tel.Accesses
	res.L1Hits = tel.L1Hits
	res.CacheHits = tel.CacheHits
	res.CacheMisses = tel.CacheMisses
	res.Breakdown = stats.Breakdown{
		Core:      tel.Levels[telemetry.LevelCore],
		Meta:      tel.Levels[telemetry.LevelMeta],
		IntraNoC:  tel.Levels[telemetry.LevelIntraNoC],
		InterNoC:  tel.Levels[telemetry.LevelInterNoC],
		CacheDRAM: tel.Levels[telemetry.LevelCacheDRAM],
		Extended:  tel.Levels[telemetry.LevelExtended],
		Accesses:  tel.Accesses,
	}
	if res.Truncated && res.TruncateReason == truncatedCanceled {
		return res, context.Cause(ctx)
	}
	return res, nil
}
