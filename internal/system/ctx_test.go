package system

import (
	"context"
	"errors"
	"testing"

	"ndpext/internal/telemetry"
)

// TestRunContextCancelMidRun cancels from an epoch-boundary hook and
// expects a partial, truncated result alongside ctx's error.
func TestRunContextCancelMidRun(t *testing.T) {
	tr := tinyTrace(t, "pr")
	full, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallConfig(NDPExt)
	var epochs int
	var lastSnap uint64
	cfg.OnEpoch = func(ei EpochInfo) {
		epochs++
		lastSnap = ei.Counters.Accesses
		cancel()
	}
	res, err := RunContext(ctx, cfg, tr.Clone())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("RunContext returned no partial result on cancellation")
	}
	if !res.Truncated || res.TruncateReason != "canceled" {
		t.Fatalf("partial result not marked canceled: truncated=%v reason=%q",
			res.Truncated, res.TruncateReason)
	}
	if epochs == 0 {
		t.Fatal("OnEpoch hook never fired; cancellation untested")
	}
	if res.Accesses == 0 || res.Accesses >= full.Accesses {
		t.Fatalf("partial accesses = %d, want in (0, %d)", res.Accesses, full.Accesses)
	}
	// The boundary snapshot must be coherent with the final counters.
	if lastSnap == 0 || lastSnap > res.Accesses {
		t.Fatalf("epoch snapshot accesses = %d, final = %d", lastSnap, res.Accesses)
	}
}

// TestRunContextPreCanceled returns immediately with no result.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, smallConfig(NDPExt), tinyTrace(t, "pr"))
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", res, err)
	}
}

// TestRunContextCancelHost exercises the host baseline's check point.
func TestRunContextCancelHost(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg := smallConfig(Host)
	tr := tinyTrace(t, "pr")
	// Cancel from a probe after a few thousand accesses so the amortized
	// n&1023 check point trips mid-run.
	var seen int
	cfg.Probe = telemetry.FuncProbe(func(*telemetry.Event) {
		if seen++; seen == 3000 {
			cancel()
		}
	})
	res, err := RunContext(ctx, cfg, tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("host RunContext error = %v, want context.Canceled", err)
	}
	if res == nil || !res.Truncated || res.TruncateReason != "canceled" {
		t.Fatalf("host partial result = %+v", res)
	}
	if res.Accesses == 0 || res.Accesses >= uint64(tr.TotalAccesses()) {
		t.Fatalf("host partial accesses = %d of %d", res.Accesses, tr.TotalAccesses())
	}
}
