package system

import (
	"ndpext/internal/dram"
	"ndpext/internal/fault"
	"ndpext/internal/noc"
	"ndpext/internal/sim"
	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// MemPath is one pipeline stage arrangement serving post-L1 memory
// accesses for a design family: the NDPExt stream cache path
// (streamPath), the NUCA baseline path (nucaPath), or future policies.
// A path is selected by construction in newNDPSim, not by branching in
// the hot loop.
//
// Access serves the access issued by core at time t and returns its
// completion time, the level that supplied the data, and the stream the
// access belongs to (stream.NoStream when none).
type MemPath interface {
	Access(t sim.Time, core int, a workloads.Access) (done sim.Time, served telemetry.Level, sid stream.ID)
}

// The simulator stores the selected path as a concrete pointer (see
// ndpSim.spath/npath) to keep the per-access dispatch direct; these
// assertions keep both implementations honest against the interface.
var (
	_ MemPath = (*streamPath)(nil)
	_ MemPath = (*nucaPath)(nil)
)

// pathDeps bundles the hardware and accounting shared by every memory
// path stage.
type pathDeps struct {
	cfg   *Config
	clock sim.Clock
	net   *noc.Network
	devs  []*dram.Device
	ext   *extPath
	tel   *telemetry.Counters

	// observe feeds a stream access to the host runtime's samplers.
	observe func(unit int, sid stream.ID, item uint64)

	// inj, when non-nil, injects faults; paths consult it to redirect
	// accesses whose home vault is offline to extended memory.
	inj *fault.Injector
}

// serve is the head of the memory pipeline: compute gap + L1, then the
// design's MemPath on a miss. All accounting flows through s.tel; the
// optional probe receives a per-access record with per-level latencies.
func (s *ndpSim) serve(start sim.Time, core int, a workloads.Access) sim.Time {
	tel := &s.tel
	var snap [telemetry.NumLevels]sim.Time
	if s.probe != nil {
		snap = tel.Levels
	}
	tel.Accesses++

	t := start + s.clock.Cycles(int64(a.Gap)) + s.clock.Cycles(s.cfg.L1LatCycles)
	tel.Add(telemetry.LevelCore, t-start)

	done, served, sid := t, telemetry.LevelCore, stream.NoStream
	if hit, _, _ := s.l1s[core].Access(a.Addr, a.Write); hit {
		tel.L1Hits++
	} else if s.spath != nil {
		done, served, sid = s.spath.Access(t, core, a)
	} else {
		done, served, sid = s.npath.Access(t, core, a)
	}

	if s.probe != nil {
		ev := telemetry.Event{
			Seq:    tel.Accesses - 1,
			Core:   core,
			SID:    -1,
			Addr:   a.Addr,
			Write:  a.Write,
			Gap:    a.Gap,
			Served: served,
			Start:  start,
			End:    done,
		}
		if sid != stream.NoStream {
			ev.SID = int64(sid)
		}
		for l := telemetry.Level(0); l < telemetry.NumLevels; l++ {
			ev.Levels[l] = tel.Levels[l] - snap[l]
		}
		s.probe.Record(&ev)
	}
	return done
}
