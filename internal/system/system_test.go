package system

import (
	"testing"

	"ndpext/internal/noc"
	"ndpext/internal/workloads"
)

// smallConfig builds an 8-unit machine (2x1 stacks of 2x2 units) sized
// for fast tests.
func smallConfig(d Design) Config {
	cfg := DefaultConfig(d)
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64 // 128 kB per unit
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
	cfg.EpochCycles = 50_000
	cfg.HostCores = 4 // half the NDP core count, as in the paper's 64 vs 128
	return cfg
}

// tinyTrace generates a cached tiny trace for the 8-core machine.
func tinyTrace(t *testing.T, name string) *workloads.Trace {
	t.Helper()
	gen, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	tr, err := gen(8, 42, sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAllDesignsRunToCompletion(t *testing.T) {
	tr := tinyTrace(t, "pr")
	for _, d := range NDPDesigns() {
		res, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Time <= 0 {
			t.Fatalf("%v: zero makespan", d)
		}
		if res.Accesses != uint64(tr.TotalAccesses()) {
			t.Fatalf("%v: simulated %d accesses, trace has %d", d, res.Accesses, tr.TotalAccesses())
		}
		if res.Breakdown.Total() <= 0 {
			t.Fatalf("%v: empty latency breakdown", d)
		}
	}
}

func TestHostRuns(t *testing.T) {
	tr := tinyTrace(t, "pr")
	cfg := smallConfig(Host)
	cfg.HostCores = 4
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Accesses != uint64(tr.TotalAccesses()) {
		t.Fatalf("host run wrong: %+v", res)
	}
}

func TestDeterminism(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	a, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.CacheHits != b.CacheHits || a.Energy != b.Energy {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.Time, a.CacheHits, b.Time, b.CacheHits)
	}
}

func TestNDPExtReconfigures(t *testing.T) {
	tr := tinyTrace(t, "pr")
	res, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs == 0 {
		t.Fatal("NDPExt never reconfigured; epoch machinery broken")
	}
	if res.SLBHitRate <= 0 {
		t.Fatal("no SLB activity recorded")
	}
}

func TestStaticDesignsDoNotReconfigure(t *testing.T) {
	tr := tinyTrace(t, "pr")
	for _, d := range []Design{NDPExtStatic, StaticInterleave} {
		res, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if res.Reconfigs != 0 {
			t.Fatalf("%v reconfigured %d times", d, res.Reconfigs)
		}
	}
}

func TestBaselineMetadataActivity(t *testing.T) {
	tr := tinyTrace(t, "pr")
	res, err := Run(smallConfig(Nexus), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.MetaHitRate <= 0 || res.MetaHitRate > 1 {
		t.Fatalf("meta hit rate = %v", res.MetaHitRate)
	}
	if res.Breakdown.Meta <= 0 {
		t.Fatal("no metadata time recorded for a baseline")
	}
}

func TestEnergyPositiveAndDecomposed(t *testing.T) {
	tr := tinyTrace(t, "mv")
	res, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	e := res.Energy
	if e.StaticPJ <= 0 || e.NDPDramPJ <= 0 || e.Total() <= 0 {
		t.Fatalf("energy breakdown implausible: %+v", e)
	}
	if e.CXLLinkPJ <= 0 {
		t.Fatal("no CXL energy despite capacity misses")
	}
}

func TestHitRateBounds(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	for _, d := range NDPDesigns() {
		res, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		hr := res.CacheHitRate()
		if hr < 0 || hr > 1 {
			t.Fatalf("%v: hit rate %v", d, hr)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := smallConfig(NDPExt)
	cfg.UnitRows = 0
	if _, err := Run(cfg, tinyTrace(t, "pr")); err == nil {
		t.Fatal("zero rows accepted")
	}
	cfg = smallConfig(NDPExt)
	cfg.CoreFreqMHz = 0
	if _, err := Run(cfg, tinyTrace(t, "pr")); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestTraceCoreMismatchRejected(t *testing.T) {
	gen, _ := workloads.Get("pr")
	tr, err := gen(4, 1, workloads.TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(smallConfig(NDPExt), tr); err == nil {
		t.Fatal("core/unit mismatch accepted")
	}
}

func TestTableIIConfigs(t *testing.T) {
	cfg := DefaultConfig(NDPExt)
	// 4x2 inter-stack mesh, 16 NDP cores per stack, 128 total.
	if cfg.NoC.StacksX != 4 || cfg.NoC.StacksY != 2 || cfg.NoC.UnitsPerStack() != 16 {
		t.Fatalf("topology %dx%d x %d", cfg.NoC.StacksX, cfg.NoC.StacksY, cfg.NoC.UnitsPerStack())
	}
	if cfg.NumUnits() != 128 {
		t.Fatalf("units = %d, want 128", cfg.NumUnits())
	}
	if cfg.CoreFreqMHz != 2000 {
		t.Fatalf("core freq = %v, want 2 GHz", cfg.CoreFreqMHz)
	}
	if cfg.Mem.Name != "HBM3" {
		t.Fatalf("default memory = %s", cfg.Mem.Name)
	}
	if HMCConfig(NDPExt).Mem.Name != "HMC2" {
		t.Fatal("HMCConfig memory wrong")
	}
	// Model scale: 256 MB/unit divided by CapacityDivisor.
	if cfg.UnitCacheBytes()*CapacityDivisor != 256<<20 {
		t.Fatalf("unit cache %d bytes does not scale to 256 MB", cfg.UnitCacheBytes())
	}
	if int64(cfg.Stream.AffineCapBytes)*CapacityDivisor != 16<<20 {
		t.Fatalf("affine cap %d does not scale to 16 MB", cfg.Stream.AffineCapBytes)
	}
}

func TestEyeballComparison(t *testing.T) {
	// Diagnostic: log the relative behaviour of the designs on two
	// contrasting workloads. Always passes; read with -v.
	if testing.Short() {
		t.Skip("diagnostic only")
	}
	for _, name := range []string{"recsys", "pr"} {
		tr := tinyTrace(t, name)
		host, err := Run(smallConfig(Host), tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s host: time=%v", name, host.Time)
		for _, d := range NDPDesigns() {
			res, err := Run(smallConfig(d), tr.Clone())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s %-14v time=%-12v speedup=%.2f hit=%.2f interNS=%.1f metaHit=%.2f slbHit=%.2f reconf=%d repl=%d",
				name, d, res.Time, float64(host.Time)/float64(res.Time),
				res.CacheHitRate(), res.AvgInterconnectNS(), res.MetaHitRate, res.SLBHitRate,
				res.Reconfigs, res.ReplicatedRows)
		}
	}
}

var _ = noc.Config{} // keep the import for helper extensions
