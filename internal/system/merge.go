package system

import (
	"fmt"
	"sort"

	"ndpext/internal/energy"
	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
)

// MergeShardResults combines per-shard Results from a sharded parallel
// run (each shard simulated the full machine over a disjoint subset of
// the cores) into one run-level Result. The merge is deterministic —
// a pure function of the parts in shard order — but the merged result is
// only STATISTICALLY equivalent to the serial run, not byte-identical:
// sharding removes the cross-core interleaving at shared resources, so
// queueing, cache contention, and epoch decisions all shift slightly.
// stats.Equivalent is the fence that bounds the drift.
//
// Merge semantics, metric by metric:
//
//   - Counters (accesses, hits, misses, latency buckets, energy's
//     dynamic terms, the full telemetry registry) add: each access was
//     simulated exactly once, in exactly one shard.
//   - Time is the max over shards — the makespan of the slowest shard,
//     exactly as the serial makespan is the max over cores.
//   - StaticPJ is recomputed from the merged makespan (summing would
//     multiply the machine's static power by the shard count).
//   - Derived rates (cache/SLB/metadata hit rates) are recomputed from
//     the merged counters, not averaged.
//   - Last-epoch gauges (ReplicatedRows, RowsAllocated, SamplerCovered)
//     take the max: each shard ran its own configurator over the full
//     capacity, so these are per-shard snapshots of the same physical
//     machine, and summing would exceed it.
//   - Per-stream reports merge by stream ID: hit/miss tallies add; the
//     capacity fields (Rows, Groups, KneeBytes) come from the shard that
//     saw the stream hardest (most hits+misses, ties to the lowest
//     shard index).
func MergeShardResults(cfg Config, parts []*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("system: no shard results to merge")
	}
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("system: shard %d result is nil", i)
		}
		if p.Design != parts[0].Design {
			return nil, fmt.Errorf("system: shard %d design %v, shard 0 %v",
				i, p.Design, parts[0].Design)
		}
	}
	out := &Result{
		Design:   parts[0].Design,
		Workload: parts[0].Workload,
	}
	regs := make([]*telemetry.Registry, len(parts))
	for i, p := range parts {
		regs[i] = p.metrics
		if p.Time > out.Time {
			out.Time = p.Time
		}
		out.Accesses += p.Accesses
		out.L1Hits += p.L1Hits
		out.Breakdown.Core += p.Breakdown.Core
		out.Breakdown.Meta += p.Breakdown.Meta
		out.Breakdown.IntraNoC += p.Breakdown.IntraNoC
		out.Breakdown.InterNoC += p.Breakdown.InterNoC
		out.Breakdown.CacheDRAM += p.Breakdown.CacheDRAM
		out.Breakdown.Extended += p.Breakdown.Extended
		out.Breakdown.Accesses += p.Breakdown.Accesses
		out.CacheHits += p.CacheHits
		out.CacheMisses += p.CacheMisses
		out.Energy.NDPDramPJ += p.Energy.NDPDramPJ
		out.Energy.ExtDramPJ += p.Energy.ExtDramPJ
		out.Energy.NoCPJ += p.Energy.NoCPJ
		out.Energy.CXLLinkPJ += p.Energy.CXLLinkPJ
		out.Energy.SRAMPJ += p.Energy.SRAMPJ
		out.Reconfigs += p.Reconfigs
		out.ReconfigKept += p.ReconfigKept
		out.ReconfigDropped += p.ReconfigDropped
		out.Exceptions += p.Exceptions
		if p.ReplicatedRows > out.ReplicatedRows {
			out.ReplicatedRows = p.ReplicatedRows
		}
		if p.RowsAllocated > out.RowsAllocated {
			out.RowsAllocated = p.RowsAllocated
		}
		if p.SamplerCovered > out.SamplerCovered {
			out.SamplerCovered = p.SamplerCovered
		}
		// Each shard ran its own bandit over the same arm set; the
		// switch tally adds, the live arm reports shard 0's view.
		out.AdaptSwitches += p.AdaptSwitches
		if out.AdaptArm == "" {
			out.AdaptArm = p.AdaptArm
		}
		if p.Truncated && !out.Truncated {
			out.Truncated = true
			out.TruncateReason = p.TruncateReason
		}
	}
	out.metrics = telemetry.MergeRegistries(regs...)
	// Static energy scales with the machine's wall-clock, which after the
	// merge is the combined makespan, and with ONE machine's static power.
	out.Energy.StaticPJ = energy.Static(staticPowerMW(&cfg), out.Time)
	// Derived hit rates come from the merged counters.
	streamCache := out.metrics.Has("streamcache.hits") || out.metrics.Has("streamcache.slb_hits")
	if t := out.metrics.Uint("streamcache.slb_hits") + out.metrics.Uint("streamcache.slb_misses"); t > 0 {
		out.SLBHitRate = float64(out.metrics.Uint("streamcache.slb_hits")) / float64(t)
	}
	if t := out.metrics.Uint("nuca.meta_hits") + out.metrics.Uint("nuca.meta_misses"); t > 0 {
		out.MetaHitRate = float64(out.metrics.Uint("nuca.meta_hits")) / float64(t)
	}
	out.CacheHits = cacheHits(out.metrics, streamCache)
	out.CacheMisses = cacheMisses(out.metrics, streamCache)
	out.streams = mergeStreamReports(parts)
	return out, nil
}

// mergeStreamReports merges per-stream diagnostics by stream ID.
func mergeStreamReports(parts []*Result) []StreamReport {
	merged := make(map[stream.ID]*StreamReport)
	repWeight := make(map[stream.ID]uint64) // representative shard's traffic
	var order []stream.ID
	for _, p := range parts {
		for _, sr := range p.streams {
			m, ok := merged[sr.SID]
			if !ok {
				cp := sr
				merged[sr.SID] = &cp
				repWeight[sr.SID] = sr.Hits + sr.Misses
				order = append(order, sr.SID)
				continue
			}
			if w := sr.Hits + sr.Misses; w > repWeight[sr.SID] {
				// This shard saw the stream hardest: its capacity view
				// (Rows, Groups, KneeBytes) represents the stream.
				m.Rows, m.Groups, m.KneeBytes = sr.Rows, sr.Groups, sr.KneeBytes
				repWeight[sr.SID] = w
			}
			m.Hits += sr.Hits
			m.Misses += sr.Misses
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]StreamReport, 0, len(order))
	for _, sid := range order {
		out = append(out, *merged[sid])
	}
	return out
}
