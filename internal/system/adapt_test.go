package system

import (
	"bytes"
	"testing"
)

// mabConfig is the small 8-unit machine with the adaptive design.
func mabConfig() Config {
	return smallConfig(NDPExtMAB)
}

// TestMABRunsAndReportsTelemetry checks the adaptive design completes,
// reconfigures, and surfaces the adapt.* registry with per-arm
// posteriors.
func TestMABRunsAndReportsTelemetry(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	res, err := Run(mabConfig(), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs == 0 {
		t.Fatal("adaptive run never reconfigured")
	}
	if res.AdaptArm == "" {
		t.Fatal("no live arm reported")
	}
	reg := res.Metrics()
	for _, name := range []string{
		"adapt.epochs", "adapt.switches", "adapt.modeled_amat_ns",
		"adapt.migrated_rows", "adapt.arm.paper.mean", "adapt.arm.static.picks",
	} {
		if !reg.Has(name) {
			t.Fatalf("registry missing %q", name)
		}
	}
	if reg.Uint("adapt.epochs") == 0 {
		t.Fatal("adapt.epochs is zero despite reconfigurations")
	}
	if reg.Float("adapt.modeled_amat_ns") <= 0 {
		t.Fatal("modeled AMAT not accumulated")
	}
}

// TestMABPipelinedParity: the epoch pipeline must not change a single
// bit of the adaptive design's result — the bandit decision runs on the
// event-loop thread in both modes.
func TestMABPipelinedParity(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	ser, err := Run(mabConfig(), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunPipelined(mabConfig(), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp(ser) != fp(par) {
		t.Fatalf("pipelined adaptive run diverged:\n%+v\nvs\n%+v", fp(ser), fp(par))
	}
	if ser.Metrics().String() != par.Metrics().String() {
		t.Fatal("pipelined adaptive run diverged in the metrics registry")
	}
}

// TestMABDeterministicGivenSeed: same config (incl. bandit seed) same
// result; a different bandit seed is allowed to differ and must be
// cache-keyed either way.
func TestMABDeterministicGivenSeed(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	cfg := mabConfig()
	cfg.BanditSeed = 7
	a, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp(a) != fp(b) {
		t.Fatalf("same bandit seed diverged:\n%+v\nvs\n%+v", fp(a), fp(b))
	}

	other := cfg
	other.BanditSeed = 8
	if bytes.Equal(cfg.CanonicalBytes(), other.CanonicalBytes()) {
		t.Fatal("bandit seed not covered by CanonicalBytes")
	}
	armed := cfg
	armed.Adapt.Arms = "paper,static"
	if bytes.Equal(cfg.CanonicalBytes(), armed.CanonicalBytes()) {
		t.Fatal("arm set not covered by CanonicalBytes")
	}
}

// TestMABOnEpochReportsArm: the OnEpoch hook carries the live arm.
func TestMABOnEpochReportsArm(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	cfg := mabConfig()
	var arms []string
	cfg.OnEpoch = func(ei EpochInfo) {
		if ei.Reconfigured {
			arms = append(arms, ei.Arm)
		}
	}
	if _, err := Run(cfg, tr.Clone()); err != nil {
		t.Fatal(err)
	}
	if len(arms) == 0 {
		t.Fatal("no reconfiguring epochs observed")
	}
	for _, a := range arms {
		if a == "" {
			t.Fatal("reconfiguring epoch reported empty arm")
		}
	}

	// The plain design must keep the field empty.
	plain := smallConfig(NDPExt)
	plain.OnEpoch = func(ei EpochInfo) {
		if ei.Arm != "" || ei.ArmSwitched {
			t.Errorf("non-adaptive design reported arm %q", ei.Arm)
		}
	}
	if _, err := Run(plain, tr.Clone()); err != nil {
		t.Fatal(err)
	}
}

// TestMABSingleArmMatchesScoring: restricting the arm set to one arm
// runs that fixed policy through the same machinery (the fixed-arm
// baseline of the EXPERIMENTS sweep) and never switches.
func TestMABSingleArmFixedPolicy(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	cfg := mabConfig()
	cfg.Adapt.Arms = "greedy"
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptArm != "greedy" {
		t.Fatalf("live arm = %q, want greedy", res.AdaptArm)
	}
	if res.AdaptSwitches != 0 {
		t.Fatalf("single-arm run switched %d times", res.AdaptSwitches)
	}
}

// TestParseDesignStructuredError: unknown names carry the valid list.
func TestParseDesignStructuredError(t *testing.T) {
	d, err := ParseDesign("ndpext-mab")
	if err != nil || d != NDPExtMAB {
		t.Fatalf("ParseDesign(ndpext-mab) = %v, %v", d, err)
	}
	_, err = ParseDesign("bogus")
	ude, ok := err.(*UnknownDesignError)
	if !ok {
		t.Fatalf("error type %T, want *UnknownDesignError", err)
	}
	if ude.Name != "bogus" || len(ude.Valid) != len(AllDesigns()) {
		t.Fatalf("structured error incomplete: %+v", ude)
	}
	for _, want := range []string{"NDPExt", "Host", "NDPExt-MAB"} {
		found := false
		for _, v := range ude.Valid {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("valid list %v missing %s", ude.Valid, want)
		}
	}
}
