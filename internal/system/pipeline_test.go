package system

import (
	"bytes"
	"strings"
	"testing"

	"ndpext/internal/energy"
	"ndpext/internal/sim"
	"ndpext/internal/stats"
	"ndpext/internal/telemetry"
)

// fingerprint condenses every externally visible Result field into one
// comparable value, so determinism tests cover the whole surface rather
// than a few counters.
type fingerprint struct {
	Time            sim.Time
	Accesses        uint64
	L1Hits          uint64
	Breakdown       stats.Breakdown
	CacheHits       uint64
	CacheMisses     uint64
	Energy          energy.Breakdown
	MetaHitRate     float64
	SLBHitRate      float64
	Reconfigs       int
	ReconfigKept    int
	ReconfigDropped int
	Exceptions      uint64
	ReplicatedRows  uint64
	RowsAllocated   uint64
	SamplerCovered  int
	AdaptArm        string
	AdaptSwitches   int
}

func fp(r *Result) fingerprint {
	return fingerprint{
		Time: r.Time, Accesses: r.Accesses, L1Hits: r.L1Hits,
		Breakdown: r.Breakdown, CacheHits: r.CacheHits, CacheMisses: r.CacheMisses,
		Energy: r.Energy, MetaHitRate: r.MetaHitRate, SLBHitRate: r.SLBHitRate,
		Reconfigs: r.Reconfigs, ReconfigKept: r.ReconfigKept, ReconfigDropped: r.ReconfigDropped,
		Exceptions: r.Exceptions, ReplicatedRows: r.ReplicatedRows, RowsAllocated: r.RowsAllocated,
		SamplerCovered: r.SamplerCovered,
		AdaptArm:       r.AdaptArm, AdaptSwitches: r.AdaptSwitches,
	}
}

// Same config + seed must give a bit-identical Result on both path
// families (stream pipeline and NUCA pipeline) and the host model.
func TestDeterminismAllPaths(t *testing.T) {
	tr := tinyTrace(t, "recsys")
	for _, d := range []Design{NDPExt, Jigsaw, Host} {
		a, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		b, err := Run(smallConfig(d), tr.Clone())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if fp(a) != fp(b) {
			t.Fatalf("%v nondeterministic:\n%+v\nvs\n%+v", d, fp(a), fp(b))
		}
	}
}

// An attached probe must observe every access with self-consistent
// per-level attribution, and must not perturb the simulation.
func TestProbeAttributionConsistent(t *testing.T) {
	tr := tinyTrace(t, "pr")
	base, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}

	var events []telemetry.Event
	cfg := smallConfig(NDPExt)
	cfg.Probe = telemetry.FuncProbe(func(ev *telemetry.Event) { events = append(events, *ev) })
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}

	if fp(res) != fp(base) {
		t.Fatal("attaching a probe changed the simulation result")
	}
	if uint64(len(events)) != res.Accesses {
		t.Fatalf("probe saw %d events, run had %d accesses", len(events), res.Accesses)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.End < ev.Start {
			t.Fatalf("event %d ends before it starts: %+v", i, ev)
		}
		var sum sim.Time
		for l := telemetry.Level(0); l < telemetry.NumLevels; l++ {
			if ev.Levels[l] < 0 {
				t.Fatalf("event %d negative latency at %v", i, l)
			}
			sum += ev.Levels[l]
		}
		if sum != ev.End-ev.Start {
			t.Fatalf("event %d level latencies sum to %v, span is %v", i, sum, ev.End-ev.Start)
		}
		if ev.Served < 0 || ev.Served >= telemetry.NumLevels {
			t.Fatalf("event %d served level %d out of range", i, ev.Served)
		}
		if ev.SID < -1 {
			t.Fatalf("event %d has SID %d", i, ev.SID)
		}
	}
}

// Sampling keeps the first event of each stride; the host model emits
// probe events too.
func TestProbeSamplingAndHost(t *testing.T) {
	tr := tinyTrace(t, "pr")
	const every = 100
	var n uint64
	cfg := smallConfig(NDPExt)
	cfg.Probe = telemetry.Sampled(telemetry.FuncProbe(func(*telemetry.Event) { n++ }), every)
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if want := (res.Accesses + every - 1) / every; n != want {
		t.Fatalf("sampled probe saw %d events, want %d", n, want)
	}

	var hostN uint64
	hcfg := smallConfig(Host)
	hcfg.Probe = telemetry.FuncProbe(func(*telemetry.Event) { hostN++ })
	hres, err := Run(hcfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if hostN != hres.Accesses {
		t.Fatalf("host probe saw %d events, run had %d accesses", hostN, hres.Accesses)
	}
}

// The reconfiguration debug trace is injectable: off by default, and
// routed to the configured writer when enabled.
func TestDebugReconfigWriterInjection(t *testing.T) {
	tr := tinyTrace(t, "pr")
	var buf bytes.Buffer
	cfg := smallConfig(NDPExt)
	cfg.DebugReconfig = true
	cfg.DebugWriter = &buf
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigs == 0 {
		t.Fatal("run never reconfigured; trace cannot be exercised")
	}
	out := buf.String()
	if !strings.Contains(out, "epoch") || !strings.Contains(out, "rows") {
		t.Fatalf("debug trace missing or malformed:\n%q", out)
	}

	var quiet bytes.Buffer
	cfg = smallConfig(NDPExt)
	cfg.DebugReconfig = false
	cfg.DebugWriter = &quiet
	if _, err := Run(cfg, tr.Clone()); err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 0 {
		t.Fatalf("disabled debug trace still wrote %d bytes", quiet.Len())
	}
}

// Every NDP run exposes its component telemetry registry; the Result's
// headline numbers are views over it.
func TestMetricsRegistryExposed(t *testing.T) {
	tr := tinyTrace(t, "pr")

	res, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Metrics()
	if reg == nil {
		t.Fatal("NDPExt run has no metrics registry")
	}
	for _, name := range []string{"noc.messages", "cxl.reads", "streamcache.lookups", "dram.unit000.reads"} {
		if !reg.Has(name) {
			t.Fatalf("registry missing %q; have %v", name, reg.Names())
		}
	}
	if reg.SumFloat("dram.unit") <= 0 {
		t.Fatal("no DRAM energy accumulated across units")
	}
	if got := reg.Uint("streamcache.hits") + reg.Uint("streamcache.slb_hits"); got == 0 {
		t.Fatal("stream cache counters empty")
	}

	nres, err := Run(smallConfig(Nexus), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !nres.Metrics().Has("nuca.lookups") {
		t.Fatal("NUCA run missing nuca.* metrics")
	}

	hres, err := Run(smallConfig(Host), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if hres.Metrics() != nil {
		t.Fatal("host model unexpectedly reports a component registry")
	}
}
