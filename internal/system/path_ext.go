package system

import (
	"ndpext/internal/cxl"
	"ndpext/internal/noc"
	"ndpext/internal/sim"
	"ndpext/internal/telemetry"
)

// extPath is the shared tail stage of every memory path: it routes from
// an NDP unit to the central CXL controller over the stack's dedicated
// controller link (paper Fig. 1), performs the extended memory access,
// and routes back, attributing time into the telemetry counters.
type extPath struct {
	net *noc.Network
	ext *cxl.Device
	tel *telemetry.Counters
}

// access performs one extended-memory access from the given unit and
// returns the completion time.
func (e *extPath) access(t sim.Time, from int, addr uint64, bytes int, write bool) sim.Time {
	reqBytes := 32
	if write {
		reqBytes += bytes
	}
	tr1 := e.net.RouteCXL(t, from, reqBytes, true)
	e.tel.Add(telemetry.LevelIntraNoC, tr1.IntraDelay)
	e.tel.Add(telemetry.LevelInterNoC, tr1.InterDelay)
	at := tr1.Arrive
	done := e.ext.Access(at, addr, bytes, write)
	e.tel.Add(telemetry.LevelExtended, done-at)
	respBytes := 32
	if !write {
		respBytes += bytes
	}
	tr2 := e.net.RouteCXL(done, from, respBytes, false)
	e.tel.Add(telemetry.LevelIntraNoC, tr2.IntraDelay)
	e.tel.Add(telemetry.LevelInterNoC, tr2.InterDelay)
	return tr2.Arrive
}

// writeback issues a fire-and-forget dirty eviction to the extended
// memory: it consumes NoC and CXL bandwidth but does not delay the
// requester.
func (e *extPath) writeback(t sim.Time, from int, addr uint64, bytes int) {
	tr := e.net.RouteCXL(t, from, 32+bytes, true)
	e.ext.Access(tr.Arrive, addr, bytes, true)
}
