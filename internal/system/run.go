package system

import (
	"context"
	"fmt"
	"time"

	"ndpext/internal/adapt"
	"ndpext/internal/cache"
	"ndpext/internal/cxl"
	"ndpext/internal/dram"
	"ndpext/internal/energy"
	"ndpext/internal/fault"
	"ndpext/internal/noc"
	"ndpext/internal/nuca"
	"ndpext/internal/sampler"
	"ndpext/internal/sim"
	"ndpext/internal/stats"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// Result summarizes one simulation run. Its counters and breakdown are
// views computed from the run's telemetry at finishStats time.
type Result struct {
	Design   Design
	Workload string

	Time     sim.Time // makespan across cores
	Accesses uint64
	L1Hits   uint64

	Breakdown stats.Breakdown

	CacheHits   uint64
	CacheMisses uint64

	Energy energy.Breakdown

	MetaHitRate float64 // baselines: metadata cache hit rate
	SLBHitRate  float64 // NDPExt: SLB hit rate

	Reconfigs       int
	ReconfigKept    int
	ReconfigDropped int
	Exceptions      uint64
	ReplicatedRows  uint64 // last epoch's replicated rows (NDPExt)
	RowsAllocated   uint64 // last epoch's total allocation (NDPExt)
	SamplerCovered  int    // streams covered by samplers, last epoch

	// NDPExt-MAB summary: the arm live at end of run and how many times
	// the bandit switched arms (zero values for every other design; the
	// full per-arm posteriors are in Metrics under "adapt.").
	AdaptArm      string
	AdaptSwitches int

	// Truncated is set when a watchdog (Config.MaxWall / MaxCycles)
	// aborted the run early; the counters then cover only the simulated
	// prefix. TruncateReason names which limit tripped.
	Truncated      bool
	TruncateReason string

	streams []StreamReport
	metrics *telemetry.Registry
}

// CacheHitRate returns the DRAM cache hit rate.
func (r *Result) CacheHitRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(t)
}

// MissRate returns the DRAM cache miss rate (requests served by the
// extended memory; Fig. 7's dot metric).
func (r *Result) MissRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(t)
}

// AvgInterconnectNS is the mean interconnect time per access (Fig. 7).
func (r *Result) AvgInterconnectNS() float64 { return r.Breakdown.AvgInterconnectNS() }

// Metrics returns the run's full telemetry registry: every component's
// counters under dotted prefixes ("noc.", "cxl.", "dram.unit003.",
// "streamcache." / "nuca."). Nil for the Host design.
func (r *Result) Metrics() *telemetry.Registry { return r.metrics }

// StreamReport is one stream's end-of-run summary (diagnostics).
type StreamReport struct {
	SID       stream.ID
	Type      string
	ReadOnly  bool
	Bytes     uint64
	Hits      uint64
	Misses    uint64
	Rows      uint64 // allocated rows at end of run
	Groups    int
	KneeBytes int64
}

// StreamReports returns per-stream diagnostics after a run (NDPExt
// designs only; empty otherwise).
func (r *Result) StreamReports() []StreamReport { return r.streams }

// Run simulates the trace on the configured machine.
func Run(cfg Config, tr *workloads.Trace) (*Result, error) {
	return RunContext(context.Background(), cfg, tr)
}

// RunContext is Run with cooperative cancellation: when ctx is canceled
// mid-run the event loop stops at the next check point, partial
// statistics are flushed exactly as for a tripped watchdog (Truncated
// set, TruncateReason = "canceled"), and the partial Result is returned
// ALONGSIDE ctx.Err(). Callers that only want clean aborts can ignore
// the Result on error; callers that checkpoint (the serving layer) use
// both.
func RunContext(ctx context.Context, cfg Config, tr *workloads.Trace) (*Result, error) {
	return runInput(ctx, cfg, traceInput(tr), false)
}

// RunSource simulates a streaming access source (e.g. a recorded trace
// file replayed with bounded memory) on the configured machine.
func RunSource(cfg Config, src workloads.Source) (*Result, error) {
	return RunSourceContext(context.Background(), cfg, src)
}

// RunSourceContext is RunSource with cooperative cancellation
// (RunContext's contract). The source is consumed; open a fresh one per
// run. A source read error surfaces after the event loop alongside the
// partial Result.
func RunSourceContext(ctx context.Context, cfg Config, src workloads.Source) (*Result, error) {
	return runInput(ctx, cfg, sourceInput(src), false)
}

// RunPipelined simulates the trace with the epoch pipeline: sampler and
// miss-curve bookkeeping for each epoch runs on a dedicated worker
// goroutine, overlapping the event-loop simulation of the next epoch.
// The result is byte-identical to Run on the same inputs — the pipeline
// changes where the bookkeeping runs, never what it computes — so cached
// and golden results are interchangeable between the two modes. Designs
// without epoch profiling (Host, NDPExtStatic, StaticInterleave) fall
// back to the serial path.
func RunPipelined(cfg Config, tr *workloads.Trace) (*Result, error) {
	return RunPipelinedContext(context.Background(), cfg, tr)
}

// RunPipelinedContext is RunPipelined with cooperative cancellation
// (RunContext's contract).
func RunPipelinedContext(ctx context.Context, cfg Config, tr *workloads.Trace) (*Result, error) {
	return runInput(ctx, cfg, traceInput(tr), true)
}

// RunSourcePipelined is RunSource with the epoch pipeline (RunPipelined's
// byte-identity contract).
func RunSourcePipelined(cfg Config, src workloads.Source) (*Result, error) {
	return RunSourcePipelinedContext(context.Background(), cfg, src)
}

// RunSourcePipelinedContext is RunSourceContext with the epoch pipeline.
func RunSourcePipelinedContext(ctx context.Context, cfg Config, src workloads.Source) (*Result, error) {
	return runInput(ctx, cfg, sourceInput(src), true)
}

// simInput is the normalized workload feed handed to the simulators:
// either a materialized trace (perCore non-nil — the zero-copy fast
// path) or a streaming Source (src non-nil — bounded memory). Exactly
// one of the two is set.
type simInput struct {
	name    string
	table   *stream.Table
	cores   int
	perCore [][]workloads.Access
	idx     []int // per-core cursor for the materialized path
	src     workloads.Source
}

func traceInput(tr *workloads.Trace) simInput {
	return simInput{
		name: tr.Name, table: tr.Table,
		cores: len(tr.PerCore), perCore: tr.PerCore,
		idx: make([]int, len(tr.PerCore)),
	}
}

func sourceInput(src workloads.Source) simInput {
	return simInput{name: src.Name(), table: src.Table(), cores: src.Cores(), src: src}
}

// next returns the core's next access, advancing its cursor.
func (in *simInput) next(core int) (workloads.Access, bool) {
	if in.perCore != nil {
		i := in.idx[core]
		if i >= len(in.perCore[core]) {
			return workloads.Access{}, false
		}
		in.idx[core] = i + 1
		return in.perCore[core][i], true
	}
	return in.src.Next(core)
}

// err reports a read error that truncated the feed (streaming only).
func (in *simInput) err() error {
	if in.src != nil {
		return in.src.Err()
	}
	return nil
}

// runInput validates and dispatches one simulation.
func runInput(ctx context.Context, cfg Config, in simInput, pipelined bool) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Design == Host {
		return runHost(ctx, cfg, in)
	}
	if in.cores != cfg.NumUnits() {
		return nil, fmt.Errorf("system: trace has %d cores, machine has %d units",
			in.cores, cfg.NumUnits())
	}
	s, err := newNDPSim(cfg, in)
	if err != nil {
		return nil, err
	}
	s.ctx = ctx
	s.bootstrap()
	if pipelined && s.profiles() {
		// Start the epoch worker only after bootstrap installed the
		// initial samplers: bank ownership transfers to the worker here.
		s.pipe = newEpochPipe(s.samplers, s.cfg.Sampler)
		s.deps.observe = s.pipe.observe
		// If the event loop panics (a simulator bug surfacing mid-run),
		// stop the worker so the panic-isolating callers (the ndpserve
		// scheduler) do not leak a goroutine per failed job. The normal
		// path clears s.pipe before finishStats.
		defer func() {
			if s.pipe != nil {
				s.pipe.abort()
			}
		}()
	}
	s.loop()
	if err := in.err(); err != nil {
		return s.result(), fmt.Errorf("system: access feed failed mid-run: %w", err)
	}
	if s.res.Truncated && s.res.TruncateReason == truncatedCanceled {
		return s.result(), context.Cause(ctx)
	}
	return s.result(), nil
}

// truncatedCanceled is the TruncateReason for context cancellation.
const truncatedCanceled = "canceled"

// samplerKey identifies one hardware sampler's assignment.
type samplerKey struct {
	unit int
	sid  stream.ID
}

// samplerBank holds the installed samplers densely indexed by stream ID
// (local: [unit][sid], global: [sid]). Stream IDs are at most 9 bits, so
// the slices replace two map lookups on the per-access path with plain
// indexing. Retired samplers go into a pool keyed by item granularity
// and are Reset-reused at the next epoch's reassignment, which removes
// the sampler rebuild (the simulator's largest allocation source) from
// every epoch boundary.
type samplerBank struct {
	local  [][]*sampler.Sampler // [unit][sid]
	global []*sampler.Sampler   // [sid]
	pool   map[int][]*sampler.Sampler
}

// samplerSIDs is the sampler index space: every representable stream ID
// plus one slot above it for the baselines' misc partition key
// (stream.ID(stream.MaxStreams)), which flows through observe like any
// other sid.
const samplerSIDs = stream.MaxStreams + 1

func newSamplerBank(units int) *samplerBank {
	b := &samplerBank{
		local:  make([][]*sampler.Sampler, units),
		global: make([]*sampler.Sampler, samplerSIDs),
		pool:   make(map[int][]*sampler.Sampler),
	}
	for u := range b.local {
		b.local[u] = make([]*sampler.Sampler, samplerSIDs)
	}
	return b
}

// get returns a pooled sampler for the granularity, or builds one.
func (b *samplerBank) get(cfg sampler.Config, itemBytes int) *sampler.Sampler {
	if free := b.pool[itemBytes]; len(free) > 0 {
		s := free[len(free)-1]
		b.pool[itemBytes] = free[:len(free)-1]
		return s
	}
	return sampler.New(cfg, itemBytes)
}

// retire resets every installed sampler into the pool and clears the
// assignment, ready for the next epoch's install calls.
func (b *samplerBank) retire() {
	for u := range b.local {
		row := b.local[u]
		for sid, s := range row {
			if s == nil {
				continue
			}
			s.Reset()
			b.pool[s.ItemBytes()] = append(b.pool[s.ItemBytes()], s)
			row[sid] = nil
		}
	}
	for sid, s := range b.global {
		if s == nil {
			continue
		}
		s.Reset()
		b.pool[s.ItemBytes()] = append(b.pool[s.ItemBytes()], s)
		b.global[sid] = nil
	}
}

// ndpSim is the event-driven simulator for all NDP designs.
type ndpSim struct {
	cfg     Config
	in      simInput
	name    string
	table   *stream.Table
	pending []workloads.Access // per-core one-access lookahead
	ctx     context.Context    // cooperative cancellation; nil means none
	clock   sim.Clock

	net  *noc.Network
	ext  *cxl.Device
	devs []*dram.Device
	l1s  []*cache.Cache
	inj  *fault.Injector // nil unless Config.Faults is non-empty

	// Exactly one of spath/npath serves post-L1 accesses; selected by
	// design at construction. The two are held as concrete pointers (not
	// one MemPath interface value) so the per-access dispatch in serve is
	// a nil check plus a direct — inlinable — call rather than an
	// interface method call.
	spath *streamPath
	npath *nucaPath
	// Exactly one of sc/nc is set, by design (epoch logic still needs
	// the concrete controller).
	sc *streamcache.Controller
	nc *nuca.Controller

	tel   telemetry.Counters
	probe telemetry.Probe

	deps *pathDeps  // the serving path's wiring; observe is re-pointed in pipelined mode
	pipe *epochPipe // non-nil in pipelined mode: the epoch bookkeeping worker

	adapt *adapt.Controller // non-nil for NDPExtMAB: the bandit configurator

	att [][]float64 // attenuation factors for the policy

	samplers    *samplerBank                  // local + global samplers, pooled
	curves      map[stream.ID]sampler.Curve   // global curves
	localCurves map[stream.ID]sampler.Curve   // per-core curves
	hist        map[stream.ID]map[int]float64 // decayed per-unit access history
	netLatMemo  map[int]float64               // degree -> mean nearest-replica latency
	uncovered   map[stream.ID]bool            // streams no sampler covered last epoch (§V-B rotation)

	epoch     int
	nextEpoch sim.Time
	epochDur  sim.Time

	q sim.EventQueue

	res Result
}

func newNDPSim(cfg Config, in simInput) (*ndpSim, error) {
	n := cfg.NumUnits()
	net, err := noc.NewChecked(cfg.NoC)
	if err != nil {
		return nil, err
	}
	ext, err := cxl.NewChecked(cfg.CXL)
	if err != nil {
		return nil, err
	}
	s := &ndpSim{
		cfg:         cfg,
		in:          in,
		name:        in.name,
		table:       in.table,
		pending:     make([]workloads.Access, n),
		clock:       sim.NewClock(cfg.CoreFreqMHz),
		net:         net,
		ext:         ext,
		probe:       cfg.Probe,
		samplers:    newSamplerBank(n),
		curves:      make(map[stream.ID]sampler.Curve),
		localCurves: make(map[stream.ID]sampler.Curve),
	}
	for i := 0; i < n; i++ {
		s.devs = append(s.devs, dram.NewDevice(cfg.Mem, cfg.BanksPerUnit))
		l1, err := cache.NewChecked(cfg.L1Bytes, cfg.L1LineBytes, cfg.L1Assoc)
		if err != nil {
			return nil, err
		}
		s.l1s = append(s.l1s, l1)
	}
	if !cfg.Faults.Empty() {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		s.inj = fault.New(cfg.Faults, seed)
		s.ext.SetFaults(s.inj)
		s.net.SetFaults(s.inj)
		for i, d := range s.devs {
			d.SetFaults(s.inj, i)
		}
	}
	deps := &pathDeps{
		cfg:     &s.cfg,
		clock:   s.clock,
		net:     s.net,
		devs:    s.devs,
		ext:     &extPath{net: s.net, ext: s.ext, tel: &s.tel},
		tel:     &s.tel,
		observe: s.observe,
		inj:     s.inj,
	}
	s.deps = deps
	switch cfg.Design {
	case NDPExt, NDPExtStatic, NDPExtMAB:
		s.sc = streamcache.NewController(cfg.Stream, n, in.table)
		s.spath = &streamPath{pathDeps: deps, sc: s.sc, table: in.table}
	case Jigsaw, Whirlpool, Nexus, StaticInterleave:
		np := nuca.DefaultParams()
		np.RowBytes = cfg.rowBytes()
		// The 128 kB metadata cache scales with every other capacity.
		np.MetaCacheBytes = max(np.MetaCacheBytes/CapacityDivisor, 8*np.MetaEntryBytes)
		s.nc = nuca.NewController(nucaKind(cfg.Design), np, n, cfg.UnitRows, in.table)
		s.npath = &nucaPath{pathDeps: deps, nc: s.nc}
	default:
		return nil, fmt.Errorf("system: design %v not an NDP design", cfg.Design)
	}
	// Attenuation factors (§V-C): DRAM latency over DRAM+interconnect.
	dramNS := s.devs[0].RawLatency(false, 64).NS()
	s.att = make([][]float64, n)
	for u := 0; u < n; u++ {
		s.att[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			s.att[u][v] = dramNS / (dramNS + s.net.BaseLatency(u, v, 64).NS())
		}
	}
	if cfg.Design == NDPExtMAB {
		bseed := cfg.BanditSeed
		if bseed == 0 {
			bseed = cfg.Seed
		}
		// The shadow evaluator's cost model uses the same latency
		// sources as the simulator itself (raw DRAM hit, extended-memory
		// minimum round trip, NoC base latency); the per-access energies
		// are modeled weights for the reward's tie-break term, not
		// simulated energy.
		model := adapt.CostModel{
			RowBytes:  cfg.rowBytes(),
			DramHitNS: dramNS,
			MissNS:    s.ext.MinLatency(64).NS(),
			NetNS:     func(u, v int) float64 { return s.net.BaseLatency(u, v, 64).NS() },
			HitPJ:     100,
			MissPJ:    1500,
		}
		ctl, err := adapt.New(cfg.Adapt, bseed, model)
		if err != nil {
			return nil, err
		}
		s.adapt = ctl
	}
	s.epochDur = s.clock.Cycles(cfg.EpochCycles)
	s.nextEpoch = s.epochDur
	s.res.Design = cfg.Design
	s.res.Workload = in.name
	return s, nil
}

func nucaKind(d Design) nuca.Kind {
	switch d {
	case Jigsaw:
		return nuca.Jigsaw
	case Whirlpool:
		return nuca.Whirlpool
	case Nexus:
		return nuca.Nexus
	default:
		return nuca.StaticInterleave
	}
}

// loop runs the event queue to completion, or until a watchdog limit
// (simulated-cycle budget or wall-clock deadline) trips; a tripped
// watchdog still flushes partial statistics via finishStats.
func (s *ndpSim) loop() {
	for c := 0; c < s.in.cores; c++ {
		if a, ok := s.in.next(c); ok {
			s.pending[c] = a
			s.q.Push(0, c)
		}
	}
	var cycleBudget sim.Time
	if s.cfg.MaxCycles > 0 {
		cycleBudget = s.clock.Cycles(s.cfg.MaxCycles)
	}
	var deadline time.Time
	if s.cfg.MaxWall > 0 {
		deadline = time.Now().Add(s.cfg.MaxWall)
	}
	var end sim.Time
	for n := 0; s.q.Len() > 0; n++ {
		ev := s.q.Pop()
		if cycleBudget > 0 && ev.When >= cycleBudget {
			s.res.Truncated, s.res.TruncateReason = true, "cycle budget exceeded"
			break
		}
		// The wall and cancellation checks are amortized over event
		// batches; they include n == 0 so a tiny budget truncates
		// before any work.
		if n&1023 == 0 {
			if s.cfg.MaxWall > 0 && !time.Now().Before(deadline) {
				s.res.Truncated, s.res.TruncateReason = true, "wall-clock limit exceeded"
				break
			}
			if s.ctx != nil && s.ctx.Err() != nil {
				s.res.Truncated, s.res.TruncateReason = true, truncatedCanceled
				break
			}
		}
		for ev.When >= s.nextEpoch {
			s.epochBoundary()
			s.nextEpoch += s.epochDur
		}
		c := ev.ID
		done := s.serve(ev.When, c, s.pending[c])
		if done > end {
			end = done
		}
		if a, ok := s.in.next(c); ok {
			s.pending[c] = a
			s.q.Push(done, c)
		}
	}
	s.res.Time = end
	if s.pipe != nil {
		// End-of-run join: drain every observation still in flight and
		// adopt the worker's authoritative counters before finishStats
		// reads them. s.pipe is cleared first so the runInput panic
		// guard does not double-close on a worker panic re-raised here.
		p := s.pipe
		s.pipe = nil
		rep := p.close()
		s.tel.Observes = rep.observes
		s.tel.SamplerCovered = rep.covered
	}
	s.finishStats()
}

// observe feeds the access to the stream's samplers: the local sampler
// (this epoch's assigned unit only -- the per-core reuse view) and the
// global one (the home sets see traffic from every core, §V-A). When
// both fire (accesses at the assigned unit) the pair update shares the
// shadow-set arithmetic.
func (s *ndpSim) observe(unit int, sid stream.ID, item uint64) {
	l := s.samplers.local[unit][sid]
	g := s.samplers.global[sid]
	switch {
	case l != nil && g != nil:
		sampler.ObservePair(l, g, item)
		s.tel.Observes += 2
	case g != nil:
		g.Observe(item)
		s.tel.Observes++
	case l != nil:
		l.Observe(item)
		s.tel.Observes++
	}
}

// collectMetrics publishes every component's counters into one registry.
func (s *ndpSim) collectMetrics() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	for i, d := range s.devs {
		d.ReportTelemetry(reg, fmt.Sprintf("dram.unit%03d", i))
	}
	s.ext.ReportTelemetry(reg, "cxl")
	s.net.ReportTelemetry(reg, "noc")
	if s.sc != nil {
		s.sc.ReportTelemetry(reg, "streamcache")
	}
	if s.nc != nil {
		s.nc.ReportTelemetry(reg, "nuca")
	}
	if s.inj != nil {
		s.inj.ReportTelemetry(reg)
		reg.PutUint("fault.degraded_epochs", uint64(s.tel.DegradedEpochs))
		reg.PutUint("fault.remapped_streams", uint64(s.tel.FaultRemappedStreams))
	}
	if s.adapt != nil {
		s.adapt.ReportTelemetry(reg, "adapt")
	}
	return reg
}

// finishStats derives the run-level Result from the telemetry after the
// event loop: the Breakdown view from the hot-path counters, and the
// hit-rate and energy summaries from the component registry.
func (s *ndpSim) finishStats() {
	r := &s.res
	tel := &s.tel
	reg := s.collectMetrics()
	r.metrics = reg

	r.Breakdown = stats.Breakdown{
		Core:      tel.Levels[telemetry.LevelCore],
		Meta:      tel.Levels[telemetry.LevelMeta],
		IntraNoC:  tel.Levels[telemetry.LevelIntraNoC],
		InterNoC:  tel.Levels[telemetry.LevelInterNoC],
		CacheDRAM: tel.Levels[telemetry.LevelCacheDRAM],
		Extended:  tel.Levels[telemetry.LevelExtended],
		Accesses:  tel.Accesses,
	}
	r.Accesses = tel.Accesses
	r.L1Hits = tel.L1Hits
	r.Exceptions = tel.Exceptions
	r.Reconfigs = tel.Reconfigs
	r.ReconfigKept = tel.ReconfigKept
	r.ReconfigDropped = tel.ReconfigDropped
	r.ReplicatedRows = tel.ReplicatedRows
	r.RowsAllocated = tel.RowsAllocated
	r.SamplerCovered = tel.SamplerCovered
	if s.adapt != nil {
		r.AdaptArm = s.adapt.ActiveArm()
		r.AdaptSwitches = s.adapt.Switches()
	}

	if s.sc != nil {
		if t := reg.Uint("streamcache.slb_hits") + reg.Uint("streamcache.slb_misses"); t > 0 {
			r.SLBHitRate = float64(reg.Uint("streamcache.slb_hits")) / float64(t)
		}
	}
	if s.nc != nil {
		r.MetaHitRate = s.nc.MetaHitRate()
	}
	// Energy (Fig. 6 breakdown), computed from the registry. Per-device
	// energies are summed in registration (device) order so the floating-
	// point result matches the pre-telemetry accumulation exactly.
	ndpDram := reg.SumFloat("dram.unit")
	staticMW := staticPowerMW(&s.cfg)
	// SRAM access energy (§VI: the paper models SLB/ATA/samplers with
	// CACTI; the baselines' metadata caches get the same treatment).
	var sram float64
	sram += float64(tel.Accesses) * energy.L1AccessPJ
	sram += float64(tel.Observes) * energy.SamplerUpdatePJ
	if s.sc != nil {
		sram += float64(reg.Uint("streamcache.slb_hits")+reg.Uint("streamcache.slb_misses")) * energy.SLBAccessPJ
		sram += float64(reg.Uint("streamcache.hits")+reg.Uint("streamcache.misses")) * energy.ATAAccessPJ
	}
	if s.nc != nil {
		sram += float64(reg.Uint("nuca.meta_hits")+reg.Uint("nuca.meta_misses")) * energy.MetaCachePJ
	}
	r.Energy = energy.Breakdown{
		StaticPJ:  energy.Static(staticMW, r.Time),
		NDPDramPJ: ndpDram,
		ExtDramPJ: reg.Float("cxl.dram.energy_pj"),
		NoCPJ:     reg.Float("noc.energy_pj"),
		CXLLinkPJ: reg.Float("cxl.link_energy_pj"),
		SRAMPJ:    sram,
	}
	r.CacheHits = cacheHits(reg, s.sc != nil)
	r.CacheMisses = cacheMisses(reg, s.sc != nil)

	for _, st := range s.table.All() {
		sr := StreamReport{
			SID: st.SID, Type: st.Type.String(), ReadOnly: st.ReadOnly, Bytes: st.Size,
		}
		if cv, ok := s.curves[st.SID]; ok {
			sr.KneeBytes = cv.Knee(0.05)
		}
		if s.sc != nil {
			ss := s.sc.StreamStatsFor(st.SID)
			sr.Hits, sr.Misses = ss.Hits, ss.Misses
			if a, ok := s.sc.Allocation(st.SID); ok {
				sr.Rows = a.TotalRows()
				sr.Groups = len(a.GroupIDs())
			}
		} else {
			ss := s.nc.StreamStatsFor(st.SID)
			sr.Hits, sr.Misses = ss.Hits, ss.Misses
		}
		r.streams = append(r.streams, sr)
	}
}

// cacheHits/cacheMisses read the authoritative controller counters from
// the telemetry registry (the running tallies in the hot-path counters
// track the same values; the controllers are the source of truth).
func cacheHits(reg *telemetry.Registry, streamCache bool) uint64 {
	if streamCache {
		return reg.Uint("streamcache.hits")
	}
	return reg.Uint("nuca.hits")
}

func cacheMisses(reg *telemetry.Registry, streamCache bool) uint64 {
	if streamCache {
		return reg.Uint("streamcache.misses") +
			reg.Uint("streamcache.no_space") + reg.Uint("streamcache.bypasses")
	}
	return reg.Uint("nuca.misses")
}

// staticPowerMW is the machine's static power draw: every NDP unit's
// DRAM + core static power plus the extended memory's. Shared by
// finishStats and the shard merge so both derive StaticPJ from the same
// expression.
func staticPowerMW(cfg *Config) float64 {
	return float64(cfg.NumUnits())*(cfg.Mem.StaticMWPerU+cfg.CoreStaticMW) +
		float64(cfg.CXL.Channels)*cfg.CXL.DRAM.StaticMWPerU
}

func (s *ndpSim) result() *Result { return &s.res }
