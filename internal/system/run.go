package system

import (
	"fmt"

	"ndpext/internal/cache"
	"ndpext/internal/cxl"
	"ndpext/internal/dram"
	"ndpext/internal/energy"
	"ndpext/internal/noc"
	"ndpext/internal/nuca"
	"ndpext/internal/sampler"
	"ndpext/internal/sim"
	"ndpext/internal/stats"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
	"ndpext/internal/workloads"
)

// Result summarizes one simulation run.
type Result struct {
	Design   Design
	Workload string

	Time     sim.Time // makespan across cores
	Accesses uint64
	L1Hits   uint64

	Breakdown stats.Breakdown

	CacheHits   uint64
	CacheMisses uint64

	Energy energy.Breakdown

	MetaHitRate float64 // baselines: metadata cache hit rate
	SLBHitRate  float64 // NDPExt: SLB hit rate

	Reconfigs       int
	ReconfigKept    int
	ReconfigDropped int
	Exceptions      uint64
	ReplicatedRows  uint64 // last epoch's replicated rows (NDPExt)
	RowsAllocated   uint64 // last epoch's total allocation (NDPExt)
	SamplerCovered  int    // streams covered by samplers, last epoch

	streams []StreamReport
}

// CacheHitRate returns the DRAM cache hit rate.
func (r *Result) CacheHitRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(t)
}

// MissRate returns the DRAM cache miss rate (requests served by the
// extended memory; Fig. 7's dot metric).
func (r *Result) MissRate() float64 {
	t := r.CacheHits + r.CacheMisses
	if t == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(t)
}

// AvgInterconnectNS is the mean interconnect time per access (Fig. 7).
func (r *Result) AvgInterconnectNS() float64 { return r.Breakdown.AvgInterconnectNS() }

// StreamReport is one stream's end-of-run summary (diagnostics).
type StreamReport struct {
	SID       stream.ID
	Type      string
	ReadOnly  bool
	Bytes     uint64
	Hits      uint64
	Misses    uint64
	Rows      uint64 // allocated rows at end of run
	Groups    int
	KneeBytes int64
}

// StreamReports returns per-stream diagnostics after a run (NDPExt
// designs only; empty otherwise).
func (r *Result) StreamReports() []StreamReport { return r.streams }

// Run simulates the trace on the configured machine.
func Run(cfg Config, tr *workloads.Trace) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Design == Host {
		return runHost(cfg, tr)
	}
	if len(tr.PerCore) != cfg.NumUnits() {
		return nil, fmt.Errorf("system: trace has %d cores, machine has %d units",
			len(tr.PerCore), cfg.NumUnits())
	}
	s := newNDPSim(cfg, tr)
	s.bootstrap()
	s.loop()
	return s.result(), nil
}

// samplerKey identifies one hardware sampler's assignment.
type samplerKey struct {
	unit int
	sid  stream.ID
}

// ndpSim is the event-driven simulator for all NDP designs.
type ndpSim struct {
	cfg   Config
	tr    *workloads.Trace
	clock sim.Clock

	net  *noc.Network
	ext  *cxl.Device
	devs []*dram.Device
	l1s  []*cache.Cache

	// Exactly one of sc/nc is set, by design.
	sc *streamcache.Controller
	nc *nuca.Controller

	att [][]float64 // attenuation factors for the policy

	samplers       map[samplerKey]*sampler.Sampler // local: one core's traffic
	globalSamplers map[stream.ID]*sampler.Sampler  // home-set view: all cores' traffic
	curves         map[stream.ID]sampler.Curve     // global curves
	localCurves    map[stream.ID]sampler.Curve     // per-core curves
	hist           map[stream.ID]map[int]float64   // decayed per-unit access history
	netLatMemo     map[int]float64                 // degree -> mean nearest-replica latency
	uncovered      map[stream.ID]bool              // streams no sampler covered last epoch (§V-B rotation)
	observes       uint64                          // sampler updates (for SRAM energy)

	epoch     int
	nextEpoch sim.Time
	epochDur  sim.Time

	q   sim.EventQueue
	idx []int

	res Result
}

func newNDPSim(cfg Config, tr *workloads.Trace) *ndpSim {
	n := cfg.NumUnits()
	s := &ndpSim{
		cfg:            cfg,
		tr:             tr,
		clock:          sim.NewClock(cfg.CoreFreqMHz),
		net:            noc.New(cfg.NoC),
		ext:            cxl.New(cfg.CXL),
		samplers:       make(map[samplerKey]*sampler.Sampler),
		globalSamplers: make(map[stream.ID]*sampler.Sampler),
		curves:         make(map[stream.ID]sampler.Curve),
		localCurves:    make(map[stream.ID]sampler.Curve),
		idx:            make([]int, n),
	}
	for i := 0; i < n; i++ {
		s.devs = append(s.devs, dram.NewDevice(cfg.Mem, cfg.BanksPerUnit))
		s.l1s = append(s.l1s, cache.New(cfg.L1Bytes, cfg.L1LineBytes, cfg.L1Assoc))
	}
	switch cfg.Design {
	case NDPExt, NDPExtStatic:
		s.sc = streamcache.NewController(cfg.Stream, n, tr.Table)
	case Jigsaw, Whirlpool, Nexus, StaticInterleave:
		np := nuca.DefaultParams()
		np.RowBytes = cfg.rowBytes()
		// The 128 kB metadata cache scales with every other capacity.
		np.MetaCacheBytes = maxI(np.MetaCacheBytes/CapacityDivisor, 8*np.MetaEntryBytes)
		s.nc = nuca.NewController(nucaKind(cfg.Design), np, n, cfg.UnitRows, tr.Table)
	default:
		panic(fmt.Sprintf("system: design %v not an NDP design", cfg.Design))
	}
	// Attenuation factors (§V-C): DRAM latency over DRAM+interconnect.
	dramNS := s.devs[0].RawLatency(false, 64).NS()
	s.att = make([][]float64, n)
	for u := 0; u < n; u++ {
		s.att[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			s.att[u][v] = dramNS / (dramNS + s.net.BaseLatency(u, v, 64).NS())
		}
	}
	s.epochDur = s.clock.Cycles(cfg.EpochCycles)
	s.nextEpoch = s.epochDur
	s.res.Design = cfg.Design
	s.res.Workload = tr.Name
	return s
}

func nucaKind(d Design) nuca.Kind {
	switch d {
	case Jigsaw:
		return nuca.Jigsaw
	case Whirlpool:
		return nuca.Whirlpool
	case Nexus:
		return nuca.Nexus
	default:
		return nuca.StaticInterleave
	}
}

// loop runs the event queue to completion.
func (s *ndpSim) loop() {
	for c := range s.tr.PerCore {
		if len(s.tr.PerCore[c]) > 0 {
			s.q.Push(0, c)
		}
	}
	var end sim.Time
	for s.q.Len() > 0 {
		ev := s.q.Pop()
		for ev.When >= s.nextEpoch {
			s.epochBoundary()
			s.nextEpoch += s.epochDur
		}
		c := ev.ID
		a := s.tr.PerCore[c][s.idx[c]]
		done := s.access(ev.When, c, a)
		s.idx[c]++
		s.res.Accesses++
		if done > end {
			end = done
		}
		if s.idx[c] < len(s.tr.PerCore[c]) {
			s.q.Push(done, c)
		}
	}
	s.res.Time = end
	s.finishStats()
}

// access simulates one memory access and returns its completion time.
func (s *ndpSim) access(start sim.Time, core int, a workloads.Access) sim.Time {
	bd := &s.res.Breakdown
	bd.Accesses++

	t := start + s.clock.Cycles(int64(a.Gap)) + s.clock.Cycles(s.cfg.L1LatCycles)
	if hit, _, _ := s.l1s[core].Access(a.Addr, a.Write); hit {
		bd.Core += t - start
		s.res.L1Hits++
		return t
	}
	bd.Core += t - start

	if s.sc != nil {
		return s.accessStream(t, core, a)
	}
	return s.accessNUCA(t, core, a)
}

// accessStream is the NDPExt path: SLB -> home unit -> ATA/embedded tag
// -> extended memory on miss.
func (s *ndpSim) accessStream(t sim.Time, core int, a workloads.Access) sim.Time {
	bd := &s.res.Breakdown
	lk := s.sc.Lookup(core, a.Addr, a.Write)

	m := t
	t += s.clock.Cycles(s.cfg.SLBLatCycles)
	if lk.SLBMissLocal {
		t += s.cfg.SLBMissPenalty
	}
	if lk.WriteException {
		t += s.cfg.WriteExceptionLat
		s.res.Exceptions++
	}
	bd.Meta += t - m

	if !lk.Bypass {
		// Sample before the no-space branch: an unfunded stream must
		// still be profiled, or it could never earn an allocation.
		s.observe(core, lk.SID, lk.ItemID)
	}
	if lk.Bypass || lk.NoSpace {
		return s.extAccess(t, core, a.Addr, maxI(lk.FetchBytes, 64), a.Write)
	}

	// Request to the home unit.
	tr1 := s.net.Route(t, core, lk.Home, 32)
	bd.IntraNoC += tr1.IntraDelay
	bd.InterNoC += tr1.InterDelay
	t = tr1.Arrive
	if lk.SLBMissHome {
		m = t
		t += s.clock.Cycles(s.cfg.SLBLatCycles) + s.cfg.SLBMissPenalty
		bd.Meta += t - m
	}

	accBytes := 64 // column read within an affine block
	if !lk.Affine {
		st := s.tr.Table.Get(lk.SID)
		accBytes = int(st.ElemSize) + s.cfg.Stream.TagBytes
	}
	if lk.Hit {
		d := t
		t, _ = s.devs[lk.Home].Access(t, lk.HomeRow, accBytes, a.Write)
		if lk.WayMispredict {
			// Way-predicted associative organization: a misprediction
			// costs a second DRAM access to read the right way.
			t, _ = s.devs[lk.Home].Access(t, lk.HomeRow, accBytes, false)
		}
		bd.CacheDRAM += t - d
		s.res.CacheHits++
	} else {
		s.res.CacheMisses++
		if !lk.Affine {
			// Indirect streams discover the miss by reading the
			// embedded tag: one DRAM access before going off-device.
			d := t
			t, _ = s.devs[lk.Home].Access(t, lk.HomeRow, accBytes, false)
			bd.CacheDRAM += t - d
		}
		t = s.extAccess(t, lk.Home, a.Addr, lk.FetchBytes, false)
		// Fill the DRAM cache off the critical path.
		s.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
		if lk.WritebackBytes > 0 {
			s.extWriteback(t, lk.Home, a.Addr, lk.WritebackBytes)
		}
	}

	// Response with the data.
	tr2 := s.net.Route(t, lk.Home, core, 96)
	bd.IntraNoC += tr2.IntraDelay
	bd.InterNoC += tr2.InterDelay
	return tr2.Arrive
}

// accessNUCA is the baseline path: metadata cache -> (DRAM metadata on
// miss) -> data home -> extended memory on miss.
func (s *ndpSim) accessNUCA(t sim.Time, core int, a workloads.Access) sim.Time {
	bd := &s.res.Breakdown
	lk := s.nc.Lookup(core, a.Addr, a.Write)

	m := t
	t += s.clock.Cycles(s.cfg.MetaLatCycles)
	bd.Meta += t - m
	if lk.SID != stream.NoStream {
		s.observe(core, lk.SID, a.Addr/uint64(64))
	}

	if !lk.MetaHit {
		// Walk to the home unit for the DRAM metadata access.
		tr1 := s.net.Route(t, core, lk.Home, 32)
		bd.IntraNoC += tr1.IntraDelay
		bd.InterNoC += tr1.InterDelay
		t = tr1.Arrive
		m = t
		t, _ = s.devs[lk.Home].Access(t, lk.MetaDRAMRow, 64, false)
		bd.Meta += t - m
		if lk.Hit {
			d := t
			t, _ = s.devs[lk.Home].Access(t, lk.HomeRow, 64, a.Write)
			bd.CacheDRAM += t - d
			s.res.CacheHits++
		} else {
			s.res.CacheMisses++
			t = s.extAccess(t, lk.Home, a.Addr, lk.FetchBytes, false)
			s.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
			if lk.WritebackBytes > 0 {
				s.extWriteback(t, lk.Home, a.Addr, lk.WritebackBytes)
			}
		}
		tr2 := s.net.Route(t, lk.Home, core, 96)
		bd.IntraNoC += tr2.IntraDelay
		bd.InterNoC += tr2.InterDelay
		return tr2.Arrive
	}

	// Metadata hit at the requester: the location and tag are known.
	if lk.Hit {
		tr1 := s.net.Route(t, core, lk.Home, 32)
		bd.IntraNoC += tr1.IntraDelay
		bd.InterNoC += tr1.InterDelay
		t = tr1.Arrive
		d := t
		t, _ = s.devs[lk.Home].Access(t, lk.HomeRow, 64, a.Write)
		bd.CacheDRAM += t - d
		s.res.CacheHits++
		tr2 := s.net.Route(t, lk.Home, core, 96)
		bd.IntraNoC += tr2.IntraDelay
		bd.InterNoC += tr2.InterDelay
		return tr2.Arrive
	}
	s.res.CacheMisses++
	t = s.extAccess(t, core, a.Addr, lk.FetchBytes, a.Write)
	s.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
	if lk.WritebackBytes > 0 {
		s.extWriteback(t, lk.Home, a.Addr, lk.WritebackBytes)
	}
	return t
}

// extAccess routes from the unit to the central CXL controller over the
// stack's dedicated controller link (paper Fig. 1), performs the extended
// memory access, and routes back, attributing time to the breakdown. It
// returns the completion time.
func (s *ndpSim) extAccess(t sim.Time, from int, addr uint64, bytes int, write bool) sim.Time {
	bd := &s.res.Breakdown
	reqBytes := 32
	if write {
		reqBytes += bytes
	}
	tr1 := s.net.RouteCXL(t, from, reqBytes, true)
	bd.IntraNoC += tr1.IntraDelay
	bd.InterNoC += tr1.InterDelay
	e := tr1.Arrive
	done := s.ext.Access(e, addr, bytes, write)
	bd.Extended += done - e
	respBytes := 32
	if !write {
		respBytes += bytes
	}
	tr2 := s.net.RouteCXL(done, from, respBytes, false)
	bd.IntraNoC += tr2.IntraDelay
	bd.InterNoC += tr2.InterDelay
	return tr2.Arrive
}

// extWriteback issues a fire-and-forget dirty eviction to the extended
// memory: it consumes NoC and CXL bandwidth but does not delay the
// requester.
func (s *ndpSim) extWriteback(t sim.Time, from int, addr uint64, bytes int) {
	tr := s.net.RouteCXL(t, from, 32+bytes, true)
	s.ext.Access(tr.Arrive, addr, bytes, true)
}

// observe feeds the access to the stream's samplers: the local sampler
// (this epoch's assigned unit only -- the per-core reuse view) and the
// global one (the home sets see traffic from every core, §V-A).
func (s *ndpSim) observe(unit int, sid stream.ID, item uint64) {
	if smp := s.samplers[samplerKey{unit, sid}]; smp != nil {
		smp.Observe(item)
		s.observes++
	}
	if smp := s.globalSamplers[sid]; smp != nil {
		smp.Observe(item)
		s.observes++
	}
}

// finishStats fills the run-level statistics after the event loop.
func (s *ndpSim) finishStats() {
	r := &s.res
	if s.sc != nil {
		st := s.sc.Stats()
		if t := st.SLBHits + st.SLBMisses; t > 0 {
			r.SLBHitRate = float64(st.SLBHits) / float64(t)
		}
	}
	if s.nc != nil {
		r.MetaHitRate = s.nc.MetaHitRate()
	}
	// Energy (Fig. 6 breakdown).
	var ndpDram float64
	for _, d := range s.devs {
		ndpDram += d.Stats().EnergyPJ
	}
	extD := s.ext.DRAMStats()
	staticMW := float64(s.cfg.NumUnits())*(s.cfg.Mem.StaticMWPerU+s.cfg.CoreStaticMW) +
		float64(s.cfg.CXL.Channels)*s.cfg.CXL.DRAM.StaticMWPerU
	// SRAM access energy (§VI: the paper models SLB/ATA/samplers with
	// CACTI; the baselines' metadata caches get the same treatment).
	var sram float64
	sram += float64(r.Breakdown.Accesses) * energy.L1AccessPJ
	sram += float64(s.observes) * energy.SamplerUpdatePJ
	if s.sc != nil {
		st := s.sc.Stats()
		sram += float64(st.SLBHits+st.SLBMisses) * energy.SLBAccessPJ
		sram += float64(st.Hits+st.Misses) * energy.ATAAccessPJ
	}
	if s.nc != nil {
		st := s.nc.Stats()
		sram += float64(st.MetaHits+st.MetaMisses) * energy.MetaCachePJ
	}
	r.Energy = energy.Breakdown{
		StaticPJ:  energy.Static(staticMW, r.Time),
		NDPDramPJ: ndpDram,
		ExtDramPJ: extD.EnergyPJ,
		NoCPJ:     s.net.Stats().EnergyPJ,
		CXLLinkPJ: s.ext.Stats().LinkEnergyPJ,
		SRAMPJ:    sram,
	}
	r.CacheHits = cacheHits(s)
	r.CacheMisses = cacheMisses(s)

	for _, st := range s.tr.Table.All() {
		sr := StreamReport{
			SID: st.SID, Type: st.Type.String(), ReadOnly: st.ReadOnly, Bytes: st.Size,
		}
		if cv, ok := s.curves[st.SID]; ok {
			sr.KneeBytes = cv.Knee(0.05)
		}
		if s.sc != nil {
			ss := s.sc.StreamStatsFor(st.SID)
			sr.Hits, sr.Misses = ss.Hits, ss.Misses
			if a, ok := s.sc.Allocation(st.SID); ok {
				sr.Rows = a.TotalRows()
				sr.Groups = len(a.GroupIDs())
			}
		} else {
			ss := s.nc.StreamStatsFor(st.SID)
			sr.Hits, sr.Misses = ss.Hits, ss.Misses
		}
		r.streams = append(r.streams, sr)
	}
}

// cacheHits/cacheMisses read the authoritative controller counters (the
// running tallies in res track the same values; the controllers are the
// source of truth).
func cacheHits(s *ndpSim) uint64 {
	if s.sc != nil {
		return s.sc.Stats().Hits
	}
	return s.nc.Stats().Hits
}

func cacheMisses(s *ndpSim) uint64 {
	if s.sc != nil {
		st := s.sc.Stats()
		return st.Misses + st.NoSpace + st.Bypasses
	}
	return s.nc.Stats().Misses
}

func (s *ndpSim) result() *Result { return &s.res }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
