package system

import (
	"ndpext/internal/sampler"
	"ndpext/internal/stream"
)

// The epoch pipeline overlaps the host runtime's sampler bookkeeping
// with the event-loop simulation, byte-identically to the serial path.
//
// The key observation is that sampler observations never influence the
// timing of the epoch that produces them: Observe feeds shadow state
// whose only outputs are the miss curves harvested at the next epoch
// boundary and the Observes counter (SRAM energy). So the event loop can
// hand each observation to a dedicated worker goroutine over a bounded
// channel of immutable batches, and keep simulating. The boundary then
// proceeds in three beats:
//
//  1. join — the boundary flushes the batch in flight and asks the
//     worker to harvest curves; FIFO hand-off order guarantees every
//     observation of the closing epoch has been applied first.
//  2. solve — the configuration solve (policy.Optimize / nuca.Configure)
//     and Apply run on the event-loop thread: the next epoch's accesses
//     depend on the installed allocation, so this part is inherently
//     serial and stays the critical path.
//  3. detach — the sampler reassignment (retire, max-flow, install) is
//     posted to the worker and overlaps the next epoch's event loop.
//     Observations of the next epoch queue behind it, so they meet the
//     newly installed samplers exactly as they would serially.
//
// Everything the worker owns after start-up — the sampler bank, the
// uncovered-stream rotation set, the observation counter — is touched by
// the event-loop thread only through the channel protocol, and rejoined
// at the boundary (curves, counters) or at end of run.
const (
	// obsBatchSize is the hand-off granularity: big enough to amortize
	// channel overhead, small enough that a batch is cache-resident.
	obsBatchSize = 4096
	// pipeDepth bounds batches in flight; the event loop backpressures
	// (blocks on send) rather than queueing unbounded observations.
	pipeDepth = 8
)

// obs is one sampler observation: the unit that served the access, the
// stream it belongs to, and the item ID observed.
type obs struct {
	unit int32
	sid  stream.ID
	item uint64
}

// harvestReply carries one epoch's curves (and the authoritative
// observation counter) back to the event-loop thread.
type harvestReply struct {
	global, local []harvestedCurve
	observes      uint64
	panicked      any
}

// jobReply acknowledges a synchronous reassignment.
type jobReply struct {
	covered  int
	panicked any
}

// finalReply is the end-of-run join.
type finalReply struct {
	observes uint64
	covered  int
	panicked any
}

// pipeMsg is one hand-off message; exactly one field is set.
type pipeMsg struct {
	batch   []obs
	harvest chan harvestReply
	job     *reassignJob
	jobDone chan jobReply // non-nil with job: caller wants the coverage count now
	final   chan finalReply
}

// epochPipe is the event-loop side of the pipeline plus the worker's
// exclusive state.
type epochPipe struct {
	msgs chan pipeMsg
	free chan []obs // batch recycling; best-effort
	cur  []obs

	// Worker-owned after newEpochPipe returns.
	bank      *samplerBank
	scfg      sampler.Config
	observes  uint64
	uncovered map[stream.ID]bool
	covered   int
	panicked  any
}

// newEpochPipe starts the epoch worker over the given sampler bank. The
// caller must not touch the bank again until the pipe is closed.
func newEpochPipe(bank *samplerBank, scfg sampler.Config) *epochPipe {
	p := &epochPipe{
		msgs: make(chan pipeMsg, pipeDepth),
		free: make(chan []obs, pipeDepth+1),
		cur:  make([]obs, 0, obsBatchSize),
		bank: bank,
		scfg: scfg,
	}
	go p.worker()
	return p
}

// observe is the pipelined counterpart of ndpSim.observe: record the
// observation and hand it off once the batch fills. Runs on the
// event-loop thread.
func (p *epochPipe) observe(unit int, sid stream.ID, item uint64) {
	p.cur = append(p.cur, obs{unit: int32(unit), sid: sid, item: item})
	if len(p.cur) == cap(p.cur) {
		p.flush()
	}
}

// flush sends the batch in flight (if any) and takes a recycled one.
func (p *epochPipe) flush() {
	if len(p.cur) == 0 {
		return
	}
	p.msgs <- pipeMsg{batch: p.cur}
	select {
	case b := <-p.free:
		p.cur = b[:0]
	default:
		p.cur = make([]obs, 0, obsBatchSize)
	}
}

// harvest drains every pending observation and returns the epoch's
// curves. Called at the boundary, before the configuration solve.
func (p *epochPipe) harvest() harvestReply {
	p.flush()
	ch := make(chan harvestReply, 1)
	p.msgs <- pipeMsg{harvest: ch}
	rep := <-ch
	if rep.panicked != nil {
		panic(rep.panicked)
	}
	return rep
}

// reassignAsync posts the reassignment without waiting: the worker runs
// it concurrently with the next epoch's event loop.
func (p *epochPipe) reassignAsync(job *reassignJob) {
	p.msgs <- pipeMsg{job: job}
}

// reassignSync posts the reassignment and waits for the coverage count
// (needed when Config.OnEpoch observes it at the boundary).
func (p *epochPipe) reassignSync(job *reassignJob) int {
	ch := make(chan jobReply, 1)
	p.msgs <- pipeMsg{job: job, jobDone: ch}
	rep := <-ch
	if rep.panicked != nil {
		panic(rep.panicked)
	}
	return rep.covered
}

// close drains the pipeline, stops the worker, and returns the final
// counters. A panic that escaped the worker is re-raised here, on the
// event-loop thread, where the serial path would have raised it.
func (p *epochPipe) close() finalReply {
	p.flush()
	ch := make(chan finalReply, 1)
	p.msgs <- pipeMsg{final: ch}
	rep := <-ch
	if rep.panicked != nil {
		panic(rep.panicked)
	}
	return rep
}

// abort stops the worker without joining its results or re-raising its
// panic — the crash-cleanup path, called while the event-loop thread is
// itself unwinding a panic. The worker stays alive until it sees the
// final marker (it answers joins even when poisoned), so the send and
// receive both complete.
func (p *epochPipe) abort() {
	ch := make(chan finalReply, 1)
	p.msgs <- pipeMsg{final: ch}
	<-ch
}

// worker is the epoch worker's loop: apply observation batches, harvest
// curves, run reassignments — strictly in hand-off order.
func (p *epochPipe) worker() {
	for m := range p.msgs {
		p.step(m)
		if m.final != nil {
			m.final <- finalReply{observes: p.observes, covered: p.covered, panicked: p.panicked}
			return
		}
	}
}

// step processes one message. A panic inside sampler or max-flow code is
// captured and the pipe poisoned: state stops advancing, every
// subsequent join is answered with the panic value so the event loop
// re-raises it instead of deadlocking.
func (p *epochPipe) step(m pipeMsg) {
	replied := false
	defer func() {
		if r := recover(); r != nil {
			if p.panicked == nil {
				p.panicked = r
			}
			if !replied {
				if m.harvest != nil {
					m.harvest <- harvestReply{panicked: p.panicked}
				}
				if m.jobDone != nil {
					m.jobDone <- jobReply{panicked: p.panicked}
				}
			}
		}
	}()
	if p.panicked != nil {
		if m.harvest != nil {
			m.harvest <- harvestReply{panicked: p.panicked}
		}
		if m.jobDone != nil {
			m.jobDone <- jobReply{panicked: p.panicked}
		}
		replied = true
		return
	}
	switch {
	case m.batch != nil:
		for _, o := range m.batch {
			p.apply(o)
		}
		select {
		case p.free <- m.batch:
		default:
		}
	case m.harvest != nil:
		g, l := harvestCurves(p.bank)
		m.harvest <- harvestReply{global: g, local: l, observes: p.observes}
		replied = true
	case m.job != nil:
		p.covered, p.uncovered = m.job.run(p.bank, p.uncovered)
		if m.jobDone != nil {
			m.jobDone <- jobReply{covered: p.covered}
			replied = true
		}
	}
}

// apply feeds one observation to the stream's samplers — the same
// local/global/pair logic as ndpSim.observe, applied in identical order,
// so shadow state and the Observes counter match the serial run exactly.
func (p *epochPipe) apply(o obs) {
	l := p.bank.local[o.unit][o.sid]
	g := p.bank.global[o.sid]
	switch {
	case l != nil && g != nil:
		sampler.ObservePair(l, g, o.item)
		p.observes += 2
	case g != nil:
		g.Observe(o.item)
		p.observes++
	case l != nil:
		l.Observe(o.item)
		p.observes++
	}
}
