package system

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// serialVsPipelined runs the same config + trace through both modes and
// fails on any externally visible divergence: the fingerprint (every
// Result field), the per-stream reports, and the full telemetry
// registry must all be byte-identical.
func serialVsPipelined(t *testing.T, cfg Config, workload string) {
	t.Helper()
	tr := tinyTrace(t, workload)
	serial, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par, err := RunPipelined(cfg, tr.Clone())
	if err != nil {
		t.Fatalf("pipelined: %v", err)
	}
	if fp(serial) != fp(par) {
		t.Fatalf("fingerprint diverged:\nserial    %+v\npipelined %+v", fp(serial), fp(par))
	}
	if !reflect.DeepEqual(serial.StreamReports(), par.StreamReports()) {
		t.Fatalf("stream reports diverged:\nserial    %+v\npipelined %+v",
			serial.StreamReports(), par.StreamReports())
	}
	sm, _ := json.Marshal(serial.Metrics())
	pm, _ := json.Marshal(par.Metrics())
	if string(sm) != string(pm) {
		t.Fatalf("metrics registry diverged:\nserial    %s\npipelined %s", sm, pm)
	}
}

// Every NDP design must produce byte-identical results in pipelined
// mode, including the designs that do not profile (they fall back to the
// serial path internally, but the entry point must still work).
func TestPipelinedMatchesSerialAllDesigns(t *testing.T) {
	for _, d := range NDPDesigns() {
		t.Run(d.String(), func(t *testing.T) {
			serialVsPipelined(t, smallConfig(d), "pr")
		})
	}
}

// Parity across contrasting access patterns for the main design.
func TestPipelinedMatchesSerialWorkloads(t *testing.T) {
	for _, w := range []string{"recsys", "gnn", "bfs", "backprop"} {
		t.Run(w, func(t *testing.T) {
			serialVsPipelined(t, smallConfig(NDPExt), w)
		})
	}
}

// Fault injection exercises the degraded epoch boundary: dead vaults
// zero sampler capacity in the reassignment job and force remaps. The
// pipeline must carry those inputs to the worker unchanged.
func TestPipelinedMatchesSerialFaults(t *testing.T) {
	cfg := faultConfig(t, NDPExt,
		"vault-fail,unit=5,at=100us;cxl-retry,rate=0.05,lat=200ns;cxl-degrade,at=200us,dur=100us,factor=4")
	serialVsPipelined(t, cfg, "pr")
}

// OnEpoch forces the synchronous reassignment join; the per-epoch info
// stream must match the serial run field for field.
func TestPipelinedOnEpochParity(t *testing.T) {
	tr := tinyTrace(t, "pr")
	collect := func(pipelined bool) []EpochInfo {
		var infos []EpochInfo
		cfg := smallConfig(NDPExt)
		cfg.OnEpoch = func(ei EpochInfo) { infos = append(infos, ei) }
		run := Run
		if pipelined {
			run = RunPipelined
		}
		if _, err := run(cfg, tr.Clone()); err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		return infos
	}
	serial := collect(false)
	par := collect(true)
	if len(serial) == 0 {
		t.Fatal("no epochs observed")
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("epoch info diverged:\nserial    %+v\npipelined %+v", serial, par)
	}
}

// Cancellation mid-run must drain the pipeline cleanly and flush the
// same partial-statistics shape as the serial path (Truncated set, the
// context error returned).
func TestPipelinedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := smallConfig(NDPExt)
	cfg.OnEpoch = func(EpochInfo) { cancel() } // cancel mid-run, after the first boundary
	tr := tinyTrace(t, "pr")
	res, err := RunPipelinedContext(ctx, cfg, tr)
	if err == nil {
		t.Fatal("want context error")
	}
	if res == nil || !res.Truncated || res.TruncateReason != truncatedCanceled {
		t.Fatalf("partial result not marked canceled: %+v", res)
	}
}

// A tripped wall-clock watchdog must likewise join the worker before
// finishStats reads the counters.
func TestPipelinedWatchdog(t *testing.T) {
	cfg := smallConfig(NDPExt)
	cfg.MaxWall = time.Nanosecond
	res, err := RunPipelined(cfg, tinyTrace(t, "pr"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("watchdog did not trip")
	}
}

// A panic inside worker-side code must surface on the caller's
// goroutine, exactly where the serial path would have raised it.
func TestPipePanicPropagates(t *testing.T) {
	bank := newSamplerBank(2)
	cfg := smallConfig(NDPExt)
	p := newEpochPipe(bank, cfg.Sampler)
	p.observe(99, 1, 0) // out-of-range unit: worker's apply will panic
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	p.harvest()
}
