package system

import (
	"ndpext/internal/sim"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// streamPath is the NDPExt memory path: SLB -> home unit -> ATA/embedded
// tag -> extended memory on miss.
type streamPath struct {
	*pathDeps
	sc    *streamcache.Controller
	table *stream.Table
}

// Access implements MemPath.
func (p *streamPath) Access(t sim.Time, core int, a workloads.Access) (sim.Time, telemetry.Level, stream.ID) {
	tel := p.tel
	lk := p.sc.Lookup(core, a.Addr, a.Write)

	m := t
	t += p.clock.Cycles(p.cfg.SLBLatCycles)
	if lk.SLBMissLocal {
		t += p.cfg.SLBMissPenalty
	}
	if lk.WriteException {
		t += p.cfg.WriteExceptionLat
		tel.Exceptions++
	}
	tel.Add(telemetry.LevelMeta, t-m)

	if !lk.Bypass {
		// Sample before the no-space branch: an unfunded stream must
		// still be profiled, or it could never earn an allocation.
		p.observe(core, lk.SID, lk.ItemID)
	}
	if lk.Bypass || lk.NoSpace {
		return p.ext.access(t, core, a.Addr, max(lk.FetchBytes, 64), a.Write),
			telemetry.LevelExtended, lk.SID
	}
	if p.inj != nil && p.devs[lk.Home].Offline(t) {
		// The home vault is dead (fault injection): serve from extended
		// memory until the next reconfiguration remaps the stream. The
		// SLB/ATA are logic-die SRAM and keep answering, so the lookup
		// above stands; skipping the fill keeps the dead vault cold.
		p.inj.RecordRedirect()
		return p.ext.access(t, core, a.Addr, max(lk.FetchBytes, 64), a.Write),
			telemetry.LevelExtended, lk.SID
	}

	// Request to the home unit.
	tr1 := p.net.Route(t, core, lk.Home, 32)
	tel.Add(telemetry.LevelIntraNoC, tr1.IntraDelay)
	tel.Add(telemetry.LevelInterNoC, tr1.InterDelay)
	t = tr1.Arrive
	if lk.SLBMissHome {
		m = t
		t += p.clock.Cycles(p.cfg.SLBLatCycles) + p.cfg.SLBMissPenalty
		tel.Add(telemetry.LevelMeta, t-m)
	}

	accBytes := 64 // column read within an affine block
	if !lk.Affine {
		st := p.table.Get(lk.SID)
		accBytes = int(st.ElemSize) + p.cfg.Stream.TagBytes
	}
	served := telemetry.LevelCacheDRAM
	if lk.Hit {
		d := t
		t, _ = p.devs[lk.Home].Access(t, lk.HomeRow, accBytes, a.Write)
		if lk.WayMispredict {
			// Way-predicted associative organization: a misprediction
			// costs a second DRAM access to read the right way.
			t, _ = p.devs[lk.Home].Access(t, lk.HomeRow, accBytes, false)
		}
		tel.Add(telemetry.LevelCacheDRAM, t-d)
		tel.CacheHits++
	} else {
		served = telemetry.LevelExtended
		tel.CacheMisses++
		if !lk.Affine {
			// Indirect streams discover the miss by reading the
			// embedded tag: one DRAM access before going off-device.
			d := t
			t, _ = p.devs[lk.Home].Access(t, lk.HomeRow, accBytes, false)
			tel.Add(telemetry.LevelCacheDRAM, t-d)
		}
		t = p.ext.access(t, lk.Home, a.Addr, lk.FetchBytes, false)
		// Fill the DRAM cache off the critical path.
		p.devs[lk.Home].Access(t, lk.HomeRow, lk.FetchBytes, true)
		if lk.WritebackBytes > 0 {
			p.ext.writeback(t, lk.Home, a.Addr, lk.WritebackBytes)
		}
	}

	// Response with the data.
	tr2 := p.net.Route(t, lk.Home, core, 96)
	tel.Add(telemetry.LevelIntraNoC, tr2.IntraDelay)
	tel.Add(telemetry.LevelInterNoC, tr2.InterDelay)
	return tr2.Arrive, served, lk.SID
}
