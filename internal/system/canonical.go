package system

import (
	"bytes"
	"fmt"
)

// canonicalVersion tags the canonical serialization format. Bump it
// whenever the layout below (or the meaning of a serialized field)
// changes, so stale content-addressed cache entries miss instead of
// aliasing results from a different simulator semantics.
const canonicalVersion = "ndpext-config/v2"

// CanonicalBytes returns a deterministic, versioned serialization of
// every simulation-affecting field of the configuration. Two configs
// with equal CanonicalBytes produce bit-identical simulations of the
// same trace; hooks and debug plumbing (OnEpoch, Probe, DebugReconfig,
// DebugWriter) are deliberately excluded because they cannot change
// simulated results. The output is the hashing input for
// content-addressed result caching — it is stable across processes and
// machines for a given format version, but is not a decodable wire
// format.
//
// The watchdog limits ARE included: MaxCycles changes where a run
// truncates, and MaxWall makes truncation nondeterministic, so runs
// with different limits must never share a cache entry.
func (c Config) CanonicalBytes() []byte {
	var b bytes.Buffer
	b.WriteString(canonicalVersion)
	// The nested parameter structs (dram.Params, noc.Config, cxl.Config,
	// streamcache.Params, sampler.Config) hold only scalars, so %+v
	// renders them deterministically in declaration order.
	fmt.Fprintf(&b, "|design=%d", int(c.Design))
	fmt.Fprintf(&b, "|mem=%+v", c.Mem)
	fmt.Fprintf(&b, "|noc=%+v", c.NoC)
	fmt.Fprintf(&b, "|cxl=%+v", c.CXL)
	fmt.Fprintf(&b, "|freq=%g|l1=%d/%d/%d/%d", c.CoreFreqMHz, c.L1Bytes, c.L1Assoc, c.L1LineBytes, c.L1LatCycles)
	fmt.Fprintf(&b, "|rows=%d|banks=%d", c.UnitRows, c.BanksPerUnit)
	fmt.Fprintf(&b, "|stream=%+v", c.Stream)
	fmt.Fprintf(&b, "|sampler=%+v", c.Sampler)
	fmt.Fprintf(&b, "|epoch=%d|reconfig=%d|partial=%d|chash=%t",
		c.EpochCycles, int(c.Reconfig), c.PartialEpochs, c.ConsistentHash)
	fmt.Fprintf(&b, "|slb=%d/%v|meta=%d|wex=%v",
		c.SLBLatCycles, c.SLBMissPenalty, c.MetaLatCycles, c.WriteExceptionLat)
	fmt.Fprintf(&b, "|host=%d/%d/%d/%d/%d",
		c.HostCores, c.HostLLCBytes, c.HostLLCAssoc, c.HostLLCLat, c.HostNoCLat)
	fmt.Fprintf(&b, "|static=%g", c.CoreStaticMW)
	// adapt.Params holds only scalars and strings, so %+v is
	// deterministic; the bandit seed rides next to it because both only
	// matter to the NDPExt-MAB design but must always key the cache.
	fmt.Fprintf(&b, "|adapt=%+v|bseed=%d", c.Adapt, c.BanditSeed)
	fmt.Fprintf(&b, "|faults=%s|fseed=%d", c.Faults.String(), c.FaultSeed)
	fmt.Fprintf(&b, "|maxwall=%d|maxcycles=%d", int64(c.MaxWall), c.MaxCycles)
	fmt.Fprintf(&b, "|seed=%d", c.Seed)
	return b.Bytes()
}
