package system

import (
	"bytes"
	"testing"
	"time"

	"ndpext/internal/fault"
	"ndpext/internal/telemetry"
)

func TestCanonicalBytesDeterministic(t *testing.T) {
	a := DefaultConfig(NDPExt).CanonicalBytes()
	b := DefaultConfig(NDPExt).CanonicalBytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical configs serialize differently:\n%s\n%s", a, b)
	}
	if !bytes.HasPrefix(a, []byte(canonicalVersion)) {
		t.Fatalf("canonical bytes not version-tagged: %s", a[:40])
	}
}

// TestCanonicalBytesSensitivity flips one simulation-affecting field at a
// time and requires the serialization to change; hooks must not matter.
func TestCanonicalBytesSensitivity(t *testing.T) {
	base := DefaultConfig(NDPExt).CanonicalBytes()
	mutations := map[string]func(*Config){
		"design":     func(c *Config) { c.Design = Jigsaw },
		"mem":        func(c *Config) { c.Mem.TCAS++ },
		"noc":        func(c *Config) { c.NoC.InterGBps *= 2 },
		"cxl":        func(c *Config) { c.CXL.Channels++ },
		"l1":         func(c *Config) { c.L1Bytes *= 2 },
		"unit-rows":  func(c *Config) { c.UnitRows++ },
		"stream":     func(c *Config) { c.Stream.IndirectWays = 4 },
		"sampler":    func(c *Config) { c.Sampler.SampleSets = 16 },
		"epoch":      func(c *Config) { c.EpochCycles++ },
		"reconfig":   func(c *Config) { c.Reconfig = ReconfigStatic },
		"host":       func(c *Config) { c.HostCores = 32 },
		"faults":     func(c *Config) { c.Faults, _ = fault.Parse("cxl-retry,rate=0.5") },
		"fault-seed": func(c *Config) { c.FaultSeed = 99 },
		"max-wall":   func(c *Config) { c.MaxWall = time.Second },
		"max-cycles": func(c *Config) { c.MaxCycles = 1 },
		"seed":       func(c *Config) { c.Seed = 2 },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(NDPExt)
		mutate(&cfg)
		if bytes.Equal(base, cfg.CanonicalBytes()) {
			t.Errorf("mutating %s did not change CanonicalBytes", name)
		}
	}
	// Hooks and debug plumbing must NOT perturb the key.
	cfg := DefaultConfig(NDPExt)
	cfg.OnEpoch = func(EpochInfo) {}
	cfg.Probe = telemetry.FuncProbe(func(*telemetry.Event) {})
	cfg.DebugReconfig = !cfg.DebugReconfig
	cfg.DebugWriter = &bytes.Buffer{}
	if !bytes.Equal(base, cfg.CanonicalBytes()) {
		t.Error("hooks/debug fields leaked into CanonicalBytes")
	}
}
