package system

import (
	"bytes"
	"testing"
	"time"

	"ndpext/internal/fault"
	"ndpext/internal/telemetry"
)

// faultConfig builds the small test machine with a parsed fault spec.
func faultConfig(t *testing.T, d Design, spec string) Config {
	t.Helper()
	cfg := smallConfig(d)
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = s
	cfg.FaultSeed = 1
	return cfg
}

// registryWithout snapshots a metrics registry minus one name prefix.
func registryWithout(reg *telemetry.Registry, prefix string) map[string]telemetry.Value {
	out := map[string]telemetry.Value{}
	reg.Each(func(name string, v telemetry.Value) {
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			out[name] = v
		}
	})
	return out
}

// An injector whose clauses never fire (rate=0, window in the far
// future) must leave the simulation bit-identical to running with no
// injector at all — the registry may only gain the fault.* counters.
func TestZeroRateInjectorBitIdentical(t *testing.T) {
	tr := tinyTrace(t, "pr")
	base, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(faultConfig(t, NDPExt, "cxl-retry,rate=0;cxl-degrade,at=1s,factor=8;noc-flap,at=1s,lat=500ns"), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp(res) != fp(base) {
		t.Fatalf("inactive injector changed the result:\n%+v\nvs\n%+v", fp(base), fp(res))
	}
	bm := registryWithout(base.Metrics(), "fault.")
	rm := registryWithout(res.Metrics(), "fault.")
	if len(bm) != len(rm) {
		t.Fatalf("non-fault metric count changed: %d vs %d", len(bm), len(rm))
	}
	for name, v := range bm {
		if rm[name] != v {
			t.Fatalf("metric %q changed: %+v vs %+v", name, v, rm[name])
		}
	}
	if got := res.Metrics().Uint("fault.injected"); got != 0 {
		t.Fatalf("inactive injector reported %d injections", got)
	}
}

// A fixed (spec, fault-seed) must reproduce the whole run bit-for-bit:
// the Result, the metrics registry, and the JSONL probe byte stream.
func TestFaultDeterminism(t *testing.T) {
	tr := tinyTrace(t, "pr")
	spec := "cxl-retry,rate=0.05,lat=200ns;vault-fail,unit=2,at=0;noc-flap,stack=0,dir=0,lat=30ns"
	one := func() (*Result, map[string]telemetry.Value, []byte) {
		var buf bytes.Buffer
		jsonl := telemetry.NewJSONL(&buf)
		cfg := faultConfig(t, NDPExt, spec)
		cfg.Probe = telemetry.Sampled(jsonl, 7)
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if err := jsonl.Flush(); err != nil {
			t.Fatal(err)
		}
		return res, registryWithout(res.Metrics(), ""), buf.Bytes()
	}
	a, am, ab := one()
	b, bm, bb := one()
	if fp(a) != fp(b) {
		t.Fatalf("same fault seed diverged:\n%+v\nvs\n%+v", fp(a), fp(b))
	}
	if len(am) != len(bm) {
		t.Fatalf("metric count diverged: %d vs %d", len(am), len(bm))
	}
	for name, v := range am {
		if bm[name] != v {
			t.Fatalf("metric %q diverged: %+v vs %+v", name, v, bm[name])
		}
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("JSONL probe streams diverged between identical runs")
	}
	if a.Metrics().Uint("fault.injected") == 0 {
		t.Fatal("fault spec injected nothing; determinism test is vacuous")
	}

	// A different fault seed must actually change the injected pattern.
	cfg := faultConfig(t, NDPExt, spec)
	cfg.FaultSeed = 99
	c, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics().Uint("fault.retries") == a.Metrics().Uint("fault.retries") && fp(c) == fp(a) {
		t.Fatal("different fault seeds produced identical runs")
	}
}

// FaultSeed=0 falls back to the workload seed.
func TestFaultSeedFallback(t *testing.T) {
	tr := tinyTrace(t, "pr")
	cfgA := faultConfig(t, NDPExt, "cxl-retry,rate=0.05,lat=200ns")
	cfgA.Seed = 5
	cfgA.FaultSeed = 0
	cfgB := faultConfig(t, NDPExt, "cxl-retry,rate=0.05,lat=200ns")
	cfgB.Seed = 5
	cfgB.FaultSeed = 5
	a, err := Run(cfgA, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgB, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if fp(a) != fp(b) {
		t.Fatal("FaultSeed=0 did not fall back to Config.Seed")
	}
}

// With placement fixed (ReconfigStatic cuts the epoch feedback loop),
// injected faults can only add latency and energy, never remove them.
func TestFaultsMonotoneUnderStaticPlacement(t *testing.T) {
	tr := tinyTrace(t, "pr")
	base := smallConfig(NDPExt)
	base.Reconfig = ReconfigStatic
	ref, err := Run(base, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{
		"cxl-retry,rate=0.1,lat=200ns",
		"cxl-degrade,at=0,factor=4",
		"noc-flap,lat=30ns",
		"cxl-retry,rate=0.1,lat=200ns;cxl-degrade,at=0,factor=4;noc-flap,lat=30ns",
	} {
		cfg := faultConfig(t, NDPExt, spec)
		cfg.Reconfig = ReconfigStatic
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		m := res.Metrics()
		if m.Uint("fault.injected")+m.Uint("fault.degraded_accesses") == 0 {
			t.Fatalf("%s: injected nothing; monotonicity test is vacuous", spec)
		}
		if res.Time < ref.Time {
			t.Fatalf("%s: faults shortened the run: %v < %v", spec, res.Time, ref.Time)
		}
		if res.Energy.Total() < ref.Energy.Total() {
			t.Fatalf("%s: faults reduced energy: %v < %v", spec, res.Energy.Total(), ref.Energy.Total())
		}
	}
}

// A vault failure must surface end to end: accesses homed on the dead
// unit redirect to extended memory, the next epoch boundary reports a
// degraded epoch, and the runtime remaps the affected streams.
func TestVaultFailRemapsStreams(t *testing.T) {
	tr := tinyTrace(t, "pr")
	cfg := faultConfig(t, NDPExt, "vault-fail,unit=2,at=0")
	var infos []EpochInfo
	cfg.OnEpoch = func(e EpochInfo) { infos = append(infos, e) }
	res, err := Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if got := m.Uint("fault.vault_redirects"); got == 0 {
		t.Fatal("no accesses redirected off the failed vault")
	}
	if got := m.Uint("fault.remapped_streams"); got == 0 {
		t.Fatal("no streams remapped off the failed vault")
	}
	if got := m.Uint("fault.degraded_epochs"); got == 0 {
		t.Fatal("no epoch reported as degraded")
	}
	sawDegraded := false
	remapped := 0
	for _, e := range infos {
		if e.Degraded {
			sawDegraded = true
			if e.FailedUnits != 1 {
				t.Fatalf("degraded epoch reports %d failed units, want 1", e.FailedUnits)
			}
		}
		remapped += e.RemappedStreams
	}
	if !sawDegraded {
		t.Fatal("OnEpoch never reported a degraded epoch")
	}
	if uint64(remapped) != m.Uint("fault.remapped_streams") {
		t.Fatalf("OnEpoch remap total %d != metric %d", remapped, m.Uint("fault.remapped_streams"))
	}
	// The dead vault must stop serving DRAM traffic once remapped: its
	// read count stays below any surviving unit's.
	dead := m.Uint("dram.unit002.reads")
	for _, u := range []string{"000", "001", "003"} {
		if live := m.Uint("dram.unit" + u + ".reads"); live <= dead {
			t.Fatalf("surviving unit%s served %d reads, dead unit002 served %d", u, live, dead)
		}
	}
}

// The NUCA pipeline must survive a vault failure too: degraded epochs
// are flagged and accesses redirect rather than hang.
func TestVaultFailOnNUCAPath(t *testing.T) {
	tr := tinyTrace(t, "pr")
	res, err := Run(faultConfig(t, Nexus, "vault-fail,unit=1,at=0"), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != uint64(tr.TotalAccesses()) {
		t.Fatalf("NUCA run lost accesses: %d of %d", res.Accesses, tr.TotalAccesses())
	}
	if res.Metrics().Uint("fault.vault_redirects") == 0 {
		t.Fatal("NUCA path never redirected off the failed vault")
	}
}

// The cycle-budget watchdog aborts deterministically: truncated runs
// are reproducible and still publish their partial telemetry.
func TestWatchdogCycleBudget(t *testing.T) {
	tr := tinyTrace(t, "pr")
	full, err := Run(smallConfig(NDPExt), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated {
		t.Fatal("unbounded run reports truncation")
	}

	run := func() *Result {
		var buf bytes.Buffer
		jsonl := telemetry.NewJSONL(&buf)
		cfg := smallConfig(NDPExt)
		cfg.MaxCycles = 20_000 // well inside the full run
		cfg.Probe = telemetry.Sampled(jsonl, 5)
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if err := jsonl.Flush(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("truncated run flushed no partial telemetry")
		}
		return res
	}
	a := run()
	if !a.Truncated || a.TruncateReason != "cycle budget exceeded" {
		t.Fatalf("bad truncation state: %v %q", a.Truncated, a.TruncateReason)
	}
	if a.Accesses == 0 || a.Accesses >= full.Accesses {
		t.Fatalf("truncated run simulated %d accesses, full run %d", a.Accesses, full.Accesses)
	}
	if a.Metrics() == nil {
		t.Fatal("truncated run dropped its metrics registry")
	}
	b := run()
	if fp(a) != fp(b) {
		t.Fatalf("cycle-budget truncation nondeterministic:\n%+v\nvs\n%+v", fp(a), fp(b))
	}

	// The host model honors the same budget.
	hcfg := smallConfig(Host)
	hcfg.MaxCycles = 20_000
	h, err := Run(hcfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Truncated {
		t.Fatal("host run ignored the cycle budget")
	}
}

// An already-expired wall-clock limit aborts on the first event.
func TestWatchdogWallClock(t *testing.T) {
	tr := tinyTrace(t, "pr")
	for _, d := range []Design{NDPExt, Host} {
		cfg := smallConfig(d)
		cfg.MaxWall = time.Nanosecond
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !res.Truncated || res.TruncateReason != "wall-clock limit exceeded" {
			t.Fatalf("%v: bad truncation state: %v %q", d, res.Truncated, res.TruncateReason)
		}
		if res.Accesses >= uint64(tr.TotalAccesses()) {
			t.Fatalf("%v: expired deadline still simulated the whole trace", d)
		}
	}
}

// Config validation rejects malformed fault and watchdog settings.
func TestValidateRejectsBadFaultConfigs(t *testing.T) {
	bad := faultConfig(t, NDPExt, "vault-fail,unit=99,at=0") // 8-unit machine
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range vault unit accepted")
	}
	neg := smallConfig(NDPExt)
	neg.MaxCycles = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative cycle budget accepted")
	}
	negW := smallConfig(NDPExt)
	negW.MaxWall = -time.Second
	if err := negW.Validate(); err == nil {
		t.Fatal("negative wall-clock limit accepted")
	}
}
