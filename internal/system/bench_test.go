package system

import (
	"testing"

	"ndpext/internal/sim"
	"ndpext/internal/workloads"
)

// benchTrace generates one small trace outside the timed region.
func benchTrace(b *testing.B, cores int) *workloads.Trace {
	b.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		b.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	tr, err := gen(cores, 42, sc)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkPerAccess measures the simulator's per-access hot path — the
// cost of pushing one memory access through placement lookup, cache
// model, NoC, and accounting — as ns/access (custom metric) on the
// small 8-unit machine. This is the number the serving layer's capacity
// planning leans on: jobs/sec scales inversely with it.
func BenchmarkPerAccess(b *testing.B) {
	tr := benchTrace(b, 8)
	cfg := smallConfig(NDPExt)
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Accesses
	}
	b.StopTimer()
	if accesses > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(accesses), "ns/access")
	}
}

// BenchmarkPerAccessHost is the host-baseline counterpart: the epoch
// runtime is bypassed, so this isolates the memory-path cost itself.
func BenchmarkPerAccessHost(b *testing.B) {
	tr := benchTrace(b, 8)
	cfg := smallConfig(Host)
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Accesses
	}
	b.StopTimer()
	if accesses > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(accesses), "ns/access")
	}
}

// BenchmarkMemPath isolates the per-access memory path — serve() through
// the design's MemPath stages, the NoC, the DRAM models, and telemetry —
// with no epoch runtime in the timed region. This is the path whose
// optimization BENCH_core.json tracks; it must not allocate in steady
// state beyond what the component models themselves require.
func BenchmarkMemPath(b *testing.B) {
	for _, d := range []Design{NDPExt, Jigsaw} {
		b.Run(d.String(), func(b *testing.B) {
			tr := benchTrace(b, 8)
			cfg := smallConfig(d)
			s, err := newNDPSim(cfg, traceInput(tr))
			if err != nil {
				b.Fatal(err)
			}
			s.bootstrap()
			cores := len(tr.PerCore)
			idx := make([]int, cores)
			t := make([]sim.Time, cores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := i % cores
				a := tr.PerCore[c][idx[c]]
				t[c] = s.serve(t[c], c, a)
				if idx[c]++; idx[c] == len(tr.PerCore[c]) {
					idx[c] = 0
				}
			}
		})
	}
}

// BenchmarkEndToEndEpoch measures a complete small simulation dominated
// by epoch boundaries (policy optimization, sampler reassignment,
// reconfiguration): the short epoch forces ~20 boundaries per run, so
// ns/epoch tracks the host-runtime cost the serving layer pays per job.
func BenchmarkEndToEndEpoch(b *testing.B) {
	tr := benchTrace(b, 8)
	cfg := smallConfig(NDPExt)
	cfg.EpochCycles = 25_000
	var epochs uint64
	cfg.OnEpoch = func(EpochInfo) { epochs++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, tr.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if epochs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(epochs), "ns/epoch")
	}
}

// BenchmarkCanonicalBytes measures canonical config serialization — the
// front half of the serving layer's job keying (the back half, SHA-256,
// is benchmarked in internal/simcache).
func BenchmarkCanonicalBytes(b *testing.B) {
	cfg := DefaultConfig(NDPExt)
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(cfg.CanonicalBytes())
	}
	if n == 0 {
		b.Fatal("empty canonical form")
	}
}
