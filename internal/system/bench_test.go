package system

import (
	"testing"

	"ndpext/internal/workloads"
)

// benchTrace generates one small trace outside the timed region.
func benchTrace(b *testing.B, cores int) *workloads.Trace {
	b.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		b.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	tr, err := gen(cores, 42, sc)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkPerAccess measures the simulator's per-access hot path — the
// cost of pushing one memory access through placement lookup, cache
// model, NoC, and accounting — as ns/access (custom metric) on the
// small 8-unit machine. This is the number the serving layer's capacity
// planning leans on: jobs/sec scales inversely with it.
func BenchmarkPerAccess(b *testing.B) {
	tr := benchTrace(b, 8)
	cfg := smallConfig(NDPExt)
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Accesses
	}
	b.StopTimer()
	if accesses > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(accesses), "ns/access")
	}
}

// BenchmarkPerAccessHost is the host-baseline counterpart: the epoch
// runtime is bypassed, so this isolates the memory-path cost itself.
func BenchmarkPerAccessHost(b *testing.B) {
	tr := benchTrace(b, 8)
	cfg := smallConfig(Host)
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, tr.Clone())
		if err != nil {
			b.Fatal(err)
		}
		accesses += res.Accesses
	}
	b.StopTimer()
	if accesses > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(accesses), "ns/access")
	}
}

// BenchmarkCanonicalBytes measures canonical config serialization — the
// front half of the serving layer's job keying (the back half, SHA-256,
// is benchmarked in internal/simcache).
func BenchmarkCanonicalBytes(b *testing.B) {
	cfg := DefaultConfig(NDPExt)
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n += len(cfg.CanonicalBytes())
	}
	if n == 0 {
		b.Fatal("empty canonical form")
	}
}
