package system

import (
	"fmt"
	"sort"

	"ndpext/internal/maxflow"
	"ndpext/internal/nuca"
	"ndpext/internal/policy"
	"ndpext/internal/sampler"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// sortedAllocSIDs returns allocation keys in ascending order.
func sortedAllocSIDs(m map[stream.ID]streamcache.Allocation) []stream.ID {
	out := make([]stream.ID, 0, len(m))
	for sid := range m {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// allocationsClose reports whether replacing old with new is worth the
// reconfiguration invalidations. The optimizer's exact per-unit spreading
// is order-dependent and jitters between epochs even at a stable
// operating point, so the comparison looks at what actually matters for
// hit rate and latency: the replication group count and the total
// capacity. (Placement-only jitter is noise; genuine placement changes
// come with group or capacity changes.)
func allocationsClose(old, new streamcache.Allocation) bool {
	if len(old.Shares) != len(new.Shares) {
		return false
	}
	if len(old.GroupIDs()) != len(new.GroupIDs()) {
		return false
	}
	oldTotal, newTotal := old.TotalRows(), new.TotalRows()
	if oldTotal == 0 {
		return newTotal == 0
	}
	d := int64(oldTotal) - int64(newTotal)
	if d < 0 {
		d = -d
	}
	return float64(d)/float64(oldTotal) < 0.25
}

// policyConfig builds the Algorithm 1 configuration for this machine.
func (s *ndpSim) policyConfig() policy.Config {
	seg := s.cfg.UnitRows / 32
	if seg == 0 {
		seg = 1
	}
	return policy.Config{
		NumUnits:      s.cfg.NumUnits(),
		RowBytes:      s.cfg.rowBytes(),
		UnitRows:      s.cfg.UnitRows,
		AffineCapRows: uint32(s.cfg.Stream.AffineCapBytes / s.cfg.rowBytes()),
		SegRows:       seg,
		Attenuation:   func(u, v int) float64 { return s.att[u][v] },
		MaxGroups:     1 << streamcache.RGroupsBits,
		MaxIters:      200_000,
		MissLatNS:     s.ext.MinLatency(64).NS(),
		NetLatNS:      s.netLatForDegree,
	}
}

// netLatForDegree estimates the mean interconnect latency from a unit to
// the nearest of d replication groups, assuming groups cluster over
// contiguous unit ranges (spatially adjacent IDs). Memoized per degree.
func (s *ndpSim) netLatForDegree(d int) float64 {
	if d < 1 {
		d = 1
	}
	if v, ok := s.netLatMemo[d]; ok {
		return v
	}
	n := s.cfg.NumUnits()
	if d > n {
		d = n
	}
	var total float64
	for u := 0; u < n; u++ {
		best := -1.0
		for g := 0; g < d; g++ {
			center := (g*n/d + (g+1)*n/d) / 2
			lat := s.net.BaseLatency(u, center, 64).NS()
			if best < 0 || lat < best {
				best = lat
			}
		}
		total += best
	}
	v := total / float64(n)
	if s.netLatMemo == nil {
		s.netLatMemo = make(map[int]float64)
	}
	s.netLatMemo[d] = v
	return v
}

// nucaConfigInput builds the baseline configuration input.
func (s *ndpSim) nucaConfigInput() nuca.ConfigInput {
	dramNS := s.devs[0].RawLatency(false, 64).NS()
	return nuca.ConfigInput{
		NumUnits:    s.cfg.NumUnits(),
		UnitRows:    s.cfg.UnitRows,
		RowBytes:    s.cfg.rowBytes(),
		Proximity:   func(u, v int) float64 { return s.att[u][v] },
		MissPenalty: s.ext.MinLatency(64).NS() / dramNS,
	}
}

// allStreamInputs builds placeholder inputs for every configured stream
// (used at bootstrap, before any profile exists).
func (s *ndpSim) allStreamInputs() []policy.StreamInput {
	var ins []policy.StreamInput
	for _, st := range s.table.All() {
		ins = append(ins, policy.StreamInput{
			SID:      st.SID,
			Curve:    defaultCurve(st),
			Acc:      map[int]uint64{0: 1},
			ReadOnly: st.ReadOnly,
			Affine:   st.Type == stream.Affine,
		})
	}
	return ins
}

// defaultCurve is the optimistic prior used before a stream has been
// sampled: misses fall off as allocation approaches the stream's size.
func defaultCurve(st *stream.Stream) sampler.Curve {
	size := int64(st.Size)
	return sampler.Curve{
		ItemBytes: int(st.ElemSize),
		Accesses:  1,
		Points: []sampler.CurvePoint{
			{Bytes: size / 16, MissRate: 0.9, Sampled: 1},
			{Bytes: size / 4, MissRate: 0.5, Sampled: 1},
			{Bytes: size, MissRate: 0.1, Sampled: 1},
		},
	}
}

// bootstrap installs the epoch-0 configuration: equal static allocation
// for the stream-cache designs, equal interleaved partitions for the
// partitioned baselines, nothing for static interleave.
func (s *ndpSim) bootstrap() {
	switch s.cfg.Design {
	case NDPExt, NDPExtStatic, NDPExtMAB:
		allocs, err := policy.StaticEqual(s.policyConfig(), s.allStreamInputs())
		if err != nil {
			panic(err)
		}
		if _, err := s.sc.Apply(allocs, s.cfg.ConsistentHash); err != nil {
			panic(err)
		}
	case Jigsaw, Whirlpool, Nexus:
		n := s.table.Len()
		if n == 0 {
			return
		}
		share := s.cfg.UnitRows / uint32(n+1)
		if share == 0 {
			share = 1
		}
		allocs := make(map[stream.ID]streamcache.Allocation, n)
		next := make([]uint32, s.cfg.NumUnits())
		for _, st := range s.table.All() {
			a := streamcache.NewAllocation(s.cfg.NumUnits())
			for u := range a.Shares {
				a.Shares[u] = share
				a.RowBase[u] = next[u]
				next[u] += share
			}
			allocs[st.SID] = a
		}
		if _, _, err := s.nc.Apply(allocs); err != nil {
			panic(err)
		}
	}
	// Initial sampler guess: stream sid sampled at unit sid mod N. The
	// first epoch boundary replaces this with the max-flow assignment.
	if s.profiles() {
		for _, st := range s.table.All() {
			u := int(st.SID) % s.cfg.NumUnits()
			s.samplers.local[u][st.SID] = s.samplers.get(s.cfg.Sampler, s.itemBytes(st.SID))
			s.samplers.global[st.SID] = s.samplers.get(s.cfg.Sampler, s.itemBytes(st.SID))
		}
	}
}

// profiles reports whether this design uses samplers and epochs at all.
func (s *ndpSim) profiles() bool {
	switch s.cfg.Design {
	case NDPExt, NDPExtMAB, Jigsaw, Whirlpool, Nexus:
		return true
	default:
		return false
	}
}

// shouldReconfig applies the Fig. 9(e) reconfiguration modes.
func (s *ndpSim) shouldReconfig() bool {
	if !s.profiles() {
		return false
	}
	switch s.cfg.Reconfig {
	case ReconfigFull:
		return true
	case ReconfigPartial:
		return s.epoch <= s.cfg.PartialEpochs
	default:
		return false
	}
}

// itemBytes is the sampler item granularity for a stream: what one cached
// item actually occupies (indirect elements carry their embedded tag, so
// the capacity axis must include it).
func (s *ndpSim) itemBytes(sid stream.ID) int {
	if s.nc != nil {
		return 64 // cacheline granularity in the baselines
	}
	st := s.table.Get(sid)
	if st == nil {
		return 64
	}
	if st.Type == stream.Affine {
		return s.cfg.Stream.BlockBytes
	}
	return int(st.ElemSize) + s.cfg.Stream.TagBytes
}

// cacheFootprint is the DRAM cache space a full copy of the stream
// occupies (indirect elements store tags with the data).
func (s *ndpSim) cacheFootprint(st *stream.Stream) int64 {
	if s.nc != nil || st.Type == stream.Affine {
		return int64(st.Size)
	}
	return int64(st.NumElements()) * int64(int(st.ElemSize)+s.cfg.Stream.TagBytes)
}

// epochBoundary is the host runtime (§V): harvest the epoch's access
// bitvectors and sampler curves, derive and install the next
// configuration, and reassign samplers via max-flow. Under fault
// injection the boundary is also where degraded-mode reconfiguration
// happens: dead vaults are excluded from the optimizer and the sampler
// assignment, and streams stranded on them are force-remapped.
func (s *ndpSim) epochBoundary() {
	s.epoch++
	// Degraded-mode telemetry: the boundary inspects fault state at its
	// nominal time, so a vault that died mid-epoch is seen here.
	var failed []int
	degraded := false
	if s.inj != nil {
		failed = s.inj.FailedUnits(s.nextEpoch)
		degraded = len(failed) > 0 || s.inj.CXLBWFactor(s.nextEpoch) > 1
		if degraded {
			s.tel.DegradedEpochs++
		}
	}
	if !s.profiles() {
		if s.cfg.OnEpoch != nil {
			s.cfg.OnEpoch(EpochInfo{Epoch: s.epoch, Degraded: degraded, FailedUnits: len(failed),
				Counters: s.tel.Snapshot()})
		}
		return
	}
	remappedBefore := s.tel.FaultRemappedStreams
	reconfigsBefore := s.tel.Reconfigs
	keptBefore := s.tel.ReconfigKept
	droppedBefore := s.tel.ReconfigDropped
	var acc []map[stream.ID]uint64
	if s.sc != nil {
		acc = s.sc.EpochAccesses()
	} else {
		acc = s.nc.EpochAccesses()
	}

	totals := make(map[stream.ID]uint64)
	accBy := make(map[stream.ID]map[int]uint64)
	for u, m := range acc {
		for sid, n := range m {
			totals[sid] += n
			if accBy[sid] == nil {
				accBy[sid] = make(map[int]uint64)
			}
			accBy[sid][u] += n
		}
	}

	// Exponentially decayed access history: the configuration covers all
	// recently active streams (not just this epoch's), so capacity
	// accounting stays globally consistent and phase changes (backprop)
	// do not strand streams without space.
	if s.hist == nil {
		s.hist = make(map[stream.ID]map[int]float64)
	}
	for sid, m := range s.hist {
		for u := range m {
			m[u] *= 0.5
			if m[u] < 0.5 {
				delete(m, u)
			}
		}
		if len(m) == 0 {
			delete(s.hist, sid)
		}
	}
	for sid, m := range accBy {
		h := s.hist[sid]
		if h == nil {
			h = make(map[int]float64)
			s.hist[sid] = h
		}
		for u, n := range m {
			h[u] += float64(n)
		}
	}

	// Harvest miss curves: the global sampler (home-set view, all
	// cores) drives sizing; the local sampler (one core) reveals whether
	// per-core reuse would survive replication. In pipelined mode the
	// curves come from the epoch worker (which has, by hand-off order,
	// already applied every observation of the closing epoch); the
	// extraction itself is the shared harvestCurves, so both modes
	// produce identical curves.
	var hg, hl []harvestedCurve
	if s.pipe != nil {
		rep := s.pipe.harvest()
		s.tel.Observes = rep.observes
		hg, hl = rep.global, rep.local
	} else {
		hg, hl = harvestCurves(s.samplers)
	}
	for _, h := range hg {
		h.cv.Accesses = totals[h.sid]
		s.curves[h.sid] = h.cv
	}
	for _, h := range hl {
		h.cv.Accesses = totals[h.sid]
		s.localCurves[h.sid] = h.cv
	}

	// Build the configuration inputs from the decayed history (covers
	// every recently active stream).
	histSIDs := make([]stream.ID, 0, len(s.hist))
	for sid := range s.hist {
		histSIDs = append(histSIDs, sid)
	}
	sort.Slice(histSIDs, func(i, j int) bool { return histSIDs[i] < histSIDs[j] })
	var ins []policy.StreamInput
	for _, sid := range histSIDs {
		st := s.table.Get(sid)
		if st == nil {
			continue
		}
		cv, ok := s.curves[sid]
		if !ok {
			cv = defaultCurve(st)
		}
		accMap := make(map[int]uint64, len(s.hist[sid]))
		for u, w := range s.hist[sid] {
			accMap[u] = uint64(w)
		}
		prevGroups := 0
		if s.sc != nil {
			if a, ok := s.sc.Allocation(sid); ok {
				prevGroups = len(a.GroupIDs())
			}
		}
		ins = append(ins, policy.StreamInput{
			SID:        sid,
			Curve:      cv,
			LocalCurve: s.localCurves[sid],
			Acc:        accMap,
			ReadOnly:   st.ReadOnly,
			Affine:     st.Type == stream.Affine,
			Footprint:  s.cacheFootprint(st),
			PrevGroups: prevGroups,
		})
	}

	// onFailed reports whether an allocation holds rows on a dead vault.
	onFailed := func(a streamcache.Allocation) bool {
		for _, u := range failed {
			if u < len(a.Shares) && a.Shares[u] > 0 {
				return true
			}
		}
		return false
	}

	var epochArm string
	var epochArmSwitched bool
	if s.shouldReconfig() && len(ins) > 0 {
		s.tel.Reconfigs++
		pcfg := s.policyConfig()
		if s.inj != nil {
			// Dead vaults contribute no capacity, and a degraded CXL
			// link raises the real miss penalty the degree chooser
			// trades against.
			pcfg.DeadUnits = failed
			pcfg.MissLatNS *= s.inj.CXLBWFactor(s.nextEpoch)
		}
		if s.sc != nil {
			var allocs map[stream.ID]streamcache.Allocation
			var rep policy.Report
			if s.adapt != nil {
				// NDPExt-MAB: the bandit picks which arm's allocation to
				// install, scoring every candidate against this epoch's
				// curves. The decision runs here, on the event-loop
				// thread, in both serial and pipelined mode — that is
				// what keeps the pick sequence byte-identical.
				live := make(map[stream.ID]streamcache.Allocation, len(ins))
				var epochAcc uint64
				for i := range ins {
					if a, ok := s.sc.Allocation(ins[i].SID); ok {
						live[ins[i].SID] = a
					}
				}
				for _, n := range totals {
					epochAcc += n
				}
				dec, err := s.adapt.Decide(pcfg, ins, live, epochAcc)
				if err != nil {
					panic(err)
				}
				allocs = dec.Allocs
				epochArm, epochArmSwitched = dec.Arm, dec.Switched
				// Report the installed arm's allocation footprint through
				// the same counters the paper optimizer fills.
				for _, a := range allocs {
					t := a.TotalRows()
					rep.RowsAllocated += t
					if len(a.GroupIDs()) > 1 {
						rep.ReplicatedRows += t
					}
				}
			} else {
				var err error
				allocs, rep, err = policy.Optimize(pcfg, ins)
				if err != nil {
					panic(err)
				}
			}
			// Streams that decayed out of the history lose their space
			// explicitly, keeping the installed configuration's total
			// within the physical capacity.
			for _, st := range s.table.All() {
				if _, ok := allocs[st.SID]; ok {
					continue
				}
				if a, had := s.sc.Allocation(st.SID); had && a.TotalRows() > 0 {
					allocs[st.SID] = streamcache.NewAllocation(s.cfg.NumUnits())
				}
			}
			// Damping: a near-identical allocation is not worth the
			// invalidations its installation would cause (every moved
			// row is a string of extended-memory refetches). A stream
			// holding rows on a dead vault is never damped — keeping
			// its old allocation would strand it on failed hardware —
			// and installing its rebuilt allocation counts as a remap.
			for sid, a := range allocs {
				old, had := s.sc.Allocation(sid)
				if !had {
					continue
				}
				if onFailed(old) {
					s.tel.FaultRemappedStreams++
					continue
				}
				if allocationsClose(old, a) {
					delete(allocs, sid)
				}
			}
			if s.cfg.DebugReconfig {
				w := s.cfg.debugWriter()
				for _, sid := range sortedAllocSIDs(allocs) {
					a := allocs[sid]
					old, _ := s.sc.Allocation(sid)
					fmt.Fprintf(w, "epoch %d stream %d: rows %d->%d groups %d->%d\n",
						s.epoch, sid, old.TotalRows(), a.TotalRows(),
						len(old.GroupIDs()), len(a.GroupIDs()))
				}
			}
			rs, err := s.sc.Apply(allocs, s.cfg.ConsistentHash)
			if err != nil {
				panic(err)
			}
			if s.adapt != nil && epochArmSwitched {
				// Ground-truth migration cost of the arm switch: the
				// items the install actually invalidated.
				s.adapt.NoteApply(rs.ItemsDropped)
			}
			s.tel.ReconfigKept += rs.ItemsKept
			s.tel.ReconfigDropped += rs.ItemsDropped
			s.tel.ReplicatedRows = rep.ReplicatedRows
			s.tel.RowsAllocated = rep.RowsAllocated
		} else {
			nci := s.nucaConfigInput()
			if s.inj != nil {
				nci.MissPenalty *= s.inj.CXLBWFactor(s.nextEpoch)
			}
			allocs, err := nuca.Configure(nucaKind(s.cfg.Design), nci, ins)
			if err != nil {
				panic(err)
			}
			// The baseline configurators have no dead-unit notion, so
			// degraded mode zeroes any shares they place on failed
			// vaults; freed rows just go unused for the epoch.
			for sid, a := range allocs {
				if !onFailed(a) {
					continue
				}
				for _, u := range failed {
					if u < len(a.Shares) {
						a.Shares[u] = 0
					}
				}
				allocs[sid] = a
			}
			// The baselines damp churn the same way (Jigsaw-class
			// systems also keep stable partitions stable), with the
			// same dead-vault override.
			for sid, a := range allocs {
				old, had := s.nc.Allocation(sid)
				if !had {
					continue
				}
				if onFailed(old) {
					s.tel.FaultRemappedStreams++
					continue
				}
				if allocationsClose(old, a) {
					delete(allocs, sid)
				}
			}
			inv, _, err := s.nc.Apply(allocs)
			if err != nil {
				panic(err)
			}
			s.tel.ReconfigDropped += inv
		}
	}

	// Reassign samplers with Edmonds-Karp max-flow (§V-B) using this
	// epoch's access bitvectors. If the previous epoch could not cover
	// every stream, last epoch's uncovered streams are assigned first
	// and the leftover sampler slots go to the rest (the multi-epoch
	// rotation of §V-B). The job's inputs are built here (they depend on
	// the injector and the stream table, both owned by the event-loop
	// thread); in pipelined mode its execution moves to the epoch
	// worker, overlapping the next epoch's event loop, and is joined
	// lazily — immediately only when OnEpoch needs the coverage count.
	job := s.buildReassignJob(totals, accBy, failed)
	covered := 0
	if s.pipe != nil {
		if s.cfg.OnEpoch != nil {
			covered = s.pipe.reassignSync(job)
			s.tel.SamplerCovered = covered
		} else {
			s.pipe.reassignAsync(job)
		}
	} else {
		covered, s.uncovered = job.run(s.samplers, s.uncovered)
		s.tel.SamplerCovered = covered
	}

	if s.cfg.OnEpoch != nil {
		s.cfg.OnEpoch(EpochInfo{
			Epoch:           s.epoch,
			ActiveStreams:   len(totals),
			Reconfigured:    s.tel.Reconfigs > reconfigsBefore,
			ItemsKept:       s.tel.ReconfigKept - keptBefore,
			ItemsDropped:    s.tel.ReconfigDropped - droppedBefore,
			SamplerCovered:  covered,
			Arm:             epochArm,
			ArmSwitched:     epochArmSwitched,
			Degraded:        degraded,
			FailedUnits:     len(failed),
			RemappedStreams: s.tel.FaultRemappedStreams - remappedBefore,
			Counters:        s.tel.Snapshot(),
		})
	}
}

// harvestedCurve is one sampler's extracted miss curve, tagged with the
// stream it was assigned to.
type harvestedCurve struct {
	sid stream.ID
	cv  sampler.Curve
}

// harvestCurves extracts the miss curve every installed sampler observed
// this epoch, in deterministic bank order (the global bank by ascending
// stream ID, then each unit's local bank). Samplers that saw no accesses
// or produced empty curves are skipped. The function is shared by the
// serial epoch boundary and the epoch-pipeline worker so both modes
// extract bit-identical curves.
func harvestCurves(b *samplerBank) (global, local []harvestedCurve) {
	for sid, smp := range b.global {
		if smp == nil || smp.Accesses() == 0 {
			continue
		}
		cv := smp.Curve()
		if len(cv.Points) == 0 {
			continue
		}
		global = append(global, harvestedCurve{stream.ID(sid), cv})
	}
	for _, row := range b.local {
		for sid, smp := range row {
			if smp == nil || smp.Accesses() == 0 {
				continue
			}
			cv := smp.Curve()
			if len(cv.Points) == 0 {
				continue
			}
			local = append(local, harvestedCurve{stream.ID(sid), cv})
		}
	}
	return global, local
}

// reassignJob is the immutable input of one epoch's sampler
// reassignment: which streams were accessed (ascending), from which
// units, at what sampler item granularity, and how many sampler slots
// each unit offers (zero on failed vaults). It is built on the
// event-loop thread — its inputs depend on the fault injector and the
// stream table, both owned there — and executed either inline (serial
// mode) or on the epoch-pipeline worker.
type reassignJob struct {
	sids      []stream.ID
	unitsOf   [][]int
	itemBytes []int
	caps      []int
	scfg      sampler.Config
	numUnits  int
}

// buildReassignJob snapshots this epoch's access bitvectors and machine
// state into a reassignment job.
func (s *ndpSim) buildReassignJob(totals map[stream.ID]uint64, accBy map[stream.ID]map[int]uint64, failed []int) *reassignJob {
	j := &reassignJob{
		sids:     make([]stream.ID, 0, len(totals)),
		scfg:     s.cfg.Sampler,
		numUnits: s.cfg.NumUnits(),
	}
	for sid := range totals {
		j.sids = append(j.sids, sid)
	}
	sort.Slice(j.sids, func(i, k int) bool { return j.sids[i] < j.sids[k] })
	j.unitsOf = make([][]int, len(j.sids))
	j.itemBytes = make([]int, len(j.sids))
	for i, sid := range j.sids {
		units := make([]int, 0, len(accBy[sid]))
		for u := range accBy[sid] {
			units = append(units, u)
		}
		sort.Ints(units)
		j.unitsOf[i] = units
		j.itemBytes[i] = s.itemBytes(sid)
	}
	j.caps = make([]int, j.numUnits)
	for u := range j.caps {
		j.caps[u] = s.cfg.Sampler.SamplersPerUnit
	}
	// Dead vaults host no samplers: the max-flow assignment runs over
	// surviving units only.
	for _, u := range failed {
		j.caps[u] = 0
	}
	return j
}

// run retires the bank and installs the next epoch's samplers via
// max-flow, honoring the §V-B rotation: streams the previous epoch could
// not cover are assigned first, then the leftover slots go to the rest.
// It returns the covered-stream count and the new uncovered set. The
// receiver-side state (bank, uncovered) belongs to whichever goroutine
// executes the job — the event loop in serial mode, the epoch worker in
// pipelined mode — so the same code serves both byte-identically.
func (j *reassignJob) run(bank *samplerBank, uncovered map[stream.ID]bool) (int, map[stream.ID]bool) {
	bank.retire()
	install := func(u, i int) {
		sid := j.sids[i]
		bank.local[u][sid] = bank.get(j.scfg, j.itemBytes[i])
		bank.global[sid] = bank.get(j.scfg, j.itemBytes[i])
		j.caps[u]--
	}

	covered := 0
	if len(uncovered) > 0 {
		var prio []int
		for i, sid := range j.sids {
			if uncovered[sid] {
				prio = append(prio, i)
			}
		}
		accessedBy := make([][]int, len(prio))
		for k, i := range prio {
			accessedBy[k] = j.unitsOf[i]
		}
		first := maxflow.AssignSamplersCapacity(j.numUnits, accessedBy, j.caps)
		covered += first.Covered
		for u, list := range first.ByUnit {
			for _, si := range list {
				install(u, prio[si])
			}
		}
	}
	var rest []int
	for i, sid := range j.sids {
		if bank.global[sid] == nil {
			rest = append(rest, i)
		}
	}
	accessedBy := make([][]int, len(rest))
	for k, i := range rest {
		accessedBy[k] = j.unitsOf[i]
	}
	assign := maxflow.AssignSamplersCapacity(j.numUnits, accessedBy, j.caps)
	covered += assign.Covered
	for u, list := range assign.ByUnit {
		for _, si := range list {
			install(u, rest[si])
		}
	}
	next := make(map[stream.ID]bool)
	for _, si := range assign.Uncovered {
		next[j.sids[rest[si]]] = true
	}
	return covered, next
}
