package parallel

import (
	"ndpext/internal/stats"
	"ndpext/internal/system"
)

// MetricSet flattens a Result into the named scalar metrics the
// equivalence gate compares: the conserved totals, the latency
// breakdown, the energy breakdown, and the derived rates. Used with
// stats.Equivalent to fence shard-mode results against the serial
// oracle.
func MetricSet(r *system.Result) map[string]float64 {
	return map[string]float64{
		"accesses":     float64(r.Accesses),
		"l1_hits":      float64(r.L1Hits),
		"cache_hits":   float64(r.CacheHits),
		"cache_misses": float64(r.CacheMisses),
		"exceptions":   float64(r.Exceptions),

		"time_ns":          r.Time.NS(),
		"avg_access_ns":    r.Breakdown.AvgAccessNS(),
		"lat.core_ns":      r.Breakdown.Core.NS(),
		"lat.meta_ns":      r.Breakdown.Meta.NS(),
		"lat.intra_noc_ns": r.Breakdown.IntraNoC.NS(),
		"lat.inter_noc_ns": r.Breakdown.InterNoC.NS(),
		"lat.dram_ns":      r.Breakdown.CacheDRAM.NS(),
		"lat.extended_ns":  r.Breakdown.Extended.NS(),

		"energy.static_pj":   r.Energy.StaticPJ,
		"energy.ndp_dram_pj": r.Energy.NDPDramPJ,
		"energy.ext_dram_pj": r.Energy.ExtDramPJ,
		"energy.noc_pj":      r.Energy.NoCPJ,
		"energy.cxl_link_pj": r.Energy.CXLLinkPJ,
		"energy.sram_pj":     r.Energy.SRAMPJ,

		"hit_rate":      r.CacheHitRate(),
		"slb_hit_rate":  r.SLBHitRate,
		"meta_hit_rate": r.MetaHitRate,
	}
}

// GateMetricSet is the headline subset the shard-mode equivalence gate
// checks: the conserved totals plus the metrics a study actually
// reports (makespan, mean access latency, cache hit rate, total
// energy). The fine-grained attributions in the full MetricSet (per-
// level latency buckets, per-component energy splits) redistribute under
// sharding even when the headline numbers hold — each shard's
// configurator sees only its own cores — so they are informational in
// shard mode, not gated.
func GateMetricSet(r *system.Result) map[string]float64 {
	e := r.Energy
	return map[string]float64{
		"accesses": float64(r.Accesses),
		"l1_hits":  float64(r.L1Hits),

		"time_ns":         r.Time.NS(),
		"avg_access_ns":   r.Breakdown.AvgAccessNS(),
		"hit_rate":        r.CacheHitRate(),
		"energy.total_pj": e.StaticPJ + e.NDPDramPJ + e.ExtDramPJ + e.NoCPJ + e.CXLLinkPJ + e.SRAMPJ,
	}
}

// DefaultTolerance is the declared equivalence gate for shard mode,
// applied to GateMetricSet: access counts are conservation laws (every
// access is simulated exactly once in any mode, and L1 state depends
// only on its own core's sequence), and the headline metrics may drift
// up to 50%. The bound is deliberately honest about what sharding
// discards: cross-core interleaving at shared resources. Measured on the
// pinned golden matrix, the paper's NDPExt design stays within ~15% even
// at 8 shards, while the metadata-cache baselines (Jigsaw, Whirlpool,
// Nexus) — whose behavior is dominated by cross-core metadata contention
// — reach ~45%. Studies that need tighter fidelity on those baselines
// should use pipeline mode, which is byte-identical.
func DefaultTolerance() stats.Tolerance {
	return stats.Tolerance{
		Rel:       0.50,
		Abs:       1e-6,
		Conserved: []string{"accesses", "l1_hits"},
	}
}
