package parallel

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"ndpext/internal/stats"
	"ndpext/internal/system"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// smallConfig is the 8-unit test machine (mirrors internal/system's).
func smallConfig(d system.Design) system.Config {
	cfg := system.DefaultConfig(d)
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
	cfg.EpochCycles = 50_000
	cfg.HostCores = 4
	return cfg
}

func tinyTrace(t testing.TB, name string, seed uint64) *workloads.Trace {
	t.Helper()
	gen, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	tr, err := gen(8, seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// signature condenses a Result's full visible surface for identity
// comparisons: the metric set, the stream reports, and the registry.
func signature(t testing.TB, r *system.Result) string {
	t.Helper()
	m, err := json.Marshal(struct {
		Metrics map[string]float64
		Streams []system.StreamReport
		Reg     *telemetry.Registry
	}{MetricSet(r), r.StreamReports(), r.Metrics()})
	if err != nil {
		t.Fatal(err)
	}
	return string(m)
}

func mustRun(t testing.TB, cfg system.Config, tr *workloads.Trace, opts Options) *system.Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, tr.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Pipeline mode through the orchestrator must be byte-identical to the
// serial oracle, and Workers<=1 must be the serial path itself.
func TestPipelineModeMatchesSerial(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "pr", 42)
	serial, err := system.Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	want := signature(t, serial)
	for _, w := range []int{0, 1, 2, 8} {
		got := signature(t, mustRun(t, cfg, tr, Options{Workers: w}))
		if got != want {
			t.Fatalf("workers=%d diverged from serial", w)
		}
	}
}

// Property test: seeded random configurations must produce identical
// results across 1, 2, and 8 workers in pipeline mode. 20 draws cover
// designs, workloads, epoch lengths, and reconfiguration modes.
func TestPropertyPipelineWorkerCountInvariant(t *testing.T) {
	designs := system.NDPDesigns()
	names := []string{"pr", "recsys", "gnn", "bfs", "backprop", "mv"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		d := designs[rng.Intn(len(designs))]
		w := names[rng.Intn(len(names))]
		seed := uint64(rng.Int63n(1 << 30))
		cfg := smallConfig(d)
		cfg.EpochCycles = []int64{20_000, 50_000, 120_000}[rng.Intn(3)]
		cfg.ConsistentHash = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.Reconfig = system.ReconfigPartial
			cfg.PartialEpochs = 1 + rng.Intn(3)
		}
		tr := tinyTrace(t, w, seed)
		base := signature(t, mustRun(t, cfg, tr, Options{Workers: 1}))
		for _, workers := range []int{2, 8} {
			got := signature(t, mustRun(t, cfg, tr, Options{Workers: workers}))
			if got != base {
				t.Fatalf("draw %d (%v/%s/seed=%d): workers=%d diverged", i, d, w, seed, workers)
			}
		}
	}
}

// Shard mode must be deterministic: the same inputs give the same
// merged result regardless of goroutine scheduling.
func TestShardDeterministic(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "pr", 42)
	opts := Options{Workers: 4, Mode: ModeShard}
	a := signature(t, mustRun(t, cfg, tr, opts))
	for i := 0; i < 3; i++ {
		if b := signature(t, mustRun(t, cfg, tr, opts)); b != a {
			t.Fatalf("run %d diverged from run 0", i+1)
		}
	}
}

// Shard mode must clear the declared equivalence gate against the
// serial oracle on every design, at 2 and 8 shards. The trace is long
// enough (30k accesses/core) for the per-shard statistics to converge;
// tiny traces amplify cold-start and epoch-decision noise.
func TestShardEquivalence(t *testing.T) {
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	sc.AccessesPerCore = 30000
	tr, err := gen(8, 42, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range system.NDPDesigns() {
		cfg := smallConfig(d)
		serial, err := system.Run(cfg, tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			sharded := mustRun(t, cfg, tr, Options{Workers: workers, Mode: ModeShard})
			rep, ok := stats.Equivalent(GateMetricSet(serial), GateMetricSet(sharded), DefaultTolerance())
			if !ok {
				t.Errorf("%v workers=%d: %v", d, workers, rep.Failures)
			}
		}
	}
}

// The conservation half of the gate, spelled out: shard mode must
// simulate every access exactly once.
func TestShardConservation(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "recsys", 7)
	res := mustRun(t, cfg, tr, Options{Workers: 3, Mode: ModeShard})
	if res.Accesses != uint64(tr.TotalAccesses()) {
		t.Fatalf("merged %d accesses, trace has %d", res.Accesses, tr.TotalAccesses())
	}
	var hits, misses uint64
	for _, sr := range res.StreamReports() {
		hits += sr.Hits
		misses += sr.Misses
	}
	if hits != res.CacheHits || misses != res.CacheMisses {
		t.Fatalf("stream reports (%d/%d) disagree with counters (%d/%d)",
			hits, misses, res.CacheHits, res.CacheMisses)
	}
}

// Probe fan-in: shard mode must deliver a deterministic merged event
// stream with contiguous sequence numbers.
func TestShardProbeDeterministic(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "pr", 42)
	capture := func() []telemetry.Event {
		var evs []telemetry.Event
		c := cfg
		c.AttachProbe(telemetry.FuncProbe(func(ev *telemetry.Event) { evs = append(evs, *ev) }))
		if _, err := Run(context.Background(), c, tr.Clone(), Options{Workers: 4, Mode: ModeShard}); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a := capture()
	b := capture()
	if len(a) == 0 {
		t.Fatal("no probe events delivered")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("probe event streams diverged between identical runs")
	}
	for i := range a {
		if a[i].Seq != uint64(i) {
			t.Fatalf("event %d has Seq %d; want contiguous renumbering", i, a[i].Seq)
		}
	}
}

// Sharded source runs materialize and must agree with the trace path.
func TestRunSourceShard(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "pr", 42)
	opts := Options{Workers: 4, Mode: ModeShard}
	want := signature(t, mustRun(t, cfg, tr, opts))
	res, err := RunSource(context.Background(), cfg, tr.Clone().Source(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if signature(t, res) != want {
		t.Fatal("sharded source run diverged from sharded trace run")
	}
}

// OnEpoch hooks must keep firing in shard mode (serialized across
// shards) and cancellation must surface the context error.
func TestShardOnEpochAndCancel(t *testing.T) {
	cfg := smallConfig(system.NDPExt)
	tr := tinyTrace(t, "pr", 42)
	epochs := 0
	cfg.OnEpoch = func(system.EpochInfo) { epochs++ }
	if _, err := Run(context.Background(), cfg, tr.Clone(), Options{Workers: 2, Mode: ModeShard}); err != nil {
		t.Fatal(err)
	}
	if epochs == 0 {
		t.Fatal("no OnEpoch callbacks in shard mode")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cfg.OnEpoch = func(system.EpochInfo) { cancel() }
	res, err := Run(ctx, cfg, tr.Clone(), Options{Workers: 2, Mode: ModeShard})
	if err == nil {
		t.Fatal("want error after mid-run cancellation")
	}
	// A shard canceled mid-run yields a truncated partial; a shard that
	// never started yields nothing to merge. Either way the error must
	// surface — only a coherent merged partial may accompany it.
	if res != nil && !res.Truncated {
		t.Fatalf("merged partial not marked truncated: %+v", res)
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
	for _, s := range []string{"", "pipeline", "shard"} {
		if _, err := ParseMode(s); err != nil {
			t.Fatalf("ParseMode(%q): %v", s, err)
		}
	}
	if err := (Options{Workers: -1}).Validate(); err == nil {
		t.Fatal("negative workers accepted")
	}
	if err := (Options{Workers: 2, Mode: Mode(9)}).Validate(); err == nil {
		t.Fatal("invalid mode accepted")
	}
}
