// Package parallel orchestrates the simulator's parallel execution
// modes behind one entry point, with the serial path as the golden
// oracle:
//
//   - Pipeline mode overlaps each epoch's sampler/miss-curve bookkeeping
//     with the event-loop simulation of the next epoch on a second
//     goroutine (system.RunPipelined). Results are BYTE-IDENTICAL to the
//     serial run — the golden suite asserts it — so cached and canonical
//     results are interchangeable.
//
//   - Shard mode deals the trace's cores round-robin onto N independent
//     simulator instances (each pipelined, each modeling the full
//     machine over its core subset) and deterministically merges the
//     per-shard results (system.MergeShardResults). Sharding removes the
//     cross-core interleaving at shared resources, so the merged result
//     is only STATISTICALLY equivalent to serial; stats.Equivalent with
//     DefaultTolerance is the declared gate.
//
// Both modes are deterministic: the same inputs produce the same output
// regardless of goroutine scheduling. Telemetry probes stay deterministic
// too — pipeline mode fires them on the event-loop thread in serial
// order, and shard mode buffers per shard and replays in ascending shard
// order after the run (telemetry.ShardFanIn's documented order).
package parallel

import (
	"context"
	"fmt"
	"sync"

	"ndpext/internal/system"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// Run simulates the trace with the selected parallel mode. Workers <= 1
// (or a design without epoch profiling, in pipeline mode) falls back to
// the serial path, so callers can wire a -parallel flag straight through.
func Run(ctx context.Context, cfg system.Config, tr *workloads.Trace, opts Options) (*system.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	switch {
	case opts.Workers <= 1:
		return system.RunContext(ctx, cfg, tr)
	case opts.Mode == ModeShard:
		return runShards(ctx, cfg, tr, opts.Workers)
	default:
		return system.RunPipelinedContext(ctx, cfg, tr)
	}
}

// RunSource is Run over a streaming access source. Shard mode needs
// random access to deal cores onto shards, so the source is materialized
// into a trace first (bounded only by the trace size — callers that need
// bounded memory should use pipeline mode, which streams).
func RunSource(ctx context.Context, cfg system.Config, src workloads.Source, opts Options) (*system.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	switch {
	case opts.Workers <= 1:
		return system.RunSourceContext(ctx, cfg, src)
	case opts.Mode == ModeShard:
		tr, err := materialize(src)
		if err != nil {
			return nil, err
		}
		return runShards(ctx, cfg, tr, opts.Workers)
	default:
		return system.RunSourcePipelinedContext(ctx, cfg, src)
	}
}

// runShards deals the cores round-robin onto min(workers, cores) shards,
// simulates each shard concurrently (pipelined), and merges.
func runShards(ctx context.Context, cfg system.Config, tr *workloads.Trace, workers int) (*system.Result, error) {
	if cfg.Design == system.Host {
		// The host model folds the trace onto a smaller core count;
		// dealing unit-indexed shards at it would change what is being
		// modeled, not just how fast.
		return nil, fmt.Errorf("parallel: shard mode does not support the Host design (use pipeline mode)")
	}
	cores := len(tr.PerCore)
	n := workers
	if n > cores {
		n = cores
	}
	if n <= 1 {
		return system.RunPipelinedContext(ctx, cfg, tr)
	}

	// Deterministic probe fan-in: each shard records into its own buffer;
	// after the join the buffers replay into the caller's probe in shard
	// order with renumbered sequence numbers.
	var fanin *telemetry.ShardFanIn
	if cfg.Probe != nil {
		fanin = telemetry.NewShardFanIn(n)
	}
	// OnEpoch callbacks fire concurrently across shards; serialize them
	// so a caller's hook needs no locking of its own. Cross-shard
	// interleaving is NOT deterministic — epoch hooks in shard mode are
	// progress signals, not part of the equivalence-checked result.
	var epochMu sync.Mutex
	onEpoch := cfg.OnEpoch

	parts := make([]*system.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		scfg := cfg
		if fanin != nil {
			scfg.Probe = fanin.Probe(i)
		}
		if onEpoch != nil {
			scfg.OnEpoch = func(ei system.EpochInfo) {
				epochMu.Lock()
				defer epochMu.Unlock()
				onEpoch(ei)
			}
		}
		wg.Add(1)
		go func(i int, scfg system.Config) {
			defer wg.Done()
			parts[i], errs[i] = system.RunPipelinedContext(ctx, scfg, shardTrace(tr, i, n))
		}(i, scfg)
	}
	wg.Wait()
	if fanin != nil {
		fanin.Drain(cfg.Probe)
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	for _, p := range parts {
		if p == nil {
			// A shard failed before producing even a partial result;
			// there is nothing coherent to merge.
			return nil, firstErr
		}
	}
	merged, err := system.MergeShardResults(cfg, parts)
	if err != nil {
		return nil, err
	}
	// Mirror RunContext's cancellation contract: the partial merged
	// result is returned alongside the first shard error.
	return merged, firstErr
}

// shardTrace builds shard i's view of the trace: the full stream table
// (freshly cloned — the simulation mutates stream read-only bits) with
// the access sequences of every core c where c % n != i emptied. The
// member cores' access slices are shared, not copied.
func shardTrace(tr *workloads.Trace, i, n int) *workloads.Trace {
	st := tr.Clone()
	pc := make([][]workloads.Access, len(tr.PerCore))
	for c := range tr.PerCore {
		if c%n == i {
			pc[c] = tr.PerCore[c]
		}
	}
	st.PerCore = pc
	return st
}

// materialize drains a streaming source into an in-memory trace.
func materialize(src workloads.Source) (*workloads.Trace, error) {
	tr := &workloads.Trace{
		Name:    src.Name(),
		Table:   src.Table(),
		PerCore: make([][]workloads.Access, src.Cores()),
	}
	for c := 0; c < src.Cores(); c++ {
		for {
			a, ok := src.Next(c)
			if !ok {
				break
			}
			tr.PerCore[c] = append(tr.PerCore[c], a)
		}
	}
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("parallel: materializing source for shard mode: %w", err)
	}
	return tr, nil
}
