package parallel

import "fmt"

// Mode selects the parallel execution strategy.
type Mode int

const (
	// ModePipeline overlaps epoch bookkeeping with the next epoch's
	// event loop. Byte-identical to serial; the default.
	ModePipeline Mode = iota
	// ModeShard splits the cores across independent simulator
	// instances and merges. Statistically equivalent to serial, within
	// DefaultTolerance.
	ModeShard
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case ModePipeline:
		return "pipeline"
	case ModeShard:
		return "shard"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -parallel-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "pipeline":
		return ModePipeline, nil
	case "shard":
		return ModeShard, nil
	default:
		return 0, fmt.Errorf(`parallel: unknown mode %q (want "pipeline" or "shard")`, s)
	}
}

// Options configures a parallel run.
type Options struct {
	// Workers is the requested parallelism. <= 1 selects the serial
	// path. Pipeline mode uses at most one extra goroutine regardless of
	// the value; shard mode spawns min(Workers, cores) shards.
	Workers int
	// Mode selects the strategy; the zero value is ModePipeline.
	Mode Mode
}

// Validate rejects meaningless option combinations.
func (o Options) Validate() error {
	if o.Mode != ModePipeline && o.Mode != ModeShard {
		return fmt.Errorf("parallel: invalid mode %d", int(o.Mode))
	}
	if o.Workers < 0 {
		return fmt.Errorf("parallel: negative worker count %d", o.Workers)
	}
	return nil
}
