package parallel

import (
	"context"
	"fmt"
	"testing"

	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// BenchmarkParallelEpochs measures the whole-run cost of each execution
// mode across worker counts on an epoch-heavy configuration (short
// epochs force frequent boundaries, which is exactly the work the
// pipeline overlaps and sharding divides). workers=1 is the serial
// oracle and the speedup denominator. Note when reading results: the
// achievable speedup is bounded by the host's core count — on a 1-CPU
// runner the parallel modes can only show their overhead, not their
// speedup.
func BenchmarkParallelEpochs(b *testing.B) {
	gen, err := workloads.Get("pr")
	if err != nil {
		b.Fatal(err)
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	sc.AccessesPerCore = 10_000
	tr, err := gen(8, 1, sc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := smallConfig(system.NDPExt)
	cfg.EpochCycles = 25_000

	for _, mode := range []Mode{ModePipeline, ModeShard} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode, w), func(b *testing.B) {
				opts := Options{Workers: w, Mode: mode}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Run(context.Background(), cfg, tr.Clone(), opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
