package policy

import (
	"math"
	"testing"
)

// TestUtilityWorkedExample reproduces the §V-C worked example exactly:
// a replication group holding 60 and 40 elements in units A and B with
// all attenuation factors 0.9 has utility 60 + 40*0.9 = 96 for A and
// 40 + 60*0.9 = 94 for B, 190 in total.
func TestUtilityWorkedExample(t *testing.T) {
	o := &optimizer{cfg: Config{
		NumUnits: 2, RowBytes: 2048, UnitRows: 1024, SegRows: 4,
		Attenuation: func(u, v int) float64 {
			if u == v {
				return 1
			}
			return 0.9
		},
		MaxGroups: 64,
	}}
	in := &StreamInput{SID: 1, Acc: map[int]uint64{0: 1, 1: 1}}
	g := &grp{
		rows:      map[int]uint32{0: 60, 1: 40},
		accessors: []int{0, 1},
		anchor:    0,
	}
	if got := o.utility(in, g); math.Abs(got-190) > 1e-9 {
		t.Fatalf("utility = %v, want 190 (paper's worked example)", got)
	}
}

// TestExtendedUtilityWorkedExample continues the example: extending the
// next 20 elements to unit C (attenuation 0.9 from both A and B) yields
// utility 60 + 40*0.9 + 20*0.9 = 114 for A and 112 for B, 226 in total.
func TestExtendedUtilityWorkedExample(t *testing.T) {
	o := &optimizer{cfg: Config{
		NumUnits: 3, RowBytes: 2048, UnitRows: 1024, SegRows: 4,
		Attenuation: func(u, v int) float64 {
			if u == v {
				return 1
			}
			return 0.9
		},
		MaxGroups: 64,
	}}
	in := &StreamInput{SID: 1, Acc: map[int]uint64{0: 1, 1: 1}}
	g := &grp{
		rows:      map[int]uint32{0: 60, 1: 40, 2: 20}, // extended to unit C
		accessors: []int{0, 1},                         // C does not access the stream
		anchor:    0,
	}
	if got := o.utility(in, g); math.Abs(got-226) > 1e-9 {
		t.Fatalf("extended utility = %v, want 226 (paper's worked example)", got)
	}
}

// TestMergedUtilityDirection mirrors the merge arithmetic of §V-C: after
// merging two 100-element groups, only one copy's worth of elements
// remains spread over the union, so total utility decreases while space
// is freed.
func TestMergedUtilityDirection(t *testing.T) {
	o := &optimizer{cfg: Config{
		NumUnits: 3, RowBytes: 2048, UnitRows: 1024, SegRows: 4,
		Attenuation: func(u, v int) float64 {
			if u == v {
				return 1
			}
			return 0.9
		},
		MaxGroups: 64,
	}}
	in := &StreamInput{SID: 1, Acc: map[int]uint64{0: 1, 1: 1, 2: 1}}
	a := &grp{rows: map[int]uint32{0: 60, 1: 40}, accessors: []int{0, 1}, anchor: 0}
	b := &grp{rows: map[int]uint32{2: 100}, accessors: []int{2}, anchor: 2}
	before := o.utility(in, a) + o.utility(in, b)
	merged := o.mergedUtility(in, a, b)
	if merged >= before {
		t.Fatalf("merged utility %v not below separate %v", merged, before)
	}
	if merged <= 0 {
		t.Fatalf("merged utility %v should stay positive", merged)
	}
}
