package policy

import (
	"testing"

	"ndpext/internal/sampler"
	"ndpext/internal/stream"
)

// flatAtt returns an attenuation function for a 1-D line of units where
// neighbouring units cost `step` of utility per hop.
func lineAtt(step float64) func(u, v int) float64 {
	return func(u, v int) float64 {
		d := u - v
		if d < 0 {
			d = -d
		}
		att := 1.0
		for i := 0; i < d; i++ {
			att *= 1 - step
		}
		return att
	}
}

func testCfg(units int, unitRows uint32) Config {
	return Config{
		NumUnits:    units,
		RowBytes:    2048,
		UnitRows:    unitRows,
		SegRows:     4,
		Attenuation: lineAtt(0.1),
		MaxGroups:   64,
		MaxIters:    100000,
		MissLatNS:   500,
		NetLatNS:    func(d int) float64 { return 50 / float64(d) },
	}
}

// curveWS builds a synthetic miss curve: misses drop to floor once
// capacity reaches wsBytes.
func curveWS(wsBytes int64, floor float64, accesses uint64) sampler.Curve {
	return sampler.Curve{
		ItemBytes: 64,
		Accesses:  accesses,
		Points: []sampler.CurvePoint{
			{Bytes: wsBytes / 16, MissRate: 1, Sampled: 100},
			{Bytes: wsBytes / 2, MissRate: 0.7, Sampled: 100},
			{Bytes: wsBytes, MissRate: floor, Sampled: 100},
			{Bytes: wsBytes * 16, MissRate: floor, Sampled: 100},
		},
	}
}

func TestHotStreamGetsMoreSpace(t *testing.T) {
	cfg := testCfg(4, 256)
	hot := StreamInput{
		SID: 1, ReadOnly: true,
		Curve: curveWS(256*2048, 0.01, 1_000_000),
		Acc:   map[int]uint64{0: 500_000, 1: 500_000},
	}
	cold := StreamInput{
		SID: 2, ReadOnly: true,
		Curve: curveWS(256*2048, 0.01, 10_000),
		Acc:   map[int]uint64{2: 10_000},
	}
	allocs, rep, err := Optimize(cfg, []StreamInput{hot, cold})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	if allocs[1].TotalRows() <= allocs[2].TotalRows() {
		t.Fatalf("hot stream got %d rows, cold got %d", allocs[1].TotalRows(), allocs[2].TotalRows())
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	cfg := testCfg(4, 64)
	var ins []StreamInput
	for i := 0; i < 6; i++ {
		ins = append(ins, StreamInput{
			SID: stream.ID(i + 1), ReadOnly: true,
			Curve: curveWS(1<<20, 0, 100_000),
			Acc:   map[int]uint64{i % 4: 100_000},
		})
	}
	allocs, _, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	perUnit := make([]uint64, 4)
	for _, a := range allocs {
		for u, s := range a.Shares {
			perUnit[u] += uint64(s)
		}
	}
	for u, rows := range perUnit {
		if rows > 64 {
			t.Fatalf("unit %d allocated %d rows > capacity 64", u, rows)
		}
	}
}

func TestReadOnlyStreamReplicates(t *testing.T) {
	cfg := testCfg(8, 1024) // abundant space
	in := StreamInput{
		SID: 1, ReadOnly: true,
		Curve: curveWS(64*2048, 0, 1_000_000),
		Acc:   map[int]uint64{0: 100, 3: 100, 7: 100},
	}
	allocs, rep, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	a := allocs[1]
	if got := len(a.GroupIDs()); got < 2 {
		t.Fatalf("read-only reusable stream formed %d groups, want replication", got)
	}
	if rep.ReplicatedRows == 0 {
		t.Fatal("no rows counted as replicated")
	}
}

func TestWritableStreamSingleGroup(t *testing.T) {
	cfg := testCfg(8, 1024)
	in := StreamInput{
		SID: 1, ReadOnly: false,
		Curve: curveWS(64*2048, 0, 1_000_000),
		Acc:   map[int]uint64{0: 100, 3: 100, 7: 100},
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got > 1 {
		t.Fatalf("writable stream formed %d groups", got)
	}
}

func TestMergeUnderPressure(t *testing.T) {
	// Stream 1 replicates (its per-core curve has a cheap knee), then a
	// hungry second stream exhausts both units: the algorithm must merge
	// stream 1's groups to free space.
	cfg := testCfg(2, 32)
	replicable := StreamInput{
		SID: 1, ReadOnly: true,
		Curve:      curveWS(16*2048, 0.02, 1_000_000),
		LocalCurve: curveWS(8*2048, 0.02, 500_000),
		Acc:        map[int]uint64{0: 500_000, 1: 500_000},
		Footprint:  40 * 2048,
	}
	hungry := StreamInput{
		SID: 2, ReadOnly: true,
		Curve:     curveWS(58*2048, 0, 2_000_000),
		Acc:       map[int]uint64{0: 2_000_000},
		Footprint: 58 * 2048,
	}
	allocs, rep, err := Optimize(cfg, []StreamInput{replicable, hungry})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges == 0 {
		t.Fatal("no merges recorded despite capacity exhaustion")
	}
	if got := len(allocs[1].GroupIDs()); got != 1 {
		t.Fatalf("replicated stream kept %d groups under pressure, want 1", got)
	}
	if allocs[2].TotalRows() < 30 {
		t.Fatalf("hungry stream only got %d rows", allocs[2].TotalRows())
	}
}

func TestNoReplicationWithoutLocalReuse(t *testing.T) {
	// A stream whose global curve descends but whose per-core curve is
	// flat (cross-core reuse only, like PageRank's rank array) must stay
	// in a single shared group.
	cfg := testCfg(8, 1024)
	in := StreamInput{
		SID: 1, ReadOnly: true,
		Curve:      curveWS(64*2048, 0.05, 1_000_000),
		LocalCurve: curveWS(64*2048, 0.85, 1_000_000), // flat and high
		Acc:        map[int]uint64{0: 250_000, 2: 250_000, 5: 250_000, 7: 250_000},
		Footprint:  64 * 2048,
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got != 1 {
		t.Fatalf("stream without per-core reuse got %d groups, want 1", got)
	}
}

func TestExtendUsesNearestUnit(t *testing.T) {
	// Unit 0's accessor needs more space than unit 0 has; units 1..3 are
	// empty. The extension should pick unit 1 (nearest).
	cfg := testCfg(4, 16)
	hot := StreamInput{
		SID: 1, ReadOnly: true,
		Curve: curveWS(48*2048, 0, 1_000_000),
		Acc:   map[int]uint64{0: 1_000_000},
	}
	allocs, rep, err := Optimize(cfg, []StreamInput{hot})
	if err != nil {
		t.Fatal(err)
	}
	a := allocs[1]
	if rep.Extends == 0 {
		t.Fatal("no extensions recorded")
	}
	if a.Shares[0] == 0 || a.Shares[1] == 0 {
		t.Fatalf("expected rows on units 0 and 1, got %v", a.Shares)
	}
	if a.Shares[3] > a.Shares[1] {
		t.Fatalf("farther unit 3 (%d rows) preferred over unit 1 (%d rows)", a.Shares[3], a.Shares[1])
	}
}

func TestAffineCapRespected(t *testing.T) {
	cfg := testCfg(2, 256)
	cfg.AffineCapRows = 8
	in := StreamInput{
		SID: 1, ReadOnly: true, Affine: true,
		Curve: curveWS(512*2048, 0, 1_000_000),
		Acc:   map[int]uint64{0: 1, 1: 1},
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	for u, s := range allocs[1].Shares {
		if s > 8 {
			t.Fatalf("unit %d has %d affine rows > cap 8", u, s)
		}
	}
}

func TestMaxGroupsClustering(t *testing.T) {
	cfg := testCfg(16, 1024)
	cfg.MaxGroups = 4
	acc := map[int]uint64{}
	for u := 0; u < 16; u++ {
		acc[u] = 1000
	}
	in := StreamInput{SID: 1, ReadOnly: true, Curve: curveWS(8*2048, 0, 16_000), Acc: acc}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got > 4 {
		t.Fatalf("%d groups exceed MaxGroups 4", got)
	}
}

func TestStreamsWithoutAccessesIgnored(t *testing.T) {
	cfg := testCfg(2, 64)
	ins := []StreamInput{{SID: 1, ReadOnly: true, Curve: curveWS(1024, 0, 0), Acc: nil}}
	allocs, _, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 0 {
		t.Fatalf("idle stream received an allocation: %v", allocs)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testCfg(8, 128)
	mk := func() []StreamInput {
		var ins []StreamInput
		for i := 0; i < 10; i++ {
			ins = append(ins, StreamInput{
				SID: stream.ID(i + 1), ReadOnly: i%2 == 0,
				Curve: curveWS(int64(i+1)*32*2048, 0.05, uint64(1000*(i+1))),
				Acc:   map[int]uint64{i % 8: 1000, (i + 3) % 8: 500},
			})
		}
		return ins
	}
	a1, _, err := Optimize(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Optimize(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	for sid, a := range a1 {
		b := a2[sid]
		for u := range a.Shares {
			if a.Shares[u] != b.Shares[u] || a.Groups[u] != b.Groups[u] {
				t.Fatalf("nondeterministic allocation for stream %d unit %d", sid, u)
			}
		}
	}
}

func TestAllAllocationsValid(t *testing.T) {
	cfg := testCfg(8, 64)
	var ins []StreamInput
	for i := 0; i < 12; i++ {
		ins = append(ins, StreamInput{
			SID: stream.ID(i + 1), ReadOnly: i%3 != 0, Affine: i%2 == 0,
			Curve: curveWS(int64(1+i%4)*64*2048, 0.1, uint64(10000*(i+1))),
			Acc:   map[int]uint64{i % 8: 5000, (i * 3) % 8: 2000},
		})
	}
	allocs, _, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	for sid, a := range allocs {
		if err := a.Validate(8); err != nil {
			t.Fatalf("stream %d allocation invalid: %v", sid, err)
		}
		in := ins[sid-1]
		if !in.ReadOnly && len(a.GroupIDs()) > 1 {
			t.Fatalf("writable stream %d has %d groups", sid, len(a.GroupIDs()))
		}
	}
}

func TestStaticEqual(t *testing.T) {
	cfg := testCfg(4, 120)
	var ins []StreamInput
	for i := 0; i < 3; i++ {
		ins = append(ins, StreamInput{SID: stream.ID(i + 1), ReadOnly: true,
			Curve: curveWS(1024, 0, 100), Acc: map[int]uint64{0: 1}})
	}
	allocs, err := StaticEqual(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 3 {
		t.Fatalf("allocations for %d streams", len(allocs))
	}
	for sid, a := range allocs {
		for u, s := range a.Shares {
			if s != 40 {
				t.Fatalf("stream %d unit %d share = %d, want 40", sid, u, s)
			}
		}
		if len(a.GroupIDs()) != 1 {
			t.Fatalf("static allocation replicated stream %d", sid)
		}
	}
	// Row bases must not overlap between streams on a unit.
	type span struct{ lo, hi uint32 }
	var spans []span
	for _, a := range allocs {
		spans = append(spans, span{a.RowBase[0], a.RowBase[0] + a.Shares[0]})
	}
	for i := range spans {
		for j := range spans {
			if i != j && spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("row ranges overlap: %v", spans)
			}
		}
	}
}

func TestStaticEqualAffineCap(t *testing.T) {
	cfg := testCfg(2, 100)
	cfg.AffineCapRows = 10
	ins := []StreamInput{
		{SID: 1, Affine: true, ReadOnly: true, Curve: curveWS(1024, 0, 1), Acc: map[int]uint64{0: 1}},
		{SID: 2, Affine: true, ReadOnly: true, Curve: curveWS(1024, 0, 1), Acc: map[int]uint64{0: 1}},
	}
	allocs, err := StaticEqual(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	total := allocs[1].Shares[0] + allocs[2].Shares[0]
	if total > 10 {
		t.Fatalf("affine shares %d exceed cap 10", total)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := testCfg(0, 64)
	if _, _, err := Optimize(bad, nil); err == nil {
		t.Fatal("zero units accepted")
	}
	bad = testCfg(2, 64)
	bad.Attenuation = nil
	if _, _, err := Optimize(bad, nil); err == nil {
		t.Fatal("nil attenuation accepted")
	}
	bad = testCfg(2, 64)
	bad.MaxGroups = 100
	if _, _, err := Optimize(bad, nil); err == nil {
		t.Fatal("MaxGroups beyond 6-bit limit accepted")
	}
}

func TestResidualFillStopsAtFootprintHeadroom(t *testing.T) {
	// One small stream, abundant capacity: the residual fill must stop at
	// ~2x the footprint (conflict headroom), not consume the machine.
	cfg := testCfg(4, 1024)
	in := StreamInput{
		SID: 1, ReadOnly: true,
		Curve:     curveWS(16*2048, 0, 1_000_000),
		Acc:       map[int]uint64{0: 1_000_000},
		Footprint: 16 * 2048,
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	// Per group: at most 2x footprint (32 rows) plus a segment of slack.
	groups := len(allocs[1].GroupIDs())
	maxRows := uint64(groups) * (32 + uint64(cfg.SegRows))
	if got := allocs[1].TotalRows(); got > maxRows {
		t.Fatalf("allocated %d rows for a 16-row stream across %d groups (cap %d)",
			got, groups, maxRows)
	}
}

func TestHysteresisKeepsPrevGroups(t *testing.T) {
	cfg := testCfg(8, 1024)
	in := StreamInput{
		SID: 1, ReadOnly: true,
		Curve:      curveWS(16*2048, 0.02, 1_000_000),
		LocalCurve: curveWS(8*2048, 0.02, 500_000),
		Acc:        map[int]uint64{0: 250_000, 2: 250_000, 5: 250_000, 7: 250_000},
		Footprint:  16 * 2048,
		PrevGroups: 2,
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got != 2 {
		t.Fatalf("hysteresis ignored: %d groups, previous was 2", got)
	}
}
