// Package policy implements NDPExt's cache configuration algorithm
// (paper §V-C, Algorithm 1). Every epoch the host runtime feeds it the
// profiled miss curves and per-unit access counts of all streams; the
// algorithm simultaneously decides sizing (how many DRAM rows each stream
// cache gets), placement (from which NDP units), and replication (how the
// units partition into replication groups, independently per stream).
//
// The structure follows the paper: a lookahead loop repeatedly gives the
// stream with the steepest miss-curve slope one allocation segment in
// every replication group; when a group's home unit runs out of space the
// algorithm either *extends* the group to a nearby unit (paying an
// attenuation factor on the utility of remote rows) or *merges* two
// existing groups of some stream (reducing replication to free space),
// choosing whichever change yields the higher utility.
package policy

import (
	"fmt"
	"sort"

	"ndpext/internal/sampler"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// StreamInput is one stream's profile for the epoch.
type StreamInput struct {
	SID stream.ID
	// Curve is the stream's global miss curve: the home-unit sampler
	// sees traffic from every core (§V-A), so it captures cross-core
	// reuse. It sizes shared (single-group) stream caches.
	Curve sampler.Curve
	// LocalCurve is the miss curve of a single core's accesses. It
	// decides replication: if per-core reuse exists (the local curve
	// drops), replicas keep their hit rate after the accessors are
	// split among groups; if only the global curve drops, splitting
	// destroys the reuse and the stream must stay shared. Zero value
	// falls back to Curve.
	LocalCurve sampler.Curve
	Acc        map[int]uint64 // accessing unit -> access count (§V-B bitvector + counts)
	ReadOnly   bool
	Affine     bool
	Footprint  int64 // cache footprint in bytes (caps useful allocation; 0 = unknown)
	// PrevGroups is the stream's replication group count in the
	// currently installed configuration (0 if none). The optimizer keeps
	// it unless the profile calls for a large change: regrouping remaps
	// the whole stream, and the resulting invalidations usually cost
	// more than a mildly better degree earns (§V-D motivation).
	PrevGroups int
}

// localOrGlobal returns the curve to use for a replicated group.
func (in *StreamInput) localOrGlobal() sampler.Curve {
	if len(in.LocalCurve.Points) > 0 {
		return in.LocalCurve
	}
	return in.Curve
}

// Config parameterizes the optimizer.
type Config struct {
	NumUnits      int
	RowBytes      int
	UnitRows      uint32 // DRAM cache rows per unit
	AffineCapRows uint32 // per-unit cap on total affine rows (§IV-C restriction)
	SegRows       uint32 // allocation segment (lookahead step)
	// Attenuation returns the paper's k factor for unit v's rows as seen
	// from accessor u: DRAM latency / (DRAM latency + interconnect
	// latency), 1 for u == v, smaller for farther units.
	Attenuation func(u, v int) float64
	MaxGroups   int // replication group cap per stream (64 in hardware)
	MaxIters    int // safety valve for the lookahead loop

	// MissLatNS is the extra latency of a DRAM-cache miss (the extended
	// memory round trip), and NetLatNS(d) the average interconnect
	// latency to the nearest of d replication groups. Together they let
	// the degree chooser trade hit rate against hit latency explicitly
	// (§V-C). Nil NetLatNS disables the latency term.
	MissLatNS float64
	NetLatNS  func(degree int) float64

	// DeadUnits lists units whose DRAM vault is offline (fault
	// injection); they contribute no capacity, so the optimizer places
	// every stream on surviving units only.
	DeadUnits []int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumUnits <= 0 || c.UnitRows == 0 || c.SegRows == 0 || c.RowBytes <= 0 {
		return fmt.Errorf("policy: invalid config %+v", c)
	}
	if c.Attenuation == nil {
		return fmt.Errorf("policy: nil attenuation function")
	}
	if c.MaxGroups <= 0 || c.MaxGroups > 1<<streamcache.RGroupsBits {
		return fmt.Errorf("policy: MaxGroups %d outside (0, %d]", c.MaxGroups, 1<<streamcache.RGroupsBits)
	}
	for _, u := range c.DeadUnits {
		if u < 0 || u >= c.NumUnits {
			return fmt.Errorf("policy: dead unit %d out of range [0,%d)", u, c.NumUnits)
		}
	}
	if len(c.DeadUnits) >= c.NumUnits {
		return fmt.Errorf("policy: all %d units dead", c.NumUnits)
	}
	return nil
}

// Report summarizes one optimization run.
type Report struct {
	Iterations     int
	RowsAllocated  uint64
	ReplicatedRows uint64 // rows in streams with more than one group
	Extends        int
	Merges         int
	Stalls         int
}

// grp is one replication group of one stream during optimization.
type grp struct {
	rows      map[int]uint32 // unit -> rows held
	accessors []int          // accessing units served by this group
	anchor    int            // preferred allocation unit
	stalled   bool
	dead      bool // merged away
}

func (g *grp) totalRows() uint64 {
	var t uint64
	for _, r := range g.rows {
		t += uint64(r)
	}
	return t
}

// st is the optimization state of one stream.
type st struct {
	in     *StreamInput
	groups []*grp
}

func (s *st) liveGroups() []*grp {
	out := s.groups[:0:0]
	for _, g := range s.groups {
		if !g.dead {
			out = append(out, g)
		}
	}
	return out
}

// optimizer carries the loop state.
type optimizer struct {
	cfg        Config
	streams    []*st
	free       []int64 // rows free per unit
	affineFree []int64 // affine budget remaining per unit
	rep        Report
}

// Optimize runs Algorithm 1 and returns the allocation per stream plus a
// run report. Streams with no accesses receive no space.
func Optimize(cfg Config, ins []StreamInput) (map[stream.ID]streamcache.Allocation, Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Report{}, err
	}
	o := &optimizer{cfg: cfg}
	o.free = make([]int64, cfg.NumUnits)
	o.affineFree = make([]int64, cfg.NumUnits)
	for u := range o.free {
		o.free[u] = int64(cfg.UnitRows)
		o.affineFree[u] = int64(cfg.AffineCapRows)
		if cfg.AffineCapRows == 0 || cfg.AffineCapRows > cfg.UnitRows {
			o.affineFree[u] = int64(cfg.UnitRows)
		}
	}
	// Dead vaults offer no capacity: every allocation path gates on
	// free[]/affineFree[], so zeroing them excludes the units entirely.
	for _, u := range cfg.DeadUnits {
		o.free[u] = 0
		o.affineFree[u] = 0
	}
	var accTotal uint64
	for i := range ins {
		for _, a := range ins[i].Acc {
			accTotal += a
		}
	}
	for i := range ins {
		in := &ins[i]
		if len(in.Acc) == 0 {
			continue
		}
		o.streams = append(o.streams, o.initStream(in, accTotal))
	}
	// Deterministic order regardless of input map iteration.
	sort.Slice(o.streams, func(i, j int) bool { return o.streams[i].in.SID < o.streams[j].in.SID })

	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 1 << 20
	}
	for o.rep.Iterations < maxIters {
		p := o.nextSteepest()
		if p == nil {
			break
		}
		o.rep.Iterations++
		o.allocateRound(p)
	}
	o.finalFill()
	return o.emit(), o.rep, nil
}

// finalFill spends leftover capacity after the utility-driven loop ends:
// first a floor allocation so no accessed stream is left with zero space
// (an unfunded stream would send every access to the extended memory and,
// unprofiled, could never earn space back), then greedy residual filling
// near the hottest accessors. This mirrors the paper's premise that the
// whole NDP DRAM space is cache.
func (o *optimizer) finalFill() {
	// Floor: one segment at each group's anchor for empty streams.
	for _, s := range o.streams {
		for _, g := range s.liveGroups() {
			if g.totalRows() == 0 {
				o.allocAnywhere(s, g, o.cfg.SegRows)
			}
		}
	}
	// Residual: hand remaining rows to groups at their anchors, hottest
	// streams first, one segment per pass.
	type pair struct {
		s *st
		g *grp
	}
	var order []pair
	for _, s := range o.streams {
		for _, g := range s.liveGroups() {
			order = append(order, pair{s, g})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		ai := groupAccesses(order[i].s.in, order[i].g)
		aj := groupAccesses(order[j].s.in, order[j].g)
		if ai != aj {
			return ai > aj
		}
		return order[i].s.in.SID < order[j].s.in.SID
	})
	for progress := true; progress; {
		progress = false
		for _, p := range order {
			// A group needs at most the stream's footprint plus headroom:
			// the DRAM cache is direct-mapped by hashing, so capacity
			// equal to the footprint still conflict-misses heavily
			// (load factor 1); 2x overprovisioning tames that.
			if f := p.s.in.Footprint; f > 0 &&
				p.g.totalRows()*uint64(o.cfg.RowBytes) >= 2*uint64(f) {
				continue
			}
			if o.allocAnywhere(p.s, p.g, o.cfg.SegRows) ||
				o.bestExtensionApply(p.s, p.g, o.cfg.SegRows) {
				progress = true
			}
		}
	}
}

// initStream builds the initial per-stream state. Read-only streams start
// with maximum replication (one group per accessing unit, the paper's
// starting point), but bounded by what replication can actually pay for:
// a replica only needs capacity up to the miss curve's knee, so the
// replication degree is capped at the stream's access-weighted fair share
// of total capacity divided by that knee. Streams whose curve flattens
// only at their full footprint (no per-replica reuse, e.g. PageRank's
// rank array) therefore start as a single shared group, while hot-headed
// streams (Zipf-skewed embeddings, small weight matrices) replicate
// widely. Writable streams always get a single group (§IV-B).
func (o *optimizer) initStream(in *StreamInput, accTotal uint64) *st {
	accs := make([]int, 0, len(in.Acc))
	for u := range in.Acc {
		accs = append(accs, u)
	}
	sort.Ints(accs)

	s := &st{in: in}
	if !in.ReadOnly {
		g := &grp{rows: map[int]uint32{}, accessors: accs, anchor: bestAnchor(in, accs)}
		s.groups = []*grp{g}
		return s
	}
	n := len(accs)
	k := n
	if k > o.cfg.MaxGroups {
		k = o.cfg.MaxGroups
	}
	budget := o.replicaBudget(in, accTotal)
	// Hysteresis: stick with the installed degree while the profile's
	// preference stays within 2x of it.
	if p := in.PrevGroups; p >= 1 && p <= k && budget >= (p+1)/2 && budget <= p*2 {
		budget = p
	}
	if budget < k {
		k = budget
	}
	for gi := 0; gi < k; gi++ {
		lo, hi := gi*n/k, (gi+1)*n/k
		members := accs[lo:hi]
		g := &grp{rows: map[int]uint32{}, accessors: members, anchor: bestAnchor(in, members)}
		s.groups = append(s.groups, g)
	}
	return s
}

// replicaBudget picks the replication degree that minimizes the expected
// access cost, making the paper's hit-rate-vs-hit-latency tradeoff
// explicit (§V-C): with degree d the stream's access-weighted capacity
// share splits into d copies, so the miss rate follows the per-core curve
// at share/d, while the interconnect distance to the nearest replica
// shrinks with d:
//
//	cost(d) = mr(share/d) * missLat + (1 - mr(share/d)) * netLat(d)
//
// Degree 1 (a single shared group) is evaluated on the global curve,
// which includes cross-core reuse; higher degrees use the per-core curve,
// because splitting the accessors destroys cross-core reuse.
func (o *optimizer) replicaBudget(in *StreamInput, accTotal uint64) int {
	if accTotal == 0 || o.cfg.NetLatNS == nil {
		return 1
	}
	var acc uint64
	for _, a := range in.Acc {
		acc += a
	}
	totalBytes := float64(o.cfg.NumUnits) * float64(o.cfg.UnitRows) * float64(o.cfg.RowBytes)
	share := totalBytes * float64(acc) / float64(accTotal)
	if in.Footprint > 0 && share > 2*float64(in.Footprint) {
		share = 2 * float64(in.Footprint)
	}
	local := in.localOrGlobal()

	bestD, bestCost := 1, 0.0
	for d := 1; d <= o.cfg.MaxGroups && d <= len(in.Acc); d *= 2 {
		curve := local
		if d == 1 {
			curve = in.Curve
		}
		mr := curve.MissRateAt(int64(share / float64(d)))
		cost := mr*o.cfg.MissLatNS + (1-mr)*o.cfg.NetLatNS(d)
		if d == 1 || cost < bestCost {
			bestD, bestCost = d, cost
		}
	}
	return bestD
}

// bestAnchor picks the member with the most accesses as the group's
// preferred allocation unit.
func bestAnchor(in *StreamInput, members []int) int {
	best := members[0]
	for _, u := range members[1:] {
		if in.Acc[u] > in.Acc[best] {
			best = u
		}
	}
	return best
}

// groupAccesses sums the access counts of a group's accessors.
func groupAccesses(in *StreamInput, g *grp) uint64 {
	var t uint64
	for _, a := range g.accessors {
		t += in.Acc[a]
	}
	return t
}

// groupJump finds the steepest slope ahead of group g's current capacity:
// the jump size (in rows, quantized to SegRows and capped at one unit's
// capacity) maximizing miss reduction per row, and that slope weighted by
// the group's access count. Looking past the next segment matters because
// miss curves plateau; this is the lookahead of Qureshi&Patt that
// Algorithm 1's NextSteepestSlopeSeg builds on.
func (o *optimizer) groupJump(s *st, g *grp) (jumpRows uint32, slope float64) {
	rowB := int64(o.cfg.RowBytes)
	cur := int64(g.totalRows()) * rowB
	acc := float64(groupAccesses(s.in, g))
	if acc == 0 {
		return 0, 0
	}
	// A replicated group serves a slice of the cores, so its behaviour
	// follows the per-core curve; a single shared group sees the global
	// mix.
	curve := s.in.Curve
	if len(s.liveGroups()) > 1 {
		curve = s.in.localOrGlobal()
	}
	mrCur := curve.MissRateAt(cur)
	maxJump := int64(o.cfg.UnitRows) * rowB
	// Candidate targets: the curve's own capacity points plus one segment.
	consider := func(target int64) {
		if target <= cur || target-cur > maxJump {
			return
		}
		d := curve.MissRateAt(target) - mrCur
		if d >= 0 {
			return
		}
		rows := (target - cur + rowB - 1) / rowB
		// Quantize up to a segment multiple.
		segs := (rows + int64(o.cfg.SegRows) - 1) / int64(o.cfg.SegRows)
		rows = segs * int64(o.cfg.SegRows)
		sl := acc * -d / float64(rows)
		if sl > slope {
			slope, jumpRows = sl, uint32(rows)
		}
	}
	consider(cur + int64(o.cfg.SegRows)*rowB)
	for _, p := range curve.Points {
		consider(p.Bytes)
	}
	return jumpRows, slope
}

// roundPlan is the per-group allocation chosen by nextSteepest.
type roundPlan struct {
	s     *st
	jumps map[*grp]uint32
	slope float64
}

// nextSteepest returns the stream with the steepest aggregate slope and
// the per-group jumps to allocate, or nil when no stream can profit
// (NextSteepestSlopeSeg in Algorithm 1).
func (o *optimizer) nextSteepest() *roundPlan {
	var best *roundPlan
	for _, s := range o.streams {
		var totGain, totRows float64
		jumps := make(map[*grp]uint32)
		for _, g := range s.liveGroups() {
			if g.stalled {
				continue
			}
			jump, slope := o.groupJump(s, g)
			if jump == 0 {
				continue
			}
			jumps[g] = jump
			totGain += slope * float64(jump)
			totRows += float64(jump)
		}
		if totRows == 0 {
			continue
		}
		agg := totGain / totRows
		if agg > 1e-12 && (best == nil || agg > best.slope) {
			best = &roundPlan{s: s, jumps: jumps, slope: agg}
		}
	}
	return best
}

// allocateRound gives stream s its planned jump in every unstalled group
// (Algorithm 1 lines 5-21), extending or merging when space runs out.
func (o *optimizer) allocateRound(p *roundPlan) {
	s := p.s
	for _, g := range s.liveGroups() {
		seg, ok := p.jumps[g]
		if !ok || g.stalled {
			continue
		}
		if o.tryAlloc(s, g, g.anchor, seg) {
			continue
		}
		// Try other units already in the group (no grouping change).
		placed := false
		for _, u := range sortedUnits(g.rows) {
			if u != g.anchor && o.tryAlloc(s, g, u, seg) {
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if !o.extendOrMerge(s, g, seg) {
			// Retry at segment granularity before giving up: partial
			// progress beats stalling the group outright.
			if seg > o.cfg.SegRows && o.allocAnywhere(s, g, o.cfg.SegRows) {
				continue
			}
			g.stalled = true
			o.rep.Stalls++
		}
	}
}

// allocAnywhere tries the anchor then any member unit for a small
// allocation.
func (o *optimizer) allocAnywhere(s *st, g *grp, seg uint32) bool {
	if o.tryAlloc(s, g, g.anchor, seg) {
		return true
	}
	for _, u := range sortedUnits(g.rows) {
		if o.tryAlloc(s, g, u, seg) {
			return true
		}
	}
	return false
}

// tryAlloc places seg rows of stream s's group g at unit u if space (and
// the affine budget) permits.
func (o *optimizer) tryAlloc(s *st, g *grp, u int, seg uint32) bool {
	if o.free[u] < int64(seg) {
		return false
	}
	if s.in.Affine && o.affineFree[u] < int64(seg) {
		return false
	}
	o.free[u] -= int64(seg)
	if s.in.Affine {
		o.affineFree[u] -= int64(seg)
	}
	g.rows[u] += seg
	o.rep.RowsAllocated += uint64(seg)
	return true
}

// utility is the paper's group utility: every accessor values each unit's
// rows attenuated by distance (§V-C worked example). Units are visited in
// sorted order so the floating-point sum is deterministic (map order
// would make near-tie decisions run-dependent).
func (o *optimizer) utility(in *StreamInput, g *grp) float64 {
	var util float64
	units := sortedUnits(g.rows)
	for _, a := range g.accessors {
		for _, u := range units {
			util += float64(g.rows[u]) * o.cfg.Attenuation(a, u)
		}
	}
	return util
}

// extendOrMerge implements lines 9-21 of Algorithm 1 for one group whose
// units are full: compare extending g to the nearest available unit
// against merging two groups to free space, apply the better option, and
// then retry the pending allocation.
func (o *optimizer) extendOrMerge(s *st, g *grp, seg uint32) bool {
	extU, extGain := o.bestExtension(s, g, seg)
	mA, mB, mGain := o.bestMerge(s, g, seg)

	switch {
	case extU >= 0 && (mA == nil || extGain >= mGain):
		if !o.tryAlloc(s, g, extU, seg) {
			return false
		}
		o.rep.Extends++
		return true
	case mA != nil:
		o.merge(s, mA, mB)
		o.rep.Merges++
		// Retry the pending allocation with the freed space.
		if o.tryAlloc(s, g, g.anchor, seg) {
			return true
		}
		for _, u := range sortedUnits(g.rows) {
			if o.tryAlloc(s, g, u, seg) {
				return true
			}
		}
		return o.bestExtensionApply(s, g, seg)
	default:
		return false
	}
}

// bestExtension finds the nearest unit with space that could join group g
// (a unit may serve only one replication group per stream), returning the
// unit and the utility gained by placing the segment there.
func (o *optimizer) bestExtension(s *st, g *grp, seg uint32) (int, float64) {
	taken := map[int]bool{}
	for _, og := range s.liveGroups() {
		if og == g {
			continue
		}
		for u := range og.rows {
			taken[u] = true
		}
	}
	bestU, bestAtt := -1, 0.0
	for u := 0; u < o.cfg.NumUnits; u++ {
		if taken[u] || o.free[u] < int64(seg) {
			continue
		}
		if s.in.Affine && o.affineFree[u] < int64(seg) {
			continue
		}
		att := o.cfg.Attenuation(g.anchor, u)
		if att > bestAtt {
			bestU, bestAtt = u, att
		}
	}
	if bestU < 0 {
		return -1, 0
	}
	// Utility gained: each accessor values the new rows at its distance.
	var gain float64
	for _, a := range g.accessors {
		gain += float64(seg) * o.cfg.Attenuation(a, bestU)
	}
	return bestU, gain
}

// bestExtensionApply extends and allocates in one step (post-merge retry).
func (o *optimizer) bestExtensionApply(s *st, g *grp, seg uint32) bool {
	u, _ := o.bestExtension(s, g, seg)
	if u < 0 {
		return false
	}
	if !o.tryAlloc(s, g, u, seg) {
		return false
	}
	o.rep.Extends++
	return true
}

// bestMerge finds the lowest-utility group (of any stream) holding rows
// at one of g's units, pairs it with the nearest other group of the same
// stream, and returns the pair plus the net utility change of merging and
// then allocating the pending segment.
func (o *optimizer) bestMerge(s *st, g *grp, seg uint32) (*grp, *grp, float64) {
	gUnits := map[int]bool{g.anchor: true}
	for u := range g.rows {
		gUnits[u] = true
	}
	var bestA, bestB *grp
	var bestStream *st
	bestUtil := 0.0
	for _, os := range o.streams {
		live := os.liveGroups()
		if len(live) < 2 {
			continue // merging needs two groups of the same stream
		}
		for _, cand := range live {
			holds := false
			for u := range cand.rows {
				if gUnits[u] && cand.rows[u] > 0 {
					holds = true
					break
				}
			}
			if !holds {
				continue
			}
			u := o.utility(os.in, cand)
			if bestA == nil || u < bestUtil {
				bestA, bestUtil, bestStream = cand, u, os
			}
		}
	}
	if bestA == nil {
		return nil, nil, 0
	}
	// Nearest group of the same stream (highest anchor-to-anchor attenuation).
	bestAtt := -1.0
	for _, cand := range bestStream.liveGroups() {
		if cand == bestA {
			continue
		}
		att := o.cfg.Attenuation(bestA.anchor, cand.anchor)
		if att > bestAtt {
			bestB, bestAtt = cand, att
		}
	}
	if bestB == nil {
		return nil, nil, 0
	}
	// Net gain: merged utility minus the two old utilities, plus the
	// pending allocation's utility at g's anchor once space is free.
	before := o.utility(bestStream.in, bestA) + o.utility(bestStream.in, bestB)
	after := o.mergedUtility(bestStream.in, bestA, bestB)
	var allocGain float64
	for _, a := range g.accessors {
		allocGain += float64(seg) * o.cfg.Attenuation(a, g.anchor)
	}
	return bestA, bestB, after - before + allocGain
}

// mergedUtility evaluates the utility of the union group at the
// post-merge capacity (the larger copy's rows, spread proportionally).
func (o *optimizer) mergedUtility(in *StreamInput, a, b *grp) float64 {
	ta, tb := a.totalRows(), b.totalRows()
	keep := ta
	if tb > ta {
		keep = tb
	}
	total := ta + tb
	if total == 0 {
		return 0
	}
	scale := float64(keep) / float64(total)
	merged := &grp{rows: map[int]uint32{}, accessors: append(append([]int{}, a.accessors...), b.accessors...)}
	for u, r := range a.rows {
		merged.rows[u] += uint32(float64(r) * scale)
	}
	for u, r := range b.rows {
		merged.rows[u] += uint32(float64(r) * scale)
	}
	return o.utility(in, merged)
}

// merge folds group b into group a, keeping max(|a|, |b|) rows spread
// proportionally over both groups' units and freeing the rest.
func (o *optimizer) merge(s *st, a, b *grp) {
	ta, tb := a.totalRows(), b.totalRows()
	keep := ta
	if tb > ta {
		keep = tb
	}
	total := ta + tb
	scale := 1.0
	if total > 0 {
		scale = float64(keep) / float64(total)
	}
	shrink := func(g *grp) {
		for _, u := range sortedUnits(g.rows) {
			old := g.rows[u]
			kept := uint32(float64(old) * scale)
			freed := int64(old - kept)
			o.free[u] += freed
			if s.in.Affine {
				o.affineFree[u] += freed
			}
			o.rep.RowsAllocated -= uint64(old - kept)
			if kept == 0 {
				delete(g.rows, u)
			} else {
				g.rows[u] = kept
			}
		}
	}
	shrink(a)
	shrink(b)
	for u, r := range b.rows {
		a.rows[u] += r
	}
	a.accessors = append(a.accessors, b.accessors...)
	sort.Ints(a.accessors)
	a.anchor = bestAnchor(s.in, a.accessors)
	a.stalled = false
	b.dead = true
	b.rows = map[int]uint32{}
	b.accessors = nil
}

// sortedUnits returns the map's keys in ascending order (determinism).
func sortedUnits(m map[int]uint32) []int {
	out := make([]int, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// emit converts the optimization state into remap-table allocations,
// assigning group IDs, per-unit row bases, and nearest groups for
// non-accessor units.
func (o *optimizer) emit() map[stream.ID]streamcache.Allocation {
	out := make(map[stream.ID]streamcache.Allocation, len(o.streams))
	nextRow := make([]uint32, o.cfg.NumUnits)
	for _, s := range o.streams {
		a := streamcache.NewAllocation(o.cfg.NumUnits)
		live := s.liveGroups()
		// Unit -> group id for units holding rows or accessing.
		owner := make([]int, o.cfg.NumUnits)
		for u := range owner {
			owner[u] = -1
		}
		replicated := len(live) > 1
		for gi, g := range live {
			for u, r := range g.rows {
				a.Shares[u] = r
				a.RowBase[u] = nextRow[u]
				nextRow[u] += r
				owner[u] = gi
				if replicated {
					o.rep.ReplicatedRows += uint64(r)
				}
			}
			for _, u := range g.accessors {
				if owner[u] < 0 {
					owner[u] = gi
				}
			}
		}
		// Remaining units read from the nearest group's anchor.
		for u := 0; u < o.cfg.NumUnits; u++ {
			if owner[u] >= 0 {
				a.Groups[u] = uint8(owner[u])
				continue
			}
			best, bestAtt := 0, -1.0
			for gi, g := range live {
				att := o.cfg.Attenuation(u, g.anchor)
				if att > bestAtt {
					best, bestAtt = gi, att
				}
			}
			a.Groups[u] = uint8(best)
		}
		out[s.in.SID] = a
	}
	return out
}

// StaticEqual builds the NDPExt-static configuration (§VI): the cache
// space of every unit is split equally among all streams, each stream a
// single shared (non-replicated) group. Used by the static baseline and
// as the epoch-0 configuration before any profile exists.
func StaticEqual(cfg Config, ins []StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make(map[stream.ID]streamcache.Allocation, len(ins))
	n := uint32(len(ins))
	if n == 0 {
		return out, nil
	}
	affine := uint32(0)
	for _, in := range ins {
		if in.Affine {
			affine++
		}
	}
	share := cfg.UnitRows / n
	if share == 0 {
		share = 1
	}
	affineShare := share
	if affine > 0 && cfg.AffineCapRows > 0 && affineShare*affine > cfg.AffineCapRows {
		affineShare = cfg.AffineCapRows / affine
		if affineShare == 0 {
			affineShare = 1
		}
	}
	nextRow := make([]uint32, cfg.NumUnits)
	for _, in := range ins {
		a := streamcache.NewAllocation(cfg.NumUnits)
		s := share
		if in.Affine {
			s = affineShare
		}
		for u := 0; u < cfg.NumUnits; u++ {
			a.Shares[u] = s
			a.RowBase[u] = nextRow[u]
			nextRow[u] += s
		}
		out[in.SID] = a
	}
	return out, nil
}
