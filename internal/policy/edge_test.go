package policy

import (
	"testing"
)

// Degenerate-input coverage: the adaptive design's shadow arms call the
// optimizer with whatever the profiling epoch produced — including
// streams nobody touched, one-unit machines, and a replication cap of
// one — so these paths must hold up, not just the benchmark shapes.

func TestAllStreamsZeroAccess(t *testing.T) {
	cfg := testCfg(4, 64)
	ins := []StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(64*2048, 0.1, 0)},
		{SID: 2, Curve: curveWS(32*2048, 0.1, 0)},
	}
	allocs, rep, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	for sid, a := range allocs {
		if a.TotalRows() != 0 {
			t.Fatalf("zero-access stream %d got %d rows", sid, a.TotalRows())
		}
	}
	if rep.RowsAllocated != 0 {
		t.Fatalf("report claims %d rows allocated with no accesses", rep.RowsAllocated)
	}
}

func TestZeroAccessStreamStarvesNextToHotOne(t *testing.T) {
	cfg := testCfg(4, 64)
	hot := StreamInput{
		SID: 1, ReadOnly: true,
		Curve: curveWS(64*2048, 0.01, 1_000_000),
		Acc:   map[int]uint64{0: 500_000, 1: 500_000},
	}
	idle := StreamInput{SID: 2, ReadOnly: true, Curve: curveWS(64*2048, 0.01, 0)}
	allocs, _, err := Optimize(cfg, []StreamInput{hot, idle})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[2].TotalRows() != 0 {
		t.Fatalf("idle stream got %d rows", allocs[2].TotalRows())
	}
	if allocs[1].TotalRows() == 0 {
		t.Fatal("hot stream got nothing")
	}
}

func TestSingleUnitMachine(t *testing.T) {
	cfg := testCfg(1, 64)
	ins := []StreamInput{
		{
			SID: 1, ReadOnly: true,
			Curve:      curveWS(32*2048, 0.05, 100_000),
			LocalCurve: curveWS(4*2048, 0.05, 25_000),
			Acc:        map[int]uint64{0: 100_000},
		},
		{
			SID:   2,
			Curve: curveWS(16*2048, 0.1, 50_000),
			Acc:   map[int]uint64{0: 50_000},
		},
	}
	allocs, _, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	var used uint64
	for sid, a := range allocs {
		if err := a.Validate(1); err != nil {
			t.Fatalf("stream %d: %v", sid, err)
		}
		if g := a.GroupIDs(); len(g) > 1 {
			t.Fatalf("stream %d formed %d groups on a 1-unit machine", sid, len(g))
		}
		used += a.TotalRows()
	}
	if used == 0 {
		t.Fatal("nothing allocated on the single unit")
	}
	if used > uint64(cfg.UnitRows) {
		t.Fatalf("allocated %d rows on a unit with %d", used, cfg.UnitRows)
	}
	// The static baseline must handle the same degenerate machine.
	sAllocs, err := StaticEqual(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	var sUsed uint64
	for _, a := range sAllocs {
		sUsed += a.TotalRows()
	}
	if sUsed == 0 || sUsed > uint64(cfg.UnitRows) {
		t.Fatalf("static allocated %d rows on a unit with %d", sUsed, cfg.UnitRows)
	}
}

func TestMaxGroupsOneForbidsReplication(t *testing.T) {
	cfg := testCfg(8, 256)
	cfg.MaxGroups = 1
	// A hot read-only stream with strong per-core reuse: exactly the
	// shape that replicates maximally when allowed (one group per
	// accessing unit).
	in := StreamInput{
		SID: 1, ReadOnly: true,
		Curve:      curveWS(256*2048, 0.01, 1_000_000),
		LocalCurve: curveWS(8*2048, 0.01, 125_000),
		Acc: map[int]uint64{
			0: 125_000, 1: 125_000, 2: 125_000, 3: 125_000,
			4: 125_000, 5: 125_000, 6: 125_000, 7: 125_000,
		},
	}
	allocs, _, err := Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	a := allocs[1]
	if g := a.GroupIDs(); len(g) != 1 {
		t.Fatalf("MaxGroups=1 produced %d groups: %+v", len(g), a)
	}
	if err := a.Validate(cfg.NumUnits); err != nil {
		t.Fatal(err)
	}
	if a.TotalRows() == 0 {
		t.Fatal("hot stream got nothing under MaxGroups=1")
	}
	// Sanity: the same input with replication allowed does form groups,
	// so the cap (not the input) is what forbade them above.
	cfg.MaxGroups = 64
	allocs, _, err = Optimize(cfg, []StreamInput{in})
	if err != nil {
		t.Fatal(err)
	}
	if g := allocs[1].GroupIDs(); len(g) < 2 {
		t.Fatalf("control without the cap formed %d groups; test shape is wrong", len(g))
	}
}

func TestMaxGroupsOneMixedStreams(t *testing.T) {
	// MaxGroups=1 with several streams competing must still respect
	// per-unit capacity and keep every stream single-group.
	cfg := testCfg(4, 32)
	cfg.MaxGroups = 1
	ins := []StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(64*2048, 0.05, 400_000),
			Acc: map[int]uint64{0: 200_000, 1: 200_000}},
		{SID: 2, Curve: curveWS(64*2048, 0.05, 300_000),
			Acc: map[int]uint64{2: 300_000}},
		{SID: 3, ReadOnly: true, Curve: curveWS(32*2048, 0.1, 100_000),
			Acc: map[int]uint64{3: 100_000}},
	}
	allocs, _, err := Optimize(cfg, ins)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]uint64, cfg.NumUnits)
	for sid, a := range allocs {
		if g := a.GroupIDs(); len(g) > 1 {
			t.Fatalf("stream %d got %d groups under MaxGroups=1", sid, len(g))
		}
		for u, s := range a.Shares {
			used[u] += uint64(s)
		}
	}
	for u, n := range used {
		if n > uint64(cfg.UnitRows) {
			t.Fatalf("unit %d overcommitted: %d rows > %d", u, n, cfg.UnitRows)
		}
	}
}
