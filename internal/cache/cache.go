// Package cache implements set-associative SRAM caches with LRU
// replacement. It backs the per-core L1 caches of the NDP units and the
// per-unit metadata caches used by the baseline NUCA designs
// (Jigsaw/Whirlpool/Nexus adapted to a DRAM cache need a metadata lookup
// before each data access; see paper §VI "Baseline designs").
package cache

import "fmt"

// Cache is a set-associative cache indexed by address. It stores tags
// only (the simulator never stores data contents). Not safe for
// concurrent use.
type Cache struct {
	lineBytes int
	assoc     int
	numSets   int
	sets      []set
	tick      uint64
	stats     Stats
}

type set struct {
	ways []way
}

type way struct {
	tag   uint64 // full line address; valid flag separate
	valid bool
	dirty bool
	lru   uint64
}

// Stats aggregates cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate returns hits/(hits+misses), or 0 for an idle cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewChecked builds a cache of sizeBytes capacity with the given line
// size and associativity, returning an error on invalid geometry. Size
// must be a multiple of lineBytes*assoc; the set count need not be a
// power of two.
func NewChecked(sizeBytes, lineBytes, assoc int) (*Cache, error) {
	if sizeBytes <= 0 || lineBytes <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry size=%d line=%d assoc=%d", sizeBytes, lineBytes, assoc)
	}
	lines := sizeBytes / lineBytes
	if lines == 0 || lines%assoc != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-byte lines x %d ways", sizeBytes, lineBytes, assoc)
	}
	numSets := lines / assoc
	c := &Cache{lineBytes: lineBytes, assoc: assoc, numSets: numSets, sets: make([]set, numSets)}
	for i := range c.sets {
		c.sets[i].ways = make([]way, assoc)
	}
	return c, nil
}

// New builds a cache like NewChecked but panics on invalid geometry.
func New(sizeBytes, lineBytes, assoc int) *Cache {
	c, err := NewChecked(sizeBytes, lineBytes, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// SizeBytes returns the total capacity.
func (c *Cache) SizeBytes() int { return c.lineBytes * c.assoc * c.numSets }

// lineAddr converts a byte address to a line address.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr / uint64(c.lineBytes) }

// Access looks up addr, allocating on miss (write-allocate) and evicting
// LRU. It reports whether the access hit, and on an eviction of a dirty
// line, the victim's byte address and that a writeback is needed.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victimAddr uint64, writeback bool) {
	la := c.lineAddr(addr)
	s := &c.sets[la%uint64(c.numSets)]
	c.tick++

	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.tag == la {
			w.lru = c.tick
			if write {
				w.dirty = true
			}
			c.stats.Hits++
			return true, 0, false
		}
	}
	c.stats.Misses++

	// Find a victim: an invalid way, else the LRU way.
	vi := 0
	for i := range s.ways {
		if !s.ways[i].valid {
			vi = i
			break
		}
		if s.ways[i].lru < s.ways[vi].lru {
			vi = i
		}
	}
	v := &s.ways[vi]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			victimAddr = v.tag * uint64(c.lineBytes)
			writeback = true
		}
	}
	*v = way{tag: la, valid: true, dirty: write, lru: c.tick}
	return false, victimAddr, writeback
}

// Probe reports whether addr is cached, without updating LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	la := c.lineAddr(addr)
	s := &c.sets[la%uint64(c.numSets)]
	for i := range s.ways {
		if s.ways[i].valid && s.ways[i].tag == la {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if present, reporting whether
// it was present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.lineAddr(addr)
	s := &c.sets[la%uint64(c.numSets)]
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.tag == la {
			present, dirty = true, w.dirty
			*w = way{}
			return present, dirty
		}
	}
	return false, false
}

// InvalidateAll drops every line, returning how many were valid.
func (c *Cache) InvalidateAll() int {
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.sets[i].ways[j].valid {
				n++
			}
			c.sets[i].ways[j] = way{}
		}
	}
	return n
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears statistics without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }
