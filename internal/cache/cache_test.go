package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(1024, 64, 2)
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Fatal("second access to the same line missed")
	}
	if hit, _, _ := c.Access(63, false); !hit {
		t.Fatal("access within the same line missed")
	}
	if hit, _, _ := c.Access(64, false); hit {
		t.Fatal("adjacent line hit without being loaded")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 1 set: 128 bytes total with 64-byte lines.
	c := New(128, 64, 2)
	c.Access(0*64, false)
	c.Access(1*64, false)
	c.Access(0*64, false) // touch line 0 so line 1 is LRU
	c.Access(2*64, false) // evicts line 1
	if hit, _, _ := c.Access(0*64, false); !hit {
		t.Fatal("MRU line was evicted")
	}
	if hit, _, _ := c.Access(1*64, false); hit {
		t.Fatal("LRU line was not evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(128, 64, 2)
	c.Access(0*64, true) // dirty
	c.Access(1*64, false)
	c.Access(2*64, false)                  // evicts line 1 (clean after LRU? no: line 0 is LRU)
	_, victim, wb := c.Access(3*64, false) // fills the set again
	_ = victim
	_ = wb
	// Deterministic check: write line 0, then evict it explicitly.
	c2 := New(128, 64, 2)
	c2.Access(0*64, true)
	c2.Access(1*64, false)
	_, victim2, wb2 := c2.Access(2*64, false) // line 0 is LRU and dirty
	if !wb2 || victim2 != 0 {
		t.Fatalf("expected writeback of line 0, got wb=%v victim=%#x", wb2, victim2)
	}
	s := c2.Stats()
	if s.Writebacks != 1 || s.Evictions != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New(128, 64, 2)
	c.Access(0*64, false)
	c.Access(1*64, false)
	before := c.Stats()
	if !c.Probe(0) || c.Probe(5*64) {
		t.Fatal("Probe gave wrong membership")
	}
	if c.Stats() != before {
		t.Fatal("Probe changed statistics")
	}
	// Probe must not refresh LRU: line 0 is LRU; probing it then inserting
	// should still evict line 0.
	c.Probe(0)
	c.Access(2*64, false)
	if c.Probe(0) {
		t.Fatal("Probe refreshed LRU state")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v; want present dirty", present, dirty)
	}
	if present, _ := c.Invalidate(0); present {
		t.Fatal("double invalidate reported present")
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("access hit after invalidate")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(1024, 64, 2)
	for i := uint64(0); i < 8; i++ {
		c.Access(i*64, false)
	}
	if n := c.InvalidateAll(); n != 8 {
		t.Fatalf("InvalidateAll flushed %d lines, want 8", n)
	}
	if c.Probe(0) {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestHitRate(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(64, false)
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("idle hit rate not 0")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, g := range [][3]int{{0, 64, 2}, {100, 64, 2}, {128, 64, 3}, {64, 0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v did not panic", g)
				}
			}()
			New(g[0], g[1], g[2])
		}()
	}
}

// Property: the number of resident lines never exceeds capacity, and a
// just-inserted line is always resident.
func TestResidencyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(512, 64, 2) // 8 lines
		for _, a := range addrs {
			addr := uint64(a) * 64
			c.Access(addr, a%3 == 0)
			if !c.Probe(addr) {
				return false
			}
		}
		resident := 0
		for i := uint64(0); i < 1<<16; i++ {
			if c.Probe(i * 64) {
				resident++
				if resident > 8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals the number of accesses.
func TestAccountingProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(4096, 64, 4)
		for _, a := range addrs {
			c.Access(uint64(a), false)
		}
		s := c.Stats()
		return s.Hits+s.Misses == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
