package cache

import "testing"

func TestNewCheckedRejectsBadGeometry(t *testing.T) {
	if _, err := NewChecked(1<<15, 64, 4); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := [][3]int{
		{0, 64, 4},       // no capacity
		{1 << 15, 0, 4},  // no line size
		{1 << 15, 64, 0}, // no ways
		{-64, 64, 1},     // negative capacity
		{32, 64, 1},      // smaller than one line
		{1 << 15, 64, 7}, // lines not divisible into ways
	}
	for _, g := range bad {
		if _, err := NewChecked(g[0], g[1], g[2]); err == nil {
			t.Errorf("geometry %v accepted", g)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid geometry without panicking")
		}
	}()
	New(0, 64, 4)
}
