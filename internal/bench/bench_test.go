package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ndpext/internal/system"
)

func TestTableString(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "longheader"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatalf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	// Columns align: both data rows start their second column at the
	// same offset.
	if strings.Index(lines[2], "1") != strings.Index(lines[3], "2") {
		t.Fatalf("misaligned columns:\n%s", s)
	}
}

func TestOptionsScales(t *testing.T) {
	d, q := Default(), Quick()
	if len(d.Workloads) != 13 {
		t.Fatalf("default covers %d workloads", len(d.Workloads))
	}
	if len(q.Workloads) >= len(d.Workloads) || q.AccessesPerCore >= d.AccessesPerCore {
		t.Fatal("quick scale not smaller")
	}
}

func TestFig4bShape(t *testing.T) {
	tbl, times := Fig4b()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if times[512] <= 0 {
		t.Fatal("no timing recorded")
	}
	// The paper's point: assignment stays fast (sub-10ms even at 512
	// streams, scaled for a Go implementation).
	if times[512].Milliseconds() > 100 {
		t.Fatalf("assignment at 512 streams took %v; far off the paper's sub-ms claim", times[512])
	}
}

func TestTraceCachingClones(t *testing.T) {
	opt := Quick()
	opt.AccessesPerCore = 500
	a, err := trace("pr", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace("pr", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("trace() returned the same clone twice")
	}
	if a.TotalAccesses() != b.TotalAccesses() {
		t.Fatal("clones differ")
	}
	// Mutating one clone's stream state must not leak into the next.
	a.Table.All()[0].ReadOnly = false
	c, err := trace("pr", 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Table.All()[0].ReadOnly {
		t.Fatal("clone leaked mutated stream state")
	}
}

func TestFormatters(t *testing.T) {
	if f2(1.234) != "1.23" || f1(1.26) != "1.3" || pct(0.5) != "50.0%" {
		t.Fatal("formatters wrong")
	}
}

func TestCompareTables(t *testing.T) {
	before := Table{
		Title:   "demo",
		Columns: []string{"workload", "speedup", "hit"},
		Rows: [][]string{
			{"pr", "1.00", "50.0%"},
			{"mv", "2.00", "80.0%"},
		},
	}
	after := Table{
		Title:   "demo",
		Columns: []string{"workload", "speedup", "hit"},
		Rows: [][]string{
			{"pr", "1.50", "60.0%"},
			{"mv", "2.00", "80.0%"},
			{"new", "9.99", "1.0%"},
		},
	}
	cmp, err := CompareTables(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Deltas) != 4 {
		t.Fatalf("deltas = %d, want 4 (2 rows x 2 numeric cols)", len(cmp.Deltas))
	}
	var prSpeedup *Delta
	for i := range cmp.Deltas {
		d := &cmp.Deltas[i]
		if d.Row == "pr" && d.Column == "speedup" {
			prSpeedup = d
		}
	}
	if prSpeedup == nil || prSpeedup.Before != 1.0 || prSpeedup.After != 1.5 {
		t.Fatalf("pr speedup delta wrong: %+v", prSpeedup)
	}
	if r := prSpeedup.Rel(); r < 0.49 || r > 0.51 {
		t.Fatalf("relative change = %v, want 0.5", r)
	}
	if cmp.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestCompareTablesRejectsMismatch(t *testing.T) {
	if _, err := CompareTables(Table{Title: "a"}, Table{Title: "b"}); err == nil {
		t.Fatal("different titles compared")
	}
}

func TestReadTablesStream(t *testing.T) {
	a := Table{Title: "one", Columns: []string{"x"}, Rows: [][]string{{"1"}}}
	b := Table{Title: "two", Columns: []string{"y"}, Rows: [][]string{{"2"}}}
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	tables, err := ReadTables(strings.NewReader(string(ja) + "\n" + string(jb)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables[0].Title != "one" || tables[1].Title != "two" {
		t.Fatalf("tables = %+v", tables)
	}
	if _, err := ReadTables(strings.NewReader("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestDeltaRelEdgeCases(t *testing.T) {
	if (Delta{Before: 0, After: 0}).Rel() != 0 {
		t.Fatal("0->0 should be 0")
	}
	if (Delta{Before: 0, After: 1}).Rel() < 1e8 {
		t.Fatal("0->x should be huge")
	}
}

// The worker pool must return results in cell order and change nothing
// about the simulations themselves: each (config, workload) result must
// match a serial run of the same cell bit for bit.
func TestRunCellsMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine simulations")
	}
	opt := Options{Workloads: []string{"pr"}, AccessesPerCore: 1000, Seed: 7}
	cells := []cell{
		{system.DefaultConfig(system.NDPExt), "pr"},
		{system.DefaultConfig(system.Nexus), "pr"},
		{system.DefaultConfig(system.NDPExt), "pr"}, // duplicate: exercises the shared trace cache
	}
	par, err := runCells(cells, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(cells) {
		t.Fatalf("got %d results for %d cells", len(par), len(cells))
	}
	for i, c := range cells {
		want, err := run(c.cfg, c.name, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := par[i]
		if got.Design != c.cfg.Design {
			t.Fatalf("cell %d: result for %v in %v's slot", i, got.Design, c.cfg.Design)
		}
		if got.Time != want.Time || got.Breakdown != want.Breakdown ||
			got.CacheHits != want.CacheHits || got.Energy != want.Energy {
			t.Fatalf("cell %d (%v): pooled run diverged from serial run", i, c.cfg.Design)
		}
	}
	if par[0].Time != par[2].Time {
		t.Fatal("identical cells produced different results")
	}
}

func TestRunCellsPropagatesErrors(t *testing.T) {
	opt := Options{Workloads: []string{"pr"}, AccessesPerCore: 100, Seed: 1}
	bad := system.DefaultConfig(system.NDPExt)
	bad.UnitRows = 0
	if _, err := runCells([]cell{{bad, "pr"}}, opt); err == nil {
		t.Fatal("invalid config did not surface an error")
	}
	if _, err := runCells([]cell{{system.DefaultConfig(system.NDPExt), "no-such-workload"}}, opt); err == nil {
		t.Fatal("unknown workload did not surface an error")
	}
}

// One poisoned cell must not take down the batch: its panic is
// recovered into a typed RowError carrying the cell's (design,
// workload), and every other cell still returns its result in place.
func TestRunCellsRecoversPoisonedRow(t *testing.T) {
	testRunHook = func(cfg system.Config, name string) {
		if cfg.Design == system.Nexus {
			panic("poisoned cell")
		}
	}
	defer func() { testRunHook = nil }()

	opt := Options{Workloads: []string{"pr"}, AccessesPerCore: 500, Seed: 7}
	cfg := system.DefaultConfig(system.NDPExt)
	cfg.UnitRows = 64 // shrink for test speed
	ncfg := system.DefaultConfig(system.Nexus)
	ncfg.UnitRows = 64
	cells := []cell{{cfg, "pr"}, {ncfg, "pr"}, {cfg, "pr"}}
	results, err := runCells(cells, opt)
	if err == nil {
		t.Fatal("poisoned row surfaced no error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(be.Rows) != 1 {
		t.Fatalf("got %d failed rows, want 1: %v", len(be.Rows), be)
	}
	re := be.Rows[0]
	if re.Index != 1 || !re.Panicked || re.Design != "Nexus" || re.Workload != "pr" {
		t.Fatalf("bad row error: %+v", re)
	}
	if !strings.Contains(re.Error(), "poisoned cell") || !strings.Contains(re.Error(), "panic") {
		t.Fatalf("row error hides the panic value: %q", re.Error())
	}
	if be.ByIndex(1) != re || be.ByIndex(0) != nil {
		t.Fatal("ByIndex lookup wrong")
	}

	// Survivors keep their slots; the poisoned slot is nil.
	if results[1] != nil {
		t.Fatal("poisoned slot holds a result")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("surviving cells lost their results")
	}
	if results[0].Time != results[2].Time {
		t.Fatal("identical surviving cells diverged")
	}
	// And the survivors match an unpoisoned serial run exactly.
	want, err2 := run(cfg, "pr", opt)
	if err2 != nil {
		t.Fatal(err2)
	}
	if results[0].Time != want.Time || results[0].Energy != want.Energy {
		t.Fatal("survivor result diverged from serial run")
	}
}

func TestRunCellsCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Workloads: []string{"pr"}, AccessesPerCore: 500, Seed: 1, Ctx: ctx}
	cells := []cell{
		{system.DefaultConfig(system.NDPExt), "pr"},
		{system.DefaultConfig(system.Nexus), "pr"},
	}
	results, err := runCells(cells, opt)
	var be *BatchError
	if !errors.As(err, &be) || len(be.Rows) != len(cells) {
		t.Fatalf("canceled batch: err = %v, want a BatchError covering all %d cells", err, len(cells))
	}
	for i, r := range be.Rows {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("row %d: err = %v, want context.Canceled", i, r.Err)
		}
		_ = results[i] // slots exist; canceled cells may hold nil
	}
}

func TestRunDedupsIdenticalCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine simulations")
	}
	opt := Options{Workloads: []string{"pr"}, AccessesPerCore: 600, Seed: 99}
	cfg := system.DefaultConfig(system.NDPExt)
	before := resultCache.Stats()
	a, err := run(cfg, "pr", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run(cfg, "pr", opt)
	if err != nil {
		t.Fatal(err)
	}
	after := resultCache.Stats()
	if hits := after.Hits - before.Hits; hits < 1 {
		t.Errorf("second identical run missed the result cache (hits delta %d)", hits)
	}
	if a != b {
		t.Error("deduped runs returned distinct result objects")
	}
	// A different seed must not alias the cached cell.
	opt.Seed = 100
	c, err := run(cfg, "pr", opt)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seed returned the cached result")
	}
}
