package bench

import (
	"fmt"
	"sync"

	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// adaptRegimes are the AdaptSweep rows: the full bandit against each of
// its arms pinned as a single-arm (fixed) configuration policy.
var adaptRegimes = []struct {
	label string
	arms  string // Config.Adapt.Arms; "" = full default arm set
}{
	{"NDPExt-MAB", ""},
	{"fixed/paper", "paper"},
	{"fixed/static", "static"},
	{"fixed/greedy", "greedy"},
	{"fixed/replicate", "replicate"},
}

// adaptMachine is the 8-unit machine the adaptive experiment runs on: a
// small extended-memory system where the phased trace's two halves have
// genuinely opposing optimal arms (on the 128-unit default machine the
// tiny-scale trace fits too comfortably to stress the allocator).
func adaptMachine() system.Config {
	cfg := system.DefaultConfig(system.NDPExtMAB)
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64 // 128 kB per unit
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
	cfg.EpochCycles = 50_000
	cfg.HostCores = 4
	return cfg
}

// adaptTrace generates the phased workload at the experiment's pinned
// scale. The recipe (workload seed 42, 20 000 accesses per core at tiny
// scale, ~40+ reconfiguration epochs) is pinned rather than derived from
// opt: the bandit needs enough epochs per phase to converge, and the
// result table documents one reproducible experiment, not a sweep.
func adaptTrace() (*workloads.Trace, error) {
	gen, err := workloads.Get("phased")
	if err != nil {
		return nil, err
	}
	sc := workloads.TinyScale()
	sc.AccessesPerCore = 20_000
	return gen(8, 42, sc)
}

// AdaptSweep reproduces the phase-changing adaptive-configuration
// experiment: the phased workload (a dense matrix-vector half followed
// by a sparse PageRank half) runs end-to-end on the NDPExt-MAB design,
// once with the full bandit and once per arm pinned as a fixed policy.
// Because no single arm is optimal across both phases, the bandit's
// modeled AMAT beats every fixed arm. The returned metrics map carries
// mab_amat_ns, best_fixed_amat_ns, and their ratio for the harness.
func AdaptSweep(opt Options) (Table, map[string]float64, error) {
	base, err := adaptTrace()
	if err != nil {
		return Table{}, nil, err
	}
	results := make([]*system.Result, len(adaptRegimes))
	errs := make([]error, len(adaptRegimes))
	var wg sync.WaitGroup
	for i, reg := range adaptRegimes {
		wg.Add(1)
		go func(i int, arms string) {
			defer wg.Done()
			cfg := adaptMachine()
			cfg.Adapt.Arms = arms
			cfg.BanditSeed = 1
			results[i], errs[i] = system.RunContext(opt.context(), cfg, base.Clone())
		}(i, reg.arms)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Table{}, nil, fmt.Errorf("adapt %s: %w", adaptRegimes[i].label, err)
		}
	}

	mabAMAT := results[0].Metrics().Float("adapt.modeled_amat_ns")
	bestFixed := 0.0
	for _, res := range results[1:] {
		if a := res.Metrics().Float("adapt.modeled_amat_ns"); bestFixed == 0 || a < bestFixed {
			bestFixed = a
		}
	}

	tbl := Table{
		Title:   "NDPExt-MAB adaptive configuration (phased workload, 8-unit machine)",
		Columns: []string{"policy", "modeled AMAT (ns)", "vs MAB", "switches", "reconfigs", "sim time (us)"},
	}
	for i, res := range results {
		m := res.Metrics()
		amat := m.Float("adapt.modeled_amat_ns")
		tbl.Rows = append(tbl.Rows, []string{
			adaptRegimes[i].label,
			f2(amat),
			f2(amat / mabAMAT),
			fmt.Sprintf("%d", res.AdaptSwitches),
			fmt.Sprintf("%d", res.Reconfigs),
			f1(res.Time.NS() / 1e3),
		})
	}
	return tbl, map[string]float64{
		"mab_amat_ns":        mabAMAT,
		"best_fixed_amat_ns": bestFixed,
		"mab_vs_best_fixed":  mabAMAT / bestFixed,
	}, nil
}
