// Package bench implements the paper's experiment matrix: one entry
// point per evaluation figure/table, shared between the cmd/experiments
// CLI and the repository's bench_test.go harness. Each function returns
// printable, structured rows so EXPERIMENTS.md can record
// paper-vs-measured values.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// Options controls experiment scale.
type Options struct {
	Workloads       []string // subset of workloads.Names()
	AccessesPerCore int
	Seed            uint64
	// Ctx, when set, cancels in-flight simulations cooperatively:
	// cmd/experiments wires SIGINT/SIGTERM here so a mid-matrix ^C
	// aborts cleanly instead of waiting out the current figure.
	Ctx context.Context
}

// context returns Ctx or Background.
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Default runs the full paper matrix (all 13 workloads; the synthetic
// phased trace belongs to the adaptive experiment, not the paper's
// figures).
func Default() Options {
	var names []string
	for _, n := range workloads.Names() {
		if n != "phased" {
			names = append(names, n)
		}
	}
	return Options{Workloads: names, AccessesPerCore: 30000, Seed: 1}
}

// Quick runs a representative subset for fast iteration and unit tests.
func Quick() Options {
	return Options{
		Workloads:       []string{"recsys", "pr", "hotspot", "mv"},
		AccessesPerCore: 8000,
		Seed:            1,
	}
}

// traceKey caches generated traces (generation dominates quick runs).
type traceKey struct {
	name     string
	cores    int
	seed     uint64
	accesses int
}

// traceEntry is one cache slot; its once gate makes concurrent workers
// requesting the same trace generate it exactly once.
type traceEntry struct {
	once sync.Once
	tr   *workloads.Trace
	err  error
}

var (
	traceMu    sync.Mutex
	traceCache = map[traceKey]*traceEntry{}
)

// trace returns a cached trace for (name, cores); the caller receives a
// Clone so simulations can mutate stream state safely. Safe for
// concurrent use.
func trace(name string, cores int, opt Options) (*workloads.Trace, error) {
	key := traceKey{name, cores, opt.Seed, opt.AccessesPerCore}
	traceMu.Lock()
	e := traceCache[key]
	if e == nil {
		e = &traceEntry{}
		traceCache[key] = e
	}
	traceMu.Unlock()
	e.once.Do(func() {
		gen, err := workloads.Get(name)
		if err != nil {
			e.err = err
			return
		}
		sc := workloads.DefaultScale()
		sc.AccessesPerCore = opt.AccessesPerCore
		e.tr, e.err = gen(cores, opt.Seed, sc)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.tr.Clone(), nil
}

// testRunHook, when non-nil, runs before each cell's simulation. Tests
// use it to poison specific rows and exercise the pool's panic recovery.
var testRunHook func(cfg system.Config, name string)

// resultCache dedups identical (config, workload) cells across figures:
// the matrix reuses e.g. the NDPExt/hbm baseline in Figs. 5, 6, 8, and 9,
// so -all avoids re-simulating it once per figure. Results are treated
// as immutable by every consumer; errors and canceled runs never enter
// the cache (simcache.Do only stores successes).
var resultCache = simcache.New[*system.Result](512, 0)

// run simulates one (workload, config) pair, deduplicating identical
// cells through resultCache.
func run(cfg system.Config, name string, opt Options) (*system.Result, error) {
	cores := cfg.NumUnits()
	if cfg.Design == system.Host {
		// Host folds any trace; generate at the NDP core count of the
		// default machine so all designs replay identical traces.
		cores = system.DefaultConfig(system.NDPExt).NumUnits()
	}
	sim := func() (*system.Result, error) {
		tr, err := trace(name, cores, opt)
		if err != nil {
			return nil, err
		}
		return system.RunContext(opt.context(), cfg, tr)
	}
	if testRunHook != nil || cfg.OnEpoch != nil || cfg.Probe != nil {
		// Hooks are excluded from the canonical config bytes (they don't
		// change results) but must still fire on every run, so hooked
		// configs — and test-poisoned cells — bypass the cache.
		if testRunHook != nil {
			testRunHook(cfg, name)
		}
		return sim()
	}
	key := simcache.Sum(cfg.CanonicalBytes(),
		[]byte(fmt.Sprintf("bench/v1|w=%s|cores=%d|seed=%d|acc=%d",
			name, cores, opt.Seed, opt.AccessesPerCore)))
	res, _, err := resultCache.Do(key, sim)
	return res, err
}

// cell identifies one (machine config, workload) simulation in a batch.
type cell struct {
	cfg  system.Config
	name string
}

// Cell is the exported form of a batch cell, for callers that assemble
// their own experiment matrices (cross-path determinism tests, external
// harnesses) and want them executed on the shared bounded pool.
type Cell struct {
	Config   system.Config
	Workload string
}

// RunCells simulates the given cells concurrently on the bounded worker
// pool and returns the results in input order; identical cells are
// deduplicated through the result cache exactly like the figure matrix.
// Failures come back aggregated in a *BatchError with surviving rows
// intact (see runCells).
func RunCells(cells []Cell, opt Options) ([]*system.Result, error) {
	in := make([]cell, len(cells))
	for i, c := range cells {
		in[i] = cell{cfg: c.Config, name: c.Workload}
	}
	return runCells(in, opt)
}

// RowError describes one failed cell of an experiment matrix: which row
// it was, the (design, workload) configuration, and what went wrong. A
// recovered worker panic is reported with Panicked set.
type RowError struct {
	Index    int
	Design   string
	Workload string
	Panicked bool
	Err      error
}

func (e *RowError) Error() string {
	kind := "error"
	if e.Panicked {
		kind = "panic"
	}
	return fmt.Sprintf("row %d (%s, %s): %s: %v", e.Index, e.Design, e.Workload, kind, e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// BatchError aggregates every failed row of one runCells batch. The
// surviving rows' results are still returned alongside it, in order.
type BatchError struct {
	Rows []*RowError
}

func (e *BatchError) Error() string {
	msgs := make([]string, len(e.Rows))
	for i, r := range e.Rows {
		msgs[i] = r.Error()
	}
	return fmt.Sprintf("%d failed cells: %s", len(e.Rows), strings.Join(msgs, "; "))
}

// ByIndex returns the failure for cell i, or nil if that cell survived.
func (e *BatchError) ByIndex(i int) *RowError {
	for _, r := range e.Rows {
		if r.Index == i {
			return r
		}
	}
	return nil
}

// runCells simulates every cell of an experiment matrix concurrently on
// a bounded worker pool (GOMAXPROCS workers) and returns the results in
// input order, so table rows stay deterministic regardless of
// scheduling. Each simulation is independent (per-run state, cloned
// traces; the trace cache is once-guarded), so concurrency cannot change
// any result. A failing or panicking row does not kill the batch: every
// other cell still completes and keeps its slot, and the failures come
// back aggregated in a *BatchError (failed slots hold nil).
func runCells(cells []cell, opt Options) ([]*system.Result, error) {
	results := make([]*system.Result, len(cells))
	errs := make([]error, len(cells))
	panicked := make([]bool, len(cells))
	sem := make(chan struct{}, max(runtime.GOMAXPROCS(0), 1))
	ctx := opt.context()
	var wg sync.WaitGroup
	for i := range cells {
		// A canceled batch stops launching new cells; already-running
		// ones abort cooperatively inside system.RunContext and report
		// the cancellation through their own error slots.
		if err := ctx.Err(); err != nil {
			errs[i] = context.Cause(ctx)
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if v := recover(); v != nil {
					errs[i] = fmt.Errorf("%v", v)
					panicked[i] = true
					results[i] = nil
				}
			}()
			results[i], errs[i] = run(cells[i].cfg, cells[i].name, opt)
		}(i)
	}
	wg.Wait()
	var be BatchError
	for i, err := range errs {
		if err != nil {
			be.Rows = append(be.Rows, &RowError{
				Index:    i,
				Design:   cells[i].cfg.Design.String(),
				Workload: cells[i].name,
				Panicked: panicked[i],
				Err:      err,
			})
		}
	}
	if len(be.Rows) > 0 {
		return results, &be
	}
	return results, nil
}

// Table is a generic printable result table.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// JSON renders the table as indented JSON for machine consumption.
func (t Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := "== " + t.Title + " ==\n"
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Columns)
	for _, r := range t.Rows {
		out += line(r)
	}
	return out
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sweepSubset narrows a sweep to representative workloads (the paper's
// Figs. 8-9 report averages; sweeping every (workload, point) pair would
// multiply runtime without changing the reported shape). Workloads not in
// opt are dropped; if the intersection is empty, opt is returned as is.
func sweepSubset(opt Options, names ...string) Options {
	have := map[string]bool{}
	for _, w := range opt.Workloads {
		have[w] = true
	}
	var keep []string
	for _, n := range names {
		if have[n] {
			keep = append(keep, n)
		}
	}
	if len(keep) == 0 {
		return opt
	}
	out := opt
	out.Workloads = keep
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
