package bench

import (
	"fmt"
	"runtime"
	"sync"

	"ndpext/internal/sim"
	"ndpext/internal/system"
	tracefmt "ndpext/internal/trace"
)

// TraceSweep replays one recorded trace file across the paper's design
// matrix: the host baseline plus every NDP design, all consuming the
// identical access stream. This is the trace subsystem's answer to
// "what would MY application see on these machines" — import a trace
// with ndptrace convert (or record one with ndpsim -record) and sweep
// it instead of a synthetic generator.
//
// The file is decoded once; every design replays a clone of the
// materialized trace, so a sweep costs one decode regardless of width.
func TraceSweep(path string, opt Options) (Table, error) {
	r, err := tracefmt.OpenFile(path)
	if err != nil {
		return Table{}, err
	}
	mat, err := r.Materialize()
	r.Close()
	if err != nil {
		return Table{}, err
	}

	designs := []system.Design{system.Host, system.Jigsaw, system.Whirlpool,
		system.Nexus, system.NDPExtStatic, system.NDPExt}
	tbl := Table{
		Title:   fmt.Sprintf("Trace sweep: %s (%d cores, %d accesses)", mat.Name, len(mat.PerCore), mat.TotalAccesses()),
		Columns: []string{"design", "time", "speedup-vs-host", "l1-hit", "reconfigs"},
	}

	// NDP designs demand the trace's core count to match the machine; a
	// width mismatch is a usage error worth naming, not a silent skip.
	if n := system.DefaultConfig(system.NDPExt).NumUnits(); len(mat.PerCore) != n {
		return tbl, fmt.Errorf("trace %s has %d cores; the NDP machines simulate %d (re-record or convert with -cores %d)",
			path, len(mat.PerCore), n, n)
	}

	results := make([]*system.Result, len(designs))
	errs := make([]error, len(designs))
	sem := make(chan struct{}, max(runtime.GOMAXPROCS(0), 1))
	ctx := opt.context()
	var wg sync.WaitGroup
	for i, d := range designs {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d system.Design) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = system.RunContext(ctx, system.DefaultConfig(d), mat.Clone())
		}(i, d)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return tbl, fmt.Errorf("%s: %w", designs[i], err)
		}
	}

	var hostT sim.Time
	for i, d := range designs {
		if d == system.Host {
			hostT = results[i].Time
		}
	}
	for i, d := range designs {
		res := results[i]
		hitRate := 0.0
		if res.Accesses > 0 {
			hitRate = float64(res.L1Hits) / float64(res.Accesses)
		}
		tbl.Rows = append(tbl.Rows, []string{
			d.String(),
			res.Time.String(),
			f2(float64(hostT) / float64(res.Time)),
			pct(hitRate),
			fmt.Sprintf("%d", res.Reconfigs),
		})
	}
	return tbl, nil
}
