package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Comparison is the result of diffing two runs of the same experiment
// table (e.g. before/after a change to the policy): per-cell relative
// deltas for every numeric cell, keyed by (row label, column).
type Comparison struct {
	Title  string
	Deltas []Delta
}

// Delta is one numeric cell's change.
type Delta struct {
	Row, Column string
	Before      float64
	After       float64
}

// Rel returns the relative change (after/before - 1); +Inf when before
// is zero and after is not.
func (d Delta) Rel() float64 {
	if d.Before == 0 {
		if d.After == 0 {
			return 0
		}
		return 1e9
	}
	return d.After/d.Before - 1
}

// CompareTables diffs two tables produced by the same experiment. Rows
// are matched by their first cell, columns by header name; non-numeric
// cells are skipped.
func CompareTables(before, after Table) (Comparison, error) {
	cmp := Comparison{Title: after.Title}
	if before.Title != after.Title {
		return cmp, fmt.Errorf("bench: comparing different experiments: %q vs %q",
			before.Title, after.Title)
	}
	rowsB := indexRows(before)
	colIdxB := indexCols(before.Columns)
	for _, rowA := range after.Rows {
		if len(rowA) == 0 {
			continue
		}
		rowB, ok := rowsB[rowA[0]]
		if !ok {
			continue
		}
		for ci := 1; ci < len(rowA) && ci < len(after.Columns); ci++ {
			bi, ok := colIdxB[after.Columns[ci]]
			if !ok || bi >= len(rowB) {
				continue
			}
			va, okA := parseNumeric(rowA[ci])
			vb, okB := parseNumeric(rowB[bi])
			if !okA || !okB {
				continue
			}
			cmp.Deltas = append(cmp.Deltas, Delta{
				Row: rowA[0], Column: after.Columns[ci], Before: vb, After: va,
			})
		}
	}
	return cmp, nil
}

// indexRows maps first-cell labels to rows.
func indexRows(t Table) map[string][]string {
	out := make(map[string][]string, len(t.Rows))
	for _, r := range t.Rows {
		if len(r) > 0 {
			out[r[0]] = r
		}
	}
	return out
}

// indexCols maps column names to indices.
func indexCols(cols []string) map[string]int {
	out := make(map[string]int, len(cols))
	for i, c := range cols {
		out[c] = i
	}
	return out
}

// parseNumeric extracts a float from a cell, tolerating % suffixes.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(strings.TrimSuffix(s, "%"))
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

// String renders the comparison, most-changed cells first (stable within
// equal magnitudes).
func (c Comparison) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s (after vs before) ==\n", c.Title)
	for _, d := range c.Deltas {
		fmt.Fprintf(&b, "%-24s %-16s %10.3f -> %-10.3f %+7.1f%%\n",
			d.Row, d.Column, d.Before, d.After, 100*d.Rel())
	}
	return b.String()
}

// ReadTables decodes a stream of JSON tables (the output of
// `experiments -json`).
func ReadTables(r io.Reader) ([]Table, error) {
	dec := json.NewDecoder(r)
	var out []Table
	for {
		var t Table
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("bench: decode tables: %w", err)
		}
		out = append(out, t)
	}
}
