package bench

import (
	"errors"
	"fmt"
	"time"

	"ndpext/internal/cxl"
	"ndpext/internal/fault"
	"ndpext/internal/maxflow"
	"ndpext/internal/sim"
	"ndpext/internal/stats"
	"ndpext/internal/system"
)

// Fig5 reproduces Fig. 5: overall performance of every NDP design across
// the workloads, normalized to the non-NDP host. hmc selects the
// Fig. 5(b) HMC-style machine. The returned summary maps design ->
// geomean speedup over the host, plus NDPExt's geomean speedup over
// Nexus (the paper's headline 1.41x/1.48x).
func Fig5(hmc bool, opt Options) (Table, map[string]float64, float64, error) {
	mk := func(d system.Design) system.Config {
		if hmc {
			return system.HMCConfig(d)
		}
		return system.DefaultConfig(d)
	}
	designs := []system.Design{system.Jigsaw, system.Whirlpool, system.Nexus, system.NDPExtStatic, system.NDPExt}
	title := "Fig 5(a): overall performance, HBM-style NDP (speedup over host)"
	if hmc {
		title = "Fig 5(b): overall performance, HMC-style NDP (speedup over host)"
	}
	tbl := Table{Title: title, Columns: []string{"workload"}}
	for _, d := range designs {
		tbl.Columns = append(tbl.Columns, d.String())
	}

	// One matrix row per workload: the host run plus every NDP design.
	var cells []cell
	for _, w := range opt.Workloads {
		cells = append(cells, cell{mk(system.Host), w})
		for _, d := range designs {
			cells = append(cells, cell{mk(d), w})
		}
	}
	results, err := runCells(cells, opt)
	// A failed or panicked row becomes a FAILED cell in the table (and
	// drops out of the geomeans) instead of killing the whole figure.
	var be *BatchError
	if err != nil && !errors.As(err, &be) {
		return tbl, nil, 0, err
	}
	failText := func(ci int) string {
		re := be.ByIndex(ci)
		kind := "error"
		if re.Panicked {
			kind = "panic"
		}
		return fmt.Sprintf("FAILED(%s: %v)", kind, re.Err)
	}

	perDesign := map[string][]float64{}
	var ndpextVsNexus []float64
	stride := 1 + len(designs)
	for wi, w := range opt.Workloads {
		host := results[wi*stride]
		if host == nil {
			tbl.Rows = append(tbl.Rows, []string{w, "host " + failText(wi*stride)})
			continue
		}
		row := []string{w}
		var nexusT, ndpextT sim.Time
		for di, d := range designs {
			res := results[wi*stride+1+di]
			if res == nil {
				row = append(row, failText(wi*stride+1+di))
				continue
			}
			sp := float64(host.Time) / float64(res.Time)
			perDesign[d.String()] = append(perDesign[d.String()], sp)
			row = append(row, f2(sp))
			switch d {
			case system.Nexus:
				nexusT = res.Time
			case system.NDPExt:
				ndpextT = res.Time
			}
		}
		if nexusT > 0 && ndpextT > 0 {
			ndpextVsNexus = append(ndpextVsNexus, float64(nexusT)/float64(ndpextT))
		}
		tbl.Rows = append(tbl.Rows, row)
	}

	geo := map[string]float64{}
	row := []string{"geomean"}
	for _, d := range designs {
		geo[d.String()] = stats.Geomean(perDesign[d.String()])
		row = append(row, f2(geo[d.String()]))
	}
	tbl.Rows = append(tbl.Rows, row)
	vsNexus := stats.Geomean(ndpextVsNexus)
	tbl.Rows = append(tbl.Rows, []string{"NDPExt/Nexus", f2(vsNexus)})
	return tbl, geo, vsNexus, nil
}

// Fig2 reproduces Fig. 2(a): the access latency breakdown of a PageRank
// run under static cacheline interleaving on the NDP system vs the
// host-style NUCA system, highlighting the NDP system's interconnect
// share and higher hit rate.
func Fig2(opt Options) (Table, error) {
	tbl := Table{
		Title:   "Fig 2(a): latency breakdown, static interleaving (pr)",
		Columns: []string{"system", "core", "meta", "intra-noc", "inter-noc", "dram", "extended", "hit-rate"},
	}
	results, err := runCells([]cell{
		{system.DefaultConfig(system.StaticInterleave), "pr"},
		{system.DefaultConfig(system.Host), "pr"},
	}, opt)
	if err != nil {
		return tbl, err
	}
	rowOf := func(name string, r *system.Result) []string {
		f := r.Breakdown.Fractions()
		return []string{
			name, pct(f["core"]), pct(f["meta"]), pct(f["intra-noc"]),
			pct(f["inter-noc"]), pct(f["dram"]), pct(f["extended"]),
			pct(r.CacheHitRate()),
		}
	}
	tbl.Rows = append(tbl.Rows, rowOf("NDP", results[0]), rowOf("NUCA-host", results[1]))
	return tbl, nil
}

// Fig4b reproduces Fig. 4(b): host-side execution time of the max-flow
// sampler assignment as the stream count grows (paper: <0.5 ms at 512
// streams). Returns the measured time per stream count.
func Fig4b() (Table, map[int]time.Duration) {
	tbl := Table{
		Title:   "Fig 4(b): sampler assignment time vs stream count",
		Columns: []string{"streams", "time"},
	}
	const units, samplersPerUnit = 128, 4
	rng := sim.NewRNG(42)
	out := map[int]time.Duration{}
	for _, streams := range []int{64, 128, 256, 512} {
		accessedBy := make([][]int, streams)
		for s := range accessedBy {
			k := 1 + rng.Intn(8)
			seen := map[int]bool{}
			for i := 0; i < k; i++ {
				seen[rng.Intn(units)] = true
			}
			for u := range seen {
				accessedBy[s] = append(accessedBy[s], u)
			}
		}
		start := time.Now()
		const reps = 10
		for i := 0; i < reps; i++ {
			maxflow.AssignSamplers(units, accessedBy, samplersPerUnit)
		}
		d := time.Since(start) / reps
		out[streams] = d
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(streams), d.String()})
	}
	return tbl, out
}

// Fig6 reproduces Fig. 6: energy breakdown of NDPExt vs Nexus per
// workload (paper: NDPExt saves 40.3% on average). Returns the geomean
// total-energy ratio Nexus/NDPExt.
func Fig6(opt Options) (Table, float64, error) {
	tbl := Table{
		Title:   "Fig 6: energy, NDPExt vs Nexus (uJ; ratio = Nexus/NDPExt)",
		Columns: []string{"workload", "design", "static", "ndp-dram", "ext-dram", "noc", "cxl", "sram", "total", "ratio"},
	}
	var cells []cell
	for _, w := range opt.Workloads {
		cells = append(cells, cell{system.DefaultConfig(system.Nexus), w})
		cells = append(cells, cell{system.DefaultConfig(system.NDPExt), w})
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, 0, err
	}
	var ratios []float64
	for wi, w := range opt.Workloads {
		nx, nd := results[2*wi], results[2*wi+1]
		ratio := nx.Energy.Total() / nd.Energy.Total()
		ratios = append(ratios, ratio)
		const uJ = 1e6
		rowOf := func(design string, e, ratio string, r *system.Result) []string {
			return []string{w, design,
				f1(r.Energy.StaticPJ / uJ), f1(r.Energy.NDPDramPJ / uJ),
				f1(r.Energy.ExtDramPJ / uJ), f1(r.Energy.NoCPJ / uJ),
				f1(r.Energy.CXLLinkPJ / uJ), f1(r.Energy.SRAMPJ / uJ),
				f1(r.Energy.Total() / uJ), ratio}
		}
		tbl.Rows = append(tbl.Rows, rowOf("Nexus", "", "", nx))
		tbl.Rows = append(tbl.Rows, rowOf("NDPExt", "", f2(ratio), nd))
	}
	geo := stats.Geomean(ratios)
	tbl.Rows = append(tbl.Rows, []string{"geomean", "", "", "", "", "", "", "", "", f2(geo)})
	return tbl, geo, nil
}

// Fig7 reproduces Fig. 7: average interconnect latency and miss rate for
// Nexus vs NDPExt across representative workloads.
func Fig7(opt Options) (Table, error) {
	tbl := Table{
		Title:   "Fig 7: interconnect latency (ns/access) and miss rate",
		Columns: []string{"workload", "nexus-ns", "ndpext-ns", "nexus-miss", "ndpext-miss"},
	}
	var cells []cell
	for _, w := range opt.Workloads {
		cells = append(cells, cell{system.DefaultConfig(system.Nexus), w})
		cells = append(cells, cell{system.DefaultConfig(system.NDPExt), w})
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, err
	}
	for wi, w := range opt.Workloads {
		nx, nd := results[2*wi], results[2*wi+1]
		tbl.Rows = append(tbl.Rows, []string{w,
			f1(nx.AvgInterconnectNS()), f1(nd.AvgInterconnectNS()),
			pct(nx.MissRate()), pct(nd.MissRate())})
	}
	return tbl, nil
}

// fig8aVariant describes one Fig. 8(a) machine shape.
type fig8aVariant struct {
	label            string
	stacksX, stacksY int
	unitsX, unitsY   int
}

// Fig8a reproduces Fig. 8(a): NDPExt speedup over Nexus across NDP core
// counts and stack arrangements.
func Fig8a(opt Options) (Table, map[string]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr", "mv", "hotspot")
	variants := []fig8aVariant{
		{"2x64 (128 cores)", 2, 1, 8, 8},
		{"8x16 (128 cores)", 4, 2, 4, 4},
		{"16x8 (128 cores)", 4, 4, 4, 2},
		{"2x16 (32 cores)", 2, 1, 4, 4},
		{"4x16 (64 cores)", 2, 2, 4, 4},
		{"16x16 (256 cores)", 4, 4, 4, 4},
	}
	tbl := Table{
		Title:   "Fig 8(a): NDPExt speedup over Nexus vs core count (stacks x cores/stack)",
		Columns: []string{"machine", "speedup"},
	}
	mk := func(v fig8aVariant, d system.Design) system.Config {
		cfg := system.DefaultConfig(d)
		cfg.NoC.StacksX, cfg.NoC.StacksY = v.stacksX, v.stacksY
		cfg.NoC.UnitsX, cfg.NoC.UnitsY = v.unitsX, v.unitsY
		return cfg
	}
	var cells []cell
	for _, v := range variants {
		for _, w := range opt.Workloads {
			cells = append(cells, cell{mk(v, system.Nexus), w})
			cells = append(cells, cell{mk(v, system.NDPExt), w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	out := map[string]float64{}
	i := 0
	for _, v := range variants {
		var sps []float64
		for range opt.Workloads {
			nx, nd := results[i], results[i+1]
			i += 2
			sps = append(sps, float64(nx.Time)/float64(nd.Time))
		}
		g := stats.Geomean(sps)
		out[v.label] = g
		tbl.Rows = append(tbl.Rows, []string{v.label, f2(g)})
	}
	return tbl, out, nil
}

// Fig8b reproduces Fig. 8(b): NDPExt speedup over Nexus across CXL link
// latencies (paper: 1.33x at 50 ns to 1.50x at 400 ns).
func Fig8b(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr", "mv", "hotspot")
	tbl := Table{
		Title:   "Fig 8(b): NDPExt speedup over Nexus vs CXL link latency",
		Columns: []string{"latency-ns", "speedup"},
	}
	points := []int{50, 100, 200, 400}
	mk := func(ns int, d system.Design) system.Config {
		cfg := system.DefaultConfig(d)
		cfg.CXL.LinkLatency = sim.FromNS(float64(ns))
		return cfg
	}
	var cells []cell
	for _, ns := range points {
		for _, w := range opt.Workloads {
			cells = append(cells, cell{mk(ns, system.Nexus), w})
			cells = append(cells, cell{mk(ns, system.NDPExt), w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	out := map[int]float64{}
	i := 0
	for _, ns := range points {
		var sps []float64
		for range opt.Workloads {
			nx, nd := results[i], results[i+1]
			i += 2
			sps = append(sps, float64(nx.Time)/float64(nd.Time))
		}
		g := stats.Geomean(sps)
		out[ns] = g
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(ns), f2(g)})
	}
	return tbl, out, nil
}

// ndpextSweep runs NDPExt over a config mutation sweep and reports
// speedups normalized to the reference point.
func ndpextSweep(title, unit string, points []int, ref int,
	mutate func(cfg *system.Config, v int), opt Options) (Table, map[int]float64, error) {

	tbl := Table{Title: title, Columns: []string{unit, "speedup-vs-default"}}
	var cells []cell
	for _, v := range points {
		for _, w := range opt.Workloads {
			cfg := system.DefaultConfig(system.NDPExt)
			mutate(&cfg, v)
			cells = append(cells, cell{cfg, w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	times := map[int]float64{}
	i := 0
	for _, v := range points {
		var total float64
		for range opt.Workloads {
			total += float64(results[i].Time)
			i++
		}
		times[v] = total
	}
	out := map[int]float64{}
	for _, v := range points {
		out[v] = times[ref] / times[v]
		tbl.Rows = append(tbl.Rows, []string{fmt.Sprint(v), f2(out[v])})
	}
	return tbl, out, nil
}

// Fig9a: indirect stream cache associativity (paper: direct-mapped is
// acceptable; graphs gain 10-20% at 64 ways).
func Fig9a(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "pr", "cc", "recsys") // graphs gain the most (paper)
	return ndpextSweep("Fig 9(a): indirect cache associativity", "ways",
		[]int{1, 4, 16, 64}, 1,
		func(cfg *system.Config, v int) { cfg.Stream.IndirectWays = v }, opt)
}

// Fig9b: affine stream block size (paper default 1 kB).
func Fig9b(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "mv", "hotspot", "pathfinder")
	return ndpextSweep("Fig 9(b): affine block size (bytes)", "block",
		[]int{256, 512, 1024, 2048}, 1024,
		func(cfg *system.Config, v int) { cfg.Stream.BlockBytes = v }, opt)
}

// Fig9c: affine space restriction (scaled; paper 16 MB -> 16 kB here,
// with a near-unlimited point standing in for the ideal case).
func Fig9c(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "mv", "gnn") // the paper's affine-heavy pair
	return ndpextSweep("Fig 9(c): affine space restriction (bytes/unit, scaled)", "cap",
		[]int{4 << 10, 8 << 10, 16 << 10, 64 << 10, 1 << 20}, 16<<10,
		func(cfg *system.Config, v int) { cfg.Stream.AffineCapBytes = v }, opt)
}

// Fig9d: miss-curve sampler sets k (paper: insensitive).
func Fig9d(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr")
	return ndpextSweep("Fig 9(d): sampler sets k", "k",
		[]int{8, 16, 32, 64}, 32,
		func(cfg *system.Config, v int) { cfg.Sampler.SampleSets = v }, opt)
}

// Fig9e: reconfiguration method S(tatic)/P(artial)/F(ull).
func Fig9e(opt Options) (Table, map[string]float64, error) {
	tbl := Table{
		Title:   "Fig 9(e): reconfiguration method (speedup vs Full)",
		Columns: append([]string{"workload"}, "Static", "Partial", "Full"),
	}
	opt = sweepSubset(opt, "mv", "pr") // the paper highlights this pair
	modes := []struct {
		name string
		mode system.ReconfigMode
	}{
		{"Static", system.ReconfigStatic},
		{"Partial", system.ReconfigPartial},
		{"Full", system.ReconfigFull},
	}
	var cells []cell
	for _, w := range opt.Workloads {
		for _, m := range modes {
			cfg := system.DefaultConfig(system.NDPExt)
			cfg.Reconfig = m.mode
			cells = append(cells, cell{cfg, w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	out := map[string]float64{}
	sums := map[string]float64{}
	i := 0
	for _, w := range opt.Workloads {
		times := map[string]float64{}
		for _, m := range modes {
			times[m.name] = float64(results[i].Time)
			sums[m.name] += float64(results[i].Time)
			i++
		}
		tbl.Rows = append(tbl.Rows, []string{w,
			f2(times["Full"] / times["Static"]),
			f2(times["Full"] / times["Partial"]),
			"1.00"})
	}
	for _, m := range modes {
		out[m.name] = sums["Full"] / sums[m.name]
	}
	tbl.Rows = append(tbl.Rows, []string{"overall",
		f2(out["Static"]), f2(out["Partial"]), "1.00"})
	return tbl, out, nil
}

// Fig9f: reconfiguration interval (paper: 50 M cycles is enough; 100 M
// costs 26%).
func Fig9f(opt Options) (Table, map[int]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr", "mv")
	base := int(system.DefaultConfig(system.NDPExt).EpochCycles)
	return ndpextSweep("Fig 9(f): reconfiguration interval (cycles)", "epoch",
		[]int{base / 4, base / 2, base, base * 2, base * 4}, base,
		func(cfg *system.Config, v int) { cfg.EpochCycles = int64(v) }, opt)
}

// SecVD quantifies §V-D: consistent hashing vs bulk invalidation during
// reconfiguration (paper: 9.4% less invalidation traffic, 3.7% speedup).
func SecVD(opt Options) (Table, float64, float64, error) {
	opt = sweepSubset(opt, "recsys", "pr", "mv", "hotspot")
	tbl := Table{
		Title:   "SecV-D: consistent hashing vs bulk invalidation",
		Columns: []string{"workload", "speedup", "invalidation-reduction"},
	}
	var cells []cell
	for _, w := range opt.Workloads {
		cons := system.DefaultConfig(system.NDPExt)
		cons.ConsistentHash = true
		bulk := system.DefaultConfig(system.NDPExt)
		bulk.ConsistentHash = false
		cells = append(cells, cell{cons, w}, cell{bulk, w})
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, 0, 0, err
	}
	var sps, invs []float64
	for wi, w := range opt.Workloads {
		rc, rb := results[2*wi], results[2*wi+1]
		sp := float64(rb.Time) / float64(rc.Time)
		inv := 0.0
		if rb.ReconfigDropped > 0 {
			inv = 1 - float64(rc.ReconfigDropped)/float64(rb.ReconfigDropped)
		}
		sps = append(sps, sp)
		invs = append(invs, inv)
		tbl.Rows = append(tbl.Rows, []string{w, f2(sp), pct(inv)})
	}
	sp := stats.Geomean(sps)
	inv := stats.Mean(invs)
	tbl.Rows = append(tbl.Rows, []string{"overall", f2(sp), pct(inv)})
	return tbl, sp, inv, nil
}

// AblationExtAttach compares the extended-memory attach technologies the
// paper discusses in SecIII-A: CXL (the proposal), directly-attached
// DIMMs (lower latency, fewer channels/pins), and relaying through the
// host processor (highest latency). NDPExt runs on each.
func AblationExtAttach(opt Options) (Table, map[string]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr", "mv")
	tbl := Table{
		Title:   "Ablation (SecIII-A): extended-memory attach technology (speedup vs CXL)",
		Columns: []string{"attach", "speedup"},
	}
	attaches := []struct {
		name string
		cfg  cxl.Config
	}{
		{"cxl", cxl.DefaultConfig()},
		{"dimm", cxl.DIMMConfig()},
		{"host-relay", cxl.HostRelayConfig()},
	}
	var cells []cell
	for _, at := range attaches {
		for _, w := range opt.Workloads {
			cfg := system.DefaultConfig(system.NDPExt)
			cfg.CXL = at.cfg
			cells = append(cells, cell{cfg, w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	times := map[string]float64{}
	i := 0
	for _, at := range attaches {
		var total float64
		for range opt.Workloads {
			total += float64(results[i].Time)
			i++
		}
		times[at.name] = total
	}
	out := map[string]float64{}
	for _, at := range attaches {
		out[at.name] = times["cxl"] / times[at.name]
		tbl.Rows = append(tbl.Rows, []string{at.name, f2(out[at.name])})
	}
	return tbl, out, nil
}

// AblationWayPredict compares the indirect-cache organizations of
// SecIV-C: direct-mapped (the proposal), idealized N-way (Fig. 9a's
// experiment), and realistic way-predicted N-way (the CAMEO/Unison-style
// alternative, paying a second DRAM access per misprediction).
func AblationWayPredict(opt Options) (Table, map[string]float64, error) {
	opt = sweepSubset(opt, "recsys", "pr")
	tbl := Table{
		Title:   "Ablation (SecIV-C): indirect cache organization (speedup vs direct-mapped)",
		Columns: []string{"organization", "speedup"},
	}
	organizations := []struct {
		name    string
		ways    int
		predict bool
	}{
		{"direct-mapped", 1, false},
		{"4-way ideal", 4, false},
		{"4-way way-predicted", 4, true},
	}
	var cells []cell
	for _, org := range organizations {
		for _, w := range opt.Workloads {
			cfg := system.DefaultConfig(system.NDPExt)
			cfg.Stream.IndirectWays = org.ways
			cfg.Stream.WayPredict = org.predict
			cells = append(cells, cell{cfg, w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, nil, err
	}
	times := map[string]float64{}
	i := 0
	for _, org := range organizations {
		var total float64
		for range opt.Workloads {
			total += float64(results[i].Time)
			i++
		}
		times[org.name] = total
	}
	out := map[string]float64{}
	for _, org := range organizations {
		out[org.name] = times["direct-mapped"] / times[org.name]
		tbl.Rows = append(tbl.Rows, []string{org.name, f2(out[org.name])})
	}
	return tbl, out, nil
}

// MetaHitRates reports the baselines' metadata cache hit rates per
// workload (§VII-A: >95% for high-locality workloads, 47% for large
// graphs).
func MetaHitRates(opt Options) (Table, error) {
	tbl := Table{
		Title:   "SecVII-A: baseline metadata cache hit rate (Nexus)",
		Columns: []string{"workload", "meta-hit-rate"},
	}
	var cells []cell
	for _, w := range opt.Workloads {
		cells = append(cells, cell{system.DefaultConfig(system.Nexus), w})
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, err
	}
	for wi, w := range opt.Workloads {
		tbl.Rows = append(tbl.Rows, []string{w, pct(results[wi].MetaHitRate)})
	}
	return tbl, nil
}

// FaultSweep answers the robustness question raised by the fault model:
// how much of NDPExt's advantage survives a lossy CXL fabric? Each
// regime injects a deterministic fault pattern (internal/fault) into
// NDPExt and Nexus on one representative workload and reports the
// slowdown versus that design's healthy run, plus the injector's
// telemetry tallies (retries on the CXL link, accesses redirected off a
// failed vault, streams remapped at epoch boundaries).
func FaultSweep(opt Options) (Table, error) {
	opt = sweepSubset(opt, "pr")
	opt.Workloads = opt.Workloads[:1]
	w := opt.Workloads[0]
	tbl := Table{
		Title:   fmt.Sprintf("Degraded-mode sweep (%s): slowdown vs healthy under injected faults", w),
		Columns: []string{"regime", "design", "slowdown", "retries", "redirects", "remapped", "degraded-epochs"},
	}
	regimes := []struct {
		name string
		spec string
	}{
		{"healthy", ""},
		{"flit-retry", "cxl-retry,rate=0.05,lat=200ns"},
		{"link-degrade", "cxl-degrade,at=0,factor=4"},
		{"vault-fail", "vault-fail,unit=5,at=300us"},
		{"lossy-fabric", "cxl-retry,rate=0.05,lat=200ns;cxl-degrade,at=0,factor=4;vault-fail,unit=5,at=300us"},
	}
	designs := []system.Design{system.NDPExt, system.Nexus}
	var cells []cell
	for _, rg := range regimes {
		spec, err := fault.Parse(rg.spec)
		if err != nil {
			return tbl, fmt.Errorf("regime %s: %w", rg.name, err)
		}
		for _, d := range designs {
			cfg := system.DefaultConfig(d)
			cfg.Faults = spec
			cfg.FaultSeed = 1
			cells = append(cells, cell{cfg, w})
		}
	}
	results, err := runCells(cells, opt)
	if err != nil {
		return tbl, err
	}
	healthy := map[system.Design]sim.Time{}
	for di, d := range designs {
		healthy[d] = results[di].Time
	}
	for ri, rg := range regimes {
		for di, d := range designs {
			res := results[ri*len(designs)+di]
			row := []string{rg.name, d.String(), f2(float64(res.Time) / float64(healthy[d]))}
			if m := res.Metrics(); m != nil {
				row = append(row,
					fmt.Sprintf("%d", m.Uint("fault.retries")),
					fmt.Sprintf("%d", m.Uint("fault.vault_redirects")),
					fmt.Sprintf("%d", m.Uint("fault.remapped_streams")),
					fmt.Sprintf("%d", m.Uint("fault.degraded_epochs")))
			} else {
				row = append(row, "-", "-", "-", "-")
			}
			tbl.Rows = append(tbl.Rows, row)
		}
	}
	return tbl, nil
}
