package bench

import (
	"path/filepath"
	"testing"

	"ndpext/internal/system"
	tracefmt "ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// TestTraceSweep round-trips a generated workload through the trace
// format and sweeps it: every design row must appear, the host row must
// normalize to 1.00, and a core-width mismatch must be rejected with a
// usable error instead of a silent skip.
func TestTraceSweep(t *testing.T) {
	dir := t.TempDir()
	cores := system.DefaultConfig(system.NDPExt).NumUnits()
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = 500
	tr, err := gen(cores, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "pr.ndptrc")
	if err := tracefmt.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}

	tbl, err := TraceSweep(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Host", "Jigsaw", "Whirlpool", "Nexus", "NDPExt-static", "NDPExt"}
	if len(tbl.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(tbl.Rows), len(want), tbl.Rows)
	}
	for i, d := range want {
		if tbl.Rows[i][0] != d {
			t.Errorf("row %d: design %q, want %q", i, tbl.Rows[i][0], d)
		}
	}
	if tbl.Rows[0][2] != "1.00" {
		t.Errorf("host speedup %q, want 1.00", tbl.Rows[0][2])
	}

	// Wrong width: a 2-core trace cannot drive the 128-unit machines.
	narrow, err := gen(2, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	np := filepath.Join(dir, "narrow.ndptrc")
	if err := tracefmt.SaveFile(np, narrow); err != nil {
		t.Fatal(err)
	}
	if _, err := TraceSweep(np, Options{}); err == nil {
		t.Fatal("2-core trace accepted by a sweep over the 128-unit machines")
	}
}
