package bench

import (
	"strconv"
	"testing"
)

// TestAdaptSweepMABBeatsEveryFixedArm is the committed phase-changing
// experiment: on the phased workload (dense mv half, sparse pr half) the
// bandit's end-to-end modeled AMAT must beat every fixed arm, since no
// single arm is optimal across both phases.
func TestAdaptSweepMABBeatsEveryFixedArm(t *testing.T) {
	if testing.Short() {
		t.Skip("five end-to-end simulations")
	}
	tbl, metrics, err := AdaptSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(adaptRegimes) {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), len(adaptRegimes))
	}
	mab := metrics["mab_amat_ns"]
	if mab <= 0 {
		t.Fatalf("MAB modeled AMAT = %g, want > 0", mab)
	}
	for _, row := range tbl.Rows[1:] {
		fixed, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if fixed <= mab {
			t.Errorf("fixed arm %s modeled AMAT %.2f <= MAB %.2f; bandit should win end-to-end",
				row[0], fixed, mab)
		}
	}
	if r := metrics["mab_vs_best_fixed"]; r >= 1 {
		t.Errorf("mab_vs_best_fixed = %.3f, want < 1", r)
	}
}

// TestAdaptSweepDeterministic pins the experiment's reproducibility: two
// invocations must agree cell for cell (pinned trace seed, pinned bandit
// seed, event-loop decisions).
func TestAdaptSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ten end-to-end simulations")
	}
	a, _, err := AdaptSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AdaptSweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %q vs %q", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
