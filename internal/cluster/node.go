package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/simcache"
)

// HopHeader counts how many times a submission has been forwarded
// between peers. A request arriving with HopHeader >= MaxHops is run
// locally instead of forwarded again, so divergent membership views can
// never orbit a job around the ring.
const HopHeader = "X-Ndpext-Hops"

// Config wires one cluster node. Self and Peers are the only required
// fields; Peers must contain Self and be identical (as a set) on every
// node — the ring is computed locally and must agree everywhere.
type Config struct {
	// Self is this node's advertised base URL, e.g. "http://10.0.0.1:8080".
	Self string
	// Peers is the full static member list, Self included.
	Peers []string
	// VNodes is the virtual-node count per peer; default DefaultVNodes.
	VNodes int
	// MaxHops bounds forwarding chains; default 2 (client -> accepting
	// node -> owner -> successor is the longest legitimate path).
	MaxHops int
	// Replicate enables pushing freshly stored results to the ring
	// successor. Default true; NoReplicate turns it off.
	NoReplicate bool
	// Membership tunes the health prober.
	Membership MembershipOptions
	// Client is the base options for forwarding clients (attempts,
	// backoff, transport). Headers is overwritten per forward with the
	// hop count.
	Client client.Options
	// Logf receives operational lines (forward failures, re-routes);
	// default silent.
	Logf func(format string, args ...any)
}

// Node is one member of an ndpserve cluster: the ring, the membership
// view, the forwarding/replication counters, and the cluster-batch
// tracker. It wraps a scheduler (bound with Bind) and is exposed over
// HTTP by NewHandler.
type Node struct {
	cfg     Config
	ring    *Ring
	members *Membership
	sched   *scheduler.Scheduler

	baseCtx context.Context
	cancel  context.CancelFunc

	mu         sync.Mutex
	routes     map[string]string // forwarded job ID -> owner URL at submit time
	batches    map[string]*clusterBatch
	batchOrder []string
	nextBatch  int

	forwardsIn      atomic.Uint64 // submissions that arrived already forwarded
	forwardsOut     atomic.Uint64 // submissions this node forwarded to an owner
	replicationsIn  atomic.Uint64 // replicated documents accepted into the store
	replicationsOut atomic.Uint64 // documents pushed to a successor
	cellsOwned      atomic.Uint64 // jobs accepted for local execution via the cluster layer
}

// NewNode builds the ring and membership for cfg. Call Bind with the
// local scheduler before serving, Start to begin probing.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	members, err := NewMembership(cfg.Self, ring.Peers(), cfg.Membership)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Node{
		cfg:     cfg,
		ring:    ring,
		members: members,
		baseCtx: ctx,
		cancel:  cancel,
		routes:  make(map[string]string),
		batches: make(map[string]*clusterBatch),
	}, nil
}

// Bind attaches the local scheduler. The scheduler should be built with
// Options.OnStored = node.OnStored so completions replicate.
func (n *Node) Bind(s *scheduler.Scheduler) { n.sched = s }

// Ring returns the node's consistent-hash ring.
func (n *Node) Ring() *Ring { return n.ring }

// Members returns the node's membership view.
func (n *Node) Members() *Membership { return n.members }

// Start launches the membership prober.
func (n *Node) Start() { n.members.Start() }

// Close stops probing and cancels background cell runners and
// replication pushes. Idempotent.
func (n *Node) Close() {
	n.cancel()
	n.members.Stop()
}

// IDPrefix returns the per-node job-ID prefix ("j0-", "j1-", ...):
// the node's index in the sorted peer list, so IDs are unique across
// the cluster and a proxied lookup is unambiguous.
func (n *Node) IDPrefix() string {
	for i, p := range n.ring.Peers() {
		if p == n.cfg.Self {
			return fmt.Sprintf("j%d-", i)
		}
	}
	return "j-"
}

// owner resolves key's current owner: the ring owner if routable, else
// its first routable successor. ok is false only when every peer is
// down, which cannot include self.
func (n *Node) owner(key simcache.Key) (string, bool) {
	return n.ring.OwnerAmong(key, n.members.Routable)
}

// OwnerOf is the transport hook annotating job statuses: the current
// owner of a content-address hex, or "" for an unparsable key.
func (n *Node) OwnerOf(keyHex string) string {
	key, err := simcache.ParseKey(keyHex)
	if err != nil {
		return ""
	}
	if o, ok := n.owner(key); ok {
		return o
	}
	return ""
}

// shouldRunLocally decides the routing of one keyed submission given
// the hop count it arrived with. Local wins when this node owns the
// key (directly or as acting successor), when the result is already in
// the local store (a replicated entry — no reason to forward), or when
// the hop budget is exhausted (loop guard).
func (n *Node) shouldRunLocally(key simcache.Key, hops int) (owner string, local bool) {
	owner, ok := n.owner(key)
	switch {
	case !ok || owner == n.cfg.Self:
		return n.cfg.Self, true
	case n.sched.Cached(key):
		return owner, true
	case hops >= n.cfg.MaxHops:
		n.cfg.Logf("cluster: hop limit (%d) reached for key %s; running locally", hops, key.String()[:12])
		return owner, true
	}
	return owner, false
}

// forwardClient builds a client for peer whose requests carry the given
// outgoing hop count.
func (n *Node) forwardClient(peer string, hops int) *client.Client {
	opt := n.cfg.Client
	opt.Headers = map[string]string{HopHeader: strconv.Itoa(hops)}
	if opt.MaxAttempts == 0 {
		// Forwarding should fail fast and fall to the successor, not
		// burn the full resilient-client budget on a dead peer.
		opt.MaxAttempts = 3
	}
	return client.New(peer, opt)
}

// recordRoute remembers which peer took a forwarded job so later
// status/result/events lookups proxy to it.
func (n *Node) recordRoute(jobID, peer string) {
	if jobID == "" {
		return
	}
	n.mu.Lock()
	n.routes[jobID] = peer
	n.mu.Unlock()
}

// routeFor returns the peer a forwarded job went to.
func (n *Node) routeFor(jobID string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.routes[jobID]
	return p, ok
}

// hops parses the forwarded-hop count from a request (0 when absent or
// malformed: an unparsable header is treated as a fresh submission).
func hops(r *http.Request) int {
	h, err := strconv.Atoi(r.Header.Get(HopHeader))
	if err != nil || h < 0 {
		return 0
	}
	return h
}

// OnStored is the scheduler completion hook: push the freshly stored
// document to the key's replication target so a peer death does not
// cold-start the entry. Runs on the worker goroutine, so the push is
// spawned; failures are logged and dropped — replication is an
// optimization, the owner still holds the entry.
func (n *Node) OnStored(key simcache.Key, doc []byte) {
	if n.cfg.NoReplicate {
		return
	}
	target, ok := n.replicationTarget(key)
	if !ok {
		return
	}
	go func() {
		if err := n.pushReplica(target, key, doc); err != nil {
			n.cfg.Logf("cluster: replicate %s to %s: %v", key.String()[:12], target, err)
			return
		}
		n.replicationsOut.Add(1)
	}()
}

// replicationTarget picks where key's document should be copied: the
// first routable peer in ring order that is not this node. When this
// node is the owner that is the ring successor; when this node ran the
// key as acting successor it is usually the (recovering) owner.
func (n *Node) replicationTarget(key simcache.Key) (string, bool) {
	for _, p := range n.ring.Candidates(key, len(n.ring.Peers())) {
		if p != n.cfg.Self && n.members.Routable(p) {
			return p, true
		}
	}
	return "", false
}

// pushReplica PUTs one document to a peer's replication endpoint.
func (n *Node) pushReplica(peer string, key simcache.Key, doc []byte) error {
	ctx, cancel := context.WithTimeout(n.baseCtx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		peer+"/v1/cluster/cache/"+key.String(), bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	httpc := n.cfg.Client.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: replica push to %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// acceptReplica stores a pushed document (the receiving half of
// OnStored).
func (n *Node) acceptReplica(keyHex string, doc []byte) error {
	if err := n.sched.InstallResult(keyHex, doc); err != nil {
		return err
	}
	n.replicationsIn.Add(1)
	return nil
}

// Info is the cluster section embedded in /v1/healthz, /v1/stats, and
// /jobs, and the body of GET /v1/cluster.
type Info struct {
	Self            string     `json:"self"`
	RingSize        int        `json:"ring_size"`
	VNodes          int        `json:"vnodes"`
	MaxHops         int        `json:"max_hops"`
	Peers           []PeerInfo `json:"peers"`
	ForwardsIn      uint64     `json:"forwards_in"`
	ForwardsOut     uint64     `json:"forwards_out"`
	ReplicationsIn  uint64     `json:"replications_in"`
	ReplicationsOut uint64     `json:"replications_out"`
	CellsOwned      uint64     `json:"cells_owned"`
	Batches         int        `json:"batches"`
}

// Info snapshots the node for API documents.
func (n *Node) Info() Info {
	n.mu.Lock()
	batches := len(n.batches)
	n.mu.Unlock()
	return Info{
		Self:            n.cfg.Self,
		RingSize:        n.ring.Size(),
		VNodes:          n.ring.VNodes(),
		MaxHops:         n.cfg.MaxHops,
		Peers:           n.members.Snapshot(),
		ForwardsIn:      n.forwardsIn.Load(),
		ForwardsOut:     n.forwardsOut.Load(),
		ReplicationsIn:  n.replicationsIn.Load(),
		ReplicationsOut: n.replicationsOut.Load(),
		CellsOwned:      n.cellsOwned.Load(),
		Batches:         batches,
	}
}

// InfoDoc adapts Info to the transport Options.Cluster hook.
func (n *Node) InfoDoc() any { return n.Info() }
