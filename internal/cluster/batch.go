package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/simcache"
)

// clusterCell is one matrix position of a cluster batch: its spec and
// content address, the peer currently running it, and its outcome.
type clusterCell struct {
	idx      int
	design   string
	workload string
	trace    string
	key      simcache.Key
	spec     scheduler.JobSpec

	mu       sync.Mutex
	owner    string
	jobID    string
	state    scheduler.State
	errMsg   string
	result   []byte
	cacheHit bool
	deduped  bool
}

func (c *clusterCell) setRouted(owner, jobID string) {
	c.mu.Lock()
	c.owner, c.jobID = owner, jobID
	c.state = scheduler.StateRunning
	c.mu.Unlock()
}

func (c *clusterCell) finishFromStatus(st scheduler.JobStatus) {
	c.mu.Lock()
	if !c.state.Terminal() {
		c.state = st.State
		c.errMsg = st.Error
		c.result = []byte(st.Result)
		c.cacheHit = st.CacheHit
		c.deduped = st.Deduped
		if st.ID != "" {
			c.jobID = st.ID
		}
	}
	c.mu.Unlock()
}

func (c *clusterCell) fail(msg string) {
	c.mu.Lock()
	if !c.state.Terminal() {
		c.state = scheduler.StateFailed
		c.errMsg = msg
	}
	c.mu.Unlock()
}

// clusterBatch is one accepted matrix submission fanned out across the
// ring: the accepting node tracks every cell, re-routes cells lost to
// peer deaths, and multiplexes per-cell SSE through one hub.
type clusterBatch struct {
	id    string
	spec  scheduler.BatchSpec
	cells []*clusterCell
	hub   *hub
	done  chan struct{}
}

// terminal reports whether every cell has finished.
func (b *clusterBatch) terminal() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// state aggregates cells exactly like a single-node batch: failed if
// any cell failed, truncated if any was cut short, running while any is
// unfinished, else done.
func (b *clusterBatch) state() scheduler.State {
	state := scheduler.StateDone
	for _, c := range b.cells {
		c.mu.Lock()
		s := c.state
		c.mu.Unlock()
		switch s {
		case scheduler.StateFailed:
			return scheduler.StateFailed
		case scheduler.StateTruncated:
			state = scheduler.StateTruncated
		case scheduler.StateDone:
		default:
			return scheduler.StateRunning
		}
	}
	return state
}

// ClusterBatchStatus is the wire form of a cluster batch: the
// single-node BatchStatus shape plus per-cell owners.
type ClusterBatchStatus struct {
	ID        string              `json:"id"`
	State     scheduler.State     `json:"state"`
	Designs   []string            `json:"designs"`
	Workloads []string            `json:"workloads,omitempty"`
	Traces    []string            `json:"traces,omitempty"`
	Cells     []ClusterCellStatus `json:"cells"`
	Pending   int                 `json:"pending"`
}

// ClusterCellStatus is one cell's state with its owning node.
type ClusterCellStatus struct {
	Design   string          `json:"design"`
	Workload string          `json:"workload,omitempty"`
	Trace    string          `json:"trace,omitempty"`
	Job      string          `json:"job,omitempty"`
	Key      string          `json:"key"`
	Owner    string          `json:"owner,omitempty"`
	State    scheduler.State `json:"state"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Deduped  bool            `json:"deduped,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// status snapshots the batch for API responses.
func (b *clusterBatch) status() ClusterBatchStatus {
	st := ClusterBatchStatus{
		ID:        b.id,
		State:     b.state(),
		Designs:   b.spec.Designs,
		Workloads: b.spec.Workloads,
		Traces:    b.spec.Traces,
	}
	for _, c := range b.cells {
		c.mu.Lock()
		cs := ClusterCellStatus{
			Design:   c.design,
			Workload: c.workload,
			Trace:    c.trace,
			Job:      c.jobID,
			Key:      c.key.String(),
			Owner:    c.owner,
			State:    c.state,
			CacheHit: c.cacheHit,
			Deduped:  c.deduped,
			Error:    c.errMsg,
		}
		c.mu.Unlock()
		if cs.State == "" {
			cs.State = scheduler.StateQueued
		}
		if !cs.State.Terminal() {
			st.Pending++
		}
		st.Cells = append(st.Cells, cs)
	}
	return st
}

// resultDoc renders the canonical matrix document through the same
// encoder a single node uses, so the bytes are identical for identical
// specs and results.
func (b *clusterBatch) resultDoc() ([]byte, error) {
	cells := make([]scheduler.BatchResultCell, 0, len(b.cells))
	for _, c := range b.cells {
		c.mu.Lock()
		state, errMsg, result := c.state, c.errMsg, c.result
		c.mu.Unlock()
		if !state.Terminal() {
			return nil, scheduler.ErrBatchIncomplete
		}
		cells = append(cells, scheduler.BatchResultCell{
			Design:   c.design,
			Workload: c.workload,
			Trace:    c.trace,
			Key:      c.key.String(),
			State:    state,
			Error:    errMsg,
			Result:   json.RawMessage(result),
		})
	}
	return scheduler.BuildBatchResultDoc(b.spec, cells)
}

// SubmitBatch validates and expands a matrix, keys every cell, and fans
// the cells out across the ring: each cell is submitted to its current
// owner (this node included) and tracked to completion, with cells on a
// dying peer re-routed to the ring successor. Admission differs from a
// single node in one documented way: it is per-cell best-effort rather
// than atomic all-or-nothing, because cells land on different peers.
func (n *Node) SubmitBatch(spec scheduler.BatchSpec) (*clusterBatch, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cellSpecs := spec.Expand()
	b := &clusterBatch{spec: spec, hub: newHub(), done: make(chan struct{})}
	for i, cs := range cellSpecs {
		key, err := n.sched.KeyFor(cs)
		if err != nil {
			return nil, fmt.Errorf("batch cell (design=%s workload=%s%s): %w",
				cs.Design, cs.Workload, cs.Trace, err)
		}
		b.cells = append(b.cells, &clusterCell{
			idx:      i,
			design:   cs.Design,
			workload: cs.Workload,
			trace:    cs.Trace,
			key:      key,
			spec:     cs,
			state:    scheduler.StateQueued,
		})
	}

	n.mu.Lock()
	n.nextBatch++
	b.id = fmt.Sprintf("cb-%06d", n.nextBatch)
	n.batches[b.id] = b
	n.batchOrder = append(n.batchOrder, b.id)
	n.mu.Unlock()

	var wg sync.WaitGroup
	for _, c := range b.cells {
		wg.Add(1)
		go func(c *clusterCell) {
			defer wg.Done()
			n.runCell(b, c)
		}(c)
	}
	go func() {
		wg.Wait()
		close(b.done)
		b.hub.close()
	}()
	return b, nil
}

// batch returns a cluster batch by ID.
func (n *Node) batch(id string) (*clusterBatch, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.batches[id]
	return b, ok
}

// cellRouteAttempts bounds how many times one cell is re-routed after
// transport failures before the accepting node runs it itself.
const cellRouteAttempts = 4

// runCell drives one cell to a terminal state: route to the current
// owner, follow its progress, and — when the owner dies mid-flight —
// requeue on whichever peer the ring now elects (content addressing
// makes the resubmission idempotent: the new owner either has the
// replicated result, piggybacks on an identical in-flight job, or
// re-runs the cell from scratch). After cellRouteAttempts transport
// failures the accepting node runs the cell locally as a last resort.
func (n *Node) runCell(b *clusterBatch, c *clusterCell) {
	for attempt := 0; attempt < cellRouteAttempts; attempt++ {
		if n.baseCtx.Err() != nil {
			c.fail("cluster: node shutting down")
			return
		}
		owner, local := n.shouldRunLocally(c.key, 0)
		if local {
			n.runCellLocal(b, c)
			return
		}
		if n.runCellRemote(b, c, owner) {
			return
		}
		// Transport-level failure: the peer was demoted by ReportFailure;
		// the next iteration re-resolves the owner against the new view.
		n.cfg.Logf("cluster: cell %d (%s) lost on %s; re-routing (attempt %d)",
			c.idx, c.key.String()[:12], owner, attempt+1)
	}
	n.runCellLocal(b, c)
}

// runCellLocal submits the cell to the local scheduler and pumps its
// replay-then-follow stream into the batch hub. A full local queue is
// waited out (the accepting node must eventually land every cell it
// could not place remotely).
func (n *Node) runCellLocal(b *clusterBatch, c *clusterCell) {
	var job *scheduler.Job
	for {
		var err error
		job, err = n.sched.Submit(c.spec)
		if err == nil {
			break
		}
		if !errors.Is(err, scheduler.ErrQueueFull) {
			c.fail(err.Error())
			return
		}
		wait := n.sched.RetryAfterHint()
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		select {
		case <-time.After(wait):
		case <-n.baseCtx.Done():
			c.fail("cluster: node shutting down")
			return
		}
	}
	n.cellsOwned.Add(1)
	c.setRouted(n.cfg.Self, job.ID)
	ch, unsub := job.ProgressTarget().Subscribe()
	defer unsub()
	for ev := range ch {
		data, err := json.Marshal(ev.Data)
		if err != nil {
			data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
		}
		b.hub.publish(hubEvent{
			Cell: c.idx, Design: c.design, Workload: c.workload, Trace: c.trace,
			Type: ev.Type, Data: data,
		})
	}
	<-job.Done()
	c.finishFromStatus(job.Status())
}

// runCellRemote submits the cell to owner and follows it to a terminal
// state, pumping proxied SSE into the batch hub. It returns false when
// the owner failed at the transport level (or forgot the job after a
// restart) and the cell should be re-routed; in that case the peer has
// already been reported down. A replay after re-routing can repeat
// events already in the hub — consumers see a superset, never a gap.
func (n *Node) runCellRemote(b *clusterBatch, c *clusterCell, owner string) bool {
	ctx, cancel := context.WithCancel(n.baseCtx)
	defer cancel()
	cl := n.forwardClient(owner, 1)

	st, err := cl.Submit(ctx, c.spec)
	if err != nil {
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			// The owner answered and rejected: a verdict, not an outage.
			c.fail(fmt.Sprintf("cluster: owner %s rejected cell: %v", owner, apiErr))
			return true
		}
		n.members.ReportFailure(owner, err)
		return false
	}
	n.forwardsOut.Add(1)
	c.setRouted(owner, st.ID)
	if st.State.Terminal() {
		c.finishFromStatus(st)
		n.publishTerminal(b, c, st)
		return true
	}

	var terminalStatus *scheduler.JobStatus
	for ev := range cl.Events(ctx, st.ID) {
		b.hub.publish(hubEvent{
			Cell: c.idx, Design: c.design, Workload: c.workload, Trace: c.trace,
			Type: ev.Type, Data: ev.Data,
		})
		if scheduler.State(ev.Type).Terminal() {
			var fin scheduler.JobStatus
			if json.Unmarshal(ev.Data, &fin) == nil && fin.State.Terminal() {
				terminalStatus = &fin
			}
		}
	}
	if terminalStatus != nil {
		// The terminal SSE event carries the full final status, result
		// included — no extra round trip, and it survives the owner dying
		// right after finishing.
		c.finishFromStatus(*terminalStatus)
		return true
	}

	// The stream gave up without a terminal event; fall back to polling.
	fin, err := cl.Await(ctx, st.ID)
	switch {
	case err == nil:
		c.finishFromStatus(fin)
		n.publishTerminal(b, c, fin)
		return true
	case errors.Is(err, client.ErrUnknownJob):
		// The owner restarted and lost its job table: requeue elsewhere.
		n.members.ReportFailure(owner, err)
		return false
	default:
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			c.fail(fmt.Sprintf("cluster: owner %s failed cell: %v", owner, apiErr))
			return true
		}
		n.members.ReportFailure(owner, err)
		return false
	}
}

// publishTerminal synthesizes the terminal hub event for paths that
// learned the outcome by polling rather than from the SSE stream.
func (n *Node) publishTerminal(b *clusterBatch, c *clusterCell, st scheduler.JobStatus) {
	data, err := json.Marshal(st)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	b.hub.publish(hubEvent{
		Cell: c.idx, Design: c.design, Workload: c.workload, Trace: c.trace,
		Type: string(st.State), Data: data,
	})
}
