package cluster

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"

	"ndpext/internal/simcache"
)

// testKeys derives n deterministic content-address-shaped keys.
func testKeys(n int) []simcache.Key {
	keys := make([]simcache.Key, n)
	for i := range keys {
		keys[i] = simcache.Key(sha256.Sum256([]byte(fmt.Sprintf("ring-test-key-%d", i))))
	}
	return keys
}

func peerSet(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

// TestRingDeterministic: the same peer set yields the same key→owner
// assignment on every construction — a cluster's nodes compute their
// rings independently and must agree.
func TestRingDeterministic(t *testing.T) {
	peers := peerSet(5)
	a, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("two rings over the same peers disagree on %s: %s vs %s",
				k.String()[:12], a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingPeerOrderIndependent: ownership must not depend on the order
// peers were listed in -peers — operators will not keep flag order
// identical across machines.
func TestRingPeerOrderIndependent(t *testing.T) {
	peers := peerSet(7)
	ref, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	keys := testKeys(1000)
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r, err := NewRing(shuffled, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d: shuffled ring owns %s by %s, reference says %s",
					trial, k.String()[:12], got, want)
			}
		}
	}
}

// TestRingRemovalRemapsOnlyTheRemovedPeersKeys: consistent hashing's
// defining property. Removing one peer must (a) never move a key
// between two surviving peers and (b) reassign the removed peer's keys
// to their ring successors under the full ring.
func TestRingRemovalRemapsOnlyTheRemovedPeersKeys(t *testing.T) {
	peers := peerSet(6)
	full, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(3000)
	for drop := 0; drop < len(peers); drop++ {
		removed := peers[drop]
		rest := make([]string, 0, len(peers)-1)
		for i, p := range peers {
			if i != drop {
				rest = append(rest, p)
			}
		}
		small, err := NewRing(rest, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			before, after := full.Owner(k), small.Owner(k)
			if before != removed {
				if after != before {
					t.Fatalf("removing %s moved key %s between survivors: %s -> %s",
						removed, k.String()[:12], before, after)
				}
				continue
			}
			moved++
			// The orphaned key must land exactly where the full ring's
			// down-peer routing would send it: the first routable candidate.
			want, ok := full.OwnerAmong(k, func(p string) bool { return p != removed })
			if !ok || after != want {
				t.Fatalf("key %s orphaned by %s went to %s, want successor %s",
					k.String()[:12], removed, after, want)
			}
		}
		if moved == 0 {
			t.Fatalf("removing %s moved no keys out of %d — vnode placement suspicious", removed, len(keys))
		}
	}
}

// TestRingBalance: with DefaultVNodes the per-peer share of a large key
// sample stays within a loose factor of fair — a sanity bound, not a
// statistical claim.
func TestRingBalance(t *testing.T) {
	peers := peerSet(4)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	keys := testKeys(8000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(peers)
	for p, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair share %d): imbalance beyond 2x", p, c, len(keys), fair)
		}
	}
}

// TestRingWalkAndCandidates: Candidates yields distinct peers starting
// at the owner; Successor is the second candidate; OwnerAmong skips
// exactly the non-alive prefix.
func TestRingWalkAndCandidates(t *testing.T) {
	peers := peerSet(4)
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		cands := r.Candidates(k, len(peers))
		if len(cands) != len(peers) {
			t.Fatalf("Candidates returned %d of %d peers", len(cands), len(peers))
		}
		seen := make(map[string]bool)
		for _, p := range cands {
			if seen[p] {
				t.Fatalf("Candidates repeated %s", p)
			}
			seen[p] = true
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("Candidates[0] = %s, Owner = %s", cands[0], r.Owner(k))
		}
		if succ, ok := r.Successor(k); !ok || succ != cands[1] {
			t.Fatalf("Successor = %s ok=%v, want %s", succ, ok, cands[1])
		}
		// With the first two candidates dead, OwnerAmong must elect the third.
		dead := map[string]bool{cands[0]: true, cands[1]: true}
		got, ok := r.OwnerAmong(k, func(p string) bool { return !dead[p] })
		if !ok || got != cands[2] {
			t.Fatalf("OwnerAmong with two dead = %s ok=%v, want %s", got, ok, cands[2])
		}
		// Nobody alive: no owner.
		if _, ok := r.OwnerAmong(k, func(string) bool { return false }); ok {
			t.Fatal("OwnerAmong with all peers dead reported an owner")
		}
	}
}

// TestRingValidation: empty and duplicate peer lists.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty peer name accepted")
	}
	r, err := NewRing([]string{"b", "a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Peers(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("duplicate peers not collapsed/sorted: %v", got)
	}
	if r.Size() != 16 {
		t.Errorf("ring size = %d, want 2 peers x 8 vnodes = 16", r.Size())
	}
}
