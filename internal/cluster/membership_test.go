package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeProbe is an injectable probe whose per-peer verdicts tests flip.
type fakeProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (f *fakeProbe) set(peer string, failing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail == nil {
		f.fail = make(map[string]bool)
	}
	f.fail[peer] = failing
}

func (f *fakeProbe) probe(_ context.Context, peer string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail[peer] {
		return errors.New("injected probe failure")
	}
	return nil
}

func newTestMembership(t *testing.T, probe *fakeProbe) *Membership {
	t.Helper()
	m, err := NewMembership("http://n0", []string{"http://n0", "http://n1", "http://n2"},
		MembershipOptions{Probe: probe.probe, SuspectAfter: 1, DownAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMembershipStateMachine drives alive -> suspect -> down -> alive
// through synchronous sweeps with an injected probe.
func TestMembershipStateMachine(t *testing.T) {
	probe := &fakeProbe{}
	m := newTestMembership(t, probe)
	ctx := context.Background()

	if got := m.State("http://n1"); got != StateAlive {
		t.Fatalf("boot state = %s, want alive", got)
	}
	probe.set("http://n1", true)

	m.Sweep(ctx)
	if got := m.State("http://n1"); got != StateSuspect {
		t.Fatalf("after 1 failure: %s, want suspect", got)
	}
	if !m.Routable("http://n1") {
		t.Fatal("suspect peer must stay routable")
	}

	m.Sweep(ctx)
	if got := m.State("http://n1"); got != StateSuspect {
		t.Fatalf("after 2 failures: %s, want suspect", got)
	}

	m.Sweep(ctx)
	if got := m.State("http://n1"); got != StateDown {
		t.Fatalf("after 3 failures: %s, want down", got)
	}
	if m.Routable("http://n1") {
		t.Fatal("down peer must not be routable")
	}
	// The healthy peer is untouched.
	if got := m.State("http://n2"); got != StateAlive {
		t.Fatalf("healthy peer drifted to %s", got)
	}

	// One successful probe restores the peer fully.
	probe.set("http://n1", false)
	m.Sweep(ctx)
	if got := m.State("http://n1"); got != StateAlive {
		t.Fatalf("after recovery: %s, want alive", got)
	}
}

// TestReportFailureFastDemotes: a forwarding failure is DownAfter
// probes' worth of evidence at once — routing must move to the
// successor immediately, not an interval later.
func TestReportFailureFastDemotes(t *testing.T) {
	m := newTestMembership(t, &fakeProbe{})
	m.ReportFailure("http://n2", errors.New("connection refused"))
	if got := m.State("http://n2"); got != StateDown {
		t.Fatalf("after ReportFailure: %s, want down", got)
	}
	// Recovery path still works.
	m.observeSuccess("http://n2")
	if got := m.State("http://n2"); got != StateAlive {
		t.Fatalf("after recovery: %s, want alive", got)
	}
}

// TestMembershipSelfAndUnknown: self is always alive and never probed;
// unknown peers report down (never routable).
func TestMembershipSelfAndUnknown(t *testing.T) {
	probe := &fakeProbe{}
	probe.set("http://n0", true) // must never be consulted
	m := newTestMembership(t, probe)
	m.Sweep(context.Background())
	if got := m.State("http://n0"); got != StateAlive {
		t.Fatalf("self = %s, want alive always", got)
	}
	if m.Routable("http://nope") {
		t.Fatal("unknown peer is routable")
	}
}

// TestMembershipSnapshot: sorted, self-marked, states included.
func TestMembershipSnapshot(t *testing.T) {
	probe := &fakeProbe{}
	m := newTestMembership(t, probe)
	probe.set("http://n2", true)
	m.Sweep(context.Background())

	snap := m.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d peers, want 3", len(snap))
	}
	for i, want := range []struct {
		url   string
		state PeerState
		self  bool
	}{
		{"http://n0", StateAlive, true},
		{"http://n1", StateAlive, false},
		{"http://n2", StateSuspect, false},
	} {
		got := snap[i]
		if got.URL != want.url || got.State != want.state || got.Self != want.self {
			t.Errorf("snapshot[%d] = %+v, want %+v", i, got, want)
		}
	}
}

// TestMembershipValidation: self must be in the peer list; Stop is safe
// without Start and safe twice.
func TestMembershipValidation(t *testing.T) {
	if _, err := NewMembership("http://n9", []string{"http://n0", "http://n1"}, MembershipOptions{}); err == nil {
		t.Error("self outside the peer list accepted")
	}
	m := newTestMembership(t, &fakeProbe{})
	m.Stop() // never started: must not hang
	m.Stop() // and twice is fine
}

// TestMembershipProbeLoop: a started loop sweeps on its own.
func TestMembershipProbeLoop(t *testing.T) {
	swept := make(chan string, 64)
	m, err := NewMembership("http://n0", []string{"http://n0", "http://n1"},
		MembershipOptions{
			ProbeInterval: 1e6, // 1ms
			Probe: func(_ context.Context, peer string) error {
				select {
				case swept <- peer:
				default:
				}
				return fmt.Errorf("fail")
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Stop()
	// Sweeps run sequentially: the 4th probe starting proves the 3rd
	// sweep (and its state update) completed.
	for i := 0; i < 4; i++ {
		if got := <-swept; got != "http://n1" {
			t.Fatalf("probed %s, want http://n1", got)
		}
	}
	if got := m.State("http://n1"); got != StateDown {
		t.Fatalf("after >=3 loop failures: %s, want down", got)
	}
}
