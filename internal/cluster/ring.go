// Package cluster turns N independent ndpserve processes into one
// logical service. A consistent-hash ring (virtual nodes, deterministic)
// maps every content-addressed job key to an owning peer; any node
// accepts any submission and either runs it (owner) or forwards it to
// the owner through the resilient internal/client transport, with a
// hop-count header preventing forwarding loops. Static membership comes
// from a -peers list plus periodic /v1/healthz probing with a
// suspect/down state machine; when a peer is down, ownership falls to
// the ring successor and lost batch cells are requeued there. Completed
// result-cache entries are replicated to the successor so a peer death
// does not cold-start popular cells, and the accepting node proxies
// per-cell SSE streams from owner nodes so clients follow a whole batch
// through whichever node took the request.
//
// Layering: cluster sits beside transport at the HTTP edge — it may
// import net/http and internal/client, but the scheduler, store, and
// result layers must never import it (enforced by the arch test in
// internal/server/transport).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"ndpext/internal/simcache"
)

// DefaultVNodes is the default number of virtual nodes per peer. 64
// points per peer keeps the expected ownership imbalance of a handful
// of peers under ~15% while the ring stays a few KiB.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the peer that owns the arc ending there.
type ringPoint struct {
	pos  uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a static peer set.
// Construction is deterministic and order-independent: the same peer
// set yields the same key→owner assignment on every node regardless of
// the order peers were listed, and removing a peer remaps only the keys
// that peer owned (its arcs fall to their ring successors).
type Ring struct {
	points []ringPoint
	peers  []string // sorted, deduplicated
	vnodes int
}

// NewRing builds a ring with vnodes virtual nodes per peer (vnodes <= 0
// takes DefaultVNodes). Duplicate peers are collapsed; at least one
// peer is required.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	uniq := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{pos: pointHash(p, i), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.peer < b.peer // total order even on (astronomically unlikely) collisions
	})
	return r, nil
}

// pointHash positions one virtual node: the first 8 bytes of
// SHA-256("ndpext-ring/v1|<peer>|<index>"). Length-prefix-free framing
// is safe here because the index is numeric and "|" never appears in a
// vnode index.
func pointHash(peer string, vnode int) uint64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("ndpext-ring/v1|%s|%d", peer, vnode)))
	return binary.BigEndian.Uint64(h[:8])
}

// keyPos places a content-addressed job key on the circle. The key is
// already a SHA-256, so its first 8 bytes are uniformly distributed.
func keyPos(k simcache.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Peers returns the sorted peer set.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the number of hash points on the ring.
func (r *Ring) Size() int { return len(r.points) }

// VNodes returns the virtual nodes per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the peer owning key: the peer of the first ring point
// at or clockwise after the key's position.
func (r *Ring) Owner(k simcache.Key) string {
	return r.points[r.firstAt(keyPos(k))].peer
}

// OwnerAmong returns the first peer walking clockwise from key that
// alive reports true for — the owner itself when it is alive, otherwise
// its successor, and so on. ok is false when no peer qualifies.
func (r *Ring) OwnerAmong(k simcache.Key, alive func(peer string) bool) (string, bool) {
	it := r.walk(keyPos(k))
	for {
		p, ok := it()
		if !ok {
			return "", false
		}
		if alive(p) {
			return p, true
		}
	}
}

// Successor returns the first distinct peer clockwise after key's
// owner — the replication target for key. ok is false on a one-peer
// ring.
func (r *Ring) Successor(k simcache.Key) (string, bool) {
	it := r.walk(keyPos(k))
	owner, _ := it()
	for {
		p, ok := it()
		if !ok {
			return "", false
		}
		if p != owner {
			return p, true
		}
	}
}

// Candidates returns up to n distinct peers in ring order starting at
// key's owner — the preference order for routing when peers are down.
func (r *Ring) Candidates(k simcache.Key, n int) []string {
	out := make([]string, 0, n)
	it := r.walk(keyPos(k))
	for len(out) < n {
		p, ok := it()
		if !ok {
			return out
		}
		out = append(out, p)
	}
	return out
}

// firstAt returns the index of the first point at or after pos,
// wrapping to 0 past the end.
func (r *Ring) firstAt(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// walk returns an iterator over distinct peers in ring order starting
// at pos; it yields each peer once and then reports ok=false.
func (r *Ring) walk(pos uint64) func() (string, bool) {
	i := r.firstAt(pos)
	seen := make(map[string]bool, len(r.peers))
	steps := 0
	return func() (string, bool) {
		for ; steps < len(r.points); steps++ {
			p := r.points[(i+steps)%len(r.points)].peer
			if !seen[p] {
				seen[p] = true
				steps++
				return p, true
			}
		}
		return "", false
	}
}
