package e2e

import (
	"bytes"
	"context"
	"testing"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/server/chaos"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
)

// TestClusterSurvivesPeerKillMidBatch is the chaos acceptance scenario:
// three nodes, a design×workload batch submitted to node 0, and one of
// the other two peers killed (listener and all live connections torn
// down) after a seeded number of cells have finished. The batch must
// still complete, its result document must be byte-identical to a
// single-node golden run, and the survivors' summed sims_run must not
// exceed the unique cell count — a killed peer's work is either
// recovered from its replica or re-run exactly once, never duplicated.
func TestClusterSurvivesPeerKillMidBatch(t *testing.T) {
	spec := scheduler.BatchSpec{
		Designs:   []string{"Host", "Nexus", "NDPExt"},
		Workloads: []string{"pr", "hotspot"},
		Base:      scheduler.JobSpec{Seed: 11, Accesses: 1000},
	}
	cells := len(spec.Designs) * len(spec.Workloads)

	// Golden run on a standalone scheduler: the byte-identity oracle.
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := scheduler.New(st, nil, scheduler.Options{})
	single.Start()
	defer single.Drain(context.Background())
	sb, err := single.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-sb.Done()
	golden, err := sb.ResultDoc()
	if err != nil {
		t.Fatal(err)
	}

	// The kill is planned up front from a fixed seed: node 0 accepts the
	// batch, so the victim is one of the other two peers.
	in := chaos.NewInjector(42)
	plan, err := in.PlanKill(3, 0, cells)
	if err != nil {
		t.Fatal(err)
	}

	nodes := newTestCluster(t, 3, scheduler.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cl := client.New(nodes[0].URL, testClientOptions())
	bst, err := cl.SubmitBatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let plan.AfterCells cells finish, then kill the victim mid-batch.
	waitFor(t, 60*time.Second, "enough cells to finish before the kill", func() bool {
		st, err := cl.Batch(ctx, bst.ID)
		if err != nil {
			return false
		}
		terminal := 0
		for _, c := range st.Cells {
			if c.State.Terminal() {
				terminal++
			}
		}
		return terminal >= plan.AfterCells
	})
	t.Logf("killing node %d after >=%d terminal cells", plan.Victim, plan.AfterCells)
	nodes[plan.Victim].Kill()

	final, err := cl.AwaitBatch(ctx, bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != scheduler.StateDone {
		t.Fatalf("batch ended %s after peer kill: %+v", final.State, final.Cells)
	}
	doc, err := cl.BatchResult(ctx, bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, golden) {
		t.Errorf("post-kill result differs from single-node golden:\ncluster: %s\ngolden:  %s", doc, golden)
	}

	// No duplicated cells among the survivors: every unique cell was
	// simulated at most once across the nodes still standing (cells the
	// victim finished arrive via its replica or are re-run once).
	total := uint64(0)
	for i, tn := range nodes {
		if i == plan.Victim {
			continue
		}
		total += tn.Sched.SimsRun()
	}
	if total > uint64(cells) {
		t.Errorf("survivors ran %d sims for %d unique cells — duplicated work", total, cells)
	}
}
