package e2e

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/cluster"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/server/transport"
)

// swapHandler lets the harness start listeners (to learn their URLs)
// before the nodes that need those URLs exist.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one fully wired cluster member.
type testNode struct {
	URL   string
	Node  *cluster.Node
	Sched *scheduler.Scheduler
	Srv   *httptest.Server
}

// Kill force-closes every connection (active SSE streams included) and
// the listener — the closest httptest gets to a process death.
func (tn *testNode) Kill() {
	tn.Srv.CloseClientConnections()
	tn.Srv.Close()
}

// testClientOptions keeps forwarding failover fast under test.
func testClientOptions() client.Options {
	return client.Options{
		MaxAttempts:  2,
		BaseDelay:    10 * time.Millisecond,
		MaxDelay:     50 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
	}
}

// newTestCluster boots n wired nodes sharing one static peer list,
// exactly as cmd/ndpserve composes the layers. schedOpt tweaks the
// per-node scheduler (workers, queue depth); zero values take scheduler
// defaults.
func newTestCluster(t *testing.T, n int, schedOpt scheduler.Options) []*testNode {
	t.Helper()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	nodes := make([]*testNode, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		srv := httptest.NewServer(swaps[i])
		urls[i] = srv.URL
		nodes[i] = &testNode{URL: srv.URL, Srv: srv}
	}
	for i := range nodes {
		node, err := cluster.NewNode(cluster.Config{
			Self:   urls[i],
			Peers:  urls,
			VNodes: 16,
			Membership: cluster.MembershipOptions{
				ProbeInterval: 100 * time.Millisecond,
				ProbeTimeout:  500 * time.Millisecond,
				DownAfter:     2,
			},
			Client: testClientOptions(),
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt := schedOpt
		opt.IDPrefix = node.IDPrefix()
		opt.OnStored = node.OnStored
		sched := scheduler.New(st, nil, opt)
		sched.Start()
		node.Bind(sched)
		inner := transport.NewHandler(sched, transport.Options{
			Cluster: node.InfoDoc,
			OwnerOf: node.OwnerOf,
		})
		swaps[i].set(cluster.NewHandler(node, inner))
		node.Start()
		nodes[i].Node = node
		nodes[i].Sched = sched
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.Node.Close()
			tn.Srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			tn.Sched.Drain(ctx)
			cancel()
		}
	})
	return nodes
}

// ownerIndex returns which node owns spec's key, plus the key hex, plus
// the index of some other node (the accepting non-owner).
func ownerIndex(t *testing.T, nodes []*testNode, spec scheduler.JobSpec) (owner, other int) {
	t.Helper()
	key, err := nodes[0].Sched.KeyFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	ownerURL := nodes[0].Node.Ring().Owner(key)
	owner, other = -1, -1
	for i, tn := range nodes {
		if tn.URL == ownerURL {
			owner = i
		} else if other == -1 {
			other = i
		}
	}
	if owner == -1 || other == -1 {
		t.Fatalf("could not split owner/other for %s among %d nodes", ownerURL, len(nodes))
	}
	return owner, other
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}
