// Package e2e wires full ndpserve cluster nodes — store, scheduler,
// transport handler, cluster layer — the same way cmd/ndpserve does,
// and drives them over real HTTP. It exists as its own package because
// the two HTTP-edge layers (transport and cluster) are forbidden from
// importing each other; only wiring code, like cmd/ndpserve and these
// tests, composes them.
package e2e
