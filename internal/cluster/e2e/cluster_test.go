package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ndpext/internal/client"
	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
)

// TestForwardToOwner: a submission POSTed to a non-owner is forwarded
// to the ring owner, runs there exactly once, and the accepting node
// proxies status, result, and the SSE stream so the client never needs
// to know which peer ran its job.
func TestForwardToOwner(t *testing.T) {
	nodes := newTestCluster(t, 3, scheduler.Options{})
	spec := scheduler.JobSpec{Workload: "pr", Seed: 7, Accesses: 1000}
	owner, other := ownerIndex(t, nodes, spec)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(nodes[other].URL, testClientOptions())

	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Owner != nodes[owner].URL {
		t.Errorf("submission owner = %q, want %q", st.Owner, nodes[owner].URL)
	}

	// The SSE stream proxied through the accepting node must end with
	// the terminal event.
	var last string
	for ev := range cl.Events(ctx, st.ID) {
		last = ev.Type
	}
	if last != string(scheduler.StateDone) {
		t.Fatalf("proxied stream ended with %q, want done", last)
	}

	final, err := cl.Await(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != scheduler.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	doc, err := cl.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 || !json.Valid(doc) {
		t.Fatalf("proxied result document invalid: %q", doc)
	}

	// The simulation ran on the owner, not the accepting node.
	if got := nodes[owner].Sched.SimsRun(); got != 1 {
		t.Errorf("owner sims_run = %d, want 1", got)
	}
	if got := nodes[other].Sched.SimsRun(); got != 0 {
		t.Errorf("accepting node sims_run = %d, want 0", got)
	}
	if got := nodes[other].Node.Info().ForwardsOut; got == 0 {
		t.Error("accepting node recorded no outgoing forwards")
	}
}

// TestSubmitToOwnerRunsLocally: the owner itself takes the fast path —
// no forwarding round trip.
func TestSubmitToOwnerRunsLocally(t *testing.T) {
	nodes := newTestCluster(t, 3, scheduler.Options{})
	spec := scheduler.JobSpec{Workload: "pr", Seed: 11, Accesses: 1000}
	owner, _ := ownerIndex(t, nodes, spec)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(nodes[owner].URL, testClientOptions())
	final, err := cl.SubmitAndAwait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != scheduler.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if got := nodes[owner].Node.Info().ForwardsOut; got != 0 {
		t.Errorf("owner forwarded its own key (%d forwards)", got)
	}
	if got := nodes[owner].Sched.SimsRun(); got != 1 {
		t.Errorf("owner sims_run = %d, want 1", got)
	}
}

// TestReplicationToSuccessor: a completed result is pushed to the next
// routable peer on the ring, so a later owner death does not cold-start
// the entry — and a submission hitting the replica holder is served
// from its store without forwarding.
func TestReplicationToSuccessor(t *testing.T) {
	nodes := newTestCluster(t, 3, scheduler.Options{})
	spec := scheduler.JobSpec{Workload: "pr", Seed: 3, Accesses: 1000}
	owner, _ := ownerIndex(t, nodes, spec)
	key, err := nodes[0].Sched.KeyFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The owner replicates to the first ring candidate that is not
	// itself.
	var target *testNode
	for _, cand := range nodes[owner].Node.Ring().Candidates(key, len(nodes)) {
		if cand != nodes[owner].URL {
			for _, tn := range nodes {
				if tn.URL == cand {
					target = tn
				}
			}
			break
		}
	}
	if target == nil {
		t.Fatal("no replication target found")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(nodes[owner].URL, testClientOptions())
	if _, err := cl.SubmitAndAwait(ctx, spec); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "replica to land on the successor", func() bool {
		return target.Sched.Cached(key)
	})
	if got := target.Node.Info().ReplicationsIn; got != 1 {
		t.Errorf("target replications_in = %d, want 1", got)
	}
	waitFor(t, 10*time.Second, "owner to count the push", func() bool {
		return nodes[owner].Node.Info().ReplicationsOut == 1
	})

	// The replica holder serves the key from its own store: no second
	// simulation anywhere, no forward.
	before := nodes[owner].Sched.SimsRun()
	st, err := client.New(target.URL, testClientOptions()).Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Errorf("replica holder did not serve from cache: %+v", st.State)
	}
	if got := target.Sched.SimsRun(); got != 0 {
		t.Errorf("replica holder ran %d sims, want 0", got)
	}
	if got := nodes[owner].Sched.SimsRun(); got != before {
		t.Errorf("owner re-ran the cell (%d -> %d sims)", before, got)
	}
}

// TestClusterBatchMatchesSingleNode: the tentpole acceptance criterion.
// A design×workload matrix fanned out across three nodes must produce a
// result document byte-identical to the same matrix on one standalone
// scheduler, and shared cells must not run twice anywhere.
func TestClusterBatchMatchesSingleNode(t *testing.T) {
	spec := scheduler.BatchSpec{
		Designs:   []string{"Host", "Nexus", "NDPExt"},
		Workloads: []string{"pr", "hotspot"},
		Base:      scheduler.JobSpec{Seed: 5, Accesses: 1000},
	}

	// Golden run: one standalone scheduler, no cluster anywhere.
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single := scheduler.New(st, nil, scheduler.Options{})
	single.Start()
	defer single.Drain(context.Background())
	sb, err := single.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-sb.Done()
	golden, err := sb.ResultDoc()
	if err != nil {
		t.Fatal(err)
	}

	// Cluster run: same matrix through an arbitrary accepting node.
	nodes := newTestCluster(t, 3, scheduler.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New(nodes[0].URL, testClientOptions())
	bst, err := cl.SubmitBatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if bst.ID == "" {
		t.Fatal("cluster batch has no ID")
	}
	final, err := cl.AwaitBatch(ctx, bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != scheduler.StateDone {
		t.Fatalf("cluster batch ended %s: %+v", final.State, final.Cells)
	}
	doc, err := cl.BatchResult(ctx, bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, golden) {
		t.Errorf("cluster matrix document differs from single-node golden:\ncluster: %s\ngolden:  %s", doc, golden)
	}

	// Every unique cell simulated exactly once across the whole cluster.
	total := uint64(0)
	for _, tn := range nodes {
		total += tn.Sched.SimsRun()
	}
	if want := uint64(len(spec.Designs) * len(spec.Workloads)); total != want {
		t.Errorf("cluster ran %d sims for %d unique cells", total, want)
	}
}

// TestClusterBatchSSE: the accepting node multiplexes every cell's
// events — local and proxied — onto one stream, ending with the
// terminal "batch" event.
func TestClusterBatchSSE(t *testing.T) {
	nodes := newTestCluster(t, 3, scheduler.Options{})
	spec := scheduler.BatchSpec{
		Designs:   []string{"Host", "NDPExt"},
		Workloads: []string{"pr"},
		Base:      scheduler.JobSpec{Seed: 9, Accesses: 1000},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl := client.New(nodes[1].URL, testClientOptions())
	bst, err := cl.SubmitBatch(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		nodes[1].URL+"/v1/batch/"+bst.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch events status %d", resp.StatusCode)
	}
	types, cells := scanSSE(t, resp)
	if len(types) == 0 || types[len(types)-1] != "batch" {
		t.Fatalf("stream did not end with the batch event: %v", types)
	}
	terminalCells := 0
	for i, typ := range types {
		if scheduler.State(typ).Terminal() {
			terminalCells++
			if cells[i] < 0 || cells[i] >= 2 {
				t.Errorf("terminal event for out-of-range cell %d", cells[i])
			}
		}
	}
	if terminalCells != 2 {
		t.Errorf("saw %d terminal cell events, want 2 (types: %v)", terminalCells, types)
	}
}

// scanSSE reads one SSE response to completion, returning the event
// types in order and, for each, the payload's cell index (-1 when the
// payload has none).
func scanSSE(t *testing.T, resp *http.Response) (types []string, cells []int) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var typ string
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		s := string(line)
		switch {
		case len(s) > 7 && s[:7] == "event: ":
			typ = s[7:]
		case len(s) > 6 && s[:6] == "data: ":
			var payload struct {
				Cell *int `json:"cell"`
			}
			cell := -1
			if json.Unmarshal([]byte(s[6:]), &payload) == nil && payload.Cell != nil {
				cell = *payload.Cell
			}
			types = append(types, typ)
			cells = append(cells, cell)
		}
	}
	return types, cells
}

// TestClusterObservability: /v1/healthz and /jobs carry the cluster
// section, /v1/cluster serves the full document, and job listings are
// annotated with owners.
func TestClusterObservability(t *testing.T) {
	nodes := newTestCluster(t, 3, scheduler.Options{})
	spec := scheduler.JobSpec{Workload: "pr", Seed: 13, Accesses: 1000}
	_, other := ownerIndex(t, nodes, spec)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(nodes[other].URL, testClientOptions())
	if _, err := cl.SubmitAndAwait(ctx, spec); err != nil {
		t.Fatal(err)
	}

	var health struct {
		Cluster struct {
			Self        string `json:"self"`
			RingSize    int    `json:"ring_size"`
			ForwardsOut uint64 `json:"forwards_out"`
			Peers       []struct {
				URL   string `json:"url"`
				State string `json:"state"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	getJSON(t, nodes[other].URL+"/v1/healthz", &health)
	if health.Cluster.Self != nodes[other].URL {
		t.Errorf("healthz cluster.self = %q, want %q", health.Cluster.Self, nodes[other].URL)
	}
	if health.Cluster.RingSize != 3*16 {
		t.Errorf("healthz cluster.ring_size = %d, want 48", health.Cluster.RingSize)
	}
	if len(health.Cluster.Peers) != 3 {
		t.Errorf("healthz cluster.peers has %d entries, want 3", len(health.Cluster.Peers))
	}
	if health.Cluster.ForwardsOut == 0 {
		t.Error("healthz cluster.forwards_out = 0 after a forwarded job")
	}

	// /jobs annotates each job with its owning node.
	var overview struct {
		Jobs []struct {
			Owner string `json:"owner"`
		} `json:"jobs"`
		Cluster any `json:"cluster"`
	}
	owner, _ := ownerIndex(t, nodes, spec)
	getJSON(t, nodes[owner].URL+"/jobs", &overview)
	if len(overview.Jobs) == 0 {
		t.Fatal("owner lists no jobs")
	}
	if got := overview.Jobs[0].Owner; got != nodes[owner].URL {
		t.Errorf("/jobs owner = %q, want %q", got, nodes[owner].URL)
	}
	if overview.Cluster == nil {
		t.Error("/jobs is missing the cluster section")
	}

	// The dedicated cluster document.
	var info struct {
		Self    string `json:"self"`
		MaxHops int    `json:"max_hops"`
	}
	getJSON(t, nodes[0].URL+"/v1/cluster", &info)
	if info.Self != nodes[0].URL || info.MaxHops != 2 {
		t.Errorf("GET /v1/cluster = %+v", info)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
