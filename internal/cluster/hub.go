package cluster

import (
	"encoding/json"
	"sync"
)

// hubEvent is one multiplexed cluster-batch progress record: a cell's
// event tagged with its matrix position, with the payload kept as raw
// JSON (local events are marshaled once at publish; proxied events pass
// through the owner's bytes untouched).
type hubEvent struct {
	Cell     int
	Design   string
	Workload string
	Trace    string
	Type     string
	Data     json.RawMessage
}

// hubSubscriberBuffer is the per-subscriber live buffer beyond the
// replayed history.
const hubSubscriberBuffer = 64

// hubSub is one bounded, non-blocking subscriber, mirroring the
// scheduler's per-job fanout: a full buffer drops events and counts
// them, and the next successful send is preceded by a "lagged" event
// (Cell -1: the lag is the subscriber's, not any cell's) so a stalled
// SSE client can never back-pressure the cell runners.
type hubSub struct {
	ch      chan hubEvent
	dropped int
}

// send delivers ev without blocking. Called with the hub's mu held,
// which serializes dropped.
func (s *hubSub) send(ev hubEvent) {
	if s.dropped > 0 {
		lag, _ := json.Marshal(map[string]int{"dropped": s.dropped})
		select {
		case s.ch <- hubEvent{Cell: -1, Type: "lagged", Data: lag}:
			s.dropped = 0
		default:
			s.dropped++
			return
		}
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped++
	}
}

// hub is a cluster batch's merged event log with replay-then-follow
// semantics: a subscriber first receives the complete history, then
// follows live events until the hub closes (every cell terminal).
type hub struct {
	mu      sync.Mutex
	history []hubEvent
	subs    map[*hubSub]struct{}
	closed  bool
}

func newHub() *hub {
	return &hub{subs: make(map[*hubSub]struct{})}
}

// publish appends ev to the history and fans it out. Publishing to a
// closed hub is a silent no-op (a re-routed cell's late event after the
// batch already closed).
func (h *hub) publish(ev hubEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, ev)
	for sub := range h.subs {
		sub.send(ev)
	}
}

// subscribe returns a channel that replays the history then follows
// live events, plus an unsubscribe func. The channel closes when the
// hub does.
func (h *hub) subscribe() (<-chan hubEvent, func()) {
	h.mu.Lock()
	ch := make(chan hubEvent, len(h.history)+hubSubscriberBuffer)
	for _, ev := range h.history {
		ch <- ev
	}
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	sub := &hubSub{ch: ch}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	unsub := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, sub)
			h.mu.Unlock()
		})
	}
	return ch, unsub
}

// close ends the stream: every subscriber channel closes after the
// events already buffered (a lagging subscriber gets its final "lagged"
// marker first, best-effort).
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		if sub.dropped > 0 {
			lag, _ := json.Marshal(map[string]int{"dropped": sub.dropped})
			select {
			case sub.ch <- hubEvent{Cell: -1, Type: "lagged", Data: lag}:
			default:
			}
		}
		close(sub.ch)
		delete(h.subs, sub)
	}
}
