package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// PeerState is one peer's health as seen by this node.
type PeerState string

const (
	// StateAlive: the last probe (or forward) succeeded.
	StateAlive PeerState = "alive"
	// StateSuspect: at least SuspectAfter consecutive probes failed;
	// the peer still owns its key ranges but is on notice.
	StateSuspect PeerState = "suspect"
	// StateDown: at least DownAfter consecutive probes failed; the
	// peer's key ranges fall to their ring successors until it recovers.
	StateDown PeerState = "down"
)

// MembershipOptions configures the prober. Zero values take the
// documented defaults.
type MembershipOptions struct {
	// ProbeInterval paces the /v1/healthz sweep; default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; default 1s.
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive-failure count that demotes alive
	// to suspect; default 1.
	SuspectAfter int
	// DownAfter is the consecutive-failure count that demotes to down;
	// default 3.
	DownAfter int
	// Probe checks one peer, nil error meaning healthy. The default
	// GETs <peer>/v1/healthz. Tests inject failures here.
	Probe func(ctx context.Context, peer string) error
	// Logf receives state-transition lines; default silent.
	Logf func(format string, args ...any)
}

func (o MembershipOptions) withDefaults() MembershipOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.DownAfter < o.SuspectAfter {
		o.DownAfter = o.SuspectAfter
	}
	if o.Probe == nil {
		o.Probe = httpProbe
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// httpProbe is the default liveness check: GET <peer>/v1/healthz must
// answer 200.
func httpProbe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: status %d", peer, resp.StatusCode)
	}
	return nil
}

// peerHealth is one peer's probe bookkeeping.
type peerHealth struct {
	state    PeerState
	failures int // consecutive failed probes
}

// Membership tracks the health of a static peer set. The local node is
// always alive and never probed. All methods are safe for concurrent
// use.
type Membership struct {
	self  string
	opt   MembershipOptions
	probe []string // peers other than self, sorted

	mu    sync.Mutex
	peers map[string]*peerHealth

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
	done     chan struct{}
}

// NewMembership tracks peers (which must include self). Peers start
// alive — a cluster boots optimistic and demotes on evidence.
func NewMembership(self string, peers []string, opt MembershipOptions) (*Membership, error) {
	m := &Membership{
		self:  self,
		opt:   opt.withDefaults(),
		peers: make(map[string]*peerHealth, len(peers)),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		if _, dup := m.peers[p]; dup {
			continue
		}
		m.peers[p] = &peerHealth{state: StateAlive}
		m.probe = append(m.probe, p)
	}
	if len(m.peers) == len(peers) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", self)
	}
	sort.Strings(m.probe)
	return m, nil
}

// Start launches the periodic probe loop; Stop ends it.
func (m *Membership) Start() {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Sweep(context.Background())
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call more
// than once, and on a Membership that was never started.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}

// Sweep probes every remote peer once, concurrently, and applies the
// state machine. Exposed so tests (and the first routing decision after
// boot) can force a synchronous sweep.
func (m *Membership) Sweep(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range m.probe {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.opt.ProbeTimeout)
			defer cancel()
			if err := m.opt.Probe(pctx, p); err != nil {
				m.observeFailure(p, err)
			} else {
				m.observeSuccess(p)
			}
		}(p)
	}
	wg.Wait()
}

// observeSuccess resets the peer to alive.
func (m *Membership) observeSuccess(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.peers[peer]
	if !ok {
		return
	}
	if h.state != StateAlive {
		m.opt.Logf("cluster: peer %s recovered (%s -> alive)", peer, h.state)
	}
	h.state = StateAlive
	h.failures = 0
}

// observeFailure advances the suspect/down state machine by one failed
// probe.
func (m *Membership) observeFailure(peer string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.peers[peer]
	if !ok {
		return
	}
	h.failures++
	next := h.state
	switch {
	case h.failures >= m.opt.DownAfter:
		next = StateDown
	case h.failures >= m.opt.SuspectAfter:
		next = StateSuspect
	}
	if next != h.state {
		m.opt.Logf("cluster: peer %s %s -> %s after %d failures (%v)",
			peer, h.state, next, h.failures, err)
		h.state = next
	}
}

// ReportFailure feeds a forwarding failure into the state machine as
// DownAfter probe failures at once: a connection refused on the hot
// path is stronger evidence than a missed probe, and routing must move
// to the successor now, not an interval later. The next successful
// probe restores the peer.
func (m *Membership) ReportFailure(peer string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.peers[peer]
	if !ok {
		return
	}
	if h.failures < m.opt.DownAfter {
		h.failures = m.opt.DownAfter
	}
	if h.state != StateDown {
		m.opt.Logf("cluster: peer %s %s -> down (forward failed: %v)", peer, h.state, err)
		h.state = StateDown
	}
}

// State returns one peer's current state (self is always alive;
// unknown peers report down).
func (m *Membership) State(peer string) PeerState {
	if peer == m.self {
		return StateAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.peers[peer]; ok {
		return h.state
	}
	return StateDown
}

// Routable reports whether the peer should still own its key ranges:
// alive and suspect peers do, down peers do not.
func (m *Membership) Routable(peer string) bool { return m.State(peer) != StateDown }

// PeerInfo is one peer's health in API documents.
type PeerInfo struct {
	URL      string    `json:"url"`
	State    PeerState `json:"state"`
	Failures int       `json:"failures,omitempty"`
	Self     bool      `json:"self,omitempty"`
}

// Snapshot lists every peer's health, self included, sorted by URL.
func (m *Membership) Snapshot() []PeerInfo {
	m.mu.Lock()
	out := make([]PeerInfo, 0, len(m.peers)+1)
	for p, h := range m.peers {
		out = append(out, PeerInfo{URL: p, State: h.state, Failures: h.failures})
	}
	m.mu.Unlock()
	out = append(out, PeerInfo{URL: m.self, State: StateAlive, Self: true})
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
