package cluster

import (
	"errors"
	"strings"
	"testing"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/simcache"
)

// newTestNode builds a node (self plus two remote peers) bound to a
// real scheduler, without any HTTP.
func newTestNode(t *testing.T) *Node {
	t.Helper()
	n, err := NewNode(Config{
		Self:  "http://n0",
		Peers: []string{"http://n0", "http://n1", "http://n2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := scheduler.New(st, nil, scheduler.Options{IDPrefix: n.IDPrefix()})
	n.Bind(sched)
	t.Cleanup(n.Close)
	return n
}

// remoteKey finds a spec whose key n does not own, so routing tests
// exercise the forwarding decision.
func remoteKey(t *testing.T, n *Node) (scheduler.JobSpec, simcache.Key, string) {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		spec := scheduler.JobSpec{Workload: "pr", Seed: seed, Accesses: 1000}
		key, err := n.sched.KeyFor(spec)
		if err != nil {
			t.Fatal(err)
		}
		if owner := n.ring.Owner(key); owner != n.cfg.Self {
			return spec, key, owner
		}
	}
	t.Fatal("no remotely-owned key in 64 seeds — ring balance is broken")
	return scheduler.JobSpec{}, simcache.Key{}, ""
}

// TestRoutingDecision covers every leg of shouldRunLocally: forward to
// a live owner, run locally on hop exhaustion, serve a replicated entry
// locally, and fall to the successor (ultimately self) as peers die.
func TestRoutingDecision(t *testing.T) {
	n := newTestNode(t)
	_, key, owner := remoteKey(t, n)

	if got, local := n.shouldRunLocally(key, 0); local || got != owner {
		t.Fatalf("fresh submission: local=%v owner=%s, want forward to %s", local, got, owner)
	}
	// Hop budget exhausted: the loop guard runs it here no matter who
	// owns it.
	if _, local := n.shouldRunLocally(key, n.cfg.MaxHops); !local {
		t.Fatal("hop-exhausted submission was not run locally")
	}
	// A replicated result in the local store short-circuits forwarding.
	if err := n.sched.InstallResult(key.String(), []byte(`{"replicated":true}`)); err != nil {
		t.Fatal(err)
	}
	if _, local := n.shouldRunLocally(key, 0); !local {
		t.Fatal("locally cached key was forwarded")
	}
}

// TestRoutingFallsToSuccessor: as owners die, ownership walks the ring
// to the first routable candidate, ending at self.
func TestRoutingFallsToSuccessor(t *testing.T) {
	n := newTestNode(t)
	_, key, _ := remoteKey(t, n)
	cands := n.ring.Candidates(key, 3)

	for i, dead := range cands {
		if dead == n.cfg.Self {
			// Once the walk reaches self the submission runs here.
			if _, local := n.shouldRunLocally(key, 0); !local {
				t.Fatalf("step %d: self elected but not local", i)
			}
			break
		}
		if got, local := n.shouldRunLocally(key, 0); local || got != dead {
			t.Fatalf("step %d: local=%v owner=%s, want forward to %s", i, local, got, dead)
		}
		n.members.ReportFailure(dead, errors.New("test kill"))
	}
}

// TestIDPrefixPerNode: each peer derives a distinct prefix from its
// sorted index, so job IDs cannot collide across the cluster.
func TestIDPrefixPerNode(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	seen := make(map[string]bool)
	for i, self := range peers {
		n, err := NewNode(Config{Self: self, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		p := n.IDPrefix()
		if seen[p] {
			t.Fatalf("duplicate ID prefix %q", p)
		}
		seen[p] = true
		if !strings.HasPrefix(p, "j") || !strings.HasSuffix(p, "-") {
			t.Fatalf("prefix %q does not look like j<i>-", p)
		}
		n.Close()
		_ = i
	}
}

// TestAcceptReplica: the replication landing point validates key and
// document before installing.
func TestAcceptReplica(t *testing.T) {
	n := newTestNode(t)
	_, key, _ := remoteKey(t, n)

	if err := n.acceptReplica("not-hex", []byte(`{}`)); err == nil {
		t.Error("bad key accepted")
	}
	if err := n.acceptReplica(key.String(), []byte(`{broken`)); err == nil {
		t.Error("invalid JSON accepted")
	}
	if err := n.acceptReplica(key.String(), []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if !n.sched.Cached(key) {
		t.Fatal("replica not installed in the store")
	}
	if got := n.Info().ReplicationsIn; got != 1 {
		t.Fatalf("replications_in = %d, want 1", got)
	}
}

// TestNodeValidation: config errors surface at construction.
func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{Peers: []string{"http://a"}}); err == nil {
		t.Error("missing Self accepted")
	}
	if _, err := NewNode(Config{Self: "http://z", Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Error("Self outside Peers accepted")
	}
}
