package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"ndpext/internal/client"
	"ndpext/internal/server/scheduler"
)

// replicaMaxBody bounds PUT /v1/cluster/cache bodies: result documents
// are tens of KiB; megabytes is an accident.
const replicaMaxBody = 8 << 20

// NewHandler wraps a node's single-node HTTP handler with the cluster
// routes:
//
//	POST /v1/jobs                  route by content address: run locally
//	                               or forward to the owning peer
//	GET  /v1/jobs/{id}             local job, or proxied to the peer the
//	GET  /v1/jobs/{id}/result      submission was forwarded to
//	GET  /v1/jobs/{id}/events      SSE proxied with reconnect/replay
//	POST /v1/batch  (and /batch)   fan the matrix out across the ring
//	GET  /v1/batch/{id}            cluster batches ("cb-" IDs); local
//	GET  /v1/batch/{id}/result     ("b-") batches fall through to inner
//	GET  /v1/batch/{id}/events     multiplexed SSE from every owner
//	PUT  /v1/cluster/cache/{key}   accept a replicated result document
//	GET  /v1/cluster               the node's ring/membership document
//
// Everything else — listings, stats, healthz, traces — falls through to
// inner unchanged. inner is deliberately typed http.Handler, not the
// transport package's concrete type: cluster sits beside transport at
// the HTTP edge and neither imports the other.
func NewHandler(n *Node, inner http.Handler) http.Handler {
	h := &handler{n: n, inner: inner}
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("POST /v1/jobs", h.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", h.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", h.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", h.handleJobEvents)
	mux.HandleFunc("POST /v1/batch", h.handleBatchSubmit)
	mux.HandleFunc("POST /batch", h.handleBatchSubmit)
	mux.HandleFunc("GET /v1/batch/{id}", h.handleBatchStatus)
	mux.HandleFunc("GET /v1/batch/{id}/result", h.handleBatchResult)
	mux.HandleFunc("GET /v1/batch/{id}/events", h.handleBatchEvents)
	mux.HandleFunc("PUT /v1/cluster/cache/{key}", h.handleReplica)
	mux.HandleFunc("GET /v1/cluster", h.handleInfo)
	return mux
}

type handler struct {
	n     *Node
	inner http.Handler
}

// Local copies of the transport JSON/SSE helpers: cluster and transport
// sit side by side at the HTTP edge and must not import each other.

type errorDoc struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorDoc{Error: err.Error()})
}

func sseWriter(w http.ResponseWriter) http.Flusher {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported"))
		return nil
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return fl
}

// writeSSERaw emits one event whose payload is already JSON.
func writeSSERaw(w http.ResponseWriter, fl http.Flusher, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	fl.Flush()
}

// writeSSE emits one event, marshaling the payload; marshal failures
// degrade to an inline error object rather than killing the stream.
func writeSSE(w http.ResponseWriter, fl http.Flusher, event string, data any) {
	body, err := json.Marshal(data)
	if err != nil {
		body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	writeSSERaw(w, fl, event, body)
}

// writeAPIError maps a client-layer error from a peer onto this
// response: API verdicts pass through with their status, transport
// failures become 502.
func writeAPIError(w http.ResponseWriter, peer string, err error) {
	var apiErr *client.APIError
	switch {
	case errors.Is(err, client.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.As(err, &apiErr):
		writeError(w, apiErr.StatusCode, errors.New(apiErr.Message))
	default:
		writeError(w, http.StatusBadGateway,
			fmt.Errorf("cluster: peer %s unreachable: %w", peer, err))
	}
}

// serveInner replays the buffered body into the wrapped single-node
// handler — the "run it here" leg of routing.
func (h *handler) serveInner(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	h.inner.ServeHTTP(w, r2)
}

// readBody buffers a submission body (the router must both decode it
// and be able to replay it into the inner handler). Size errors are
// left to the inner handler's MaxBytesReader: an oversized body simply
// routes locally and gets the canonical 413.
func (h *handler) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	r.Body.Close()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	return body, true
}

// decodeStrict mirrors the transport's strict decoding so the router
// and the inner handler agree on what parses.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleSubmit routes one submission by its content address: local when
// this node owns the key (or holds a replica, or the hop budget is
// spent), forwarded to the owner otherwise, falling to the ring
// successor — and ultimately to local execution — as peers fail.
// Undecodable and unkeyable bodies route locally so the inner handler
// produces the canonical error response.
func (h *handler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	inHops := hops(r)
	if inHops > 0 {
		h.n.forwardsIn.Add(1)
	}
	var spec scheduler.JobSpec
	if decodeStrict(body, &spec) != nil {
		h.serveInner(w, r, body)
		return
	}
	key, err := h.n.sched.KeyFor(spec)
	if err != nil {
		h.serveInner(w, r, body)
		return
	}
	for attempt := 0; attempt < cellRouteAttempts; attempt++ {
		owner, local := h.n.shouldRunLocally(key, inHops)
		if local {
			h.n.cellsOwned.Add(1)
			h.serveInner(w, r, body)
			return
		}
		cl := h.n.forwardClient(owner, inHops+1)
		st, err := cl.Submit(r.Context(), spec)
		if err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) {
				// The owner answered and rejected (bad spec, quarantined
				// trace, backpressure): its verdict is the response.
				writeError(w, apiErr.StatusCode, errors.New(apiErr.Message))
				return
			}
			h.n.members.ReportFailure(owner, err)
			h.n.cfg.Logf("cluster: forward to %s failed (%v); re-routing", owner, err)
			continue
		}
		h.n.forwardsOut.Add(1)
		h.n.recordRoute(st.ID, owner)
		st.Owner = owner
		code := http.StatusAccepted
		if st.State.Terminal() {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
		return
	}
	h.n.cellsOwned.Add(1)
	h.serveInner(w, r, body)
}

// handleJobStatus serves a local job from the inner handler or proxies
// a forwarded job to the peer that took it.
func (h *handler) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	peer, ok := h.n.routeFor(id)
	if !ok {
		h.inner.ServeHTTP(w, r)
		return
	}
	st, err := client.New(peer, h.n.cfg.Client).Job(r.Context(), id)
	if err != nil {
		writeAPIError(w, peer, err)
		return
	}
	st.Owner = peer
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult proxies a forwarded job's result document verbatim.
func (h *handler) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	peer, ok := h.n.routeFor(id)
	if !ok {
		h.inner.ServeHTTP(w, r)
		return
	}
	doc, err := client.New(peer, h.n.cfg.Client).Result(r.Context(), id)
	if err != nil {
		writeAPIError(w, peer, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// handleJobEvents re-emits a forwarded job's SSE stream through this
// node. The client layer's replay-then-follow reconnect does the heavy
// lifting: a dropped upstream connection resumes from the owner's
// replay without the downstream consumer noticing.
func (h *handler) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	peer, ok := h.n.routeFor(id)
	if !ok {
		h.inner.ServeHTTP(w, r)
		return
	}
	fl := sseWriter(w)
	if fl == nil {
		return
	}
	for ev := range client.New(peer, h.n.cfg.Client).Events(r.Context(), id) {
		writeSSERaw(w, fl, ev.Type, ev.Data)
	}
}

// handleBatchSubmit fans a matrix out across the ring. Unlike a single
// node's atomic all-or-nothing admission, cluster admission is per-cell
// best-effort: cells land on different peers, so one full peer fails
// its cells rather than rejecting the whole matrix. The response is
// always 202 — cells complete asynchronously even when fully cached.
func (h *handler) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := h.readBody(w, r)
	if !ok {
		return
	}
	var spec scheduler.BatchSpec
	if decodeStrict(body, &spec) != nil {
		h.serveInner(w, r, body)
		return
	}
	b, err := h.n.SubmitBatch(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, b.status())
}

// clusterBatchID reports whether id names a cluster batch; single-node
// ("b-") batch IDs fall through to the inner handler.
func clusterBatchID(id string) bool { return strings.HasPrefix(id, "cb-") }

func (h *handler) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !clusterBatchID(id) {
		h.inner.ServeHTTP(w, r)
		return
	}
	b, ok := h.n.batch(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", id))
		return
	}
	writeJSON(w, http.StatusOK, b.status())
}

func (h *handler) handleBatchResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !clusterBatchID(id) {
		h.inner.ServeHTTP(w, r)
		return
	}
	b, ok := h.n.batch(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", id))
		return
	}
	doc, err := b.resultDoc()
	if err != nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("batch %s is %s; no matrix document yet", b.id, b.state()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// batchEventDoc matches the single-node multiplexed SSE payload shape:
// the cell's matrix position wrapping the original event payload.
type batchEventDoc struct {
	Cell     int             `json:"cell"`
	Design   string          `json:"design"`
	Workload string          `json:"workload,omitempty"`
	Trace    string          `json:"trace,omitempty"`
	Data     json.RawMessage `json:"data"`
}

// handleBatchEvents streams a cluster batch's multiplexed progress:
// replay-then-follow over the hub, events from every owning peer
// interleaved, and a final "batch" event with the terminal status. A
// cell re-routed mid-flight may replay events already delivered —
// consumers see a superset, never a gap.
func (h *handler) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !clusterBatchID(id) {
		h.inner.ServeHTTP(w, r)
		return
	}
	b, ok := h.n.batch(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such batch %q", id))
		return
	}
	fl := sseWriter(w)
	if fl == nil {
		return
	}
	ch, unsub := b.hub.subscribe()
	defer unsub()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				writeSSE(w, fl, "batch", b.status())
				return
			}
			writeSSE(w, fl, ev.Type, batchEventDoc{
				Cell: ev.Cell, Design: ev.Design, Workload: ev.Workload,
				Trace: ev.Trace, Data: ev.Data,
			})
		case <-r.Context().Done():
			return
		}
	}
}

// handleReplica accepts a result document pushed by a peer's OnStored
// hook and installs it in the local store.
func (h *handler) handleReplica(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, replicaMaxBody))
	r.Body.Close()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading replica body: %w", err))
		return
	}
	if err := h.n.acceptReplica(r.PathValue("key"), body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleInfo serves the node's cluster document.
func (h *handler) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.n.Info())
}
