package sim

import "fmt"

// Time is simulated time in picoseconds. Picosecond resolution lets the
// model mix 2 GHz core cycles (500 ps), 1.5 ns NoC hops, and 200 ns CXL
// link latencies without rounding error, while an int64 still spans
// over 100 days of simulated time.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromNS converts a duration in nanoseconds to Time.
func FromNS(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// NS reports t in nanoseconds.
func (t Time) NS() float64 { return float64(t) / float64(Nanosecond) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock converts between a component's cycles and Time.
type Clock struct {
	period Time // duration of one cycle
}

// NewClock returns a clock running at freqMHz.
func NewClock(freqMHz float64) Clock {
	if freqMHz <= 0 {
		panic("sim: NewClock requires a positive frequency")
	}
	return Clock{period: Time(1e6 / freqMHz)} // 1e6 ps per us / MHz
}

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return c.period }

// The representable Time range (maxTime is about 106 days).
const (
	maxTime = Time(1<<63 - 1)
	minTime = -maxTime - 1
)

// Cycles converts n cycles to a duration, saturating at the Time range
// instead of wrapping. Saturation matters for watchdog budgets: a caller
// passing a huge MaxCycles (e.g. from an external job spec) must get an
// effectively-infinite deadline, not a wrapped-negative one that would
// truncate the run at time zero. The common case (small counts, small
// periods — every per-access latency conversion) stays a single multiply.
func (c Clock) Cycles(n int64) Time {
	if uint64(n) < 1<<31 && uint64(c.period) < 1<<31 {
		return Time(n) * c.period // cannot overflow: product < 2^62
	}
	return c.cyclesSlow(n)
}

func (c Clock) cyclesSlow(n int64) Time {
	if c.period <= 0 {
		return 0 // zero-value Clock; NewClock guarantees period > 0
	}
	if n >= 0 {
		if Time(n) > maxTime/c.period {
			return maxTime
		}
		return Time(n) * c.period
	}
	if Time(n) < minTime/c.period {
		return minTime
	}
	return Time(n) * c.period
}

// ToCycles converts a duration to whole cycles (rounding down).
func (c Clock) ToCycles(t Time) int64 { return int64(t / c.period) }
