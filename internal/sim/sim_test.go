package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/100 identical draws", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children with different ids produced identical first draw")
	}
	// Splitting must not consume from the parent stream.
	p1 := NewRNG(7)
	_ = p1.Split(1)
	p2 := NewRNG(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split consumed parent entropy")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 8, 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[99] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[99]=%d", counts[0], counts[99])
	}
	// Rank-0 frequency should be roughly 1/H(1000) of all draws (~13%).
	frac := float64(counts[0]) / 100000
	if frac < 0.08 || frac > 0.22 {
		t.Fatalf("Zipf head frequency %.3f implausible for s=1", frac)
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1.0)
}

func TestTimeConversions(t *testing.T) {
	if FromNS(1.5) != 1500*Picosecond {
		t.Fatalf("FromNS(1.5) = %v", FromNS(1.5))
	}
	if got := (2 * Microsecond).NS(); got != 2000 {
		t.Fatalf("NS() = %v, want 2000", got)
	}
	if s := (1500 * Picosecond).String(); s != "1.50ns" {
		t.Fatalf("String = %q", s)
	}
	if s := (250 * Picosecond).String(); s != "250ps" {
		t.Fatalf("String = %q", s)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(2000) // 2 GHz => 500 ps period
	if c.Period() != 500*Picosecond {
		t.Fatalf("period = %v", c.Period())
	}
	if c.Cycles(3) != 1500*Picosecond {
		t.Fatalf("Cycles(3) = %v", c.Cycles(3))
	}
	if c.ToCycles(1600*Picosecond) != 3 {
		t.Fatalf("ToCycles = %d", c.ToCycles(1600*Picosecond))
	}
}

func TestClockPanicsOnZeroFreq(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0)
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.Push(30, 3)
	q.Push(10, 1)
	q.Push(20, 2)
	var got []int
	for q.Len() > 0 {
		got = append(got, q.Pop().ID)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestEventQueueTieBreakFIFO(t *testing.T) {
	var q EventQueue
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 10; i++ {
		if e := q.Pop(); e.ID != i {
			t.Fatalf("tie-break: got %d at position %d", e.ID, i)
		}
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q EventQueue
	q.Push(7, 42)
	if e := q.Peek(); e.ID != 42 || e.When != 7 {
		t.Fatalf("Peek = %+v", e)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the event")
	}
}

// Property: events pop in nondecreasing time order regardless of insertion order.
func TestEventQueueProperty(t *testing.T) {
	f := func(times []uint32) bool {
		var q EventQueue
		for i, tt := range times {
			q.Push(Time(tt), i)
		}
		last := Time(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.When < last {
				return false
			}
			last = e.When
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceContention(t *testing.T) {
	var r Resource
	s, e := r.Acquire(100, 50)
	if s != 100 || e != 150 {
		t.Fatalf("first acquire: start=%v end=%v", s, e)
	}
	// Arriving before the resource is free waits.
	s, e = r.Acquire(120, 30)
	if s != 150 || e != 180 {
		t.Fatalf("queued acquire: start=%v end=%v", s, e)
	}
	// Arriving after it's free starts immediately.
	s, e = r.Acquire(500, 10)
	if s != 500 || e != 510 {
		t.Fatalf("idle acquire: start=%v end=%v", s, e)
	}
	if r.BusyTotal() != 90 {
		t.Fatalf("BusyTotal = %v, want 90", r.BusyTotal())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.BusyTotal() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: reservations never overlap and never start before the
// request time, even with out-of-order arrivals (gap-filling).
func TestResourceProperty(t *testing.T) {
	f := func(reqs []struct {
		At  uint16
		Dur uint8
	}) bool {
		var r Resource
		type span struct{ s, e Time }
		var spans []span
		for _, req := range reqs {
			at := Time(req.At)
			dur := Time(req.Dur)
			s, e := r.Acquire(at, dur)
			if s < at || e != s+dur {
				return false
			}
			if dur > 0 {
				for _, sp := range spans {
					if s < sp.e && sp.s < e {
						return false // overlap
					}
				}
				spans = append(spans, span{s, e})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Gap-filling: a far-future reservation must not delay an earlier arrival
// that fits in the idle gap before it (the NoC collapse regression).
func TestResourceGapFill(t *testing.T) {
	var r Resource
	s, e := r.Acquire(1000, 50) // future reservation at [1000, 1050)
	if s != 1000 || e != 1050 {
		t.Fatalf("future reservation at %v-%v", s, e)
	}
	s, e = r.Acquire(10, 20) // earlier arrival: idle gap before 1000
	if s != 10 || e != 30 {
		t.Fatalf("early arrival got %v-%v, want 10-30", s, e)
	}
	// A request that does not fit the gap goes after the reservation.
	s, _ = r.Acquire(990, 50)
	if s != 1050 {
		t.Fatalf("non-fitting request started at %v, want 1050", s)
	}
	// An exactly fitting gap is used.
	s, e = r.Acquire(30, 960)
	if s != 30 || e != 990 {
		t.Fatalf("exact-fit got %v-%v, want 30-990", s, e)
	}
}

func TestResourcePruningBoundsMemory(t *testing.T) {
	var r Resource
	// Far more reservations than maxIntervals, with strictly increasing
	// arrivals: the interval list must stay bounded.
	at := Time(0)
	for i := 0; i < 100000; i++ {
		at += 1000
		r.Acquire(at, 1) // 1ps each: never merge
	}
	if n := r.n; n > maxIntervals {
		t.Fatalf("interval list grew to %d (> %d)", n, maxIntervals)
	}
	// BusyTotal survives pruning.
	if r.BusyTotal() != 100000 {
		t.Fatalf("BusyTotal = %v", r.BusyTotal())
	}
}

func TestResourceFloorAfterPrune(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	// Jump far ahead so the first interval prunes into the floor.
	r.Acquire(pruneWindow*4, 10)
	// A straggler arriving before the floor is clamped to it, never
	// placed inside the pruned past.
	s, _ := r.Acquire(0, 5)
	if s < 10 {
		t.Fatalf("straggler scheduled at %v inside the pruned region", s)
	}
}

func TestResourceMergeAdjacent(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)  // [0,10)
	r.Acquire(0, 10)  // [10,20) -- merges with previous
	r.Acquire(50, 10) // [50,60)
	r.Acquire(20, 30) // exactly fills [20,50): everything merges
	if n := r.n; n != 1 {
		t.Fatalf("intervals = %d, want 1 after merges", n)
	}
	if r.FreeAt() != 60 {
		t.Fatalf("FreeAt = %v, want 60", r.FreeAt())
	}
}

func TestZeroDurationAcquire(t *testing.T) {
	var r Resource
	r.Acquire(100, 50)
	s, e := r.Acquire(120, 0)
	if s != 120 || e != 120 {
		t.Fatalf("zero-duration acquire = %v..%v, want instant at request time", s, e)
	}
	if r.BusyTotal() != 50 {
		t.Fatal("zero-duration acquire changed busy accounting")
	}
}
