// Package sim provides the discrete-event simulation kernel used by the
// NDPExt reproduction: a deterministic pseudo-random source, a time type,
// an event heap, and busy-until resource reservation.
//
// Everything in the simulator that needs randomness draws from RNG seeded
// explicitly, so a given configuration always produces identical results.
package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 for seeding, xoshiro256** for the stream). It is not
// safe for concurrent use; give each concurrent component its own RNG
// via Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r, keyed by id. The parent
// stream is unaffected, so components created in a fixed order receive
// stable sub-streams even if their own consumption patterns change.
func (r *RNG) Split(id uint64) *RNG {
	x := r.s[0] ^ bits.RotateLeft64(r.s[2], 17) ^ (id * 0x9e3779b97f4a7c15)
	return NewRNG(splitmix64(&x))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with n == 0")
	}
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, n)
		if lo >= n || lo >= uint64(-n)%n {
			return hi
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s using precomputed cumulative weights. Create one with NewZipf.
type Zipf struct {
	rng *RNG
	cum []float64 // cumulative, normalized to cum[n-1] == 1
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0.
// It panics if n <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf called with n <= 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0 / pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{rng: rng, cum: cum}
}

// Next returns the next Zipf-distributed sample.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cum[i] >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pow is math.Pow; aliased so the sampler code reads naturally.
func pow(base, exp float64) float64 { return math.Pow(base, exp) }
