package sim

import "testing"

// Pruning folds only intervals strictly older than t-pruneWindow into the
// floor: an interval ending exactly at the window edge must survive.
func TestResourcePruneWindowEdge(t *testing.T) {
	var r Resource
	r.Acquire(0, 10) // [0,10)

	// Arrival with t-pruneWindow == 10: the old interval ends exactly at
	// the cutoff and must be kept.
	r.Acquire(pruneWindow+10, 1)
	if r.n != 2 || r.floor != 0 {
		t.Fatalf("interval at the window edge pruned: ivals=%d floor=%v", r.n, r.floor)
	}

	// One tick later the old interval is strictly past the window: it
	// folds into the floor (and the two recent intervals merge).
	r.Acquire(pruneWindow+11, 1)
	if r.n != 1 {
		t.Fatalf("ivals = %d after pruning, want 1", r.n)
	}
	if r.floor != 10 {
		t.Fatalf("floor = %v, want 10 (end of the pruned interval)", r.floor)
	}

	// A straggler before the floor is clamped to it, never placed in the
	// pruned past.
	if s, _ := r.Acquire(0, 5); s != 10 {
		t.Fatalf("straggler start = %v, want floor 10", s)
	}
}

// The interval list is capped at exactly maxIntervals; the overflow folds
// the oldest interval into the floor while preserving totals.
func TestResourceMaxIntervalsEdge(t *testing.T) {
	var r Resource
	// maxIntervals gap-separated 1ps reservations: all kept (the whole
	// span, 3*maxIntervals ps, is far below pruneWindow so only the count
	// cap can prune).
	for i := 0; i < maxIntervals; i++ {
		r.Acquire(Time(3*i), 1)
	}
	if r.n != maxIntervals || r.floor != 0 {
		t.Fatalf("at the cap: ivals=%d floor=%v", r.n, r.floor)
	}

	// One more overflows: the oldest interval folds into the floor and the
	// list stays at the cap.
	r.Acquire(Time(3*maxIntervals), 1)
	if r.n != maxIntervals {
		t.Fatalf("ivals = %d after overflow, want %d", r.n, maxIntervals)
	}
	if r.floor != 1 {
		t.Fatalf("floor = %v, want 1 (end of the evicted interval)", r.floor)
	}
	if r.BusyTotal() != Time(maxIntervals+1) {
		t.Fatalf("BusyTotal = %v, want %d (must survive pruning)", r.BusyTotal(), maxIntervals+1)
	}
	if r.FreeAt() != Time(3*maxIntervals+1) {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}

	// The floor now forbids reservations in the folded region even though
	// the gap before interval 0 looks free.
	if s, _ := r.Acquire(0, 1); s < 1 {
		t.Fatalf("reservation at %v inside the folded region", s)
	}
}
