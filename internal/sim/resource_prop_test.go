package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// refResource is the pre-ring slice implementation of Resource, kept
// verbatim as the reference oracle: the ring buffer must produce the
// identical (start, end) for every Acquire in any call sequence, the
// same FreeAt, BusyTotal, floor, and the same logical interval list.
type refResource struct {
	floor     Time
	ivals     []ival
	busyTotal Time
}

func (r *refResource) Acquire(t Time, dur Time) (start, end Time) {
	if t < r.floor {
		t = r.floor
	}
	if dur <= 0 {
		return t, t
	}
	i := sort.Search(len(r.ivals), func(i int) bool { return r.ivals[i].end > t })
	cur := t
	for ; i < len(r.ivals); i++ {
		if cur+dur <= r.ivals[i].start {
			break
		}
		if r.ivals[i].end > cur {
			cur = r.ivals[i].end
		}
	}
	start, end = cur, cur+dur
	r.insert(i, ival{start, end})
	r.busyTotal += dur
	r.prune(t)
	return start, end
}

func (r *refResource) insert(i int, iv ival) {
	mergedPrev := i > 0 && r.ivals[i-1].end == iv.start
	mergedNext := i < len(r.ivals) && r.ivals[i].start == iv.end
	switch {
	case mergedPrev && mergedNext:
		r.ivals[i-1].end = r.ivals[i].end
		r.ivals = append(r.ivals[:i], r.ivals[i+1:]...)
	case mergedPrev:
		r.ivals[i-1].end = iv.end
	case mergedNext:
		r.ivals[i].start = iv.start
	default:
		r.ivals = append(r.ivals, ival{})
		copy(r.ivals[i+1:], r.ivals[i:])
		r.ivals[i] = iv
	}
}

func (r *refResource) prune(t Time) {
	cut := 0
	for cut < len(r.ivals) && r.ivals[cut].end < t-pruneWindow {
		cut++
	}
	for len(r.ivals)-cut > maxIntervals {
		cut++
	}
	if cut > 0 {
		if e := r.ivals[cut-1].end; e > r.floor {
			r.floor = e
		}
		r.ivals = r.ivals[cut:]
	}
}

func (r *refResource) FreeAt() Time {
	if len(r.ivals) == 0 {
		return r.floor
	}
	return r.ivals[len(r.ivals)-1].end
}

// checkState compares the ring's full logical state against the
// reference after each step.
func checkState(t *testing.T, step int, got *Resource, want *refResource) {
	t.Helper()
	if got.n != len(want.ivals) {
		t.Fatalf("step %d: interval count %d, want %d", step, got.n, len(want.ivals))
	}
	for i := range want.ivals {
		if *got.at(i) != want.ivals[i] {
			t.Fatalf("step %d: interval %d = %+v, want %+v", step, i, *got.at(i), want.ivals[i])
		}
	}
	if got.floor != want.floor {
		t.Fatalf("step %d: floor %v, want %v", step, got.floor, want.floor)
	}
	if got.busyTotal != want.busyTotal {
		t.Fatalf("step %d: busyTotal %v, want %v", step, got.busyTotal, want.busyTotal)
	}
	if got.FreeAt() != want.FreeAt() {
		t.Fatalf("step %d: FreeAt %v, want %v", step, got.FreeAt(), want.FreeAt())
	}
}

// TestResourceRingMatchesReference drives the ring buffer and the slice
// reference through identical randomized Acquire sequences and demands
// bit-identical results and interval state at every step. The workload
// mixes mostly-monotonic arrivals (the event loop's real pattern) with
// out-of-order stragglers, zero/huge durations, exact-fit gaps, and
// far-future jumps that trigger pruning.
func TestResourceRingMatchesReference(t *testing.T) {
	type scenario struct {
		name  string
		seed  uint64
		steps int
		next  func(rng *rand.Rand, now *Time) (t, dur Time)
	}
	scenarios := []scenario{
		{"mostly-monotonic", 1, 20000, func(rng *rand.Rand, now *Time) (Time, Time) {
			*now += Time(rng.Int64N(2000))
			t := *now - Time(rng.Int64N(500)) // bounded skew backwards
			return t, Time(rng.Int64N(1500))
		}},
		{"dense-merging", 2, 20000, func(rng *rand.Rand, now *Time) (Time, Time) {
			// Durations and arrivals on a coarse grid so exact-touch
			// merges (both-sides included) happen constantly.
			*now += Time(rng.Int64N(4)) * 100
			return *now, Time(1+rng.Int64N(4)) * 100
		}},
		{"front-loaded", 3, 20000, func(rng *rand.Rand, now *Time) (Time, Time) {
			// A far-future reservation early on, then arrivals that fill
			// gaps near the front of a long list.
			if *now == 0 {
				*now = 1
				return pruneWindow / 2, pruneWindow / 4
			}
			return Time(rng.Int64N(int64(pruneWindow / 2))), Time(1 + rng.Int64N(50))
		}},
		{"prune-heavy", 4, 5000, func(rng *rand.Rand, now *Time) (Time, Time) {
			// Occasional jumps past the prune window fold the front.
			if rng.Int64N(100) == 0 {
				*now += pruneWindow * 2
			}
			*now += Time(rng.Int64N(300))
			return *now, Time(rng.Int64N(200))
		}},
		{"adversarial", 5, 20000, func(rng *rand.Rand, now *Time) (Time, Time) {
			*now += Time(rng.Int64N(50))
			switch rng.Int64N(5) {
			case 0:
				return *now, 0 // zero duration: no reservation
			case 1:
				return *now, Time(rng.Int64N(int64(pruneWindow))) // huge
			default:
				return *now - Time(rng.Int64N(1000)), Time(rng.Int64N(64))
			}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(sc.seed, 0xdecade))
			var got Resource
			var want refResource
			var now Time
			for step := 0; step < sc.steps; step++ {
				at, dur := sc.next(rng, &now)
				gs, ge := got.Acquire(at, dur)
				ws, we := want.Acquire(at, dur)
				if gs != ws || ge != we {
					t.Fatalf("step %d: Acquire(%v, %v) = (%v, %v), want (%v, %v)",
						step, at, dur, gs, ge, ws, we)
				}
				checkState(t, step, &got, &want)
			}
		})
	}
}

// TestResourceOverflowCapMatchesReference pushes both implementations
// past maxIntervals so the count-cap pruning path is compared too.
func TestResourceOverflowCapMatchesReference(t *testing.T) {
	var got Resource
	var want refResource
	for i := 0; i < maxIntervals+500; i++ {
		at := Time(3 * i) // gap-separated: never merge
		gs, ge := got.Acquire(at, 1)
		ws, we := want.Acquire(at, 1)
		if gs != ws || ge != we {
			t.Fatalf("i=%d: (%v,%v) vs (%v,%v)", i, gs, ge, ws, we)
		}
	}
	checkState(t, maxIntervals+500, &got, &want)
}
