package sim

// Resource models a unit-capacity hardware resource (a NoC link, a DRAM
// bank, a CXL lane group) with interval reservation: a request arriving
// at time t occupies the resource for dur starting at the earliest gap of
// length dur at or after t.
//
// Gap-filling (rather than a single busy-until watermark) matters because
// the simulator resolves a whole memory access at once: a miss reserves
// its response-path links hundreds of nanoseconds in the future, and a
// plain busy-until model would make those far-future reservations block
// earlier arrivals on links that are actually idle, collapsing the
// network at a few percent utilization. Interval reservation keeps the
// capacity accounting exact while letting earlier traffic use the gaps.
//
// The interval list is a power-of-two ring buffer rather than a plain
// slice. Most insertions land near the front of the list (gap-filling
// close to the arrival time, while response-path reservations extend the
// tail far into the future), and a slice insert pays a memmove of every
// interval after the insertion point — profiling showed that memmove as
// the simulator's single largest CPU line. The ring shifts whichever
// side of the insertion point is shorter and prunes the front in O(1);
// the logical interval sequence, and therefore every Acquire result, is
// identical to the slice implementation's (TestResourceRingMatchesReference).
type Resource struct {
	floor     Time   // time before which no reservation can start
	buf       []ival // ring storage; len is zero or a power of two
	head      int    // physical index of logical interval 0
	n         int    // live intervals, disjoint and sorted by start
	busyTotal Time
}

type ival struct {
	start, end Time
}

// pruneWindow bounds how far in the past an Acquire arrival may be
// relative to the latest pruning point; intervals older than this are
// folded into the floor. The event loop's arrival skew is bounded by the
// longest single memory access (microseconds), far below this window.
const pruneWindow = 200 * Microsecond

// maxIntervals caps the reservation list; beyond it the oldest intervals
// fold into the floor (turning gap-filling into busy-until for the
// pathological tail).
const maxIntervals = 8192

// at returns the interval at logical index i.
func (r *Resource) at(i int) *ival {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Acquire reserves the resource for dur at the earliest gap at or after
// t. It returns the actual start time and the completion time.
func (r *Resource) Acquire(t Time, dur Time) (start, end Time) {
	if t < r.floor {
		t = r.floor
	}
	if dur <= 0 {
		return t, t
	}
	// Find the first interval that ends after t; gaps before it cannot
	// serve the request.
	lo, hi := 0, r.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.at(mid).end > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	cur := t
	for ; i < r.n; i++ {
		iv := r.at(i)
		if cur+dur <= iv.start {
			break // fits in the gap before interval i
		}
		if iv.end > cur {
			cur = iv.end
		}
	}
	start, end = cur, cur+dur
	r.insert(i, ival{start, end})
	r.busyTotal += dur
	r.prune(t)
	return start, end
}

// insert places iv at logical index i, merging with touching neighbours.
func (r *Resource) insert(i int, iv ival) {
	mergedPrev := i > 0 && r.at(i-1).end == iv.start
	mergedNext := i < r.n && r.at(i).start == iv.end
	switch {
	case mergedPrev && mergedNext:
		r.at(i - 1).end = r.at(i).end
		r.removeAt(i)
	case mergedPrev:
		r.at(i - 1).end = iv.end
	case mergedNext:
		r.at(i).start = iv.start
	default:
		r.insertAt(i, iv)
	}
}

// insertAt opens a slot at logical index i by shifting whichever side of
// the insertion point is shorter, then stores iv there.
func (r *Resource) insertAt(i int, iv ival) {
	if r.n == len(r.buf) {
		r.grow()
	}
	if i <= r.n-i {
		r.head = (r.head - 1) & (len(r.buf) - 1)
		r.shiftFrontLeft(i)
	} else {
		r.shiftTailRight(i)
	}
	r.n++
	*r.at(i) = iv
}

// shiftFrontLeft moves logical intervals [0, i) — addressed at the OLD
// head, i.e. the slot after the freshly decremented r.head — one
// physical slot back. The moved range spans at most two contiguous
// physical segments; each is one overlapping copy plus at most one
// element carried across the array boundary.
func (r *Resource) shiftFrontLeft(i int) {
	if i == 0 {
		return
	}
	mask := len(r.buf) - 1
	src := (r.head + 1) & mask // old head
	n1 := min(i, len(r.buf)-src)
	if src == 0 {
		// The first element wraps onto the top slot; with src == 0 the
		// whole range is one segment ([0, i) fits below len).
		r.buf[mask] = r.buf[0]
		copy(r.buf[:n1-1], r.buf[1:n1])
		return
	}
	copy(r.buf[src-1:src-1+n1], r.buf[src:src+n1])
	// Wrapped remainder [0, i-n1): its first element crosses onto the
	// top slot (just vacated by segment one), the rest shift within.
	if n2 := i - n1; n2 > 0 {
		r.buf[mask] = r.buf[0]
		copy(r.buf[:n2-1], r.buf[1:n2])
	}
}

// shiftTailRight moves logical intervals [i, n) one physical slot
// forward, moving the logically-later segment first so nothing is
// overwritten.
func (r *Resource) shiftTailRight(i int) {
	cnt := r.n - i
	if cnt == 0 {
		return
	}
	mask := len(r.buf) - 1
	a := (r.head + i) & mask // physical start of the moved range
	n1 := min(cnt, len(r.buf)-a)
	if n2 := cnt - n1; n2 > 0 {
		// Wrapped tail [0, n2) shifts right, then the top element of the
		// first segment crosses the boundary into slot 0.
		copy(r.buf[1:n2+1], r.buf[:n2])
		r.buf[0] = r.buf[mask]
		copy(r.buf[a+1:], r.buf[a:mask])
		return
	}
	if a+n1 == len(r.buf) {
		r.buf[0] = r.buf[mask]
		copy(r.buf[a+1:], r.buf[a:mask])
		return
	}
	copy(r.buf[a+1:a+1+n1], r.buf[a:a+n1])
}

// removeAt deletes the interval at logical index i, closing the gap from
// the shorter side. Removal only happens on a both-sides merge, so the
// per-element walk stays short in practice.
func (r *Resource) removeAt(i int) {
	if i < r.n-1-i {
		for j := i; j > 0; j-- {
			*r.at(j) = *r.at(j - 1)
		}
		r.head = (r.head + 1) & (len(r.buf) - 1)
	} else {
		for j := i; j < r.n-1; j++ {
			*r.at(j) = *r.at(j + 1)
		}
	}
	r.n--
}

// grow doubles and linearizes the ring storage.
func (r *Resource) grow() {
	capNew := len(r.buf) * 2
	if capNew == 0 {
		capNew = 8
	}
	buf := make([]ival, capNew)
	if r.n > 0 {
		n1 := min(r.n, len(r.buf)-r.head)
		copy(buf, r.buf[r.head:r.head+n1])
		copy(buf[n1:], r.buf[:r.n-n1])
	}
	r.buf = buf
	r.head = 0
}

// prune folds intervals far behind the current arrival into the floor.
// Dropping the front of the ring is O(1), so a long-running resource
// never re-copies its surviving intervals the way a pruned slice did.
func (r *Resource) prune(t Time) {
	cut := 0
	for cut < r.n && r.at(cut).end < t-pruneWindow {
		cut++
	}
	for r.n-cut > maxIntervals {
		cut++
	}
	if cut > 0 {
		if e := r.at(cut - 1).end; e > r.floor {
			r.floor = e
		}
		r.head = (r.head + cut) & (len(r.buf) - 1)
		r.n -= cut
	}
}

// FreeAt reports the end of the last reservation (the time after which
// the resource is certainly idle).
func (r *Resource) FreeAt() Time {
	if r.n == 0 {
		return r.floor
	}
	return r.at(r.n - 1).end
}

// BusyTotal reports the cumulative reserved time.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Reset clears the reservation state (used between independent runs).
func (r *Resource) Reset() { *r = Resource{} }
