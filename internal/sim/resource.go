package sim

import "sort"

// Resource models a unit-capacity hardware resource (a NoC link, a DRAM
// bank, a CXL lane group) with interval reservation: a request arriving
// at time t occupies the resource for dur starting at the earliest gap of
// length dur at or after t.
//
// Gap-filling (rather than a single busy-until watermark) matters because
// the simulator resolves a whole memory access at once: a miss reserves
// its response-path links hundreds of nanoseconds in the future, and a
// plain busy-until model would make those far-future reservations block
// earlier arrivals on links that are actually idle, collapsing the
// network at a few percent utilization. Interval reservation keeps the
// capacity accounting exact while letting earlier traffic use the gaps.
type Resource struct {
	floor     Time   // time before which no reservation can start
	ivals     []ival // disjoint busy intervals, sorted by start
	busyTotal Time
}

type ival struct {
	start, end Time
}

// pruneWindow bounds how far in the past an Acquire arrival may be
// relative to the latest pruning point; intervals older than this are
// folded into the floor. The event loop's arrival skew is bounded by the
// longest single memory access (microseconds), far below this window.
const pruneWindow = 200 * Microsecond

// maxIntervals caps the reservation list; beyond it the oldest intervals
// fold into the floor (turning gap-filling into busy-until for the
// pathological tail).
const maxIntervals = 8192

// Acquire reserves the resource for dur at the earliest gap at or after
// t. It returns the actual start time and the completion time.
func (r *Resource) Acquire(t Time, dur Time) (start, end Time) {
	if t < r.floor {
		t = r.floor
	}
	if dur <= 0 {
		return t, t
	}
	// Find the first interval that ends after t; gaps before it cannot
	// serve the request.
	i := sort.Search(len(r.ivals), func(i int) bool { return r.ivals[i].end > t })
	cur := t
	for ; i < len(r.ivals); i++ {
		if cur+dur <= r.ivals[i].start {
			break // fits in the gap before interval i
		}
		if r.ivals[i].end > cur {
			cur = r.ivals[i].end
		}
	}
	start, end = cur, cur+dur
	r.insert(i, ival{start, end})
	r.busyTotal += dur
	r.prune(t)
	return start, end
}

// insert places iv at index i, merging with touching neighbours.
func (r *Resource) insert(i int, iv ival) {
	mergedPrev := i > 0 && r.ivals[i-1].end == iv.start
	mergedNext := i < len(r.ivals) && r.ivals[i].start == iv.end
	switch {
	case mergedPrev && mergedNext:
		r.ivals[i-1].end = r.ivals[i].end
		r.ivals = append(r.ivals[:i], r.ivals[i+1:]...)
	case mergedPrev:
		r.ivals[i-1].end = iv.end
	case mergedNext:
		r.ivals[i].start = iv.start
	default:
		r.ivals = append(r.ivals, ival{})
		copy(r.ivals[i+1:], r.ivals[i:])
		r.ivals[i] = iv
	}
}

// prune folds intervals far behind the current arrival into the floor.
func (r *Resource) prune(t Time) {
	cut := 0
	for cut < len(r.ivals) && r.ivals[cut].end < t-pruneWindow {
		cut++
	}
	for len(r.ivals)-cut > maxIntervals {
		cut++
	}
	if cut > 0 {
		if e := r.ivals[cut-1].end; e > r.floor {
			r.floor = e
		}
		r.ivals = r.ivals[cut:]
	}
}

// FreeAt reports the end of the last reservation (the time after which
// the resource is certainly idle).
func (r *Resource) FreeAt() Time {
	if len(r.ivals) == 0 {
		return r.floor
	}
	return r.ivals[len(r.ivals)-1].end
}

// BusyTotal reports the cumulative reserved time.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Reset clears the reservation state (used between independent runs).
func (r *Resource) Reset() { *r = Resource{} }
