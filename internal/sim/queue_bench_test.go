package sim

import (
	"container/heap"
	"testing"
)

// boxedQueue is the original container/heap-based EventQueue, kept here
// as the benchmark reference: every Push boxes an Event into an `any`
// (one heap allocation) and every comparison goes through interface
// method dispatch. The live EventQueue must beat it by >= 1.5x with zero
// steady-state allocations; BENCH_core.json records the measured ratio.
type boxedQueue struct {
	h      boxedHeap
	nextSq uint64
}

func (q *boxedQueue) Push(t Time, id int) {
	q.nextSq++
	heap.Push(&q.h, Event{When: t, ID: id, seq: q.nextSq})
}

func (q *boxedQueue) Pop() Event { return heap.Pop(&q.h).(Event) }

func (q *boxedQueue) Len() int { return len(q.h) }

type boxedHeap []Event

func (h boxedHeap) Len() int { return len(h) }

func (h boxedHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h boxedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *boxedHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *boxedHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// queueSizes are the resident event counts benchmarked: the simulator
// keeps one event per core in flight, so 8 (unit tests), 128 (the
// default machine), and 1024 (a large sharded run) bracket reality.
var queueSizes = []int{8, 128, 1024}

// nextWhen advances a synthetic event time the way the simulator does:
// mostly small forward steps, occasionally a long extended-memory stall.
func nextWhen(t Time, i int) Time {
	step := Time(500 + (i*7919)%2000)
	if i%37 == 0 {
		step += 200_000 // CXL round trip
	}
	return t + step
}

// BenchmarkQueueSteadyState measures the simulator's event-loop pattern
// on the live EventQueue: pop the earliest event, push its successor.
// This is the tentpole microbenchmark; steady state must not allocate.
func BenchmarkQueueSteadyState(b *testing.B) {
	for _, size := range queueSizes {
		b.Run(benchName(size), func(b *testing.B) {
			var q EventQueue
			t := Time(0)
			for i := 0; i < size; i++ {
				t = nextWhen(t, i)
				q.Push(t, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := q.Pop()
				q.Push(nextWhen(ev.When, i), ev.ID)
			}
		})
	}
}

// BenchmarkBoxedQueueSteadyState is the identical workload on the
// container/heap reference implementation.
func BenchmarkBoxedQueueSteadyState(b *testing.B) {
	for _, size := range queueSizes {
		b.Run(benchName(size), func(b *testing.B) {
			var q boxedQueue
			t := Time(0)
			for i := 0; i < size; i++ {
				t = nextWhen(t, i)
				q.Push(t, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := q.Pop()
				q.Push(nextWhen(ev.When, i), ev.ID)
			}
		})
	}
}

// BenchmarkQueueFillDrain measures the ramp pattern: fill from empty,
// then drain to empty (run startup and teardown).
func BenchmarkQueueFillDrain(b *testing.B) {
	const size = 128
	var q EventQueue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(0)
		for j := 0; j < size; j++ {
			t = nextWhen(t, j)
			q.Push(t, j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

func benchName(size int) string {
	switch size {
	case 8:
		return "events=8"
	case 128:
		return "events=128"
	default:
		return "events=1024"
	}
}
