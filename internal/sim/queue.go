package sim

import "container/heap"

// Event is an entry in the EventQueue: at When, the payload ID becomes
// ready. The simulator stores core indices (or other small handles) in ID
// rather than closures so the hot loop stays allocation-free.
type Event struct {
	When Time
	ID   int
	seq  uint64 // insertion order, for deterministic tie-breaking
}

// EventQueue is a deterministic min-heap of events ordered by (When, seq).
// The zero value is ready to use.
type EventQueue struct {
	h      eventHeap
	nextSq uint64
}

// Push schedules id to become ready at t.
func (q *EventQueue) Push(t Time, id int) {
	q.nextSq++
	heap.Push(&q.h, Event{When: t, ID: id, seq: q.nextSq})
}

// Pop removes and returns the earliest event. It panics if the queue is
// empty; check Len first.
func (q *EventQueue) Pop() Event {
	return heap.Pop(&q.h).(Event)
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() Event {
	if len(q.h) == 0 {
		panic("sim: Peek on empty EventQueue")
	}
	return q.h[0]
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
