package sim

// Event is an entry in the EventQueue: at When, the payload ID becomes
// ready. The simulator stores core indices (or other small handles) in ID
// rather than closures so the hot loop stays allocation-free.
type Event struct {
	When Time
	ID   int
	seq  uint64 // insertion order, for deterministic tie-breaking
}

// EventQueue is a deterministic min-heap of events ordered by (When, seq).
// The zero value is ready to use.
//
// The heap is hand-inlined over a typed slice instead of wrapping
// container/heap: the interface-based API boxes every Event into an
// `any` (one allocation per Push and one per Pop) and routes every
// comparison through interface dispatch, which made the queue the event
// loop's largest allocation site. With the typed slice, steady-state
// pop+push cycles run allocation-free (the backing array is reused) and
// the (When, seq) comparison inlines into the sift loops. Because seq is
// unique, the order is total, so the pop sequence is identical to the
// container/heap implementation regardless of internal layout.
type EventQueue struct {
	h      []Event
	nextSq uint64
}

// Push schedules id to become ready at t.
func (q *EventQueue) Push(t Time, id int) {
	q.nextSq++
	q.h = append(q.h, Event{When: t, ID: id, seq: q.nextSq})
	// Sift up.
	h := q.h
	i := len(h) - 1
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h[parent]
		if e.When > p.When || (e.When == p.When && e.seq > p.seq) {
			break
		}
		h[i] = p
		i = parent
	}
	h[i] = e
}

// Pop removes and returns the earliest event. It panics if the queue is
// empty; check Len first.
func (q *EventQueue) Pop() Event {
	h := q.h
	if len(h) == 0 {
		panic("sim: Pop on empty EventQueue")
	}
	top := h[0]
	n := len(h) - 1
	e := h[n]
	q.h = h[:n]
	if n == 0 {
		return top
	}
	// Sift the former last element down from the root.
	h = q.h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := h[l]
		if r := l + 1; r < n {
			if cr := h[r]; cr.When < c.When || (cr.When == c.When && cr.seq < c.seq) {
				l, c = r, cr
			}
		}
		if c.When > e.When || (c.When == e.When && c.seq > e.seq) {
			break
		}
		h[i] = c
		i = l
	}
	h[i] = e
	return top
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() Event {
	if len(q.h) == 0 {
		panic("sim: Peek on empty EventQueue")
	}
	return q.h[0]
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }
