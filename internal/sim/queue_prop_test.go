package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// TestEventQueuePropertyOrder drives the hand-inlined heap through
// randomized Push/Pop interleavings and checks every Pop against a
// reference oracle: a stable sort by When with insertion order breaking
// ties. This is the property the whole simulator's determinism rests on
// — same-timestamp events must drain in FIFO order no matter how the
// heap's internal layout evolves.
func TestEventQueuePropertyOrder(t *testing.T) {
	type entry struct {
		when Time
		id   int
		ord  int // insertion order, the tie-break oracle
	}
	for _, seed := range []uint64{1, 7, 42, 1000} {
		rng := rand.New(rand.NewPCG(seed, 99))
		var q EventQueue
		// The oracle keeps pending sorted by (when, ord). Since ord only
		// ever grows, inserting at the upper bound of when preserves the
		// FIFO-within-timestamp order by construction.
		var pending []entry
		ord := 0
		insert := func(e entry) {
			i := sort.Search(len(pending), func(i int) bool { return pending[i].when > e.when })
			pending = append(pending, entry{})
			copy(pending[i+1:], pending[i:])
			pending[i] = e
		}
		popOne := func(step int) {
			t.Helper()
			want := pending[0]
			pending = pending[1:]
			got := q.Peek()
			if popped := q.Pop(); popped != got {
				t.Fatalf("seed %d step %d: Peek %+v != Pop %+v", seed, step, got, popped)
			}
			if got.When != want.when || got.ID != want.id {
				t.Fatalf("seed %d step %d: popped (when=%v id=%d), want (when=%v id=%d)",
					seed, step, got.When, got.ID, want.when, want.id)
			}
		}
		for step := 0; step < 30000; step++ {
			// Bias toward pushes so the heap grows, with a narrow time
			// range to force many same-When ties.
			if len(pending) == 0 || rng.Int64N(5) < 3 {
				when := Time(rng.Int64N(64))
				q.Push(when, ord)
				insert(entry{when: when, id: ord, ord: ord})
				ord++
			} else {
				popOne(step)
			}
			if q.Len() != len(pending) {
				t.Fatalf("seed %d step %d: Len %d, want %d", seed, step, q.Len(), len(pending))
			}
		}
		for len(pending) > 0 {
			popOne(-1)
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: queue not empty after drain", seed)
		}
	}
}

// TestEventQueueFIFOSameTimestamp pins the tie-break explicitly: a burst
// of events pushed at the identical time must pop in push order.
func TestEventQueueFIFOSameTimestamp(t *testing.T) {
	var q EventQueue
	const when = 5 * Nanosecond
	for id := 0; id < 1000; id++ {
		q.Push(when, id)
	}
	for id := 0; id < 1000; id++ {
		e := q.Pop()
		if e.ID != id || e.When != when {
			t.Fatalf("pop %d: got id %d when %v", id, e.ID, e.When)
		}
	}
}

// TestEventQueuePanics documents the contract on empty queues.
func TestEventQueuePanics(t *testing.T) {
	for _, op := range []struct {
		name string
		call func(q *EventQueue)
	}{
		{"Pop", func(q *EventQueue) { q.Pop() }},
		{"Peek", func(q *EventQueue) { q.Peek() }},
	} {
		t.Run(op.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty queue did not panic", op.name)
				}
			}()
			var q EventQueue
			op.call(&q)
		})
	}
}

// TestClockCyclesSaturates exercises the overflow paths of the
// cycles-to-time conversion: huge cycle counts (e.g. a watchdog budget
// from an external job spec) must clamp to the Time range, not wrap to a
// negative deadline.
func TestClockCyclesSaturates(t *testing.T) {
	c := NewClock(2000) // 500 ps period
	cases := []struct {
		n    int64
		want Time
	}{
		{0, 0},
		{1, 500},
		{1 << 20, 500 << 20},
		{int64(maxTime) / 500, maxTime - maxTime%500},
		{int64(maxTime)/500 + 1, maxTime}, // first saturating count
		{1<<63 - 1, maxTime},
		{-1, -500},
		{-(1 << 40), -500 << 40},
		{int64(minTime) / 500, minTime - minTime%500},
		{int64(minTime)/500 - 1, minTime},
		{-1 << 63, minTime},
	}
	for _, tc := range cases {
		if got := c.Cycles(tc.n); got != tc.want {
			t.Errorf("Cycles(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestClockCyclesFastSlowAgree cross-checks the single-multiply fast path
// against the checked slow path over the boundary region where the fast
// path's guard flips.
func TestClockCyclesFastSlowAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	clocks := []Clock{NewClock(500), NewClock(2000), NewClock(3200), {period: 1<<31 - 1}}
	for _, c := range clocks {
		for i := 0; i < 50000; i++ {
			var n int64
			switch rng.Int64N(3) {
			case 0:
				n = rng.Int64N(1 << 32) // straddles the 2^31 guard
			case 1:
				n = -rng.Int64N(1 << 32)
			default:
				n = int64(rng.Uint64()) // full range
			}
			if got, want := c.Cycles(n), c.cyclesSlow(n); got != want {
				t.Fatalf("period %d: Cycles(%d) = %d, cyclesSlow = %d", c.period, n, got, want)
			}
		}
	}
}

// TestClockZeroValue pins the zero-value Clock contract: conversions
// return zero rather than dividing by zero.
func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.cyclesSlow(12345); got != 0 {
		t.Fatalf("zero Clock cyclesSlow = %d, want 0", got)
	}
}
