package golden

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files (prints a diff of every change)")

// TestGolden re-simulates every pinned case and requires the canonical
// result document to match the committed golden byte for byte. Run with
// -update to regenerate after a deliberate semantic change.
func TestGolden(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			got, err := c.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			path := filepath.Join("testdata", c.Name+".json")
			want, err := os.ReadFile(path)
			if *update {
				if err == nil && string(want) == string(got) {
					return // unchanged
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					t.Logf("WROTE %s (new golden)", path)
					return
				}
				lines, derr := Diff(want, got)
				if derr != nil {
					t.Fatalf("diff after update: %v", derr)
				}
				t.Logf("UPDATED %s — %d field(s) changed:", path, len(lines))
				for _, l := range lines {
					t.Logf("  %s", l)
				}
				return
			}
			if err != nil {
				t.Fatalf("missing golden %s (run with -update to create it): %v", path, err)
			}
			if string(want) == string(got) {
				return
			}
			lines, derr := Diff(want, got)
			if derr != nil {
				t.Fatalf("documents differ and diff failed: %v", derr)
			}
			if len(lines) == 0 {
				t.Fatalf("golden %s differs only in formatting — regenerate with -update", path)
			}
			t.Errorf("result drifted from golden %s in %d field(s):", path, len(lines))
			for _, l := range lines {
				t.Errorf("  %s", l)
			}
			t.Error("if this change is intentional, regenerate with: go test ./internal/golden -run TestGolden -update")
		})
	}
}

// TestGoldenCasesDistinct guards the matrix itself: duplicate names
// would silently share one golden file.
func TestGoldenCasesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cases() {
		if seen[c.Name] {
			t.Fatalf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

// TestDiff exercises the field-by-field differ the golden failures rely
// on, including nested objects and absent fields.
func TestDiff(t *testing.T) {
	a := []byte(`{"x":1,"sub":{"y":2,"z":3},"arr":[1,2]}`)
	b := []byte(`{"x":1,"sub":{"y":5},"arr":[1,3],"new":true}`)
	lines, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"sub/y: 2 -> 5":         true,
		"sub/z: 3 -> (absent)":  true,
		"arr[1]: 2 -> 3":        true,
		"new: (absent) -> true": true,
	}
	if len(lines) != len(want) {
		t.Fatalf("diff lines = %v, want %d entries", lines, len(want))
	}
	for _, l := range lines {
		if !want[l] {
			t.Errorf("unexpected diff line %q", l)
		}
	}
	same, err := Diff(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Fatalf("self-diff produced %v", same)
	}
}
