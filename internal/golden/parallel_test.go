package golden

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// TestGoldenParityPipelined is the parallel path's oracle fence, run
// over the full pinned matrix (every design family, both memory
// technologies, the reconfiguration modes, and the fault scenarios):
// the epoch-pipelined mode must reproduce the committed golden bytes —
// the same documents the serial path is pinned to — so the two modes
// are interchangeable everywhere results are cached or compared.
func TestGoldenParityPipelined(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(filepath.Join("testdata", c.Name+".json"))
			if err != nil {
				t.Fatalf("missing golden (run TestGolden -update first): %v", err)
			}
			got, err := c.RunWith(system.RunPipelined)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				reportDrift(t, "pipelined vs golden", want, got)
			}
		})
	}
}

// The content-addressed cache key must not see the execution mode:
// a pipelined run and a serial run of the same configuration share one
// cache entry, which is only sound because the parity suite above
// proves their results byte-identical. This test pins the key's
// mode-independence so a future "parallelism" Config field can't leak
// into it unnoticed.
func TestCanonicalBytesModeIndependent(t *testing.T) {
	c := Cases()[0]
	cfg, err := c.Config()
	if err != nil {
		t.Fatal(err)
	}
	key := cfg.CanonicalBytes()
	tr, err := c.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := system.RunPipelined(cfg, tr.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, err := system.Run(cfg, tr.Clone()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(key, cfg.CanonicalBytes()) {
		t.Fatal("CanonicalBytes changed across serial and pipelined runs of the same config")
	}
}

// TestGoldenRecordReplayPipelined extends the record/replay keystone to
// the parallel path: a trace recorded through the probe bus during a
// PIPELINED run must be byte-identical to one recorded serially (probe
// events fire on the event-loop thread in serial order), and replaying
// it — serially or pipelined — must reproduce the live run's canonical
// document.
func TestGoldenRecordReplayPipelined(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			record := func(run func(system.Config, *workloads.Trace) (*system.Result, error)) (trc, doc []byte) {
				cfg, err := c.Config()
				if err != nil {
					t.Fatal(err)
				}
				tr, err := c.Trace()
				if err != nil {
					t.Fatal(err)
				}
				recCores := cfg.NumUnits()
				if cfg.Design == system.Host {
					recCores = cfg.HostCores
				}
				var file bytes.Buffer
				w, err := trace.NewWriter(&file, trace.Options{
					Name: tr.Name, Table: tr.Table, Cores: recCores, Compress: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				rec := trace.NewRecorder(w)
				cfg.AttachProbe(rec)
				res, err := run(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				if err := rec.Close(); err != nil {
					t.Fatalf("recorder: %v", err)
				}
				doc, err = encodeIndent(res)
				if err != nil {
					t.Fatal(err)
				}
				return file.Bytes(), doc
			}

			serialTrc, serialDoc := record(system.Run)
			pipeTrc, pipeDoc := record(system.RunPipelined)
			if !bytes.Equal(serialDoc, pipeDoc) {
				reportDrift(t, "pipelined recorded run", serialDoc, pipeDoc)
			}
			if !bytes.Equal(serialTrc, pipeTrc) {
				t.Fatal("trace recorded under pipelined mode differs from serial recording")
			}

			// Replaying the pipelined-recorded trace — itself pipelined —
			// must close the loop on the live document.
			r, err := trace.NewReader(bytes.NewReader(pipeTrc), int64(len(pipeTrc)))
			if err != nil {
				t.Fatalf("reopen recorded trace: %v", err)
			}
			mat, err := r.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := c.Config()
			if err != nil {
				t.Fatal(err)
			}
			res, err := system.RunPipelined(cfg, mat)
			if err != nil {
				t.Fatalf("pipelined replay: %v", err)
			}
			replayed, err := encodeIndent(res)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pipeDoc, replayed) {
				reportDrift(t, "pipelined replay", pipeDoc, replayed)
			}
		})
	}
}
