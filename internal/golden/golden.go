// Package golden pins the simulator's canonical outputs. Each Case is
// one (design, workload, fault-scenario) configuration of a small
// 8-unit machine; its committed golden file under testdata/ is the
// indented form of the canonical result document (result.Encode)
// the simulation produced when the golden was last regenerated.
//
// The golden test re-runs every case and requires byte-identical
// documents. This is the oracle that gates hot-path refactors: a
// performance change to the event queue, the memory-path stages, or the
// telemetry plumbing must not move a single counter, latency bucket, or
// energy term. Regenerate deliberately with
//
//	go test ./internal/golden -run TestGolden -update
//
// which rewrites testdata/ and prints a field-by-field diff of every
// changed document, so a semantic change is a visible, reviewed event
// instead of a silent drift.
package golden

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ndpext/internal/fault"
	"ndpext/internal/server/result"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// Case is one pinned simulation configuration.
type Case struct {
	// Name is the golden file stem under testdata/.
	Name string

	Design   system.Design
	Workload string

	// HMC selects HMC2-style stack memory instead of HBM3.
	HMC bool
	// Reconfig overrides the reconfiguration mode (default full).
	Reconfig system.ReconfigMode
	// Faults is a fault-injection spec in the internal/fault grammar;
	// empty disables injection.
	Faults    string
	FaultSeed uint64

	// BanditSeed seeds the NDPExt-MAB Thompson sampler (0 keeps the
	// config default); only meaningful for the adaptive design.
	BanditSeed uint64

	// AccessesPerCore sizes the trace (default 2500, TinyScale's own).
	AccessesPerCore int
	Seed            uint64
}

// Cases returns the pinned matrix: every design family, both memory
// technologies, the reconfiguration modes, and the fault scenarios whose
// arithmetic the paper's figures lean on. Kept small enough that the
// whole suite runs in a few seconds.
func Cases() []Case {
	return []Case{
		// The proposal and its static ablation across workload kinds.
		{Name: "ndpext-pr", Design: system.NDPExt, Workload: "pr"},
		{Name: "ndpext-mv", Design: system.NDPExt, Workload: "mv"},
		{Name: "ndpext-recsys", Design: system.NDPExt, Workload: "recsys"},
		{Name: "ndpext-hotspot", Design: system.NDPExt, Workload: "hotspot"},
		{Name: "ndpext-static-pr", Design: system.NDPExtStatic, Workload: "pr"},

		// The NUCA baselines and the host normalization baseline.
		{Name: "jigsaw-pr", Design: system.Jigsaw, Workload: "pr"},
		{Name: "whirlpool-mv", Design: system.Whirlpool, Workload: "mv"},
		{Name: "nexus-pr", Design: system.Nexus, Workload: "pr"},
		{Name: "static-mv", Design: system.StaticInterleave, Workload: "mv"},
		{Name: "host-pr", Design: system.Host, Workload: "pr"},

		// Alternate memory technology and reconfiguration modes.
		{Name: "ndpext-hmc-pr", Design: system.NDPExt, Workload: "pr", HMC: true},
		{Name: "ndpext-partial-pr", Design: system.NDPExt, Workload: "pr",
			Reconfig: system.ReconfigPartial},

		// The adaptive design: bandit decisions, shadow scoring, and the
		// migration accounting are all pinned, on a steady workload and
		// on the phase-changing trace it exists for.
		{Name: "ndpext-mab-recsys", Design: system.NDPExtMAB, Workload: "recsys",
			BanditSeed: 7},
		{Name: "ndpext-mab-phased", Design: system.NDPExtMAB, Workload: "phased",
			BanditSeed: 7},

		// Fault scenarios: degraded-mode reconfiguration arithmetic.
		{Name: "ndpext-faults-pr", Design: system.NDPExt, Workload: "pr",
			Faults:    "vault-fail,unit=5,at=100us;cxl-retry,rate=0.05,lat=200ns;cxl-degrade,at=200us,dur=100us,factor=4",
			FaultSeed: 7},
		{Name: "jigsaw-faults-pr", Design: system.Jigsaw, Workload: "pr",
			Faults: "vault-fail,unit=2,at=150us", FaultSeed: 3},
	}
}

// Config assembles the case's machine: the 8-unit (2 stacks of 2x2)
// model-scale machine the repo's unit tests use, so goldens are cheap to
// re-run on every test invocation.
func (c Case) Config() (system.Config, error) {
	var cfg system.Config
	if c.HMC {
		cfg = system.HMCConfig(c.Design)
	} else {
		cfg = system.DefaultConfig(c.Design)
	}
	cfg.NoC.StacksX, cfg.NoC.StacksY = 2, 1
	cfg.NoC.UnitsX, cfg.NoC.UnitsY = 2, 2
	cfg.UnitRows = 64 // 128 kB per unit
	cfg.Sampler.MinBytes = 2 << 10
	cfg.Sampler.MaxBytes = 8 * cfg.UnitCacheBytes()
	cfg.EpochCycles = 50_000
	cfg.HostCores = 4
	cfg.Reconfig = c.Reconfig
	spec, err := fault.Parse(c.Faults)
	if err != nil {
		return system.Config{}, err
	}
	cfg.Faults = spec
	cfg.FaultSeed = c.FaultSeed
	if c.BanditSeed != 0 {
		cfg.BanditSeed = c.BanditSeed
	}
	if err := cfg.Validate(); err != nil {
		return system.Config{}, err
	}
	return cfg, nil
}

// Trace generates the case's workload trace (TinyScale, 8 cores).
func (c Case) Trace() (*workloads.Trace, error) {
	gen, err := workloads.Get(c.Workload)
	if err != nil {
		return nil, err
	}
	sc := workloads.TinyScale()
	sc.CoresPerProc = 4
	if c.AccessesPerCore > 0 {
		sc.AccessesPerCore = c.AccessesPerCore
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	return gen(8, seed, sc)
}

// Run simulates the case and returns the indented canonical result
// document — the exact bytes the golden files hold.
func (c Case) Run() ([]byte, error) {
	return c.RunWith(system.Run)
}

// RunWith simulates the case through the given entry point (system.Run,
// system.RunPipelined, ...) and returns the indented canonical result
// document. The parallel parity suite uses it to assert that every
// execution mode reproduces the serial oracle's bytes.
func (c Case) RunWith(run func(system.Config, *workloads.Trace) (*system.Result, error)) ([]byte, error) {
	cfg, err := c.Config()
	if err != nil {
		return nil, err
	}
	tr, err := c.Trace()
	if err != nil {
		return nil, err
	}
	res, err := run(cfg, tr)
	if err != nil {
		return nil, err
	}
	doc, err := result.Encode(res)
	if err != nil {
		return nil, err
	}
	return Indent(doc)
}

// Indent pretty-prints a canonical result document. Indentation is
// whitespace-only, so two indented documents are byte-identical exactly
// when the underlying canonical documents are.
func Indent(doc []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, doc, "", "  "); err != nil {
		return nil, err
	}
	buf.WriteByte('\n')
	return buf.Bytes(), nil
}

// Diff compares two JSON documents field by field and returns one line
// per difference ("path: old -> new"), recursing into objects and
// arrays. A nil result means the documents are semantically identical.
func Diff(a, b []byte) ([]string, error) {
	var av, bv any
	if err := json.Unmarshal(a, &av); err != nil {
		return nil, fmt.Errorf("golden: old document: %w", err)
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		return nil, fmt.Errorf("golden: new document: %w", err)
	}
	var out []string
	diffValue("", av, bv, &out)
	return out, nil
}

func diffValue(path string, a, b any, out *[]string) {
	if path == "" {
		path = "."
	}
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			*out = append(*out, fmt.Sprintf("%s: %v -> %v", path, render(a), render(b)))
			return
		}
		keys := make(map[string]bool, len(av)+len(bv))
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		for _, k := range sortedKeys(keys) {
			sub := path + "/" + k
			if path == "." {
				sub = k
			}
			va, inA := av[k]
			vb, inB := bv[k]
			switch {
			case !inA:
				*out = append(*out, fmt.Sprintf("%s: (absent) -> %v", sub, render(vb)))
			case !inB:
				*out = append(*out, fmt.Sprintf("%s: %v -> (absent)", sub, render(va)))
			default:
				diffValue(sub, va, vb, out)
			}
		}
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			*out = append(*out, fmt.Sprintf("%s: %v -> %v", path, render(a), render(b)))
			return
		}
		for i := range av {
			diffValue(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i], out)
		}
	default:
		if !jsonEqual(a, b) {
			*out = append(*out, fmt.Sprintf("%s: %v -> %v", path, render(a), render(b)))
		}
	}
}

func jsonEqual(a, b any) bool {
	// Scalars only (objects/arrays recurse above): numbers decode as
	// float64, so == is exact for the canonical documents.
	return a == b
}

func render(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	if len(b) > 120 {
		return string(b[:117]) + "..."
	}
	return string(b)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort; tiny key sets
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
