package golden

import (
	"bytes"
	"testing"

	"ndpext/internal/server/result"
	"ndpext/internal/system"
	"ndpext/internal/trace"
)

// TestGoldenRecordReplay is the trace subsystem's keystone, run over the
// full pinned matrix: recording any golden case through the probe bus
// and replaying the trace — both materialized and streamed — must
// reproduce the byte-identical canonical result document. A drift here
// means either the recorder perturbs timing (probes must be passive) or
// the format loses information (an access, its order, a gap, a stream
// annotation).
func TestGoldenRecordReplay(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cfg, err := c.Config()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := c.Trace()
			if err != nil {
				t.Fatal(err)
			}

			// Recorded run. Host designs fold the trace onto host cores, so
			// the probe events — and the recorded trace — live in that space.
			recCores := cfg.NumUnits()
			if cfg.Design == system.Host {
				recCores = cfg.HostCores
			}
			var file bytes.Buffer
			w, err := trace.NewWriter(&file, trace.Options{
				Name: tr.Name, Table: tr.Table, Cores: recCores, Compress: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder(w)
			cfg.AttachProbe(rec)
			res, err := system.Run(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("recorder: %v", err)
			}
			recorded, err := encodeIndent(res)
			if err != nil {
				t.Fatal(err)
			}

			r, err := trace.NewReader(bytes.NewReader(file.Bytes()), int64(file.Len()))
			if err != nil {
				t.Fatalf("reopen recorded trace: %v", err)
			}

			// Replay 1: materialized, like the bench sweep consumes traces.
			mat, err := r.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			cfg2, err := c.Config()
			if err != nil {
				t.Fatal(err)
			}
			res2, err := system.Run(cfg2, mat)
			if err != nil {
				t.Fatalf("materialized replay: %v", err)
			}
			replayed, err := encodeIndent(res2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(recorded, replayed) {
				reportDrift(t, "materialized replay", recorded, replayed)
			}

			// Replay 2: streamed chunk by chunk, like ndpserve trace jobs.
			src, err := r.Source()
			if err != nil {
				t.Fatal(err)
			}
			cfg3, err := c.Config()
			if err != nil {
				t.Fatal(err)
			}
			res3, err := system.RunSource(cfg3, src)
			if err != nil {
				t.Fatalf("streamed replay: %v", err)
			}
			streamed, err := encodeIndent(res3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(recorded, streamed) {
				reportDrift(t, "streamed replay", recorded, streamed)
			}
		})
	}
}

// encodeIndent renders a result as the indented canonical document the
// golden files hold — the byte-identity currency of this test.
func encodeIndent(res *system.Result) ([]byte, error) {
	doc, err := result.Encode(res)
	if err != nil {
		return nil, err
	}
	return Indent(doc)
}

// reportDrift prints the field-by-field diff so a replay divergence
// names the counter that moved instead of dumping two documents.
func reportDrift(t *testing.T, what string, want, got []byte) {
	t.Helper()
	lines, err := Diff(want, got)
	if err != nil {
		t.Fatalf("%s differs and diff failed: %v", what, err)
	}
	t.Errorf("%s drifted from the recorded run in %d field(s):", what, len(lines))
	for _, l := range lines {
		t.Errorf("  %s", l)
	}
}
