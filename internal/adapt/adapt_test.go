package adapt

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"ndpext/internal/policy"
	"ndpext/internal/sampler"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// testConfig is a small 4-unit machine for arm/evaluator tests.
func testConfig() policy.Config {
	return policy.Config{
		NumUnits:      4,
		RowBytes:      2048,
		UnitRows:      64,
		AffineCapRows: 16,
		SegRows:       2,
		Attenuation: func(u, v int) float64 {
			return 1 / (1 + float64(abs(u-v)))
		},
		MaxGroups: 8,
		MaxIters:  10_000,
		MissLatNS: 500,
		NetLatNS:  func(d int) float64 { return 40 / float64(d) },
	}
}

func curveAt(hot int64) sampler.Curve {
	return sampler.Curve{
		ItemBytes: 64,
		Accesses:  1000,
		Points: []sampler.CurvePoint{
			{Bytes: hot / 4, MissRate: 0.8, Sampled: 1},
			{Bytes: hot, MissRate: 0.05, Sampled: 1},
		},
	}
}

func testInputs() []policy.StreamInput {
	return []policy.StreamInput{
		{
			SID:        1,
			Curve:      curveAt(32 << 10),
			LocalCurve: curveAt(8 << 10),
			Acc:        map[int]uint64{0: 500, 1: 400, 2: 300, 3: 200},
			ReadOnly:   true,
			Footprint:  64 << 10,
		},
		{
			SID:       2,
			Curve:     curveAt(64 << 10),
			Acc:       map[int]uint64{1: 100, 2: 150},
			ReadOnly:  false,
			Footprint: 128 << 10,
		},
		{
			SID:       3,
			Curve:     curveAt(16 << 10),
			Acc:       map[int]uint64{0: 50},
			ReadOnly:  true,
			Affine:    true,
			Footprint: 16 << 10,
		},
	}
}

func testModel() CostModel {
	return CostModel{
		RowBytes:  2048,
		DramHitNS: 30,
		MissNS:    500,
		NetNS:     func(u, v int) float64 { return 10 * float64(abs(u-v)) },
		HitPJ:     100,
		MissPJ:    1000,
	}
}

func TestParseArms(t *testing.T) {
	arms, err := ParseArms("")
	if err != nil {
		t.Fatalf("default arms: %v", err)
	}
	var names []string
	for _, a := range arms {
		names = append(names, a.Name())
	}
	if got, want := strings.Join(names, ","), DefaultArms; got != want {
		t.Fatalf("default arms = %s, want %s", got, want)
	}
	if _, err := ParseArms("paper,PAPER"); err == nil {
		t.Fatal("duplicate arm accepted")
	}
	if _, err := ParseArms("bogus"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown arm error = %v, want valid-arm list", err)
	}
	if _, err := ParseArms(" Greedy , static "); err != nil {
		t.Fatalf("whitespace/case arm list rejected: %v", err)
	}
}

// TestArmsProduceValidAllocations checks every arm against the remap
// table's structural rules: bit widths, per-unit capacity, writable
// streams single-group, dead units empty.
func TestArmsProduceValidAllocations(t *testing.T) {
	cfg := testConfig()
	cfg.DeadUnits = []int{3}
	ins := testInputs()
	arms, _ := ParseArms("")
	for _, arm := range arms {
		allocs, err := arm.Decide(cfg, ins)
		if err != nil {
			t.Fatalf("%s: %v", arm.Name(), err)
		}
		used := make([]uint64, cfg.NumUnits)
		for sid, a := range allocs {
			if err := a.Validate(cfg.NumUnits); err != nil {
				t.Fatalf("%s stream %d: %v", arm.Name(), sid, err)
			}
			for u, s := range a.Shares {
				used[u] += uint64(s)
			}
			if a.Shares[3] != 0 {
				t.Errorf("%s stream %d: rows on dead unit 3", arm.Name(), sid)
			}
		}
		for u, n := range used {
			if n > uint64(cfg.UnitRows) {
				t.Errorf("%s: unit %d overcommitted: %d rows > %d", arm.Name(), u, n, cfg.UnitRows)
			}
		}
		// Writable stream 2 must stay single-group.
		if a, ok := allocs[2]; ok {
			if g := a.GroupIDs(); len(g) > 1 {
				t.Errorf("%s: writable stream got %d groups", arm.Name(), len(g))
			}
		}
	}
}

// TestReplicateArmReplicates checks the replication-heavy arm actually
// gives the hot read-only stream one group per accessor.
func TestReplicateArmReplicates(t *testing.T) {
	cfg := testConfig()
	allocs, err := (replicateArm{}).Decide(cfg, testInputs())
	if err != nil {
		t.Fatal(err)
	}
	a := allocs[1]
	if got := len(a.GroupIDs()); got != 4 {
		t.Fatalf("read-only stream groups = %d, want 4 (one per accessor); alloc %+v", got, a)
	}
}

func TestScoreFavorsMoreCapacity(t *testing.T) {
	m := testModel()
	ins := testInputs()[:1]
	small := map[stream.ID]streamcache.Allocation{1: alloc(4, [4]uint32{1, 0, 0, 0})}
	big := map[stream.ID]streamcache.Allocation{1: alloc(4, [4]uint32{16, 16, 0, 0})}
	sSmall, sBig := m.Score(ins, small), m.Score(ins, big)
	if !(sBig < sSmall) {
		t.Fatalf("bigger allocation should score lower: big=%g small=%g", sBig, sSmall)
	}
	none := m.Score(ins, nil)
	if none <= sSmall {
		t.Fatalf("no allocation should be worst: none=%g small=%g", none, sSmall)
	}
	// All-miss score includes the energy tie-break term when weighted.
	m.EnergyWeight = 0.001
	if got, want := m.Score(ins, nil), m.MissNS+0.001*m.MissPJ; math.Abs(got-want) > 1e-9 {
		t.Fatalf("all-miss score = %g, want %g", got, want)
	}
}

func alloc(n int, shares [4]uint32) streamcache.Allocation {
	a := streamcache.NewAllocation(n)
	copy(a.Shares, shares[:])
	return a
}

func TestMovedRows(t *testing.T) {
	old := map[stream.ID]streamcache.Allocation{1: alloc(4, [4]uint32{8, 8, 0, 0})}
	// Same rows: nothing moves.
	if got := MovedRows(old, old); got != 0 {
		t.Fatalf("identity moved %d rows", got)
	}
	// Growth counts the delta.
	grown := map[stream.ID]streamcache.Allocation{1: alloc(4, [4]uint32{8, 16, 4, 0})}
	if got := MovedRows(old, grown); got != 12 {
		t.Fatalf("growth moved %d rows, want 12", got)
	}
	// A group change refills retained rows.
	regrouped := map[stream.ID]streamcache.Allocation{1: alloc(4, [4]uint32{8, 8, 0, 0})}
	a := regrouped[1]
	a.Groups[1] = 1
	regrouped[1] = a
	if got := MovedRows(old, regrouped); got != 8 {
		t.Fatalf("regroup moved %d rows, want 8", got)
	}
	// A brand-new stream is all new rows.
	if got := MovedRows(nil, old); got != 16 {
		t.Fatalf("fresh install moved %d rows, want 16", got)
	}
}

func TestBanditDeterminism(t *testing.T) {
	run := func(seed uint64) []int {
		b := newBandit(3, 0.8, 4, seed)
		var picks []int
		for i := 0; i < 50; i++ {
			b.update([]float64{0.2, 0.9, 0.5})
			picks = append(picks, b.sample())
		}
		return picks
	}
	if !reflect.DeepEqual(run(7), run(7)) {
		t.Fatal("same seed produced different pick sequences")
	}
	if reflect.DeepEqual(run(7), run(8)) {
		t.Fatal("different seeds produced identical pick sequences (suspicious)")
	}
}

func TestBanditConvergesAndTracksPhaseChange(t *testing.T) {
	b := newBandit(3, 0.8, 4, 1)
	count := make([]int, 3)
	for i := 0; i < 60; i++ {
		b.update([]float64{0.1, 0.95, 0.3})
		count[b.sample()]++
	}
	if count[1] < 40 {
		t.Fatalf("bandit did not converge on the best arm: picks %v", count)
	}
	// Phase change: arm 0 becomes best; the discounted posterior must
	// swing within a bounded number of epochs.
	swung := -1
	for i := 0; i < 30; i++ {
		b.update([]float64{0.95, 0.1, 0.3})
		if b.sample() == 0 && swung < 0 {
			swung = i
		}
	}
	if swung < 0 || swung > 15 {
		t.Fatalf("bandit failed to track phase change (first pick of new best at %d)", swung)
	}
}

func TestControllerDeterminismAndSwitching(t *testing.T) {
	run := func(seed uint64) ([]string, float64) {
		c, err := New(Params{}, seed, testModel())
		if err != nil {
			t.Fatal(err)
		}
		live := map[stream.ID]streamcache.Allocation{}
		var armsSeen []string
		for epoch := 0; epoch < 12; epoch++ {
			d, err := c.Decide(testConfig(), testInputs(), live, 10_000)
			if err != nil {
				t.Fatal(err)
			}
			armsSeen = append(armsSeen, d.Arm)
			live = d.Allocs
			if len(d.Scores) != 4 || len(d.Means) != 4 {
				t.Fatalf("scores/means sized %d/%d, want 4", len(d.Scores), len(d.Means))
			}
		}
		return armsSeen, c.ModeledAMATNS()
	}
	a1, amat1 := run(7)
	a2, amat2 := run(7)
	if !reflect.DeepEqual(a1, a2) || amat1 != amat2 {
		t.Fatalf("same seed diverged: %v (%g) vs %v (%g)", a1, amat1, a2, amat2)
	}
	if amat1 <= 0 {
		t.Fatalf("modeled AMAT = %g, want > 0", amat1)
	}
}

func TestControllerSingleArmNeverSwitches(t *testing.T) {
	c, err := New(Params{Arms: "static"}, 3, testModel())
	if err != nil {
		t.Fatal(err)
	}
	live := map[stream.ID]streamcache.Allocation{}
	for epoch := 0; epoch < 8; epoch++ {
		d, err := c.Decide(testConfig(), testInputs(), live, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if d.Arm != "static" || d.Switched {
			t.Fatalf("single-arm controller switched: %+v", d)
		}
		live = d.Allocs
	}
	if c.Switches() != 0 {
		t.Fatalf("switches = %d, want 0", c.Switches())
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("zero params invalid: %v", err)
	}
	if err := (Params{Decay: 1.5}).Validate(); err == nil {
		t.Fatal("decay > 1 accepted")
	}
	if err := (Params{Arms: "nope"}).Validate(); err == nil {
		t.Fatal("unknown arm accepted")
	}
	if err := (Params{MigrateRowNS: -1}).Validate(); err == nil {
		t.Fatal("negative migration cost accepted")
	}
}
