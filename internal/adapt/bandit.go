package adapt

import (
	"math"

	"ndpext/internal/sim"
)

// bandit is a discounted Thompson sampler over Beta posteriors, one per
// arm (the shape of as-cache's policy selector). Shadow evaluation
// yields full information — every arm's reward is observed every epoch,
// not just the pulled one — so update refreshes all posteriors before
// sample draws the next live arm. The per-epoch discount keeps the
// posteriors tracking the current phase instead of averaging over the
// whole run.
//
// All randomness comes from the seeded sim.RNG, and every floating-
// point operation happens in fixed arm order, so the pick sequence is a
// pure function of (seed, reward history).
type bandit struct {
	rng    *sim.RNG
	alpha  []float64
	beta   []float64
	decay  float64
	weight float64 // pseudo-count per full-information observation
}

func newBandit(arms int, decay, weight float64, seed uint64) *bandit {
	b := &bandit{
		rng:    sim.NewRNG(seed),
		alpha:  make([]float64, arms),
		beta:   make([]float64, arms),
		decay:  decay,
		weight: weight,
	}
	for i := range b.alpha {
		b.alpha[i], b.beta[i] = 1, 1 // uniform prior
	}
	return b
}

// update discounts every posterior and folds in this epoch's rewards
// (each in [0, 1]; fractional counts are fine for Beta updates).
func (b *bandit) update(rewards []float64) {
	for i := range b.alpha {
		b.alpha[i] = 1 + (b.alpha[i]-1)*b.decay
		b.beta[i] = 1 + (b.beta[i]-1)*b.decay
		r := rewards[i]
		if r < 0 {
			r = 0
		} else if r > 1 {
			r = 1
		}
		b.alpha[i] += b.weight * r
		b.beta[i] += b.weight * (1 - r)
	}
}

// samples draws one Beta sample per arm (in fixed arm order, so the
// RNG consumption is deterministic).
func (b *bandit) samples() []float64 {
	out := make([]float64, len(b.alpha))
	for i := range b.alpha {
		out[i] = b.betaSample(b.alpha[i], b.beta[i])
	}
	return out
}

// sample draws and returns the argmax arm (ties to the lower index,
// deterministically).
func (b *bandit) sample() int {
	s := b.samples()
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	return best
}

// means returns the posterior means (diagnostics / telemetry).
func (b *bandit) means() []float64 {
	out := make([]float64, len(b.alpha))
	for i := range out {
		out[i] = b.alpha[i] / (b.alpha[i] + b.beta[i])
	}
	return out
}

// betaSample draws Beta(a, b) via two Gamma draws.
func (b *bandit) betaSample(a, bb float64) float64 {
	x := b.gamma(a)
	y := b.gamma(bb)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gamma draws Gamma(a, 1) with Marsaglia–Tsang squeeze; shapes below 1
// use the boost Gamma(a) = Gamma(a+1) * U^(1/a).
func (b *bandit) gamma(a float64) float64 {
	if a < 1 {
		u := b.openUniform()
		return b.gamma(a+1) * math.Pow(u, 1/a)
	}
	d := a - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := b.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := b.openUniform()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// normal draws a standard normal via Box–Muller.
func (b *bandit) normal() float64 {
	u1 := b.openUniform()
	u2 := b.rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// openUniform draws from (0, 1] so logarithms stay finite.
func (b *bandit) openUniform() float64 {
	return 1 - b.rng.Float64()
}
