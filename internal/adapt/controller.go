package adapt

import (
	"fmt"

	"ndpext/internal/policy"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
	"ndpext/internal/telemetry"
)

// Controller orchestrates one run's adaptive configuration: every epoch
// it asks each arm for a candidate allocation, shadow-scores all of
// them with the CostModel, converts the scores (plus an amortized
// migration penalty for candidates that would move rows) into rewards,
// updates the bandit, and returns the sampled arm's allocation for the
// system layer to install. It is single-threaded by design — Decide is
// called from the simulator's event-loop thread at epoch boundaries in
// both serial and pipelined mode, which is what keeps the pick sequence
// byte-identical across the two.
type Controller struct {
	params Params
	arms   []Arm
	model  CostModel
	bandit *bandit

	live     int
	epochs   int
	switches int
	picks    []uint64

	// Modeled end-to-end accounting (telemetry; never enters the
	// simulated energy breakdown).
	weightedNS   float64 // sum over epochs of liveScore * epochAccesses
	accTotal     uint64
	migratedRows uint64
	migrateNS    float64
	migratePJ    float64
	droppedItems int // actual items invalidated by arm-switch installs
}

// New builds a controller from the parameters (zero fields take
// defaults), the bandit seed, and the machine's cost model.
func New(p Params, seed uint64, model CostModel) (*Controller, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	arms, err := ParseArms(p.Arms)
	if err != nil {
		return nil, err
	}
	model.EnergyWeight = p.EnergyWeight
	return &Controller{
		params: p,
		arms:   arms,
		model:  model,
		bandit: newBandit(len(arms), p.Decay, p.ObsWeight, seed),
		live:   -1,
		picks:  make([]uint64, len(arms)),
	}, nil
}

// Decision is one epoch's outcome.
type Decision struct {
	Arm      string // live arm after this decision
	Index    int
	Switched bool
	Allocs   map[stream.ID]streamcache.Allocation
	// Scores are the per-arm shadow scores (modeled ns/access, before
	// the migration penalty), Means the posterior means after update —
	// both in arm order.
	Scores []float64
	Means  []float64
	// MovedRows is the migration estimate of installing the chosen arm
	// over the live allocation (0 when the arm did not switch).
	MovedRows uint64
}

// Decide runs one epoch of the bandit: candidates, shadow scores,
// posterior update, Thompson sample. live is the currently installed
// allocation of each profiled stream; epochAccesses the number of
// simulated accesses in the closing epoch (the amortization base for
// the migration penalty).
func (c *Controller) Decide(pcfg policy.Config, ins []policy.StreamInput, live map[stream.ID]streamcache.Allocation, epochAccesses uint64) (*Decision, error) {
	k := len(c.arms)
	cands := make([]map[stream.ID]streamcache.Allocation, k)
	base := make([]float64, k)
	penalized := make([]float64, k)
	moved := make([]uint64, k)
	for i, arm := range c.arms {
		a, err := arm.Decide(pcfg, ins)
		if err != nil {
			return nil, fmt.Errorf("adapt: arm %s: %w", arm.Name(), err)
		}
		cands[i] = a
		base[i] = c.model.Score(ins, a)
		moved[i] = MovedRows(live, a)
		penalized[i] = base[i]
		if epochAccesses > 0 {
			penalized[i] += float64(moved[i]) * c.params.MigrateRowNS / float64(epochAccesses)
		}
	}
	c.bandit.update(rewards(penalized))
	samples := c.bandit.samples()
	next := 0
	for i, v := range samples {
		if v > samples[next] {
			next = i
		}
	}
	// Thompson hysteresis: posterior noise alone must not pay the
	// migration cost — a challenger has to beat the live arm's sample by
	// the configured margin to take over.
	if c.live >= 0 && next != c.live && samples[next] <= samples[c.live]+c.params.SwitchMargin {
		next = c.live
	}

	switched := c.live >= 0 && next != c.live
	if switched {
		c.switches++
		c.migratedRows += moved[next]
		c.migrateNS += float64(moved[next]) * c.params.MigrateRowNS
		c.migratePJ += float64(moved[next]) * c.params.MigrateRowPJ
	}
	c.weightedNS += base[next] * float64(epochAccesses)
	c.accTotal += epochAccesses
	c.picks[next]++
	c.epochs++
	c.live = next
	mv := uint64(0)
	if switched {
		mv = moved[next]
	}
	return &Decision{
		Arm:       c.arms[next].Name(),
		Index:     next,
		Switched:  switched,
		Allocs:    cands[next],
		Scores:    base,
		Means:     c.bandit.means(),
		MovedRows: mv,
	}, nil
}

// rewards maps per-arm costs (lower is better) into [0, 1] rewards
// (higher is better), normalized over this epoch's spread; equal costs
// yield the uninformative 0.5.
func rewards(costs []float64) []float64 {
	lo, hi := costs[0], costs[0]
	for _, v := range costs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(costs))
	if hi-lo < 1e-9 {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	for i, v := range costs {
		out[i] = (hi - v) / (hi - lo)
	}
	return out
}

// NoteApply records the actual invalidation count of an arm-switch
// install (the migration model's ground truth from the reconfiguration
// machinery).
func (c *Controller) NoteApply(itemsDropped int) { c.droppedItems += itemsDropped }

// ActiveArm returns the live arm's name ("" before the first decision).
func (c *Controller) ActiveArm() string {
	if c.live < 0 {
		return ""
	}
	return c.arms[c.live].Name()
}

// Switches returns how many times the live arm changed.
func (c *Controller) Switches() int { return c.switches }

// ArmNames returns the configured arm names in bandit order.
func (c *Controller) ArmNames() []string {
	out := make([]string, len(c.arms))
	for i, a := range c.arms {
		out[i] = a.Name()
	}
	return out
}

// ModeledAMATNS is the run's access-weighted modeled AMAT including the
// charged migration cost — the end-to-end figure of merit the
// EXPERIMENTS.md adaptive sweep compares across arms.
func (c *Controller) ModeledAMATNS() float64 {
	if c.accTotal == 0 {
		return 0
	}
	return (c.weightedNS + c.migrateNS) / float64(c.accTotal)
}

// ReportTelemetry publishes the controller's counters under prefix
// ("adapt"): epochs, switch count, live arm index, migration cost, the
// modeled AMAT, and per-arm posterior means and pick counts.
func (c *Controller) ReportTelemetry(reg *telemetry.Registry, prefix string) {
	reg.PutUint(prefix+".epochs", uint64(c.epochs))
	reg.PutUint(prefix+".switches", uint64(c.switches))
	live := c.live
	if live < 0 {
		live = 0
	}
	reg.PutUint(prefix+".live_arm", uint64(live))
	reg.PutUint(prefix+".migrated_rows", c.migratedRows)
	reg.PutFloat(prefix+".migrate_ns", c.migrateNS)
	reg.PutFloat(prefix+".migrate_pj", c.migratePJ)
	reg.PutUint(prefix+".dropped_items", uint64(c.droppedItems))
	reg.PutFloat(prefix+".modeled_amat_ns", c.ModeledAMATNS())
	means := c.bandit.means()
	for i, a := range c.arms {
		reg.PutFloat(fmt.Sprintf("%s.arm.%s.mean", prefix, a.Name()), means[i])
		reg.PutUint(fmt.Sprintf("%s.arm.%s.picks", prefix, a.Name()), c.picks[i])
	}
}
