package adapt

import (
	"testing"

	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// BenchmarkShadowScore measures the per-epoch cost of scoring one arm's
// candidate allocation — the marginal work NDPExt-MAB adds per arm per
// epoch over the plain ndpext design (BENCH_adapt.json baseline).
func BenchmarkShadowScore(b *testing.B) {
	m := testModel()
	ins := testInputs()
	allocs, err := (greedyArm{}).Decide(testConfig(), ins)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Score(ins, allocs)
	}
}

// BenchmarkDecide measures one full epoch decision over the default
// four arms: candidates, scores, posterior update, Thompson sample.
func BenchmarkDecide(b *testing.B) {
	c, err := New(Params{}, 1, testModel())
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	ins := testInputs()
	live := map[stream.ID]streamcache.Allocation{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := c.Decide(cfg, ins, live, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		live = d.Allocs
	}
}

// BenchmarkPaperArm isolates the expensive arm so the shadow overhead
// (BenchmarkDecide minus this) is visible in the report.
func BenchmarkPaperArm(b *testing.B) {
	cfg := testConfig()
	ins := testInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (paperArm{}).Decide(cfg, ins); err != nil {
			b.Fatal(err)
		}
	}
}
