package adapt

import (
	"sort"

	"ndpext/internal/policy"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// CostModel holds the machine constants the shadow evaluator needs to
// turn an allocation plus the epoch's miss curves into a modeled
// average access time (ns) and energy (pJ). The system layer fills it
// from the same latency/energy sources the simulator itself uses, so
// shadow scores and simulated outcomes move together.
type CostModel struct {
	RowBytes int
	// DramHitNS is the DRAM-cache hit service time at the serving unit.
	DramHitNS float64
	// MissNS is the extended-memory round trip a DRAM-cache miss pays.
	MissNS float64
	// NetNS returns the interconnect latency from accessor u to unit v
	// (0 for u == v).
	NetNS func(u, v int) float64
	// HitPJ / MissPJ are the modeled per-access energies of the two
	// outcomes, weighted into the score by Params.EnergyWeight.
	HitPJ, MissPJ float64
	// EnergyWeight converts pJ to the score's ns axis.
	EnergyWeight float64
}

// Score computes the access-weighted modeled AMAT (ns per access, plus
// the weighted energy term) of installing allocs for the profiled
// epoch. Each accessor pays its replication group's miss rate — the
// global curve when the stream is shared, the per-core curve when it is
// replicated (splitting accessors destroys cross-core reuse, §V-C) —
// and hits travel to the nearest unit of its group holding rows.
// Streams or groups without any allocated rows miss every access.
// Iteration is in sorted (stream, unit) order so the floating-point sum
// is deterministic.
func (m CostModel) Score(ins []policy.StreamInput, allocs map[stream.ID]streamcache.Allocation) float64 {
	var total float64
	var accTotal uint64
	for _, in := range accessedByID(ins) {
		a, ok := allocs[in.SID]
		groups := 0
		if ok {
			groups = len(a.GroupIDs())
		}
		curve := in.Curve
		if groups > 1 && len(in.LocalCurve.Points) > 0 {
			curve = in.LocalCurve
		}
		for _, u := range sortedAccessors(in.Acc) {
			w := float64(in.Acc[u])
			accTotal += in.Acc[u]
			mr := 1.0
			hitNet := 0.0
			if ok && groups > 0 && u < len(a.Groups) {
				g := a.Groups[u]
				groupBytes := int64(a.GroupRows(g)) * int64(m.RowBytes)
				if groupBytes > 0 {
					mr = curve.MissRateAt(groupBytes)
					hitNet = m.nearestNS(u, a, g)
				}
			}
			cost := mr*m.MissNS + (1-mr)*(m.DramHitNS+hitNet)
			epj := mr*m.MissPJ + (1-mr)*m.HitPJ
			total += w * (cost + m.EnergyWeight*epj)
		}
	}
	if accTotal == 0 {
		return 0
	}
	return total / float64(accTotal)
}

// nearestNS is the interconnect latency from accessor u to the nearest
// unit of group g holding rows.
func (m CostModel) nearestNS(u int, a streamcache.Allocation, g uint8) float64 {
	best := -1.0
	for v := range a.Shares {
		if a.Shares[v] == 0 || a.Groups[v] != g {
			continue
		}
		lat := 0.0
		if m.NetNS != nil {
			lat = m.NetNS(u, v)
		}
		if best < 0 || lat < best {
			best = lat
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// MovedRows estimates the DRAM-cache rows that must be refilled when
// replacing the live allocation with cand: rows a unit gains, plus rows
// it keeps while its replication group id changes (the consistent-hash
// ring is rebuilt, so retained capacity still refills). This is the
// migration model's unit of charge.
func MovedRows(live, cand map[stream.ID]streamcache.Allocation) uint64 {
	var moved uint64
	for _, sid := range unionSIDs(live, cand) {
		o := live[sid]
		n := cand[sid]
		units := len(o.Shares)
		if len(n.Shares) > units {
			units = len(n.Shares)
		}
		for u := 0; u < units; u++ {
			var os, ns uint32
			var og, ng uint8
			if u < len(o.Shares) {
				os, og = o.Shares[u], o.Groups[u]
			}
			if u < len(n.Shares) {
				ns, ng = n.Shares[u], n.Groups[u]
			}
			if ns > os {
				moved += uint64(ns - os)
			}
			if og != ng {
				kept := os
				if ns < kept {
					kept = ns
				}
				moved += uint64(kept)
			}
		}
	}
	return moved
}

// unionSIDs returns the sorted union of the two maps' keys.
func unionSIDs(a, b map[stream.ID]streamcache.Allocation) []stream.ID {
	seen := make(map[stream.ID]bool, len(a)+len(b))
	var out []stream.ID
	for sid := range a {
		if !seen[sid] {
			seen[sid] = true
			out = append(out, sid)
		}
	}
	for sid := range b {
		if !seen[sid] {
			seen[sid] = true
			out = append(out, sid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
