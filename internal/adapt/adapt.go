// Package adapt implements NDPExt-MAB: bandit-driven online selection
// of the epoch configuration policy. Instead of trusting one fixed
// configurator, the host runtime keeps a set of candidate policies
// ("arms") — the paper's max-flow optimizer plus cheaper heuristics with
// different bias — and every epoch scores what each arm *would* have
// installed against the freshly harvested miss curves (shadow
// evaluation: a modeled AMAT + energy estimate, no second simulation).
// A seeded Thompson-sampling bandit over the per-epoch rewards picks
// the live arm; switching arms pays a configurable migration penalty,
// so the bandit only chases a better policy when the gap covers the
// reconfiguration cost.
//
// Everything here is deterministic given the bandit seed: the arms are
// deterministic functions of their inputs, the evaluator iterates in
// sorted order, and the sampler draws from the simulator's seeded RNG.
// Identical Config (including seed and arm set) therefore yields
// byte-identical results, keeping content-addressed caching sound.
package adapt

import (
	"fmt"
	"sort"
	"strings"

	"ndpext/internal/policy"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// DefaultArms is the arm set used when Params.Arms is empty, in bandit
// index order.
const DefaultArms = "paper,static,greedy,replicate"

// Params tunes the adaptive controller. The zero value selects the
// defaults (all four arms, the default migration model); every field is
// a scalar or string so the struct canonicalizes deterministically with
// %+v inside system.Config.CanonicalBytes.
type Params struct {
	// Arms is the comma-separated arm list ("" = DefaultArms). Order is
	// the bandit index order; a single name degenerates to that fixed
	// policy run through the same scoring machinery (the fixed-arm
	// baselines of the EXPERIMENTS.md sweep).
	Arms string
	// MigrateRowNS is the modeled latency cost of refilling one moved
	// DRAM-cache row after an arm switch (charged per moved row,
	// amortized over the epoch's accesses when scoring). 0 = default.
	MigrateRowNS float64
	// MigrateRowPJ is the modeled energy per moved row (telemetry only;
	// it never enters the simulated energy.Breakdown, whose total must
	// stay the exact sum of its simulated components). 0 = default.
	MigrateRowPJ float64
	// Decay is the per-epoch discount on the Beta posteriors, so the
	// bandit tracks phase changes instead of averaging over them.
	// 0 = default; must stay in (0, 1].
	Decay float64
	// ObsWeight is the pseudo-count each epoch's observation adds to a
	// posterior. Shadow evaluation is full-information — every arm is
	// scored every epoch, not just the pulled one — so posteriors may
	// tighten faster than a one-pull bandit's. Higher converges faster
	// but chases reward noise harder. 0 = default.
	ObsWeight float64
	// SwitchMargin is the Thompson hysteresis: a challenger's sampled
	// value must exceed the live arm's by this margin before the bandit
	// switches, so posterior noise alone never pays the migration cost.
	// 0 = default; negative disables hysteresis.
	SwitchMargin float64
	// EnergyWeight converts the modeled per-access energy (pJ) into the
	// score's ns axis. 0 = default (a small tie-breaking weight).
	EnergyWeight float64
}

// Default parameter values, applied by New when the field is zero.
const (
	defaultMigrateRowNS = 200.0
	defaultMigrateRowPJ = 2000.0
	defaultDecay        = 0.9
	defaultObsWeight    = 4.0
	defaultSwitchMargin = 0.02
	defaultEnergyWeight = 0.001
)

func (p Params) withDefaults() Params {
	if p.Arms == "" {
		p.Arms = DefaultArms
	}
	if p.MigrateRowNS == 0 {
		p.MigrateRowNS = defaultMigrateRowNS
	}
	if p.MigrateRowPJ == 0 {
		p.MigrateRowPJ = defaultMigrateRowPJ
	}
	if p.Decay == 0 {
		p.Decay = defaultDecay
	}
	if p.ObsWeight == 0 {
		p.ObsWeight = defaultObsWeight
	}
	if p.SwitchMargin == 0 {
		p.SwitchMargin = defaultSwitchMargin
	}
	if p.SwitchMargin < 0 {
		p.SwitchMargin = 0
	}
	if p.EnergyWeight == 0 {
		p.EnergyWeight = defaultEnergyWeight
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	q := p.withDefaults()
	if _, err := ParseArms(q.Arms); err != nil {
		return err
	}
	if q.Decay <= 0 || q.Decay > 1 {
		return fmt.Errorf("adapt: decay %g outside (0, 1]", q.Decay)
	}
	if q.MigrateRowNS < 0 || q.MigrateRowPJ < 0 || q.EnergyWeight < 0 {
		return fmt.Errorf("adapt: negative cost parameter in %+v", q)
	}
	if q.ObsWeight < 0 {
		return fmt.Errorf("adapt: negative observation weight %g", q.ObsWeight)
	}
	return nil
}

// Arm is one candidate configuration policy: a deterministic function
// from the epoch's profiles to a full allocation, with the same
// contract as policy.Optimize (writable streams single-group, dead
// units empty, per-unit capacity respected).
type Arm interface {
	Name() string
	Decide(cfg policy.Config, ins []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error)
}

// armNames lists the registered arm constructors in canonical order.
var armNames = []string{"paper", "static", "greedy", "replicate"}

func newArm(name string) (Arm, bool) {
	switch name {
	case "paper":
		return paperArm{}, true
	case "static":
		return staticArm{}, true
	case "greedy":
		return greedyArm{}, true
	case "replicate":
		return replicateArm{}, true
	}
	return nil, false
}

// ParseArms resolves a comma-separated arm list ("" = DefaultArms).
// Duplicates are rejected: each arm owns one bandit index.
func ParseArms(s string) ([]Arm, error) {
	if s == "" {
		s = DefaultArms
	}
	seen := map[string]bool{}
	var arms []Arm
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(strings.ToLower(f))
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("adapt: duplicate arm %q", name)
		}
		seen[name] = true
		a, ok := newArm(name)
		if !ok {
			return nil, fmt.Errorf("adapt: unknown arm %q (valid: %s)", name, strings.Join(armNames, ", "))
		}
		arms = append(arms, a)
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("adapt: empty arm list %q", s)
	}
	return arms, nil
}

// paperArm wraps the paper's Algorithm 1 max-flow optimizer — the
// expensive, high-quality arm.
type paperArm struct{}

func (paperArm) Name() string { return "paper" }

func (paperArm) Decide(cfg policy.Config, ins []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	allocs, _, err := policy.Optimize(cfg, ins)
	return allocs, err
}

// staticArm is the equal even-split of the NDPExt-static baseline:
// oblivious to the profile, but free of churn and never wrong by more
// than its bias.
type staticArm struct{}

func (staticArm) Name() string { return "static" }

func (staticArm) Decide(cfg policy.Config, ins []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	allocs, err := policy.StaticEqual(cfg, ins)
	if err != nil {
		return nil, err
	}
	// StaticEqual has no dead-unit notion; zero the shares it placed on
	// failed vaults (the freed rows go unused for the epoch).
	for _, u := range cfg.DeadUnits {
		for sid, a := range allocs {
			a.Shares[u] = 0
			allocs[sid] = a
		}
	}
	return allocs, nil
}

// greedyArm sizes by recency: each unit's rows are split among the
// streams accessing it, proportionally to their decayed access weight
// at that unit, all streams single-group. It reacts instantly to a
// phase change (the very property the paper's damped optimizer trades
// away) at the price of ignoring miss curves entirely.
type greedyArm struct{}

func (greedyArm) Name() string { return "greedy" }

func (greedyArm) Decide(cfg policy.Config, ins []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumUnits
	dead := deadSet(cfg)
	wTot := make([]float64, n)
	for i := range ins {
		for u, a := range ins[i].Acc {
			if !dead[u] {
				wTot[u] += float64(a)
			}
		}
	}
	order := accessedByID(ins)
	out := make(map[stream.ID]streamcache.Allocation, len(order))
	nextRow := make([]uint32, n)
	affineLeft := affineBudget(cfg)
	for _, in := range order {
		a := streamcache.NewAllocation(n)
		for _, u := range sortedAccessors(in.Acc) {
			if dead[u] || wTot[u] == 0 {
				continue
			}
			rows := uint32(float64(cfg.UnitRows) * float64(in.Acc[u]) / wTot[u])
			if rows == 0 {
				rows = 1
			}
			rows = capRows(rows, cfg.UnitRows, nextRow[u], in.Affine, &affineLeft[u])
			if rows == 0 {
				continue
			}
			a.Shares[u] = rows
			a.RowBase[u] = nextRow[u]
			nextRow[u] += rows
		}
		out[in.SID] = a
	}
	return out, nil
}

// replicateArm is replication-heavy: every read-only stream gets one
// replication group per accessing unit (up to MaxGroups), each accessor
// holding a local copy sized to its fair share of the unit. Writable
// streams stay single-group (§IV-B). It wins when hot read-only data is
// reused per-core (interconnect hops dominate) and loses capacity when
// it is not.
type replicateArm struct{}

func (replicateArm) Name() string { return "replicate" }

func (replicateArm) Decide(cfg policy.Config, ins []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumUnits
	dead := deadSet(cfg)
	cnt := make([]int, n) // streams accessing each live unit
	for i := range ins {
		for u := range ins[i].Acc {
			if !dead[u] {
				cnt[u]++
			}
		}
	}
	order := accessedByID(ins)
	out := make(map[stream.ID]streamcache.Allocation, len(order))
	nextRow := make([]uint32, n)
	affineLeft := affineBudget(cfg)
	for _, in := range order {
		accs := sortedAccessors(in.Acc)
		live := accs[:0:0]
		for _, u := range accs {
			if !dead[u] {
				live = append(live, u)
			}
		}
		a := streamcache.NewAllocation(n)
		if len(live) == 0 {
			out[in.SID] = a
			continue
		}
		k := 1
		if in.ReadOnly {
			k = len(live)
			if k > cfg.MaxGroups {
				k = cfg.MaxGroups
			}
		}
		for i, u := range live {
			a.Groups[u] = uint8(i * k / len(live))
			share := cfg.UnitRows / uint32(cnt[u])
			if share == 0 {
				share = 1
			}
			share = capRows(share, cfg.UnitRows, nextRow[u], in.Affine, &affineLeft[u])
			if share == 0 {
				continue
			}
			a.Shares[u] = share
			a.RowBase[u] = nextRow[u]
			nextRow[u] += share
		}
		// Non-accessors read from the nearest accessor's group
		// (nearest by unit index, a proxy for NoC distance).
		for u := 0; u < n; u++ {
			if _, ok := in.Acc[u]; ok && !dead[u] {
				continue
			}
			best, bestD := live[0], abs(u-live[0])
			for _, v := range live[1:] {
				if d := abs(u - v); d < bestD {
					best, bestD = v, d
				}
			}
			a.Groups[u] = a.Groups[best]
		}
		out[in.SID] = a
	}
	return out, nil
}

// deadSet turns the config's dead-unit list into a lookup set.
func deadSet(cfg policy.Config) map[int]bool {
	if len(cfg.DeadUnits) == 0 {
		return nil
	}
	m := make(map[int]bool, len(cfg.DeadUnits))
	for _, u := range cfg.DeadUnits {
		m[u] = true
	}
	return m
}

// affineBudget returns the per-unit affine row budget (§IV-C cap).
func affineBudget(cfg policy.Config) []uint32 {
	budget := cfg.AffineCapRows
	if budget == 0 || budget > cfg.UnitRows {
		budget = cfg.UnitRows
	}
	out := make([]uint32, cfg.NumUnits)
	for u := range out {
		out[u] = budget
	}
	return out
}

// capRows clamps a planned share to the unit's remaining capacity and,
// for affine streams, to the remaining affine budget (decremented on
// success).
func capRows(rows, unitRows, used uint32, affine bool, affineLeft *uint32) uint32 {
	if used >= unitRows {
		return 0
	}
	if rem := unitRows - used; rows > rem {
		rows = rem
	}
	if affine {
		if rows > *affineLeft {
			rows = *affineLeft
		}
		*affineLeft -= rows
	}
	return rows
}

// accessedByID returns the inputs with accesses, ascending by stream ID
// (the deterministic iteration order every arm shares).
func accessedByID(ins []policy.StreamInput) []*policy.StreamInput {
	out := make([]*policy.StreamInput, 0, len(ins))
	for i := range ins {
		if len(ins[i].Acc) > 0 {
			out = append(out, &ins[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// sortedAccessors returns the access map's unit keys ascending.
func sortedAccessors(acc map[int]uint64) []int {
	out := make([]int, 0, len(acc))
	for u := range acc {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
