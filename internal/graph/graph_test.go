package graph

import (
	"sort"
	"testing"
)

func TestUniformStructure(t *testing.T) {
	g := Uniform(1000, 8, 42)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 8000 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestUniformDegreesRoughlyEven(t *testing.T) {
	g := Uniform(500, 10, 7)
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	// Uniform graphs have no heavy tail: max degree stays near the mean.
	if maxDeg > 40 {
		t.Fatalf("uniform max degree %d is implausibly skewed", maxDeg)
	}
}

func TestRMATHeavyTail(t *testing.T) {
	g := RMAT(12, 8, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	mean := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(degs[0]) < 8*mean {
		t.Fatalf("RMAT max degree %d not heavy-tailed (mean %.1f)", degs[0], mean)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := RMAT(10, 8, 5)
	for v := 0; v < g.NumVertices(); v++ {
		adj := g.Neighbors(v)
		if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
			t.Fatalf("adjacency of %d not sorted", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := RMAT(10, 4, 11)
	b := RMAT(10, 4, 11)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := RMAT(10, 4, 12)
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Uniform(10, 2, 1)
	g.Edges[0] = 1000
	if g.Validate() == nil {
		t.Fatal("out-of-range edge validated")
	}
	g = Uniform(10, 2, 1)
	g.Offsets[5] = g.Offsets[6] + 1
	if g.Validate() == nil {
		t.Fatal("non-monotonic offsets validated")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"uniform zero":  func() { Uniform(0, 2, 1) },
		"rmat zero":     func() { RMAT(0, 2, 1) },
		"rmat huge":     func() { RMAT(40, 2, 1) },
		"rmat no edges": func() { RMAT(4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
