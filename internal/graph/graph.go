// Package graph provides the synthetic graphs backing the GAP-style
// workloads (bfs, pr, cc, bc, tc) and the gnn workload: a compact CSR
// representation plus deterministic uniform and RMAT (power-law)
// generators. The paper evaluates on real GAP inputs; synthetic graphs
// with matching structure (heavy-tailed degrees for RMAT) exercise the
// same access patterns.
package graph

import (
	"fmt"
	"sort"

	"ndpext/internal/sim"
)

// CSR is a directed graph in compressed sparse row form.
type CSR struct {
	Offsets []uint32 // len = NumVertices+1
	Edges   []uint32 // len = NumEdges
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int { return len(g.Edges) }

// Degree returns vertex v's out-degree.
func (g *CSR) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of v (shared storage; do not
// modify).
func (g *CSR) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks structural invariants.
func (g *CSR) Validate() error {
	if len(g.Offsets) == 0 {
		return fmt.Errorf("graph: empty offsets")
	}
	if g.Offsets[0] != 0 || int(g.Offsets[len(g.Offsets)-1]) != len(g.Edges) {
		return fmt.Errorf("graph: offset endpoints wrong")
	}
	n := uint32(g.NumVertices())
	for i := 1; i < len(g.Offsets); i++ {
		if g.Offsets[i] < g.Offsets[i-1] {
			return fmt.Errorf("graph: offsets not monotonic at %d", i)
		}
	}
	for i, e := range g.Edges {
		if e >= n {
			return fmt.Errorf("graph: edge %d targets %d >= %d vertices", i, e, n)
		}
	}
	return nil
}

// fromPairs builds a CSR from (src, dst) pairs.
func fromPairs(n int, src, dst []uint32) *CSR {
	offsets := make([]uint32, n+1)
	for _, s := range src {
		offsets[s+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	edges := make([]uint32, len(src))
	cursor := make([]uint32, n)
	for i, s := range src {
		edges[offsets[s]+cursor[s]] = dst[i]
		cursor[s]++
	}
	g := &CSR{Offsets: offsets, Edges: edges}
	// Sort each adjacency list (GAP-style) for locality and for the
	// intersection-based triangle counting.
	for v := 0; v < n; v++ {
		adj := g.Edges[offsets[v]:offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g
}

// Uniform generates a graph with n vertices and about n*degree edges with
// uniformly random endpoints.
func Uniform(n, degree int, seed uint64) *CSR {
	if n <= 0 || degree < 0 {
		panic(fmt.Sprintf("graph: Uniform(%d, %d)", n, degree))
	}
	rng := sim.NewRNG(seed)
	m := n * degree
	src := make([]uint32, m)
	dst := make([]uint32, m)
	for i := 0; i < m; i++ {
		src[i] = uint32(rng.Intn(n))
		dst[i] = uint32(rng.Intn(n))
	}
	return fromPairs(n, src, dst)
}

// RMAT generates a Kronecker/RMAT graph with 2^scale vertices and
// edgeFactor*2^scale edges using the standard (0.57, 0.19, 0.19, 0.05)
// partition probabilities, yielding the heavy-tailed degree distribution
// of real-world graphs.
func RMAT(scale, edgeFactor int, seed uint64) *CSR {
	if scale <= 0 || scale > 28 || edgeFactor <= 0 {
		panic(fmt.Sprintf("graph: RMAT(%d, %d)", scale, edgeFactor))
	}
	rng := sim.NewRNG(seed)
	n := 1 << scale
	m := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	src := make([]uint32, m)
	dst := make([]uint32, m)
	for i := 0; i < m; i++ {
		var s, d uint32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				d |= 1 << bit
			case r < a+b+c:
				s |= 1 << bit
			default:
				s |= 1 << bit
				d |= 1 << bit
			}
		}
		src[i], dst[i] = s, d
	}
	return fromPairs(n, src, dst)
}
