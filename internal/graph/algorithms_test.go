package graph

import (
	"math"
	"testing"
	"testing/quick"

	"ndpext/internal/sim"
)

// line builds the path graph 0 -> 1 -> ... -> n-1 (directed both ways).
func line(n int) *CSR {
	var src, dst []uint32
	for i := 0; i+1 < n; i++ {
		src = append(src, uint32(i), uint32(i+1))
		dst = append(dst, uint32(i+1), uint32(i))
	}
	return fromPairs(n, src, dst)
}

// triangle builds the complete graph K3 plus an isolated vertex.
func triangleK3() *CSR {
	src := []uint32{0, 0, 1, 1, 2, 2}
	dst := []uint32{1, 2, 0, 2, 0, 1}
	return fromPairs(4, src, dst)
}

func TestBFSOnLine(t *testing.T) {
	g := line(6)
	par := BFS(g, 0)
	for v := 1; v < 6; v++ {
		if par[v] != int32(v-1) {
			t.Fatalf("parent[%d] = %d, want %d", v, par[v], v-1)
		}
	}
	if par[0] != 0 {
		t.Fatal("root not its own parent")
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := triangleK3() // vertex 3 is isolated
	par := BFS(g, 0)
	if par[3] != -1 {
		t.Fatalf("isolated vertex reached: parent %d", par[3])
	}
	if BFS(g, -1)[0] != -1 {
		t.Fatal("invalid root should reach nothing")
	}
}

// Property: every reached vertex's parent chain terminates at the root.
func TestBFSParentChainsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(200, 3, seed)
		root := int(seed % 200)
		par := BFS(g, root)
		for v := 0; v < 200; v++ {
			if par[v] == -1 {
				continue
			}
			u, steps := v, 0
			for u != root {
				u = int(par[u])
				steps++
				if steps > 200 {
					return false // cycle in parent chain
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsOnDisjointParts(t *testing.T) {
	// Two triangles with no edges between them.
	src := []uint32{0, 1, 2, 3, 4, 5}
	dst := []uint32{1, 2, 0, 4, 5, 3}
	g := fromPairs(6, src, dst)
	labels := Components(g)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("first component split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("second component split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("disjoint components merged: %v", labels)
	}
}

// Property: component labels agree with BFS reachability on undirected
// graphs (every BFS-reachable pair shares a label).
func TestComponentsMatchBFSProperty(t *testing.T) {
	f := func(seed uint64) bool {
		// Build an undirected graph (each edge in both directions).
		rng := sim.NewRNG(seed)
		n := 50
		var src, dst []uint32
		for i := 0; i < 60; i++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			src = append(src, a, b)
			dst = append(dst, b, a)
		}
		g := fromPairs(n, src, dst)
		labels := Components(g)
		par := BFS(g, 0)
		for v := 0; v < n; v++ {
			if par[v] != -1 && labels[v] != labels[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCountTrianglesK3(t *testing.T) {
	if got := CountTriangles(triangleK3()); got != 1 {
		t.Fatalf("K3 triangles = %d, want 1", got)
	}
	if got := CountTriangles(line(5)); got != 0 {
		t.Fatalf("path graph triangles = %d, want 0", got)
	}
}

// bruteTriangles checks all vertex triples directly.
func bruteTriangles(g *CSR) int {
	n := g.NumVertices()
	has := make(map[uint64]bool)
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(u) {
			has[uint64(u)<<32|uint64(e)] = true
		}
	}
	edge := func(a, b int) bool {
		return has[uint64(a)<<32|uint64(b)]
	}
	total := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !edge(u, v) {
				continue
			}
			for w := v + 1; w < n; w++ {
				if edge(u, w) && edge(v, w) {
					total++
				}
			}
		}
	}
	return total
}

// Property: the intersection counter matches brute force on small
// symmetric graphs.
func TestCountTrianglesMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := sim.NewRNG(seed)
		n := 24
		var src, dst []uint32
		for i := 0; i < 50; i++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if a == b {
				continue
			}
			src = append(src, a, b)
			dst = append(dst, b, a)
		}
		g := fromPairs(n, src, dst)
		want := bruteTriangles(g)
		if got := CountTriangles(g); got != want {
			t.Fatalf("seed %d: triangles = %d, brute force = %d", seed, got, want)
		}
	}
}

func TestPageRankConservation(t *testing.T) {
	g := RMAT(8, 4, 9)
	ranks := PageRank(g, 20, 0.85)
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank mass = %v, want 1", sum)
	}
	// Heavy-tailed graph: the max rank should far exceed the mean.
	maxR := 0.0
	for _, r := range ranks {
		if r > maxR {
			maxR = r
		}
	}
	if maxR < 5.0/float64(g.NumVertices()) {
		t.Fatalf("max rank %v implausibly flat", maxR)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// A directed cycle has the uniform stationary distribution.
	n := 8
	var src, dst []uint32
	for i := 0; i < n; i++ {
		src = append(src, uint32(i))
		dst = append(dst, uint32((i+1)%n))
	}
	g := fromPairs(n, src, dst)
	ranks := PageRank(g, 50, 0.85)
	for v, r := range ranks {
		if math.Abs(r-1.0/float64(n)) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %v, want uniform %v", v, r, 1.0/float64(n))
		}
	}
}
