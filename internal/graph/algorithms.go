package graph

// Reference implementations of the kernels the workload generators
// emulate. The generators emit access traces while computing; these
// standalone versions give testable ground truth and a reusable graph
// toolkit.

// BFS returns the parent array of a breadth-first traversal from root
// (-1 for unreached vertices; the root is its own parent).
func BFS(g *CSR, root int) []int32 {
	n := g.NumVertices()
	par := make([]int32, n)
	for i := range par {
		par[i] = -1
	}
	if root < 0 || root >= n {
		return par
	}
	par[root] = int32(root)
	frontier := []int{root}
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, e := range g.Neighbors(u) {
				if par[e] == -1 {
					par[e] = int32(u)
					next = append(next, int(e))
				}
			}
		}
		frontier = next
	}
	return par
}

// Components labels each vertex with the smallest vertex ID reachable in
// its weakly-connected component (treating edges as undirected), via
// label propagation until a fixed point.
func Components(g *CSR) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			for _, e := range g.Neighbors(v) {
				switch {
				case labels[e] < labels[v]:
					labels[v] = labels[e]
					changed = true
				case labels[v] < labels[e]:
					labels[e] = labels[v]
					changed = true
				}
			}
		}
	}
	return labels
}

// CountTriangles counts unordered vertex triples (u, v, w), u < v < w,
// where the directed edges u->v, u->w, and v->w all exist — the
// ordered-intersection method GAP's tc uses on a symmetrized, sorted
// graph.
func CountTriangles(g *CSR) int {
	total := 0
	for u := 0; u < g.NumVertices(); u++ {
		nu := dedupAbove(g.Neighbors(u), uint32(u))
		for _, v := range nu {
			nv := dedupAbove(g.Neighbors(int(v)), v)
			total += intersectCount(nu, nv)
		}
	}
	return total
}

// dedupAbove returns the sorted unique neighbours strictly greater than
// lo (adjacency lists may contain duplicates from multigraph edges).
func dedupAbove(adj []uint32, lo uint32) []uint32 {
	out := make([]uint32, 0, len(adj))
	var last uint32
	have := false
	for _, e := range adj {
		if e <= lo || (have && e == last) {
			continue
		}
		out = append(out, e)
		last, have = e, true
	}
	return out
}

// intersectCount merges two sorted unique lists and counts the overlap.
func intersectCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// PageRank runs iters iterations of damped PageRank (damping d) and
// returns the final rank vector (sums to ~1 on graphs without sinks).
func PageRank(g *CSR, iters int, d float64) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	next := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - d) / float64(n)
		for i := range next {
			next[i] = base
		}
		for u := 0; u < n; u++ {
			deg := g.Degree(u)
			if deg == 0 {
				// Sink: redistribute uniformly.
				share := d * ranks[u] / float64(n)
				for i := range next {
					next[i] += share
				}
				continue
			}
			share := d * ranks[u] / float64(deg)
			for _, e := range g.Neighbors(u) {
				next[e] += share
			}
		}
		ranks, next = next, ranks
	}
	return ranks
}
