package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ndpext/internal/server/scheduler"
	"ndpext/internal/server/store"
	"ndpext/internal/server/transport"
)

// fastOpts makes retries effectively instant for tests.
func fastOpts() Options {
	return Options{
		MaxAttempts:  4,
		BaseDelay:    time.Millisecond,
		MaxDelay:     5 * time.Millisecond,
		PollInterval: 10 * time.Millisecond,
		Jitter:       func() float64 { return 0.5 },
	}
}

// newServedStack runs a real scheduler behind the real transport.
func newServedStack(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := scheduler.New(st, nil, scheduler.Options{Workers: 2, QueueDepth: 16})
	s.Start()
	srv := httptest.NewServer(transport.Handler(s))
	t.Cleanup(func() {
		srv.Close()
		s.Drain(context.Background())
	})
	return srv
}

// flaky wraps a handler, failing the first n requests with code.
func flaky(inner http.Handler, n int64, code int, header http.Header) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			for k, vs := range header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"error":"injected %d"}`, code)
			return
		}
		inner.ServeHTTP(w, r)
	}), &calls
}

// TestBackoff pins the retry delays: exponential, jittered in
// [0.5, 1.5)·step, capped at MaxDelay, overridden by Retry-After.
func TestBackoff(t *testing.T) {
	c := New("http://x", Options{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  time.Second,
		Jitter:    func() float64 { return 0.5 },
	})
	for n, want := range map[int]time.Duration{
		0: 100 * time.Millisecond, // 100ms · (0.5+0.5)
		1: 200 * time.Millisecond,
		2: 400 * time.Millisecond,
		5: time.Second, // capped: 3.2s -> 1s
		9: time.Second,
	} {
		if got := c.backoff(n, 0); got != want {
			t.Errorf("backoff(%d) = %v, want %v", n, got, want)
		}
	}
	if got := c.backoff(0, 7*time.Second); got != 7*time.Second {
		t.Errorf("Retry-After override: got %v, want 7s", got)
	}
	// Jitter bounds: with jitter -> 0.999 the delay stays below 1.5·step.
	hi := New("http://x", Options{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Minute,
		Jitter: func() float64 { return 0.999 }})
	if got := hi.backoff(0, 0); got < 100*time.Millisecond || got >= 150*time.Millisecond {
		t.Errorf("jittered backoff(0) = %v, want [100ms, 150ms)", got)
	}
}

// TestRetriesTransientFailures: 503s and 429s are retried until the
// real handler answers; the attempt count is exact.
func TestRetriesTransientFailures(t *testing.T) {
	for _, code := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests, http.StatusBadGateway} {
		t.Run(fmt.Sprint(code), func(t *testing.T) {
			handler, calls := flaky(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusAccepted)
				fmt.Fprint(w, `{"id":"j-000001","state":"queued"}`)
			}), 2, code, nil)
			srv := httptest.NewServer(handler)
			defer srv.Close()

			c := New(srv.URL, fastOpts())
			st, err := c.Submit(context.Background(), scheduler.JobSpec{Workload: "pr", Accesses: 1000})
			if err != nil {
				t.Fatalf("Submit through flaky front: %v", err)
			}
			if st.ID == "" {
				t.Fatal("no job ID")
			}
			if got := calls.Load(); got != 3 {
				t.Errorf("request count = %d, want 3 (2 failures + 1 success)", got)
			}
		})
	}
}

// TestTerminalErrorsAreNotRetried: 400 and 422 fail immediately with
// one request.
func TestTerminalErrorsAreNotRetried(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusInternalServerError} {
		var calls atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(code)
			fmt.Fprintf(w, `{"error":"nope"}`)
		}))
		c := New(srv.URL, fastOpts())
		_, err := c.Submit(context.Background(), scheduler.JobSpec{Workload: "pr"})
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != code {
			t.Errorf("code %d: err = %v, want APIError with that code", code, err)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("code %d: %d requests, want exactly 1 (no retry)", code, got)
		}
		srv.Close()
	}
}

// TestRetryAfterHonored: a 429's Retry-After header overrides the
// computed backoff.
func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"j-000001","state":"done"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, fastOpts()) // computed backoff would be ~1ms
	st, err := c.Job(context.Background(), "j-000001")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != scheduler.StateDone {
		t.Fatalf("state = %s", st.State)
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Errorf("retry gap = %v, want >= ~1s from Retry-After", got)
	}
}

// TestSubmitAndAwaitResubmitsVanishedJob: a server restart forgets the
// job table; the client resubmits the content-addressed spec instead of
// erroring out.
func TestSubmitAndAwaitResubmitsVanishedJob(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if submits.Add(1) == 1 {
			// First life of the server: job accepted, then "restart".
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"j-000001","state":"queued"}`)
			return
		}
		// Second life: the identical spec hits the warm cache.
		fmt.Fprint(w, `{"id":"j-000002","state":"done","cache_hit":true,"result":{"ok":true}}`)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound) // restarted: in-memory table gone
		fmt.Fprint(w, `{"error":"no such job"}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	st, err := c.SubmitAndAwait(context.Background(), scheduler.JobSpec{Workload: "pr"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j-000002" || !st.CacheHit {
		t.Fatalf("final status = %+v, want the resubmitted cache hit", st)
	}
	if got := submits.Load(); got != 2 {
		t.Errorf("submit count = %d, want 2", got)
	}
}

// sseHandler scripts one job's event stream across reconnections:
// connection i serves script[min(i, len-1)]. Events are (type, data)
// pairs; the full history grows across connections like the real
// replay-then-follow server.
func sseHandler(script [][][2]string, conns *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		i := int(conns.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		for _, ev := range script[i] {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev[0], ev[1])
			fl.Flush()
		}
		// Connection ends here; without a terminal event the client
		// must reconnect.
	}
}

// TestEventsReconnectResumes: a stream cut mid-way (and a "lagged"
// drop) must resume exactly where it left off via the replay — every
// event delivered once, in order, ending with the terminal event.
func TestEventsReconnectResumes(t *testing.T) {
	e := func(i int) [2]string { return [2]string{"epoch", fmt.Sprintf(`{"epoch":%d}`, i)} }
	terminal := [2]string{"done", `{"state":"done"}`}
	var conns atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j-1/events", sseHandler([][][2]string{
		// Connection 1: two events, then the stream dies.
		{e(0), e(1)},
		// Connection 2: replay + a lagged marker (subscriber overflowed).
		{e(0), e(1), e(2), {"lagged", `{"dropped":3}`}},
		// Connection 3+: the full history, terminal included.
		{e(0), e(1), e(2), e(3), e(4), terminal},
	}, &conns))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := New(srv.URL, fastOpts())
	var got []Event
	for ev := range c.Events(context.Background(), "j-1") {
		got = append(got, ev)
	}
	want := []string{`{"epoch":0}`, `{"epoch":1}`, `{"epoch":2}`, `{"epoch":3}`, `{"epoch":4}`, `{"state":"done"}`}
	if len(got) != len(want) {
		t.Fatalf("delivered %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if string(got[i].Data) != w {
			t.Errorf("event %d = %s %s, want data %s", i, got[i].Type, got[i].Data, w)
		}
	}
	if got[len(got)-1].Type != "done" {
		t.Errorf("last event type = %s, want done", got[len(got)-1].Type)
	}
	if conns.Load() != 3 {
		t.Errorf("connections = %d, want 3 (initial + 2 reconnects)", conns.Load())
	}
}

// TestEndToEnd drives the real stack: submit, await, result, events,
// and a batch — through the resilient client.
func TestEndToEnd(t *testing.T) {
	srv := newServedStack(t)
	c := New(srv.URL, fastOpts())
	ctx := context.Background()

	spec := scheduler.JobSpec{Workload: "pr", Accesses: 1000}
	st, err := c.SubmitAndAwait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != scheduler.StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	doc, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(doc, &res); err != nil || res.SchemaVersion != 1 {
		t.Fatalf("result doc: %v (schema %d)", err, res.SchemaVersion)
	}

	// Events on the finished job: replay ends with the terminal event.
	var lastType string
	for ev := range c.Events(ctx, st.ID) {
		lastType = ev.Type
	}
	if lastType != string(scheduler.StateDone) {
		t.Errorf("final event = %q, want done", lastType)
	}

	// Batch: 1×2 matrix, await, fetch the matrix document.
	bst, err := c.SubmitBatch(ctx, scheduler.BatchSpec{
		Designs:   []string{"NDPExt", "Host"},
		Workloads: []string{"pr"},
		Base:      scheduler.JobSpec{Accesses: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bst, err = c.AwaitBatch(ctx, bst.ID); err != nil {
		t.Fatal(err)
	}
	if bst.State != scheduler.StateDone {
		t.Fatalf("batch state = %s", bst.State)
	}
	if _, err := c.BatchResult(ctx, bst.ID); err != nil {
		t.Fatal(err)
	}
}
