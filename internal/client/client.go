// Package client is the typed Go client for the ndpserve HTTP API,
// built for an unreliable network and a crash-safe server: jittered
// exponential backoff that honors Retry-After on 429/5xx, safe
// idempotent resubmission after ambiguous failures (submissions are
// content-addressed, so submitting twice can only hit the cache), and
// SSE streaming with automatic reconnect that resumes via the server's
// replay-then-follow history when a stream drops or lags.
//
// Retry policy, precisely: network errors, 429, 502, 503, and 504 are
// retried (429's Retry-After hint, when present, overrides the computed
// backoff); every other 4xx — including 422 for quarantined traces —
// and 500 are terminal, surfaced as *APIError. Backoff for attempt n
// sleeps min(MaxDelay, BaseDelay·2ⁿ) scaled by a uniform jitter in
// [0.5, 1.5).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ndpext/internal/server/scheduler"
)

// Options configures a Client. Zero values take the documented
// defaults.
type Options struct {
	// MaxAttempts bounds tries per request (first try included);
	// default 5.
	MaxAttempts int
	// BaseDelay is the first backoff step; default 200ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step; default 10s.
	MaxDelay time.Duration
	// PollInterval paces Await's status polling; default 250ms.
	PollInterval time.Duration
	// HTTPClient overrides the transport; the default has no global
	// timeout (SSE streams are long-lived) — bound calls with contexts.
	HTTPClient *http.Client
	// Jitter returns a uniform sample from [0, 1); default math/rand.
	// Tests inject a constant to make backoff deterministic.
	Jitter func() float64
	// Logf, when set, receives one line per retry ("attempt 2/5 ...");
	// default silent.
	Logf func(format string, args ...any)
	// Headers are added to every request (JSON calls and SSE streams
	// alike). The cluster forwarder stamps its hop-count header here so
	// a receiving peer can detect and break forwarding loops.
	Headers map[string]string
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 200 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 10 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 250 * time.Millisecond
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Jitter == nil {
		o.Jitter = rand.Float64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Client talks to one ndpserve instance.
type Client struct {
	base string
	opt  Options
}

// New builds a client for the server at base (e.g.
// "http://localhost:8080"); a trailing slash is trimmed.
func New(base string, opt Options) *Client {
	return &Client{base: strings.TrimRight(base, "/"), opt: opt.withDefaults()}
}

// APIError is a non-2xx response that retrying cannot fix (or that
// exhausted its retries).
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.StatusCode, e.Message)
}

// ErrUnknownJob marks a job ID the server no longer knows — typically
// because it restarted and lost its in-memory job table. The spec that
// produced the ID can be resubmitted safely: submissions are
// content-addressed, so the retry either hits the warm-restart cache or
// re-runs the identical simulation.
var ErrUnknownJob = errors.New("client: server does not know this job (restarted?); resubmit the spec")

// retryable reports whether a response status is worth another attempt.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the jittered sleep before attempt n (0-based retry
// count). retryAfter, when positive, is the server's hint and wins.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	d := c.opt.BaseDelay << uint(n)
	if d > c.opt.MaxDelay || d <= 0 {
		d = c.opt.MaxDelay
	}
	return time.Duration((0.5 + c.opt.Jitter()) * float64(d))
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errorMessage extracts the server's JSON diagnostic (falling back to
// the raw body).
func errorMessage(body []byte) string {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return doc.Error
	}
	return strings.TrimSpace(string(body))
}

// do performs one JSON round trip with retries, decoding a 2xx body
// into out (when non-nil). notFound, when non-nil, replaces the
// *APIError for 404s.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, notFound error) error {
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.lastBackoff(attempt-1, lastErr)); err != nil {
				return err
			}
			c.opt.Logf("retrying %s %s (attempt %d/%d): %v", method, path, attempt+1, c.opt.MaxAttempts, lastErr)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, v := range c.opt.Headers {
			req.Header.Set(k, v)
		}
		resp, err := c.opt.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = &netError{err}
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound && notFound != nil:
			return notFound
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if readErr != nil {
				lastErr = &netError{readErr}
				continue
			}
			if out == nil {
				return nil
			}
			return json.Unmarshal(respBody, out)
		case retryable(resp.StatusCode):
			apiErr := &APIError{StatusCode: resp.StatusCode, Message: errorMessage(respBody)}
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				lastErr = &retryAfterError{apiErr, time.Duration(secs) * time.Second}
			} else {
				lastErr = apiErr
			}
			continue
		default:
			return &APIError{StatusCode: resp.StatusCode, Message: errorMessage(respBody)}
		}
	}
	return fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.opt.MaxAttempts, unwrapLast(lastErr))
}

// netError wraps a transport-level failure so retries distinguish it
// from server responses.
type netError struct{ err error }

func (e *netError) Error() string { return e.err.Error() }
func (e *netError) Unwrap() error { return e.err }

// retryAfterError carries a 429's Retry-After hint with the error.
type retryAfterError struct {
	*APIError
	after time.Duration
}

// lastBackoff derives the sleep before the next try from the previous
// failure: the server's Retry-After hint when it gave one, jittered
// exponential backoff otherwise.
func (c *Client) lastBackoff(n int, lastErr error) time.Duration {
	var ra *retryAfterError
	if errors.As(lastErr, &ra) {
		return c.backoff(n, ra.after)
	}
	return c.backoff(n, 0)
}

// unwrapLast strips the retry-bookkeeping wrappers for the final error.
func unwrapLast(err error) error {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.APIError
	}
	return err
}

// Submit posts one JobSpec and returns the accepted job's status
// (terminal immediately on a cache hit).
func (c *Client) Submit(ctx context.Context, spec scheduler.JobSpec) (scheduler.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return scheduler.JobStatus{}, err
	}
	var st scheduler.JobStatus
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st, nil)
	return st, err
}

// Job fetches one job's status; ErrUnknownJob when the server does not
// know the ID.
func (c *Client) Job(ctx context.Context, id string) (scheduler.JobStatus, error) {
	var st scheduler.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st, ErrUnknownJob)
	return st, err
}

// Await polls until the job is terminal and returns its final status.
func (c *Client) Await(ctx context.Context, id string) (scheduler.JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return scheduler.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := sleep(ctx, c.opt.PollInterval); err != nil {
			return scheduler.JobStatus{}, err
		}
	}
}

// SubmitAndAwait submits the spec and waits for the terminal status,
// resubmitting when the server forgets the job mid-wait (ErrUnknownJob
// after a restart). Resubmission is exact, not best-effort: the job key
// is the SHA-256 of the spec's canonical inputs, so the retry either
// hits the warm-restart cache or re-runs the identical simulation —
// never a duplicate divergent run.
func (c *Client) SubmitAndAwait(ctx context.Context, spec scheduler.JobSpec) (scheduler.JobStatus, error) {
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return scheduler.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		st, err = c.Await(ctx, st.ID)
		if !errors.Is(err, ErrUnknownJob) {
			return st, err
		}
		lastErr = err
		c.opt.Logf("job vanished mid-wait (attempt %d/%d); resubmitting the content-addressed spec", attempt+1, c.opt.MaxAttempts)
	}
	return scheduler.JobStatus{}, fmt.Errorf("client: job kept vanishing after %d submissions: %w", c.opt.MaxAttempts, lastErr)
}

// Result fetches a terminal job's canonical result document.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	var doc json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &doc, ErrUnknownJob)
	return doc, err
}

// SubmitBatch posts one BatchSpec matrix.
func (c *Client) SubmitBatch(ctx context.Context, spec scheduler.BatchSpec) (scheduler.BatchStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return scheduler.BatchStatus{}, err
	}
	var st scheduler.BatchStatus
	err = c.do(ctx, http.MethodPost, "/v1/batch", body, &st, nil)
	return st, err
}

// Batch fetches one batch's status.
func (c *Client) Batch(ctx context.Context, id string) (scheduler.BatchStatus, error) {
	var st scheduler.BatchStatus
	err := c.do(ctx, http.MethodGet, "/v1/batch/"+id, nil, &st, ErrUnknownJob)
	return st, err
}

// AwaitBatch polls until every cell is terminal.
func (c *Client) AwaitBatch(ctx context.Context, id string) (scheduler.BatchStatus, error) {
	for {
		st, err := c.Batch(ctx, id)
		if err != nil {
			return scheduler.BatchStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := sleep(ctx, c.opt.PollInterval); err != nil {
			return scheduler.BatchStatus{}, err
		}
	}
}

// BatchResult fetches a terminal batch's canonical matrix document.
func (c *Client) BatchResult(ctx context.Context, id string) (json.RawMessage, error) {
	var doc json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/batch/"+id+"/result", nil, &doc, ErrUnknownJob)
	return doc, err
}

// Event is one SSE record from a job's progress stream.
type Event struct {
	Type string
	Data json.RawMessage
}

// terminalEvent reports whether an SSE event type ends the stream.
func terminalEvent(typ string) bool {
	switch scheduler.State(typ) {
	case scheduler.StateDone, scheduler.StateFailed, scheduler.StateTruncated:
		return true
	}
	return false
}

// Events streams a job's progress, reconnecting automatically. The
// server's streams are replay-then-follow — each (re)connection replays
// the full event history — so the client counts delivered events and
// skips that many on reconnect: a dropped connection resumes exactly
// where it left off, and a "lagged" event (the server dropped events
// this subscriber could not drain fast enough) triggers a reconnect
// that recovers the gap from the replay instead of surfacing a hole.
// The channel closes after the terminal event, after MaxAttempts
// consecutive failed reconnects, or when ctx is done.
func (c *Client) Events(ctx context.Context, jobID string) <-chan Event {
	ch := make(chan Event, 16)
	go func() {
		defer close(ch)
		seen := 0
		failures := 0
		for {
			n, terminal, err := c.streamOnce(ctx, jobID, seen, ch)
			seen += n
			if terminal || ctx.Err() != nil {
				return
			}
			if n > 0 {
				failures = 0 // progress: the stream is alive, just interrupted
			}
			failures++
			if failures >= c.opt.MaxAttempts {
				c.opt.Logf("event stream for %s: giving up after %d failed reconnects (%v)", jobID, failures, err)
				return
			}
			if err := sleep(ctx, c.backoff(failures-1, 0)); err != nil {
				return
			}
			c.opt.Logf("event stream for %s dropped (%v); reconnecting at event %d", jobID, err, seen)
		}
	}()
	return ch
}

// streamOnce runs one SSE connection: skip the first skip events of the
// replay, forward the rest, and return how many new events were
// delivered plus whether the terminal event arrived. A "lagged" event
// returns immediately (not counted, not forwarded) so the caller
// reconnects and recovers the dropped events from the replay.
func (c *Client) streamOnce(ctx context.Context, jobID string, skip int, ch chan<- Event) (delivered int, terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	for k, v := range c.opt.Headers {
		req.Header.Set(k, v)
	}
	resp, err := c.opt.HTTPClient.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, false, &APIError{StatusCode: resp.StatusCode, Message: errorMessage(body)}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var typ string
	var data []byte
	flush := func() (done bool) {
		if typ == "" {
			return false
		}
		ev := Event{Type: typ, Data: data}
		typ, data = "", nil
		if ev.Type == "lagged" {
			// The server dropped events we never saw; the replay on the
			// next connection has them all.
			return true
		}
		if skip > 0 {
			skip--
			return false
		}
		select {
		case ch <- ev:
		case <-ctx.Done():
			return true
		}
		delivered++
		if terminalEvent(ev.Type) {
			terminal = true
			return true
		}
		return false
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if flush() {
				return delivered, terminal, nil
			}
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, terminal, err
	}
	// EOF: the server closes the stream after the terminal event, so a
	// clean close without one means the connection was cut mid-stream.
	return delivered, terminal, io.ErrUnexpectedEOF
}
