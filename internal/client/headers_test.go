package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ndpext/internal/server/scheduler"
)

// TestHeadersOnEveryRequest: Options.Headers must reach both the JSON
// round-trips and the SSE stream — the cluster layer's hop counting
// depends on the forwarding header riding every proxied call.
func TestHeadersOnEveryRequest(t *testing.T) {
	var (
		mu   sync.Mutex
		seen = map[string]string{} // path -> header value
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.Method+" "+r.URL.Path] = r.Header.Get("X-Ndpext-Hops")
		mu.Unlock()
		if r.URL.Path == "/v1/jobs/j-000001/events" {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Write([]byte("event: done\ndata: {\"id\":\"j-000001\",\"state\":\"done\"}\n\n"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"j-000001","state":"done"}`))
	}))
	defer srv.Close()

	opt := fastOpts()
	opt.Headers = map[string]string{"X-Ndpext-Hops": "1"}
	cl := New(srv.URL, opt)
	ctx := context.Background()

	if _, err := cl.Submit(ctx, scheduler.JobSpec{Workload: "pr", Accesses: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Job(ctx, "j-000001"); err != nil {
		t.Fatal(err)
	}
	for range cl.Events(ctx, "j-000001") {
	}

	mu.Lock()
	defer mu.Unlock()
	for _, call := range []string{"POST /v1/jobs", "GET /v1/jobs/j-000001", "GET /v1/jobs/j-000001/events"} {
		if got, ok := seen[call]; !ok {
			t.Errorf("call %s never arrived", call)
		} else if got != "1" {
			t.Errorf("call %s carried hop header %q, want %q", call, got, "1")
		}
	}
}
