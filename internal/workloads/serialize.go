package workloads

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ndpext/internal/stream"
)

// traceWire is the on-disk representation of a Trace: the stream
// annotations plus the per-core access sequences. Versioned so stale
// files fail loudly instead of decoding garbage.
type traceWire struct {
	Version int
	Name    string
	Streams []stream.Stream
	PerCore [][]Access
}

// traceWireVersion bumps when the wire format changes. It appears twice
// on the wire: as the byte after the magic (so foreign and stale files
// are rejected before gob sees a single byte) and inside the gob
// payload (defense in depth against a spliced header).
const traceWireVersion = 1

// traceWireMagic prefixes every serialized trace; the byte after it is
// the format version.
const traceWireMagic = "NDPWL"

// Save writes the trace to w in a self-describing binary format, so that
// expensive generated workloads can be replayed across runs and shared
// between machines.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceWireMagic); err != nil {
		return fmt.Errorf("workloads: save trace: %w", err)
	}
	if err := bw.WriteByte(traceWireVersion); err != nil {
		return fmt.Errorf("workloads: save trace: %w", err)
	}
	wire := traceWire{
		Version: traceWireVersion,
		Name:    t.Name,
		PerCore: t.PerCore,
	}
	for _, s := range t.Table.All() {
		wire.Streams = append(wire.Streams, *s)
	}
	if err := gob.NewEncoder(bw).Encode(&wire); err != nil {
		return fmt.Errorf("workloads: save trace: %w", err)
	}
	return bw.Flush()
}

// Load reads a trace previously written by Save. Streams come back
// freshly configured (read-only bits reset). Truncated or foreign input
// is reported as an error, never a panic: the magic and version are
// checked before the payload is decoded.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(traceWireMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("workloads: load trace: truncated header: %w", err)
	}
	if string(head[:len(traceWireMagic)]) != traceWireMagic {
		return nil, fmt.Errorf("workloads: load trace: bad magic (not a workload trace)")
	}
	if head[len(traceWireMagic)] != traceWireVersion {
		return nil, fmt.Errorf("workloads: trace format version %d, want %d", head[len(traceWireMagic)], traceWireVersion)
	}
	var wire traceWire
	if err := gob.NewDecoder(br).Decode(&wire); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("workloads: load trace: truncated payload: %w", err)
		}
		return nil, fmt.Errorf("workloads: load trace: %w", err)
	}
	if wire.Version != traceWireVersion {
		return nil, fmt.Errorf("workloads: trace format version %d, want %d", wire.Version, traceWireVersion)
	}
	t := &Trace{Name: wire.Name, Table: stream.NewTable(), PerCore: wire.PerCore}
	for i := range wire.Streams {
		s := wire.Streams[i]
		s.ReadOnly = true
		if err := t.Table.Add(&s); err != nil {
			return nil, fmt.Errorf("workloads: load trace: %w", err)
		}
	}
	// Every access must land in a registered stream or be a deliberate
	// bypass; spot-check structural sanity.
	if len(t.PerCore) == 0 {
		return nil, fmt.Errorf("workloads: trace %q has no cores", t.Name)
	}
	return t, nil
}

// SaveFile writes the trace to path (creating or truncating it).
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// gobEncode/gobDecode are small helpers shared with tests.
func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
