package workloads

import (
	"math/bits"

	"ndpext/internal/graph"
	"ndpext/internal/sim"
	"ndpext/internal/stream"
)

// vecStep is the dense-kernel emission granularity: the workloads use
// 64 B SIMD accesses (§VI), so dense scans step 16 float32 lanes per
// memory reference.
const vecStep = 16

// Recsys is DLRM-style recommendation inference: Zipf-skewed gathers from
// large embedding tables (indirect, read-only -- the headline replication
// winner, up to 2.43x in Fig. 5) plus a small hot MLP weight matrix.
func Recsys(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("recsys", cores, sc)
	np := sc.procs(cores)
	const tables = 4
	entries := sc.scaled(1<<14, 2048)
	mlpElems := sc.scaled(16384, 1024) // float32 weights

	for p := 0; p < np; p++ {
		rng := rngFor(seed, p)
		zipf := sim.NewZipf(rng, entries, 0.9)
		var embs [tables]*stream.Stream
		for t := 0; t < tables; t++ {
			embs[t] = b.indirect(entries, 64) // one 64 B embedding row per entry
		}
		mlp := b.affine(mlpElems, 4)
		pcores := procCores(cores, np, p)
		out := b.affine(sc.AccessesPerCore*len(pcores)/8+1024, 4)
		outIdx := 0
		for !procFull(b, pcores) {
			for _, core := range pcores {
				if b.full(core) {
					continue
				}
				// Gather: tables x 4 lookups each.
				for t := 0; t < tables; t++ {
					for l := 0; l < 4; l++ {
						b.read(core, embs[t], zipf.Next(), 2)
					}
				}
				// MLP: a strided pass over a slice of the hot weights.
				w0 := rng.Intn(mlpElems / 2)
				for i := 0; i < 32; i++ {
					b.read(core, mlp, w0+i*vecStep, 1)
				}
				b.write(core, out, outIdx%nelems(out), 1)
				outIdx++
			}
		}
	}
	return b.trace(), nil
}

// MV is dense matrix-vector multiplication: the matrix streams through
// (affine, read-only, the Fig. 9(c) affine-cap stressor) while the input
// vector is reused by every row on every core (read-only, replicable; the
// paper reports up to 33% of cache space replicated for mv).
func MV(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("mv", cores, sc)
	np := sc.procs(cores)
	colsE := sc.scaled(4096, 512) // vector length in float32
	rowsE := sc.scaled(4096, 512) // matrix rows

	for p := 0; p < np; p++ {
		a := b.affine(rowsE*colsE, 4)
		x := b.affine(colsE, 4)
		y := b.affine(rowsE, 4)
		pcores := procCores(cores, np, p)
		for ci, core := range pcores {
			lo, hi := ci*rowsE/len(pcores), (ci+1)*rowsE/len(pcores)
			for r := lo; r < hi && !b.full(core); r++ {
				for c := 0; c < colsE; c += vecStep {
					b.read(core, a, r*colsE+c, 1)
					b.read(core, x, c, 1)
				}
				b.write(core, y, r, 2)
			}
		}
	}
	return b.trace(), nil
}

// GNN is one graph-convolution layer as sparse-dense matrix
// multiplication (the paper's gnn uses SpMM on Reddit): neighbor feature
// rows are gathered indirectly (read-only, replicable) and aggregated
// into the output features.
func GNN(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("gnn", cores, sc)
	np := sc.procs(cores)
	n := sc.scaled(1<<13, 1024)
	scaleLog := bits.Len(uint(n - 1))
	const featChunks = 4 // feature row = 4 x 64 B chunks (64 float32)

	for p := 0; p < np; p++ {
		g := graph.RMAT(scaleLog, 10, seed+uint64(p)*7919)
		offsets := b.affine(g.NumVertices()+1, 4)
		edges := b.affine(g.NumEdges(), 4)
		feats := b.indirect(g.NumVertices()*featChunks, 64) // H rows, read-only
		outF := b.affine(g.NumVertices()*featChunks, 64)    // H' rows
		weights := b.affine(sc.scaled(8192, 1024), 4)       // dense layer weights, hot

		pcores := procCores(cores, np, p)
		for ci, core := range pcores {
			lo, hi := vertexRange(g, pcores, ci)
			for v := lo; v < hi && !b.full(core); v++ {
				b.read(core, offsets, v, 1)
				for ei, e := range g.Neighbors(v) {
					b.read(core, edges, int(g.Offsets[v])+ei, 0)
					for ch := 0; ch < featChunks; ch++ {
						b.read(core, feats, int(e)*featChunks+ch, 2)
					}
				}
				for i := 0; i < 16; i++ {
					b.read(core, weights, (v*16+i*vecStep)%nelems(weights), 1)
				}
				for ch := 0; ch < featChunks; ch++ {
					b.write(core, outF, v*featChunks+ch, 1)
				}
			}
		}
	}
	return b.trace(), nil
}
