package workloads

import (
	"sort"
	"testing"

	"ndpext/internal/stream"
)

func TestAllThirteenWorkloadsPresent(t *testing.T) {
	want := []string{"bc", "backprop", "bfs", "cc", "gnn", "hotspot", "lavaMD",
		"lud", "mv", "pathfinder", "pr", "recsys", "tc", "phased"}
	if len(All) != 14 {
		t.Fatalf("have %d workloads, want the paper's 13 plus phased (%v)", len(All), Names())
	}
	for _, n := range want {
		if _, err := Get(n); err != nil {
			t.Fatalf("missing workload %s: %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload returned no error")
	}
}

// generateAll builds every workload at tiny scale once.
func generateAll(t *testing.T, cores int) map[string]*Trace {
	t.Helper()
	out := map[string]*Trace{}
	for _, name := range Names() {
		gen, _ := Get(name)
		tr, err := gen(cores, 42, TinyScale())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tr
	}
	return out
}

func TestTracesWellFormed(t *testing.T) {
	const cores = 16
	for name, tr := range generateAll(t, cores) {
		if len(tr.PerCore) != cores {
			t.Fatalf("%s: %d cores, want %d", name, len(tr.PerCore), cores)
		}
		if tr.TotalAccesses() == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		if tr.Table.Len() == 0 {
			t.Fatalf("%s: no streams configured", name)
		}
		if tr.Table.Len() >= stream.MaxStreams {
			t.Fatalf("%s: %d streams exceed the 512 limit", name, tr.Table.Len())
		}
		// Paper §VI: stream counts range from 4 to 256.
		if tr.Table.Len() < 2 {
			t.Fatalf("%s: only %d streams", name, tr.Table.Len())
		}
	}
}

func TestStreamCoverage(t *testing.T) {
	// Paper §IV-A: over 99% of accesses are captured by streams. Our
	// traces are generated from stream-annotated structures, so every
	// access must fall in a stream.
	for name, tr := range generateAll(t, 8) {
		checked := 0
		for _, cs := range tr.PerCore {
			for _, a := range cs {
				if tr.Table.FindByAddr(a.Addr) == nil {
					t.Fatalf("%s: access %#x not in any stream", name, a.Addr)
				}
				checked++
				if checked > 5000 {
					break
				}
			}
		}
	}
}

func TestAffineAndIndirectMix(t *testing.T) {
	// The paper distinguishes affine from indirect streams; the graph and
	// recsys workloads must register both kinds.
	for _, name := range []string{"pr", "bfs", "cc", "bc", "recsys", "gnn", "lavaMD"} {
		gen, _ := Get(name)
		tr, err := gen(8, 1, TinyScale())
		if err != nil {
			t.Fatal(err)
		}
		var aff, ind int
		for _, s := range tr.Table.All() {
			if s.Type == stream.Affine {
				aff++
			} else {
				ind++
			}
		}
		if aff == 0 || ind == 0 {
			t.Fatalf("%s: affine=%d indirect=%d; want both kinds", name, aff, ind)
		}
	}
}

func TestReadOnlyAndWrittenStreamsExist(t *testing.T) {
	// Replication candidates (never-written streams) and written streams
	// must both exist in mv (the paper's replication example).
	gen, _ := Get("mv")
	tr, err := gen(8, 1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	written := map[stream.ID]bool{}
	for _, cs := range tr.PerCore {
		for _, a := range cs {
			if a.Write {
				if s := tr.Table.FindByAddr(a.Addr); s != nil {
					written[s.SID] = true
				}
			}
		}
	}
	if len(written) == 0 {
		t.Fatal("mv never writes")
	}
	if len(written) == tr.Table.Len() {
		t.Fatal("mv writes every stream; the x vector must stay read-only")
	}
}

func TestBackpropPhases(t *testing.T) {
	// The weight matrix must be read-only in the first half of each
	// core's trace and written in the second (layerforward vs
	// adjustweights).
	gen, _ := Get("backprop")
	tr, err := gen(8, 1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Find a weights stream: the largest affine stream.
	var weights *stream.Stream
	for _, s := range tr.Table.All() {
		if s.Type == stream.Affine && (weights == nil || s.Size > weights.Size) {
			weights = s
		}
	}
	cs := tr.PerCore[0]
	half := len(cs) / 2
	for i, a := range cs[:half] {
		if a.Write && weights.Contains(a.Addr) {
			t.Fatalf("weights written at position %d during layerforward", i)
		}
	}
	sawWrite := false
	for _, a := range cs[half:] {
		if a.Write && weights.Contains(a.Addr) {
			sawWrite = true
			break
		}
	}
	if !sawWrite {
		t.Fatal("adjustweights phase never writes the weights")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"pr", "recsys", "hotspot"} {
		gen, _ := Get(name)
		a, err := gen(8, 7, TinyScale())
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen(8, 7, TinyScale())
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalAccesses() != b.TotalAccesses() {
			t.Fatalf("%s: lengths differ %d vs %d", name, a.TotalAccesses(), b.TotalAccesses())
		}
		for c := range a.PerCore {
			for i := range a.PerCore[c] {
				if a.PerCore[c][i] != b.PerCore[c][i] {
					t.Fatalf("%s: access %d/%d differs", name, c, i)
				}
			}
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	sc := TinyScale()
	for name, gen := range All {
		tr, err := gen(8, 3, sc)
		if err != nil {
			t.Fatal(err)
		}
		for c, cs := range tr.PerCore {
			// Inner loops may overshoot by a handful of accesses at most.
			if len(cs) > sc.AccessesPerCore+64 {
				t.Fatalf("%s: core %d has %d accesses, budget %d", name, c, len(cs), sc.AccessesPerCore)
			}
		}
	}
}

func TestProcessesPartitionAddressSpace(t *testing.T) {
	// With 2 processes, the streams accessed by the first and second half
	// of the cores must not overlap (each process owns its copy, §VI).
	sc := TinyScale()
	sc.CoresPerProc = 4
	gen, _ := Get("pr")
	tr, err := gen(8, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	sidsOf := func(cores []int) map[stream.ID]bool {
		out := map[stream.ID]bool{}
		for _, c := range cores {
			for _, a := range tr.PerCore[c] {
				if s := tr.Table.FindByAddr(a.Addr); s != nil {
					out[s.SID] = true
				}
			}
		}
		return out
	}
	first := sidsOf([]int{0, 1, 2, 3})
	second := sidsOf([]int{4, 5, 6, 7})
	for sid := range first {
		if second[sid] {
			t.Fatalf("stream %d shared across processes", sid)
		}
	}
}

func TestClone(t *testing.T) {
	gen, _ := Get("mv")
	tr, err := gen(4, 1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a stream's read-only bit as a simulation would.
	tr.Table.All()[0].ReadOnly = false
	cl := tr.Clone()
	if cl.TotalAccesses() != tr.TotalAccesses() {
		t.Fatal("clone lost accesses")
	}
	for _, s := range cl.Table.All() {
		if !s.ReadOnly {
			t.Fatal("clone did not reset read-only bits")
		}
	}
	if cl.Table.All()[0] == tr.Table.All()[0] {
		t.Fatal("clone shares stream objects")
	}
}

func TestLUDUsesReorderedAffine(t *testing.T) {
	gen, _ := Get("lud")
	tr, err := gen(4, 1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Table.All() {
		if s.Type == stream.Affine && s.Order == stream.OrderYXZ {
			found = true
		}
	}
	if !found {
		t.Fatal("lud should register a column-ordered affine stream")
	}
}

// Statistical pattern checks: the generators must produce the access
// characteristics their kernels are known for, since those drive every
// caching result downstream.

func TestRecsysGathersAreSkewed(t *testing.T) {
	gen, _ := Get("recsys")
	tr, err := gen(8, 5, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Count per-element touches of the first indirect stream.
	var emb *stream.Stream
	for _, s := range tr.Table.All() {
		if s.Type == stream.Indirect {
			emb = s
			break
		}
	}
	counts := map[uint64]int{}
	total := 0
	for _, cs := range tr.PerCore {
		for _, a := range cs {
			if emb.Contains(a.Addr) {
				id, _ := emb.ElemID(a.Addr)
				counts[id]++
				total++
			}
		}
	}
	if total == 0 {
		t.Fatal("no embedding gathers")
	}
	// Zipf skew: the hottest 10% of touched entries draw far more than
	// 10% of the traffic.
	var hist []int
	for _, c := range counts {
		hist = append(hist, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(hist)))
	head := 0
	for i := 0; i < len(hist)/10; i++ {
		head += hist[i]
	}
	if frac := float64(head) / float64(total); frac < 0.2 {
		t.Fatalf("hottest decile draws only %.2f of gathers; Zipf skew missing", frac)
	}
}

func TestHotspotSpatialLocality(t *testing.T) {
	gen, _ := Get("hotspot")
	tr, err := gen(8, 5, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive accesses on a core should frequently touch nearby
	// addresses (stencil sweeps): measure the fraction of successive
	// address deltas under 4 kB.
	near, total := 0, 0
	for _, cs := range tr.PerCore {
		for i := 1; i < len(cs); i++ {
			d := int64(cs[i].Addr) - int64(cs[i-1].Addr)
			if d < 0 {
				d = -d
			}
			if d < 4096 {
				near++
			}
			total++
		}
	}
	// Transitions between the temp/power/output grids are inherently far
	// (different streams); the within-grid stencil steps must keep a
	// solid fraction of transitions short.
	if frac := float64(near) / float64(total); frac < 0.35 {
		t.Fatalf("only %.2f of successive hotspot accesses are near; stencil locality missing", frac)
	}
}

func TestEdgesAreSequentialInPR(t *testing.T) {
	gen, _ := Get("pr")
	tr, err := gen(8, 5, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	// The edge list must be scanned in nondecreasing order per core
	// within each iteration (affine streaming).
	var edges *stream.Stream
	for _, s := range tr.Table.All() {
		if s.Type == stream.Affine && (edges == nil || s.Size > edges.Size) {
			edges = s
		}
	}
	backward, total := 0, 0
	var last uint64
	have := false
	for _, a := range tr.PerCore[0] {
		if !edges.Contains(a.Addr) {
			continue
		}
		if have && a.Addr < last {
			backward++
		}
		last, have = a.Addr, true
		total++
	}
	if total == 0 {
		t.Skip("core 0 never touched the chosen edge stream (different process)")
	}
	// Iteration restarts rewind once each; anything more means the scan
	// is not sequential.
	if frac := float64(backward) / float64(total); frac > 0.05 {
		t.Fatalf("%.3f of edge accesses go backwards; edge list should stream", frac)
	}
}
