package workloads

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	gen, _ := Get("recsys")
	orig, err := gen(8, 3, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Fatalf("name %q != %q", got.Name, orig.Name)
	}
	if got.TotalAccesses() != orig.TotalAccesses() {
		t.Fatalf("accesses %d != %d", got.TotalAccesses(), orig.TotalAccesses())
	}
	if got.Table.Len() != orig.Table.Len() {
		t.Fatalf("streams %d != %d", got.Table.Len(), orig.Table.Len())
	}
	for c := range orig.PerCore {
		for i := range orig.PerCore[c] {
			if got.PerCore[c][i] != orig.PerCore[c][i] {
				t.Fatalf("access %d/%d differs", c, i)
			}
		}
	}
	// Streams must come back resolvable and read-only.
	for _, s := range got.Table.All() {
		if !s.ReadOnly {
			t.Fatal("loaded stream not reset to read-only")
		}
		if got.Table.FindByAddr(s.Base) != s {
			t.Fatal("loaded stream not resolvable by address")
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	gen, _ := Get("mv")
	orig, err := gen(4, 1, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mv.trace")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAccesses() != orig.TotalAccesses() {
		t.Fatal("file roundtrip lost accesses")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	gen, _ := Get("mv")
	orig, _ := gen(2, 1, TinyScale())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Flip the version byte after the magic: rejected before gob runs.
	raw := bytes.Clone(buf.Bytes())
	raw[len(traceWireMagic)] = 99
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong header version accepted")
	}

	// A spliced header over a stale gob payload (correct header byte,
	// wrong embedded Version) must still be rejected by the inner check.
	var wire traceWire
	if err := gobDecode(buf.Bytes()[len(traceWireMagic)+1:], &wire); err != nil {
		t.Fatal(err)
	}
	wire.Version = 99
	payload, err := gobEncode(&wire)
	if err != nil {
		t.Fatal(err)
	}
	spliced := append([]byte(traceWireMagic+"\x01"), payload...)
	if _, err := Load(bytes.NewReader(spliced)); err == nil {
		t.Fatal("spliced wrong-version payload accepted")
	}
}

// TestLoadRejectsTruncation sweeps every prefix of a valid serialized
// trace: each one must come back as an error, never a panic, and the
// header-region prefixes must say so explicitly.
func TestLoadRejectsTruncation(t *testing.T) {
	gen, _ := Get("mv")
	orig, _ := gen(2, 1, TinyScale())
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n += 1 + n/8 {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", n, len(raw))
		}
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncation of the final byte accepted")
	}
}
