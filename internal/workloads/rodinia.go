package workloads

import "ndpext/internal/stream"

// Backprop is the Rodinia neural-network training kernel with its two
// phases: layerforward reads the weight matrix heavily (read-only; the
// paper reports 91% of its cache space goes to replicas), then
// adjustweights writes the same weights, triggering the write exception
// that collapses replication (§IV-B, §V-C).
func Backprop(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("backprop", cores, sc)
	np := sc.procs(cores)
	inN := sc.scaled(256, 64) // input layer width (float32)
	hidN := sc.scaled(64, 16) // hidden layer width

	for p := 0; p < np; p++ {
		weights := b.affine(inN*hidN, 4) // in x hid weight matrix
		input := b.affine(inN, 4)
		hidden := b.affine(hidN, 4)
		delta := b.affine(hidN, 4)
		pcores := procCores(cores, np, p)

		// Phase 1: layerforward until cores are half full.
		halfFull := func() bool {
			for _, c := range pcores {
				if len(b.perCore[c]) < b.budget/2 {
					return false
				}
			}
			return true
		}
		for !halfFull() {
			for ci, core := range pcores {
				if len(b.perCore[core]) >= b.budget/2 {
					continue
				}
				lo, hi := ci*hidN/len(pcores), (ci+1)*hidN/len(pcores)
				for h := lo; h < hi && len(b.perCore[core]) < b.budget/2; h++ {
					for i := 0; i < inN; i += vecStep {
						b.read(core, input, i, 1)
						b.read(core, weights, h*inN+i, 1)
					}
					b.write(core, hidden, h, 2)
				}
			}
		}
		// Phase 2: adjustweights -- writes to the weight matrix.
		for !procFull(b, pcores) {
			for ci, core := range pcores {
				if b.full(core) {
					continue
				}
				lo, hi := ci*hidN/len(pcores), (ci+1)*hidN/len(pcores)
				for h := lo; h < hi && !b.full(core); h++ {
					b.read(core, delta, h, 1)
					for i := 0; i < inN; i += vecStep {
						b.read(core, input, i, 0)
						b.write(core, weights, h*inN+i, 2)
					}
				}
			}
		}
	}
	return b.trace(), nil
}

// Hotspot is the Rodinia thermal stencil: a 5-point sweep over the
// temperature grid with a read-only power grid. Cores own contiguous row
// bands and share only the boundary rows, so placement quality dominates
// (the paper's example: Nexus 113 ns vs NDPExt 38 ns interconnect
// latency).
func Hotspot(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("hotspot", cores, sc)
	np := sc.procs(cores)
	// Grid sized so one core's row band plus halo tracks the scaled
	// per-unit affine budget, mirroring the paper's regime where the
	// stencil working set fits the restricted affine space (§VII-C).
	n := sc.scaled(96, 32) // grid edge (float32 cells)

	for p := 0; p < np; p++ {
		tempIn := b.affine(n*n, 4)
		tempOut := b.affine(n*n, 4)
		power := b.affine(n*n, 4)
		pcores := procCores(cores, np, p)
		// Functional state: the kernel really computes the thermal
		// update, not just its access pattern.
		tIn := make([]float32, n*n)
		tOut := make([]float32, n*n)
		pw := make([]float32, n*n)
		for i := range tIn {
			tIn[i] = 60
			pw[i] = float32(i%7) * 0.1
		}
		for iter := 0; iter < 8 && !procFull(b, pcores); iter++ {
			src, dst := tempIn, tempOut
			sv, dv := tIn, tOut
			if iter%2 == 1 {
				src, dst = tempOut, tempIn
				sv, dv = tOut, tIn
			}
			for ci, core := range pcores {
				lo, hi := ci*n/len(pcores), (ci+1)*n/len(pcores)
				for r := lo; r < hi && !b.full(core); r++ {
					for c := 0; c < n; c += vecStep {
						var up, down float32
						if r > 0 {
							b.read(core, src, (r-1)*n+c, 0)
							up = sv[(r-1)*n+c]
						}
						b.read(core, src, r*n+c, 0)
						cur := sv[r*n+c]
						if r < n-1 {
							b.read(core, src, (r+1)*n+c, 0)
							down = sv[(r+1)*n+c]
						}
						b.read(core, power, r*n+c, 1)
						dv[r*n+c] = cur + 0.1*(up+down-2*cur) + 0.05*pw[r*n+c]
						b.write(core, dst, r*n+c, 3)
					}
				}
			}
		}
	}
	return b.trace(), nil
}

// LavaMD is the Rodinia molecular-dynamics kernel: particles live in a
// 3-D grid of boxes; each box reads its 26 neighbours' particle blocks
// (read-only gathers with spatial structure) and writes its forces.
func LavaMD(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("lavaMD", cores, sc)
	np := sc.procs(cores)
	dim := 6
	if sc.Mult < 0.5 {
		dim = 4
	}
	perBox := sc.scaled(64, 16) // particles per box
	boxes := dim * dim * dim

	for p := 0; p < np; p++ {
		particles := b.indirect(boxes*perBox, 32) // pos+charge, read-only
		forces := b.affine(boxes*perBox, 16)
		pcores := procCores(cores, np, p)
		boxID := func(x, y, z int) int { return (z*dim+y)*dim + x }
		for bi := 0; bi < boxes; bi++ {
			core := pcores[bi%len(pcores)]
			if b.full(core) {
				continue
			}
			bx, by, bz := bi%dim, (bi/dim)%dim, bi/(dim*dim)
			for dz := -1; dz <= 1; dz++ {
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny, nz := bx+dx, by+dy, bz+dz
						if nx < 0 || ny < 0 || nz < 0 || nx >= dim || ny >= dim || nz >= dim {
							continue
						}
						nb := boxID(nx, ny, nz)
						for q := 0; q < perBox; q += 2 {
							b.read(core, particles, nb*perBox+q, 2)
						}
					}
				}
			}
			for q := 0; q < perBox; q += 4 {
				b.write(core, forces, bi*perBox+q, 2)
			}
		}
	}
	return b.trace(), nil
}

// LUD is the Rodinia LU decomposition over a dense matrix: row sweeps,
// strided column sweeps (the reordered-iterator case the stream API's
// `order` argument exists for), and trailing-submatrix updates, all on a
// single read-write matrix.
func LUD(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("lud", cores, sc)
	np := sc.procs(cores)
	n := sc.scaled(128, 32)

	for p := 0; p < np; p++ {
		// The matrix is accessed column-major in the panel phase, so it
		// is registered with a column-first access order (§IV-A).
		mat := b.affine2D(n, n, 4, stream.OrderYXZ)
		pcores := procCores(cores, np, p)
		for k := 0; k < n && !procFull(b, pcores); k++ {
			core := pcores[k%len(pcores)]
			// Row k sweep.
			for j := k; j < n && !b.full(core); j += vecStep {
				b.read(core, mat, k*n+j, 1)
			}
			// Column k sweep (strided).
			for i := k + 1; i < n && !b.full(core); i++ {
				b.read(core, mat, i*n+k, 1)
				b.write(core, mat, i*n+k, 1)
			}
			// Trailing submatrix update, split across the cores.
			for ci, c := range pcores {
				lo := k + 1 + ci*(n-k-1)/len(pcores)
				hi := k + 1 + (ci+1)*(n-k-1)/len(pcores)
				for i := lo; i < hi && !b.full(c); i++ {
					for j := k + 1; j < n && !b.full(c); j += vecStep {
						b.read(c, mat, i*n+k, 0)
						b.read(c, mat, k*n+j, 0)
						b.write(c, mat, i*n+j, 2)
					}
				}
			}
		}
	}
	return b.trace(), nil
}

// Pathfinder is the Rodinia dynamic-programming kernel: the wall matrix
// streams through once (affine, read-only) while two small row buffers
// ping-pong (read-write, shared at the core boundaries).
func Pathfinder(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("pathfinder", cores, sc)
	np := sc.procs(cores)
	colsN := sc.scaled(1<<13, 1024)
	rowsN := 48

	for p := 0; p < np; p++ {
		wall := b.affine(colsN*rowsN, 4)
		bufA := b.affine(colsN, 4)
		bufB := b.affine(colsN, 4)
		pcores := procCores(cores, np, p)
		for r := 0; r < rowsN && !procFull(b, pcores); r++ {
			src, dst := bufA, bufB
			if r%2 == 1 {
				src, dst = bufB, bufA
			}
			for ci, core := range pcores {
				lo, hi := ci*colsN/len(pcores), (ci+1)*colsN/len(pcores)
				for c := lo; c < hi && !b.full(core); c += vecStep {
					b.read(core, wall, r*colsN+c, 0)
					if c > 0 {
						b.read(core, src, c-1, 0)
					}
					b.read(core, src, c, 0)
					if c < colsN-1 {
						b.read(core, src, c+1, 0)
					}
					b.write(core, dst, c, 2)
				}
			}
		}
	}
	return b.trace(), nil
}
