package workloads

import (
	"math/bits"

	"ndpext/internal/graph"
)

// Phased is the phase-changing co-location trace for the adaptive
// (NDPExt-MAB) experiments: each core spends the first half of its
// budget in a dense matrix-vector phase (streaming matrix plus a hot
// reused input vector — the regime where the curve-driven paper
// optimizer shines and recency-greedy sizing wastes capacity on the
// streaming matrix) and the second half in a sparse PageRank phase
// (irregular rank gathers over an RMAT graph — the regime where
// greedy's instant reaction to the access shift beats the damped
// optimizer). No single fixed configuration policy is optimal across
// both halves, which is exactly what the bandit is for.
func Phased(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("phased", cores, sc)
	np := sc.procs(cores)
	colsE := sc.scaled(4096, 512)
	rowsE := sc.scaled(4096, 512)
	n := sc.scaled(1<<15, 4096)
	scaleLog := bits.Len(uint(n - 1))

	for p := 0; p < np; p++ {
		// Dense-phase streams (the mv shape).
		a := b.affine(rowsE*colsE, 4)
		x := b.affine(colsE, 4)
		y := b.affine(rowsE, 4)
		// Sparse-phase streams (the pr shape).
		g := graph.RMAT(scaleLog, 12, seed+uint64(p)*1000003)
		gn := g.NumVertices()
		offsets := b.affine(gn+1, 4)
		edges := b.affine(g.NumEdges(), 4)
		src := b.indirect(gn, 4) // rank[u] read through edge targets
		dst := b.affine(gn, 4)

		pcores := procCores(cores, np, p)
		half := sc.AccessesPerCore / 2

		// Phase 1: row sweeps over the core's matrix slice, wrapping
		// until half the budget is spent.
		for ci, core := range pcores {
			lo, hi := ci*rowsE/len(pcores), (ci+1)*rowsE/len(pcores)
			for r := lo; len(b.perCore[core]) < half; r++ {
				if r >= hi {
					r = lo
				}
				for c := 0; c < colsE && len(b.perCore[core]) < half; c += vecStep {
					b.read(core, a, r*colsE+c, 1)
					b.read(core, x, c, 1)
				}
				b.write(core, y, r, 2)
			}
		}

		// Phase 2: pull-style rank accumulation until the budget fills.
		for !procFull(b, pcores) {
			for ci, core := range pcores {
				lo, hi := vertexRange(g, pcores, ci)
				for v := lo; v < hi && !b.full(core); v++ {
					b.read(core, offsets, v, 1)
					for ei, e := range g.Neighbors(v) {
						b.read(core, edges, int(g.Offsets[v])+ei, 0)
						b.read(core, src, int(e), 2)
					}
					b.write(core, dst, v, 1)
				}
			}
		}
	}
	return b.trace(), nil
}
