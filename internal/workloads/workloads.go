// Package workloads implements the paper's evaluation workloads (§VI):
// tensor kernels (recsys, mv, gnn), Rodinia ports (backprop, hotspot,
// lavaMD, lud, pathfinder), and GAP graph kernels (bfs, pr, cc, bc, tc).
//
// Each workload is a functional kernel over synthetic data that emits the
// per-core memory access trace the simulator replays, with every data
// structure annotated as an affine or indirect stream exactly as the
// paper's few-lines-of-code annotations do. Following §VI, multiple
// processes of each workload run side by side (each on its own slice of
// cores with its own copy of the data) so the total footprint exceeds the
// NDP memory.
package workloads

import (
	"fmt"
	"sort"

	"ndpext/internal/sim"
	"ndpext/internal/stream"
)

// Access is one memory reference in a core's trace. Gap is the number of
// core cycles of compute preceding the access.
type Access struct {
	Addr  uint64
	Write bool
	Gap   uint8
}

// Trace is a generated workload: stream annotations plus per-core access
// sequences.
type Trace struct {
	Name    string
	Table   *stream.Table
	PerCore [][]Access
}

// TotalAccesses sums the accesses across cores.
func (t *Trace) TotalAccesses() int {
	n := 0
	for _, c := range t.PerCore {
		n += len(c)
	}
	return n
}

// Clone returns a trace sharing the (immutable) per-core access slices
// but with freshly configured streams, so that one generated trace can be
// replayed on several simulated systems (the simulation mutates stream
// read-only bits).
func (t *Trace) Clone() *Trace {
	nt := &Trace{Name: t.Name, Table: stream.NewTable(), PerCore: t.PerCore}
	for _, s := range t.Table.All() {
		c := *s
		c.ReadOnly = true // as freshly configured (§IV-B)
		if err := nt.Table.Add(&c); err != nil {
			panic(fmt.Sprintf("workloads: clone: %v", err))
		}
	}
	return nt
}

// Scale sizes a generated workload. Mult scales every data structure;
// AccessesPerCore soft-bounds trace length (generation stops once every
// core reaches it). ProcsFor(cores) processes run side by side.
type Scale struct {
	Mult            float64
	AccessesPerCore int
	CoresPerProc    int
}

// DefaultScale is the model-scale configuration used by the benchmarks:
// with the default system (128 units x 192 kB) the aggregate footprints
// exceed the distributed cache, as in the paper's setup.
func DefaultScale() Scale { return Scale{Mult: 1, AccessesPerCore: 30000, CoresPerProc: 16} }

// TinyScale keeps unit tests fast.
func TinyScale() Scale { return Scale{Mult: 0.12, AccessesPerCore: 2500, CoresPerProc: 8} }

// scaled multiplies n by the scale factor, keeping at least lo.
func (s Scale) scaled(n, lo int) int {
	v := int(float64(n) * s.Mult)
	if v < lo {
		v = lo
	}
	return v
}

// procs returns the process count for the given core count.
func (s Scale) procs(cores int) int {
	cpp := s.CoresPerProc
	if cpp <= 0 {
		cpp = 16
	}
	p := cores / cpp
	if p < 1 {
		p = 1
	}
	return p
}

// Generator builds a workload trace for the given core count.
type Generator func(cores int, seed uint64, sc Scale) (*Trace, error)

// All maps workload names to their generators: the paper's 13
// workloads plus the phase-changing adaptive-experiment trace.
var All = map[string]Generator{
	"recsys":     Recsys,
	"mv":         MV,
	"gnn":        GNN,
	"backprop":   Backprop,
	"hotspot":    Hotspot,
	"lavaMD":     LavaMD,
	"lud":        LUD,
	"pathfinder": Pathfinder,
	"bfs":        BFS,
	"pr":         PageRank,
	"cc":         CC,
	"bc":         BC,
	"tc":         TC,
	"phased":     Phased,
}

// Names returns the workload names in sorted order.
func Names() []string {
	out := make([]string, 0, len(All))
	for n := range All {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the named generator.
func Get(name string) (Generator, error) {
	g, ok := All[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return g, nil
}

// builder accumulates a trace: a bump address allocator, stream
// registration, and per-core emission with budget tracking.
type builder struct {
	name    string
	tbl     *stream.Table
	next    uint64
	nextSID stream.ID
	perCore [][]Access
	budget  int
}

func newBuilder(name string, cores int, sc Scale) *builder {
	return &builder{
		name:    name,
		tbl:     stream.NewTable(),
		next:    1 << 20,
		nextSID: 1,
		perCore: make([][]Access, cores),
		budget:  sc.AccessesPerCore,
	}
}

// alloc reserves size bytes of address space (2 MB aligned so streams
// never collide).
func (b *builder) alloc(size uint64) uint64 {
	const align = 2 << 20
	base := b.next
	b.next += (size + align - 1) / align * align
	return base
}

// affine allocates and registers a flat affine stream of count elements.
func (b *builder) affine(count int, elemSize uint32) *stream.Stream {
	base := b.alloc(uint64(count) * uint64(elemSize))
	s, err := stream.Configure(b.sid(), stream.Affine, base, uint64(count)*uint64(elemSize), elemSize)
	if err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	if err := b.tbl.Add(s); err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	return s
}

// affine2D allocates a 2-D affine stream (lenX columns by lenY rows) with
// the given access order.
func (b *builder) affine2D(lenX, lenY int, elemSize uint32, order stream.Order) *stream.Stream {
	base := b.alloc(uint64(lenX) * uint64(lenY) * uint64(elemSize))
	s, err := stream.ConfigureAffine3D(b.sid(), base, elemSize, uint64(lenX), uint64(lenY), 1, order)
	if err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	if err := b.tbl.Add(s); err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	return s
}

// indirect allocates and registers an indirect stream of count elements.
func (b *builder) indirect(count int, elemSize uint32) *stream.Stream {
	base := b.alloc(uint64(count) * uint64(elemSize))
	s, err := stream.Configure(b.sid(), stream.Indirect, base, uint64(count)*uint64(elemSize), elemSize)
	if err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	if err := b.tbl.Add(s); err != nil {
		panic(fmt.Sprintf("workloads %s: %v", b.name, err))
	}
	return s
}

func (b *builder) sid() stream.ID {
	id := b.nextSID
	if id >= stream.NoStream {
		panic(fmt.Sprintf("workloads %s: stream id space exhausted", b.name))
	}
	b.nextSID++
	return id
}

// full reports whether the core's trace reached the budget.
func (b *builder) full(core int) bool {
	return len(b.perCore[core]) >= b.budget
}

// read/write emit one access of element idx of stream s on core.
func (b *builder) read(core int, s *stream.Stream, idx int, gap uint8) {
	b.emit(core, s.Base+uint64(idx)*uint64(s.ElemSize), false, gap)
}

func (b *builder) write(core int, s *stream.Stream, idx int, gap uint8) {
	b.emit(core, s.Base+uint64(idx)*uint64(s.ElemSize), true, gap)
}

func (b *builder) emit(core int, addr uint64, write bool, gap uint8) {
	if b.full(core) {
		return
	}
	b.perCore[core] = append(b.perCore[core], Access{Addr: addr, Write: write, Gap: gap})
}

// allFull reports whether every core reached its budget.
func (b *builder) allFull() bool {
	for c := range b.perCore {
		if !b.full(c) {
			return false
		}
	}
	return true
}

func (b *builder) trace() *Trace {
	return &Trace{Name: b.name, Table: b.tbl, PerCore: b.perCore}
}

// procCores returns the core IDs belonging to process p of np processes.
func procCores(cores, np, p int) []int {
	lo, hi := p*cores/np, (p+1)*cores/np
	out := make([]int, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// rngFor derives a process-specific RNG.
func rngFor(seed uint64, proc int) *sim.RNG {
	return sim.NewRNG(seed).Split(uint64(proc) + 1)
}

// nelems returns a stream's element count as an int.
func nelems(s *stream.Stream) int { return int(s.NumElements()) }

// procFull reports whether every listed core reached its budget.
func procFull(b *builder, cores []int) bool {
	for _, c := range cores {
		if !b.full(c) {
			return false
		}
	}
	return true
}
