package workloads

import "ndpext/internal/stream"

// Source is a per-core access feed: the pull-based generalization of a
// fully materialized Trace. The simulator consumes each core's sequence
// strictly in order, one access at a time, so a Source can stream
// accesses from disk with bounded memory (internal/trace's replayer) or
// synthesize them on the fly, while a materialized Trace adapts
// trivially.
//
// Sources are single-consumer: Next is only called from the simulation
// goroutine, and a Source's cursors are consumed by one run (open a
// fresh Source per simulation).
type Source interface {
	// Name labels the workload (Result.Workload).
	Name() string
	// Table returns the stream annotations the accesses refer to.
	Table() *stream.Table
	// Cores returns the number of per-core sequences.
	Cores() int
	// Next returns the next access of the given core's sequence, or
	// ok=false once the sequence is exhausted (or a read error stopped
	// it — see Err).
	Next(core int) (Access, bool)
	// Err reports the first error that truncated any core's sequence,
	// or nil for clean exhaustion. Checked by the simulator after the
	// event loop drains.
	Err() error
}

// traceSource adapts a materialized Trace to the Source interface.
type traceSource struct {
	tr  *Trace
	idx []int
}

// Source returns a fresh single-use Source view of the trace.
func (t *Trace) Source() Source {
	return &traceSource{tr: t, idx: make([]int, len(t.PerCore))}
}

func (s *traceSource) Name() string         { return s.tr.Name }
func (s *traceSource) Table() *stream.Table { return s.tr.Table }
func (s *traceSource) Cores() int           { return len(s.tr.PerCore) }
func (s *traceSource) Err() error           { return nil }

func (s *traceSource) Next(core int) (Access, bool) {
	i := s.idx[core]
	if i >= len(s.tr.PerCore[core]) {
		return Access{}, false
	}
	s.idx[core] = i + 1
	return s.tr.PerCore[core][i], true
}
