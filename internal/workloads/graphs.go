package workloads

import (
	"math/bits"

	"ndpext/internal/graph"
	"ndpext/internal/stream"
)

// graphProc is one process's graph and its stream annotations.
type graphProc struct {
	g       *graph.CSR
	offsets *stream.Stream // affine u32, read-only
	edges   *stream.Stream // affine u32, read-only
	cores   []int
}

// buildGraphProcs generates one RMAT graph per process and registers the
// CSR arrays as affine streams, mirroring the paper's annotation of the
// vertex list and edge list.
func buildGraphProcs(b *builder, cores int, seed uint64, sc Scale, edgeFactor int) []*graphProc {
	np := sc.procs(cores)
	n := sc.scaled(1<<15, 4096)
	scaleLog := bits.Len(uint(n - 1))
	var procs []*graphProc
	for p := 0; p < np; p++ {
		g := graph.RMAT(scaleLog, edgeFactor, seed+uint64(p)*1000003)
		gp := &graphProc{
			g:       g,
			offsets: b.affine(g.NumVertices()+1, 4),
			edges:   b.affine(g.NumEdges(), 4),
			cores:   procCores(cores, np, p),
		}
		procs = append(procs, gp)
	}
	return procs
}

// vertexRange returns core index ci's contiguous vertex slice.
func vertexRange(g *graph.CSR, cores []int, ci int) (lo, hi int) {
	n := g.NumVertices()
	return ci * n / len(cores), (ci + 1) * n / len(cores)
}

// PageRank is the GAP pr kernel: pull-style rank accumulation. The vertex
// and edge lists are affine streams; the source-rank reads indexed by the
// edge list form an indirect stream. Both rank buffers are written across
// iterations, so pr exercises dynamic (non-replicated) placement.
func PageRank(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("pr", cores, sc)
	procs := buildGraphProcs(b, cores, seed, sc, 12)
	for _, gp := range procs {
		n := gp.g.NumVertices()
		src := b.indirect(n, 4) // rank[u] read through edge targets
		dst := b.affine(n, 4)   // this iteration's output ranks
		ranks := make([]float32, n)
		for i := range ranks {
			ranks[i] = 1 / float32(n)
		}
		next := make([]float32, n)
		for iter := 0; iter < 8 && !b.allFull(); iter++ {
			for ci, core := range gp.cores {
				lo, hi := vertexRange(gp.g, gp.cores, ci)
				for v := lo; v < hi && !b.full(core); v++ {
					b.read(core, gp.offsets, v, 1)
					var sum float32
					for ei, e := range gp.g.Neighbors(v) {
						b.read(core, gp.edges, int(gp.g.Offsets[v])+ei, 0)
						b.read(core, src, int(e), 2)
						d := gp.g.Degree(int(e))
						if d > 0 {
							sum += ranks[e] / float32(d)
						}
					}
					next[v] = 0.15/float32(n) + 0.85*sum
					b.write(core, dst, v, 1)
				}
			}
			copy(ranks, next)
		}
	}
	return b.trace(), nil
}

// BFS is the GAP breadth-first search: frontier expansion with indirect
// parent updates. The parent array is written, so it stays unreplicated.
func BFS(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("bfs", cores, sc)
	procs := buildGraphProcs(b, cores, seed, sc, 12)
	for pi, gp := range procs {
		n := gp.g.NumVertices()
		parent := b.indirect(n, 4)
		frontierS := b.affine(n, 4)
		rng := rngFor(seed, pi)
		// GAP runs BFS from many sources; keep starting new traversals
		// until the trace budget is reached.
		for trial := 0; trial < 32 && !b.allFull(); trial++ {
			par := make([]int32, n)
			for i := range par {
				par[i] = -1
			}
			root := int(rng.Uint64n(uint64(n)))
			par[root] = int32(root)
			frontier := []int{root}
			for len(frontier) > 0 && !b.allFull() {
				var next []int
				for fi, u := range frontier {
					core := gp.cores[fi%len(gp.cores)]
					b.read(core, frontierS, fi%n, 1)
					b.read(core, gp.offsets, u, 0)
					for ei, e := range gp.g.Neighbors(u) {
						b.read(core, gp.edges, int(gp.g.Offsets[u])+ei, 0)
						b.read(core, parent, int(e), 2) // check visited
						if par[e] == -1 {
							par[e] = int32(u)
							b.write(core, parent, int(e), 1)
							next = append(next, int(e))
						}
					}
				}
				frontier = next
			}
		}
	}
	return b.trace(), nil
}

// CC is connected components via label propagation over an undirected
// view of the graph: the component array is indirect and read-write.
func CC(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("cc", cores, sc)
	procs := buildGraphProcs(b, cores, seed, sc, 12)
	for _, gp := range procs {
		n := gp.g.NumVertices()
		comp := b.indirect(n, 4)
		labels := make([]uint32, n)
		for i := range labels {
			labels[i] = uint32(i)
		}
		for iter := 0; iter < 6 && !b.allFull(); iter++ {
			changed := false
			for ci, core := range gp.cores {
				lo, hi := vertexRange(gp.g, gp.cores, ci)
				for v := lo; v < hi && !b.full(core); v++ {
					b.read(core, gp.offsets, v, 1)
					best := labels[v]
					b.read(core, comp, v, 0)
					for ei, e := range gp.g.Neighbors(v) {
						b.read(core, gp.edges, int(gp.g.Offsets[v])+ei, 0)
						b.read(core, comp, int(e), 2)
						if labels[e] < best {
							best = labels[e]
						}
					}
					if best < labels[v] {
						labels[v] = best
						changed = true
						b.write(core, comp, v, 1)
					}
				}
			}
			if !changed {
				break
			}
		}
	}
	return b.trace(), nil
}

// BC is one-source betweenness centrality: a forward BFS accumulating
// path counts (sigma) followed by a reverse sweep accumulating
// dependencies (delta); both per-vertex arrays are indirect, read-write.
func BC(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("bc", cores, sc)
	procs := buildGraphProcs(b, cores, seed, sc, 12)
	for pi, gp := range procs {
		n := gp.g.NumVertices()
		sigma := b.indirect(n, 4)
		delta := b.indirect(n, 4)
		depthS := b.indirect(n, 4)

		depth := make([]int32, n)
		for i := range depth {
			depth[i] = -1
		}
		sig := make([]float32, n)
		root := int(rngFor(seed, pi).Uint64n(uint64(n)))
		depth[root] = 0
		sig[root] = 1
		levels := [][]int{{root}}
		// Forward phase.
		for len(levels[len(levels)-1]) > 0 && !b.allFull() {
			cur := levels[len(levels)-1]
			var next []int
			for fi, u := range cur {
				core := gp.cores[fi%len(gp.cores)]
				b.read(core, gp.offsets, u, 1)
				for ei, e := range gp.g.Neighbors(u) {
					b.read(core, gp.edges, int(gp.g.Offsets[u])+ei, 0)
					b.read(core, depthS, int(e), 1)
					if depth[e] == -1 {
						depth[e] = depth[u] + 1
						next = append(next, int(e))
						b.write(core, depthS, int(e), 0)
					}
					if depth[e] == depth[u]+1 {
						sig[e] += sig[u]
						b.read(core, sigma, u, 1)
						b.write(core, sigma, int(e), 1)
					}
				}
			}
			levels = append(levels, next)
		}
		// Backward phase.
		for li := len(levels) - 1; li > 0 && !b.allFull(); li-- {
			for fi, u := range levels[li] {
				core := gp.cores[fi%len(gp.cores)]
				b.read(core, gp.offsets, u, 1)
				for ei, e := range gp.g.Neighbors(u) {
					b.read(core, gp.edges, int(gp.g.Offsets[u])+ei, 0)
					b.read(core, depthS, int(e), 1)
					if depth[e] == depth[u]+1 {
						b.read(core, sigma, int(e), 1)
						b.read(core, delta, int(e), 1)
						b.write(core, delta, u, 1)
					}
				}
			}
		}
	}
	return b.trace(), nil
}

// TC counts triangles by adjacency-list intersection: a streaming scan of
// N(u) against data-dependent scans of N(v), all within the edge-list
// affine stream.
func TC(cores int, seed uint64, sc Scale) (*Trace, error) {
	b := newBuilder("tc", cores, sc)
	procs := buildGraphProcs(b, cores, seed, sc, 8)
	for _, gp := range procs {
		for ci, core := range gp.cores {
			lo, hi := vertexRange(gp.g, gp.cores, ci)
			triangles := 0
			for u := lo; u < hi && !b.full(core); u++ {
				b.read(core, gp.offsets, u, 1)
				nu := gp.g.Neighbors(u)
				for vi, v := range nu {
					if int(v) <= u {
						continue
					}
					b.read(core, gp.edges, int(gp.g.Offsets[u])+vi, 0)
					b.read(core, gp.offsets, int(v), 0)
					nv := gp.g.Neighbors(int(v))
					// Merge-intersection of sorted lists.
					i, j := 0, 0
					for i < len(nu) && j < len(nv) {
						b.read(core, gp.edges, int(gp.g.Offsets[u])+i, 0)
						b.read(core, gp.edges, int(gp.g.Offsets[int(v)])+j, 2)
						switch {
						case nu[i] == nv[j]:
							triangles++
							i++
							j++
						case nu[i] < nv[j]:
							i++
						default:
							j++
						}
						if b.full(core) {
							break
						}
					}
				}
				if b.full(core) {
					break
				}
			}
			_ = triangles
		}
	}
	return b.trace(), nil
}
