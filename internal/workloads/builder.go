package workloads

import "ndpext/internal/stream"

// Builder is the public trace-construction API: it lets library users
// write custom workloads against the stream abstraction exactly the way
// the built-in workloads are written -- allocate data structures, declare
// them as affine or indirect streams (the paper's configure_stream), and
// emit per-core reads and writes.
type Builder struct {
	b *builder
}

// NewBuilder starts a trace named name for the given core count;
// accessesPerCore soft-bounds each core's trace length.
func NewBuilder(name string, cores, accessesPerCore int) *Builder {
	if cores <= 0 || accessesPerCore <= 0 {
		panic("workloads: NewBuilder requires positive cores and budget")
	}
	return &Builder{b: newBuilder(name, cores, Scale{AccessesPerCore: accessesPerCore})}
}

// Affine allocates a data structure of count elements and registers it as
// a flat affine stream (sequential/strided access pattern).
func (bl *Builder) Affine(count int, elemSize uint32) *stream.Stream {
	return bl.b.affine(count, elemSize)
}

// Affine2D allocates a 2-D affine stream of lenX x lenY elements with an
// explicit access order (e.g. stream.OrderYXZ for column-major access to
// row-major storage).
func (bl *Builder) Affine2D(lenX, lenY int, elemSize uint32, order stream.Order) *stream.Stream {
	return bl.b.affine2D(lenX, lenY, elemSize, order)
}

// Indirect allocates a data structure of count elements accessed
// data-dependently (addr = s[i]) and registers it as an indirect stream.
func (bl *Builder) Indirect(count int, elemSize uint32) *stream.Stream {
	return bl.b.indirect(count, elemSize)
}

// Read emits a read of element idx of s on the given core; gap is the
// number of compute cycles preceding the access.
func (bl *Builder) Read(core int, s *stream.Stream, idx int, gap uint8) {
	bl.b.read(core, s, idx, gap)
}

// Write emits a write of element idx of s on the given core.
func (bl *Builder) Write(core int, s *stream.Stream, idx int, gap uint8) {
	bl.b.write(core, s, idx, gap)
}

// Full reports whether the core's trace reached its budget.
func (bl *Builder) Full(core int) bool { return bl.b.full(core) }

// Build finalizes the trace.
func (bl *Builder) Build() *Trace { return bl.b.trace() }
