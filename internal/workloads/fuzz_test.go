package workloads

import (
	"bytes"
	"testing"
)

// FuzzTraceLoad checks that Load never panics on arbitrary bytes and
// that anything it accepts survives a Save/Load round trip.
func FuzzTraceLoad(f *testing.F) {
	// Seed with a real serialized trace plus structured garbage.
	gen, err := Get("mv")
	if err != nil {
		f.Fatal(err)
	}
	sc := TinyScale()
	sc.AccessesPerCore = 20 // keep the seed corpus small so mutation is fast
	tr, err := gen(2, 1, sc)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a trace"))
	f.Add(buf.Bytes()[:buf.Len()/2])
	// Header-region seeds: bare magic, magic+version with no payload,
	// and a wrong version byte — the truncation and version paths.
	f.Add([]byte(traceWireMagic))
	f.Add([]byte(traceWireMagic + "\x01"))
	f.Add([]byte(traceWireMagic + "\x63"))
	f.Add(buf.Bytes()[:len(traceWireMagic)+2])
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.Save(&out); err != nil {
			t.Fatalf("accepted trace does not re-save: %v", err)
		}
		again, err := Load(&out)
		if err != nil {
			t.Fatalf("re-saved trace does not re-load: %v", err)
		}
		if again.TotalAccesses() != got.TotalAccesses() || again.Table.Len() != got.Table.Len() {
			t.Fatal("round trip changed the trace shape")
		}
	})
}
