package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// randomTrace builds a trace with adversarial address patterns: tight
// strides, random jumps across the full 64-bit space, and runs of
// repeats — everything the delta encoder must survive.
func randomTrace(t testing.TB, rng *rand.Rand, cores, accesses int) *workloads.Trace {
	t.Helper()
	table := stream.NewTable()
	s, err := stream.Configure(3, stream.Affine, 1<<20, 1<<20, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Add(s); err != nil {
		t.Fatal(err)
	}
	tr := &workloads.Trace{Name: "random", Table: table, PerCore: make([][]workloads.Access, cores)}
	for c := range tr.PerCore {
		addr := rng.Uint64()
		n := accesses
		if n > 0 {
			n = rng.Intn(accesses + 1)
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				addr += 64
			case 1:
				addr -= uint64(rng.Intn(1 << 20))
			case 2:
				addr = rng.Uint64()
			}
			tr.PerCore[c] = append(tr.PerCore[c], workloads.Access{
				Addr:  addr,
				Write: rng.Intn(3) == 0,
				Gap:   uint8(rng.Intn(256)),
			})
		}
	}
	return tr
}

func equalAccesses(t *testing.T, want, got *workloads.Trace) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if len(want.PerCore) != len(got.PerCore) {
		t.Fatalf("cores %d != %d", len(got.PerCore), len(want.PerCore))
	}
	for c := range want.PerCore {
		w, g := want.PerCore[c], got.PerCore[c]
		if len(w) != len(g) {
			t.Fatalf("core %d: %d accesses != %d", c, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("core %d access %d: got %+v want %+v", c, i, g[i], w[i])
			}
		}
	}
}

// TestRoundTripProperty is the format's core property: any access
// sequence encodes and decodes to an identical trace, compressed or
// not, across chunk sizes that do and do not divide the sequence.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		cores := 1 + rng.Intn(6)
		tr := randomTrace(t, rng, cores, 3000)
		chunk := []int{0, 1, 7, 100, 4096}[rng.Intn(5)]
		compress := rng.Intn(2) == 0
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr, chunk, compress); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: validate: %v", trial, err)
		}
		got, err := r.Materialize()
		if err != nil {
			t.Fatalf("trial %d: materialize: %v", trial, err)
		}
		equalAccesses(t, tr, got)
		if r.Accesses() != uint64(tr.TotalAccesses()) {
			t.Fatalf("trial %d: total %d != %d", trial, r.Accesses(), tr.TotalAccesses())
		}
	}
}

// TestStreamTableRoundTrip checks every stream table field survives the
// header encode, including multi-dimensional reordered streams.
func TestStreamTableRoundTrip(t *testing.T) {
	table := stream.NewTable()
	s1, err := stream.ConfigureAffine3D(5, 4096, 8, 16, 8, 2, stream.OrderYXZ)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := stream.Configure(509, stream.Indirect, 1<<30, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2.ReadOnly = false
	for _, s := range []*stream.Stream{s1, s2} {
		if err := table.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	tr := &workloads.Trace{Name: "tbl", Table: table, PerCore: [][]workloads.Access{{{Addr: 4096}}}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 0, false); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got := r.Streams()
	// The writer snapshots streams as freshly configured (ReadOnly on).
	want1, want2 := *s1, *s2
	want2.ReadOnly = true
	if len(got) != 2 || !reflect.DeepEqual(got[0], want1) || !reflect.DeepEqual(got[1], want2) {
		t.Fatalf("stream table mangled:\n got %+v\nwant %+v", got, []stream.Stream{want1, want2})
	}
}

// TestDeterministicBytes: the same trace must serialize to identical
// bytes every time — the serving layer content-addresses trace files.
func TestDeterministicBytes(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(3)), 4, 2000)
	for _, compress := range []bool{false, true} {
		var a, b bytes.Buffer
		if err := WriteTrace(&a, tr, 512, compress); err != nil {
			t.Fatal(err)
		}
		if err := WriteTrace(&b, tr, 512, compress); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("compress=%v: two encodes of one trace differ", compress)
		}
	}
}

// TestCorruptChunkRejected flips one byte inside a chunk payload and
// expects the CRC check to refuse it — on Validate, Materialize, and
// the streaming Source.
func TestCorruptChunkRejected(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(11)), 2, 2000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 256, false); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	r, err := NewReader(bytes.NewReader(clean), int64(len(clean)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte well inside the first chunk's payload.
	dirty := bytes.Clone(clean)
	off := r.chunks[0].offset + maxChunkHeader + 8
	dirty[off] ^= 0x40
	rd, err := NewReader(bytes.NewReader(dirty), int64(len(dirty)))
	if err != nil {
		t.Fatal(err) // header and index are intact; open must succeed
	}
	if err := rd.Validate(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("Validate accepted a corrupt chunk (err=%v)", err)
	}
	if _, err := rd.Materialize(); err == nil {
		t.Fatal("Materialize accepted a corrupt chunk")
	}
	src, err := rd.Source()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < src.Cores(); c++ {
		for {
			if _, ok := src.Next(c); !ok {
				break
			}
		}
	}
	if src.Err() == nil {
		t.Fatal("Source drained a corrupt trace without error")
	}
}

// TestTruncatedFileRejected: every truncation point must produce an
// error at open or validate, never a panic or silent short read.
func TestTruncatedFileRejected(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(5)), 2, 500)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 128, true); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n += 1 + n/13 {
		b := full[:n]
		r, err := NewReader(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			continue
		}
		if err := r.Validate(); err == nil {
			t.Fatalf("truncation to %d/%d bytes validated cleanly", n, len(full))
		}
	}
}

// TestSourceMatchesMaterialize drains the streaming source and compares
// against the materialized trace, interleaving cores to exercise the
// per-core cursors.
func TestSourceMatchesMaterialize(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(13)), 5, 3000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 100, true); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	src, err := r.Source()
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]workloads.Access, src.Cores())
	done := 0
	for done < src.Cores() {
		for c := 0; c < src.Cores(); c++ {
			a, ok := src.Next(c)
			if !ok {
				continue
			}
			got[c] = append(got[c], a)
		}
		done = 0
		for c := 0; c < src.Cores(); c++ {
			if len(got[c]) == len(tr.PerCore[c]) {
				done++
			}
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	equalAccesses(t, tr, &workloads.Trace{Name: "random", PerCore: got})
	// Exhausted cores stay exhausted.
	if _, ok := src.Next(0); ok {
		t.Fatal("Next returned an access after exhaustion")
	}
}

// TestSliceDeterminism slices a window out of the middle of a trace and
// checks (a) the slice equals the materialized window, and (b) slicing
// twice yields byte-identical files.
func TestSliceDeterminism(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(17)), 3, 4000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 128, true); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	const from, to = 300, 1700
	var s1, s2 bytes.Buffer
	if err := r.Slice(&s1, from, to); err != nil {
		t.Fatal(err)
	}
	if err := r.Slice(&s2, from, to); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("two slices of one window differ")
	}
	sr, err := NewReader(bytes.NewReader(s1.Bytes()), int64(s1.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sr.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := &workloads.Trace{Name: tr.Name, PerCore: make([][]workloads.Access, len(tr.PerCore))}
	for c, accs := range tr.PerCore {
		lo, hi := from, to
		if lo > len(accs) {
			lo = len(accs)
		}
		if hi > len(accs) {
			hi = len(accs)
		}
		want.PerCore[c] = accs[lo:hi]
	}
	equalAccesses(t, want, got)
	if _, err := sr.Table(); err != nil {
		t.Fatalf("slice lost the stream table: %v", err)
	}
	if err := r.Slice(&bytes.Buffer{}, 10, 10); err == nil {
		t.Fatal("empty window accepted")
	}
}

// TestOpenFileAndDigest exercises the file-backed path and the
// content digest the serving layer keys jobs by.
func TestOpenFileAndDigest(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(19)), 2, 1000)
	path := filepath.Join(t.TempDir(), "t.ndptrc")
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	equalAccesses(t, tr, got)
	d1, err := DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("digest unstable or malformed: %q vs %q", d1, d2)
	}
}

// TestRecorder drives the probe-facing recorder directly.
func TestRecorder(t *testing.T) {
	tr := randomTrace(t, rand.New(rand.NewSource(23)), 3, 800)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Options{Name: tr.Name, Table: tr.Table, Cores: len(tr.PerCore)})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w)
	// Interleave cores the way the event loop would.
	idx := make([]int, len(tr.PerCore))
	for left := tr.TotalAccesses(); left > 0; {
		for c := range tr.PerCore {
			if idx[c] >= len(tr.PerCore[c]) {
				continue
			}
			a := tr.PerCore[c][idx[c]]
			ev := telemetry.Event{Core: c, Addr: a.Addr, Write: a.Write, Gap: a.Gap}
			rec.Record(&ev)
			idx[c]++
			left--
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	equalAccesses(t, tr, got)
}

// TestWriterErrors covers the writer's misuse guards.
func TestWriterErrors(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, Options{Cores: 0}); err == nil {
		t.Fatal("zero-core writer accepted")
	}
	w, err := NewWriter(&bytes.Buffer{}, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(5, workloads.Access{}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	w2, err := NewWriter(&bytes.Buffer{}, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Add(0, workloads.Access{}); err == nil {
		t.Fatal("Add after Close accepted")
	}
}

// TestConvertCSV imports header, headerless, and hex-address CSV logs.
func TestConvertCSV(t *testing.T) {
	csvLog := `core,addr,rw,gap
0,0x1000,R,3
1,0x1040,W,0
0,0x1080,R,10
1,0x4000000,W,255
`
	tr, err := ConvertCSV(strings.NewReader(csvLog), ConvertOptions{Name: "ext"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PerCore) != 2 || tr.Name != "ext" {
		t.Fatalf("got %d cores, name %q", len(tr.PerCore), tr.Name)
	}
	want0 := []workloads.Access{{Addr: 0x1000, Gap: 3}, {Addr: 0x1080, Gap: 10}}
	want1 := []workloads.Access{{Addr: 0x1040, Write: true}, {Addr: 0x4000000, Write: true, Gap: 255}}
	if !reflect.DeepEqual(tr.PerCore[0], want0) || !reflect.DeepEqual(tr.PerCore[1], want1) {
		t.Fatalf("parsed %+v / %+v", tr.PerCore[0], tr.PerCore[1])
	}
	// Far-apart regions must infer separate streams, and every access
	// must fall inside one.
	if tr.Table.Len() != 2 {
		t.Fatalf("inferred %d streams, want 2", tr.Table.Len())
	}
	for _, accs := range tr.PerCore {
		for _, a := range accs {
			if tr.Table.FindByAddr(a.Addr) == nil {
				t.Fatalf("access %#x outside every inferred stream", a.Addr)
			}
		}
	}

	// Headerless, address-only, dealt over 2 cores.
	tr2, err := ConvertCSV(strings.NewReader("4096\n4160\n4224\n"), ConvertOptions{Name: "flat", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.PerCore) != 2 || len(tr2.PerCore[0]) != 2 || len(tr2.PerCore[1]) != 1 {
		t.Fatalf("round-robin deal wrong: %d/%d", len(tr2.PerCore[0]), len(tr2.PerCore[1]))
	}

	if _, err := ConvertCSV(strings.NewReader(""), ConvertOptions{}); err == nil {
		t.Fatal("empty log accepted")
	}
}

// TestConvertJSONL imports a JSONL log with mixed addr encodings.
func TestConvertJSONL(t *testing.T) {
	log := `{"core":0,"addr":"0x2000","op":"W","gap":4}
# comment
{"core":2,"addr":8256}
`
	tr, err := ConvertJSONL(strings.NewReader(log), ConvertOptions{Name: "j"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.PerCore) != 3 {
		t.Fatalf("got %d cores, want 3 (max core 2)", len(tr.PerCore))
	}
	if a := tr.PerCore[0][0]; a.Addr != 0x2000 || !a.Write || a.Gap != 4 {
		t.Fatalf("record 0 parsed as %+v", a)
	}
	if a := tr.PerCore[2][0]; a.Addr != 8256 || a.Write {
		t.Fatalf("record 1 parsed as %+v", a)
	}
}

// TestConvertRebase: footprints above 2^48 rebase rather than fail.
func TestConvertRebase(t *testing.T) {
	log := "0xffff800000001000\n0xffff800000001040\n"
	tr, err := ConvertCSV(strings.NewReader(log), ConvertOptions{Name: "kern"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tr.PerCore[0] {
		if a.Addr >= 1<<stream.BaseBits {
			t.Fatalf("address %#x not rebased under 2^%d", a.Addr, stream.BaseBits)
		}
		if tr.Table.FindByAddr(a.Addr) == nil {
			t.Fatalf("rebased address %#x outside inferred streams", a.Addr)
		}
	}
}

// TestConvertRoundTripThroughFormat writes an imported trace to the
// native format and back.
func TestConvertRoundTripThroughFormat(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("core,addr,rw\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d,%d,%s\n", i%4, 1<<16+i*64, []string{"R", "W"}[i%2])
	}
	tr, err := ConvertCSV(strings.NewReader(sb.String()), ConvertOptions{Name: "gen"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 0, true); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	equalAccesses(t, tr, got)
	if got.Table.Len() != tr.Table.Len() {
		t.Fatalf("stream table %d != %d", got.Table.Len(), tr.Table.Len())
	}
}

// FuzzReader: arbitrary bytes must never panic the open path; valid
// prefixes from the seed corpus must round-trip.
func FuzzReader(f *testing.F) {
	tr := randomTrace(f, rand.New(rand.NewSource(29)), 2, 300)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr, 64, compress); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte(magic))
	f.Add([]byte(footerMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewReader(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return
		}
		// Whatever opens must also decode without panicking.
		r.Validate()
		if m, err := r.Materialize(); err == nil {
			var buf bytes.Buffer
			if err := WriteTrace(&buf, m, r.ChunkAccesses(), r.Compressed()); err != nil {
				t.Fatalf("re-encode of decoded trace failed: %v", err)
			}
		}
	})
}
