// Package trace implements the native on-disk memory-access trace
// format and its tooling: a recorder that sinks the telemetry probe bus
// (any live simulation can be captured, including under fault
// injection), a streaming replayer that drives the simulator with
// bounded memory, slicing, and importers for external CSV/JSONL access
// logs.
//
// # Format (version 1)
//
//	header:  "NDPTRC" | version u8 | flags u8 |
//	         len uvarint | payload | crc32(payload) u32le
//	         payload: name, cores, chunk size, embedded stream table
//	chunk*:  0xC1 | core | startIdx | count | rawLen | encLen uvarints |
//	         crc32(raw) u32le | payload [encLen]byte
//	index:   0xC2 | len uvarint | payload | crc32(payload) u32le
//	         payload: per-chunk (core, startIdx, count, offset) + total
//	footer:  index offset u64le | "NDPTRCIX"
//
// Each chunk holds one core's consecutive accesses in columnar form:
// the address column (first address, then zigzag-varint deltas — access
// streams are overwhelmingly small-stride, so deltas collapse to one or
// two bytes), the gap column (raw bytes), and the write column (packed
// bitmap). Chunks are independently CRC-protected and optionally
// flate-compressed, and the trailing index makes per-core iteration and
// mid-file slicing seekable without scanning the file.
package trace

import (
	"encoding/binary"
	"fmt"

	"ndpext/internal/stream"
	"ndpext/internal/workloads"
)

const (
	// magic opens every trace file; footerMagic closes it.
	magic       = "NDPTRC"
	footerMagic = "NDPTRCIX"
	// Version is the current format version.
	Version = 1

	// flagFlate marks chunk payloads as flate-compressed.
	flagFlate = 1 << 0

	chunkMarker = 0xC1
	indexMarker = 0xC2

	// DefaultChunkAccesses is the per-chunk access count: small enough
	// that a streaming replayer buffers ~64 kB per core, large enough
	// that varint deltas amortize the chunk header to noise.
	DefaultChunkAccesses = 4096

	// footerLen is the fixed byte length of the trailing footer.
	footerLen = 8 + len(footerMagic)

	// maxHeaderLen bounds the header payload (name + ≤511 streams).
	maxHeaderLen = 1 << 20
)

// chunkMeta locates one chunk: which core it belongs to, the per-core
// index of its first access, its access count, and its absolute file
// offset.
type chunkMeta struct {
	core     int
	startIdx uint64
	count    uint64
	offset   int64
}

// appendUvarint appends v in unsigned LEB128.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// zigzag folds a signed delta into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// cursor is a bounds-checked decoder over one in-memory block. The
// first failure is sticky; callers check err once at the end.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("trace: truncated or corrupt %s at offset %d", what, c.off)
	}
}

func (c *cursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) byte(what string) byte {
	if c.err != nil || c.off >= len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) bytes(n int, what string) []byte {
	if c.err != nil || n < 0 || c.off+n > len(c.b) {
		c.fail(what)
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) u32le(what string) uint32 {
	b := c.bytes(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// done reports leftover bytes as corruption (strict blocks only).
func (c *cursor) done(what string) error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("trace: %d trailing bytes after %s", len(c.b)-c.off, what)
	}
	return nil
}

// encodeChunkPayload renders one core's consecutive accesses in the
// columnar chunk layout (uncompressed form).
func encodeChunkPayload(dst []byte, accs []workloads.Access) []byte {
	// Address column: absolute first address, then zigzag deltas.
	// Unsigned wraparound subtraction is exact modulo 2^64, so forward
	// and backward strides round-trip bit for bit.
	prev := accs[0].Addr
	dst = appendUvarint(dst, prev)
	for _, a := range accs[1:] {
		dst = appendUvarint(dst, zigzag(int64(a.Addr-prev)))
		prev = a.Addr
	}
	// Gap column.
	for _, a := range accs {
		dst = append(dst, a.Gap)
	}
	// Write column: packed bitmap, LSB first.
	var bits byte
	for i, a := range accs {
		if a.Write {
			bits |= 1 << (i & 7)
		}
		if i&7 == 7 {
			dst = append(dst, bits)
			bits = 0
		}
	}
	if len(accs)&7 != 0 {
		dst = append(dst, bits)
	}
	return dst
}

// decodeChunkPayload inverts encodeChunkPayload, appending count
// accesses to dst.
func decodeChunkPayload(raw []byte, count int, dst []workloads.Access) ([]workloads.Access, error) {
	c := &cursor{b: raw}
	base := len(dst)
	addr := c.uvarint("chunk address column")
	dst = append(dst, workloads.Access{Addr: addr})
	for i := 1; i < count; i++ {
		addr += uint64(unzigzag(c.uvarint("chunk address column")))
		dst = append(dst, workloads.Access{Addr: addr})
	}
	gaps := c.bytes(count, "chunk gap column")
	for i, g := range gaps {
		dst[base+i].Gap = g
	}
	bitmap := c.bytes((count+7)/8, "chunk write column")
	for i := 0; i < count && bitmap != nil; i++ {
		dst[base+i].Write = bitmap[i/8]&(1<<(i&7)) != 0
	}
	if err := c.done("chunk payload"); err != nil {
		return nil, err
	}
	return dst, nil
}

// appendStream serializes one stream table entry.
func appendStream(dst []byte, s *stream.Stream) []byte {
	dst = appendUvarint(dst, uint64(s.SID))
	dst = append(dst, byte(s.Type))
	var ro byte
	if s.ReadOnly {
		ro = 1
	}
	dst = append(dst, ro, byte(s.Order))
	dst = appendUvarint(dst, uint64(s.ElemSize))
	dst = appendUvarint(dst, s.Base)
	dst = appendUvarint(dst, s.Size)
	for _, v := range s.Stride {
		dst = appendUvarint(dst, v)
	}
	for _, v := range s.Length {
		dst = appendUvarint(dst, v)
	}
	return dst
}

// decodeStream inverts appendStream.
func (c *cursor) decodeStream() stream.Stream {
	var s stream.Stream
	s.SID = stream.ID(c.uvarint("stream sid"))
	s.Type = stream.Type(c.byte("stream type"))
	s.ReadOnly = c.byte("stream readonly") != 0
	s.Order = stream.Order(c.byte("stream order"))
	s.ElemSize = uint32(c.uvarint("stream elem size"))
	s.Base = c.uvarint("stream base")
	s.Size = c.uvarint("stream size")
	for i := range s.Stride {
		s.Stride[i] = c.uvarint("stream stride")
	}
	for i := range s.Length {
		s.Length[i] = c.uvarint("stream length")
	}
	return s
}
