package trace

import (
	"fmt"
	"io"

	"ndpext/internal/workloads"
)

// Slice writes the per-core access window [from, to) of the trace as a
// new sealed trace file on w, preserving the name, stream table,
// chunking, and compression of the source. The chunk index keeps it
// O(window): only chunks overlapping the window are decoded, so slicing
// the middle of a long trace never touches its head or tail. Cores with
// fewer than `from` accesses contribute nothing.
func (tr *Reader) Slice(w io.Writer, from, to uint64) error {
	if from >= to {
		return fmt.Errorf("trace: empty slice window [%d,%d)", from, to)
	}
	table, err := tr.Table()
	if err != nil {
		return err
	}
	tw, err := NewWriter(w, Options{
		Name: tr.name, Table: table, Cores: tr.cores,
		ChunkAccesses: tr.chunkAccesses, Compress: tr.Compressed(),
	})
	if err != nil {
		return err
	}
	var buf []workloads.Access
	for c := 0; c < tr.cores; c++ {
		for _, m := range tr.perCore[c] {
			if m.startIdx+m.count <= from || m.startIdx >= to {
				continue
			}
			buf, err = tr.readChunk(m, buf[:0])
			if err != nil {
				return err
			}
			lo, hi := uint64(0), m.count
			if from > m.startIdx {
				lo = from - m.startIdx
			}
			if end := m.startIdx + m.count; to < end {
				hi = m.count - (end - to)
			}
			for _, a := range buf[lo:hi] {
				if err := tw.Add(c, a); err != nil {
					return err
				}
			}
		}
	}
	return tw.Close()
}
