package trace

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ndpext/internal/stream"
	"ndpext/internal/telemetry"
	"ndpext/internal/workloads"
)

// Options configures a Writer.
type Options struct {
	// Name is the trace's workload name, reproduced verbatim on replay
	// so canonical result documents match the recorded run's.
	Name string
	// Table is the stream table embedded in the header. It is snapshotted
	// at Writer construction (the simulation mutates read-only bits
	// mid-run, and the replayer must see the freshly-configured state).
	Table *stream.Table
	// Cores is the number of per-core access sequences.
	Cores int
	// ChunkAccesses caps accesses per chunk; 0 means
	// DefaultChunkAccesses.
	ChunkAccesses int
	// Compress flate-compresses chunk payloads. Roughly halves file size
	// on the synthetic workloads at ~3x slower encode; see DESIGN.md for
	// measurements.
	Compress bool
}

// Writer streams a trace file: accesses are appended per core, flushed
// as independent chunks, and sealed with a seekable index on Close.
// Memory stays bounded at one partial chunk per core.
type Writer struct {
	w       *bufio.Writer
	off     int64
	opts    Options
	streams []stream.Stream

	buf     [][]workloads.Access // per-core partial chunk
	written []uint64             // per-core flushed access count
	chunks  []chunkMeta

	scratch []byte // chunk encode buffer, reused across flushes
	fw      *flate.Writer
	closed  bool
	err     error
}

// NewWriter starts a trace file on w.
func NewWriter(w io.Writer, opts Options) (*Writer, error) {
	if opts.Cores <= 0 {
		return nil, fmt.Errorf("trace: writer needs a positive core count, got %d", opts.Cores)
	}
	if opts.ChunkAccesses <= 0 {
		opts.ChunkAccesses = DefaultChunkAccesses
	}
	tw := &Writer{
		w:       bufio.NewWriter(w),
		opts:    opts,
		buf:     make([][]workloads.Access, opts.Cores),
		written: make([]uint64, opts.Cores),
	}
	if opts.Table != nil {
		for _, s := range opts.Table.All() {
			c := *s
			c.ReadOnly = true // snapshot as freshly configured
			tw.streams = append(tw.streams, c)
		}
	}
	if opts.Compress {
		fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		tw.fw = fw
	}
	return tw, tw.writeHeader()
}

func (tw *Writer) write(b []byte) {
	if tw.err != nil {
		return
	}
	n, err := tw.w.Write(b)
	tw.off += int64(n)
	tw.err = err
}

func (tw *Writer) writeHeader() error {
	p := appendUvarint(nil, uint64(len(tw.opts.Name)))
	p = append(p, tw.opts.Name...)
	p = appendUvarint(p, uint64(tw.opts.Cores))
	p = appendUvarint(p, uint64(tw.opts.ChunkAccesses))
	p = appendUvarint(p, uint64(len(tw.streams)))
	for i := range tw.streams {
		p = appendStream(p, &tw.streams[i])
	}
	var flags byte
	if tw.opts.Compress {
		flags |= flagFlate
	}
	h := append([]byte(magic), Version, flags)
	h = appendUvarint(h, uint64(len(p)))
	h = append(h, p...)
	h = binary.LittleEndian.AppendUint32(h, crc32.ChecksumIEEE(p))
	tw.write(h)
	return tw.err
}

// Add appends one access to core's sequence.
func (tw *Writer) Add(core int, a workloads.Access) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return fmt.Errorf("trace: Add after Close")
	}
	if core < 0 || core >= tw.opts.Cores {
		tw.err = fmt.Errorf("trace: access for core %d in a %d-core trace", core, tw.opts.Cores)
		return tw.err
	}
	tw.buf[core] = append(tw.buf[core], a)
	if len(tw.buf[core]) >= tw.opts.ChunkAccesses {
		tw.flush(core)
	}
	return tw.err
}

// flush writes core's buffered accesses as one chunk.
func (tw *Writer) flush(core int) {
	accs := tw.buf[core]
	if tw.err != nil || len(accs) == 0 {
		return
	}
	raw := encodeChunkPayload(tw.scratch[:0], accs)
	tw.scratch = raw
	enc := raw
	if tw.fw != nil {
		var cb countingBuf
		tw.fw.Reset(&cb)
		if _, err := tw.fw.Write(raw); err != nil {
			tw.err = err
			return
		}
		if err := tw.fw.Close(); err != nil {
			tw.err = err
			return
		}
		enc = cb.b
	}
	h := []byte{chunkMarker}
	h = appendUvarint(h, uint64(core))
	h = appendUvarint(h, tw.written[core])
	h = appendUvarint(h, uint64(len(accs)))
	h = appendUvarint(h, uint64(len(raw)))
	h = appendUvarint(h, uint64(len(enc)))
	h = binary.LittleEndian.AppendUint32(h, crc32.ChecksumIEEE(raw))
	meta := chunkMeta{core: core, startIdx: tw.written[core], count: uint64(len(accs)), offset: tw.off}
	tw.write(h)
	tw.write(enc)
	if tw.err != nil {
		return
	}
	tw.chunks = append(tw.chunks, meta)
	tw.written[core] += uint64(len(accs))
	tw.buf[core] = accs[:0]
}

// Close flushes every partial chunk and writes the index and footer. It
// does not close the underlying writer.
func (tw *Writer) Close() error {
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	for c := range tw.buf {
		tw.flush(c)
	}
	indexOff := tw.off
	p := appendUvarint(nil, uint64(len(tw.chunks)))
	for _, m := range tw.chunks {
		p = appendUvarint(p, uint64(m.core))
		p = appendUvarint(p, m.startIdx)
		p = appendUvarint(p, m.count)
		p = appendUvarint(p, uint64(m.offset))
	}
	var total uint64
	for _, n := range tw.written {
		total += n
	}
	p = appendUvarint(p, total)
	b := []byte{indexMarker}
	b = appendUvarint(b, uint64(len(p)))
	b = append(b, p...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(p))
	// Footer: fixed-width index offset + closing magic.
	b = binary.LittleEndian.AppendUint64(b, uint64(indexOff))
	b = append(b, footerMagic...)
	tw.write(b)
	if tw.err == nil {
		tw.err = tw.w.Flush()
	}
	return tw.err
}

// countingBuf collects flate output.
type countingBuf struct{ b []byte }

func (c *countingBuf) Write(p []byte) (int, error) {
	c.b = append(c.b, p...)
	return len(p), nil
}

// WriteTrace writes a materialized trace to w in the native format.
func WriteTrace(w io.Writer, tr *workloads.Trace, chunkAccesses int, compress bool) error {
	tw, err := NewWriter(w, Options{
		Name: tr.Name, Table: tr.Table, Cores: len(tr.PerCore),
		ChunkAccesses: chunkAccesses, Compress: compress,
	})
	if err != nil {
		return err
	}
	for c, accs := range tr.PerCore {
		for _, a := range accs {
			if err := tw.Add(c, a); err != nil {
				return err
			}
		}
	}
	return tw.Close()
}

// SaveFile writes a materialized trace to path with default chunking
// and compression on.
func SaveFile(path string, tr *workloads.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr, 0, true); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Recorder is a telemetry probe that captures every simulated access
// into a trace Writer. Attach it via Config.AttachProbe so it composes
// with sampling probes; the probe contract (single simulation
// goroutine, no Event retention) makes the unsynchronized Writer safe.
// Errors are sticky and surfaced by Err/Close — a probe callback cannot
// fail, so the recorder swallows them mid-run.
type Recorder struct {
	w   *Writer
	err error
}

// NewRecorder wraps a Writer as a probe sink.
func NewRecorder(w *Writer) *Recorder { return &Recorder{w: w} }

// Record implements telemetry.Probe.
func (r *Recorder) Record(ev *telemetry.Event) {
	if r.err != nil {
		return
	}
	r.err = r.w.Add(ev.Core, workloads.Access{Addr: ev.Addr, Write: ev.Write, Gap: ev.Gap})
}

// Err reports the first write failure, if any.
func (r *Recorder) Err() error { return r.err }

// Close seals the trace file (flushes chunks, writes the index) and
// reports the first error from the whole recording.
func (r *Recorder) Close() error {
	if err := r.w.Close(); r.err == nil {
		r.err = err
	}
	return r.err
}
