package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ndpext/internal/stream"
	"ndpext/internal/workloads"
)

// This file imports external access logs (DAMOV-style CSV dumps, JSONL
// exports) as native traces. External logs carry no stream annotations,
// so the importer infers them: the accessed cache lines are clustered
// into contiguous address regions, and each region becomes a flat
// affine stream. That recovers the data-structure-per-region layout
// that trace dumps of array-based kernels actually have, and gives the
// placement policies real stream boundaries to work with.

// lineBytes is the inference granularity: one cache line.
const lineBytes = 64

// initialGapBytes is the starting cluster-split threshold: address gaps
// wider than this separate data structures. It doubles until the
// regions fit the 511-stream table.
const initialGapBytes = 2 << 20

// extRecord is one parsed external-log entry.
type extRecord struct {
	core  int
	addr  uint64
	write bool
	gap   uint8
}

// ConvertOptions configures an import.
type ConvertOptions struct {
	// Name is the workload name of the resulting trace.
	Name string
	// Cores forces the core count. 0 infers max(core)+1 from the log;
	// logs without a core column are dealt round-robin over this many
	// cores (default 1).
	Cores int
}

// ConvertCSV imports a CSV access log. The first row may be a header
// naming the columns (core/cpu/thread, addr/address, write/rw/op,
// gap/delay); headerless files are read positionally as
// addr | core,addr | core,addr,write | core,addr,write,gap.
// Addresses accept decimal or 0x-prefixed hex. '#' lines are comments.
func ConvertCSV(r io.Reader, opts ConvertOptions) (*workloads.Trace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.Comment = '#'
	cr.FieldsPerRecord = -1

	var recs []extRecord
	cols := map[string]int{}
	haveCore := true
	first := true
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv import: %w", err)
		}
		if first {
			first = false
			if hdr := csvHeader(row); hdr != nil {
				cols = hdr
				_, haveCore = cols["core"]
				if _, ok := cols["addr"]; !ok {
					return nil, fmt.Errorf("trace: csv header %v has no address column", row)
				}
				continue
			}
			// Positional layout.
			switch len(row) {
			case 1:
				cols["addr"] = 0
				haveCore = false
			case 2:
				cols["core"], cols["addr"] = 0, 1
			case 3:
				cols["core"], cols["addr"], cols["write"] = 0, 1, 2
			default:
				cols["core"], cols["addr"], cols["write"], cols["gap"] = 0, 1, 2, 3
			}
		}
		rec, err := csvRecord(row, cols)
		if err != nil {
			return nil, fmt.Errorf("trace: csv import line %d: %w", len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
	return buildTrace(recs, haveCore, opts)
}

// csvHeader maps recognized column names to positions, or nil if the
// row does not look like a header (all fields numeric).
func csvHeader(row []string) map[string]int {
	names := map[string]string{
		"core": "core", "cpu": "core", "thread": "core",
		"addr": "addr", "address": "addr", "vaddr": "addr", "paddr": "addr",
		"write": "write", "rw": "write", "op": "write", "type": "write",
		"gap": "gap", "delay": "gap", "cycles": "gap",
	}
	hdr := map[string]int{}
	numeric := true
	for i, f := range row {
		f = strings.ToLower(strings.TrimSpace(f))
		if _, err := parseAddr(f); err != nil {
			numeric = false
		}
		if canon, ok := names[f]; ok {
			hdr[canon] = i
		}
	}
	if numeric || len(hdr) == 0 {
		return nil
	}
	return hdr
}

func csvRecord(row []string, cols map[string]int) (extRecord, error) {
	var rec extRecord
	get := func(name string) (string, bool) {
		i, ok := cols[name]
		if !ok || i >= len(row) {
			return "", false
		}
		return strings.TrimSpace(row[i]), true
	}
	s, ok := get("addr")
	if !ok {
		return rec, fmt.Errorf("missing address field")
	}
	addr, err := parseAddr(s)
	if err != nil {
		return rec, fmt.Errorf("bad address %q: %w", s, err)
	}
	rec.addr = addr
	if s, ok := get("core"); ok {
		c, err := strconv.Atoi(s)
		if err != nil || c < 0 {
			return rec, fmt.Errorf("bad core %q", s)
		}
		rec.core = c
	}
	if s, ok := get("write"); ok {
		w, err := parseWrite(s)
		if err != nil {
			return rec, err
		}
		rec.write = w
	}
	if s, ok := get("gap"); ok && s != "" {
		g, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return rec, fmt.Errorf("bad gap %q", s)
		}
		if g > 255 {
			g = 255 // saturate: the trace format models at most 255 compute cycles
		}
		rec.gap = uint8(g)
	}
	return rec, nil
}

func parseAddr(s string) (uint64, error) {
	if len(s) > 2 && (s[:2] == "0x" || s[:2] == "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseWrite(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "1", "true", "w", "wr", "write", "st", "store", "s":
		return true, nil
	case "0", "false", "r", "rd", "read", "ld", "load", "l", "":
		return false, nil
	}
	return false, fmt.Errorf("bad write flag %q", s)
}

// jsonRecord mirrors extRecord for JSONL logs. Addr accepts a number or
// a (hex) string; Write accepts a bool or an R/W string via Op.
type jsonRecord struct {
	Core *int            `json:"core"`
	CPU  *int            `json:"cpu"`
	Addr json.RawMessage `json:"addr"`
	Op   string          `json:"op"`
	W    *bool           `json:"write"`
	Gap  uint64          `json:"gap"`
}

// ConvertJSONL imports a JSON-lines access log: one object per line
// with fields addr (number or hex string; required), core/cpu, write
// (bool) or op ("R"/"W"), and gap.
func ConvertJSONL(r io.Reader, opts ConvertOptions) (*workloads.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []extRecord
	haveCore := false
	line := 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" || b[0] == '#' {
			continue
		}
		var jr jsonRecord
		if err := json.Unmarshal([]byte(b), &jr); err != nil {
			return nil, fmt.Errorf("trace: jsonl import line %d: %w", line, err)
		}
		if jr.Addr == nil {
			return nil, fmt.Errorf("trace: jsonl import line %d: missing addr", line)
		}
		var rec extRecord
		var num json.Number
		if err := json.Unmarshal(jr.Addr, &num); err == nil {
			a, err := strconv.ParseUint(num.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: jsonl import line %d: bad addr %s", line, num)
			}
			rec.addr = a
		} else {
			var s string
			if err := json.Unmarshal(jr.Addr, &s); err != nil {
				return nil, fmt.Errorf("trace: jsonl import line %d: bad addr", line)
			}
			a, err := parseAddr(s)
			if err != nil {
				return nil, fmt.Errorf("trace: jsonl import line %d: bad addr %q", line, s)
			}
			rec.addr = a
		}
		switch {
		case jr.Core != nil:
			rec.core, haveCore = *jr.Core, true
		case jr.CPU != nil:
			rec.core, haveCore = *jr.CPU, true
		}
		if rec.core < 0 {
			return nil, fmt.Errorf("trace: jsonl import line %d: negative core", line)
		}
		switch {
		case jr.W != nil:
			rec.write = *jr.W
		case jr.Op != "":
			w, err := parseWrite(jr.Op)
			if err != nil {
				return nil, fmt.Errorf("trace: jsonl import line %d: %w", line, err)
			}
			rec.write = w
		}
		if jr.Gap > 255 {
			jr.Gap = 255
		}
		rec.gap = uint8(jr.Gap)
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl import: %w", err)
	}
	return buildTrace(recs, haveCore, opts)
}

// ConvertFile imports path, picking the parser by extension: .csv is
// CSV, .jsonl/.ndjson/.json is JSONL. Name defaults to the file's base
// name without extension.
func ConvertFile(path string, opts ConvertOptions) (*workloads.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if opts.Name == "" {
		base := filepath.Base(path)
		opts.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		return ConvertCSV(bufio.NewReader(f), opts)
	case ".jsonl", ".ndjson", ".json":
		return ConvertJSONL(bufio.NewReader(f), opts)
	default:
		return nil, fmt.Errorf("trace: unknown log format %q (want .csv or .jsonl)", ext)
	}
}

// buildTrace assembles the per-core sequences and infers the stream
// table from the address footprint.
func buildTrace(recs []extRecord, haveCore bool, opts ConvertOptions) (*workloads.Trace, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: import found no accesses")
	}
	cores := opts.Cores
	if !haveCore {
		// No core column: deal round-robin in log order.
		if cores <= 0 {
			cores = 1
		}
		for i := range recs {
			recs[i].core = i % cores
		}
	}
	maxCore := 0
	for _, r := range recs {
		if r.core > maxCore {
			maxCore = r.core
		}
	}
	if cores <= 0 {
		cores = maxCore + 1
	}
	if maxCore >= cores {
		return nil, fmt.Errorf("trace: log names core %d but import is limited to %d cores", maxCore, cores)
	}

	// Rebase if the footprint exceeds the 48-bit stream address fields
	// (kernel-space virtual addresses in raw dumps): relative structure
	// is what the placement policies consume.
	minAddr := recs[0].addr
	maxAddr := recs[0].addr
	for _, r := range recs {
		if r.addr < minAddr {
			minAddr = r.addr
		}
		if r.addr > maxAddr {
			maxAddr = r.addr
		}
	}
	if maxAddr >= 1<<stream.BaseBits {
		base := minAddr &^ (lineBytes - 1)
		if maxAddr-base >= 1<<stream.BaseBits {
			return nil, fmt.Errorf("trace: address footprint %d bytes exceeds the %d-bit stream address space",
				maxAddr-base, stream.BaseBits)
		}
		for i := range recs {
			recs[i].addr -= base
		}
	}

	tr := &workloads.Trace{Name: opts.Name, PerCore: make([][]workloads.Access, cores)}
	lines := make(map[uint64]struct{})
	for _, r := range recs {
		tr.PerCore[r.core] = append(tr.PerCore[r.core], workloads.Access{Addr: r.addr, Write: r.write, Gap: r.gap})
		lines[r.addr&^(lineBytes-1)] = struct{}{}
	}
	table, err := inferStreams(lines)
	if err != nil {
		return nil, err
	}
	tr.Table = table
	return tr, nil
}

// inferStreams clusters the accessed cache lines into contiguous
// regions and registers each as a flat affine stream. The split
// threshold doubles until the regions fit the stream table.
func inferStreams(lineSet map[uint64]struct{}) (*stream.Table, error) {
	lines := make([]uint64, 0, len(lineSet))
	for l := range lineSet {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })

	for gap := uint64(initialGapBytes); ; gap *= 2 {
		type region struct{ base, end uint64 } // [base, end), line-aligned
		var regs []region
		for _, l := range lines {
			if n := len(regs); n > 0 && l-regs[n-1].end < gap {
				regs[n-1].end = l + lineBytes
			} else {
				regs = append(regs, region{base: l, end: l + lineBytes})
			}
		}
		if len(regs) >= stream.MaxStreams-1 {
			continue // too fragmented; widen the split threshold
		}
		table := stream.NewTable()
		for i, rg := range regs {
			s, err := stream.Configure(stream.ID(i), stream.Affine, rg.base, rg.end-rg.base, lineBytes)
			if err != nil {
				return nil, fmt.Errorf("trace: inferred stream %d: %w", i, err)
			}
			if err := table.Add(s); err != nil {
				return nil, fmt.Errorf("trace: inferred stream %d: %w", i, err)
			}
		}
		return table, nil
	}
}
