package trace

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ndpext/internal/stream"
	"ndpext/internal/workloads"
)

// maxChunkHeader bounds one chunk header: marker + five uvarints + CRC.
const maxChunkHeader = 1 + 5*binary.MaxVarintLen64 + 4

// ErrCorrupt marks a file whose bytes cannot be decoded as a valid
// trace: bad magic, CRC mismatches, truncation, implausible lengths.
// Every corruption error from NewReader and from chunk decoding
// (Validate, Materialize, Slice, and mid-replay Source reads) wraps it,
// so the serving layer can distinguish "this file is bad and will stay
// bad" (quarantine the digest) from transient I/O or configuration
// errors.
var ErrCorrupt = errors.New("corrupt trace")

// corrupt wraps a decode error with ErrCorrupt (nil passes through).
func corrupt(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// Reader gives random access to a sealed trace file: header metadata,
// per-chunk decode (CRC-verified), streaming replay (Source), and
// slicing — all via the trailing index, without scanning the file.
type Reader struct {
	r    io.ReaderAt
	size int64
	f    *os.File // non-nil when opened via OpenFile

	name          string
	cores         int
	chunkAccesses int
	flags         byte
	streams       []stream.Stream

	chunks  []chunkMeta
	perCore [][]chunkMeta // index-ordered chunk list per core
	counts  []uint64      // per-core access totals
	total   uint64
}

// NewReader parses the header and index of a trace file held in r.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	tr := &Reader{r: r, size: size}
	if err := tr.readHeader(); err != nil {
		return nil, corrupt(err)
	}
	if err := tr.readIndex(); err != nil {
		return nil, corrupt(err)
	}
	return tr, nil
}

// OpenFile opens a trace file from disk. Close releases the handle.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	tr, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	tr.f = f
	return tr, nil
}

// Close releases the file handle when opened via OpenFile; a no-op
// otherwise.
func (tr *Reader) Close() error {
	if tr.f != nil {
		return tr.f.Close()
	}
	return nil
}

// Name returns the recorded workload name.
func (tr *Reader) Name() string { return tr.name }

// Cores returns the per-core sequence count.
func (tr *Reader) Cores() int { return tr.cores }

// Accesses returns the total access count across cores.
func (tr *Reader) Accesses() uint64 { return tr.total }

// PerCoreCounts returns each core's access count (a fresh slice).
func (tr *Reader) PerCoreCounts() []uint64 {
	out := make([]uint64, len(tr.counts))
	copy(out, tr.counts)
	return out
}

// ChunkAccesses returns the file's chunking granularity.
func (tr *Reader) ChunkAccesses() int { return tr.chunkAccesses }

// Chunks returns the chunk count.
func (tr *Reader) Chunks() int { return len(tr.chunks) }

// ChunkFileOffset returns the file offset where chunk i's encoded bytes
// (header + CRC-covered payload) begin. Tooling and the chaos harness
// use it to target corruption at specific chunks.
func (tr *Reader) ChunkFileOffset(i int) int64 { return tr.chunks[i].offset }

// Compressed reports whether chunk payloads are flate-compressed.
func (tr *Reader) Compressed() bool { return tr.flags&flagFlate != 0 }

// Streams returns the embedded stream table entries (a fresh slice of
// values; mutating them does not affect the Reader).
func (tr *Reader) Streams() []stream.Stream {
	out := make([]stream.Stream, len(tr.streams))
	copy(out, tr.streams)
	return out
}

// Table builds a fresh stream table from the embedded entries. Each
// call returns an independent table: the simulation mutates read-only
// bits, so tables must not be shared between runs.
func (tr *Reader) Table() (*stream.Table, error) {
	t := stream.NewTable()
	for i := range tr.streams {
		s := tr.streams[i]
		if err := t.Add(&s); err != nil {
			return nil, fmt.Errorf("trace: embedded stream table: %w", err)
		}
	}
	return t, nil
}

func (tr *Reader) readHeader() error {
	// Fixed prefix + length varint.
	pre := make([]byte, len(magic)+2+binary.MaxVarintLen64)
	if int64(len(pre)) > tr.size {
		pre = pre[:tr.size]
	}
	if _, err := tr.r.ReadAt(pre, 0); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if len(pre) < len(magic)+2 || string(pre[:len(magic)]) != magic {
		return fmt.Errorf("trace: not a trace file (bad magic)")
	}
	if v := pre[len(magic)]; v != Version {
		return fmt.Errorf("trace: unsupported format version %d (supported: %d)", v, Version)
	}
	tr.flags = pre[len(magic)+1]
	if tr.flags&^byte(flagFlate) != 0 {
		return fmt.Errorf("trace: unknown flags %#x", tr.flags)
	}
	plen, n := binary.Uvarint(pre[len(magic)+2:])
	if n <= 0 || plen > maxHeaderLen {
		return fmt.Errorf("trace: corrupt header length")
	}
	off := int64(len(magic) + 2 + n)
	if off+int64(plen)+4 > tr.size {
		return fmt.Errorf("trace: truncated header")
	}
	buf := make([]byte, plen+4)
	if _, err := tr.r.ReadAt(buf, off); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	payload, sum := buf[:plen], binary.LittleEndian.Uint32(buf[plen:])
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("trace: header CRC mismatch")
	}
	c := &cursor{b: payload}
	nameLen := c.uvarint("name length")
	tr.name = string(c.bytes(int(nameLen), "name"))
	tr.cores = int(c.uvarint("core count"))
	tr.chunkAccesses = int(c.uvarint("chunk size"))
	nStreams := c.uvarint("stream count")
	if c.err == nil && nStreams >= stream.MaxStreams {
		return fmt.Errorf("trace: header declares %d streams (limit %d)", nStreams, stream.MaxStreams-1)
	}
	for i := uint64(0); i < nStreams && c.err == nil; i++ {
		tr.streams = append(tr.streams, c.decodeStream())
	}
	if err := c.done("header"); err != nil {
		return err
	}
	if tr.cores <= 0 || tr.chunkAccesses <= 0 {
		return fmt.Errorf("trace: corrupt header: %d cores, chunk size %d", tr.cores, tr.chunkAccesses)
	}
	return nil
}

func (tr *Reader) readIndex() error {
	if tr.size < int64(footerLen) {
		return fmt.Errorf("trace: file too short for footer")
	}
	ft := make([]byte, footerLen)
	if _, err := tr.r.ReadAt(ft, tr.size-int64(footerLen)); err != nil {
		return fmt.Errorf("trace: reading footer: %w", err)
	}
	if string(ft[8:]) != footerMagic {
		return fmt.Errorf("trace: missing footer (unsealed or truncated file)")
	}
	idxOff := int64(binary.LittleEndian.Uint64(ft[:8]))
	if idxOff < 0 || idxOff >= tr.size-int64(footerLen) {
		return fmt.Errorf("trace: footer points outside the file")
	}
	blk := make([]byte, tr.size-int64(footerLen)-idxOff)
	if _, err := tr.r.ReadAt(blk, idxOff); err != nil {
		return fmt.Errorf("trace: reading index: %w", err)
	}
	c := &cursor{b: blk}
	if c.byte("index marker") != indexMarker {
		return fmt.Errorf("trace: footer does not point at an index block")
	}
	plen := c.uvarint("index length")
	payload := c.bytes(int(plen), "index payload")
	sum := c.u32le("index CRC")
	if err := c.done("index block"); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("trace: index CRC mismatch")
	}
	ic := &cursor{b: payload}
	nChunks := ic.uvarint("chunk count")
	if ic.err == nil && int64(nChunks) > tr.size { // each chunk takes >1 byte
		return fmt.Errorf("trace: index declares %d chunks in a %d-byte file", nChunks, tr.size)
	}
	tr.perCore = make([][]chunkMeta, tr.cores)
	tr.counts = make([]uint64, tr.cores)
	for i := uint64(0); i < nChunks && ic.err == nil; i++ {
		m := chunkMeta{
			core:     int(ic.uvarint("chunk core")),
			startIdx: ic.uvarint("chunk start"),
			count:    ic.uvarint("chunk count"),
			offset:   int64(ic.uvarint("chunk offset")),
		}
		if ic.err != nil {
			break
		}
		if m.core < 0 || m.core >= tr.cores {
			return fmt.Errorf("trace: index chunk %d names core %d of %d", i, m.core, tr.cores)
		}
		if m.count == 0 || m.offset < 0 || m.offset >= tr.size {
			return fmt.Errorf("trace: index chunk %d is malformed", i)
		}
		if m.startIdx != tr.counts[m.core] {
			return fmt.Errorf("trace: core %d chunks not contiguous (start %d, expected %d)",
				m.core, m.startIdx, tr.counts[m.core])
		}
		tr.counts[m.core] += m.count
		tr.chunks = append(tr.chunks, m)
		tr.perCore[m.core] = append(tr.perCore[m.core], m)
	}
	total := ic.uvarint("total accesses")
	if err := ic.done("index"); err != nil {
		return err
	}
	var sumCounts uint64
	for _, n := range tr.counts {
		sumCounts += n
	}
	if total != sumCounts {
		return fmt.Errorf("trace: index total %d disagrees with per-core sum %d", total, sumCounts)
	}
	tr.total = total
	return nil
}

// readChunk decodes one chunk, verifying its header against the index
// entry and its payload against the stored CRC. Accesses are appended
// to dst (pass a reused buffer to avoid allocation). Decode failures
// wrap ErrCorrupt.
func (tr *Reader) readChunk(m chunkMeta, dst []workloads.Access) ([]workloads.Access, error) {
	out, err := tr.readChunkRaw(m, dst)
	if err != nil {
		return out, corrupt(err)
	}
	return out, nil
}

func (tr *Reader) readChunkRaw(m chunkMeta, dst []workloads.Access) ([]workloads.Access, error) {
	hb := make([]byte, maxChunkHeader)
	if m.offset+int64(len(hb)) > tr.size {
		hb = hb[:tr.size-m.offset]
	}
	if _, err := tr.r.ReadAt(hb, m.offset); err != nil {
		return nil, fmt.Errorf("trace: reading chunk at %d: %w", m.offset, err)
	}
	c := &cursor{b: hb}
	if c.byte("chunk marker") != chunkMarker {
		return nil, fmt.Errorf("trace: no chunk at offset %d", m.offset)
	}
	core := c.uvarint("chunk core")
	start := c.uvarint("chunk start")
	count := c.uvarint("chunk count")
	rawLen := c.uvarint("chunk raw length")
	encLen := c.uvarint("chunk encoded length")
	sum := c.u32le("chunk CRC")
	if c.err != nil {
		return nil, c.err
	}
	if int(core) != m.core || start != m.startIdx || count != m.count {
		return nil, fmt.Errorf("trace: chunk at %d disagrees with index (core %d@%d x%d vs core %d@%d x%d)",
			m.offset, core, start, count, m.core, m.startIdx, m.count)
	}
	// Sanity-bound the lengths before allocating.
	if rawLen > uint64(count)*(binary.MaxVarintLen64+2) || int64(encLen) > tr.size {
		return nil, fmt.Errorf("trace: chunk at %d has implausible payload lengths", m.offset)
	}
	payOff := m.offset + int64(c.off)
	if payOff+int64(encLen) > tr.size {
		return nil, fmt.Errorf("trace: chunk at %d truncated", m.offset)
	}
	enc := make([]byte, encLen)
	if _, err := tr.r.ReadAt(enc, payOff); err != nil {
		return nil, fmt.Errorf("trace: reading chunk payload at %d: %w", payOff, err)
	}
	raw := enc
	if tr.Compressed() {
		raw = make([]byte, 0, rawLen)
		fr := flate.NewReader(bytes.NewReader(enc))
		var err error
		raw, err = appendAll(raw, fr, rawLen)
		if err != nil {
			return nil, fmt.Errorf("trace: decompressing chunk at %d: %w", m.offset, err)
		}
	}
	if uint64(len(raw)) != rawLen {
		return nil, fmt.Errorf("trace: chunk at %d decompressed to %d bytes, header says %d",
			m.offset, len(raw), rawLen)
	}
	if crc32.ChecksumIEEE(raw) != sum {
		return nil, fmt.Errorf("trace: chunk at %d failed CRC check", m.offset)
	}
	return decodeChunkPayload(raw, int(count), dst)
}

// appendAll reads r to EOF into dst, refusing to grow past limit+1
// (corrupt compressed data must not balloon memory).
func appendAll(dst []byte, r io.Reader, limit uint64) ([]byte, error) {
	lr := io.LimitReader(r, int64(limit)+1)
	for {
		if uint64(len(dst)) > limit {
			return dst, fmt.Errorf("payload exceeds declared length %d", limit)
		}
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := lr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// Validate decodes and CRC-checks every chunk, confirming the file is
// fully readable end to end.
func (tr *Reader) Validate() error {
	var buf []workloads.Access
	for _, m := range tr.chunks {
		var err error
		buf, err = tr.readChunk(m, buf[:0])
		if err != nil {
			return err
		}
	}
	return nil
}

// Materialize decodes the whole file into an in-memory trace (fresh
// stream table included). For long traces prefer Source, which streams
// with bounded memory.
func (tr *Reader) Materialize() (*workloads.Trace, error) {
	table, err := tr.Table()
	if err != nil {
		return nil, err
	}
	out := &workloads.Trace{Name: tr.name, Table: table, PerCore: make([][]workloads.Access, tr.cores)}
	for c := range out.PerCore {
		out.PerCore[c] = make([]workloads.Access, 0, tr.counts[c])
		for _, m := range tr.perCore[c] {
			out.PerCore[c], err = tr.readChunk(m, out.PerCore[c])
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// DigestFile returns the SHA-256 hex digest of the file at path — the
// content address the serving layer keys trace-backed jobs by.
func DigestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
