package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"ndpext/internal/workloads"
)

// benchTrace is a realistic mix: mostly small strides with occasional
// jumps, ~1M accesses over 8 cores.
func benchTrace(b *testing.B) *workloads.Trace {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	tr := &workloads.Trace{Name: "bench", PerCore: make([][]workloads.Access, 8)}
	for c := range tr.PerCore {
		accs := make([]workloads.Access, 128*1024)
		addr := uint64(c) << 30
		for i := range accs {
			if rng.Intn(64) == 0 {
				addr = uint64(rng.Intn(1<<34)) &^ 63
			} else {
				addr += 64
			}
			accs[i] = workloads.Access{Addr: addr, Write: rng.Intn(4) == 0, Gap: uint8(rng.Intn(32))}
		}
		tr.PerCore[c] = accs
	}
	return tr
}

// BenchmarkEncode measures raw (uncompressed) encode throughput in
// accesses/s — the recording overhead ceiling for -record runs.
func BenchmarkEncode(b *testing.B) {
	tr := benchTrace(b)
	total := tr.TotalAccesses()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteTrace(&buf, tr, 0, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportAccessRate(b, total)
	b.ReportMetric(float64(buf.Len())/float64(total), "bytes/access")
}

// BenchmarkEncodeFlate is the compressed variant: the size/speed
// tradeoff documented in DESIGN.md.
func BenchmarkEncodeFlate(b *testing.B) {
	tr := benchTrace(b)
	total := tr.TotalAccesses()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteTrace(&buf, tr, 0, true); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportAccessRate(b, total)
	b.ReportMetric(float64(buf.Len())/float64(total), "bytes/access")
}

// BenchmarkDecode measures streaming decode throughput in accesses/s —
// the replay feed rate; the acceptance floor is 10M accesses/s.
func BenchmarkDecode(b *testing.B) {
	tr := benchTrace(b)
	total := tr.TotalAccesses()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 0, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			b.Fatal(err)
		}
		src, err := r.Source()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for c := 0; c < src.Cores(); c++ {
			for {
				if _, ok := src.Next(c); !ok {
					break
				}
				n++
			}
		}
		if n != total {
			b.Fatalf("decoded %d of %d accesses", n, total)
		}
	}
	b.StopTimer()
	reportAccessRate(b, total)
}

// BenchmarkDecodeFlate is the compressed decode path.
func BenchmarkDecodeFlate(b *testing.B) {
	tr := benchTrace(b)
	total := tr.TotalAccesses()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr, 0, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			b.Fatal(err)
		}
		src, err := r.Source()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for c := 0; c < src.Cores(); c++ {
			for {
				if _, ok := src.Next(c); !ok {
					break
				}
				n++
			}
		}
		if n != total {
			b.Fatalf("decoded %d of %d accesses", n, total)
		}
	}
	b.StopTimer()
	reportAccessRate(b, total)
}

func reportAccessRate(b *testing.B, perOp int) {
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(perOp)*float64(b.N)/secs/1e6, "Maccesses/s")
	}
}
