package trace

import (
	"ndpext/internal/stream"
	"ndpext/internal/workloads"
)

// Source streams the trace's accesses into the simulator with bounded
// memory: one decoded chunk is buffered per core (≈ ChunkAccesses ×
// cores accesses total), regardless of file size. It implements
// workloads.Source; a Source is single-use — open a fresh one per run.
type Source struct {
	r     *Reader
	table *stream.Table
	cur   []coreCursor
	err   error
}

// coreCursor tracks one core's replay position.
type coreCursor struct {
	chunks []chunkMeta
	next   int // next chunk to decode
	buf    []workloads.Access
	pos    int
}

// Source opens a streaming replay over the whole file.
func (tr *Reader) Source() (*Source, error) {
	table, err := tr.Table()
	if err != nil {
		return nil, err
	}
	s := &Source{r: tr, table: table, cur: make([]coreCursor, tr.cores)}
	for c := range s.cur {
		s.cur[c].chunks = tr.perCore[c]
	}
	return s, nil
}

// Name implements workloads.Source.
func (s *Source) Name() string { return s.r.name }

// Table implements workloads.Source. The table is freshly built per
// Source, so concurrent runs over one Reader do not share mutable
// stream state.
func (s *Source) Table() *stream.Table { return s.table }

// Cores implements workloads.Source.
func (s *Source) Cores() int { return s.r.cores }

// Next implements workloads.Source: the core's next access, decoded
// lazily chunk by chunk. After a decode error it reports exhaustion;
// Err distinguishes that from a clean end.
func (s *Source) Next(core int) (workloads.Access, bool) {
	cc := &s.cur[core]
	if cc.pos >= len(cc.buf) {
		if s.err != nil || cc.next >= len(cc.chunks) {
			return workloads.Access{}, false
		}
		buf, err := s.r.readChunk(cc.chunks[cc.next], cc.buf[:0])
		if err != nil {
			s.err = err
			return workloads.Access{}, false
		}
		cc.buf, cc.pos = buf, 0
		cc.next++
	}
	a := cc.buf[cc.pos]
	cc.pos++
	return a, true
}

// Err implements workloads.Source.
func (s *Source) Err() error { return s.err }
