package telemetry

// Shard fan-in: deterministic probe and registry merging for parallel
// simulation modes that split one logical run across several simulator
// instances (internal/parallel's sharded mode).
//
// Ordering contract: each shard's events are delivered in that shard's
// simulation order (the same order a serial run of that shard would
// produce), and Drain replays the shards back-to-back in ascending shard
// index — a documented per-shard order, not a global timestamp
// interleave. The merged sequence is therefore a pure function of the
// inputs: two runs of the same sharded simulation drain byte-identical
// event streams regardless of goroutine scheduling.

// ShardFanIn collects per-access events from N concurrent shards into
// per-shard buffers and replays them deterministically after the run.
// Each shard writes only to its own buffer, so the probes are race-free
// without locks; Drain must not be called until every shard's simulation
// has finished.
type ShardFanIn struct {
	buffers [][]Event
}

// NewShardFanIn returns a fan-in for n shards.
func NewShardFanIn(n int) *ShardFanIn {
	return &ShardFanIn{buffers: make([][]Event, n)}
}

// shardProbe buffers one shard's events by value (the simulator reuses
// the *Event backing storage between calls).
type shardProbe struct {
	f     *ShardFanIn
	shard int
}

func (p *shardProbe) Record(ev *Event) {
	p.f.buffers[p.shard] = append(p.f.buffers[p.shard], *ev)
}

// Probe returns shard i's buffering probe. Each returned probe must only
// be invoked from its own shard's simulation goroutine.
func (f *ShardFanIn) Probe(shard int) Probe { return &shardProbe{f: f, shard: shard} }

// Len returns the total buffered event count.
func (f *ShardFanIn) Len() int {
	n := 0
	for _, b := range f.buffers {
		n += len(b)
	}
	return n
}

// Drain replays every buffered event into sink in the deterministic
// merged order (shard 0's events in shard order, then shard 1's, ...),
// renumbering Seq to be contiguous across the merged stream, and
// releases the buffers.
func (f *ShardFanIn) Drain(sink Probe) {
	if sink == nil {
		f.buffers = nil
		return
	}
	var seq uint64
	for _, b := range f.buffers {
		for i := range b {
			b[i].Seq = seq
			seq++
			sink.Record(&b[i])
		}
	}
	f.buffers = nil
}

// MergeRegistries sums the parts into one registry: metrics are combined
// by name (uints, floats, and times each add), and names appear in
// first-seen registration order across the parts, so the merged
// registry — like its inputs — is deterministic. Nil parts are skipped.
func MergeRegistries(parts ...*Registry) *Registry {
	out := NewRegistry()
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.Each(func(name string, v Value) {
			switch v.Kind {
			case KindUint:
				out.PutUint(name, out.Uint(name)+v.U)
			case KindFloat:
				out.PutFloat(name, out.Float(name)+v.F)
			case KindTime:
				out.PutTime(name, out.Time(name)+v.T)
			}
		})
	}
	return out
}
