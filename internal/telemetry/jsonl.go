package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// jsonEvent is the wire form of an Event: one JSON object per line with
// latencies in nanoseconds and the served level by name.
type jsonEvent struct {
	Seq     uint64             `json:"seq"`
	Core    int                `json:"core"`
	SID     int64              `json:"sid"`
	Addr    uint64             `json:"addr"`
	Write   bool               `json:"write"`
	Gap     uint8              `json:"gap"`
	Served  string             `json:"served"`
	StartNS float64            `json:"start_ns"`
	EndNS   float64            `json:"end_ns"`
	LatNS   map[string]float64 `json:"lat_ns"`
}

// JSONLProbe writes each recorded event as one JSON line. It buffers
// internally; call Flush before reading the output. The first write error
// is sticky and surfaced by Flush. Record, Note, and Flush are safe to
// call from multiple goroutines; each event stays one intact line.
type JSONLProbe struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONL returns a probe emitting JSONL to w.
func NewJSONL(w io.Writer) *JSONLProbe {
	return &JSONLProbe{w: bufio.NewWriter(w)}
}

// Record implements Probe.
func (p *JSONLProbe) Record(ev *Event) {
	je := jsonEvent{
		Seq:     ev.Seq,
		Core:    ev.Core,
		SID:     ev.SID,
		Addr:    ev.Addr,
		Write:   ev.Write,
		Gap:     ev.Gap,
		Served:  ev.Served.String(),
		StartNS: ev.Start.NS(),
		EndNS:   ev.End.NS(),
		LatNS:   make(map[string]float64, NumLevels),
	}
	for l := Level(0); l < NumLevels; l++ {
		if ev.Levels[l] != 0 {
			je.LatNS[l.String()] = ev.Levels[l].NS()
		}
	}
	p.writeLine(je)
}

// Note writes v as one out-of-band JSON line, e.g. a
// {"truncated":true} marker when a watchdog cut the run short.
func (p *JSONLProbe) Note(v any) { p.writeLine(v) }

// writeLine marshals v (outside the lock) and appends it as one line.
func (p *JSONLProbe) writeLine(v any) {
	b, err := json.Marshal(v)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	if err != nil {
		p.err = err
		return
	}
	b = append(b, '\n')
	if _, err := p.w.Write(b); err != nil {
		p.err = err
	}
}

// Flush drains the buffer and returns the first error encountered.
func (p *JSONLProbe) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
