package telemetry

import "ndpext/internal/sim"

// Event is one sampled per-access trace record. Start/End bound the whole
// access (including core time); Levels attributes its latency to the
// memory-path buckets; Served names the level that supplied the data
// (LevelCore for an L1 hit, LevelCacheDRAM for a DRAM cache hit,
// LevelExtended for extended-memory service).
type Event struct {
	Seq    uint64 // global access sequence number within the run
	Core   int
	SID    int64 // stream ID, -1 when the access belongs to no stream
	Write  bool
	Served Level
	Start  sim.Time
	End    sim.Time
	Levels [NumLevels]sim.Time
}

// Probe receives sampled access events. Implementations must not retain
// the *Event past the call (the simulator reuses the backing storage).
// A probe is only invoked from the simulation goroutine.
type Probe interface {
	Record(ev *Event)
}

// sampledProbe forwards every nth event to the wrapped probe.
type sampledProbe struct {
	p     Probe
	every uint64
	n     uint64
}

// Sampled wraps p so only one in every `every` events is forwarded
// (the first event of each stride is kept). every <= 1 forwards all;
// a nil p yields nil so the hot path keeps its probe==nil fast path.
func Sampled(p Probe, every uint64) Probe {
	if p == nil {
		return nil
	}
	if every <= 1 {
		return p
	}
	return &sampledProbe{p: p, every: every}
}

func (s *sampledProbe) Record(ev *Event) {
	if s.n%s.every == 0 {
		s.p.Record(ev)
	}
	s.n++
}

// FuncProbe adapts a function to the Probe interface.
type FuncProbe func(ev *Event)

// Record implements Probe.
func (f FuncProbe) Record(ev *Event) { f(ev) }
