package telemetry

import "ndpext/internal/sim"

// Event is one sampled per-access trace record. Start/End bound the whole
// access (including core time); Levels attributes its latency to the
// memory-path buckets; Served names the level that supplied the data
// (LevelCore for an L1 hit, LevelCacheDRAM for a DRAM cache hit,
// LevelExtended for extended-memory service). Addr and Gap echo the
// input access verbatim, so a full-rate probe sees everything needed to
// re-drive the simulation (the trace recorder's contract).
type Event struct {
	Seq    uint64 // global access sequence number within the run
	Core   int
	SID    int64 // stream ID, -1 when the access belongs to no stream
	Addr   uint64
	Write  bool
	Gap    uint8 // compute cycles preceding the access
	Served Level
	Start  sim.Time
	End    sim.Time
	Levels [NumLevels]sim.Time
}

// Probe receives sampled access events. Implementations must not retain
// the *Event past the call (the simulator reuses the backing storage).
// A probe is only invoked from the simulation goroutine.
type Probe interface {
	Record(ev *Event)
}

// sampledProbe forwards every nth event to the wrapped probe.
type sampledProbe struct {
	p     Probe
	every uint64
	n     uint64
}

// Sampled wraps p so only one in every `every` events is forwarded
// (the first event of each stride is kept). every <= 1 forwards all;
// a nil p yields nil so the hot path keeps its probe==nil fast path.
func Sampled(p Probe, every uint64) Probe {
	if p == nil {
		return nil
	}
	if every <= 1 {
		return p
	}
	return &sampledProbe{p: p, every: every}
}

func (s *sampledProbe) Record(ev *Event) {
	if s.n%s.every == 0 {
		s.p.Record(ev)
	}
	s.n++
}

// FuncProbe adapts a function to the Probe interface.
type FuncProbe func(ev *Event)

// Record implements Probe.
func (f FuncProbe) Record(ev *Event) { f(ev) }

// multiProbe fans one event out to several sinks in order.
type multiProbe []Probe

func (m multiProbe) Record(ev *Event) {
	for _, p := range m {
		p.Record(ev)
	}
}

// Multi combines probes into one fan-out probe so independently
// configured sinks (a sampled JSONL emitter, a full-rate trace
// recorder, ...) compose on a single probe slot instead of silently
// replacing each other. Nil probes are dropped; zero live probes yield
// nil (preserving the hot path's probe==nil fast path) and a single
// live probe is returned unwrapped. Existing multis are flattened so
// repeated attachment never nests dispatch.
func Multi(ps ...Probe) Probe {
	var live multiProbe
	for _, p := range ps {
		switch v := p.(type) {
		case nil:
		case multiProbe:
			live = append(live, v...)
		default:
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
