package telemetry

import "sync"

// Snapshot is a point-in-time copy of a run's hot-path counters with
// latencies flattened to nanoseconds, suitable for crossing goroutine and
// process boundaries (progress streaming, JSON encoding). It is a plain
// value: copy it freely.
type Snapshot struct {
	Accesses    uint64  `json:"accesses"`
	L1Hits      uint64  `json:"l1_hits"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	Exceptions  uint64  `json:"exceptions,omitempty"`
	Reconfigs   int     `json:"reconfigs,omitempty"`
	LevelNS     levelNS `json:"lat_ns"`
}

// levelNS carries the per-level latency totals in nanoseconds, keyed by
// the Level names used everywhere else (figures, JSONL traces).
type levelNS struct {
	Core      float64 `json:"core"`
	Meta      float64 `json:"meta"`
	IntraNoC  float64 `json:"intra-noc"`
	InterNoC  float64 `json:"inter-noc"`
	CacheDRAM float64 `json:"dram"`
	Extended  float64 `json:"extended"`
}

// Snapshot copies the counters. It must be called from the goroutine
// that owns c (the simulation loop); hand the returned value — not the
// Counters — to other goroutines.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Accesses:    c.Accesses,
		L1Hits:      c.L1Hits,
		CacheHits:   c.CacheHits,
		CacheMisses: c.CacheMisses,
		Exceptions:  c.Exceptions,
		Reconfigs:   c.Reconfigs,
		LevelNS: levelNS{
			Core:      c.Levels[LevelCore].NS(),
			Meta:      c.Levels[LevelMeta].NS(),
			IntraNoC:  c.Levels[LevelIntraNoC].NS(),
			InterNoC:  c.Levels[LevelInterNoC].NS(),
			CacheDRAM: c.Levels[LevelCacheDRAM].NS(),
			Extended:  c.Levels[LevelExtended].NS(),
		},
	}
}

// Live is a goroutine-safe holder for the latest Snapshot of a running
// simulation: the simulation goroutine publishes at epoch boundaries,
// and any number of observers (status endpoints, progress streams) load
// concurrently. The zero value is ready to use.
type Live struct {
	mu   sync.RWMutex
	snap Snapshot
	seq  uint64 // publish count; 0 means nothing published yet
}

// Publish stores s as the latest snapshot.
func (l *Live) Publish(s Snapshot) {
	l.mu.Lock()
	l.snap = s
	l.seq++
	l.mu.Unlock()
}

// Load returns the latest snapshot and whether one was ever published.
func (l *Live) Load() (Snapshot, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.snap, l.seq > 0
}

// Seq returns the number of snapshots published so far.
func (l *Live) Seq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.seq
}
