package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"ndpext/internal/sim"
)

// TestLiveSnapshotWhileCounting hammers a Live holder with one writer
// publishing snapshots of an evolving Counters while many readers load
// concurrently — the serving layer's progress path. Run under -race.
func TestLiveSnapshotWhileCounting(t *testing.T) {
	var live Live
	const (
		readers = 8
		rounds  = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, ok := live.Load()
				if !ok {
					continue
				}
				// Accesses only grows; a reader must never observe it
				// going backwards (each Load is a consistent copy).
				if s.Accesses < last {
					t.Errorf("snapshot went backwards: %d after %d", s.Accesses, last)
					return
				}
				last = s.Accesses
			}
		}()
	}

	// The "simulation goroutine": counts, snapshots, publishes.
	var c Counters
	for i := 0; i < rounds; i++ {
		c.Accesses++
		c.L1Hits++
		c.Add(LevelCacheDRAM, sim.FromNS(10))
		live.Publish(c.Snapshot())
	}
	close(stop)
	wg.Wait()

	s, ok := live.Load()
	if !ok || s.Accesses != rounds {
		t.Fatalf("final snapshot = %+v, ok=%v; want accesses=%d", s, ok, rounds)
	}
	if live.Seq() != rounds {
		t.Fatalf("Seq() = %d, want %d", live.Seq(), rounds)
	}
	if s.LevelNS.CacheDRAM != float64(rounds)*10 {
		t.Fatalf("dram latency = %g ns, want %g", s.LevelNS.CacheDRAM, float64(rounds)*10)
	}
}

// TestJSONLConcurrentWriters writes events and notes from many goroutines
// into one JSONLProbe and checks every output line is intact JSON and
// nothing was lost or interleaved. Run under -race.
func TestJSONLConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	p := NewJSONL(&buf)
	const (
		writers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if i%10 == 9 {
					p.Note(map[string]int{"writer": w, "note": i})
					continue
				}
				ev := Event{Seq: uint64(i), Core: w, SID: int64(i), Served: LevelCacheDRAM}
				ev.Levels[LevelCacheDRAM] = sim.FromNS(float64(i))
				p.Record(&ev)
			}
		}(w)
	}
	wg.Wait()
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, line)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := writers * perW; lines != want {
		t.Fatalf("got %d JSONL lines, want %d", lines, want)
	}
}

// TestRegistryMarshalJSON checks the canonical flat-object encoding.
func TestRegistryMarshalJSON(t *testing.T) {
	r := NewRegistry()
	r.PutUint("b.count", 3)
	r.PutFloat("a.energy_pj", 1.5)
	r.PutTime("c.busy", sim.FromNS(250))
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"a.energy_pj":1.5,"b.count":3,"c.busy":250}`
	if string(b) != want {
		t.Fatalf("MarshalJSON = %s, want %s", b, want)
	}
}
