package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ndpext/internal/sim"
)

func TestLevelStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for l := Level(0); l < NumLevels; l++ {
		s := l.String()
		if s == "" || seen[s] {
			t.Fatalf("level %d string %q empty or duplicated", l, s)
		}
		seen[s] = true
	}
}

func TestCountersAdd(t *testing.T) {
	var c Counters
	c.Add(LevelCore, 10)
	c.Add(LevelCore, 5)
	c.Add(LevelExtended, 7)
	if c.Levels[LevelCore] != 15 || c.Levels[LevelExtended] != 7 {
		t.Fatalf("levels = %v", c.Levels)
	}
}

func TestSampledNilAndPassthrough(t *testing.T) {
	if Sampled(nil, 100) != nil {
		t.Fatal("Sampled(nil) must stay nil so the hot path keeps its fast path")
	}
	var got int
	p := FuncProbe(func(*Event) { got++ })
	if s := Sampled(p, 0); s == nil {
		t.Fatal("every=0 dropped the probe")
	} else {
		s.Record(&Event{})
	}
	Sampled(p, 1).Record(&Event{})
	if got != 2 {
		t.Fatalf("passthrough forwarded %d of 2 events", got)
	}
}

func TestSampledStride(t *testing.T) {
	var seqs []uint64
	p := Sampled(FuncProbe(func(ev *Event) { seqs = append(seqs, ev.Seq) }), 3)
	for i := uint64(0); i < 10; i++ {
		p.Record(&Event{Seq: i})
	}
	want := []uint64{0, 3, 6, 9} // first of each stride
	if len(seqs) != len(want) {
		t.Fatalf("forwarded %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("forwarded %v, want %v", seqs, want)
		}
	}
}

func TestRegistryOrderAndSums(t *testing.T) {
	r := NewRegistry()
	r.PutFloat("dram.unit001.energy_pj", 2)
	r.PutFloat("dram.unit000.energy_pj", 1) // registered later, sorts earlier
	r.PutUint("dram.unit001.reads", 10)
	r.PutUint("dram.unit000.reads", 20)
	r.PutFloat("noc.energy_pj", 100)
	r.PutTime("noc.busy", 5*sim.Microsecond)

	names := r.Names()
	if names[0] != "dram.unit001.energy_pj" || names[1] != "dram.unit000.energy_pj" {
		t.Fatalf("registration order not preserved: %v", names)
	}
	if got := r.SumFloat("dram.unit"); got != 3 {
		t.Fatalf("SumFloat = %v, want 3 (uints must not leak in)", got)
	}
	if got := r.SumUint("dram.unit"); got != 30 {
		t.Fatalf("SumUint = %v, want 30", got)
	}
	if r.Time("noc.busy") != 5*sim.Microsecond {
		t.Fatal("Time readback wrong")
	}
	if !r.Has("noc.energy_pj") || r.Has("missing") {
		t.Fatal("Has wrong")
	}
	// Overwriting keeps the original position and does not duplicate.
	r.PutFloat("dram.unit001.energy_pj", 7)
	if len(r.Names()) != len(names) || r.Float("dram.unit001.energy_pj") != 7 {
		t.Fatal("overwrite duplicated or lost the value")
	}
	if !strings.Contains(r.String(), "noc.energy_pj 100") {
		t.Fatalf("String missing metric:\n%s", r.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	p := NewJSONL(&buf)
	ev := Event{Seq: 3, Core: 7, SID: 12, Write: true, Served: LevelExtended,
		Start: 1000 * sim.Picosecond, End: 5000 * sim.Picosecond}
	ev.Levels[LevelCore] = 1000 * sim.Picosecond
	ev.Levels[LevelExtended] = 3000 * sim.Picosecond
	p.Record(&ev)
	p.Record(&Event{Seq: 4, SID: -1, Served: LevelCore})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec struct {
		Seq    uint64             `json:"seq"`
		Core   int                `json:"core"`
		SID    int64              `json:"sid"`
		Write  bool               `json:"write"`
		Served string             `json:"served"`
		LatNS  map[string]float64 `json:"lat_ns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if rec.Seq != 3 || rec.Core != 7 || rec.SID != 12 || !rec.Write || rec.Served != LevelExtended.String() {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.LatNS) != 2 || rec.LatNS[LevelCore.String()] != 1 || rec.LatNS[LevelExtended.String()] != 3 {
		t.Fatalf("lat_ns = %v (zero levels must be omitted)", rec.LatNS)
	}
}
