// Package telemetry is the accounting bus of the simulator: every
// component on the memory path (the system's pipeline stages, the NoC,
// the DRAM devices, the CXL extended memory, and the cache controllers)
// reports into it, and the run-level summaries (`system.Result`,
// `stats.Breakdown`) are views computed from it after the event loop.
//
// The package has two halves:
//
//   - Hot-path accumulation: Counters is a fixed-layout, allocation-free
//     struct of per-level latency accumulators and event tallies that the
//     pipeline stages bump inline. An optional Probe receives sampled
//     per-access Event records (core, stream, level served, per-level
//     latency) for tracing.
//
//   - End-of-run export: Registry is an ordered set of named scalar
//     metrics that devices publish their counters into, so reports and
//     derived statistics (energy, hit rates) read one uniform place.
package telemetry

import "ndpext/internal/sim"

// Level identifies one latency-attribution bucket of the memory path,
// mirroring the paper's Fig. 2(a) decomposition.
type Level int

const (
	// LevelCore is compute gaps plus L1 access time.
	LevelCore Level = iota
	// LevelMeta is metadata time: SLB lookups (NDPExt) or metadata-cache
	// lookups and DRAM metadata walks (baselines).
	LevelMeta
	// LevelIntraNoC is time on the intra-stack unit mesh.
	LevelIntraNoC
	// LevelInterNoC is time on inter-stack links, including queueing.
	LevelInterNoC
	// LevelCacheDRAM is DRAM cache access time at the home unit.
	LevelCacheDRAM
	// LevelExtended is CXL link plus extended-memory time.
	LevelExtended

	// NumLevels is the bucket count; arrays indexed by Level use it.
	NumLevels
)

var levelNames = [NumLevels]string{
	"core", "meta", "intra-noc", "inter-noc", "dram", "extended",
}

// String returns the level's name as used in figures and trace records.
func (l Level) String() string {
	if l < 0 || l >= NumLevels {
		return "unknown"
	}
	return levelNames[l]
}

// Counters is the allocation-free hot-path accumulator for one run.
// Pipeline stages add latency into Levels and bump the tallies inline;
// nothing here allocates or locks (one simulation is single-threaded).
type Counters struct {
	// Levels holds cumulative latency per attribution bucket.
	Levels [NumLevels]sim.Time

	Accesses    uint64 // memory accesses entering the pipeline
	L1Hits      uint64
	CacheHits   uint64 // DRAM cache hits (running tally; controllers are authoritative)
	CacheMisses uint64
	Exceptions  uint64 // write exceptions raised by the stream cache
	Observes    uint64 // sampler updates (for SRAM energy)

	// Host-runtime (epoch boundary) tallies.
	Reconfigs       int
	ReconfigKept    int
	ReconfigDropped int
	ReplicatedRows  uint64 // last epoch's replicated rows
	RowsAllocated   uint64 // last epoch's total allocation
	SamplerCovered  int    // streams covered by samplers, last epoch

	// Degraded-mode (fault injection) tallies.
	DegradedEpochs       int // epochs that began with a fault active
	FaultRemappedStreams int // streams remapped off failed vaults
}

// Add accumulates latency d into level l.
func (c *Counters) Add(l Level, d sim.Time) { c.Levels[l] += d }
