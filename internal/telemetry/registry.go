package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ndpext/internal/sim"
)

// Kind discriminates the scalar type of a registry value.
type Kind int

const (
	KindUint Kind = iota
	KindFloat
	KindTime
)

// Value is one exported scalar metric.
type Value struct {
	Kind Kind
	U    uint64
	F    float64
	T    sim.Time
}

// Registry is an ordered set of named scalar metrics. Components publish
// their end-of-run counters into it (typically under a dotted prefix such
// as "noc." or "dram.unit003."), and consumers read them back by name.
// Registration order is preserved so derived floating-point sums are
// reproducible.
type Registry struct {
	names []string
	vals  map[string]Value
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[string]Value)}
}

func (r *Registry) put(name string, v Value) {
	if _, ok := r.vals[name]; !ok {
		r.names = append(r.names, name)
	}
	r.vals[name] = v
}

// PutUint publishes an integer counter.
func (r *Registry) PutUint(name string, v uint64) { r.put(name, Value{Kind: KindUint, U: v}) }

// PutFloat publishes a floating-point accumulator (e.g. energy in pJ).
func (r *Registry) PutFloat(name string, v float64) { r.put(name, Value{Kind: KindFloat, F: v}) }

// PutTime publishes a simulated-time accumulator.
func (r *Registry) PutTime(name string, v sim.Time) { r.put(name, Value{Kind: KindTime, T: v}) }

// Uint reads an integer counter (0 when absent).
func (r *Registry) Uint(name string) uint64 { return r.vals[name].U }

// Float reads a floating-point accumulator (0 when absent).
func (r *Registry) Float(name string) float64 { return r.vals[name].F }

// Time reads a simulated-time accumulator (0 when absent).
func (r *Registry) Time(name string) sim.Time { return r.vals[name].T }

// Has reports whether name was published.
func (r *Registry) Has(name string) bool { _, ok := r.vals[name]; return ok }

// Names returns the metric names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// SumFloat sums, in registration order, every float metric whose name
// matches the prefix (used e.g. to total per-device energies).
func (r *Registry) SumFloat(prefix string) float64 {
	var s float64
	for _, n := range r.names {
		if strings.HasPrefix(n, prefix) && r.vals[n].Kind == KindFloat {
			s += r.vals[n].F
		}
	}
	return s
}

// SumUint sums every integer metric whose name matches the prefix.
func (r *Registry) SumUint(prefix string) uint64 {
	var s uint64
	for _, n := range r.names {
		if strings.HasPrefix(n, prefix) && r.vals[n].Kind == KindUint {
			s += r.vals[n].U
		}
	}
	return s
}

// Each visits every metric in registration order.
func (r *Registry) Each(f func(name string, v Value)) {
	for _, n := range r.names {
		f(n, r.vals[n])
	}
}

// MarshalJSON renders the registry as one flat JSON object with keys in
// sorted order (the canonical machine-readable form shared by
// `ndpsim -json` and the serving layer). Integer counters marshal as
// integers; floats and simulated times marshal as numbers, times in
// nanoseconds.
func (r *Registry) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, len(r.names))
	for _, n := range r.names {
		v := r.vals[n]
		switch v.Kind {
		case KindUint:
			m[n] = v.U
		case KindFloat:
			m[n] = v.F
		case KindTime:
			m[n] = v.T.NS()
		}
	}
	return json.Marshal(m) // map keys marshal in sorted order
}

// String renders the registry sorted by name, one metric per line
// (diagnostic output; the canonical order for math is registration order).
func (r *Registry) String() string {
	names := r.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		v := r.vals[n]
		switch v.Kind {
		case KindUint:
			fmt.Fprintf(&b, "%s %d\n", n, v.U)
		case KindFloat:
			fmt.Fprintf(&b, "%s %g\n", n, v.F)
		case KindTime:
			fmt.Fprintf(&b, "%s %v\n", n, v.T)
		}
	}
	return b.String()
}
