// Package nuca implements the baseline NUCA designs the paper compares
// against (§VI "Baseline designs"): a conventional cacheline-granularity
// distributed DRAM cache managed by Jigsaw, Whirlpool, Nexus, or static
// interleaving, adapted to the NDP-with-extended-memory architecture.
//
// Unlike NDPExt's stream cache, these designs track individual 64 B
// cachelines, so their metadata (location + tag) does not fit on-chip:
// each access first performs a metadata lookup, served by a per-unit
// 128 kB metadata cache (idealized dual-granularity, Bi-Modal style:
// metadata per 512 B block, migration at 64 B) and falling back to a DRAM
// access at the line's home unit on a metadata-cache miss.
package nuca

import (
	"fmt"
	"sort"

	"ndpext/internal/cache"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// Kind selects the baseline design.
type Kind int

const (
	// StaticInterleave spreads cachelines across all units by address
	// hash (the S-NUCA policy used in Fig. 2's motivation study).
	StaticInterleave Kind = iota
	// Jigsaw partitions capacity by miss curves with center-of-mass
	// placement; data shared by several cores falls into one global
	// interleaved partition. No replication.
	Jigsaw
	// Whirlpool is Jigsaw with static data-structure classification:
	// every stream gets its own partition, placed at its accessors'
	// center of mass. No replication.
	Whirlpool
	// Nexus is Whirlpool plus replication of read-only data with one
	// global replication degree shared by all streams.
	Nexus
)

// String returns the design name.
func (k Kind) String() string {
	switch k {
	case StaticInterleave:
		return "static-interleave"
	case Jigsaw:
		return "jigsaw"
	case Whirlpool:
		return "whirlpool"
	case Nexus:
		return "nexus"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params sizes the baseline cache structures.
type Params struct {
	LineBytes      int // cacheline size (64)
	MetaBlockBytes int // dual-granularity metadata block (512)
	MetaCacheBytes int // per-unit metadata cache capacity (128 kB in the paper)
	MetaEntryBytes int // metadata entry size: one entry covers one MetaBlock
	MetaCacheAssoc int
	RowBytes       int // DRAM row size
}

// DefaultParams returns the paper's baseline configuration: 64 B lines,
// an idealized dual-granularity (Bi-Modal style) metadata cache with one
// ~8 B entry per 512 B block, 128 kB of it per unit.
func DefaultParams() Params {
	return Params{
		LineBytes:      64,
		MetaBlockBytes: 512,
		MetaCacheBytes: 128 << 10,
		MetaEntryBytes: 8,
		MetaCacheAssoc: 8,
		RowBytes:       2048,
	}
}

// MetaEntries returns the metadata cache's entry count.
func (p Params) MetaEntries() int {
	n := p.MetaCacheBytes / p.MetaEntryBytes
	if n < p.MetaCacheAssoc {
		n = p.MetaCacheAssoc
	}
	return n
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.LineBytes <= 0 || p.MetaBlockBytes < p.LineBytes || p.RowBytes < p.LineBytes {
		return fmt.Errorf("nuca: invalid line/meta/row geometry %+v", p)
	}
	if p.MetaCacheBytes <= 0 || p.MetaCacheAssoc <= 0 || p.MetaEntryBytes <= 0 {
		return fmt.Errorf("nuca: invalid metadata cache geometry")
	}
	return nil
}

// miscSID keys the partition that holds non-stream addresses.
const miscSID = stream.ID(stream.MaxStreams) // outside the valid sid space

// Controller is the baseline cacheline cache: remapping state plus
// per-unit metadata caches and resident-line tracking.
type Controller struct {
	kind     Kind
	params   Params
	numUnits int
	unitRows uint32
	table    *stream.Table

	// Allocations, epoch counters, and per-stream stats are dense arrays
	// indexed by sid (with one extra slot for miscSID), so the per-access
	// Lookup pays plain loads instead of map probes.
	allocs   []streamcache.Allocation
	hasAlloc []bool
	meta     []*cache.Cache // per-unit metadata caches
	// resident[u] maps (sid, slot) to the cached line.
	resident []map[resKey]lineVal
	epochAcc [][]uint64 // [unit][sid]
	stats    Stats
	perSID   []streamcache.StreamStats
}

// sidSlots is the dense index space: every representable sid plus the
// misc partition key right above it.
const sidSlots = int(miscSID) + 1

type resKey struct {
	sid  stream.ID
	slot uint64
}

type lineVal struct {
	line  uint64 // line address
	dirty bool
}

// Stats aggregates baseline cache activity.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	MetaHits   uint64
	MetaMisses uint64
	Writebacks uint64
}

// NewController builds the baseline cache. unitRows is the DRAM cache
// capacity per unit in rows.
func NewController(kind Kind, p Params, numUnits int, unitRows uint32, tbl *stream.Table) *Controller {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numUnits <= 0 || unitRows == 0 {
		panic(fmt.Sprintf("nuca: %d units x %d rows", numUnits, unitRows))
	}
	c := &Controller{
		kind: kind, params: p, numUnits: numUnits, unitRows: unitRows, table: tbl,
		allocs:   make([]streamcache.Allocation, sidSlots),
		hasAlloc: make([]bool, sidSlots),
		perSID:   make([]streamcache.StreamStats, sidSlots),
	}
	for i := 0; i < numUnits; i++ {
		// The metadata cache is keyed by metadata-block index: one entry
		// per MetaBlockBytes of data.
		c.meta = append(c.meta, cache.New(p.MetaEntries(), 1, p.MetaCacheAssoc))
		c.resident = append(c.resident, make(map[resKey]lineVal))
		c.epochAcc = append(c.epochAcc, make([]uint64, sidSlots))
	}
	if kind == StaticInterleave {
		c.allocs[miscSID] = interleavedAllocation(numUnits, unitRows)
	} else {
		// Reserve a small interleaved partition for non-stream data.
		c.allocs[miscSID] = interleavedAllocation(numUnits, unitRows/32+1)
	}
	c.hasAlloc[miscSID] = true
	return c
}

// interleavedAllocation spreads rows evenly over all units, one group.
func interleavedAllocation(numUnits int, rows uint32) streamcache.Allocation {
	a := streamcache.NewAllocation(numUnits)
	for u := range a.Shares {
		a.Shares[u] = rows
	}
	return a
}

// Kind returns the controller's design.
func (c *Controller) Kind() Kind { return c.kind }

// Allocation returns the installed allocation for sid, if any.
func (c *Controller) Allocation(sid stream.ID) (streamcache.Allocation, bool) {
	if int(sid) >= len(c.allocs) || !c.hasAlloc[sid] {
		return streamcache.Allocation{}, false
	}
	return c.allocs[sid], true
}

// Lookup is the outcome of one baseline access.
type Lookup struct {
	SID     stream.ID
	Home    int   // unit serving the line
	HomeRow int64 // DRAM row of the line at the home unit

	MetaHit     bool  // requester's metadata cache hit
	MetaDRAMRow int64 // metadata row accessed at the home unit on a miss

	Hit            bool
	FetchBytes     int
	WritebackBytes int
}

// Lookup resolves the access (addr, write) from NDP unit `unit`.
func (c *Controller) Lookup(unit int, addr uint64, write bool) Lookup {
	c.stats.Lookups++
	var r Lookup
	line := addr / uint64(c.params.LineBytes)

	sid := miscSID
	if c.kind != StaticInterleave {
		if s := c.table.FindByAddr(addr); s != nil {
			sid = s.SID
			c.epochAcc[unit][sid]++
		}
	} else if s := c.table.FindByAddr(addr); s != nil {
		// Static interleave still records per-stream stats for analysis.
		sid = miscSID
		c.epochAcc[unit][s.SID]++
	}
	r.SID = sid

	alloc := c.allocs[sid]
	if !c.hasAlloc[sid] || alloc.TotalRows() == 0 {
		// Stream with no partition: fall back to the misc partition.
		sid = miscSID
		alloc = c.allocs[miscSID]
		r.SID = sid
	}

	// Pick the replication group: the group whose member set contains
	// this unit (Groups vector covers every unit).
	g := alloc.Groups[unit]
	home, slot, ord := placeLine(sid, alloc, g, line, c.linesPerRow())
	r.Home = home
	r.HomeRow = int64(alloc.RowBase[home]) + int64(ord)

	// Metadata lookup at the requester; metadata for a line lives with
	// its home unit's DRAM. The cache is keyed by metadata-block index.
	metaBlock := line / uint64(c.params.MetaBlockBytes/c.params.LineBytes)
	hit, _, _ := c.meta[unit].Access(metaBlock, false)
	r.MetaHit = hit
	if hit {
		c.stats.MetaHits++
	} else {
		c.stats.MetaMisses++
		// The metadata row shares the home unit's DRAM; model it in the
		// top rows above the data rows.
		r.MetaDRAMRow = int64(c.unitRows) + int64(metaBlock)%64
	}

	key := resKey{sid: sid, slot: slot}
	res := c.resident[r.Home]
	if v, ok := res[key]; ok && v.line == line {
		r.Hit = true
		if write {
			v.dirty = true
			res[key] = v
		}
		c.stats.Hits++
		c.sidStats(sid).Hits++
		return r
	}
	c.stats.Misses++
	c.sidStats(sid).Misses++
	r.FetchBytes = c.params.LineBytes
	if v, ok := res[key]; ok && v.dirty {
		r.WritebackBytes = c.params.LineBytes
		c.stats.Writebacks++
	}
	res[key] = lineVal{line: line, dirty: write}
	return r
}

// linesPerRow returns cachelines per DRAM row.
func (c *Controller) linesPerRow() uint64 {
	return uint64(c.params.RowBytes / c.params.LineBytes)
}

// placeLine maps a line to (home unit, slot id, row ordinal) within the
// group's allocation: slots are distributed over units proportionally to
// their shares, and the line picks a slot by hash.
func placeLine(sid stream.ID, a streamcache.Allocation, g uint8, line uint64, linesPerRow uint64) (home int, slot uint64, ord uint32) {
	var total uint64
	for u, s := range a.Shares {
		if a.Groups[u] == g {
			total += uint64(s)
		}
	}
	if total == 0 {
		// Group without space: serve from group 0's space if any;
		// otherwise unit 0 (degenerate, caller avoids this).
		g = 0
		for u, s := range a.Shares {
			if a.Groups[u] == g {
				total += uint64(s)
			}
		}
		if total == 0 {
			return 0, line % linesPerRow, 0
		}
	}
	slots := total * linesPerRow
	slot = lineHash(uint64(sid), line) % slots
	// Walk units in order, assigning slot ranges by share.
	var acc uint64
	rowIdx := slot / linesPerRow
	for u, s := range a.Shares {
		if a.Groups[u] != g || s == 0 {
			continue
		}
		if rowIdx < acc+uint64(s) {
			return u, slot, uint32(rowIdx - acc)
		}
		acc += uint64(s)
	}
	return 0, slot, 0
}

// lineHash mixes the line address with the stream id.
func lineHash(sid, line uint64) uint64 {
	x := line ^ sid*0x9e3779b97f4a7c15 ^ 0x1234
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Apply installs a new configuration and bulk-invalidates the changed
// streams' lines (the Jigsaw/Whirlpool/Nexus reconfiguration model).
// It returns the number of invalidated lines and dirty writebacks.
func (c *Controller) Apply(newAllocs map[stream.ID]streamcache.Allocation) (invalidated, writebacks int, err error) {
	for sid, a := range newAllocs {
		if err := a.Validate(c.numUnits); err != nil {
			return invalidated, writebacks, err
		}
		if c.hasAlloc[sid] && allocationsEqual(c.allocs[sid], a) {
			continue
		}
		c.allocs[sid] = a.Clone()
		c.hasAlloc[sid] = true
		for _, res := range c.resident {
			for k, v := range res {
				if k.sid != sid {
					continue
				}
				invalidated++
				if v.dirty {
					writebacks++
					c.stats.Writebacks++
				}
				delete(res, k)
			}
		}
	}
	return invalidated, writebacks, nil
}

func allocationsEqual(a, b streamcache.Allocation) bool {
	if len(a.Shares) != len(b.Shares) {
		return false
	}
	for i := range a.Shares {
		if a.Shares[i] != b.Shares[i] || a.RowBase[i] != b.RowBase[i] || a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

// EpochAccesses returns and clears the per-unit stream access counts.
func (c *Controller) EpochAccesses() []map[stream.ID]uint64 {
	out := make([]map[stream.ID]uint64, c.numUnits)
	for i := range c.epochAcc {
		m := make(map[stream.ID]uint64)
		for sid, n := range c.epochAcc[i] {
			if n != 0 {
				m[stream.ID(sid)] = n
				c.epochAcc[i][sid] = 0
			}
		}
		out[i] = m
	}
	return out
}

// Stats returns a copy of the aggregate counters.
func (c *Controller) Stats() Stats { return c.stats }

// MetaHitRate reports the combined metadata-cache hit rate.
func (c *Controller) MetaHitRate() float64 {
	t := c.stats.MetaHits + c.stats.MetaMisses
	if t == 0 {
		return 0
	}
	return float64(c.stats.MetaHits) / float64(t)
}

// StreamStatsFor returns sid's hit/miss counters.
func (c *Controller) StreamStatsFor(sid stream.ID) streamcache.StreamStats {
	if int(sid) >= len(c.perSID) {
		return streamcache.StreamStats{}
	}
	return c.perSID[sid]
}

func (c *Controller) sidStats(sid stream.ID) *streamcache.StreamStats {
	return &c.perSID[sid]
}

// sortedSIDs returns map keys in ascending order for deterministic loops.
func sortedSIDs[V any](m map[stream.ID]V) []stream.ID {
	out := make([]stream.ID, 0, len(m))
	for sid := range m {
		out = append(out, sid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
