package nuca

import "ndpext/internal/telemetry"

// ReportTelemetry publishes the controller's counters into the registry
// under the given prefix (e.g. "nuca").
func (c *Controller) ReportTelemetry(r *telemetry.Registry, prefix string) {
	r.PutUint(prefix+".lookups", c.stats.Lookups)
	r.PutUint(prefix+".hits", c.stats.Hits)
	r.PutUint(prefix+".misses", c.stats.Misses)
	r.PutUint(prefix+".meta_hits", c.stats.MetaHits)
	r.PutUint(prefix+".meta_misses", c.stats.MetaMisses)
	r.PutUint(prefix+".writebacks", c.stats.Writebacks)
}
