package nuca

import (
	"testing"

	"ndpext/internal/policy"
	"ndpext/internal/sampler"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

func testTable(t *testing.T) *stream.Table {
	t.Helper()
	tbl := stream.NewTable()
	a, err := stream.Configure(1, stream.Affine, 0x100000, 256<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.Configure(2, stream.Indirect, 0x200000, 128<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(b); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func prox(u, v int) float64 {
	d := u - v
	if d < 0 {
		d = -d
	}
	return 1.0 / (1.0 + float64(d))
}

func confIn(units int, rows uint32) ConfigInput {
	return ConfigInput{
		NumUnits: units, UnitRows: rows, RowBytes: 2048,
		Proximity: prox, MissPenalty: 5,
	}
}

func curveWS(wsBytes int64, floor float64, accesses uint64) sampler.Curve {
	return sampler.Curve{
		ItemBytes: 64,
		Accesses:  accesses,
		Points: []sampler.CurvePoint{
			{Bytes: wsBytes / 8, MissRate: 1, Sampled: 100},
			{Bytes: wsBytes, MissRate: floor, Sampled: 100},
			{Bytes: wsBytes * 8, MissRate: floor, Sampled: 100},
		},
	}
}

func TestStaticInterleaveSpreadsLines(t *testing.T) {
	c := NewController(StaticInterleave, DefaultParams(), 8, 128, testTable(t))
	homes := map[int]int{}
	for i := uint64(0); i < 4096; i++ {
		r := c.Lookup(0, 0x100000+i*64, false)
		homes[r.Home]++
	}
	if len(homes) != 8 {
		t.Fatalf("lines landed on %d/8 units", len(homes))
	}
	for u, n := range homes {
		if n < 4096/8/2 || n > 4096/8*2 {
			t.Fatalf("unit %d got %d lines; interleaving badly skewed", u, n)
		}
	}
}

func TestLineHitAfterFill(t *testing.T) {
	c := NewController(StaticInterleave, DefaultParams(), 4, 1024, testTable(t))
	if r := c.Lookup(0, 0x100000, false); r.Hit {
		t.Fatal("cold lookup hit")
	}
	if r := c.Lookup(0, 0x100000, false); !r.Hit {
		t.Fatal("warm lookup missed")
	}
	// Same 64 B line, different byte.
	if r := c.Lookup(0, 0x100020, false); !r.Hit {
		t.Fatal("same-line lookup missed")
	}
	// Next line: no prefetching at line granularity (the NDPExt
	// advantage for affine streams).
	if r := c.Lookup(0, 0x100040, false); r.Hit {
		t.Fatal("adjacent line hit without being fetched")
	}
}

func TestMetadataCacheBehaviour(t *testing.T) {
	c := NewController(StaticInterleave, DefaultParams(), 4, 1024, testTable(t))
	r := c.Lookup(0, 0x100000, false)
	if r.MetaHit {
		t.Fatal("cold metadata lookup hit")
	}
	if r.MetaDRAMRow < int64(1024) {
		t.Fatalf("metadata row %d not above the data rows", r.MetaDRAMRow)
	}
	r = c.Lookup(0, 0x100000, false)
	if !r.MetaHit {
		t.Fatal("warm metadata lookup missed")
	}
	// 512 B metadata block covers 8 lines: neighbours hit the metadata
	// cache even though their data misses.
	r = c.Lookup(0, 0x100040, false)
	if !r.MetaHit {
		t.Fatal("dual-granularity metadata should cover the 512 B block")
	}
	if c.MetaHitRate() <= 0.5 {
		t.Fatalf("meta hit rate %.2f", c.MetaHitRate())
	}
}

func TestDirtyWriteback(t *testing.T) {
	// 1 unit, tiny capacity: force slot conflicts with dirty lines.
	c := NewController(StaticInterleave, DefaultParams(), 1, 2, testTable(t))
	saw := false
	for i := uint64(0); i < 4096 && !saw; i++ {
		r := c.Lookup(0, 0x100000+i*64, true)
		saw = r.WritebackBytes > 0
	}
	if !saw {
		t.Fatal("no writebacks under capacity pressure with writes")
	}
}

func TestApplyBulkInvalidates(t *testing.T) {
	c := NewController(Whirlpool, DefaultParams(), 4, 256, testTable(t))
	alloc := interleavedAllocation(4, 32)
	if _, _, err := c.Apply(map[stream.ID]streamcache.Allocation{1: alloc}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 512; i++ {
		c.Lookup(0, 0x100000+i*64, false)
	}
	bigger := interleavedAllocation(4, 64)
	inv, _, err := c.Apply(map[stream.ID]streamcache.Allocation{1: bigger})
	if err != nil {
		t.Fatal(err)
	}
	if inv == 0 {
		t.Fatal("reconfiguration invalidated nothing")
	}
}

func TestConfigureJigsawSpreadsSharedData(t *testing.T) {
	in := confIn(8, 256)
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(64*2048, 0, 1_000_000),
			Acc: map[int]uint64{0: 500_000, 7: 500_000}}, // shared: spread
		{SID: 2, ReadOnly: true, Curve: curveWS(64*2048, 0, 800_000),
			Acc: map[int]uint64{3: 800_000}}, // private: at unit 3
	}
	allocs, err := Configure(Jigsaw, in, streams)
	if err != nil {
		t.Fatal(err)
	}
	s1 := allocs[1]
	nonzero := 0
	for _, s := range s1.Shares {
		if s > 0 {
			nonzero++
		}
	}
	if nonzero < 6 {
		t.Fatalf("shared stream only placed on %d units; Jigsaw spreads shared data", nonzero)
	}
	s2 := allocs[2]
	if s2.Shares[3] == 0 {
		t.Fatal("private stream not placed at its accessor")
	}
	best := 0
	for u, s := range s2.Shares {
		if s > s2.Shares[best] {
			best = u
		}
		_ = u
	}
	if best != 3 {
		t.Fatalf("private stream centered at unit %d, want 3", best)
	}
}

func TestConfigureWhirlpoolCenterOfMass(t *testing.T) {
	in := confIn(8, 256)
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(64*2048, 0, 1_000_000),
			Acc: map[int]uint64{2: 500_000, 4: 500_000}},
	}
	allocs, err := Configure(Whirlpool, in, streams)
	if err != nil {
		t.Fatal(err)
	}
	a := allocs[1]
	if len(a.GroupIDs()) != 1 {
		t.Fatal("Whirlpool must not replicate")
	}
	// Placement should favour units 2..4 over the edges.
	edge := uint64(a.Shares[0]) + uint64(a.Shares[7])
	center := uint64(a.Shares[2]) + uint64(a.Shares[3]) + uint64(a.Shares[4])
	if center <= edge {
		t.Fatalf("center-of-mass placement failed: center %d, edge %d (%v)", center, edge, a.Shares)
	}
}

func TestConfigureNexusReplicatesReadOnly(t *testing.T) {
	in := confIn(8, 1024) // plenty of space: replication should win
	in.NexusDegrees = []int{1, 2, 4}
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(16*2048, 0, 1_000_000),
			Acc: map[int]uint64{0: 250_000, 2: 250_000, 5: 250_000, 7: 250_000}},
	}
	allocs, err := Configure(Nexus, in, streams)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got < 2 {
		t.Fatalf("Nexus chose %d groups; with abundant space it should replicate", got)
	}
}

func TestConfigureNexusWritableNeverReplicated(t *testing.T) {
	in := confIn(8, 1024)
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: false, Curve: curveWS(16*2048, 0, 1_000_000),
			Acc: map[int]uint64{0: 500_000, 7: 500_000}},
	}
	allocs, err := Configure(Nexus, in, streams)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(allocs[1].GroupIDs()); got != 1 {
		t.Fatalf("writable stream replicated %d ways under Nexus", got)
	}
}

func TestCapacityRespectedAcrossStreams(t *testing.T) {
	in := confIn(4, 64)
	var streams []policy.StreamInput
	for i := 0; i < 6; i++ {
		streams = append(streams, policy.StreamInput{
			SID: stream.ID(i + 1), ReadOnly: true,
			Curve: curveWS(1<<20, 0, 100_000),
			Acc:   map[int]uint64{i % 4: 100_000},
		})
	}
	allocs, err := Configure(Whirlpool, in, streams)
	if err != nil {
		t.Fatal(err)
	}
	per := make([]uint64, 4)
	for _, a := range allocs {
		for u, s := range a.Shares {
			per[u] += uint64(s)
		}
	}
	for u, rows := range per {
		if rows > 64 {
			t.Fatalf("unit %d overcommitted: %d rows", u, rows)
		}
	}
}

func TestLookupRoutesToAllocatedPartition(t *testing.T) {
	tbl := testTable(t)
	c := NewController(Whirlpool, DefaultParams(), 4, 256, tbl)
	a := streamcache.NewAllocation(4)
	a.Shares[2] = 64 // stream 1 lives entirely on unit 2
	if _, _, err := c.Apply(map[stream.ID]streamcache.Allocation{1: a}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		r := c.Lookup(0, 0x100000+i*64, false)
		if r.Home != 2 {
			t.Fatalf("line served by unit %d, want 2", r.Home)
		}
	}
}

func TestNonStreamUsesMiscPartition(t *testing.T) {
	c := NewController(Whirlpool, DefaultParams(), 4, 256, testTable(t))
	r := c.Lookup(1, 0xDEADBEEF00, false)
	if r.SID != miscSID {
		t.Fatalf("non-stream address classified as stream %d", r.SID)
	}
	if r2 := c.Lookup(1, 0xDEADBEEF00, false); !r2.Hit {
		t.Fatal("misc partition did not cache the line")
	}
}

func TestEpochAccessesTracking(t *testing.T) {
	c := NewController(Whirlpool, DefaultParams(), 4, 256, testTable(t))
	c.Lookup(3, 0x100000, false)
	c.Lookup(3, 0x200000, false)
	acc := c.EpochAccesses()
	if acc[3][1] != 1 || acc[3][2] != 1 {
		t.Fatalf("epoch accesses = %v", acc[3])
	}
	if acc2 := c.EpochAccesses(); len(acc2[3]) != 0 {
		t.Fatal("epoch accesses not reset")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		StaticInterleave: "static-interleave",
		Jigsaw:           "jigsaw",
		Whirlpool:        "whirlpool",
		Nexus:            "nexus",
	} {
		if k.String() != want {
			t.Fatalf("String(%d) = %q", int(k), k.String())
		}
	}
}

func TestSizeByLookaheadPrefersHotSteepStreams(t *testing.T) {
	// Capacity fits only one full working set: the hot stream must win it.
	in := confIn(4, 40)
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(128*2048, 0, 1_000_000),
			Acc: map[int]uint64{0: 1_000_000}},
		{SID: 2, ReadOnly: true, Curve: curveWS(128*2048, 0, 1_000),
			Acc: map[int]uint64{1: 1_000}},
	}
	rows := sizeByLookahead(in, streams, nil)
	if rows[1] <= rows[2] {
		t.Fatalf("hot stream got %d rows, cold got %d", rows[1], rows[2])
	}
}

func TestNexusDegreeRespondsToCapacity(t *testing.T) {
	// With tiny capacity, replication shrinks copies too much and degree
	// 1 must win; with huge capacity higher degrees should be chosen.
	streams := []policy.StreamInput{
		{SID: 1, ReadOnly: true, Curve: curveWS(64*2048, 0, 1_000_000),
			Acc: map[int]uint64{0: 250_000, 3: 250_000, 5: 250_000, 7: 250_000}},
	}
	tiny := confIn(8, 16)
	tiny.NexusDegrees = []int{1, 2, 4}
	tinyAllocs, err := Configure(Nexus, tiny, streams)
	if err != nil {
		t.Fatal(err)
	}
	big := confIn(8, 4096)
	big.NexusDegrees = []int{1, 2, 4}
	bigAllocs, err := Configure(Nexus, big, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(tinyAllocs[1].GroupIDs()) > len(bigAllocs[1].GroupIDs()) {
		t.Fatalf("tiny capacity chose more replication (%d) than big capacity (%d)",
			len(tinyAllocs[1].GroupIDs()), len(bigAllocs[1].GroupIDs()))
	}
}

func TestClusterUnitsPartition(t *testing.T) {
	cl := clusterUnits(10, 3)
	if len(cl) != 3 {
		t.Fatalf("clusters = %d", len(cl))
	}
	seen := map[int]bool{}
	for _, c := range cl {
		for _, u := range c {
			if seen[u] {
				t.Fatalf("unit %d in two clusters", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("clusters cover %d units, want 10", len(seen))
	}
	// More clusters than units degrades gracefully.
	if got := clusterUnits(2, 5); len(got) != 2 {
		t.Fatalf("overclustered: %d", len(got))
	}
}

func TestConfigureUnknownKind(t *testing.T) {
	if _, err := Configure(Kind(99), confIn(2, 8), nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestConfigureValidatesInput(t *testing.T) {
	bad := confIn(0, 8)
	if _, err := Configure(Whirlpool, bad, nil); err == nil {
		t.Fatal("invalid input accepted")
	}
	bad = confIn(2, 8)
	bad.Proximity = nil
	if _, err := Configure(Whirlpool, bad, nil); err == nil {
		t.Fatal("nil proximity accepted")
	}
}
