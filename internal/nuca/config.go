package nuca

import (
	"fmt"
	"sort"

	"ndpext/internal/policy"
	"ndpext/internal/stream"
	"ndpext/internal/streamcache"
)

// ConfigInput parameterizes the baseline configuration policies.
type ConfigInput struct {
	NumUnits int
	UnitRows uint32
	RowBytes int
	// Proximity returns a closeness weight for unit v as seen from
	// accessor u (higher is closer; the attenuation factor works).
	Proximity func(u, v int) float64
	// MissPenalty and RemotePenalty let Nexus trade hit rate against
	// replica distance when choosing its global replication degree:
	// estimated cost = missRate*MissPenalty + (1-missRate)*remoteDist.
	MissPenalty float64
	// NexusDegrees lists the candidate global replication degrees.
	NexusDegrees []int
}

// Validate reports whether the input is usable.
func (c ConfigInput) Validate() error {
	if c.NumUnits <= 0 || c.UnitRows == 0 || c.RowBytes <= 0 {
		return fmt.Errorf("nuca: invalid config input %+v", c)
	}
	if c.Proximity == nil {
		return fmt.Errorf("nuca: nil proximity function")
	}
	return nil
}

// Configure derives the epoch's allocations for the given baseline kind
// from the profiled stream inputs (the same profiles NDPExt uses: these
// baselines also size partitions with miss curves; §VI adapts them to
// the DRAM cache).
func Configure(kind Kind, in ConfigInput, streams []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case StaticInterleave:
		return map[stream.ID]streamcache.Allocation{}, nil
	case Jigsaw:
		return configureJigsaw(in, streams)
	case Whirlpool:
		return configurePartitioned(in, streams, nil)
	case Nexus:
		return configureNexus(in, streams)
	default:
		return nil, fmt.Errorf("nuca: unknown kind %v", kind)
	}
}

// sizeByLookahead runs the classic UCP/Jigsaw lookahead on the aggregate
// miss curves: repeatedly give the stream with the steepest slope its
// best jump until the global space or the utility runs out. Returns rows
// per stream. degreeOf scales the effective capacity a stream needs (a
// stream replicated R times needs R times the rows for the same curve
// position).
func sizeByLookahead(in ConfigInput, streams []policy.StreamInput, degreeOf func(policy.StreamInput) int) map[stream.ID]uint64 {
	totalRows := uint64(in.NumUnits) * uint64(in.UnitRows)
	// Leave the misc partition's reservation alone.
	reserve := uint64(in.NumUnits) * (uint64(in.UnitRows)/32 + 1)
	if totalRows > reserve {
		totalRows -= reserve
	}
	rows := make(map[stream.ID]uint64)
	type cand struct {
		idx   int
		slope float64
		jump  uint64
	}
	accOf := func(s policy.StreamInput) uint64 {
		var t uint64
		for _, a := range s.Acc {
			t += a
		}
		return t
	}
	var used uint64
	for {
		best := cand{idx: -1}
		for i := range streams {
			s := &streams[i]
			acc := accOf(*s)
			if acc == 0 {
				continue
			}
			deg := 1
			if degreeOf != nil {
				deg = degreeOf(*s)
			}
			// Current per-copy capacity in bytes.
			cur := int64(rows[s.SID]) * int64(in.RowBytes) / int64(deg)
			mrCur := s.Curve.MissRateAt(cur)
			for _, p := range s.Curve.Points {
				if p.Bytes <= cur {
					continue
				}
				d := mrCur - s.Curve.MissRateAt(p.Bytes)
				if d <= 0 {
					continue
				}
				jumpRows := uint64((p.Bytes-cur)*int64(deg)+int64(in.RowBytes)-1) / uint64(in.RowBytes)
				if jumpRows == 0 || used+jumpRows > totalRows {
					continue
				}
				slope := float64(acc) * d / float64(jumpRows)
				if slope > best.slope {
					best = cand{idx: i, slope: slope, jump: jumpRows}
				}
			}
		}
		if best.idx < 0 {
			return rows
		}
		rows[streams[best.idx].SID] += best.jump
		used += best.jump
	}
}

// placeCenterOfMass fills each stream's partition onto the units nearest
// its accessors' center of mass, in descending access order (the greedy
// placement of Jigsaw/CDCS the paper contrasts with: hot partitions claim
// the central units, the rest settle for suboptimal spots).
func placeCenterOfMass(in ConfigInput, streams []policy.StreamInput, rows map[stream.ID]uint64,
	spread map[stream.ID]bool, groupsOf func(policy.StreamInput) int) map[stream.ID]streamcache.Allocation {

	free := make([]int64, in.NumUnits)
	nextRow := make([]uint32, in.NumUnits)
	for u := range free {
		free[u] = int64(in.UnitRows)
		if r := uint64(in.UnitRows)/32 + 1; uint64(free[u]) > r {
			free[u] -= int64(r) // misc partition reservation
		}
	}
	// Hot streams place first.
	order := make([]int, 0, len(streams))
	for i := range streams {
		if rows[streams[i].SID] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := totalAcc(streams[order[a]]), totalAcc(streams[order[b]])
		if ta != tb {
			return ta > tb
		}
		return streams[order[a]].SID < streams[order[b]].SID
	})

	out := make(map[stream.ID]streamcache.Allocation)
	for _, i := range order {
		s := streams[i]
		need := rows[s.SID]
		a := streamcache.NewAllocation(in.NumUnits)
		if spread[s.SID] {
			// Shared data: interleave uniformly (Jigsaw's global
			// partition for multi-thread data).
			per := need / uint64(in.NumUnits)
			rem := need % uint64(in.NumUnits)
			for u := 0; u < in.NumUnits; u++ {
				want := per
				if uint64(u) < rem {
					want++
				}
				got := want
				if int64(got) > free[u] {
					got = uint64(free[u])
				}
				a.Shares[u] = uint32(got)
				a.RowBase[u] = nextRow[u]
				nextRow[u] += uint32(got)
				free[u] -= int64(got)
			}
			assignNearestGroups(in, &a, s)
			out[s.SID] = a
			continue
		}
		groups := 1
		if groupsOf != nil {
			groups = groupsOf(s)
		}
		if groups < 1 {
			groups = 1
		}
		members := clusterUnits(in.NumUnits, groups)
		perGroup := need / uint64(groups)
		for gi, us := range members {
			// Rank the group's units by proximity to the stream's
			// accessors (weighted by access counts).
			ranked := append([]int{}, us...)
			sort.Slice(ranked, func(x, y int) bool {
				wx, wy := comWeight(in, s, ranked[x]), comWeight(in, s, ranked[y])
				if wx != wy {
					return wx > wy
				}
				return ranked[x] < ranked[y]
			})
			left := perGroup
			for _, u := range ranked {
				if left == 0 {
					break
				}
				got := left
				if int64(got) > free[u] {
					got = uint64(free[u])
				}
				if got == 0 {
					continue
				}
				a.Shares[u] = uint32(got)
				a.RowBase[u] = nextRow[u]
				nextRow[u] += uint32(got)
				free[u] -= int64(got)
				left -= got
			}
			for _, u := range us {
				a.Groups[u] = uint8(gi)
			}
		}
		out[s.SID] = a
	}
	return out
}

// totalAcc sums a stream's access counts.
func totalAcc(s policy.StreamInput) uint64 {
	var t uint64
	for _, a := range s.Acc {
		t += a
	}
	return t
}

// comWeight scores unit v by accessor proximity. Accessors are visited
// in sorted order for a deterministic floating-point sum.
func comWeight(in ConfigInput, s policy.StreamInput, v int) float64 {
	var w float64
	for _, u := range sortedAccessors(s.Acc) {
		w += float64(s.Acc[u]) * in.Proximity(u, v)
	}
	return w
}

// sortedAccessors returns the accessor units in ascending order.
func sortedAccessors(acc map[int]uint64) []int {
	out := make([]int, 0, len(acc))
	for u := range acc {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// assignNearestGroups leaves a single group for a spread allocation.
func assignNearestGroups(in ConfigInput, a *streamcache.Allocation, s policy.StreamInput) {
	for u := range a.Groups {
		a.Groups[u] = 0
	}
}

// clusterUnits splits the unit IDs into n contiguous clusters (unit IDs
// are spatially ordered, so contiguous ranges are physically close).
func clusterUnits(numUnits, n int) [][]int {
	if n > numUnits {
		n = numUnits
	}
	out := make([][]int, n)
	for g := 0; g < n; g++ {
		lo, hi := g*numUnits/n, (g+1)*numUnits/n
		for u := lo; u < hi; u++ {
			out[g] = append(out[g], u)
		}
	}
	return out
}

// configureJigsaw sizes by lookahead and spreads multi-accessor streams
// (Jigsaw's shared partitions) while placing single-accessor streams at
// their core.
func configureJigsaw(in ConfigInput, streams []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	rows := sizeByLookahead(in, streams, nil)
	spread := map[stream.ID]bool{}
	for _, s := range streams {
		if len(s.Acc) > 1 {
			spread[s.SID] = true
		}
	}
	return placeCenterOfMass(in, streams, rows, spread, nil), nil
}

// configurePartitioned is Whirlpool: per-stream partitions with
// center-of-mass placement, no replication.
func configurePartitioned(in ConfigInput, streams []policy.StreamInput, _ map[stream.ID]bool) (map[stream.ID]streamcache.Allocation, error) {
	rows := sizeByLookahead(in, streams, nil)
	return placeCenterOfMass(in, streams, rows, nil, nil), nil
}

// configureNexus is Whirlpool plus a single global replication degree for
// read-only streams, chosen by estimating miss cost against replica
// distance across the candidate degrees.
func configureNexus(in ConfigInput, streams []policy.StreamInput) (map[stream.ID]streamcache.Allocation, error) {
	degrees := in.NexusDegrees
	if len(degrees) == 0 {
		degrees = []int{1, 2, 4, 8}
	}
	bestDeg, bestCost := 1, 0.0
	for i, d := range degrees {
		if d < 1 || d > in.NumUnits || d > 1<<streamcache.RGroupsBits {
			continue
		}
		cost := nexusCost(in, streams, d)
		if i == 0 || cost < bestCost {
			bestDeg, bestCost = d, cost
		}
	}
	degreeOf := func(s policy.StreamInput) int {
		if s.ReadOnly {
			return bestDeg
		}
		return 1
	}
	rows := sizeByLookahead(in, streams, degreeOf)
	return placeCenterOfMass(in, streams, rows, nil, degreeOf), nil
}

// nexusCost estimates the cost of a global replication degree: replicas
// shrink each copy (raising miss rate, paying MissPenalty) but cut the
// distance to the nearest replica (estimated from cluster proximity).
func nexusCost(in ConfigInput, streams []policy.StreamInput, degree int) float64 {
	clusters := clusterUnits(in.NumUnits, degree)
	var cost float64
	for _, s := range streams {
		acc := totalAcc(s)
		if acc == 0 {
			continue
		}
		deg := 1
		if s.ReadOnly {
			deg = degree
		}
		// Assume a fair share of total capacity for the estimate.
		fair := uint64(in.NumUnits) * uint64(in.UnitRows) / uint64(max(len(streams), 1))
		perCopy := int64(fair) * int64(in.RowBytes) / int64(deg)
		mr := s.Curve.MissRateAt(perCopy)
		// Average closeness of each accessor to its nearest replica
		// cluster's center (sorted iteration: deterministic FP sum).
		var close float64
		for _, u := range sortedAccessors(s.Acc) {
			best := 0.0
			for _, cl := range clusters {
				center := cl[len(cl)/2]
				if p := in.Proximity(u, center); p > best {
					best = p
				}
			}
			close += float64(s.Acc[u]) * best
		}
		close /= float64(acc)
		cost += float64(acc) * (mr*in.MissPenalty + (1-mr)*(1-close))
	}
	return cost
}
