// Package stream implements the software-defined data stream abstraction
// NDPExt uses as its caching granularity (paper §II-C, §IV-A, Table I).
//
// A stream describes a memory address range plus its expected access
// pattern. Affine streams have statically determined addresses following
// an affine function of up to three loop dimensions, optionally accessed
// in a different order than stored (the `order` argument); indirect
// streams are accessed data-dependently (addr = s[i]). Streams are
// configured after allocation and before use via the paper's API:
//
//	configure_stream(type, base, size, elemSize, [stride, length, order])
package stream

import "fmt"

// Type distinguishes the two stream kinds of the paper.
type Type uint8

const (
	// Affine streams have addresses addr = a*i + b: sequential and
	// strided patterns such as vertex lists and matrices.
	Affine Type = iota
	// Indirect streams have input-dependent addresses (addr = s[i]),
	// such as per-vertex state indexed through an edge list.
	Indirect
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Affine:
		return "affine"
	case Indirect:
		return "indirect"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ID identifies a stream (the paper's 9-bit sid).
type ID uint16

// NoStream marks an access not belonging to any configured stream; such
// accesses bypass the DRAM cache and go directly to extended memory
// (paper §IV-C; <0.1% of accesses).
const NoStream ID = 1<<SIDBits - 1

// Table I field widths, in bits. The stream remap table entry size and
// the SLB sizing both derive from these.
const (
	SIDBits      = 9  // up to 512 streams
	BaseBits     = 48 // base physical address
	SizeBits     = 48 // total stream size
	ElemSizeBits = 8  // element size
	ReadOnlyBits = 1
	StrideBits   = 48 // per dimension, x3
	LengthBits   = 48 // per dimension, x2 (Y/Z; X is derived)
	OrderBits    = 3  // access dimension order

	// MaxStreams is the number of representable stream IDs; the top ID
	// is reserved as NoStream.
	MaxStreams = 1 << SIDBits
)

// Order encodes which of the up-to-3 affine dimensions iterates fastest
// during access (the paper's 3-bit order argument). OrderXYZ means the
// access order matches the storage order (X innermost).
type Order uint8

const (
	OrderXYZ Order = iota // storage order
	OrderYXZ
	OrderXZY
	OrderZYX
	OrderYZX
	OrderZXY
	numOrders
)

// perm returns the access-order permutation: perm[0] is the innermost
// (fastest iterating) storage dimension during access.
func (o Order) perm() [3]int {
	switch o {
	case OrderXYZ:
		return [3]int{0, 1, 2}
	case OrderYXZ:
		return [3]int{1, 0, 2}
	case OrderXZY:
		return [3]int{0, 2, 1}
	case OrderZYX:
		return [3]int{2, 1, 0}
	case OrderYZX:
		return [3]int{1, 2, 0}
	case OrderZXY:
		return [3]int{2, 0, 1}
	default:
		panic(fmt.Sprintf("stream: invalid order %d", o))
	}
}

// Stream is the metadata of one configured stream (Table I).
type Stream struct {
	SID      ID
	Type     Type
	Base     uint64 // base physical address
	Size     uint64 // total bytes
	ElemSize uint32 // bytes per element
	ReadOnly bool   // maintained by hardware; cleared on first write

	// Affine-only fields. Dimensions are storage dimensions with X
	// innermost: element (x, y, z) lives at
	// Base + x*Stride[0] + y*Stride[1] + z*Stride[2].
	// Length[0] and Length[1] are the Y and Z extents; the X extent is
	// derived from the total element count.
	Stride [3]uint64
	Length [2]uint64
	Order  Order
}

// Configure builds and validates a stream, mirroring the paper's
// configure_stream API. For affine streams, pass zero stride/length for a
// flat 1-D stream; multi-dimensional streams must supply strides and Y/Z
// lengths.
func Configure(sid ID, typ Type, base, size uint64, elemSize uint32) (*Stream, error) {
	s := &Stream{
		SID: sid, Type: typ, Base: base, Size: size, ElemSize: elemSize,
		ReadOnly: true, // initialized to 1; cleared on first write (§IV-B)
	}
	if typ == Affine {
		s.Stride[0] = uint64(elemSize)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ConfigureAffine3D builds a multi-dimensional affine stream with an
// explicit access order (e.g. column-major access to a row-major matrix).
// lenY and lenZ give the extents of the outer storage dimensions; pass
// lenZ = 1 for a 2-D stream.
func ConfigureAffine3D(sid ID, base uint64, elemSize uint32, lenX, lenY, lenZ uint64, order Order) (*Stream, error) {
	if lenX == 0 || lenY == 0 || lenZ == 0 {
		return nil, fmt.Errorf("stream %d: zero dimension %dx%dx%d", sid, lenX, lenY, lenZ)
	}
	es := uint64(elemSize)
	s := &Stream{
		SID: sid, Type: Affine, Base: base,
		Size:     lenX * lenY * lenZ * es,
		ElemSize: elemSize,
		ReadOnly: true,
		Stride:   [3]uint64{es, lenX * es, lenX * lenY * es},
		Length:   [2]uint64{lenY, lenZ},
		Order:    order,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the stream's invariants.
func (s *Stream) Validate() error {
	if s.SID >= NoStream {
		return fmt.Errorf("stream: sid %d exceeds %d-bit limit", s.SID, SIDBits)
	}
	if s.Type != Affine && s.Type != Indirect {
		return fmt.Errorf("stream %d: invalid type %d", s.SID, s.Type)
	}
	if s.ElemSize == 0 {
		return fmt.Errorf("stream %d: zero element size", s.SID)
	}
	if s.Size == 0 || s.Size%uint64(s.ElemSize) != 0 {
		return fmt.Errorf("stream %d: size %d not a positive multiple of element size %d", s.SID, s.Size, s.ElemSize)
	}
	if s.Base >= 1<<BaseBits || s.Size >= 1<<SizeBits {
		return fmt.Errorf("stream %d: base/size exceed %d-bit fields", s.SID, BaseBits)
	}
	if s.Type == Affine {
		if s.Order >= numOrders {
			return fmt.Errorf("stream %d: invalid order %d", s.SID, s.Order)
		}
		if s.Stride[0] == 0 {
			return fmt.Errorf("stream %d: affine stream needs an X stride", s.SID)
		}
		lx := s.lenX()
		if ly, lz := s.dimLen(1), s.dimLen(2); lx*ly*lz != s.NumElements() {
			return fmt.Errorf("stream %d: dims %dx%dx%d disagree with %d elements",
				s.SID, lx, ly, lz, s.NumElements())
		}
	}
	return nil
}

// NumElements returns the element count.
func (s *Stream) NumElements() uint64 { return s.Size / uint64(s.ElemSize) }

// Contains reports whether addr falls inside the stream's range.
func (s *Stream) Contains(addr uint64) bool {
	return addr >= s.Base && addr < s.Base+s.Size
}

// lenX derives the innermost storage extent from the total element count.
func (s *Stream) lenX() uint64 {
	n := s.NumElements()
	ly, lz := s.dimLen(1), s.dimLen(2)
	return n / (ly * lz)
}

// dimLen returns the extent of storage dimension d (0 = X, derived).
func (s *Stream) dimLen(d int) uint64 {
	switch d {
	case 0:
		return s.lenX()
	case 1:
		if s.Length[0] == 0 {
			return 1
		}
		return s.Length[0]
	default:
		if s.Length[1] == 0 {
			return 1
		}
		return s.Length[1]
	}
}

// ElemID maps an address inside the stream to its element index in
// *access order*. The hardware caches elements by access order (paper
// §IV-A: "the hardware would cache the elements following their access
// order"), so spatially adjacent access-order IDs land in the same cache
// block even for reordered iterations. The second result reports whether
// the address actually belongs to the stream.
func (s *Stream) ElemID(addr uint64) (uint64, bool) {
	if !s.Contains(addr) {
		return 0, false
	}
	off := addr - s.Base
	if s.Type == Indirect || s.Order == OrderXYZ && s.Length[0] == 0 && s.Length[1] == 0 {
		return off / uint64(s.ElemSize), true
	}
	// Decode storage coordinates from the offset using the nested strides.
	var coord [3]uint64
	if s.Stride[2] != 0 {
		coord[2] = off / s.Stride[2]
		off %= s.Stride[2]
	}
	if s.Stride[1] != 0 {
		coord[1] = off / s.Stride[1]
		off %= s.Stride[1]
	}
	coord[0] = off / s.Stride[0]
	// Re-linearize in access order.
	p := s.Order.perm()
	id := coord[p[2]]
	id = id*s.dimLen(p[1]) + coord[p[1]]
	id = id*s.dimLen(p[0]) + coord[p[0]]
	return id, true
}

// ElemAddr is the inverse of ElemID: the address of access-order element
// id. It panics if id is out of range (internal misuse, not input).
func (s *Stream) ElemAddr(id uint64) uint64 {
	if id >= s.NumElements() {
		panic(fmt.Sprintf("stream %d: element %d out of %d", s.SID, id, s.NumElements()))
	}
	if s.Type == Indirect || s.Order == OrderXYZ && s.Length[0] == 0 && s.Length[1] == 0 {
		return s.Base + id*uint64(s.ElemSize)
	}
	p := s.Order.perm()
	var coord [3]uint64
	coord[p[0]] = id % s.dimLen(p[0])
	id /= s.dimLen(p[0])
	coord[p[1]] = id % s.dimLen(p[1])
	id /= s.dimLen(p[1])
	coord[p[2]] = id
	return s.Base + coord[0]*s.Stride[0] + coord[1]*s.Stride[1] + coord[2]*s.Stride[2]
}

// String summarizes the stream.
func (s *Stream) String() string {
	return fmt.Sprintf("stream %d %s [%#x,+%d) elem=%dB ro=%v",
		s.SID, s.Type, s.Base, s.Size, s.ElemSize, s.ReadOnly)
}

// Iterate calls yield for every element address in access order, stopping
// early if yield returns false. For reordered multi-dimensional affine
// streams this walks the addresses the hardware expects to cache
// together; for flat affine and indirect streams it is a plain sequential
// walk of the range. Useful for writing kernels against the Builder API.
func (s *Stream) Iterate(yield func(id uint64, addr uint64) bool) {
	n := s.NumElements()
	for id := uint64(0); id < n; id++ {
		if !yield(id, s.ElemAddr(id)) {
			return
		}
	}
}

// BlockOf returns the index of the cache block (of the given size)
// holding access-order element id — the unit at which the hardware
// caches affine streams (§IV-C).
func (s *Stream) BlockOf(id uint64, blockBytes int) uint64 {
	if blockBytes <= 0 {
		panic("stream: BlockOf requires a positive block size")
	}
	return id * uint64(s.ElemSize) / uint64(blockBytes)
}
