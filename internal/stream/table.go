package stream

import (
	"fmt"
	"sort"
)

// Table is the software-side registry of configured streams, kept in host
// memory alongside the stream remap table (paper §IV-B). Address ranges
// must not overlap: NDPExt associates one address with at most one stream
// (§IV-C), otherwise synonyms would break coherence.
type Table struct {
	byID map[ID]*Stream
	// ranges is kept sorted by Base for O(log n) address lookup.
	ranges []*Stream
}

// NewTable returns an empty stream table.
func NewTable() *Table {
	return &Table{byID: make(map[ID]*Stream)}
}

// Add registers a validated stream. It rejects duplicate IDs, overlapping
// ranges, and tables at the 512-stream capacity.
func (t *Table) Add(s *Stream) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if _, dup := t.byID[s.SID]; dup {
		return fmt.Errorf("stream: duplicate sid %d", s.SID)
	}
	if len(t.byID) >= MaxStreams-1 {
		return fmt.Errorf("stream: table full (%d streams)", MaxStreams-1)
	}
	i := sort.Search(len(t.ranges), func(i int) bool { return t.ranges[i].Base >= s.Base })
	if i > 0 && t.ranges[i-1].Base+t.ranges[i-1].Size > s.Base {
		return fmt.Errorf("stream %d overlaps stream %d", s.SID, t.ranges[i-1].SID)
	}
	if i < len(t.ranges) && s.Base+s.Size > t.ranges[i].Base {
		return fmt.Errorf("stream %d overlaps stream %d", s.SID, t.ranges[i].SID)
	}
	t.byID[s.SID] = s
	t.ranges = append(t.ranges, nil)
	copy(t.ranges[i+1:], t.ranges[i:])
	t.ranges[i] = s
	return nil
}

// Get returns the stream with the given ID, or nil.
func (t *Table) Get(sid ID) *Stream { return t.byID[sid] }

// FindByAddr returns the stream containing addr, or nil. This models the
// full remap-table walk the host performs on an SLB miss.
//
// The binary search is hand-inlined (same invariant as sort.Search over
// Base > addr): this sits on the simulator's per-access path, and the
// closure-based search pays an indirect call per probe.
func (t *Table) FindByAddr(addr uint64) *Stream {
	r := t.ranges
	lo, hi := 0, len(r)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r[mid].Base > addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return nil
	}
	if s := r[lo-1]; s.Contains(addr) {
		return s
	}
	return nil
}

// Len reports the number of registered streams.
func (t *Table) Len() int { return len(t.byID) }

// All returns the streams ordered by ID (a fresh slice).
func (t *Table) All() []*Stream {
	out := make([]*Stream, 0, len(t.byID))
	for _, s := range t.ranges {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}
