package stream

import (
	"testing"
	"testing/quick"
)

func TestTableIMetadataBits(t *testing.T) {
	// Table I of the paper: the common fields plus affine-only fields.
	if SIDBits != 9 {
		t.Errorf("sid = %d bits, want 9", SIDBits)
	}
	if BaseBits != 48 || SizeBits != 48 {
		t.Errorf("base/size = %d/%d bits, want 48/48", BaseBits, SizeBits)
	}
	if StrideBits != 48 || LengthBits != 48 || OrderBits != 3 {
		t.Errorf("stride/length/order = %d/%d/%d, want 48/48/3", StrideBits, LengthBits, OrderBits)
	}
	if MaxStreams != 512 {
		t.Errorf("MaxStreams = %d, want 512 (9-bit sid)", MaxStreams)
	}
}

func TestConfigureFlatAffine(t *testing.T) {
	s, err := Configure(1, Affine, 0x1000, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumElements() != 512 {
		t.Fatalf("elements = %d", s.NumElements())
	}
	if !s.ReadOnly {
		t.Fatal("streams must initialize read-only (§IV-B)")
	}
	id, ok := s.ElemID(0x1000 + 8*17)
	if !ok || id != 17 {
		t.Fatalf("ElemID = %d,%v; want 17,true", id, ok)
	}
	if s.ElemAddr(17) != 0x1000+8*17 {
		t.Fatalf("ElemAddr(17) = %#x", s.ElemAddr(17))
	}
}

func TestConfigureIndirect(t *testing.T) {
	s, err := Configure(2, Indirect, 0x8000, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if id, ok := s.ElemID(0x8000 + 4*100); !ok || id != 100 {
		t.Fatalf("ElemID = %d,%v", id, ok)
	}
	if _, ok := s.ElemID(0x8000 + 1024); ok {
		t.Fatal("address one past the end reported inside")
	}
}

func TestConfigureRejectsBadInput(t *testing.T) {
	if _, err := Configure(NoStream, Affine, 0, 64, 8); err == nil {
		t.Error("reserved sid accepted")
	}
	if _, err := Configure(1, Affine, 0, 0, 8); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Configure(1, Affine, 0, 65, 8); err == nil {
		t.Error("size not multiple of elemSize accepted")
	}
	if _, err := Configure(1, Affine, 0, 64, 0); err == nil {
		t.Error("zero elemSize accepted")
	}
	if _, err := Configure(1, Type(9), 0, 64, 8); err == nil {
		t.Error("bad type accepted")
	}
	if _, err := Configure(1, Affine, 1<<49, 64, 8); err == nil {
		t.Error("base beyond 48 bits accepted")
	}
}

func TestColumnMajorAccessToRowMajorMatrix(t *testing.T) {
	// 4x3 matrix (lenX=4 columns stored contiguously, lenY=3 rows),
	// accessed column-major: order YXZ (Y iterates fastest).
	s, err := ConfigureAffine3D(3, 0, 8, 4, 3, 1, OrderYXZ)
	if err != nil {
		t.Fatal(err)
	}
	// Element at storage (x=2, y=1): addr = (1*4+2)*8 = 48.
	// Access order enumerates y fastest: id = x*lenY + y = 2*3+1 = 7.
	id, ok := s.ElemID(48)
	if !ok || id != 7 {
		t.Fatalf("ElemID = %d,%v; want 7,true", id, ok)
	}
	if s.ElemAddr(7) != 48 {
		t.Fatalf("ElemAddr(7) = %d, want 48", s.ElemAddr(7))
	}
	// Consecutive access-order IDs walk down a column: addresses jump by
	// a full row (4*8 bytes).
	a0, a1 := s.ElemAddr(0), s.ElemAddr(1)
	if a1-a0 != 32 {
		t.Fatalf("column step = %d bytes, want 32", a1-a0)
	}
}

func TestStorageOrder3D(t *testing.T) {
	s, err := ConfigureAffine3D(4, 0x100, 4, 8, 4, 2, OrderXYZ)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumElements() != 64 {
		t.Fatalf("elements = %d", s.NumElements())
	}
	// Storage order means ElemID is the flat offset.
	for _, i := range []uint64{0, 1, 7, 8, 31, 63} {
		addr := 0x100 + i*4
		if id, ok := s.ElemID(addr); !ok || id != i {
			t.Fatalf("ElemID(%#x) = %d,%v; want %d", addr, id, ok, i)
		}
	}
}

// Property: ElemAddr and ElemID are inverse bijections over the stream
// for every access order.
func TestElemIDBijectionProperty(t *testing.T) {
	orders := []Order{OrderXYZ, OrderYXZ, OrderXZY, OrderZYX, OrderYZX, OrderZXY}
	for _, o := range orders {
		s, err := ConfigureAffine3D(5, 0x4000, 8, 5, 3, 2, o)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool)
		for id := uint64(0); id < s.NumElements(); id++ {
			addr := s.ElemAddr(id)
			if seen[addr] {
				t.Fatalf("order %d: duplicate address %#x", o, addr)
			}
			seen[addr] = true
			back, ok := s.ElemID(addr)
			if !ok || back != id {
				t.Fatalf("order %d: roundtrip id %d -> %#x -> %d,%v", o, id, addr, back, ok)
			}
		}
		if len(seen) != int(s.NumElements()) {
			t.Fatalf("order %d: %d distinct addresses for %d elements", o, len(seen), s.NumElements())
		}
	}
}

func TestElemAddrPanicsOutOfRange(t *testing.T) {
	s, _ := Configure(1, Affine, 0, 64, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ElemAddr did not panic")
		}
	}()
	s.ElemAddr(8)
}

func TestTableAddAndLookup(t *testing.T) {
	tbl := NewTable()
	a, _ := Configure(1, Affine, 0x1000, 0x1000, 8)
	b, _ := Configure(2, Indirect, 0x3000, 0x800, 4)
	if err := tbl.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(b); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if got := tbl.FindByAddr(0x1008); got != a {
		t.Fatalf("FindByAddr(0x1008) = %v", got)
	}
	if got := tbl.FindByAddr(0x3000); got != b {
		t.Fatalf("FindByAddr(0x3000) = %v", got)
	}
	if got := tbl.FindByAddr(0x2500); got != nil {
		t.Fatalf("gap address found stream %v", got)
	}
	if got := tbl.Get(2); got != b {
		t.Fatal("Get(2) wrong")
	}
	if tbl.Get(3) != nil {
		t.Fatal("Get(3) should be nil")
	}
}

func TestTableRejectsOverlapsAndDuplicates(t *testing.T) {
	tbl := NewTable()
	a, _ := Configure(1, Affine, 0x1000, 0x1000, 8)
	if err := tbl.Add(a); err != nil {
		t.Fatal(err)
	}
	dup, _ := Configure(1, Affine, 0x9000, 0x100, 8)
	if err := tbl.Add(dup); err == nil {
		t.Fatal("duplicate sid accepted")
	}
	over, _ := Configure(2, Affine, 0x1800, 0x1000, 8)
	if err := tbl.Add(over); err == nil {
		t.Fatal("overlapping range accepted")
	}
	before, _ := Configure(3, Affine, 0x800, 0x1000, 8)
	if err := tbl.Add(before); err == nil {
		t.Fatal("range overlapping from below accepted")
	}
}

func TestTableAllOrderedByID(t *testing.T) {
	tbl := NewTable()
	for _, sid := range []ID{5, 1, 3} {
		s, _ := Configure(sid, Affine, uint64(sid)*0x10000, 0x100, 8)
		if err := tbl.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	all := tbl.All()
	if len(all) != 3 || all[0].SID != 1 || all[1].SID != 3 || all[2].SID != 5 {
		t.Fatalf("All() order wrong: %v", all)
	}
}

// Property: FindByAddr agrees with a linear scan.
func TestFindByAddrProperty(t *testing.T) {
	tbl := NewTable()
	var streams []*Stream
	for i := 0; i < 20; i++ {
		s, _ := Configure(ID(i), Affine, uint64(i)*0x10000, 0x8000, 8)
		if err := tbl.Add(s); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	f := func(addr uint32) bool {
		a := uint64(addr) % (21 * 0x10000)
		got := tbl.FindByAddr(a)
		var want *Stream
		for _, s := range streams {
			if s.Contains(a) {
				want = s
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if Affine.String() != "affine" || Indirect.String() != "indirect" {
		t.Fatal("type strings wrong")
	}
	s, _ := Configure(7, Indirect, 0x100, 64, 8)
	if s.String() == "" {
		t.Fatal("empty stream string")
	}
}

func TestIterateAccessOrder(t *testing.T) {
	// Column-major access to a row-major 4x3 matrix: Iterate must yield
	// column-walk addresses (stride = one row = 32 bytes).
	s, err := ConfigureAffine3D(9, 0x1000, 8, 4, 3, 1, OrderYXZ)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint64
	s.Iterate(func(id, addr uint64) bool {
		addrs = append(addrs, addr)
		return true
	})
	if len(addrs) != 12 {
		t.Fatalf("iterated %d elements, want 12", len(addrs))
	}
	// First three addresses walk down column 0.
	if addrs[1]-addrs[0] != 32 || addrs[2]-addrs[1] != 32 {
		t.Fatalf("column walk strides: %v", addrs[:3])
	}
	// Early stop.
	count := 0
	s.Iterate(func(id, addr uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop iterated %d", count)
	}
}

func TestBlockOf(t *testing.T) {
	s, _ := Configure(10, Affine, 0, 8192, 8)
	if s.BlockOf(0, 1024) != 0 || s.BlockOf(127, 1024) != 0 {
		t.Fatal("first block wrong")
	}
	if s.BlockOf(128, 1024) != 1 {
		t.Fatal("second block wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BlockOf(0) did not panic")
		}
	}()
	s.BlockOf(0, 0)
}
