package streamcache

import (
	"fmt"
	"sort"

	"ndpext/internal/stream"
)

// Allocation is one stream's row of the stream remap table (Fig. 3b):
// how many DRAM rows each NDP unit contributes to caching the stream,
// where they start, and which replication group each unit belongs to.
// Each replication group independently caches one full copy of (its
// share of) the stream.
type Allocation struct {
	Shares  []uint32 // rows per unit (RShares)
	RowBase []uint32 // first allocated row per unit (RRowBase)
	Groups  []uint8  // replication group per unit (RGroups)
}

// NewAllocation returns an empty allocation over n units (all units in
// group 0, no space).
func NewAllocation(n int) Allocation {
	return Allocation{
		Shares:  make([]uint32, n),
		RowBase: make([]uint32, n),
		Groups:  make([]uint8, n),
	}
}

// Clone returns a deep copy.
func (a Allocation) Clone() Allocation {
	c := NewAllocation(len(a.Shares))
	copy(c.Shares, a.Shares)
	copy(c.RowBase, a.RowBase)
	copy(c.Groups, a.Groups)
	return c
}

// Validate checks structural consistency for n units.
func (a Allocation) Validate(n int) error {
	if len(a.Shares) != n || len(a.RowBase) != n || len(a.Groups) != n {
		return fmt.Errorf("streamcache: allocation vectors sized %d/%d/%d, want %d",
			len(a.Shares), len(a.RowBase), len(a.Groups), n)
	}
	for u, s := range a.Shares {
		if s >= 1<<RSharesBits {
			return fmt.Errorf("streamcache: unit %d share %d exceeds %d bits", u, s, RSharesBits)
		}
		if a.RowBase[u] >= 1<<RRowBaseBits {
			return fmt.Errorf("streamcache: unit %d row base %d exceeds %d bits", u, a.RowBase[u], RRowBaseBits)
		}
		if a.Groups[u] >= 1<<RGroupsBits {
			return fmt.Errorf("streamcache: unit %d group %d exceeds %d bits", u, a.Groups[u], RGroupsBits)
		}
	}
	return nil
}

// TotalRows sums the allocated rows across all units.
func (a Allocation) TotalRows() uint64 {
	var t uint64
	for _, s := range a.Shares {
		t += uint64(s)
	}
	return t
}

// GroupRows sums the allocated rows within group g.
func (a Allocation) GroupRows(g uint8) uint64 {
	var t uint64
	for u, s := range a.Shares {
		if a.Groups[u] == g {
			t += uint64(s)
		}
	}
	return t
}

// GroupIDs returns the sorted set of groups that own at least one row.
func (a Allocation) GroupIDs() []uint8 {
	seen := map[uint8]bool{}
	for u, s := range a.Shares {
		if s > 0 {
			seen[a.Groups[u]] = true
		}
	}
	out := make([]uint8, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// spot is one consistent-hashing position: the r-th allocated row of the
// stream on a unit. Identifying spots by ordinal (rather than absolute
// row number) keeps an element's spot stable when only the RRowBase
// moves, which is what lets reconfiguration keep most cached data in
// place (§V-D).
type spot struct {
	hash uint64
	unit int32
	ord  uint32 // row ordinal within this unit's share
}

// ring is the consistent-hash ring for one (stream, group).
type ring struct {
	spots []spot // sorted by hash
}

// hash64 mixes a key with a seed (SplitMix64 finalizer).
func hash64(key, seed uint64) uint64 {
	x := key ^ (seed * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// buildRing constructs the ring for stream sid restricted to units of
// group g under allocation a. A nil ring means the group has no space.
//
// The spot hash deliberately ignores the group ID: group numbering is an
// artifact of the optimizer's output ordering and may shift between
// epochs even when the physical grouping is unchanged, and any change to
// the spot hashes remaps (and so invalidates) every cached item. Seeding
// by stream only keeps (unit, ordinal) spots stable across relabelings.
func buildRing(sid stream.ID, a Allocation, g uint8) *ring {
	var spots []spot
	seed := uint64(sid) << 8
	for u, s := range a.Shares {
		if a.Groups[u] != g {
			continue
		}
		for r := uint32(0); r < s; r++ {
			key := uint64(u)<<32 | uint64(r)
			spots = append(spots, spot{hash: hash64(key, seed), unit: int32(u), ord: r})
		}
	}
	if len(spots) == 0 {
		return nil
	}
	sort.Slice(spots, func(i, j int) bool {
		if spots[i].hash != spots[j].hash {
			return spots[i].hash < spots[j].hash
		}
		if spots[i].unit != spots[j].unit {
			return spots[i].unit < spots[j].unit
		}
		return spots[i].ord < spots[j].ord
	})
	return &ring{spots: spots}
}

// locate maps item id (a block ID for affine streams, an element ID for
// indirect ones) to its home spot: the first spot clockwise of the item's
// hash.
func (r *ring) locate(sid stream.ID, id uint64) spot {
	h := hash64(id, uint64(sid)*0x6c62272e07bb0142+1)
	i := sort.Search(len(r.spots), func(i int) bool { return r.spots[i].hash >= h })
	if i == len(r.spots) {
		i = 0
	}
	return r.spots[i]
}

// size reports the number of spots.
func (r *ring) size() int { return len(r.spots) }
