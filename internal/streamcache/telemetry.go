package streamcache

import "ndpext/internal/telemetry"

// ReportTelemetry publishes the controller's counters into the registry
// under the given prefix (e.g. "streamcache").
func (c *Controller) ReportTelemetry(r *telemetry.Registry, prefix string) {
	r.PutUint(prefix+".lookups", c.stats.Lookups)
	r.PutUint(prefix+".hits", c.stats.Hits)
	r.PutUint(prefix+".misses", c.stats.Misses)
	r.PutUint(prefix+".bypasses", c.stats.Bypasses)
	r.PutUint(prefix+".no_space", c.stats.NoSpace)
	r.PutUint(prefix+".slb_hits", c.stats.SLBHits)
	r.PutUint(prefix+".slb_misses", c.stats.SLBMisses)
	r.PutUint(prefix+".write_exceptions", c.stats.WriteExceptions)
	r.PutUint(prefix+".writebacks", c.stats.Writebacks)
}
