package streamcache

import (
	"testing"

	"ndpext/internal/stream"
)

// TestFig3CachingScheme reproduces the worked remapping example of paper
// Fig. 3: stream A has cache space in four NDP units organized as two
// replication groups (0,1) and (2,3); with RShares = (8, 6, 4, 2) the
// first two units hold 8 and 6 rows as group 0 and the next two hold 4
// and 2 rows as group 1. Accesses from units 0/1 must be served within
// group 0, accesses from units 2/3 within group 1, and both groups must
// independently cache copies of the same data.
func TestFig3CachingScheme(t *testing.T) {
	tbl := stream.NewTable()
	a, err := stream.Configure(1, stream.Indirect, 0x100000, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(a); err != nil {
		t.Fatal(err)
	}
	c := NewController(DefaultParams(), 4, tbl)

	alloc := NewAllocation(4)
	alloc.Shares = []uint32{8, 6, 4, 2}
	alloc.Groups = []uint8{0, 0, 1, 1}
	if _, err := c.Apply(map[stream.ID]Allocation{1: alloc}, false); err != nil {
		t.Fatal(err)
	}

	if got := alloc.GroupRows(0); got != 14 {
		t.Fatalf("group 0 rows = %d, want 14 (8+6)", got)
	}
	if got := alloc.GroupRows(1); got != 6 {
		t.Fatalf("group 1 rows = %d, want 6 (4+2)", got)
	}

	// Requests from each unit stay inside that unit's replication group.
	for e := uint64(0); e < 2000; e++ {
		addr := a.Base + e*4
		if r := c.Lookup(0, addr, false); r.Home != 0 && r.Home != 1 {
			t.Fatalf("group-0 access served by unit %d", r.Home)
		}
		if r := c.Lookup(2, addr, false); r.Home != 2 && r.Home != 3 {
			t.Fatalf("group-1 access served by unit %d", r.Home)
		}
	}
	// Both groups hold independent copies: residency exists on both sides.
	left := c.ResidentItems(0, 1) + c.ResidentItems(1, 1)
	right := c.ResidentItems(2, 1) + c.ResidentItems(3, 1)
	if left == 0 || right == 0 {
		t.Fatalf("replication groups not independent: left=%d right=%d", left, right)
	}
	// The uneven shares must show in the within-group distribution.
	if c.ResidentItems(0, 1) <= c.ResidentItems(1, 1)/2 {
		t.Fatalf("8:6 shares but resident %d vs %d", c.ResidentItems(0, 1), c.ResidentItems(1, 1))
	}
}

// TestSLBExampleFromFig3c mirrors Fig. 3(c): looking up an address inside
// a configured stream identifies the stream and its element ID from the
// base and element size.
func TestSLBExampleFromFig3c(t *testing.T) {
	tbl := stream.NewTable()
	// The paper's example address 0x5CA1AB00 inside stream 0x1 with
	// element ID 44: build an analogous stream where base + 44*elemSize
	// equals the probe address.
	const elem = 8
	base := uint64(0x5CA1AB00) - 44*elem
	s, err := stream.Configure(1, stream.Indirect, base, 4096*elem, elem)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(s); err != nil {
		t.Fatal(err)
	}
	c := NewController(DefaultParams(), 2, tbl)
	alloc := NewAllocation(2)
	alloc.Shares = []uint32{8, 6}
	if _, err := c.Apply(map[stream.ID]Allocation{1: alloc}, false); err != nil {
		t.Fatal(err)
	}
	r := c.Lookup(0, 0x5CA1AB00, false)
	if r.SID != 1 {
		t.Fatalf("address resolved to stream %d", r.SID)
	}
	if r.ItemID != 44 {
		t.Fatalf("element ID = %d, want 44", r.ItemID)
	}
}

// TestRemapRowBaseAddressing verifies that the DRAM row served for an
// item is RRowBase[unit] + the consistent-hash ordinal, as in §IV-C's
// final address computation step.
func TestRemapRowBaseAddressing(t *testing.T) {
	tbl := stream.NewTable()
	s, _ := stream.Configure(1, stream.Indirect, 0x1000, 4096, 4)
	if err := tbl.Add(s); err != nil {
		t.Fatal(err)
	}
	c := NewController(DefaultParams(), 2, tbl)
	alloc := NewAllocation(2)
	alloc.Shares = []uint32{4, 4}
	alloc.RowBase = []uint32{100, 200}
	if _, err := c.Apply(map[stream.ID]Allocation{1: alloc}, false); err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 512; e++ {
		r := c.Lookup(0, 0x1000+e*4, false)
		lo := int64(alloc.RowBase[r.Home])
		if r.HomeRow < lo || r.HomeRow >= lo+int64(alloc.Shares[r.Home]) {
			t.Fatalf("home row %d outside unit %d's range [%d, %d)",
				r.HomeRow, r.Home, lo, lo+int64(alloc.Shares[r.Home]))
		}
	}
}

// TestSLBThrashingManyStreams: with more streams than SLB entries per
// unit, the SLB must keep working (LRU) with a degraded hit rate, never
// wrong results.
func TestSLBThrashingManyStreams(t *testing.T) {
	tbl := stream.NewTable()
	p := DefaultParams()
	const streams = 48 // > 32 SLB entries
	for i := 0; i < streams; i++ {
		s, err := stream.Configure(stream.ID(i+1), stream.Indirect, uint64(i+1)<<22, 4096, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	c := NewController(p, 1, tbl)
	allocs := map[stream.ID]Allocation{}
	for i := 0; i < streams; i++ {
		a := NewAllocation(1)
		a.Shares[0] = 2
		a.RowBase[0] = uint32(i * 2)
		allocs[stream.ID(i+1)] = a
	}
	if _, err := c.Apply(allocs, false); err != nil {
		t.Fatal(err)
	}
	// Round-robin over all streams: every SLB access misses after warmup.
	for round := 0; round < 3; round++ {
		for i := 0; i < streams; i++ {
			r := c.Lookup(0, uint64(i+1)<<22, false)
			if r.SID != stream.ID(i+1) {
				t.Fatalf("wrong stream resolved: %d", r.SID)
			}
		}
	}
	st := c.Stats()
	if st.SLBMisses <= uint64(streams) {
		t.Fatalf("SLB misses = %d; thrashing workload should keep missing", st.SLBMisses)
	}
}

// TestUnitSRAMBudget checks the §VI SRAM inventory: 4544 B SLB + 64 kB
// ATA + 32 kB samplers + 64 B bitvector, totalling well under the 128 kB
// metadata cache the baselines get for fairness.
func TestUnitSRAMBudget(t *testing.T) {
	slb, ata, samplers, bitvector, total := UnitSRAMBytes()
	if slb != 4544 {
		t.Errorf("SLB = %d B, want 4544", slb)
	}
	if ata != 64<<10 {
		t.Errorf("ATA = %d B, want 64 kB", ata)
	}
	if samplers != 32<<10 {
		t.Errorf("samplers = %d B, want 32 kB", samplers)
	}
	if bitvector != 64 {
		t.Errorf("bitvector = %d B, want 64", bitvector)
	}
	if total >= 128<<10 {
		t.Errorf("total per-unit SRAM %d B exceeds the baselines' 128 kB metadata cache", total)
	}
}
