package streamcache

import (
	"testing"
	"testing/quick"

	"ndpext/internal/sim"
	"ndpext/internal/stream"
)

// newTestController builds a 4-unit controller with one affine stream
// (sid 1, 64 kB of 8-byte elements) and one indirect stream (sid 2,
// 32 kB of 4-byte elements).
func newTestController(t *testing.T, ways int) (*Controller, *stream.Stream, *stream.Stream) {
	t.Helper()
	tbl := stream.NewTable()
	aff, err := stream.Configure(1, stream.Affine, 0x10000, 64<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := stream.Configure(2, stream.Indirect, 0x100000, 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(aff); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(ind); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.IndirectWays = ways
	return NewController(p, 4, tbl), aff, ind
}

// evenAlloc gives sid `rows` rows on every unit, one global group.
func evenAlloc(units int, rows uint32) Allocation {
	a := NewAllocation(units)
	for u := range a.Shares {
		a.Shares[u] = rows
		a.RowBase[u] = 0
	}
	return a
}

// replicatedAlloc puts each unit in its own group (full replication).
func replicatedAlloc(units int, rows uint32) Allocation {
	a := evenAlloc(units, rows)
	for u := range a.Groups {
		a.Groups[u] = uint8(u)
	}
	return a
}

func install(t *testing.T, c *Controller, sid stream.ID, a Allocation) {
	t.Helper()
	if _, err := c.Apply(map[stream.ID]Allocation{sid: a}, false); err != nil {
		t.Fatal(err)
	}
}

func TestRemapTableSizeMatchesPaper(t *testing.T) {
	if got := RemapTableBytes(512, 64); got != 160<<10 {
		t.Fatalf("remap table = %d bytes, want 160 kB", got)
	}
	if RemapEntryBits != 40 {
		t.Fatalf("entry = %d bits, want 40", RemapEntryBits)
	}
	if ATABytes != 64<<10 {
		t.Fatalf("ATA = %d bytes, want 64 kB", ATABytes)
	}
}

func TestBypassForNonStreamAddress(t *testing.T) {
	c, _, _ := newTestController(t, 1)
	r := c.Lookup(0, 0xDEAD0000, false)
	if !r.Bypass || r.SID != stream.NoStream {
		t.Fatalf("non-stream address not bypassed: %+v", r)
	}
	if c.Stats().Bypasses != 1 {
		t.Fatal("bypass not counted")
	}
}

func TestNoSpaceGoesToExtendedMemory(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	r := c.Lookup(0, aff.Base, false)
	if !r.NoSpace || r.Hit {
		t.Fatalf("unallocated stream access: %+v", r)
	}
	if r.FetchBytes != c.Params().BlockBytes {
		t.Fatalf("affine fetch = %d, want block %d", r.FetchBytes, c.Params().BlockBytes)
	}
}

func TestMissThenHitSameBlock(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	install(t, c, aff.SID, evenAlloc(4, 64))

	r1 := c.Lookup(0, aff.Base, false)
	if r1.Hit {
		t.Fatal("cold access hit")
	}
	if r1.FetchBytes != c.Params().BlockBytes {
		t.Fatalf("fetch = %d", r1.FetchBytes)
	}
	// Another element in the same 1 kB block must hit (prefetch effect).
	r2 := c.Lookup(0, aff.Base+512, false)
	if !r2.Hit {
		t.Fatal("same-block access missed")
	}
	if r2.Home != r1.Home || r2.HomeRow != r1.HomeRow {
		t.Fatal("same block mapped to different home")
	}
	// An element in a different block may miss.
	ss := c.StreamStatsFor(aff.SID)
	if ss.Hits != 1 || ss.Misses != 1 {
		t.Fatalf("stream stats %+v", ss)
	}
}

func TestIndirectElementGranularity(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	install(t, c, ind.SID, evenAlloc(4, 64))

	r1 := c.Lookup(0, ind.Base, false)
	if r1.Hit || r1.FetchBytes != int(ind.ElemSize) {
		t.Fatalf("indirect cold access: %+v", r1)
	}
	if !c.Lookup(0, ind.Base, false).Hit {
		t.Fatal("repeat access missed")
	}
	// Neighbouring elements are cached individually: no prefetch.
	if c.Lookup(0, ind.Base+uint64(ind.ElemSize), false).Hit {
		t.Fatal("adjacent indirect element hit without fetch")
	}
}

func TestReplicationGroupsServeLocally(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	// Each unit its own group: every access is served from the local unit.
	install(t, c, aff.SID, replicatedAlloc(4, 64))
	for unit := 0; unit < 4; unit++ {
		for e := uint64(0); e < 32; e++ {
			r := c.Lookup(unit, aff.Base+e*1024, false)
			if r.Home != unit {
				t.Fatalf("unit %d access served by unit %d despite full replication", unit, r.Home)
			}
		}
	}
	// Each group caches its own copy: the same block occupies space in
	// all four units after all four access it.
	total := 0
	for u := 0; u < 4; u++ {
		total += c.ResidentItems(u, aff.SID)
	}
	if total < 4 {
		t.Fatalf("replicated copies = %d resident items, want >= 4", total)
	}
}

func TestSharedGroupSpreadsByShares(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	a := NewAllocation(4)
	a.Shares = []uint32{30, 10, 0, 0} // single group, uneven shares
	install(t, c, ind.SID, a)

	counts := map[int]int{}
	for e := uint64(0); e < 4096; e++ {
		r := c.Lookup(0, ind.Base+e*4, false)
		counts[r.Home]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("units without shares served accesses: %v", counts)
	}
	if counts[0] <= counts[1] {
		t.Fatalf("shares 30:10 but home counts %v", counts)
	}
}

func TestWriteExceptionCollapsesGroups(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	install(t, c, aff.SID, replicatedAlloc(4, 64))

	// Warm all four replicas of block 0.
	for u := 0; u < 4; u++ {
		c.Lookup(u, aff.Base, false)
	}
	if !aff.ReadOnly {
		t.Fatal("stream should start read-only")
	}
	r := c.Lookup(0, aff.Base, true)
	if !r.WriteException {
		t.Fatal("first write did not raise an exception")
	}
	if aff.ReadOnly {
		t.Fatal("exception did not clear the read-only bit")
	}
	if r.ExceptionInvalidations < 3 {
		t.Fatalf("invalidated %d replicas, want >= 3", r.ExceptionInvalidations)
	}
	a, _ := c.Allocation(aff.SID)
	if len(a.GroupIDs()) != 1 {
		t.Fatalf("groups after exception: %v", a.GroupIDs())
	}
	// A second write must not raise another exception.
	if r2 := c.Lookup(1, aff.Base, true); r2.WriteException {
		t.Fatal("second write raised an exception")
	}
}

func TestApplyRejectsReplicatedWritableStream(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	aff.ReadOnly = false
	if _, err := c.Apply(map[stream.ID]Allocation{aff.SID: replicatedAlloc(4, 8)}, false); err == nil {
		t.Fatal("replicated allocation for a writable stream accepted")
	}
}

func TestApplyRejectsUnknownStream(t *testing.T) {
	c, _, _ := newTestController(t, 1)
	if _, err := c.Apply(map[stream.ID]Allocation{400: evenAlloc(4, 8)}, false); err == nil {
		t.Fatal("allocation for unknown stream accepted")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	ind.ReadOnly = false // pretend the exception already happened
	a := NewAllocation(4)
	a.Shares = []uint32{1, 0, 0, 0} // one row: tiny capacity forces evictions
	install(t, c, ind.SID, a)

	sawWriteback := false
	for e := uint64(0); e < 4096; e++ {
		r := c.Lookup(0, ind.Base+e*4, true)
		if r.WritebackBytes > 0 {
			sawWriteback = true
			break
		}
	}
	if !sawWriteback {
		t.Fatal("capacity pressure with dirty data produced no writebacks")
	}
}

func TestSLBMissOnFirstTouchThenHits(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	install(t, c, aff.SID, evenAlloc(4, 64))
	r := c.Lookup(0, aff.Base, false)
	if !r.SLBMissLocal {
		t.Fatal("first touch should miss the SLB")
	}
	r = c.Lookup(0, aff.Base, false)
	if r.SLBMissLocal {
		t.Fatal("second touch missed the SLB")
	}
}

func TestSLBCapacityEviction(t *testing.T) {
	tbl := stream.NewTable()
	p := DefaultParams()
	p.SLBEntries = 2
	var sids []stream.ID
	for i := 0; i < 3; i++ {
		s, err := stream.Configure(stream.ID(i+1), stream.Indirect, uint64(i+1)<<20, 4096, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Add(s); err != nil {
			t.Fatal(err)
		}
		sids = append(sids, s.SID)
	}
	c := NewController(p, 1, tbl)
	for _, sid := range sids {
		install(t, c, sid, evenAlloc(1, 4))
	}
	c.Lookup(0, 1<<20, false) // miss, fill
	c.Lookup(0, 2<<20, false) // miss, fill
	c.Lookup(0, 3<<20, false) // miss, evicts sid 1 (LRU)
	if r := c.Lookup(0, 1<<20, false); !r.SLBMissLocal {
		t.Fatal("evicted SLB entry still hit")
	}
}

func TestConsistentHashingKeepsDataOnGrow(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	install(t, c, ind.SID, evenAlloc(4, 32))
	for e := uint64(0); e < 2048; e++ {
		c.Lookup(0, ind.Base+e*4, false)
	}
	grown := evenAlloc(4, 40) // +8 rows per unit
	rs, err := c.Apply(map[stream.ID]Allocation{ind.SID: grown}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ItemsKept == 0 {
		t.Fatal("consistent hashing kept nothing on a grow")
	}
	frac := float64(rs.ItemsKept) / float64(rs.ItemsExamined)
	if frac < 0.5 {
		t.Fatalf("kept only %.2f of items growing 32->40 rows; consistent hashing should keep most", frac)
	}
}

func TestBulkInvalidationDropsEverything(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	install(t, c, ind.SID, evenAlloc(4, 32))
	for e := uint64(0); e < 2048; e++ {
		c.Lookup(0, ind.Base+e*4, false)
	}
	rs, err := c.Apply(map[stream.ID]Allocation{ind.SID: evenAlloc(4, 40)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ItemsKept != 0 || rs.ItemsDropped == 0 {
		t.Fatalf("bulk invalidation stats: %+v", rs)
	}
	for u := 0; u < 4; u++ {
		if c.ResidentItems(u, ind.SID) != 0 {
			t.Fatalf("unit %d still has resident items after bulk invalidation", u)
		}
	}
}

func TestConsistentBeatsBulkOnInvalidations(t *testing.T) {
	// The §V-D claim, at model scale: consistent hashing drops fewer
	// items than bulk invalidation for the same reconfiguration.
	runOne := func(consistent bool) int {
		c, _, ind := newTestController(t, 1)
		install(t, c, ind.SID, evenAlloc(4, 32))
		for e := uint64(0); e < 2048; e++ {
			c.Lookup(0, ind.Base+e*4, false)
		}
		rs, err := c.Apply(map[stream.ID]Allocation{ind.SID: evenAlloc(4, 36)}, consistent)
		if err != nil {
			t.Fatal(err)
		}
		return rs.ItemsDropped
	}
	if dc, db := runOne(true), runOne(false); dc >= db {
		t.Fatalf("consistent dropped %d >= bulk %d", dc, db)
	}
}

func TestApplyIdenticalAllocationIsNoOp(t *testing.T) {
	c, _, ind := newTestController(t, 1)
	a := evenAlloc(4, 32)
	install(t, c, ind.SID, a)
	for e := uint64(0); e < 512; e++ {
		c.Lookup(0, ind.Base+e*4, false)
	}
	rs, err := c.Apply(map[stream.ID]Allocation{ind.SID: a.Clone()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rs.StreamsChanged != 0 || rs.ItemsDropped != 0 {
		t.Fatalf("identical reconfig disturbed the cache: %+v", rs)
	}
}

func TestHigherAssociativityNeverIncreasesConflicts(t *testing.T) {
	// Fig. 9(a): with the same capacity, higher associativity should not
	// produce more misses on a conflict-heavy pattern.
	missesAt := func(ways int) uint64 {
		c, _, ind := newTestController(t, ways)
		a := NewAllocation(4)
		a.Shares = []uint32{2, 0, 0, 0}
		install(t, c, ind.SID, a)
		// Two passes over a working set larger than capacity.
		for pass := 0; pass < 2; pass++ {
			for e := uint64(0); e < 1024; e += 2 {
				c.Lookup(0, ind.Base+e*4, false)
			}
		}
		return c.Stats().Misses
	}
	m1, m8 := missesAt(1), missesAt(8)
	if m8 > m1+m1/10 {
		t.Fatalf("8-way misses (%d) notably exceed direct-mapped (%d)", m8, m1)
	}
}

func TestAllocationValidate(t *testing.T) {
	a := NewAllocation(4)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(5); err == nil {
		t.Fatal("wrong unit count validated")
	}
	a.Groups[0] = 64
	if err := a.Validate(4); err == nil {
		t.Fatal("6-bit group overflow validated")
	}
}

func TestRingDistributionRoughlyProportional(t *testing.T) {
	a := NewAllocation(2)
	a.Shares = []uint32{300, 100}
	r := buildRing(7, a, 0)
	if r.size() != 400 {
		t.Fatalf("ring size = %d", r.size())
	}
	counts := [2]int{}
	for id := uint64(0); id < 20000; id++ {
		counts[r.locate(7, id).unit]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.2 || ratio > 4.2 {
		t.Fatalf("3:1 shares gave placement ratio %.2f (%v)", ratio, counts)
	}
}

func TestEpochAccessesResets(t *testing.T) {
	c, aff, _ := newTestController(t, 1)
	install(t, c, aff.SID, evenAlloc(4, 8))
	c.Lookup(2, aff.Base, false)
	c.Lookup(2, aff.Base, false)
	acc := c.EpochAccesses()
	if acc[2][aff.SID] != 2 {
		t.Fatalf("epoch access count = %d, want 2", acc[2][aff.SID])
	}
	acc = c.EpochAccesses()
	if len(acc[2]) != 0 {
		t.Fatal("EpochAccesses did not reset")
	}
}

func TestAffineAssociativityAbsorbsConflicts(t *testing.T) {
	// A strided sweep that direct-mapped blocks would thrash: with the
	// ATA's set-associative organization (AffineWays=8) the second pass
	// must mostly hit.
	missesWithWays := func(ways int) float64 {
		tbl := stream.NewTable()
		aff, err := stream.Configure(1, stream.Affine, 0x10000, 128<<10, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Add(aff); err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.AffineWays = ways
		c := NewController(p, 4, tbl)
		a := NewAllocation(4)
		for u := range a.Shares {
			a.Shares[u] = 32 // 128 rows total = 2x the 64-block footprint
		}
		if _, err := c.Apply(map[stream.ID]Allocation{1: a}, false); err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 4; pass++ {
			for b := uint64(0); b < 128; b++ { // one access per block
				c.Lookup(0, aff.Base+b*1024, false)
			}
		}
		st := c.Stats()
		return float64(st.Misses) / float64(st.Misses+st.Hits)
	}
	direct := missesWithWays(1)
	assoc := missesWithWays(8)
	if assoc >= direct-0.05 {
		t.Fatalf("8-way ATA (miss %.3f) not clearly better than direct-mapped blocks (%.3f)", assoc, direct)
	}
	// 4 passes over 128 blocks: 25% cold misses are unavoidable; the
	// associativity must keep conflicts to a small residual (consistent
	// hashing's unit-load variance makes a few sets cyclically overloaded,
	// which no replacement policy fully absorbs).
	if assoc > 0.35 {
		t.Fatalf("8-way ATA miss rate %.3f; repeated sweep over fitting data should mostly hit", assoc)
	}
}

func TestWayPredictionMispredicts(t *testing.T) {
	tbl := stream.NewTable()
	ind, err := stream.Configure(1, stream.Indirect, 0x100000, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Add(ind); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.IndirectWays = 4
	p.WayPredict = true
	c := NewController(p, 1, tbl)
	a := NewAllocation(1)
	a.Shares[0] = 128
	if _, err := c.Apply(map[stream.ID]Allocation{1: a}, false); err != nil {
		t.Fatal(err)
	}
	// Alternate between elements until two land in the same set; the MRU
	// predictor must then mispredict on ping-pong accesses.
	saw := false
	for e := uint64(0); e < 4096 && !saw; e++ {
		c.Lookup(0, ind.Base+e*4, false)
		r := c.Lookup(0, ind.Base+e*4, false)
		if !r.Hit {
			t.Fatal("repeat access missed")
		}
		// Ping-pong against a prior element.
		for f := uint64(0); f < e; f++ {
			c.Lookup(0, ind.Base+f*4, false)
			if r2 := c.Lookup(0, ind.Base+e*4, false); r2.Hit && r2.WayMispredict {
				saw = true
				break
			}
		}
	}
	if !saw {
		t.Fatal("way predictor never mispredicted under ping-pong accesses")
	}
}

// Property: under random allocations and accesses, Lookup never panics,
// served homes always hold shares for the requester's group, and hit
// accounting stays consistent.
func TestLookupInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		tbl := stream.NewTable()
		nStreams := 1 + rng.Intn(6)
		for i := 0; i < nStreams; i++ {
			typ := stream.Affine
			if rng.Intn(2) == 0 {
				typ = stream.Indirect
			}
			s, err := stream.Configure(stream.ID(i+1), typ,
				uint64(i+1)<<22, uint64(1+rng.Intn(32))*4096, 4)
			if err != nil {
				return false
			}
			if err := tbl.Add(s); err != nil {
				return false
			}
		}
		const units = 4
		c := NewController(DefaultParams(), units, tbl)
		allocs := map[stream.ID]Allocation{}
		for i := 0; i < nStreams; i++ {
			a := NewAllocation(units)
			groups := 1 + rng.Intn(2)
			for u := 0; u < units; u++ {
				a.Shares[u] = uint32(rng.Intn(20))
				a.Groups[u] = uint8(u * groups / units)
			}
			allocs[stream.ID(i+1)] = a
		}
		if _, err := c.Apply(allocs, rng.Intn(2) == 0); err != nil {
			return false
		}
		for k := 0; k < 500; k++ {
			si := 1 + rng.Intn(nStreams)
			s := tbl.Get(stream.ID(si))
			addr := s.Base + rng.Uint64n(s.Size)
			unit := rng.Intn(units)
			r := c.Lookup(unit, addr, rng.Intn(8) == 0)
			if r.Bypass {
				return false // all addresses are inside streams
			}
			if !r.NoSpace {
				a := allocs[s.SID]
				if r.Home < 0 || r.Home >= units {
					return false
				}
				// The home must belong to the requester's group and
				// hold rows (modulo a write exception collapsing groups).
				cur, _ := c.Allocation(s.SID)
				if cur.Shares[r.Home] == 0 {
					return false
				}
				_ = a
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses+st.NoSpace+st.Bypasses == st.Lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
