package streamcache

import (
	"fmt"

	"ndpext/internal/stream"
)

// Controller is the stream cache of the whole NDP system: the centralized
// remap state plus the per-unit SLBs and resident-item tracking. The
// system simulator calls Lookup for every L1 miss and charges latencies
// according to the returned route; the host runtime calls Apply at each
// epoch boundary with the new configuration.
// Controller state reached on every access (allocations, rings,
// per-stream stats) is held in dense arrays indexed by the 9-bit stream
// ID instead of maps: the per-access Lookup then costs plain loads where
// the map version paid a hash and probe per structure.
type Controller struct {
	params   Params
	numUnits int
	table    *stream.Table
	allocs   []Allocation // by sid; zero Shares length = none installed
	hasAlloc []bool       // by sid
	rings    [][]*ring    // by sid, then by group ID (nil = no ring)
	units    []*unitState
	stats    Stats
	perSID   []StreamStats // by sid
}

// Stats aggregates controller-wide activity.
type Stats struct {
	Lookups         uint64
	Hits            uint64
	Misses          uint64
	Bypasses        uint64 // non-stream accesses (direct to extended memory)
	NoSpace         uint64 // stream accesses with no allocated cache space
	SLBHits         uint64
	SLBMisses       uint64
	WriteExceptions uint64
	Writebacks      uint64
}

// StreamStats tracks per-stream hit behaviour (used for Fig. 7 miss
// rates and by the profiler).
type StreamStats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses/(hits+misses), or 0 when idle.
func (s StreamStats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// NewController builds the stream cache over numUnits NDP units, using
// the stream registry tbl. It panics on invalid parameters (construction
// configuration, not runtime input).
func NewController(p Params, numUnits int, tbl *stream.Table) *Controller {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numUnits <= 0 {
		panic(fmt.Sprintf("streamcache: numUnits = %d", numUnits))
	}
	c := &Controller{
		params:   p,
		numUnits: numUnits,
		table:    tbl,
		allocs:   make([]Allocation, stream.MaxStreams),
		hasAlloc: make([]bool, stream.MaxStreams),
		rings:    make([][]*ring, stream.MaxStreams),
		perSID:   make([]StreamStats, stream.MaxStreams),
	}
	for i := 0; i < numUnits; i++ {
		c.units = append(c.units, newUnitState(p.SLBEntries))
	}
	return c
}

// Params returns the design parameters.
func (c *Controller) Params() Params { return c.params }

// NumUnits returns the unit count.
func (c *Controller) NumUnits() int { return c.numUnits }

// Table returns the stream registry.
func (c *Controller) Table() *stream.Table { return c.table }

// Allocation returns the current allocation for sid (zero-value
// allocation if none installed).
func (c *Controller) Allocation(sid stream.ID) (Allocation, bool) {
	if int(sid) >= len(c.allocs) || !c.hasAlloc[sid] {
		return Allocation{}, false
	}
	return c.allocs[sid], true
}

// ringOf returns the consistent-hash ring for (sid, group), or nil.
func (c *Controller) ringOf(sid stream.ID, g uint8) *ring {
	rs := c.rings[sid]
	if int(g) >= len(rs) {
		return nil
	}
	return rs[g]
}

// Lookup is the result of resolving one memory access through the stream
// cache. Latency composition happens in the system simulator; this
// captures the route and the functional outcome.
type Lookup struct {
	SID    stream.ID
	Bypass bool // not a stream: access extended memory directly

	SLBMissLocal bool // requester's SLB missed (host refill round trip)
	SLBMissHome  bool // home unit's SLB missed

	Home    int    // unit whose DRAM serves/caches the item
	HomeRow int64  // absolute DRAM row at the home unit
	Affine  bool   // affine stream (ATA lookup) vs indirect (embedded tag)
	ItemID  uint64 // block ID (affine) or element ID (indirect)

	Hit     bool
	NoSpace bool // no cache space allocated for this unit's group
	// WayMispredict reports an MRU way-predictor miss on a cache hit
	// (only when Params.WayPredict and IndirectWays > 1): the home unit
	// pays a second DRAM access to find the right way.
	WayMispredict bool
	FetchBytes    int // bytes fetched from extended memory on a miss
	AccessBytes   int // bytes moved between requester and home on this access

	WritebackBytes int // dirty victim written back to extended memory

	WriteException         bool // first write to a read-only stream (§IV-B)
	ExceptionInvalidations int  // replicas dropped by the exception
}

// Lookup resolves the access (addr, write) issued by NDP unit `unit`.
func (c *Controller) Lookup(unit int, addr uint64, write bool) Lookup {
	var r Lookup
	c.stats.Lookups++

	s := c.table.FindByAddr(addr)
	if s == nil {
		r.Bypass = true
		r.SID = stream.NoStream
		c.stats.Bypasses++
		return r
	}
	r.SID = s.SID
	r.Affine = s.Type == stream.Affine
	us := c.units[unit]
	us.epochAcc[s.SID]++

	// Requester-side SLB.
	if !us.slb.access(s.SID) {
		r.SLBMissLocal = true
		c.stats.SLBMisses++
	} else {
		c.stats.SLBHits++
	}

	// First write to a read-only stream raises a host exception that
	// collapses the stream to a single replication group (§IV-B).
	if write && s.ReadOnly {
		r.WriteException = true
		c.stats.WriteExceptions++
		r.ExceptionInvalidations = c.handleWriteException(s)
	}

	elem, ok := s.ElemID(addr)
	if !ok {
		// Range matched by FindByAddr, so this cannot happen; defensive.
		panic(fmt.Sprintf("streamcache: address %#x lost from %v", addr, s))
	}
	r.ItemID = elem
	itemBytes := int(s.ElemSize)
	if r.Affine {
		r.ItemID = elem * uint64(s.ElemSize) / uint64(c.params.BlockBytes)
		itemBytes = c.params.BlockBytes
	}

	if !c.hasAlloc[s.SID] {
		r.NoSpace = true
		r.Home = unit
		r.FetchBytes = itemBytes
		c.stats.NoSpace++
		c.streamStats(s.SID).Misses++
		return r
	}
	alloc := c.allocs[s.SID]
	g := alloc.Groups[unit]
	rg := c.ringOf(s.SID, g)
	if rg == nil {
		r.NoSpace = true
		r.Home = unit
		r.FetchBytes = itemBytes
		c.stats.NoSpace++
		c.streamStats(s.SID).Misses++
		return r
	}

	sp := rg.locate(s.SID, r.ItemID)
	r.Home = int(sp.unit)
	r.HomeRow = int64(alloc.RowBase[sp.unit]) + int64(sp.ord)
	r.AccessBytes = min(itemBytes, 64) // request/response granule on the NoC

	// Home-side SLB (the paper looks up the SLB again at the destination
	// to obtain the remap row base).
	if r.Home != unit {
		hs := c.units[r.Home].slb
		if !hs.access(s.SID) {
			r.SLBMissHome = true
			c.stats.SLBMisses++
		} else {
			c.stats.SLBHits++
		}
	}

	key, ways := c.residencyKey(s, alloc, sp, r.ItemID)
	hit, victim, mispredict := c.units[r.Home].lookup(key, r.ItemID, write, true, ways, r.Affine)
	r.Hit = hit
	if c.params.WayPredict && !r.Affine {
		r.WayMispredict = mispredict
	}
	ss := c.streamStats(s.SID)
	if hit {
		c.stats.Hits++
		ss.Hits++
	} else {
		c.stats.Misses++
		ss.Misses++
		r.FetchBytes = itemBytes
		if victim.valid && victim.dirty {
			r.WritebackBytes = itemBytes
			c.stats.Writebacks++
		}
	}
	return r
}

// residencyKey computes the associativity set an item belongs to at its
// home spot, and the set's way count.
//
// Indirect streams are direct-mapped (or IndirectWays-associative) within
// their DRAM row: the embedded tags leave no room for cheap wide
// associativity (§IV-C). Affine streams use the ATA's set-associative
// SRAM tags: AffineWays consecutive block slots (spanning several row
// ordinals when a row holds fewer blocks than ways) form one LRU-free
// set, which is what kills the conflict misses a direct-mapped block
// array would suffer on strided sweeps.
func (c *Controller) residencyKey(s *stream.Stream, alloc Allocation, sp spot, item uint64) (resKey, int) {
	if s.Type == stream.Affine {
		itemsPerRow := c.params.RowBytes / c.params.BlockBytes
		if itemsPerRow < 1 {
			itemsPerRow = 1
		}
		rowsPerSet := c.params.AffineWays / itemsPerRow
		if rowsPerSet < 1 {
			rowsPerSet = 1
		}
		// The ATA indexes sets uniformly within the unit's share by a
		// plain modulo (set-index bits), rather than by the block's
		// consistent-hash spot: the ring's per-spot load variance would
		// overload some sets and thrash them.
		numSets := int(alloc.Shares[sp.unit]) / rowsPerSet
		if numSets < 1 {
			numSets = 1
		}
		set := uint32(hash64(item, uint64(s.SID)+0x5e7) % uint64(numSets))
		return resKey{sid: s.SID, ord: ^uint32(0), set: set},
			rowsPerSet * itemsPerRow
	}
	itemsPerRow := c.params.RowBytes / (int(s.ElemSize) + c.params.TagBytes)
	if itemsPerRow < 1 {
		itemsPerRow = 1
	}
	numSets := itemsPerRow / c.params.IndirectWays
	if numSets < 1 {
		numSets = 1
	}
	set := uint32(hash64(item, uint64(s.SID)+0xabcd) % uint64(numSets))
	return resKey{sid: s.SID, ord: sp.ord, set: set}, c.params.IndirectWays
}

// handleWriteException clears the stream's read-only bit and collapses
// its replication groups to the single largest one, invalidating the
// other replicas (clean by construction, so no writebacks). It returns
// the number of invalidated items.
func (c *Controller) handleWriteException(s *stream.Stream) int {
	s.ReadOnly = false
	if !c.hasAlloc[s.SID] {
		return 0
	}
	alloc := c.allocs[s.SID]
	groups := alloc.GroupIDs()
	if len(groups) <= 1 {
		return 0
	}
	// Keep the group with the most rows; fold everything else into it.
	keep := groups[0]
	for _, g := range groups[1:] {
		if alloc.GroupRows(g) > alloc.GroupRows(keep) {
			keep = g
		}
	}
	invalidated := 0
	for u := range alloc.Groups {
		if alloc.Groups[u] != keep && alloc.Shares[u] > 0 {
			n, _ := c.units[u].dropStream(s.SID)
			invalidated += n
		}
		alloc.Groups[u] = keep
	}
	c.allocs[s.SID] = alloc
	c.hasAlloc[s.SID] = true
	c.rebuildRings(s.SID, alloc)
	c.invalidateSLBs(s.SID)
	return invalidated
}

// streamStats returns the per-stream counters.
func (c *Controller) streamStats(sid stream.ID) *StreamStats {
	return &c.perSID[sid]
}

// rebuildRings reconstructs the consistent-hash rings of sid for alloc.
func (c *Controller) rebuildRings(sid stream.ID, alloc Allocation) {
	c.rings[sid] = nil
	for _, g := range alloc.GroupIDs() {
		if rg := buildRing(sid, alloc, g); rg != nil {
			for int(g) >= len(c.rings[sid]) {
				c.rings[sid] = append(c.rings[sid], nil)
			}
			c.rings[sid][g] = rg
		}
	}
	// Units whose group has no rows keep a nil ring (NoSpace on access).
}

// invalidateSLBs drops sid's entry from every unit's SLB (remap change).
func (c *Controller) invalidateSLBs(sid stream.ID) {
	for _, u := range c.units {
		u.slb.invalidate(sid)
	}
}

// ReconfigStats reports what a configuration change did to cached data.
type ReconfigStats struct {
	StreamsChanged int
	ItemsExamined  int
	ItemsKept      int // survived in place (consistent hashing)
	ItemsDropped   int // invalidated (refetched on demand later)
	Writebacks     int // dirty items flushed to extended memory
}

// Apply installs a new configuration for the given streams. With
// consistent=true, data whose consistent-hash spot is unchanged stays
// cached (§V-D); otherwise the changed streams' cached data is bulk
// invalidated (the Jigsaw/CDCS approach).
func (c *Controller) Apply(newAllocs map[stream.ID]Allocation, consistent bool) (ReconfigStats, error) {
	var rs ReconfigStats
	for sid, a := range newAllocs {
		if err := a.Validate(c.numUnits); err != nil {
			return rs, err
		}
		if s := c.table.Get(sid); s == nil {
			return rs, fmt.Errorf("streamcache: allocation for unknown stream %d", sid)
		} else if !s.ReadOnly && len(a.GroupIDs()) > 1 {
			return rs, fmt.Errorf("streamcache: stream %d is writable but has %d replication groups",
				sid, len(a.GroupIDs()))
		}
	}

	for sid, a := range newAllocs {
		if c.hasAlloc[sid] && allocEqual(c.allocs[sid], a) {
			continue
		}
		rs.StreamsChanged++
		c.allocs[sid] = a.Clone()
		c.hasAlloc[sid] = true
		c.rebuildRings(sid, a)
		c.invalidateSLBs(sid)

		s := c.table.Get(sid)
		if !consistent {
			for _, u := range c.units {
				n, d := u.dropStream(sid)
				rs.ItemsExamined += n
				rs.ItemsDropped += n
				rs.Writebacks += d
			}
			continue
		}
		// Consistent hashing: keep items whose home spot is unchanged.
		for uid, u := range c.units {
			for k, set := range u.resident {
				if k.sid != sid {
					continue
				}
				keepAny := false
				for i := range set.ways {
					w := &set.ways[i]
					if !w.valid {
						continue
					}
					rs.ItemsExamined++
					g := c.allocs[sid].Groups[uid]
					rg := c.ringOf(sid, g)
					survives := false
					if rg != nil {
						sp := rg.locate(sid, w.id)
						if int(sp.unit) == uid {
							k2, _ := c.residencyKey(s, c.allocs[sid], sp, w.id)
							survives = k2 == k
						}
					}
					if survives {
						rs.ItemsKept++
						keepAny = true
					} else {
						rs.ItemsDropped++
						if w.dirty {
							rs.Writebacks++
						}
						*w = resWay{}
					}
				}
				if !keepAny {
					delete(u.resident, k)
				}
			}
		}
	}
	c.stats.Writebacks += uint64(rs.Writebacks)
	return rs, nil
}

// allocEqual reports deep equality of two allocations.
func allocEqual(a, b Allocation) bool {
	if len(a.Shares) != len(b.Shares) {
		return false
	}
	for i := range a.Shares {
		if a.Shares[i] != b.Shares[i] || a.RowBase[i] != b.RowBase[i] || a.Groups[i] != b.Groups[i] {
			return false
		}
	}
	return true
}

// EpochAccesses returns, per unit, the access counts by stream for the
// current epoch (the hardware bitvector of §V-B enriched with counts),
// and clears the epoch state.
func (c *Controller) EpochAccesses() []map[stream.ID]uint64 {
	out := make([]map[stream.ID]uint64, c.numUnits)
	for i, u := range c.units {
		out[i] = u.harvestEpochAcc()
	}
	return out
}

// Stats returns a copy of the aggregate statistics.
func (c *Controller) Stats() Stats { return c.stats }

// StreamStatsFor returns a copy of sid's counters.
func (c *Controller) StreamStatsFor(sid stream.ID) StreamStats {
	if int(sid) >= len(c.perSID) {
		return StreamStats{}
	}
	return c.perSID[sid]
}

// ResetStats clears aggregate and per-stream counters (not cache state).
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	clear(c.perSID)
}

// ResidentItems counts currently cached items for sid on unit u (testing
// and occupancy reporting).
func (c *Controller) ResidentItems(u int, sid stream.ID) int {
	n := 0
	for k, set := range c.units[u].resident {
		if k.sid != sid {
			continue
		}
		for _, w := range set.ways {
			if w.valid {
				n++
			}
		}
	}
	return n
}
