// Package streamcache implements NDPExt's hardware stream cache (paper
// §IV): the distributed DRAM cache over the NDP units' memory, managed at
// stream granularity instead of cacheline granularity.
//
// Components modelled:
//
//   - The stream remap table (Fig. 3b): per stream, RShares (DRAM rows
//     allocated per unit), RRowBase (their location) and RGroups (the
//     replication group each unit belongs to).
//   - The per-unit stream lookahead buffer, SLB (Fig. 3c): a 32-entry
//     CAM-like cache of remap entries; misses refill from the host.
//   - The affine tag array, ATA (Fig. 3d): SRAM tags at 1 kB block
//     granularity for affine streams, bounded by the per-unit affine
//     space restriction (16 MB default).
//   - Embedded-tag, direct-mapped caching of indirect stream elements
//     (tag stored with the data; one DRAM access returns both).
//   - Consistent-hash data placement within each replication group
//     (§V-D), so reconfigurations move only the delta rows.
package streamcache

import "fmt"

// Remap table field widths (paper §IV-B): each of the 512 streams has one
// 40-bit entry per NDP unit, 160 kB total for 64 units.
const (
	RSharesBits    = 16 // up to 64k DRAM rows allocated per unit
	RRowBaseBits   = 18 // 256k rows per unit addressable
	RGroupsBits    = 6  // up to 64 replication groups
	RemapEntryBits = RSharesBits + RRowBaseBits + RGroupsBits

	// SLBSizeBytes is the per-unit SLB SRAM budget (paper §VI).
	SLBSizeBytes = 4544
	// ATAEntries/ATABytes: 16k entries of 4-byte tags = 64 kB (paper §IV-C).
	ATAEntries = 16384
	ATABytes   = ATAEntries * 4
)

// RemapTableBytes returns the stream remap table size for the given
// stream and unit counts (paper: 512 x 64 x 40 bits = 160 kB).
func RemapTableBytes(streams, units int) int {
	return streams * units * RemapEntryBits / 8
}

// UnitSRAMBytes itemizes the added per-unit SRAM of the paper's §VI
// "Total SRAM cost": the 32-entry SLB (4544 B), the affine tag array
// (64 kB), the four miss-curve samplers (32 kB), and the 512-bit
// accessed-stream bitvector.
func UnitSRAMBytes() (slb, ata, samplers, bitvector, total int) {
	slb = SLBSizeBytes
	ata = ATABytes
	samplers = 4 * 8 << 10
	bitvector = 512 / 8
	total = slb + ata + samplers + bitvector
	return
}

// Params are the stream cache design knobs studied in §VII-C.
type Params struct {
	RowBytes     int // DRAM row size (cache allocation granule)
	BlockBytes   int // affine stream cache block (Fig. 9b; default 1 kB)
	IndirectWays int // indirect-cache associativity (Fig. 9a; default 1)
	// AffineWays is the affine tag array's associativity: the ATA is a
	// set-associative SRAM structure (§IV-C: "a set-associative
	// structure suffices for the ATA"), unlike the direct-mapped
	// embedded-tag indirect cache.
	AffineWays int
	// WayPredict models the realistic multi-way organization the paper
	// cites as an alternative (CAMEO/Unison-style): an MRU way predictor
	// reads one way per DRAM access, and a misprediction costs a second
	// access. Without it, associativity > 1 is the paper's idealized
	// Fig. 9(a) experiment (no extra lookup cost).
	WayPredict     bool
	AffineCapBytes int // per-unit total affine space (Fig. 9c; default 16 MB)
	SLBEntries     int // per-unit SLB capacity (default 32)
	TagBytes       int // embedded tag per indirect element (default 4)
}

// DefaultParams returns the paper's default design point.
func DefaultParams() Params {
	return Params{
		RowBytes:       2048,
		BlockBytes:     1024,
		IndirectWays:   1,
		AffineWays:     8,
		AffineCapBytes: 16 << 20,
		SLBEntries:     32,
		TagBytes:       4,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.RowBytes <= 0 || p.BlockBytes <= 0 {
		return fmt.Errorf("streamcache: row/block bytes must be positive")
	}
	if p.IndirectWays <= 0 || p.AffineWays <= 0 {
		return fmt.Errorf("streamcache: associativity must be >= 1")
	}
	if p.SLBEntries <= 0 {
		return fmt.Errorf("streamcache: SLB needs at least one entry")
	}
	if p.TagBytes < 0 {
		return fmt.Errorf("streamcache: negative tag size")
	}
	if p.AffineCapBytes <= 0 {
		return fmt.Errorf("streamcache: affine cap must be positive")
	}
	return nil
}
