package streamcache

import "ndpext/internal/stream"

// slbState models one unit's stream lookahead buffer: a small
// fully-associative cache of remap-table entries, searched by address
// range (TCAM) and refilled from the host's full table on a miss.
// Functionally we track which streams' entries are resident.
//
// Residency is a dense last-use-tick array indexed by sid (0 = absent;
// ticks start at 1): the lookup on the per-access hot path is a plain
// load instead of a map probe. Victim selection scans the array for the
// minimum tick; ticks are unique within a unit, so the victim matches
// the map implementation's (tick, sid) tie-break exactly.
type slbState struct {
	cap    int
	last   []uint64 // sid -> last-use tick, 0 = not resident
	n      int      // resident entries
	tick   uint64
	hits   uint64
	misses uint64
}

func newSLB(capacity int) *slbState {
	return &slbState{cap: capacity, last: make([]uint64, stream.MaxStreams)}
}

// access looks up sid, refilling (with LRU eviction) on a miss.
// It reports whether the lookup hit.
func (s *slbState) access(sid stream.ID) bool {
	s.tick++
	if s.last[sid] != 0 {
		s.last[sid] = s.tick
		s.hits++
		return true
	}
	s.misses++
	if s.n >= s.cap {
		victim, oldest := -1, ^uint64(0)
		for id, t := range s.last {
			if t != 0 && t < oldest {
				oldest, victim = t, id
			}
		}
		s.last[victim] = 0
		s.n--
	}
	s.last[sid] = s.tick
	s.n++
	return false
}

// invalidate drops sid's entry (after a remap-table update).
func (s *slbState) invalidate(sid stream.ID) {
	if s.last[sid] != 0 {
		s.last[sid] = 0
		s.n--
	}
}

// resKey addresses one associativity set of the DRAM cache space of a
// stream on one unit: the row ordinal (consistent-hash spot) plus the set
// index within the row.
type resKey struct {
	sid stream.ID
	ord uint32
	set uint32
}

// resWay is one cached item (an affine block or an indirect element).
type resWay struct {
	id    uint64 // block ID (affine) or element ID (indirect)
	use   uint64 // last-use tick (LRU; meaningful only for ATA sets)
	valid bool
	dirty bool
}

// resSet is one set: up to `ways` items, a round-robin victim cursor,
// and the MRU way used by the way predictor (§IV-C's cited alternative
// to direct mapping: predict the way, fall back to a second access on a
// misprediction).
type resSet struct {
	ways []resWay
	rr   uint8
	mru  uint8
}

// unitState is the per-NDP-unit cache state.
type unitState struct {
	slb      *slbState
	tick     uint64
	resident map[resKey]*resSet
	// epochAcc counts accesses per stream this epoch, densely indexed by
	// sid; it models the 512-bit accessed-stream bitvector (§V-B) with
	// counts, which the configuration algorithm also uses as placement
	// weights.
	epochAcc []uint64
}

func newUnitState(slbEntries int) *unitState {
	return &unitState{
		slb:      newSLB(slbEntries),
		resident: make(map[resKey]*resSet),
		epochAcc: make([]uint64, stream.MaxStreams),
	}
}

// harvestEpochAcc converts the dense epoch counters into the sparse map
// the host runtime consumes, and clears them for the next epoch.
func (u *unitState) harvestEpochAcc() map[stream.ID]uint64 {
	out := make(map[stream.ID]uint64)
	for sid, n := range u.epochAcc {
		if n != 0 {
			out[stream.ID(sid)] = n
			u.epochAcc[sid] = 0
		}
	}
	return out
}

// lookup finds id in the set at key; on a miss with install=true it
// allocates a way and reports the victim. Replacement is LRU when lru is
// set (the ATA's SRAM tags track recency) and round-robin otherwise (the
// embedded DRAM tags of indirect elements have no recency bits).
func (u *unitState) lookup(key resKey, id uint64, write, install bool, ways int, lru bool) (hit bool, victim resWay, mispredict bool) {
	u.tick++
	set := u.resident[key]
	if set != nil {
		for i := range set.ways {
			w := &set.ways[i]
			if w.valid && w.id == id {
				if write {
					w.dirty = true
				}
				w.use = u.tick
				mispredict = len(set.ways) > 1 && int(set.mru) != i
				set.mru = uint8(i)
				return true, resWay{}, mispredict
			}
		}
	}
	if !install {
		return false, resWay{}, false
	}
	if set == nil {
		set = &resSet{ways: make([]resWay, ways)}
		u.resident[key] = set
	}
	vi := -1
	for i := range set.ways {
		if !set.ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		if lru {
			vi = 0
			for i := 1; i < len(set.ways); i++ {
				if set.ways[i].use < set.ways[vi].use {
					vi = i
				}
			}
		} else {
			vi = int(set.rr) % len(set.ways)
			set.rr++
		}
		victim = set.ways[vi]
	}
	set.ways[vi] = resWay{id: id, use: u.tick, valid: true, dirty: write}
	set.mru = uint8(vi)
	return false, victim, false
}

// dropStream removes every resident item of sid, returning the item count
// and how many were dirty.
func (u *unitState) dropStream(sid stream.ID) (items, dirty int) {
	for k, set := range u.resident {
		if k.sid != sid {
			continue
		}
		for _, w := range set.ways {
			if w.valid {
				items++
				if w.dirty {
					dirty++
				}
			}
		}
		delete(u.resident, k)
	}
	return items, dirty
}
