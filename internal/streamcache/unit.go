package streamcache

import "ndpext/internal/stream"

// slbState models one unit's stream lookahead buffer: a small
// fully-associative cache of remap-table entries, searched by address
// range (TCAM) and refilled from the host's full table on a miss.
// Functionally we track which streams' entries are resident.
type slbState struct {
	cap     int
	entries map[stream.ID]uint64 // sid -> last-use tick
	tick    uint64
	hits    uint64
	misses  uint64
}

func newSLB(capacity int) *slbState {
	return &slbState{cap: capacity, entries: make(map[stream.ID]uint64, capacity)}
}

// access looks up sid, refilling (with LRU eviction) on a miss.
// It reports whether the lookup hit.
func (s *slbState) access(sid stream.ID) bool {
	s.tick++
	if _, ok := s.entries[sid]; ok {
		s.entries[sid] = s.tick
		s.hits++
		return true
	}
	s.misses++
	if len(s.entries) >= s.cap {
		var victim stream.ID
		oldest := ^uint64(0)
		for id, t := range s.entries {
			if t < oldest || t == oldest && id < victim {
				oldest, victim = t, id
			}
		}
		delete(s.entries, victim)
	}
	s.entries[sid] = s.tick
	return false
}

// invalidate drops sid's entry (after a remap-table update).
func (s *slbState) invalidate(sid stream.ID) { delete(s.entries, sid) }

// resKey addresses one associativity set of the DRAM cache space of a
// stream on one unit: the row ordinal (consistent-hash spot) plus the set
// index within the row.
type resKey struct {
	sid stream.ID
	ord uint32
	set uint32
}

// resWay is one cached item (an affine block or an indirect element).
type resWay struct {
	id    uint64 // block ID (affine) or element ID (indirect)
	use   uint64 // last-use tick (LRU; meaningful only for ATA sets)
	valid bool
	dirty bool
}

// resSet is one set: up to `ways` items, a round-robin victim cursor,
// and the MRU way used by the way predictor (§IV-C's cited alternative
// to direct mapping: predict the way, fall back to a second access on a
// misprediction).
type resSet struct {
	ways []resWay
	rr   uint8
	mru  uint8
}

// unitState is the per-NDP-unit cache state.
type unitState struct {
	slb      *slbState
	tick     uint64
	resident map[resKey]*resSet
	// epochAcc counts accesses per stream this epoch; it models the
	// 512-bit accessed-stream bitvector (§V-B) with counts, which the
	// configuration algorithm also uses as placement weights.
	epochAcc map[stream.ID]uint64
}

func newUnitState(slbEntries int) *unitState {
	return &unitState{
		slb:      newSLB(slbEntries),
		resident: make(map[resKey]*resSet),
		epochAcc: make(map[stream.ID]uint64),
	}
}

// lookup finds id in the set at key; on a miss with install=true it
// allocates a way (evicting round-robin) and reports the victim.
// lookup finds id in the set at key; on a miss with install=true it
// allocates a way and reports the victim. Replacement is LRU when lru is
// set (the ATA's SRAM tags track recency) and round-robin otherwise (the
// embedded DRAM tags of indirect elements have no recency bits).
func (u *unitState) lookup(key resKey, id uint64, write, install bool, ways int, lru bool) (hit bool, victim resWay, mispredict bool) {
	u.tick++
	set := u.resident[key]
	if set != nil {
		for i := range set.ways {
			w := &set.ways[i]
			if w.valid && w.id == id {
				if write {
					w.dirty = true
				}
				w.use = u.tick
				mispredict = len(set.ways) > 1 && int(set.mru) != i
				set.mru = uint8(i)
				return true, resWay{}, mispredict
			}
		}
	}
	if !install {
		return false, resWay{}, false
	}
	if set == nil {
		set = &resSet{ways: make([]resWay, ways)}
		u.resident[key] = set
	}
	vi := -1
	for i := range set.ways {
		if !set.ways[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		if lru {
			vi = 0
			for i := 1; i < len(set.ways); i++ {
				if set.ways[i].use < set.ways[vi].use {
					vi = i
				}
			}
		} else {
			vi = int(set.rr) % len(set.ways)
			set.rr++
		}
		victim = set.ways[vi]
	}
	set.ways[vi] = resWay{id: id, use: u.tick, valid: true, dirty: write}
	set.mru = uint8(vi)
	return false, victim, false
}

// dropStream removes every resident item of sid, returning the item count
// and how many were dirty.
func (u *unitState) dropStream(sid stream.ID) (items, dirty int) {
	for k, set := range u.resident {
		if k.sid != sid {
			continue
		}
		for _, w := range set.ways {
			if w.valid {
				items++
				if w.dirty {
					dirty++
				}
			}
		}
		delete(u.resident, k)
	}
	return items, dirty
}
