package dram

import (
	"testing"

	"ndpext/internal/sim"
)

func TestParamsMatchTableII(t *testing.T) {
	cases := []struct {
		p                Params
		rcd, cas, rp     int
		freq             float64
		rdwrPJ, actPreNJ float64
	}{
		{HBM3(), 24, 24, 24, 1600, 1.7, 0.6},
		{HMC2(), 14, 14, 14, 1250, 1.7, 0.6},
		{DDR5(), 40, 40, 40, 2400, 3.2, 3.3},
	}
	for _, c := range cases {
		if c.p.TRCD != c.rcd || c.p.TCAS != c.cas || c.p.TRP != c.rp {
			t.Errorf("%s timing = %d-%d-%d, want %d-%d-%d",
				c.p.Name, c.p.TRCD, c.p.TCAS, c.p.TRP, c.rcd, c.cas, c.rp)
		}
		if c.p.FreqMHz != c.freq {
			t.Errorf("%s freq = %v, want %v", c.p.Name, c.p.FreqMHz, c.freq)
		}
		if c.p.RDWRPJPerBit != c.rdwrPJ || c.p.ACTPREnJ != c.actPreNJ {
			t.Errorf("%s energy = %v pJ/bit, %v nJ; want %v, %v",
				c.p.Name, c.p.RDWRPJPerBit, c.p.ACTPREnJ, c.rdwrPJ, c.actPreNJ)
		}
	}
}

func TestRowBufferStateMachine(t *testing.T) {
	d := NewDevice(HBM3(), 1) // single bank so every access shares the row buffer
	p := d.Params()
	clk := sim.NewClock(p.FreqMHz)

	// Cold access: tRCD + tCAS + burst.
	done, hit := d.Access(0, 5, 64, false)
	if hit {
		t.Fatal("cold access reported a row hit")
	}
	want := clk.Cycles(int64(p.TRCD + p.TCAS + p.BurstCyc))
	if done != want {
		t.Fatalf("cold access latency = %v, want %v", done, want)
	}

	// Same-row access: tCAS + burst, and must queue behind the first.
	done2, hit2 := d.Access(0, 5, 64, false)
	if !hit2 {
		t.Fatal("same-row access missed the row buffer")
	}
	if wantEnd := done + clk.Cycles(int64(p.TCAS+p.BurstCyc)); done2 != wantEnd {
		t.Fatalf("row-hit completion = %v, want %v", done2, wantEnd)
	}

	// Conflicting row: tRP + tRCD + tCAS + burst.
	start := done2 + sim.Microsecond
	done3, hit3 := d.Access(start, 6, 64, false)
	if hit3 {
		t.Fatal("conflicting access reported a row hit")
	}
	if want3 := start + clk.Cycles(int64(p.TRP+p.TRCD+p.TCAS+p.BurstCyc)); done3 != want3 {
		t.Fatalf("conflict latency end = %v, want %v", done3, want3)
	}
}

func TestBankInterleaving(t *testing.T) {
	d := NewDevice(HBM3(), 4)
	p := d.Params()
	clk := sim.NewClock(p.FreqMHz)
	burst := clk.Cycles(int64(p.BurstCyc))
	full := clk.Cycles(int64(p.TRCD + p.TCAS + p.BurstCyc))
	// Rows 0..3 map to distinct banks: activations overlap, but the data
	// bursts serialize on the shared bus, so completions step by the
	// burst time -- far better than full serialization.
	var ends []sim.Time
	for row := int64(0); row < 4; row++ {
		done, _ := d.Access(0, row, 64, false)
		ends = append(ends, done)
	}
	for i := 1; i < len(ends); i++ {
		if got, want := ends[i], ends[0]+sim.Time(i)*burst; got != want {
			t.Fatalf("bank %d ended at %v, want %v (bus-serialized bursts)", i, got, want)
		}
	}
	if ends[3] >= 4*full {
		t.Fatalf("parallel banks fully serialized: %v >= %v", ends[3], 4*full)
	}
	// Row 4 maps back to bank 0 and must queue behind it.
	done, _ := d.Access(0, 4, 64, false)
	if done <= ends[0] {
		t.Fatalf("conflicting bank access finished at %v, not after %v", done, ends[0])
	}
}

func TestStatsAndEnergy(t *testing.T) {
	d := NewDevice(DDR5(), 2)
	d.Access(0, 0, 64, false)
	d.Access(0, 0, 64, true) // row hit, write
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	if s.Activations != 1 || s.RowHits != 1 {
		t.Fatalf("activations=%d rowhits=%d", s.Activations, s.RowHits)
	}
	wantEnergy := 3.3*1000 + 2*64*8*3.2 // one ACT/PRE + two 64B transfers
	if diff := s.EnergyPJ - wantEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy = %v pJ, want %v", s.EnergyPJ, wantEnergy)
	}
}

func TestLargerTransfersCostMoreBurst(t *testing.T) {
	d := NewDevice(HBM3(), 1)
	small, _ := d.Access(0, 0, 64, false)
	d.Reset()
	large, _ := d.Access(0, 0, 1024, false)
	if large <= small {
		t.Fatalf("1 kB access (%v) not slower than 64 B access (%v)", large, small)
	}
}

func TestRawLatency(t *testing.T) {
	d := NewDevice(HBM3(), 1)
	hit := d.RawLatency(true, 64)
	miss := d.RawLatency(false, 64)
	if miss <= hit {
		t.Fatalf("row-miss raw latency %v not greater than hit %v", miss, hit)
	}
}

func TestReset(t *testing.T) {
	d := NewDevice(HBM3(), 2)
	d.Access(0, 0, 64, false)
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.EnergyPJ != 0 {
		t.Fatalf("Reset left stats %+v", s)
	}
	if _, hit := d.Access(0, 0, 64, false); hit {
		t.Fatal("Reset did not close the row buffer")
	}
}

func TestNewDevicePanicsWithoutBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice(0 banks) did not panic")
		}
	}()
	NewDevice(HBM3(), 0)
}

func TestNegativeRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative row did not panic")
		}
	}()
	NewDevice(HBM3(), 1).Access(0, -1, 64, false)
}

func TestTRASEnforcedWhenEnabled(t *testing.T) {
	p := HBM3()
	p.TRAS = 100 // exaggerated so the effect is unambiguous
	d := NewDevice(p, 1)
	clk := sim.NewClock(p.FreqMHz)
	// Open row 0, then immediately conflict with row 1: the precharge
	// must wait out tRAS from the activation.
	d.Access(0, 0, 64, false)
	done, _ := d.Access(0, 1, 64, false)
	min := clk.Cycles(int64(p.TRAS + p.TRP + p.TRCD + p.TCAS))
	if done < min {
		t.Fatalf("conflict completed at %v, before tRAS allows (%v)", done, min)
	}
	// Default parameter sets leave TRAS off: behaviour unchanged.
	d2 := NewDevice(HBM3(), 1)
	d2.Access(0, 0, 64, false)
	done2, _ := d2.Access(0, 1, 64, false)
	if done2 >= min {
		t.Fatalf("default (no tRAS) also waited: %v", done2)
	}
}

func TestRefreshStallsWhenEnabled(t *testing.T) {
	p := HBM3()
	p.RefreshInterval = 1000 * sim.Nanosecond
	p.RefreshDur = 100 * sim.Nanosecond
	d := NewDevice(p, 4)
	// An access arriving inside the refresh window is pushed past it.
	done, _ := d.Access(10*sim.Nanosecond, 0, 64, false)
	if done < 100*sim.Nanosecond {
		t.Fatalf("access inside tRFC completed at %v", done)
	}
	if d.Stats().RefreshStalls == 0 {
		t.Fatal("no refresh stall recorded")
	}
	// An access between refreshes is unaffected.
	d2 := NewDevice(p, 4)
	done2, _ := d2.Access(500*sim.Nanosecond, 0, 64, false)
	base := NewDevice(HBM3(), 4)
	ref, _ := base.Access(500*sim.Nanosecond, 0, 64, false)
	if done2 != ref {
		t.Fatalf("mid-interval access disturbed: %v vs %v", done2, ref)
	}
}

func TestDefaultsKeepRefinedTimingOff(t *testing.T) {
	for _, p := range []Params{HBM3(), HMC2(), DDR5()} {
		if p.TRAS != 0 || p.RefreshInterval != 0 || p.RefreshDur != 0 {
			t.Fatalf("%s enables refined timing by default", p.Name)
		}
	}
}
