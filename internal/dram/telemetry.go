package dram

import "ndpext/internal/telemetry"

// ReportTelemetry publishes the device's counters into the registry
// under the given prefix (e.g. "dram.unit003").
func (d *Device) ReportTelemetry(r *telemetry.Registry, prefix string) {
	r.PutUint(prefix+".reads", d.stats.Reads)
	r.PutUint(prefix+".writes", d.stats.Writes)
	r.PutUint(prefix+".row_hits", d.stats.RowHits)
	r.PutUint(prefix+".activations", d.stats.Activations)
	r.PutUint(prefix+".refresh_stalls", d.stats.RefreshStalls)
	r.PutFloat(prefix+".energy_pj", d.stats.EnergyPJ)
	r.PutTime(prefix+".busy", d.stats.BusyTime)
}
