// Package dram models DRAM device timing and energy at bank/row-buffer
// granularity. It provides the three parameter sets used by the paper's
// Table II: HBM3-style and HMC2-style NDP stack memory, and DDR5-4800
// extended memory behind the CXL controller.
//
// The model is open-page: each bank tracks its open row, and an access
// costs tCAS (row hit), tRCD+tCAS (row closed), or tRP+tRCD+tCAS (row
// conflict) plus data burst time, with ACT/PRE energy charged on
// activations. Bank occupancy is modelled with busy-until reservation, so
// accesses to a busy bank queue behind it.
package dram

import (
	"fmt"

	"ndpext/internal/fault"
	"ndpext/internal/sim"
)

// Params describes one DRAM technology.
type Params struct {
	Name     string
	FreqMHz  float64 // command/data clock
	TRCD     int     // activate-to-read, cycles
	TCAS     int     // read latency, cycles
	TRP      int     // precharge, cycles
	BurstCyc int     // data transfer cycles for one 64 B beat group
	RowBytes int     // row buffer size in bytes

	RDWRPJPerBit float64 // read/write energy per bit
	ACTPREnJ     float64 // activate+precharge energy per activation (nJ)
	StaticMWPerU float64 // static power per device unit, milliwatts

	// Optional refined timing (disabled when zero, keeping the base
	// model): TRAS enforces a minimum open time before precharge, and
	// RefreshInterval/RefreshDur periodically stall every bank (tREFI /
	// tRFC). These second-order effects cost simulation time for little
	// shape change, so the default parameter sets leave them off; enable
	// them for timing-sensitivity studies.
	TRAS            int      // activate-to-precharge minimum, cycles
	RefreshInterval sim.Time // tREFI; 0 disables refresh
	RefreshDur      sim.Time // tRFC
}

// Table II parameter sets.

// HBM3 returns the HBM3-style NDP stack memory parameters
// (1600 MHz, RCD-CAS-RP 24-24-24, 1.7 pJ/bit, 0.6 nJ ACT/PRE).
func HBM3() Params {
	return Params{
		Name: "HBM3", FreqMHz: 1600,
		TRCD: 24, TCAS: 24, TRP: 24,
		BurstCyc: 4, RowBytes: 2048,
		RDWRPJPerBit: 1.7, ACTPREnJ: 0.6, StaticMWPerU: 45,
	}
}

// HMC2 returns the HMC2-style NDP stack memory parameters
// (1250 MHz, RCD-CAS-RP 14-14-14).
func HMC2() Params {
	return Params{
		Name: "HMC2", FreqMHz: 1250,
		TRCD: 14, TCAS: 14, TRP: 14,
		BurstCyc: 4, RowBytes: 2048,
		RDWRPJPerBit: 1.7, ACTPREnJ: 0.6, StaticMWPerU: 45,
	}
}

// DDR5 returns the DDR5-4800 extended memory parameters
// (RCD-CAS-RP 40-40-40, 3.2 pJ/bit, 3.3 nJ ACT/PRE).
func DDR5() Params {
	return Params{
		Name: "DDR5-4800", FreqMHz: 2400,
		TRCD: 40, TCAS: 40, TRP: 40,
		BurstCyc: 8, RowBytes: 8192,
		RDWRPJPerBit: 3.2, ACTPREnJ: 3.3, StaticMWPerU: 120,
	}
}

// Stats aggregates device activity.
type Stats struct {
	Reads         uint64
	Writes        uint64
	RowHits       uint64
	Activations   uint64
	RefreshStalls uint64
	EnergyPJ      float64
	BusyTime      sim.Time
}

// Device is a collection of banks sharing one technology. One Device
// represents the memory region of one NDP unit, or one DDR channel of the
// extended memory.
type Device struct {
	params Params
	clock  sim.Clock
	banks  []bank
	bus    sim.Resource // shared data bus: bursts serialize across banks
	inj    *fault.Injector
	vault  int
	stats  Stats
}

type bank struct {
	res      sim.Resource
	openRow  int64    // -1 when closed
	openedAt sim.Time // when the current row was activated (tRAS)
}

// NewDevice builds a device with numBanks banks of technology p.
func NewDevice(p Params, numBanks int) *Device {
	if numBanks <= 0 {
		panic("dram: NewDevice requires at least one bank")
	}
	d := &Device{params: p, clock: sim.NewClock(p.FreqMHz), banks: make([]bank, numBanks)}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	return d
}

// SetFaults attaches a fault injector and identifies which NDP unit's
// vault this device backs, so Offline can answer vault-fail queries.
// nil (the default) disables injection.
func (d *Device) SetFaults(inj *fault.Injector, vault int) {
	d.inj = inj
	d.vault = vault
}

// Offline reports whether this device's vault is failed at time t.
// Callers (the memory path) must redirect accesses elsewhere; the model
// itself keeps working so off-path bookkeeping cannot crash.
func (d *Device) Offline(t sim.Time) bool {
	return d.inj != nil && d.inj.VaultFailed(d.vault, t)
}

// Params returns the device's technology parameters.
func (d *Device) Params() Params { return d.params }

// NumBanks reports the bank count.
func (d *Device) NumBanks() int { return len(d.banks) }

// Access performs one access of size bytes to the given row, returning the
// completion time. The bank is selected by row so consecutive rows
// interleave across banks. RowHit reports whether the row buffer was hit.
func (d *Device) Access(t sim.Time, row int64, bytes int, write bool) (done sim.Time, rowHit bool) {
	if row < 0 {
		panic(fmt.Sprintf("dram: negative row %d", row))
	}
	b := &d.banks[int(row)%len(d.banks)]
	p := &d.params

	// Refresh: align t past any overlapping refresh window (tREFI/tRFC).
	if p.RefreshInterval > 0 && p.RefreshDur > 0 {
		phase := t % p.RefreshInterval
		if phase < p.RefreshDur {
			t += p.RefreshDur - phase
			d.stats.RefreshStalls++
		}
	}

	var cycles int64
	switch {
	case b.openRow == row:
		cycles = int64(p.TCAS)
		rowHit = true
		d.stats.RowHits++
	case b.openRow == -1:
		cycles = int64(p.TRCD + p.TCAS)
		d.stats.Activations++
		d.stats.EnergyPJ += p.ACTPREnJ * 1000 // nJ -> pJ
	default:
		// tRAS: the open row must have been active long enough before
		// it may be precharged.
		if p.TRAS > 0 {
			if earliest := b.openedAt + d.clock.Cycles(int64(p.TRAS)); t < earliest {
				t = earliest
			}
		}
		cycles = int64(p.TRP + p.TRCD + p.TCAS)
		d.stats.Activations++
		d.stats.EnergyPJ += p.ACTPREnJ * 1000
	}
	if b.openRow != row {
		b.openedAt = t
	}
	b.openRow = row

	// Burst time scales with the transfer size relative to a 64 B beat group.
	beats := (bytes + 63) / 64
	burst := d.clock.Cycles(int64(p.BurstCyc * beats))
	cycles += int64(p.BurstCyc * beats)

	dur := d.clock.Cycles(cycles)
	_, bankEnd := b.res.Acquire(t, dur)
	// The device's data bus is shared by all banks: row activations
	// overlap, but data bursts serialize. This is what throughput-binds
	// a channel when many cores hammer it.
	_, done = d.bus.Acquire(bankEnd-burst, burst)
	d.stats.BusyTime += dur

	d.stats.EnergyPJ += float64(bytes*8) * p.RDWRPJPerBit
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return done, rowHit
}

// RawLatency reports the unloaded latency of an access with the given
// row-buffer outcome, for analytical components (e.g. attenuation factors
// in the placement policy).
func (d *Device) RawLatency(rowHit bool, bytes int) sim.Time {
	p := &d.params
	cycles := int64(p.TCAS)
	if !rowHit {
		cycles += int64(p.TRCD)
	}
	cycles += int64(p.BurstCyc * ((bytes + 63) / 64))
	return d.clock.Cycles(cycles)
}

// Stats returns a copy of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// Reset clears bank state and statistics.
func (d *Device) Reset() {
	for i := range d.banks {
		d.banks[i].res.Reset()
		d.banks[i].openRow = -1
	}
	d.bus.Reset()
	d.stats = Stats{}
}
