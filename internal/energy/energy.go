// Package energy accumulates the system energy breakdown reported in the
// paper's Fig. 6: static energy (follows execution time), NDP DRAM and
// extended-memory DRAM dynamic energy, interconnect energy, and CXL link
// energy. All values are in picojoules.
package energy

import (
	"fmt"

	"ndpext/internal/sim"
)

// Breakdown is one run's energy decomposition in picojoules.
type Breakdown struct {
	StaticPJ  float64
	NDPDramPJ float64
	ExtDramPJ float64
	NoCPJ     float64
	CXLLinkPJ float64
	SRAMPJ    float64 // SLB/ATA/sampler/metadata-cache accesses (§VI SRAM cost)
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.StaticPJ + b.NDPDramPJ + b.ExtDramPJ + b.NoCPJ + b.CXLLinkPJ + b.SRAMPJ
}

// Add returns the component-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		StaticPJ:  b.StaticPJ + o.StaticPJ,
		NDPDramPJ: b.NDPDramPJ + o.NDPDramPJ,
		ExtDramPJ: b.ExtDramPJ + o.ExtDramPJ,
		NoCPJ:     b.NoCPJ + o.NoCPJ,
		CXLLinkPJ: b.CXLLinkPJ + o.CXLLinkPJ,
		SRAMPJ:    b.SRAMPJ + o.SRAMPJ,
	}
}

// Fraction returns each component as a fraction of the total (zero
// breakdown yields zeros).
func (b Breakdown) Fraction() Breakdown {
	t := b.Total()
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{
		StaticPJ:  b.StaticPJ / t,
		NDPDramPJ: b.NDPDramPJ / t,
		ExtDramPJ: b.ExtDramPJ / t,
		NoCPJ:     b.NoCPJ / t,
		CXLLinkPJ: b.CXLLinkPJ / t,
		SRAMPJ:    b.SRAMPJ / t,
	}
}

// String renders the breakdown in microjoules.
func (b Breakdown) String() string {
	const uJ = 1e6
	return fmt.Sprintf("static=%.1fuJ ndpDram=%.1fuJ extDram=%.1fuJ noc=%.1fuJ cxl=%.1fuJ sram=%.1fuJ (total %.1fuJ)",
		b.StaticPJ/uJ, b.NDPDramPJ/uJ, b.ExtDramPJ/uJ, b.NoCPJ/uJ, b.CXLLinkPJ/uJ, b.SRAMPJ/uJ, b.Total()/uJ)
}

// CACTI-7-style per-access SRAM energies (pJ) for the structures the
// paper sizes in §VI; small structures at ~22 nm cost a few pJ per
// access.
const (
	L1AccessPJ      = 8.0 // per L1 D-cache access
	SLBAccessPJ     = 2.5 // 32-entry TCAM probe
	ATAAccessPJ     = 3.0 // 16k-entry set-associative tag read
	SamplerUpdatePJ = 1.5 // one shadow-set update
	MetaCachePJ     = 4.0 // baseline metadata cache probe
)

// Static computes static energy for a run: powerMW milliwatts drawn for
// the given simulated duration, in picojoules
// (1 mW x 1 ps = 1e-15 J = 1e-3 pJ).
func Static(powerMW float64, dur sim.Time) float64 {
	return powerMW * float64(dur) * 1e-3
}
