package energy

import (
	"strings"
	"testing"
	"testing/quick"

	"ndpext/internal/sim"
)

func TestTotalAndAdd(t *testing.T) {
	a := Breakdown{StaticPJ: 1, NDPDramPJ: 2, ExtDramPJ: 3, NoCPJ: 4, CXLLinkPJ: 5}
	if a.Total() != 15 {
		t.Fatalf("total = %v", a.Total())
	}
	b := a.Add(a)
	if b.Total() != 30 || b.NoCPJ != 8 {
		t.Fatalf("add = %+v", b)
	}
}

func TestFractionSumsToOne(t *testing.T) {
	f := func(s, n, e, c, x uint16) bool {
		b := Breakdown{
			StaticPJ: float64(s), NDPDramPJ: float64(n), ExtDramPJ: float64(e),
			NoCPJ: float64(c), CXLLinkPJ: float64(x),
		}
		fr := b.Fraction()
		if b.Total() == 0 {
			return fr == Breakdown{}
		}
		sum := fr.Total()
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatic(t *testing.T) {
	// 1000 mW for 1 ms = 1 mJ = 1e9 pJ.
	got := Static(1000, sim.Millisecond)
	if got != 1e9 {
		t.Fatalf("Static = %v pJ, want 1e9", got)
	}
	if Static(0, sim.Second) != 0 {
		t.Fatal("zero power nonzero energy")
	}
}

func TestString(t *testing.T) {
	b := Breakdown{StaticPJ: 2e6}
	if !strings.Contains(b.String(), "static=2.0uJ") {
		t.Fatalf("String = %q", b.String())
	}
}
