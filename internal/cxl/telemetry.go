package cxl

import "ndpext/internal/telemetry"

// ReportTelemetry publishes the device's link counters and the aggregate
// of its DDR channels into the registry under the given prefix
// (e.g. "cxl" -> "cxl.reads", "cxl.dram.energy_pj", ...).
func (d *Device) ReportTelemetry(r *telemetry.Registry, prefix string) {
	r.PutUint(prefix+".reads", d.stats.Reads)
	r.PutUint(prefix+".writes", d.stats.Writes)
	r.PutFloat(prefix+".link_energy_pj", d.stats.LinkEnergyPJ)
	r.PutTime(prefix+".link_busy", d.stats.LinkBusy)
	dr := d.DRAMStats()
	r.PutUint(prefix+".dram.reads", dr.Reads)
	r.PutUint(prefix+".dram.writes", dr.Writes)
	r.PutUint(prefix+".dram.row_hits", dr.RowHits)
	r.PutUint(prefix+".dram.activations", dr.Activations)
	r.PutFloat(prefix+".dram.energy_pj", dr.EnergyPJ)
	r.PutTime(prefix+".dram.busy", dr.BusyTime)
}
