package cxl

import (
	"testing"
)

func TestNewCheckedRejectsBadConfigs(t *testing.T) {
	good := DefaultConfig()
	if _, err := NewChecked(good); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BanksPerChannel = -1 },
		func(c *Config) { c.LinkGBps = 0 },
		func(c *Config) { c.Channels = 1 << 20 },
		func(c *Config) { c.BanksPerChannel = 1 << 30 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := NewChecked(cfg); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config without panicking")
		}
	}()
	cfg := DefaultConfig()
	cfg.Channels = 0
	New(cfg)
}

// FuzzConfigValidate checks that config validation never panics and
// that NewChecked constructs a device exactly when Validate accepts.
func FuzzConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.Channels, d.BanksPerChannel, d.LinkGBps, d.PJPerBit)
	f.Add(0, 0, 0.0, 0.0)
	f.Add(-1, 1<<30, -5.5, 1.0)
	f.Add(1<<13, 8, 64.0, 6.0)
	f.Fuzz(func(t *testing.T, channels, banks int, linkGBps, pjPerBit float64) {
		cfg := DefaultConfig()
		cfg.Channels = channels
		cfg.BanksPerChannel = banks
		cfg.LinkGBps = linkGBps
		cfg.PJPerBit = pjPerBit
		err := cfg.Validate()
		dev, cerr := NewChecked(cfg)
		if (err == nil) != (cerr == nil) {
			t.Fatalf("Validate err=%v but NewChecked err=%v", err, cerr)
		}
		if cerr == nil && dev == nil {
			t.Fatal("NewChecked returned nil device without error")
		}
	})
}
