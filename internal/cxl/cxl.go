// Package cxl models the CXL.mem Type-3 extended memory device of the
// NDPExt architecture: a direct-attached, multi-headed memory expander
// reached from the NDP stacks through a central CXL controller (paper
// Fig. 1, Table II).
//
// An access pays the CXL link latency in each direction, reserves link
// bandwidth for its payload, and performs a DDR5 access on one of the
// device's memory channels. Link energy is charged per bit.
package cxl

import (
	"fmt"

	"ndpext/internal/dram"
	"ndpext/internal/fault"
	"ndpext/internal/sim"
)

// Config describes the extended memory device.
type Config struct {
	LinkLatency sim.Time // one-way link latency (excluding DRAM access)
	LinkGBps    float64  // link bandwidth per direction
	PJPerBit    float64  // link transfer energy

	Channels        int // DDR channels on the device
	BanksPerChannel int // banks per channel (ranks folded in)
	DRAM            dram.Params
}

// DefaultConfig returns the Table II extended memory: a 16-lane CXL port
// with 200 ns link latency and 11.4 pJ/bit, backed by four DDR5-4800
// channels of 2 ranks x 16 banks.
func DefaultConfig() Config {
	return Config{
		LinkLatency:     sim.FromNS(200),
		LinkGBps:        64,
		PJPerBit:        11.4,
		Channels:        4,
		BanksPerChannel: 32,
		DRAM:            dram.DDR5(),
	}
}

// The paper's §III-A notes that the extended memory could instead be
// traditional DIMMs wired to the NDP module, or the host's own memory
// reached by relaying through the host processor. These presets model
// those alternatives for the attach-technology ablation.

// DIMMConfig models directly-attached DDR5 DIMMs: a short electrical
// path (~20 ns), one DDR5-4800 channel's bandwidth per link, and DDR I/O
// energy instead of SerDes energy. It trades the CXL link latency for
// far fewer expansion channels and pins (§II-A's pin argument).
func DIMMConfig() Config {
	c := DefaultConfig()
	c.LinkLatency = sim.FromNS(20)
	c.LinkGBps = 38.4 // one DDR5-4800 channel per attach point
	c.PJPerBit = 4.0
	c.Channels = 2 // pin budget halves the channels
	return c
}

// HostRelayConfig models reusing the host's memory by relaying every
// access through the host processor over PCIe: two PCIe crossings plus
// host-side handling (~600 ns), with host DRAM behind it.
func HostRelayConfig() Config {
	c := DefaultConfig()
	c.LinkLatency = sim.FromNS(600)
	c.LinkGBps = 32
	c.PJPerBit = 17.0 // two SerDes crossings
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 {
		return fmt.Errorf("cxl: channels and banks must be positive")
	}
	// Bound the organization so a corrupt config cannot demand an absurd
	// allocation.
	if c.Channels > 1<<12 || c.BanksPerChannel > 1<<16 {
		return fmt.Errorf("cxl: organization %dx%d exceeds supported bounds", c.Channels, c.BanksPerChannel)
	}
	if c.LinkGBps <= 0 {
		return fmt.Errorf("cxl: link bandwidth must be positive")
	}
	return nil
}

// Stats aggregates device activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	LinkEnergyPJ float64
	LinkBusy     sim.Time
}

// Device is one CXL extended memory module. Not safe for concurrent use.
type Device struct {
	cfg   Config
	down  sim.Resource // NDP -> device (requests, write payloads)
	up    sim.Resource // device -> NDP (read payloads, acks)
	chans []*dram.Device
	inj   *fault.Injector
	stats Stats
}

// NewChecked builds a device from cfg, returning an error on invalid
// configuration. Use it at API boundaries where the configuration is
// runtime input.
func NewChecked(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		d.chans = append(d.chans, dram.NewDevice(cfg.DRAM, cfg.BanksPerChannel))
	}
	return d, nil
}

// New builds a device from cfg; it panics on invalid configuration.
func New(cfg Config) *Device {
	d, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// SetFaults attaches a fault injector consulted on every access; nil
// (the default) disables injection.
func (d *Device) SetFaults(inj *fault.Injector) { d.inj = inj }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// reqBytes is the size of a CXL request header flit.
const reqBytes = 32

// Access performs one access of size bytes at physical address addr,
// starting at time t, and returns the completion time (data available at
// the NDP side for reads, write acknowledged for writes).
func (d *Device) Access(t sim.Time, addr uint64, bytes int, write bool) sim.Time {
	ch, row := d.mapAddr(addr)

	// A degraded link (fault injection) serves the whole access at
	// reduced bandwidth; retries re-send the request flit after the
	// downstream leg, paying latency and link energy per retry.
	bw := d.cfg.LinkGBps
	if d.inj != nil {
		if f := d.inj.CXLBWFactor(t); f > 1 {
			bw /= f
			d.inj.CountDegraded()
		}
	}

	// Request flit downstream. Writes carry their payload downstream.
	downBytes := reqBytes
	if write {
		downBytes += bytes
	}
	ser := sim.FromNS(float64(downBytes) / bw)
	_, end := d.down.Acquire(t, ser)
	d.stats.LinkBusy += ser
	atDev := end + d.cfg.LinkLatency

	extraBits := 0
	if d.inj != nil {
		if n, extra := d.inj.CXLRetry(atDev); n > 0 {
			atDev += extra
			extraBits = n * reqBytes * 8 // each retry re-sends the request flit
		}
	}

	// DRAM access on the channel.
	done, _ := d.chans[ch].Access(atDev, row, bytes, write)

	// Response upstream. Reads carry their payload upstream.
	upBytes := reqBytes
	if !write {
		upBytes += bytes
	}
	ser = sim.FromNS(float64(upBytes) / bw)
	_, end = d.up.Acquire(done, ser)
	d.stats.LinkBusy += ser
	finish := end + d.cfg.LinkLatency

	d.stats.LinkEnergyPJ += float64((downBytes+upBytes)*8+extraBits) * d.cfg.PJPerBit
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return finish
}

// mapAddr maps a physical address to (channel, row), interleaving
// channels at row granularity so streaming accesses spread across
// channels.
func (d *Device) mapAddr(addr uint64) (ch int, row int64) {
	rowBytes := uint64(d.cfg.DRAM.RowBytes)
	globalRow := addr / rowBytes
	ch = int(globalRow % uint64(len(d.chans)))
	row = int64(globalRow / uint64(len(d.chans)))
	return ch, row
}

// MinLatency is the unloaded round-trip latency for an access of the
// given size with a row-buffer miss, used by analytical policy code.
func (d *Device) MinLatency(bytes int) sim.Time {
	return 2*d.cfg.LinkLatency +
		sim.FromNS(float64(2*reqBytes+bytes)/d.cfg.LinkGBps) +
		d.chans[0].RawLatency(false, bytes)
}

// Stats returns a copy of the link statistics.
func (d *Device) Stats() Stats { return d.stats }

// DRAMStats sums statistics over the device's DDR channels.
func (d *Device) DRAMStats() dram.Stats {
	var total dram.Stats
	for _, c := range d.chans {
		s := c.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.RowHits += s.RowHits
		total.Activations += s.Activations
		total.EnergyPJ += s.EnergyPJ
		total.BusyTime += s.BusyTime
	}
	return total
}

// Reset clears all link and channel state.
func (d *Device) Reset() {
	d.down.Reset()
	d.up.Reset()
	for _, c := range d.chans {
		c.Reset()
	}
	d.stats = Stats{}
}
