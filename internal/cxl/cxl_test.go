package cxl

import (
	"testing"

	"ndpext/internal/sim"
)

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.LinkLatency != sim.FromNS(200) {
		t.Fatalf("link latency = %v, want 200ns", c.LinkLatency)
	}
	if c.PJPerBit != 11.4 {
		t.Fatalf("link energy = %v, want 11.4 pJ/bit", c.PJPerBit)
	}
	if c.Channels != 4 || c.BanksPerChannel != 32 {
		t.Fatalf("channels=%d banks=%d, want 4x32", c.Channels, c.BanksPerChannel)
	}
	if c.DRAM.Name != "DDR5-4800" {
		t.Fatalf("backing DRAM = %s", c.DRAM.Name)
	}
}

func TestAccessPaysRoundTripLinkLatency(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Access(0, 0, 64, false)
	if done < 2*sim.FromNS(200) {
		t.Fatalf("read completed in %v, below the 400ns round-trip link floor", done)
	}
	if done != d.MinLatency(64) {
		t.Fatalf("unloaded access = %v, MinLatency = %v", done, d.MinLatency(64))
	}
}

func TestLinkContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkGBps = 1 // slow link so serialization dominates
	d := New(cfg)
	t1 := d.Access(0, 0, 4096, false)
	t2 := d.Access(0, 1<<20, 4096, false)
	if t2 <= t1 {
		t.Fatalf("second access (%v) did not queue behind first (%v)", t2, t1)
	}
}

func TestChannelInterleaving(t *testing.T) {
	d := New(DefaultConfig())
	rb := uint64(d.Config().DRAM.RowBytes)
	seen := map[int]bool{}
	for i := uint64(0); i < 8; i++ {
		ch, _ := d.mapAddr(i * rb)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("consecutive rows touched %d channels, want 4", len(seen))
	}
}

func TestReadVsWritePayloadDirection(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 0, 64, false)
	d.Access(0, 0, 64, true)
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	// Both carry one payload + two headers, so equal energy.
	wantBits := float64(2*(2*reqBytes+64)) * 8
	if got := s.LinkEnergyPJ / 11.4; got != wantBits {
		t.Fatalf("link bits = %v, want %v", got, wantBits)
	}
}

func TestDRAMStatsAggregation(t *testing.T) {
	d := New(DefaultConfig())
	for i := uint64(0); i < 16; i++ {
		d.Access(0, i*8192, 64, false)
	}
	ds := d.DRAMStats()
	if ds.Reads != 16 {
		t.Fatalf("aggregated reads = %d, want 16", ds.Reads)
	}
	if ds.EnergyPJ <= 0 {
		t.Fatal("no DRAM energy recorded")
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 0, 64, false)
	d.Reset()
	if s := d.Stats(); s.Reads != 0 || s.LinkEnergyPJ != 0 {
		t.Fatalf("Reset left stats %+v", s)
	}
	if ds := d.DRAMStats(); ds.Reads != 0 {
		t.Fatal("Reset did not clear channel stats")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestHigherLatencyConfig(t *testing.T) {
	// Fig. 8(b) sweeps CXL latency; verify the knob takes effect.
	fast := DefaultConfig()
	fast.LinkLatency = sim.FromNS(50)
	slow := DefaultConfig()
	slow.LinkLatency = sim.FromNS(400)
	tf := New(fast).Access(0, 0, 64, false)
	ts := New(slow).Access(0, 0, 64, false)
	if ts-tf != sim.FromNS(700) { // 2 * (400-50)
		t.Fatalf("latency delta = %v, want 700ns", ts-tf)
	}
}

func TestAttachPresets(t *testing.T) {
	dimm, relay, def := DIMMConfig(), HostRelayConfig(), DefaultConfig()
	if dimm.LinkLatency >= def.LinkLatency {
		t.Fatal("DIMM attach should have lower latency than CXL")
	}
	if relay.LinkLatency <= def.LinkLatency {
		t.Fatal("host relay should have higher latency than CXL")
	}
	if dimm.Channels >= def.Channels {
		t.Fatal("DIMM attach should expose fewer channels (pin budget)")
	}
	for _, c := range []Config{dimm, relay} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		d := New(c)
		if done := d.Access(0, 0, 64, false); done <= 0 {
			t.Fatal("preset device does not work")
		}
	}
}

// Property: completion time is never before the unloaded minimum, and
// back-to-back accesses to one address complete in nondecreasing order.
func TestAccessLowerBoundProperty(t *testing.T) {
	// (Completion order may legitimately invert: gap-filling link
	// reservation and independent banks let later requests finish
	// sooner, so only the per-access floor is asserted.)
	d := New(DefaultConfig())
	at := sim.Time(0)
	for i := 0; i < 500; i++ {
		at += sim.FromNS(float64(i % 7))
		done := d.Access(at, uint64(i)*64, 64, i%5 == 0)
		if done < at+2*d.Config().LinkLatency {
			t.Fatalf("access %d completed at %v, under the link floor", i, done)
		}
	}
}

func TestSaturationRaisesLatency(t *testing.T) {
	d := New(DefaultConfig())
	unloaded := d.Access(0, 0, 64, false)
	// Hammer the device from many virtual requesters at the same instant.
	var worst sim.Time
	for i := 0; i < 500; i++ {
		done := d.Access(0, uint64(i)*8192, 1024, false)
		if done > worst {
			worst = done
		}
	}
	if worst <= unloaded*2 {
		t.Fatalf("500 simultaneous 1 kB fetches finished by %v; no queueing modelled", worst)
	}
}
