package stats

import (
	"fmt"
	"math"
	"sort"
)

// Equivalence gate: the fence for any simulation mode that is not
// byte-identical to the serial golden oracle (today the sharded parallel
// mode; tomorrow a sampled fast-forward mode). The caller extracts a
// named metric set from each run and declares a tolerance; Equivalent
// reports exactly which metrics drifted and by how much.

// Tolerance declares how far a parallel run may drift from serial.
type Tolerance struct {
	// Rel is the maximum per-metric relative error, |p-s| / |s|.
	Rel float64
	// Abs is the absolute slack used when a metric's serial value is
	// zero (the relative error is undefined there): the parallel value
	// must then satisfy |p| <= Abs. It also floors the denominator for
	// near-zero serial values so a 1e-12 baseline does not turn float
	// noise into a gate failure.
	Abs float64
	// Conserved names metrics that must match exactly, tolerance zero:
	// conservation laws such as total access counts (every access is
	// simulated exactly once in any mode) or request balance
	// (hits + misses = lookups). A conserved name absent from both runs
	// passes; absent from only one fails.
	Conserved []string
}

// Delta is one metric's comparison.
type Delta struct {
	Name             string
	Serial, Parallel float64
	RelErr           float64 // 0 when the serial value is zero
	Conserved        bool
	OK               bool
}

// Report is the full comparison, one Delta per metric, in sorted name
// order. Failures lists human-readable descriptions of every violation.
type Report struct {
	Deltas   []Delta
	Failures []string
}

// String summarizes the report's failures (empty when equivalent).
func (r Report) String() string {
	if len(r.Failures) == 0 {
		return "equivalent"
	}
	s := r.Failures[0]
	if len(r.Failures) > 1 {
		s += fmt.Sprintf(" (and %d more)", len(r.Failures)-1)
	}
	return s
}

// Equivalent compares the two metric sets under the tolerance and
// reports whether every metric passes. Metrics are matched by name; a
// name present in one set but not the other is a failure (a mode that
// silently drops a metric is not equivalent). The report covers every
// name in either set, sorted, so output is deterministic.
func Equivalent(serial, parallel map[string]float64, tol Tolerance) (Report, bool) {
	conserved := make(map[string]bool, len(tol.Conserved))
	for _, n := range tol.Conserved {
		conserved[n] = true
	}
	names := make(map[string]bool, len(serial)+len(parallel))
	for n := range serial {
		names[n] = true
	}
	for n := range parallel {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var rep Report
	for _, n := range ordered {
		s, haveS := serial[n]
		p, haveP := parallel[n]
		d := Delta{Name: n, Serial: s, Parallel: p, Conserved: conserved[n]}
		switch {
		case !haveS || !haveP:
			side := "serial"
			if !haveP {
				side = "parallel"
			}
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s: missing from %s run", n, side))
		case d.Conserved:
			d.OK = s == p
			if !d.OK {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: conservation violated: serial %v, parallel %v", n, s, p))
			}
		case s == 0:
			d.OK = math.Abs(p) <= tol.Abs
			if !d.OK {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: serial is zero, parallel %v exceeds absolute slack %v", n, p, tol.Abs))
			}
		default:
			denom := math.Max(math.Abs(s), tol.Abs)
			d.RelErr = math.Abs(p-s) / denom
			d.OK = d.RelErr <= tol.Rel
			if !d.OK {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s: relative error %.4f exceeds %.4f (serial %v, parallel %v)",
						n, d.RelErr, tol.Rel, s, p))
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep, len(rep.Failures) == 0
}
