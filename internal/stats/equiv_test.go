package stats

import (
	"strings"
	"testing"
)

func TestEquivalent(t *testing.T) {
	tol := Tolerance{Rel: 0.05, Abs: 1e-9, Conserved: []string{"accesses"}}
	cases := []struct {
		name     string
		serial   map[string]float64
		parallel map[string]float64
		tol      Tolerance
		want     bool
		failHint string // substring expected in the first failure
	}{
		{
			name:     "identical",
			serial:   map[string]float64{"accesses": 1000, "amat_ns": 42.5},
			parallel: map[string]float64{"accesses": 1000, "amat_ns": 42.5},
			tol:      tol,
			want:     true,
		},
		{
			name:     "within tolerance",
			serial:   map[string]float64{"accesses": 1000, "amat_ns": 100},
			parallel: map[string]float64{"accesses": 1000, "amat_ns": 104},
			tol:      tol,
			want:     true,
		},
		{
			name:     "relative error too large",
			serial:   map[string]float64{"accesses": 1000, "amat_ns": 100},
			parallel: map[string]float64{"accesses": 1000, "amat_ns": 110},
			tol:      tol,
			want:     false,
			failHint: "relative error",
		},
		{
			name:     "negative metrics compare by magnitude of drift",
			serial:   map[string]float64{"accesses": 10, "skew": -100},
			parallel: map[string]float64{"accesses": 10, "skew": -104},
			tol:      tol,
			want:     true,
		},
		{
			name:     "conservation law violated within rel tolerance",
			serial:   map[string]float64{"accesses": 1000000},
			parallel: map[string]float64{"accesses": 1000001}, // 1e-6 rel, but must be exact
			tol:      tol,
			want:     false,
			failHint: "conservation violated",
		},
		{
			name:     "zero denominator passes when parallel also ~zero",
			serial:   map[string]float64{"accesses": 10, "exceptions": 0},
			parallel: map[string]float64{"accesses": 10, "exceptions": 0},
			tol:      tol,
			want:     true,
		},
		{
			name:     "zero denominator fails when parallel is nonzero",
			serial:   map[string]float64{"accesses": 10, "exceptions": 0},
			parallel: map[string]float64{"accesses": 10, "exceptions": 3},
			tol:      tol,
			want:     false,
			failHint: "serial is zero",
		},
		{
			name:     "near-zero denominator floored by Abs",
			serial:   map[string]float64{"accesses": 10, "noise": 1e-12},
			parallel: map[string]float64{"accesses": 10, "noise": 2e-12}, // 100% rel, but below Abs floor
			tol:      Tolerance{Rel: 0.05, Abs: 1e-9, Conserved: []string{"accesses"}},
			want:     true,
		},
		{
			name:     "metric missing from parallel run",
			serial:   map[string]float64{"accesses": 10, "amat_ns": 5},
			parallel: map[string]float64{"accesses": 10},
			tol:      tol,
			want:     false,
			failHint: "missing from parallel",
		},
		{
			name:     "metric missing from serial run",
			serial:   map[string]float64{"accesses": 10},
			parallel: map[string]float64{"accesses": 10, "extra": 1},
			tol:      tol,
			want:     false,
			failHint: "missing from serial",
		},
		{
			name:     "conserved metric absent from both passes",
			serial:   map[string]float64{"amat_ns": 5},
			parallel: map[string]float64{"amat_ns": 5},
			tol:      tol,
			want:     true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, ok := Equivalent(tc.serial, tc.parallel, tc.tol)
			if ok != tc.want {
				t.Fatalf("Equivalent = %v, want %v; report: %v", ok, tc.want, rep.Failures)
			}
			if !tc.want {
				if len(rep.Failures) == 0 {
					t.Fatal("failing comparison produced no failure messages")
				}
				if tc.failHint != "" && !strings.Contains(rep.Failures[0], tc.failHint) {
					t.Fatalf("first failure %q does not mention %q", rep.Failures[0], tc.failHint)
				}
			}
			if tc.want && rep.String() != "equivalent" {
				t.Fatalf("String() = %q for passing report", rep.String())
			}
		})
	}
}

// The report must enumerate every metric, sorted, regardless of outcome.
func TestEquivalentReportDeterministic(t *testing.T) {
	serial := map[string]float64{"c": 1, "a": 2, "b": 3}
	parallel := map[string]float64{"c": 1, "a": 2, "b": 3}
	rep, ok := Equivalent(serial, parallel, Tolerance{Rel: 0.01})
	if !ok {
		t.Fatal(rep.Failures)
	}
	if len(rep.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(rep.Deltas))
	}
	for i, want := range []string{"a", "b", "c"} {
		if rep.Deltas[i].Name != want {
			t.Fatalf("delta %d is %q, want %q", i, rep.Deltas[i].Name, want)
		}
	}
}
