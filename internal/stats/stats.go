// Package stats collects per-access latency breakdowns and the summary
// math (means, geomeans) used by the experiment harness. The breakdown
// components mirror the paper's Fig. 2(a): core/L1 time, metadata time
// (SLB or metadata-cache), intra-stack and inter-stack interconnect,
// DRAM cache access, and extended (next-level) memory.
package stats

import (
	"fmt"
	"math"

	"ndpext/internal/sim"
)

// Breakdown accumulates time per latency component.
type Breakdown struct {
	Core      sim.Time // compute gaps + L1 hits
	Meta      sim.Time // SLB / metadata lookups incl. refills
	IntraNoC  sim.Time
	InterNoC  sim.Time
	CacheDRAM sim.Time // DRAM cache access at the home unit
	Extended  sim.Time // CXL + extended memory
	Accesses  uint64
}

// Add merges another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Core += o.Core
	b.Meta += o.Meta
	b.IntraNoC += o.IntraNoC
	b.InterNoC += o.InterNoC
	b.CacheDRAM += o.CacheDRAM
	b.Extended += o.Extended
	b.Accesses += o.Accesses
}

// Total sums all components.
func (b Breakdown) Total() sim.Time {
	return b.Core + b.Meta + b.IntraNoC + b.InterNoC + b.CacheDRAM + b.Extended
}

// Fractions returns each component as a fraction of the total.
func (b Breakdown) Fractions() map[string]float64 {
	t := float64(b.Total())
	if t == 0 {
		return map[string]float64{}
	}
	return map[string]float64{
		"core":      float64(b.Core) / t,
		"meta":      float64(b.Meta) / t,
		"intra-noc": float64(b.IntraNoC) / t,
		"inter-noc": float64(b.InterNoC) / t,
		"dram":      float64(b.CacheDRAM) / t,
		"extended":  float64(b.Extended) / t,
	}
}

// AvgAccessNS returns the mean per-access latency in nanoseconds.
func (b Breakdown) AvgAccessNS() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return b.Total().NS() / float64(b.Accesses)
}

// AvgInterconnectNS returns the mean interconnect (intra+inter) time per
// access in nanoseconds (Fig. 7's metric).
func (b Breakdown) AvgInterconnectNS() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return (b.IntraNoC + b.InterNoC).NS() / float64(b.Accesses)
}

// String renders the fractional breakdown.
func (b Breakdown) String() string {
	f := b.Fractions()
	return fmt.Sprintf("core=%.0f%% meta=%.0f%% intra=%.0f%% inter=%.0f%% dram=%.0f%% ext=%.0f%%",
		100*f["core"], 100*f["meta"], 100*f["intra-noc"], 100*f["inter-noc"], 100*f["dram"], 100*f["extended"])
}

// Geomean returns the geometric mean of xs (1 if empty). Non-positive
// entries are ignored.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
