package stats

import (
	"math"
	"testing"

	"ndpext/internal/sim"
)

func TestBreakdownAddAndTotal(t *testing.T) {
	a := Breakdown{Core: 1, Meta: 2, IntraNoC: 3, InterNoC: 4, CacheDRAM: 5, Extended: 6, Accesses: 10}
	b := a
	a.Add(b)
	if a.Total() != 42 || a.Accesses != 20 {
		t.Fatalf("after add: total=%v accesses=%d", a.Total(), a.Accesses)
	}
}

func TestFractions(t *testing.T) {
	b := Breakdown{Core: 25, InterNoC: 75}
	f := b.Fractions()
	if f["core"] != 0.25 || f["inter-noc"] != 0.75 {
		t.Fatalf("fractions = %v", f)
	}
	if len((Breakdown{}).Fractions()) != 0 {
		t.Fatal("empty breakdown produced fractions")
	}
}

func TestAvgAccessNS(t *testing.T) {
	b := Breakdown{Core: 100 * sim.Nanosecond, Accesses: 10}
	if got := b.AvgAccessNS(); got != 10 {
		t.Fatalf("avg = %v", got)
	}
	if (Breakdown{}).AvgAccessNS() != 0 {
		t.Fatal("idle avg not 0")
	}
}

func TestAvgInterconnectNS(t *testing.T) {
	b := Breakdown{IntraNoC: 30 * sim.Nanosecond, InterNoC: 70 * sim.Nanosecond, Accesses: 10}
	if got := b.AvgInterconnectNS(); got != 10 {
		t.Fatalf("interconnect avg = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if Geomean(nil) != 1 {
		t.Fatal("empty geomean not 1")
	}
	// Non-positive entries are ignored.
	if g := Geomean([]float64{4, 0, -1}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean with junk = %v", g)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
}

func TestStringNonEmpty(t *testing.T) {
	b := Breakdown{Core: 1, Accesses: 1}
	if b.String() == "" {
		t.Fatal("empty string")
	}
}
