package simcache

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(s string) Key { return Sum([]byte(s)) }

func TestSumLengthPrefixed(t *testing.T) {
	if Sum([]byte("ab"), []byte("c")) == Sum([]byte("a"), []byte("bc")) {
		t.Fatal("part boundaries are ambiguous")
	}
	if Sum([]byte("x")) != Sum([]byte("x")) {
		t.Fatal("hashing is not deterministic")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	k := key("job")
	got, err := ParseKey(k.String())
	if err != nil || got != k {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2, 0)
	c.Put(key("a"), 1)
	c.Put(key("b"), 2)
	if _, ok := c.Get(key("a")); !ok { // bump a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put(key("c"), 3)
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(key(k)); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New[string](8, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put(key("a"), "v")
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("expired entry served")
	}
	if s := c.Stats(); s.Expirations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestDoSingleflight launches many goroutines for the same key and
// requires exactly one execution; distinct keys run independently.
func TestDoSingleflight(t *testing.T) {
	c := New[int](16, 0)
	var execs atomic.Int64
	var started sync.WaitGroup
	release := make(chan struct{})
	const waiters = 16

	started.Add(waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			v, _, err := c.Do(key("same"), func() (int, error) {
				execs.Add(1)
				<-release // hold the flight open until everyone piled on
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
		}()
	}
	started.Wait()
	// Give stragglers a moment to reach Do before releasing the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if s := c.Stats(); s.Dedups == 0 {
		t.Fatalf("no dedups recorded: %+v", s)
	}
	// A later Do is a pure cache hit.
	if _, hit, _ := c.Do(key("same"), func() (int, error) { t.Error("re-executed"); return 0, nil }); !hit {
		t.Fatal("expected cache hit")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](4, 0)
	boom := errors.New("boom")
	calls := 0
	fail := func() (int, error) { calls++; return 0, boom }
	if _, _, err := c.Do(key("e"), fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ok := func() (int, error) { calls++; return 7, nil }
	v, hit, err := c.Do(key("e"), ok)
	if err != nil || v != 7 || hit {
		t.Fatalf("retry = (%d, %v, %v)", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	c := New[[]byte](8, time.Hour)
	c.Put(key("a"), []byte(`{"r":1}`))
	c.Put(key("b"), []byte(`{"r":2}`))
	c.Get(key("a")) // make a the MRU

	var buf bytes.Buffer
	if err := SaveIndex(c, &buf); err != nil {
		t.Fatal(err)
	}
	fresh := New[[]byte](8, time.Hour)
	n, err := LoadIndex(fresh, &buf)
	if err != nil || n != 2 {
		t.Fatalf("LoadIndex = (%d, %v)", n, err)
	}
	for k, want := range map[string]string{"a": `{"r":1}`, "b": `{"r":2}`} {
		v, ok := fresh.Get(key(k))
		if !ok || string(v) != want {
			t.Fatalf("%s = (%q, %v), want %q", k, v, ok, want)
		}
	}

	// File round trip, including the missing-file cold start.
	dir := t.TempDir()
	path := filepath.Join(dir, "index.json")
	if n, err := LoadFile(New[[]byte](8, 0), filepath.Join(dir, "absent.json")); n != 0 || err != nil {
		t.Fatalf("cold start = (%d, %v)", n, err)
	}
	if err := SaveFile(c, path); err != nil {
		t.Fatal(err)
	}
	fresh2 := New[[]byte](8, time.Hour)
	if n, err := LoadFile(fresh2, path); n != 2 || err != nil {
		t.Fatalf("LoadFile = (%d, %v)", n, err)
	}
}

func TestPersistSkipsExpired(t *testing.T) {
	c := New[[]byte](8, 0)
	c.PutWithExpiry(key("dead"), []byte(`{}`), time.Now().Add(-time.Second))
	c.PutWithExpiry(key("live"), []byte(`{}`), time.Now().Add(time.Hour))
	var buf bytes.Buffer
	if err := SaveIndex(c, &buf); err != nil {
		t.Fatal(err)
	}
	fresh := New[[]byte](8, 0)
	if n, err := LoadIndex(fresh, &buf); n != 1 || err != nil {
		t.Fatalf("LoadIndex = (%d, %v), want 1 live entry", n, err)
	}
}

// TestConcurrentMixed hammers every entry point at once under -race.
func TestConcurrentMixed(t *testing.T) {
	c := New[int](32, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := key(fmt.Sprintf("k%d", i%40))
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.Do(k, func() (int, error) { return i, nil })
				case 3:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
