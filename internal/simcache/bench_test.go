package simcache

import (
	"fmt"
	"testing"
)

// BenchmarkSum measures cache-key hashing over a canonical-config-sized
// input (~1 kB), the per-submission cost of content addressing.
func BenchmarkSum(b *testing.B) {
	cfg := make([]byte, 1024)
	for i := range cfg {
		cfg[i] = byte(i)
	}
	wl := []byte("workload=pr|seed=1|accesses=30000|scale=1")
	b.SetBytes(int64(len(cfg) + len(wl)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Sum(cfg, wl)
	}
}

// BenchmarkGetHit measures the steady-state hit path.
func BenchmarkGetHit(b *testing.B) {
	c := New[[]byte](1024, 0)
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = Sum([]byte(fmt.Sprintf("k%d", i)))
		c.Put(keys[i], []byte("{}"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(keys[i%len(keys)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkDoHit measures Do on a warm key (the repeat-submission path).
func BenchmarkDoHit(b *testing.B) {
	c := New[[]byte](16, 0)
	k := Sum([]byte("job"))
	c.Put(k, []byte("{}"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, hit, _ := c.Do(k, func() ([]byte, error) { return nil, nil }); !hit {
			b.Fatal("miss")
		}
	}
}
