// Package simcache is the content-addressed result cache behind the
// serving layer and the experiment matrix: simulation inputs (canonical
// config bytes, workload parameters, fault specs) hash to a Key, and a
// bounded LRU cache with optional TTL maps keys to finished results.
// Do() adds singleflight deduplication so N concurrent requests for the
// same key cost one simulation — the rest block and share the leader's
// result.
//
// The cache is generic over the stored value: the server keeps
// canonical JSON result documents ([]byte, persistable across restarts
// via SaveIndex/LoadIndex), while the experiment matrix keeps decoded
// *system.Result values in-process.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Key is a content address: the SHA-256 of a job's canonical inputs.
type Key [sha256.Size]byte

// Sum hashes the given canonical input parts into a Key. Each part is
// length-prefixed so part boundaries are unambiguous ("ab","c" never
// collides with "a","bc").
func Sum(parts ...[]byte) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// String renders the key as lowercase hex (the wire/API form).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by String.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return Key{}, fmt.Errorf("simcache: invalid key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// Stats counts cache activity since construction.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Dedups      uint64 `json:"dedups"` // Do calls that piggybacked on an in-flight computation
	Evictions   uint64 `json:"evictions"`
	Expirations uint64 `json:"expirations"`
	Entries     int    `json:"entries"`
}

// entry is one resident cache slot.
type entry[V any] struct {
	key     Key
	val     V
	expires time.Time // zero: never expires
}

// flight is one in-progress Do computation.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a bounded LRU + TTL map from Key to V with singleflight
// deduplication. All methods are safe for concurrent use.
type Cache[V any] struct {
	mu         sync.Mutex
	maxEntries int
	ttl        time.Duration
	ll         *list.List // front = most recently used; values are *entry[V]
	items      map[Key]*list.Element
	inflight   map[Key]*flight[V]
	stats      Stats
	now        func() time.Time // injectable for TTL tests
}

// New returns a cache holding at most maxEntries values (>= 1).
// ttl <= 0 disables expiry.
func New[V any](maxEntries int, ttl time.Duration) *Cache[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache[V]{
		maxEntries: maxEntries,
		ttl:        ttl,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
		inflight:   make(map[Key]*flight[V]),
		now:        time.Now,
	}
}

// Get returns the cached value for k, bumping its recency.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(k)
}

func (c *Cache[V]) getLocked(k Key) (V, bool) {
	var zero V
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return zero, false
	}
	e := el.Value.(*entry[V])
	if !e.expires.IsZero() && !c.now().Before(e.expires) {
		c.removeLocked(el)
		c.stats.Expirations++
		c.stats.Misses++
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return e.val, true
}

// Contains reports whether k is resident and unexpired without bumping
// recency or the hit/miss counters — a side-effect-free peek for
// admission planning (e.g. counting how many cells of a batch would
// actually need a queue slot).
func (c *Cache[V]) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e := el.Value.(*entry[V])
	return e.expires.IsZero() || c.now().Before(e.expires)
}

// Put stores v under k with the cache's default TTL.
func (c *Cache[V]) Put(k Key, v V) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	c.PutWithExpiry(k, v, expires)
}

// PutWithExpiry stores v with an explicit expiry instant (zero: never).
// Used when reloading a persisted index so remaining lifetimes survive
// the restart.
func (c *Cache[V]) PutWithExpiry(k Key, v V, expires time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry[V])
		e.val, e.expires = v, expires
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&entry[V]{key: k, val: v, expires: expires})
	c.items[k] = el
	for c.ll.Len() > c.maxEntries {
		back := c.ll.Back()
		c.removeLocked(back)
		c.stats.Evictions++
	}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.items, e.key)
}

// Do returns the cached value for k, or computes it with fn exactly once
// no matter how many goroutines ask concurrently: the first caller runs
// fn, the rest block until it finishes and share its value. hit reports
// whether the value came from cache (true) rather than this or a
// piggybacked computation (false). Errors are returned to every waiter
// and are NOT cached — a later Do retries.
func (c *Cache[V]) Do(k Key, fn func() (V, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if v, ok := c.getLocked(k); ok {
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[k]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		<-f.done
		return f.val, false, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	f.val, f.err = fn()
	if f.err == nil {
		c.Put(k, f.val)
	}
	c.mu.Lock()
	delete(c.inflight, k)
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Len returns the resident entry count (including not-yet-expired TTLs).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the activity counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Each visits every resident, unexpired entry from most to least
// recently used without changing recency. The callback must not call
// back into the cache.
func (c *Cache[V]) Each(f func(k Key, v V, expires time.Time)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[V])
		if !e.expires.IsZero() && !now.Before(e.expires) {
			continue
		}
		f(e.key, e.val, e.expires)
	}
}
