package simcache

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// indexVersion bumps when the persisted index layout changes.
const indexVersion = 1

// indexFile is the on-disk form of a []byte cache: the entries in
// most-recently-used-first order, each with its absolute expiry so
// remaining TTLs survive a restart.
type indexFile struct {
	Version int          `json:"version"`
	SavedAt time.Time    `json:"saved_at"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Key     string          `json:"key"`
	Expires time.Time       `json:"expires,omitzero"`
	Value   json.RawMessage `json:"value"`
}

// SaveIndex writes every resident, unexpired entry of a []byte cache to
// w as a JSON index. Values must themselves be valid JSON documents
// (the serving layer stores canonical result docs), keeping the index
// human-inspectable.
func SaveIndex(c *Cache[[]byte], w io.Writer) error {
	idx := indexFile{Version: indexVersion, SavedAt: time.Now()}
	c.Each(func(k Key, v []byte, expires time.Time) {
		idx.Entries = append(idx.Entries, indexEntry{
			Key: k.String(), Expires: expires, Value: json.RawMessage(v),
		})
	})
	// No indentation: the encoder would reformat the embedded raw value
	// documents, and persisted entries must stay byte-identical.
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&idx); err != nil {
		return fmt.Errorf("simcache: save index: %w", err)
	}
	return bw.Flush()
}

// LoadIndex reads an index written by SaveIndex into c, skipping entries
// that expired while the server was down. It returns how many entries
// were restored.
func LoadIndex(c *Cache[[]byte], r io.Reader) (int, error) {
	var idx indexFile
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&idx); err != nil {
		return 0, fmt.Errorf("simcache: load index: %w", err)
	}
	if idx.Version != indexVersion {
		return 0, fmt.Errorf("simcache: index version %d, want %d", idx.Version, indexVersion)
	}
	now := time.Now()
	n := 0
	// Insert in reverse so the file's MRU-first order is reconstructed.
	for i := len(idx.Entries) - 1; i >= 0; i-- {
		e := idx.Entries[i]
		if !e.Expires.IsZero() && !now.Before(e.Expires) {
			continue
		}
		k, err := ParseKey(e.Key)
		if err != nil {
			return n, err
		}
		c.PutWithExpiry(k, []byte(e.Value), e.Expires)
		n++
	}
	return n, nil
}

// SaveFile persists the index to path atomically (write + rename).
func SaveFile(c *Cache[[]byte], path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveIndex(c, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores the index from path; a missing file is not an error
// (cold start) and restores zero entries.
func LoadFile(c *Cache[[]byte], path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return LoadIndex(c, f)
}
