package scheduler

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"ndpext/internal/server/store"
)

func waitBatch(t *testing.T, b *Batch) {
	t.Helper()
	select {
	case <-b.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("batch %s stuck: %+v", b.ID, b.Status())
	}
}

// TestBatchDAGDedup is the acceptance-criteria matrix: a 4-design ×
// 3-workload batch sharing cells with prior single submissions runs
// only the uncached unique cells, and every cell's document is
// byte-identical to the equivalent single submission.
func TestBatchDAGDedup(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 32})
	defer s.Drain(context.Background())

	base := JobSpec{Seed: 1, Accesses: 1000}
	designs := []string{"NDPExt", "Nexus", "Whirlpool", "Jigsaw"}
	wls := []string{"pr", "bfs", "cc"}

	// Pre-warm three of the twelve cells via single submissions.
	warm := map[[2]string][]byte{}
	for _, cell := range [][2]string{{"NDPExt", "pr"}, {"Nexus", "bfs"}, {"Jigsaw", "cc"}} {
		spec := base
		spec.Design, spec.Workload = cell[0], cell[1]
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		warm[cell] = j.Status().Result
	}
	if got := s.SimsRun(); got != 3 {
		t.Fatalf("pre-warm ran %d sims, want 3", got)
	}

	b, err := s.SubmitBatch(BatchSpec{Designs: designs, Workloads: wls, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cells) != 12 {
		t.Fatalf("batch expanded to %d cells, want 12", len(b.Cells))
	}
	waitBatch(t, b)
	if st := b.State(); st != StateDone {
		t.Fatalf("batch state = %s, want done: %+v", st, b.Status())
	}
	// Only the 9 cold cells simulate; the 3 warm ones are store hits.
	if got := s.SimsRun(); got != 12 {
		t.Errorf("after batch SimsRun = %d, want 12 (9 fresh + 3 pre-warmed)", got)
	}
	hits := 0
	for _, c := range b.Cells {
		st := c.Job.Status()
		if st.State != StateDone {
			t.Errorf("cell %s/%s: state %s (err %q)", c.Design, c.Workload, st.State, st.Error)
		}
		if st.CacheHit {
			hits++
			want := warm[[2]string{c.Design, c.Workload}]
			if want == nil {
				t.Errorf("cell %s/%s claims a cache hit but was never pre-warmed", c.Design, c.Workload)
			} else if !bytes.Equal(st.Result, want) {
				t.Errorf("cell %s/%s: batch document differs from the single-submission bytes", c.Design, c.Workload)
			}
		}
	}
	if hits != 3 {
		t.Errorf("%d cells were cache hits, want the 3 pre-warmed ones", hits)
	}

	// Cold cells must equal fresh single submissions byte-for-byte too
	// (they now hit the store, proving shared addressing).
	for _, c := range b.Cells {
		spec := base
		spec.Design, spec.Workload = c.Design, c.Workload
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		if !j.CacheHit() {
			t.Errorf("re-submitting cell %s/%s missed the store", c.Design, c.Workload)
		}
		if !bytes.Equal(j.Result(), c.Job.Result()) {
			t.Errorf("cell %s/%s: single-submit document differs from the batch cell", c.Design, c.Workload)
		}
	}
	if got := s.SimsRun(); got != 12 {
		t.Errorf("re-submissions ran sims (SimsRun = %d, want still 12)", got)
	}
}

// TestBatchSharedCellsRunOnce submits two batches whose matrices
// overlap while holding all workers, proving in-flight cells are shared
// (piggybacked) across batches rather than re-queued.
func TestBatchSharedCellsRunOnce(t *testing.T) {
	started := make(chan *Job, 8)
	release := make(chan struct{})
	s := New(newTestStore(t, store.Options{}), nil, Options{Workers: 1, QueueDepth: 16})
	s.testJobStarted = func(j *Job) {
		started <- j
		<-release
	}
	s.Start()

	b1, err := s.SubmitBatch(BatchSpec{
		Designs:   []string{"NDPExt", "Nexus"},
		Workloads: []string{"pr", "bfs"},
		Base:      JobSpec{Accesses: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no cell ever started")
	}

	// Overlaps b1 in two of four cells; those must piggyback, not queue.
	b2, err := s.SubmitBatch(BatchSpec{
		Designs:   []string{"NDPExt", "Whirlpool"},
		Workloads: []string{"pr", "bfs"},
		Base:      JobSpec{Accesses: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	deduped := 0
	for _, c := range b2.Cells {
		if c.Job.Status().Deduped {
			deduped++
		}
	}
	if deduped != 2 {
		t.Errorf("%d of b2's cells piggybacked, want the 2 overlapping ones", deduped)
	}

	close(release)
	waitBatch(t, b1)
	waitBatch(t, b2)
	// 4 unique cells in b1 + 2 new in b2.
	if got := s.SimsRun(); got != 6 {
		t.Errorf("SimsRun = %d, want 6 unique cells", got)
	}
	// Shared cells carry the same result bytes in both batches.
	cellDoc := func(b *Batch, d, w string) []byte {
		for _, c := range b.Cells {
			if c.Design == d && c.Workload == w {
				return c.Job.Result()
			}
		}
		t.Fatalf("batch %s has no cell %s/%s", b.ID, d, w)
		return nil
	}
	for _, w := range []string{"pr", "bfs"} {
		if !bytes.Equal(cellDoc(b1, "NDPExt", w), cellDoc(b2, "NDPExt", w)) {
			t.Errorf("shared cell NDPExt/%s differs between batches", w)
		}
	}
	s.Drain(context.Background())
}

// TestBatchValidation rejects malformed matrices up front.
func TestBatchValidation(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, QueueDepth: 4})
	defer s.Drain(context.Background())

	for name, spec := range map[string]BatchSpec{
		"no designs":     {Workloads: []string{"pr"}},
		"no inner axis":  {Designs: []string{"NDPExt"}},
		"both axes":      {Designs: []string{"NDPExt"}, Workloads: []string{"pr"}, Traces: []string{"t"}},
		"dup design":     {Designs: []string{"NDPExt", "NDPExt"}, Workloads: []string{"pr"}},
		"dup workload":   {Designs: []string{"NDPExt"}, Workloads: []string{"pr", "pr"}},
		"base sets axis": {Designs: []string{"NDPExt"}, Workloads: []string{"pr"}, Base: JobSpec{Workload: "bfs"}},
		"bad workload":   {Designs: []string{"NDPExt"}, Workloads: []string{"nope"}},
		"bad design":     {Designs: []string{"NopeDesign"}, Workloads: []string{"pr"}},
	} {
		if _, err := s.SubmitBatch(spec); err == nil {
			t.Errorf("%s: SubmitBatch accepted a malformed matrix", name)
		}
	}
	if got := s.SimsRun(); got != 0 {
		t.Errorf("rejected batches ran %d sims", got)
	}
}

// TestBatchQueueFullAtomic: a batch needing more slots than the queue
// has free is rejected whole — no cells admitted, no partial matrix.
func TestBatchQueueFullAtomic(t *testing.T) {
	started := make(chan *Job, 8)
	release := make(chan struct{})
	s := New(newTestStore(t, store.Options{}), nil, Options{Workers: 1, QueueDepth: 2})
	s.testJobStarted = func(j *Job) {
		started <- j
		<-release
	}
	s.Start()

	// Occupy the worker and one queue slot: one slot free.
	if _, err := s.Submit(fastSpec(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started")
	}
	if _, err := s.Submit(fastSpec(2)); err != nil {
		t.Fatal(err)
	}

	// Needs 2 fresh slots with 1 free: rejected atomically.
	_, err := s.SubmitBatch(BatchSpec{
		Designs:   []string{"NDPExt", "Nexus"},
		Workloads: []string{"bfs"},
		Base:      JobSpec{Accesses: 1000},
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: err = %v, want ErrQueueFull", err)
	}
	if !strings.Contains(err.Error(), "2 slots") {
		t.Errorf("error %q does not report the slot shortfall", err)
	}
	if got := s.Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if got := len(s.Batches()); got != 0 {
		t.Errorf("rejected batch was registered (%d batches)", got)
	}

	// A batch overlapping the held jobs needs only 1 slot and fits.
	b, err := s.SubmitBatch(BatchSpec{
		Designs:   []string{"NDPExt"},
		Workloads: []string{"pr", "bfs"},
		Base:      JobSpec{Seed: 1, Accesses: 1000},
	})
	if err != nil {
		t.Fatalf("batch that piggybacks queued work: %v", err)
	}
	close(release)
	waitBatch(t, b)
	s.Drain(context.Background())
}

// TestBatchResultDocDeterministic renders the same matrix on two fresh
// schedulers and checks the canonical documents match byte-for-byte —
// no server IDs, timestamps, or map ordering can leak in.
func TestBatchResultDocDeterministic(t *testing.T) {
	render := func() []byte {
		s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 32})
		defer s.Drain(context.Background())
		b, err := s.SubmitBatch(BatchSpec{
			Designs:   []string{"NDPExt", "Host"},
			Workloads: []string{"pr", "bfs"},
			Base:      JobSpec{Seed: 3, Accesses: 1000},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.ResultDoc(); !errors.Is(err, ErrBatchIncomplete) {
			// The batch may legitimately already be terminal on a fast
			// machine, so only a wrong error kind fails.
			if err != nil {
				t.Fatalf("in-flight ResultDoc: err = %v, want ErrBatchIncomplete", err)
			}
		}
		waitBatch(t, b)
		doc, err := b.ResultDoc()
		if err != nil {
			t.Fatal(err)
		}
		return doc
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("matrix documents differ across fresh servers:\n%s\n---\n%s", a, b)
	}
}

// TestBatchSubscribeMultiplex checks the merged stream tags every event
// with its cell position and terminates once all cells do.
func TestBatchSubscribeMultiplex(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2, QueueDepth: 16})
	defer s.Drain(context.Background())

	b, err := s.SubmitBatch(BatchSpec{
		Designs:   []string{"NDPExt", "Nexus"},
		Workloads: []string{"pr"},
		Base:      JobSpec{Accesses: 5000, EpochCycles: 50000},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := b.Subscribe()
	defer cancel()

	terminal := map[int]bool{}
	sawEpoch := false
	deadline := time.After(60 * time.Second)
	for len(terminal) < len(b.Cells) {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed with %d of %d cells terminal", len(terminal), len(b.Cells))
			}
			if ev.Cell < 0 || ev.Cell >= len(b.Cells) {
				t.Fatalf("event cell index %d out of range", ev.Cell)
			}
			if c := b.Cells[ev.Cell]; c.Design != ev.Design || c.Workload != ev.Workload {
				t.Fatalf("event position tag %s/%s does not match cell %d", ev.Design, ev.Workload, ev.Cell)
			}
			switch ev.Event.Type {
			case "epoch":
				sawEpoch = true
			case string(StateDone), string(StateFailed), string(StateTruncated):
				terminal[ev.Cell] = true
			}
		case <-deadline:
			t.Fatalf("timed out with %d of %d cells terminal", len(terminal), len(b.Cells))
		}
	}
	if !sawEpoch {
		t.Error("no epoch events crossed the multiplexed stream")
	}
	// After all cells finish, the stream drains and closes.
	for range ch {
	}
}

// TestBatchConcurrentWithSingles hammers overlapping batch and single
// submissions concurrently; with -race this doubles as the DAG's
// synchronization test. Every unique cell still simulates exactly once.
func TestBatchConcurrentWithSingles(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 64})
	defer s.Drain(context.Background())

	var wg sync.WaitGroup
	var batches [4]*Batch
	errs := make(chan error, 12)
	for i := range batches {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := s.SubmitBatch(BatchSpec{
				Designs:   []string{"NDPExt", "Nexus"},
				Workloads: []string{"pr", "bfs"},
				Base:      JobSpec{Accesses: 1000},
			})
			if err != nil {
				errs <- err
				return
			}
			batches[i] = b
		}(i)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := JobSpec{Design: "NDPExt", Workload: "pr", Accesses: 1000}
			if i%2 == 1 {
				spec.Design = "Nexus"
			}
			j, err := s.Submit(spec)
			if err != nil {
				errs <- err
				return
			}
			waitJob(t, j)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, b := range batches {
		waitBatch(t, b)
		if st := b.State(); st != StateDone {
			t.Errorf("batch %s state = %s: %+v", b.ID, st, b.Status())
		}
	}
	if got := s.SimsRun(); got != 4 {
		t.Errorf("SimsRun = %d, want 4 unique cells across everything", got)
	}
}
