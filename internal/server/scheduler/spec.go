package scheduler

import (
	"fmt"
	"time"

	"ndpext/internal/fault"
	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// JobSpec is the submission body of POST /v1/jobs: which machine to
// simulate, on which workload, under which fault scenario. Zero-valued
// optional fields take the documented defaults, applied by normalize()
// BEFORE the cache key is computed, so "seed omitted" and "seed": 1
// address the same cache entry.
type JobSpec struct {
	// Workload names a generator from internal/workloads (see
	// GET /v1/workloads). Exactly one of Workload and Trace is set.
	Workload string `json:"workload,omitempty"`
	// Trace names a recorded trace file (relative to the server's
	// -trace-dir; path escapes are rejected) to replay instead of a
	// generated workload. Trace jobs stream the file with bounded memory
	// and are cache-keyed by the file's SHA-256 digest, so a re-recorded
	// file with different bytes never collides with stale results.
	Trace string `json:"trace,omitempty"`
	// Design is a system design name: NDPExt, NDPExt-static, Nexus,
	// Whirlpool, Jigsaw, Static, or Host. Default NDPExt.
	Design string `json:"design,omitempty"`
	// Mem picks the NDP stack memory: "hbm" (default) or "hmc".
	Mem string `json:"mem,omitempty"`
	// Seed seeds workload generation (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Accesses is the per-core access budget (default 30000).
	Accesses int `json:"accesses,omitempty"`
	// Scale multiplies workload footprints (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Reconfig is the reconfiguration mode: "full" (default),
	// "partial", or "static".
	Reconfig string `json:"reconfig,omitempty"`
	// EpochCycles overrides the host-runtime epoch length in core
	// cycles (default: the machine's DefaultConfig value).
	EpochCycles int64 `json:"epoch_cycles,omitempty"`
	// Faults is a fault-injection spec in the internal/fault grammar,
	// e.g. "vault-fail,unit=3,at=40us;cxl-retry,rate=0.01".
	Faults string `json:"faults,omitempty"`
	// FaultSeed seeds the fault injector (default 1, like ndpsim).
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// BanditSeed seeds the NDPExt-MAB design's Thompson sampler
	// (default 1, like ndpsim; ignored by every other design). Part of
	// the cache key: different seeds may install different
	// configurations.
	BanditSeed uint64 `json:"bandit_seed,omitempty"`
	// Arms restricts the NDPExt-MAB arm set (comma-separated, e.g.
	// "paper,greedy"; empty = all four arms). A single name runs that
	// fixed policy — the fixed-arm baselines of the adaptive sweep.
	Arms string `json:"arms,omitempty"`
	// MaxCycles aborts the run deterministically after this many
	// simulated core cycles (0: server default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// MaxWallMS aborts the run after this much wall-clock time
	// (0: server default). Wall-truncated results are never cached.
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
	// DeadlineMS, when > 0, bounds the run with a context deadline: on
	// expiry the simulation checkpoints and the job lands truncated with
	// its partial result, exactly like a drain cancellation. Unlike
	// MaxWallMS it cancels between events rather than at watchdog
	// checks, and it is NOT part of the cache key — a run finishing
	// under its deadline is byte-identical to one without, and a
	// deadline-truncated result is never cached. A submission that
	// piggybacks on an identical in-flight job rides that job's
	// deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// normalize fills defaults in place; the result is what gets hashed,
// echoed in job status, and simulated.
func (js JobSpec) normalize() JobSpec {
	if js.Design == "" {
		js.Design = system.NDPExt.String()
	}
	if js.Mem == "" {
		js.Mem = "hbm"
	}
	// Generation parameters are meaningless for trace replay; leaving
	// them zero keeps them out of the echoed spec and the cache key.
	if js.Trace == "" {
		if js.Seed == 0 {
			js.Seed = 1
		}
		if js.Accesses == 0 {
			js.Accesses = 30000
		}
		if js.Scale == 0 {
			js.Scale = 1
		}
	}
	if js.Reconfig == "" {
		js.Reconfig = "full"
	}
	if js.FaultSeed == 0 {
		js.FaultSeed = 1
	}
	if js.BanditSeed == 0 {
		js.BanditSeed = 1
	}
	return js
}

// build validates the spec and assembles the machine configuration. The
// returned config carries no hooks (the worker adds its own progress
// hooks after keying, so hooks never perturb the cache key).
func (js JobSpec) build(defMaxWall time.Duration, defMaxCycles int64) (system.Config, error) {
	d, err := system.ParseDesign(js.Design)
	if err != nil {
		return system.Config{}, err
	}
	var cfg system.Config
	switch js.Mem {
	case "hbm":
		cfg = system.DefaultConfig(d)
	case "hmc":
		cfg = system.HMCConfig(d)
	default:
		return system.Config{}, fmt.Errorf("unknown mem %q (want hbm or hmc)", js.Mem)
	}
	cfg.Reconfig, err = system.ParseReconfigMode(js.Reconfig)
	if err != nil {
		return system.Config{}, err
	}
	if js.EpochCycles < 0 {
		return system.Config{}, fmt.Errorf("epoch_cycles must be >= 0")
	}
	if js.EpochCycles > 0 {
		cfg.EpochCycles = js.EpochCycles
	}
	if js.Trace != "" {
		if js.Workload != "" {
			return system.Config{}, fmt.Errorf("workload and trace are mutually exclusive")
		}
		if js.Seed != 0 || js.Accesses != 0 || js.Scale != 0 {
			return system.Config{}, fmt.Errorf("seed/accesses/scale do not apply to trace replay")
		}
	} else if _, err := workloads.Get(js.Workload); err != nil {
		return system.Config{}, err
	}
	if js.Accesses < 0 || js.Scale < 0 {
		return system.Config{}, fmt.Errorf("accesses and scale must be >= 0")
	}
	if js.DeadlineMS < 0 {
		return system.Config{}, fmt.Errorf("deadline_ms must be >= 0")
	}
	spec, err := fault.Parse(js.Faults)
	if err != nil {
		return system.Config{}, err
	}
	cfg.Faults = spec
	cfg.FaultSeed = js.FaultSeed
	cfg.BanditSeed = js.BanditSeed
	cfg.Adapt.Arms = js.Arms
	if js.Arms != "" && d != system.NDPExtMAB {
		return system.Config{}, fmt.Errorf("arms applies only to the NDPExt-MAB design")
	}
	cfg.MaxWall = defMaxWall
	if js.MaxWallMS > 0 {
		cfg.MaxWall = time.Duration(js.MaxWallMS) * time.Millisecond
	}
	cfg.MaxCycles = defMaxCycles
	if js.MaxCycles > 0 {
		cfg.MaxCycles = js.MaxCycles
	}
	if err := cfg.Validate(); err != nil {
		return system.Config{}, err
	}
	return cfg, nil
}

// workloadCanon is the canonical serialization of the workload half of a
// job's inputs; together with Config.CanonicalBytes it fully determines
// the simulated result. Trace jobs pass the file's content digest so
// the canonical form names the bytes, not the mutable file name.
func (js JobSpec) workloadCanon(traceDigest string) []byte {
	if js.Trace != "" {
		return []byte("ndpext-trace/v1|digest=" + traceDigest)
	}
	return []byte(fmt.Sprintf("ndpext-workload/v1|name=%s|seed=%d|accesses=%d|scale=%g",
		js.Workload, js.Seed, js.Accesses, js.Scale))
}

// key content-addresses the job: SHA-256 over the canonical machine
// config and workload parameters (or the trace content digest).
func (js JobSpec) key(cfg system.Config, traceDigest string) simcache.Key {
	return simcache.Sum(cfg.CanonicalBytes(), js.workloadCanon(traceDigest))
}
