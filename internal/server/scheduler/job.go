package scheduler

import (
	"encoding/json"
	"sync"
	"time"

	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/telemetry"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it (or it piggybacks on an
	// identical in-flight job).
	StateRunning State = "running"
	// StateDone: finished; the result document is available.
	StateDone State = "done"
	// StateFailed: the simulation errored; Error explains.
	StateFailed State = "failed"
	// StateTruncated: a watchdog or drain checkpoint cut the run short;
	// a partial result document is available.
	StateTruncated State = "truncated"
)

// terminal reports whether no further transitions can happen.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateTruncated
}

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool { return s.terminal() }

// Event is one progress record on a job's stream. Type is the SSE event
// name: "state" (lifecycle transition), "epoch" (an epoch boundary with
// a counter snapshot), "fault" (degraded-mode activity), "lagged" (this
// subscriber's buffer overflowed; Data counts the dropped events), or a
// terminal "done"/"failed"/"truncated" carrying the final status.
type Event struct {
	Type string
	Data any // JSON-marshalable payload
}

// EpochEvent is the payload of "epoch" progress events.
type EpochEvent struct {
	Epoch          int                `json:"epoch"`
	ActiveStreams  int                `json:"active_streams"`
	Reconfigured   bool               `json:"reconfigured"`
	SamplerCovered int                `json:"sampler_covered"`
	Arm            string             `json:"arm,omitempty"`
	ArmSwitched    bool               `json:"arm_switched,omitempty"`
	Degraded       bool               `json:"degraded,omitempty"`
	Counters       telemetry.Snapshot `json:"counters"`
}

// FaultEvent is the payload of "fault" progress events.
type FaultEvent struct {
	Epoch           int  `json:"epoch"`
	FailedUnits     int  `json:"failed_units"`
	RemappedStreams int  `json:"remapped_streams"`
	Degraded        bool `json:"degraded"`
}

// LaggedEvent is the payload of "lagged" events: how many events this
// subscriber missed because its buffer was full. The full history is
// always available by re-subscribing (replay-then-follow).
type LaggedEvent struct {
	Dropped int `json:"dropped"`
}

// subscriberBuffer is the default per-subscriber live-event buffer.
const subscriberBuffer = 64

// subscriber is one bounded, non-blocking event sink. A publish into a
// full buffer drops the event and counts it; the next successful send
// is preceded by a "lagged" event carrying the count, so a stalled SSE
// client learns it missed events instead of silently seeing a gap — and
// can never back-pressure the worker goroutine publishing to it.
type subscriber struct {
	ch      chan Event
	dropped int // events dropped since the last successful send
}

// send delivers ev without ever blocking. Called with the job's mu
// held, which serializes access to dropped.
func (s *subscriber) send(ev Event) {
	if s.dropped > 0 {
		select {
		case s.ch <- Event{Type: "lagged", Data: LaggedEvent{Dropped: s.dropped}}:
			s.dropped = 0
		default:
			s.dropped++ // ev joins the dropped run
			return
		}
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped++
	}
}

// Job is one accepted submission. All mutable state is behind mu; the
// event history plus subscriber set implement replay-then-follow
// semantics for SSE.
type Job struct {
	ID   string
	Key  simcache.Key
	Spec JobSpec // normalized
	cfg  system.Config

	// leader, when non-nil, is the identical in-flight job this one
	// piggybacks on: it never occupies a queue slot or a worker, and
	// finishes when the leader finishes.
	leader *Job

	mu        sync.Mutex
	state     State
	errMsg    string
	cacheHit  bool // served straight from the result store at submit
	deduped   bool // piggybacked on an identical in-flight job
	result    []byte
	created   time.Time
	started   time.Time
	finished  time.Time
	live      telemetry.Live
	history   []Event
	subs      map[*subscriber]struct{}
	followers []*Job // jobs piggybacking on this one
	done      chan struct{}
}

func newJob(key simcache.Key, spec JobSpec, cfg system.Config) *Job {
	return &Job{
		Key:     key,
		Spec:    spec,
		cfg:     cfg,
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[*subscriber]struct{}),
		done:    make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result document (nil until terminal).
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// CacheHit reports whether the job was served from the result store at
// submit time.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// publish appends ev to the history and fans it out to subscribers.
// Fan-out is bounded and non-blocking: a subscriber whose buffer is
// full has events dropped and counted, surfacing later as a "lagged"
// event — a stalled client never back-pressures the worker.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.history = append(j.history, ev)
	for sub := range j.subs {
		sub.send(ev)
	}
	j.mu.Unlock()
}

// Subscribe returns a channel that first replays the event history and
// then follows live events, plus an unsubscribe func. The channel is
// closed after the terminal event once the job finishes. Live delivery
// is best-effort with an explicit "lagged" marker on overflow; replay
// always carries the complete history.
func (j *Job) Subscribe() (<-chan Event, func()) { return j.subscribeBuf(subscriberBuffer) }

func (j *Job) subscribeBuf(buf int) (<-chan Event, func()) {
	j.mu.Lock()
	replay := make([]Event, len(j.history))
	copy(replay, j.history)
	ch := make(chan Event, len(replay)+buf)
	for _, ev := range replay {
		ch <- ev
	}
	terminal := j.state.terminal()
	var sub *subscriber
	if !terminal {
		sub = &subscriber{ch: ch}
		j.subs[sub] = struct{}{}
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	var once sync.Once
	unsub := func() {
		once.Do(func() {
			j.mu.Lock()
			delete(j.subs, sub)
			j.mu.Unlock()
		})
	}
	return ch, unsub
}

// setRunning transitions queued -> running and announces it.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.publish(Event{Type: "state", Data: map[string]string{"state": string(StateRunning)}})
}

// finish moves the job to a terminal state, records the outcome, emits
// the terminal event, closes subscriber channels, and releases waiters.
func (j *Job) finish(state State, result []byte, errMsg string) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()

	j.publish(Event{Type: string(state), Data: j.Status()})
	j.mu.Lock()
	for sub := range j.subs {
		if sub.dropped > 0 {
			// Best-effort: tell a lagging subscriber it missed events
			// before its channel closes (replay still has everything).
			select {
			case sub.ch <- Event{Type: "lagged", Data: LaggedEvent{Dropped: sub.dropped}}:
			default:
			}
		}
		close(sub.ch)
		delete(j.subs, sub)
	}
	j.mu.Unlock()
	close(j.done)
}

// duration returns how long the job actually ran (zero until finished
// or for jobs that never ran).
func (j *Job) duration() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// progressTarget is the job whose event stream carries this job's
// progress: the leader for piggybacked jobs, itself otherwise.
func (j *Job) progressTarget() *Job {
	if j.leader != nil {
		return j.leader
	}
	return j
}

// ProgressTarget is the job whose event stream carries this job's
// progress (the leader for piggybacked jobs).
func (j *Job) ProgressTarget() *Job { return j.progressTarget() }

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Owner is the cluster node that owns this job's key ("" outside
	// cluster mode). Filled by the transport layer from the ring, never
	// by the scheduler.
	Owner      string              `json:"owner,omitempty"`
	CacheHit   bool                `json:"cache_hit,omitempty"`
	Deduped    bool                `json:"deduped,omitempty"`
	Error      string              `json:"error,omitempty"`
	CreatedAt  time.Time           `json:"created_at"`
	StartedAt  *time.Time          `json:"started_at,omitempty"`
	FinishedAt *time.Time          `json:"finished_at,omitempty"`
	Progress   *telemetry.Snapshot `json:"progress,omitempty"`
	Spec       JobSpec             `json:"spec"`
	Result     json.RawMessage     `json:"result,omitempty"`
}

// Status snapshots the job for API responses.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:        j.ID,
		Key:       j.Key.String(),
		State:     j.state,
		CacheHit:  j.cacheHit,
		Deduped:   j.deduped,
		Error:     j.errMsg,
		CreatedAt: j.created,
		Spec:      j.Spec,
		Result:    json.RawMessage(j.result),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	j.mu.Unlock()
	if snap, ok := j.progressTarget().live.Load(); ok {
		st.Progress = &snap
	}
	return st
}
