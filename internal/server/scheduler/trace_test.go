package scheduler

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"ndpext/internal/server/store"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// saveWorkloadTrace generates a workload at the scheduler's machine
// size and writes it as a native trace file.
func saveWorkloadTrace(t *testing.T, path, workload string, seed uint64, accesses int) *workloads.Trace {
	t.Helper()
	gen, err := workloads.Get(workload)
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = accesses
	tr, err := gen(system.DefaultConfig(system.NDPExt).NumUnits(), seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

func newTraceScheduler(t *testing.T, dir string, opt Options) *Scheduler {
	t.Helper()
	s := New(newTestStore(t, store.Options{}), store.NewTraceRegistry(dir), opt)
	s.Start()
	return s
}

// TestTraceJob is the serving half of the trace subsystem's keystone:
// a trace-backed job must produce the byte-identical canonical document
// of the equivalent generated-workload job, and identical trace bytes
// must hit the result store.
func TestTraceJob(t *testing.T) {
	dir := t.TempDir()
	saveWorkloadTrace(t, filepath.Join(dir, "pr.ndptrc"), "pr", 1, 1000)

	s := newTraceScheduler(t, dir, Options{Workers: 2})
	defer s.Drain(context.Background())

	jt, err := s.Submit(JobSpec{Trace: "pr.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	jw, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, jt)
	waitJob(t, jw)
	if jt.State() != StateDone || jw.State() != StateDone {
		t.Fatalf("states: trace=%s workload=%s", jt.State(), jw.State())
	}
	dt, dw := jt.Status().Result, jw.Status().Result
	if string(dt) != string(dw) {
		t.Fatalf("trace replay differs from generated run:\n trace   %s\n workload %s", dt, dw)
	}

	// Same file again: content-addressed store hit, no new simulation.
	ran := s.SimsRun()
	j2, err := s.Submit(JobSpec{Trace: "pr.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	if !j2.CacheHit() || s.SimsRun() != ran {
		t.Fatalf("identical trace re-simulated (cacheHit=%v, sims %d -> %d)", j2.CacheHit(), ran, s.SimsRun())
	}

	// Rewriting the file with different content must change the key:
	// the stale cached result must not be served.
	saveWorkloadTrace(t, filepath.Join(dir, "pr.ndptrc"), "pr", 2, 1000)
	j3, err := s.Submit(JobSpec{Trace: "pr.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j3)
	if j3.CacheHit() {
		t.Fatal("rewritten trace file served the old cached result")
	}
	if s.SimsRun() != ran+1 {
		t.Fatalf("rewritten trace ran %d sims, want %d", s.SimsRun(), ran+1)
	}
}

// TestTraceBatch crosses designs with trace files: the matrix admits
// trace axes exactly like workloads, and a trace cell matches its
// single-submission document.
func TestTraceBatch(t *testing.T) {
	dir := t.TempDir()
	saveWorkloadTrace(t, filepath.Join(dir, "a.ndptrc"), "pr", 1, 1000)
	saveWorkloadTrace(t, filepath.Join(dir, "b.ndptrc"), "bfs", 1, 1000)

	s := newTraceScheduler(t, dir, Options{Workers: 2})
	defer s.Drain(context.Background())

	single, err := s.Submit(JobSpec{Trace: "a.ndptrc", Design: "Nexus"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, single)

	b, err := s.SubmitBatch(BatchSpec{
		Designs: []string{"NDPExt", "Nexus"},
		Traces:  []string{"a.ndptrc", "b.ndptrc"},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b)
	if st := b.State(); st != StateDone {
		t.Fatalf("trace batch state = %s: %+v", st, b.Status())
	}
	for _, c := range b.Cells {
		if c.Design == "Nexus" && c.Trace == "a.ndptrc" {
			if !c.Job.CacheHit() {
				t.Error("batch cell overlapping the single trace submission missed the store")
			}
			if string(c.Job.Result()) != string(single.Result()) {
				t.Error("trace batch cell differs from the single-submission document")
			}
		}
	}
	// 1 single + 3 cold cells.
	if got := s.SimsRun(); got != 4 {
		t.Errorf("SimsRun = %d, want 4", got)
	}
}

// TestTraceJobValidation covers the admission guards: path confinement,
// exclusivity with generation parameters, and the disabled state.
func TestTraceJobValidation(t *testing.T) {
	dir := t.TempDir()
	s := newTraceScheduler(t, dir, Options{Workers: 1})
	defer s.Drain(context.Background())

	for name, spec := range map[string]JobSpec{
		"escape":      {Trace: "../secret.ndptrc"},
		"absolute":    {Trace: "/etc/passwd"},
		"empty-name":  {Trace: "."},
		"both":        {Workload: "pr", Trace: "x.ndptrc"},
		"gen-params":  {Trace: "x.ndptrc", Seed: 3},
		"missing":     {Trace: "nope.ndptrc"},
		"no-workload": {},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: spec %+v accepted", name, spec)
		}
	}

	// Corrupt file: rejected at simulation, job fails cleanly.
	bad := filepath.Join(dir, "bad.ndptrc")
	if err := os.WriteFile(bad, []byte("NDPTRC garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(JobSpec{Trace: "bad.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateFailed {
		t.Fatalf("corrupt trace job ended %s, want failed", j.State())
	}

	// Without a trace registry directory, trace jobs are off.
	s2 := newTestScheduler(t, Options{Workers: 1})
	defer s2.Drain(context.Background())
	if _, err := s2.Submit(JobSpec{Trace: "pr.ndptrc"}); err == nil {
		t.Fatal("trace job accepted without a trace directory")
	}
}

// TestTraceJobMillionAccesses replays a >1M-access trace through the
// full serving path, exercising the streaming source at scale: the
// file is decoded chunk by chunk, never materialized.
func TestTraceJobMillionAccesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	dir := t.TempDir()
	tr := saveWorkloadTrace(t, filepath.Join(dir, "big.ndptrc"), "pr", 1, 8000)
	if n := tr.TotalAccesses(); n < 1_000_000 {
		t.Fatalf("trace too small for the scale test: %d accesses", n)
	}
	s := newTraceScheduler(t, dir, Options{Workers: 1})
	defer s.Drain(context.Background())
	j, err := s.Submit(JobSpec{Trace: "big.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("big trace job ended %s: %s", j.State(), j.Status().Error)
	}
}
