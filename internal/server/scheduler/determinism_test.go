package scheduler

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"ndpext/internal/bench"
	"ndpext/internal/server/result"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// TestDeterminismAcrossExecutionPaths is the concurrency-safety oracle
// for the whole serving stack: one job spec simulated four ways —
// serially via system.Run, through the bench worker pool, and as
// concurrent submissions on two independent scheduler instances — must
// produce byte-identical canonical result documents under the same
// CanonicalBytes-derived cache key. Run under -race this also proves the
// concurrent paths share no unsynchronized state that could perturb a
// result. A probe/telemetry refactor that made results depend on
// scheduling would show up here as a document mismatch.
func TestDeterminismAcrossExecutionPaths(t *testing.T) {
	spec := JobSpec{Workload: "pr", Seed: 7, Accesses: 1000, EpochCycles: 50_000}.normalize()
	cfg, err := spec.build(0, 0) // no watchdogs: nothing wall-clock-dependent
	if err != nil {
		t.Fatal(err)
	}
	key := spec.key(cfg, "")

	// Path 1: plain serial system.Run, trace built exactly as the
	// scheduler and bench layers build it (DefaultScale + spec overrides).
	gen, err := workloads.Get(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = spec.Accesses
	sc.Mult = spec.Scale
	tr, err := gen(cfg.NumUnits(), spec.Seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	resSerial, err := system.Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	docSerial, err := result.Encode(resSerial)
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: the bench worker pool, with a second unrelated cell in the
	// batch so the target cell genuinely runs next to concurrent work.
	opt := bench.Options{AccessesPerCore: spec.Accesses, Seed: spec.Seed}
	results, err := bench.RunCells([]bench.Cell{
		{Config: cfg, Workload: spec.Workload},
		{Config: cfg, Workload: "mv"},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	docBench, err := result.Encode(results[0])
	if err != nil {
		t.Fatal(err)
	}

	// Paths 3 and 4: two independent scheduler instances each simulate
	// the spec concurrently (no shared store between them, so both really
	// run), with an extra different job on the first to keep its worker
	// pool busy with unrelated work.
	schedDocs := make([][]byte, 2)
	var wg sync.WaitGroup
	for i := range schedDocs {
		s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 8})
		defer s.Drain(context.Background())
		if i == 0 {
			extra, err := s.Submit(JobSpec{Workload: "hotspot", Seed: 3, Accesses: 1000})
			if err != nil {
				t.Fatal(err)
			}
			defer waitJob(t, extra)
		}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if j.Key != key {
			t.Fatalf("scheduler %d keyed the job %x, test computed %x", i, j.Key, key)
		}
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			waitJob(t, j)
			st := j.Status()
			if st.State != StateDone {
				t.Errorf("scheduler %d: job state %s (err %q)", i, st.State, st.Error)
				return
			}
			schedDocs[i] = st.Result
		}(i, j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, doc := range [][]byte{docBench, schedDocs[0], schedDocs[1]} {
		path := []string{"bench pool", "scheduler A", "scheduler B"}[i]
		if !bytes.Equal(doc, docSerial) {
			t.Errorf("%s produced a different result document than the serial run\nserial: %s\n%s: %s",
				path, docSerial, path, doc)
		}
	}
}
