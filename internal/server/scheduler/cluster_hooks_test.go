// Tests for the hooks the cluster layer hangs off the scheduler:
// OnStored (replication trigger), IDPrefix (cluster-unique job IDs),
// and the KeyFor/Cached/InstallResult trio the routing and replica
// paths use. The cluster package itself is not imported — layering
// forbids it — so these drive the hooks exactly as a caller would.
package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"ndpext/internal/server/store"
	"ndpext/internal/simcache"
)

// TestOnStoredFiresOnFreshResultsOnly: the hook must fire once per
// simulation that lands in the store, and never for cache hits —
// replicating a result a peer already pushed to us would bounce
// documents around the ring forever.
func TestOnStoredFiresOnFreshResultsOnly(t *testing.T) {
	var (
		mu     sync.Mutex
		stored []string
		docs   [][]byte
	)
	s := New(newTestStore(t, store.Options{}), nil, Options{
		Workers: 2,
		OnStored: func(key simcache.Key, doc []byte) {
			mu.Lock()
			stored = append(stored, key.String())
			docs = append(docs, doc)
			mu.Unlock()
		},
	})
	s.Start()
	defer s.Drain(context.Background())

	spec := fastSpec(1)
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)

	// Second submission of the same spec is a cache hit: no new call.
	j2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	if !j2.Status().CacheHit {
		t.Fatal("identical resubmission was not a cache hit")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(stored) != 1 {
		t.Fatalf("OnStored fired %d times, want exactly 1 (fresh result only)", len(stored))
	}
	key, err := s.KeyFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stored[0] != key.String() {
		t.Errorf("OnStored key = %s, want %s", stored[0], key)
	}
	if !json.Valid(docs[0]) || !bytes.Equal(docs[0], j1.Status().Result) {
		t.Error("OnStored doc is not the job's stored result document")
	}
}

// TestIDPrefixNamespacesJobs: a configured prefix replaces the default
// "j-" so IDs minted by different cluster nodes can never collide.
func TestIDPrefixNamespacesJobs(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, IDPrefix: "j2-"})
	defer s.Drain(context.Background())
	j, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if !strings.HasPrefix(j.ID, "j2-") {
		t.Fatalf("job ID %q does not carry the configured prefix", j.ID)
	}
}

// TestInstallResultServesLaterSubmissions: a replica installed via
// InstallResult must short-circuit a later identical submission as a
// cache hit with zero simulations — that is what makes failover to the
// replica holder free.
func TestInstallResultServesLaterSubmissions(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1})
	defer s.Drain(context.Background())

	spec := fastSpec(3)
	key, err := s.KeyFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cached(key) {
		t.Fatal("fresh scheduler claims the key is cached")
	}
	doc := []byte(`{"schema_version":1,"replica":true}`)
	if err := s.InstallResult(key.String(), doc); err != nil {
		t.Fatal(err)
	}
	if !s.Cached(key) {
		t.Fatal("installed replica not visible via Cached")
	}

	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	st := j.Status()
	if !st.CacheHit || !bytes.Equal(st.Result, doc) {
		t.Fatalf("submission after InstallResult: cache_hit=%v result=%s, want hit with the replica doc", st.CacheHit, st.Result)
	}
	if got := s.SimsRun(); got != 0 {
		t.Fatalf("replica-served submission ran %d sims, want 0", got)
	}

	// Malformed inputs are rejected before touching the store.
	if err := s.InstallResult("zz-not-hex", doc); err == nil {
		t.Error("bad key hex accepted")
	}
	if err := s.InstallResult(key.String(), []byte(`{broken`)); err == nil {
		t.Error("invalid JSON document accepted")
	}
}
