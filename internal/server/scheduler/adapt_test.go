package scheduler

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"ndpext/internal/server/result"
	"ndpext/internal/system"
	"ndpext/internal/workloads"
)

// TestMABSpecDefaultsAndKeying: bandit_seed defaults to 1 before
// keying, is part of the cache key, and arms is rejected on
// non-adaptive designs.
func TestMABSpecDefaultsAndKeying(t *testing.T) {
	spec := JobSpec{Workload: "pr", Design: "ndpext-mab"}.normalize()
	if spec.BanditSeed != 1 {
		t.Fatalf("bandit_seed default = %d, want 1", spec.BanditSeed)
	}
	cfg, err := spec.build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.BanditSeed = 2
	ocfg, err := other.build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.key(cfg, "") == other.key(ocfg, "") {
		t.Fatal("bandit_seed not part of the cache key")
	}

	armed := spec
	armed.Arms = "paper,greedy"
	acfg, err := armed.build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.key(cfg, "") == armed.key(acfg, "") {
		t.Fatal("arms not part of the cache key")
	}

	bad := JobSpec{Workload: "pr", Arms: "greedy"}.normalize()
	if _, err := bad.build(0, 0); err == nil || !strings.Contains(err.Error(), "NDPExt-MAB") {
		t.Fatalf("arms on a non-adaptive design: err = %v, want rejection", err)
	}
}

// TestMABUnknownDesignStructured: the spec surfaces ParseDesign's
// structured error so the transport can map it to a 422 with the list.
func TestMABUnknownDesignStructured(t *testing.T) {
	_, err := JobSpec{Workload: "pr", Design: "bogus"}.normalize().build(0, 0)
	ude, ok := err.(*system.UnknownDesignError)
	if !ok {
		t.Fatalf("error type %T, want *system.UnknownDesignError", err)
	}
	if len(ude.Valid) != len(system.AllDesigns()) {
		t.Fatalf("valid list incomplete: %v", ude.Valid)
	}
}

// TestMABDeterminismAcrossSchedulers is the adaptive design's serving
// determinism fence: one NDPExt-MAB spec simulated serially and on two
// independent scheduler instances must produce byte-identical canonical
// documents, and a second identical submission must be a cache hit
// returning the same bytes.
func TestMABDeterminismAcrossSchedulers(t *testing.T) {
	spec := JobSpec{Workload: "recsys", Design: "ndpext-mab", Seed: 7,
		Accesses: 1000, BanditSeed: 7, EpochCycles: 50_000}.normalize()
	cfg, err := spec.build(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workloads.Get(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = spec.Accesses
	sc.Mult = spec.Scale
	tr, err := gen(cfg.NumUnits(), spec.Seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	resSerial, err := system.Run(cfg, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	docSerial, err := result.Encode(resSerial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(docSerial, []byte(`"adapt_arm"`)) {
		t.Fatalf("document missing adapt_arm: %s", docSerial)
	}

	scheds := make([]*Scheduler, 2)
	schedDocs := make([][]byte, 2)
	var wg sync.WaitGroup
	for i := range schedDocs {
		s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 8})
		defer s.Drain(context.Background())
		scheds[i] = s
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, j *Job) {
			defer wg.Done()
			waitJob(t, j)
			st := j.Status()
			if st.State != StateDone {
				t.Errorf("scheduler %d: job state %s (err %q)", i, st.State, st.Error)
				return
			}
			schedDocs[i] = st.Result
		}(i, j)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, doc := range schedDocs {
		if !bytes.Equal(doc, docSerial) {
			t.Errorf("scheduler %d diverged from the serial document\nserial: %s\nsched:  %s",
				i, docSerial, doc)
		}
	}

	// Resubmitting the identical spec must be served from the result
	// store without a second simulation, byte for byte.
	again, err := scheds[0].Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, again)
	if !again.CacheHit() {
		t.Fatal("second identical submission was not a cache hit")
	}
	if !bytes.Equal(again.Result(), docSerial) {
		t.Fatal("cached document differs from the first run")
	}
}
