package scheduler

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ndpext/internal/server/store"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// poisonSeed marks specs the test SimHook panics on.
const poisonSeed = 66_6666

func poisonHook(spec JobSpec) {
	if spec.Seed == poisonSeed {
		panic("chaos: injected simulation panic")
	}
}

// TestPanicIsolation: a panicking simulation fails its own job — with
// the stack in the error — and nothing else. Siblings finish, the
// counter increments, the worker survives, and resubmitting the poison
// spec fails again the same way (errors are never cached).
func TestPanicIsolation(t *testing.T) {
	s := New(newTestStore(t, store.Options{}), nil, Options{
		Workers: 2, QueueDepth: 16, SimHook: poisonHook,
	})
	s.Start()
	defer s.Drain(context.Background())

	poison, err := s.Submit(fastSpec(poisonSeed))
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, poison)
	waitJob(t, sibling)

	if got := poison.State(); got != StateFailed {
		t.Fatalf("poison job state = %s, want failed", got)
	}
	errMsg := poison.Status().Error
	if !strings.Contains(errMsg, "injected simulation panic") {
		t.Errorf("poison error lost the panic value: %q", errMsg)
	}
	if !strings.Contains(errMsg, "goroutine") || !strings.Contains(errMsg, ".go:") {
		t.Errorf("poison error lost the stack trace: %q", errMsg)
	}
	if got := sibling.State(); got != StateDone {
		t.Errorf("sibling state = %s, want done (err %q)", got, sibling.Status().Error)
	}
	if got := s.PanicsRecovered(); got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
	if s.st.Contains(poison.Key) {
		t.Error("panic outcome entered the result store")
	}

	// The poison spec is re-submittable and fails again — fresh run, not
	// a cached error, not a wedged leader.
	again, err := s.Submit(fastSpec(poisonSeed))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, again)
	if got := again.State(); got != StateFailed {
		t.Fatalf("resubmitted poison state = %s, want failed", got)
	}
	if got := s.PanicsRecovered(); got != 2 {
		t.Errorf("PanicsRecovered after resubmit = %d, want 2", got)
	}

	// The worker pool still does real work afterwards.
	ok, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ok)
	if got := ok.State(); got != StateDone {
		t.Errorf("post-panic job state = %s, want done (err %q)", got, ok.Status().Error)
	}
}

// TestPanicFansOutToFollowers: submissions piggybacked on a leader that
// panics must fail with the same diagnostic, and the singleflight key
// must be released so the next identical submission starts fresh.
func TestPanicFansOutToFollowers(t *testing.T) {
	hold := make(chan struct{})
	var once sync.Once
	s := New(newTestStore(t, store.Options{}), nil, Options{
		Workers: 1, QueueDepth: 16,
		SimHook: func(spec JobSpec) {
			if spec.Seed == poisonSeed {
				<-hold // let the follower piggyback first
				panic("chaos: injected simulation panic")
			}
		},
	})
	started := make(chan *Job, 1)
	s.testJobStarted = func(j *Job) {
		once.Do(func() { started <- j })
	}
	s.Start()
	defer s.Drain(context.Background())

	leader, err := s.Submit(fastSpec(poisonSeed))
	if err != nil {
		t.Fatal(err)
	}
	<-started // leader is on the worker, holding in the hook
	follower, err := s.Submit(fastSpec(poisonSeed))
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Status().Deduped {
		t.Fatal("second identical submission did not piggyback")
	}
	close(hold)

	waitJob(t, leader)
	waitJob(t, follower)
	for _, j := range []*Job{leader, follower} {
		if got := j.State(); got != StateFailed {
			t.Errorf("job %s state = %s, want failed", j.ID, got)
		}
		if !strings.Contains(j.Status().Error, "injected simulation panic") {
			t.Errorf("job %s error = %q, want the panic diagnostic", j.ID, j.Status().Error)
		}
	}
	if got := s.PanicsRecovered(); got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1 (one run, two failures)", got)
	}

	// Key released: an identical submission is a fresh leader, not a
	// follower of a corpse.
	fresh, err := s.Submit(fastSpec(poisonSeed))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Status().Deduped {
		t.Error("submission after panic piggybacked on a finished leader")
	}
	waitJob(t, fresh)
}

// TestDeadlineTruncates: a job with deadline_ms lands truncated with a
// partial result document, which never enters the store.
func TestDeadlineTruncates(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, QueueDepth: 4})
	defer s.Drain(context.Background())

	spec := JobSpec{Workload: "pr", Seed: 1, Accesses: 500000, DeadlineMS: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if got := j.State(); got != StateTruncated {
		t.Fatalf("deadline job state = %s, want truncated (err %q)", got, j.Status().Error)
	}
	if doc := j.Result(); doc == nil {
		t.Error("deadline-truncated job has no partial result document")
	}
	if s.st.Contains(j.Key) {
		t.Error("deadline-truncated result entered the store")
	}

	// deadline_ms is not part of the cache key: the same inputs without
	// a deadline address the same entry.
	noDeadline := spec
	noDeadline.DeadlineMS = 0
	cfg := mustBuild(t, noDeadline)
	if noDeadline.normalize().key(cfg, "") != j.Key {
		t.Error("deadline_ms leaked into the cache key")
	}

	// Negative deadlines are rejected at validation.
	if _, err := s.Submit(JobSpec{Workload: "pr", DeadlineMS: -5}); err == nil {
		t.Error("negative deadline_ms accepted")
	}
}

// writeSchedTrace writes a small valid trace and returns its path.
func writeSchedTrace(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	gen, err := workloads.Get("pr")
	if err != nil {
		t.Fatal(err)
	}
	sc := workloads.DefaultScale()
	sc.AccessesPerCore = 200
	tr, err := gen(system.DefaultConfig(system.NDPExt).NumUnits(), seed, sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// corruptChunk flips one byte inside the payload of chunk i, leaving
// header and index intact so the file opens but fails CRC mid-replay.
func corruptChunk(t *testing.T, path string, i int) {
	t.Helper()
	r, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := r.ChunkFileOffset(i) + 20 // past the chunk header, in the payload
	r.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTraceQuarantineMidReplay: a trace whose CRC fails mid-replay
// fails its job (not the server), quarantines the digest, and causes
// subsequent submissions of the same bytes to be rejected at admission.
func TestTraceQuarantineMidReplay(t *testing.T) {
	dir := t.TempDir()
	writeSchedTrace(t, dir, "bad.ndptrc", 7)
	corruptChunk(t, filepath.Join(dir, "bad.ndptrc"), 0)
	writeSchedTrace(t, dir, "good.ndptrc", 8)

	s := New(newTestStore(t, store.Options{}), store.NewTraceRegistry(dir),
		Options{Workers: 2, QueueDepth: 8})
	s.Start()
	defer s.Drain(context.Background())

	// Admission succeeds: the digest hashes bytes, it cannot see CRCs.
	bad, err := s.Submit(JobSpec{Trace: "bad.ndptrc"})
	if err != nil {
		t.Fatalf("admission of not-yet-proven-corrupt trace: %v", err)
	}
	good, err := s.Submit(JobSpec{Trace: "good.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, bad)
	waitJob(t, good)

	if got := bad.State(); got != StateFailed {
		t.Fatalf("corrupt-trace job state = %s, want failed (err %q)", got, bad.Status().Error)
	}
	if !strings.Contains(bad.Status().Error, "quarantined") {
		t.Errorf("corrupt-trace error does not mention quarantine: %q", bad.Status().Error)
	}
	if bad.Result() != nil {
		t.Error("corrupt-trace job kept a partial result built on bad bytes")
	}
	if got := good.State(); got != StateDone {
		t.Errorf("good trace job state = %s, want done (err %q)", got, good.Status().Error)
	}
	if got := s.TraceQuarantines(); got != 1 {
		t.Errorf("TraceQuarantines = %d, want 1", got)
	}
	if s.st.Contains(bad.Key) {
		t.Error("corrupt-trace outcome entered the result store")
	}

	// The digest is marked: resubmission is rejected at admission.
	if _, err := s.Submit(JobSpec{Trace: "bad.ndptrc"}); !errors.Is(err, store.ErrTraceQuarantined) {
		t.Errorf("resubmission err = %v, want ErrTraceQuarantined", err)
	}
}

// TestTraceQuarantineAtOpen: a trace corrupted in its header fails at
// OpenFile — that path must quarantine too.
func TestTraceQuarantineAtOpen(t *testing.T) {
	dir := t.TempDir()
	path := writeSchedTrace(t, dir, "mangled.ndptrc", 9)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF // destroy the magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(newTestStore(t, store.Options{}), store.NewTraceRegistry(dir),
		Options{Workers: 1, QueueDepth: 4})
	s.Start()
	defer s.Drain(context.Background())

	j, err := s.Submit(JobSpec{Trace: "mangled.ndptrc"})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if got := j.State(); got != StateFailed {
		t.Fatalf("mangled-trace job state = %s, want failed", got)
	}
	if got := s.TraceQuarantines(); got != 1 {
		t.Errorf("TraceQuarantines = %d, want 1", got)
	}
	if _, err := s.Submit(JobSpec{Trace: "mangled.ndptrc"}); !errors.Is(err, store.ErrTraceQuarantined) {
		t.Errorf("resubmission err = %v, want ErrTraceQuarantined", err)
	}
}
