package scheduler

import (
	"bytes"
	"context"
	"testing"

	"ndpext/internal/server/store"
)

// TestParallelSchedulerByteIdentical pins the property that lets the
// serving layer enable -parallel at all: a pipelined-mode scheduler must
// produce the same result document as a serial one, and — because the
// cache key does not see the execution mode — a document computed under
// one mode must be served as a cache hit to the other.
func TestParallelSchedulerByteIdentical(t *testing.T) {
	spec := JobSpec{Workload: "pr", Seed: 9, Accesses: 2000}

	// Serial reference document from a scheduler with its own store.
	serial := newTestScheduler(t, Options{Workers: 1})
	defer serial.Drain(context.Background())
	sj, err := serial.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, sj)
	if sj.Status().State != StateDone {
		t.Fatalf("serial job failed: %s", sj.Status().Error)
	}

	// Pipelined scheduler over a fresh store, then a serial scheduler
	// sharing that store: the second submission must hit the cache entry
	// the pipelined run stored.
	shared := newTestStore(t, store.Options{})
	par := New(shared, nil, Options{Workers: 1, Parallel: 4})
	par.Start()
	defer par.Drain(context.Background())
	pj, err := par.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, pj)
	if pj.Status().State != StateDone {
		t.Fatalf("pipelined job failed: %s", pj.Status().Error)
	}
	if !bytes.Equal(sj.Status().Result, pj.Status().Result) {
		t.Fatal("pipelined scheduler produced a different result document than serial")
	}

	ser2 := New(shared, nil, Options{Workers: 1})
	ser2.Start()
	defer ser2.Drain(context.Background())
	cj, err := ser2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, cj)
	st := cj.Status()
	if st.State != StateDone {
		t.Fatalf("cached job failed: %s", st.Error)
	}
	if !st.CacheHit {
		t.Fatal("serial submission missed the cache entry a pipelined run stored")
	}
	if !bytes.Equal(st.Result, pj.Status().Result) {
		t.Fatal("cache served different bytes than the pipelined run stored")
	}
}
