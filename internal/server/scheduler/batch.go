package scheduler

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// BatchSpec is the submission body of POST /v1/batch: a full
// design×workload (or design×trace) matrix in one request. Every cell
// shares Base (seed, accesses, faults, …); Designs crosses with exactly
// one of Workloads or Traces. The expansion is a job DAG: cells are
// keyed by their canonical content address, so cells shared between
// batches — or with earlier single submissions — simulate exactly once
// and fan their result out to every parent.
type BatchSpec struct {
	// Designs are system design names (see JobSpec.Design); at least one.
	Designs []string `json:"designs"`
	// Workloads are generator names; exactly one of Workloads and
	// Traces is non-empty.
	Workloads []string `json:"workloads,omitempty"`
	// Traces are registry trace names, crossed with Designs like
	// Workloads.
	Traces []string `json:"traces,omitempty"`
	// Base carries the spec fields shared by every cell. Its Design,
	// Workload, and Trace fields must be empty — the axes supply them.
	Base JobSpec `json:"base,omitempty"`
}

// validate rejects malformed matrices before any cell is prepared.
func (bs BatchSpec) validate() error {
	if len(bs.Designs) == 0 {
		return fmt.Errorf("batch: at least one design required")
	}
	if (len(bs.Workloads) == 0) == (len(bs.Traces) == 0) {
		return fmt.Errorf("batch: exactly one of workloads and traces must be non-empty")
	}
	if bs.Base.Design != "" || bs.Base.Workload != "" || bs.Base.Trace != "" {
		return fmt.Errorf("batch: base must not set design/workload/trace (the matrix axes supply them)")
	}
	for _, axis := range []struct {
		name string
		vals []string
	}{{"design", bs.Designs}, {"workload", bs.Workloads}, {"trace", bs.Traces}} {
		seen := make(map[string]bool, len(axis.vals))
		for _, v := range axis.vals {
			if seen[v] {
				return fmt.Errorf("batch: duplicate %s %q", axis.name, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// Validate rejects malformed matrices; exported for the cluster layer,
// which validates before fanning cells out across the ring.
func (bs BatchSpec) Validate() error { return bs.validate() }

// Expand lists the matrix cells in canonical row-major order; exported
// for the cluster layer, which distributes the same cell order across
// peers so its matrix document matches a single node's byte for byte.
func (bs BatchSpec) Expand() []JobSpec { return bs.expand() }

// expand lists the matrix cells in canonical row-major order: designs
// outer, workloads/traces inner, exactly as given in the request.
func (bs BatchSpec) expand() []JobSpec {
	inner := bs.Workloads
	isTrace := false
	if len(bs.Traces) > 0 {
		inner, isTrace = bs.Traces, true
	}
	cells := make([]JobSpec, 0, len(bs.Designs)*len(inner))
	for _, d := range bs.Designs {
		for _, w := range inner {
			spec := bs.Base
			spec.Design = d
			if isTrace {
				spec.Trace = w
			} else {
				spec.Workload = w
			}
			cells = append(cells, spec)
		}
	}
	return cells
}

// BatchCell is one position of a batch's matrix with the job carrying
// its result. Distinct cells that hash to the same content address
// share one underlying simulation (piggybacking), but each keeps its
// own Job for per-cell status.
type BatchCell struct {
	Design   string
	Workload string
	Trace    string
	Job      *Job
}

// Batch is one accepted matrix submission: an ordered set of cells over
// the shared-cell job DAG. It is terminal when every cell's job is.
type Batch struct {
	ID   string
	Spec BatchSpec

	Cells []*BatchCell

	done chan struct{}
}

// Done is closed when every cell has reached a terminal state.
func (b *Batch) Done() <-chan struct{} { return b.done }

// SubmitBatch validates, expands, keys, and atomically admits a whole
// matrix: either every cell is admitted (store hit, piggyback, or fresh
// queue slot) or none is and ErrQueueFull reports insufficient queue
// capacity. Unique uncached cells consume one queue slot each; cells
// whose key is already stored, already in flight, or repeated within
// the batch consume none.
func (s *Scheduler) SubmitBatch(spec BatchSpec) (*Batch, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	cellSpecs := spec.expand()
	b := &Batch{Spec: spec, done: make(chan struct{})}
	for _, cs := range cellSpecs {
		job, err := s.prepare(cs)
		if err != nil {
			return nil, fmt.Errorf("batch cell (design=%s workload=%s%s): %w",
				cs.Design, cs.Workload, cs.Trace, err)
		}
		b.Cells = append(b.Cells, &BatchCell{
			Design:   job.Spec.Design,
			Workload: job.Spec.Workload,
			Trace:    job.Spec.Trace,
			Job:      job,
		})
	}

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Count the queue slots this batch actually needs: one per unique
	// key that is neither stored nor already in flight. Contains() is a
	// stats-neutral peek, so planning doesn't skew cache counters; the
	// whole check-then-admit runs under s.mu, and workers only ever
	// free slots concurrently, so a passing plan cannot fail admission.
	needed := 0
	seen := make(map[string]bool, len(b.Cells))
	for _, c := range b.Cells {
		k := c.Job.Key.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		if s.st.Contains(c.Job.Key) {
			continue
		}
		if _, inFlight := s.active[c.Job.Key]; inFlight {
			continue
		}
		needed++
	}
	if free := cap(s.queue) - len(s.queue); needed > free {
		s.rejected.Add(1)
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: batch needs %d slots, %d free", ErrQueueFull, needed, free)
	}
	for _, c := range b.Cells {
		if err := s.admitLocked(c.Job); err != nil {
			// Unreachable outside a TTL-expiry race between the plan and
			// this admit; the cell fails cleanly, the batch proceeds.
			c.Job.finish(StateFailed, nil, err.Error())
		}
	}
	s.nextBatch++
	b.ID = fmt.Sprintf("b-%06d", s.nextBatch)
	s.batches[b.ID] = b
	s.batchOrder = append(s.batchOrder, b.ID)
	s.mu.Unlock()

	go func() {
		for _, c := range b.Cells {
			<-c.Job.Done()
		}
		close(b.done)
	}()
	return b, nil
}

// Batch returns a batch by ID.
func (s *Scheduler) Batch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// Batches returns every batch in submission order.
func (s *Scheduler) Batches() []*Batch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Batch, 0, len(s.batchOrder))
	for _, id := range s.batchOrder {
		out = append(out, s.batches[id])
	}
	return out
}

// State aggregates the batch lifecycle: running while any cell is
// unfinished, then failed if any cell failed, truncated if any was cut
// short, else done.
func (b *Batch) State() State {
	state := StateDone
	for _, c := range b.Cells {
		switch c.Job.State() {
		case StateFailed:
			return StateFailed
		case StateTruncated:
			state = StateTruncated
		case StateDone:
		default:
			return StateRunning
		}
	}
	return state
}

// BatchCellStatus is the wire form of one cell's current state.
type BatchCellStatus struct {
	Design   string `json:"design"`
	Workload string `json:"workload,omitempty"`
	Trace    string `json:"trace,omitempty"`
	Job      string `json:"job"`
	Key      string `json:"key"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Deduped  bool   `json:"deduped,omitempty"`
	Error    string `json:"error,omitempty"`
}

// BatchStatus is the wire form of a batch's current state.
type BatchStatus struct {
	ID        string            `json:"id"`
	State     State             `json:"state"`
	Designs   []string          `json:"designs"`
	Workloads []string          `json:"workloads,omitempty"`
	Traces    []string          `json:"traces,omitempty"`
	Cells     []BatchCellStatus `json:"cells"`
	Pending   int               `json:"pending"`
}

// Status snapshots the batch for API responses.
func (b *Batch) Status() BatchStatus {
	st := BatchStatus{
		ID:        b.ID,
		State:     b.State(),
		Designs:   b.Spec.Designs,
		Workloads: b.Spec.Workloads,
		Traces:    b.Spec.Traces,
	}
	for _, c := range b.Cells {
		js := c.Job.Status()
		st.Cells = append(st.Cells, BatchCellStatus{
			Design:   c.Design,
			Workload: c.Workload,
			Trace:    c.Trace,
			Job:      js.ID,
			Key:      js.Key,
			State:    js.State,
			CacheHit: js.CacheHit,
			Deduped:  js.Deduped,
			Error:    js.Error,
		})
		if !js.State.terminal() {
			st.Pending++
		}
	}
	return st
}

// BatchResultCell is one cell of the canonical matrix document. Result
// is the cell's canonical result document verbatim — byte-identical to
// what the same spec submitted singly would return.
type BatchResultCell struct {
	Design   string          `json:"design"`
	Workload string          `json:"workload,omitempty"`
	Trace    string          `json:"trace,omitempty"`
	Key      string          `json:"key"`
	State    State           `json:"state"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// BatchResultDoc is the canonical matrix document: deterministic,
// canonically ordered (row-major over the request's axes), free of
// server-assigned identifiers and timestamps — the same matrix
// submitted to any server yields the same bytes once every cell is
// cacheably complete.
type BatchResultDoc struct {
	SchemaVersion int               `json:"schema_version"`
	Designs       []string          `json:"designs"`
	Workloads     []string          `json:"workloads,omitempty"`
	Traces        []string          `json:"traces,omitempty"`
	Cells         []BatchResultCell `json:"cells"`
}

// batchSchemaVersion tags the matrix document layout.
const batchSchemaVersion = 1

// ErrBatchIncomplete is returned by ResultDoc while any cell is still
// in flight.
var ErrBatchIncomplete = errors.New("scheduler: batch incomplete")

// ResultDoc renders the canonical matrix document, available once every
// cell is terminal.
func (b *Batch) ResultDoc() ([]byte, error) {
	cells := make([]BatchResultCell, 0, len(b.Cells))
	for _, c := range b.Cells {
		js := c.Job.Status()
		if !js.State.terminal() {
			return nil, ErrBatchIncomplete
		}
		cells = append(cells, BatchResultCell{
			Design:   c.Design,
			Workload: c.Workload,
			Trace:    c.Trace,
			Key:      js.Key,
			State:    js.State,
			Error:    js.Error,
			Result:   js.Result,
		})
	}
	return BuildBatchResultDoc(b.Spec, cells)
}

// BuildBatchResultDoc marshals the canonical matrix document from
// already-terminal cells. It is the single encoder for batch results —
// the cluster layer assembles cells gathered from peers through the
// same function, which is what makes a clustered batch's document
// byte-identical to a single node's for the same spec and results.
func BuildBatchResultDoc(spec BatchSpec, cells []BatchResultCell) ([]byte, error) {
	return json.Marshal(BatchResultDoc{
		SchemaVersion: batchSchemaVersion,
		Designs:       spec.Designs,
		Workloads:     spec.Workloads,
		Traces:        spec.Traces,
		Cells:         cells,
	})
}

// BatchEvent is one multiplexed progress record: a cell's event tagged
// with its matrix position.
type BatchEvent struct {
	Cell     int
	Design   string
	Workload string
	Trace    string
	Event    Event
}

// Subscribe merges every cell's replay-then-follow stream into one
// channel of position-tagged events, closed when all cells are
// terminal. The returned cancel func detaches all cell subscriptions.
// Forwarding goroutines block on the merged channel, never on the
// workers: per-cell subscriptions stay bounded and lag-marking, so a
// slow batch consumer can at worst lag its own stream.
func (b *Batch) Subscribe() (<-chan BatchEvent, func()) {
	out := make(chan BatchEvent, subscriberBuffer)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range b.Cells {
		wg.Add(1)
		go func(i int, c *BatchCell) {
			defer wg.Done()
			ch, unsub := c.Job.progressTarget().Subscribe()
			defer unsub()
			for {
				select {
				case ev, ok := <-ch:
					if !ok {
						return
					}
					select {
					case out <- BatchEvent{Cell: i, Design: c.Design, Workload: c.Workload, Trace: c.Trace, Event: ev}:
					case <-stop:
						return
					}
				case <-stop:
					return
				}
			}
		}(i, c)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	var once sync.Once
	return out, func() { once.Do(func() { close(stop) }) }
}
