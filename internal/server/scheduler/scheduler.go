// Package scheduler is the middle layer of the serving stack: queue
// admission, the bounded worker pool, per-job watchdogs, cooperative
// cancellation and drain, and the batch job DAG that expands a
// design×workload matrix into unique content-addressed cells, runs each
// unique cell exactly once, and fans results out to every parent batch.
//
// Job lifecycle: queued -> running -> done | failed | truncated. A
// submission whose key is already stored completes instantly
// (cache_hit); one whose key is already queued/running piggybacks on
// that job (deduped) without consuming a queue slot. A full queue
// rejects with ErrQueueFull, which the transport layer surfaces as
// HTTP 429 with an adaptive Retry-After hint.
//
// Layering: scheduler imports store (results, trace registry) and the
// simulation packages, and is imported by transport. It must never
// import net/http — an arch test enforces this.
package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ndpext/internal/server/result"
	"ndpext/internal/server/store"
	"ndpext/internal/simcache"
	"ndpext/internal/system"
	"ndpext/internal/trace"
	"ndpext/internal/workloads"
)

// Options configures a Scheduler. Zero values take the documented
// defaults.
type Options struct {
	// Workers bounds concurrent simulations; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; default 64. A full
	// queue is backpressure: submissions get ErrQueueFull.
	QueueDepth int
	// RetryAfter is the floor of the adaptive retry hint returned with
	// queue-full rejections; default 1s.
	RetryAfter time.Duration
	// RetryAfterMax clamps the adaptive retry hint; default 60s.
	RetryAfterMax time.Duration
	// MaxWall / MaxCycles are per-job watchdog defaults applied when a
	// spec does not set its own (0 disables).
	MaxWall   time.Duration
	MaxCycles int64
	// SimHook, when non-nil, runs at the top of every simulation on the
	// worker goroutine, inside the panic-recovery scope. It exists as the
	// chaos-injection seam: a hook that panics exercises exactly the
	// path a panicking simulation would.
	SimHook func(JobSpec)
	// OnStored, when non-nil, runs on the worker goroutine after a
	// freshly simulated document first enters the result store (cache
	// hits, piggybacks, and uncacheable outcomes excluded). The cluster
	// layer hooks successor replication here; implementations must not
	// block the worker — spawn a goroutine for anything slow.
	OnStored func(key simcache.Key, doc []byte)
	// IDPrefix namespaces job IDs ("j-" by default, yielding j-000001).
	// Cluster nodes set a per-node prefix so IDs never collide across
	// peers and a proxied lookup is unambiguous.
	IDPrefix string
	// Parallel >= 2 runs each simulation epoch-pipelined
	// (system.RunPipelinedContext). Only the byte-identical pipeline mode
	// is offered here: the content-addressed result cache requires every
	// execution mode behind a key to produce the same document, which the
	// golden parity suite proves for the pipeline and which shard mode's
	// statistical equivalence cannot promise.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.RetryAfterMax <= 0 {
		o.RetryAfterMax = 60 * time.Second
	}
	if o.RetryAfterMax < o.RetryAfter {
		o.RetryAfterMax = o.RetryAfter
	}
	if o.IDPrefix == "" {
		o.IDPrefix = "j-"
	}
	return o
}

// Scheduler is the simulation-scheduling engine, independent of HTTP
// wiring (the transport layer attaches routes; tests drive it
// directly).
type Scheduler struct {
	opt    Options
	st     *store.Store
	traces *store.TraceRegistry

	// genTraces dedupes generated workload traces across jobs whose
	// workload parameters and unit counts agree.
	genTraces *simcache.Cache[*workloads.Trace]

	queue chan *Job

	mu         sync.Mutex
	accepting  bool
	jobs       map[string]*Job
	order      []string              // submission order, for listing
	active     map[simcache.Key]*Job // queued/running leaders by key
	batches    map[string]*Batch
	batchOrder []string
	nextID     int
	nextBatch  int

	wg        sync.WaitGroup
	runCtx    context.Context // canceled to checkpoint running sims
	runCancel context.CancelFunc

	simsRun   atomic.Uint64 // simulations actually executed
	rejected  atomic.Uint64 // submissions bounced with queue-full
	meanNanos atomic.Uint64 // EWMA of completed job durations (ns)
	panics    atomic.Uint64 // worker panics recovered into failed jobs

	// testJobStarted, when non-nil, is invoked at the top of runJob —
	// tests use it to hold a worker and fill the queue deterministically.
	testJobStarted func(*Job)
}

// New builds a scheduler on top of a result store and (optionally
// disabled) trace registry. Call Start to launch the workers.
func New(st *store.Store, traces *store.TraceRegistry, opt Options) *Scheduler {
	opt = opt.withDefaults()
	if traces == nil {
		traces = store.NewTraceRegistry("")
	}
	runCtx, runCancel := context.WithCancel(context.Background())
	return &Scheduler{
		opt:       opt,
		st:        st,
		traces:    traces,
		genTraces: simcache.New[*workloads.Trace](32, 0),
		queue:     make(chan *Job, opt.QueueDepth),
		accepting: true,
		jobs:      make(map[string]*Job),
		active:    make(map[simcache.Key]*Job),
		batches:   make(map[string]*Batch),
		runCtx:    runCtx,
		runCancel: runCancel,
	}
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	for i := 0; i < s.opt.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
}

// ErrQueueFull is returned by Submit when backpressure applies.
var ErrQueueFull = errors.New("scheduler: job queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("scheduler: draining, not accepting jobs")

// prepare validates and keys one spec, returning an unregistered job
// ready for admission.
func (s *Scheduler) prepare(spec JobSpec) (*Job, error) {
	spec = spec.normalize()
	cfg, err := spec.build(s.opt.MaxWall, s.opt.MaxCycles)
	if err != nil {
		return nil, err
	}
	var digest string
	if spec.Trace != "" {
		// Digest the trace now, at admission: the key must name the
		// bytes the job will replay, and a file swapped mid-queue must
		// not silently serve a stale cached result.
		digest, err = s.traces.Digest(spec.Trace)
		if err != nil {
			return nil, err
		}
	}
	return newJob(spec.key(cfg, digest), spec, cfg), nil
}

// KeyFor validates and normalizes spec and returns its content
// address — the SHA-256 the job would be cached and deduplicated
// under — without admitting anything. The cluster router keys every
// submission here to decide which peer owns it; because normalization
// and trace digesting run exactly as in Submit, the routing key and the
// execution key can never disagree.
func (s *Scheduler) KeyFor(spec JobSpec) (simcache.Key, error) {
	job, err := s.prepare(spec)
	if err != nil {
		return simcache.Key{}, err
	}
	return job.Key, nil
}

// Cached reports whether the result store already holds key, without
// touching recency or stats. The cluster router serves replicated
// entries locally instead of forwarding to a (possibly dead) owner.
func (s *Scheduler) Cached(key simcache.Key) bool { return s.st.Contains(key) }

// InstallResult stores a canonical result document computed elsewhere
// under its content address — the receiving half of cluster
// replication. The document must be valid JSON; the key is trusted to
// be its content address (peers compute keys from the same canonical
// inputs, so a correct peer cannot disagree).
func (s *Scheduler) InstallResult(keyHex string, doc []byte) error {
	key, err := simcache.ParseKey(keyHex)
	if err != nil {
		return err
	}
	if !json.Valid(doc) {
		return fmt.Errorf("scheduler: replicated document for %s is not valid JSON", keyHex)
	}
	s.st.Put(key, doc)
	return nil
}

// Submit validates, keys, and admits one job. The fast paths — result
// already stored, or an identical job already in flight — never consume
// a queue slot; otherwise the job is enqueued or, when the queue is
// full, rejected with ErrQueueFull.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	job, err := s.prepare(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.accepting {
		return nil, ErrDraining
	}
	if err := s.admitLocked(job); err != nil {
		return nil, err
	}
	return job, nil
}

// admitLocked assigns an ID and admits one prepared job: store hit,
// piggyback on an identical in-flight leader, or a fresh queue slot.
// Caller holds s.mu.
func (s *Scheduler) admitLocked(job *Job) error {
	s.nextID++
	job.ID = fmt.Sprintf("%s%06d", s.opt.IDPrefix, s.nextID)

	if doc, ok := s.st.Get(job.Key); ok {
		// Content-addressed hit: done before it ever queued.
		job.cacheHit = true
		s.register(job)
		job.finish(stateForDoc(doc), doc, "")
		return nil
	}
	if leader, ok := s.active[job.Key]; ok {
		// Identical job already in flight: piggyback, costing nothing.
		job.leader = leader
		job.deduped = true
		s.register(job)
		leader.mu.Lock()
		leader.followers = append(leader.followers, job)
		leader.mu.Unlock()
		job.publish(Event{Type: "state", Data: map[string]string{
			"state": string(StateQueued), "piggyback_on": leader.ID}})
		return nil
	}
	select {
	case s.queue <- job:
	default:
		s.nextID-- // the ID was never exposed
		s.rejected.Add(1)
		return ErrQueueFull
	}
	s.active[job.Key] = job
	s.register(job)
	job.publish(Event{Type: "state", Data: map[string]string{"state": string(StateQueued)}})
	return nil
}

// register records the job for lookup/listing. Caller holds s.mu.
func (s *Scheduler) register(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
}

// Job returns a job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// SimsRun counts simulations actually executed (store hits and
// piggybacked submissions excluded) — the denominator for verifying
// deduplication.
func (s *Scheduler) SimsRun() uint64 { return s.simsRun.Load() }

// CacheStats exposes the result store counters.
func (s *Scheduler) CacheStats() simcache.Stats { return s.st.Stats() }

// QueueDepth returns (queued, capacity).
func (s *Scheduler) QueueDepth() (int, int) { return len(s.queue), cap(s.queue) }

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.opt.Workers }

// Rejected counts submissions bounced by backpressure.
func (s *Scheduler) Rejected() uint64 { return s.rejected.Load() }

// Traces returns the trace registry (disabled, never nil).
func (s *Scheduler) Traces() *store.TraceRegistry { return s.traces }

// PanicsRecovered counts worker panics recovered into failed jobs
// (surfaced on /healthz; the process survived every one of them).
func (s *Scheduler) PanicsRecovered() uint64 { return s.panics.Load() }

// IndexQuarantines counts corrupt warm-restart indexes quarantined at
// store open.
func (s *Scheduler) IndexQuarantines() uint64 { return s.st.IndexQuarantines() }

// TraceQuarantines counts trace digests quarantined after corrupt
// replays.
func (s *Scheduler) TraceQuarantines() uint64 { return s.traces.Quarantines() }

// observeDuration folds one completed job's wall time into the EWMA
// that drives the adaptive Retry-After hint.
func (s *Scheduler) observeDuration(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := s.meanNanos.Load()
		next := uint64(d)
		if old != 0 {
			next = uint64(0.8*float64(old) + 0.2*float64(d))
		}
		if s.meanNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterFor derives the backpressure hint: the time for the current
// backlog to drain through the worker pool at the recent mean job
// duration, clamped to [floor, max]. With no duration samples yet the
// floor applies.
func retryAfterFor(queued, workers int, mean time.Duration, floor, max time.Duration) time.Duration {
	hint := floor
	if mean > 0 && queued > 0 && workers > 0 {
		est := time.Duration(math.Ceil(float64(queued) * float64(mean) / float64(workers)))
		if est > hint {
			hint = est
		}
	}
	if hint > max {
		hint = max
	}
	return hint
}

// RetryAfterHint is the adaptive Retry-After for queue-full rejections:
// queue depth × recent mean job duration / workers, clamped between
// Options.RetryAfter and Options.RetryAfterMax.
func (s *Scheduler) RetryAfterHint() time.Duration {
	return retryAfterFor(len(s.queue), s.opt.Workers,
		time.Duration(s.meanNanos.Load()), s.opt.RetryAfter, s.opt.RetryAfterMax)
}

// errNotCacheable marks outcomes that must not enter the result store:
// wall-clock truncation (nondeterministic) and drain checkpoints.
var errNotCacheable = errors.New("scheduler: result not cacheable")

// ErrPanicked marks a job whose simulation panicked. The worker
// recovered, the job failed with the stack in its error, and the
// process kept serving — a poison spec can be resubmitted (errors are
// never cached) and will fail again the same way.
var ErrPanicked = errors.New("scheduler: simulation panicked (recovered)")

// stateForDoc distinguishes done from truncated for a (possibly
// cached) result document.
func stateForDoc(doc []byte) State {
	if result.Truncated(doc) {
		return StateTruncated
	}
	return StateDone
}

// runJob executes one leader job on the calling worker. A panic
// anywhere in the run is the job's failure, never the process's: the
// inner recover (inside the singleflight fn) converts it to an error so
// waiters resolve and nothing poisons the store; the outer recover is
// belt-and-braces for panics outside that scope, releasing the key and
// failing the job and its followers so the worker goroutine survives.
func (s *Scheduler) runJob(job *Job) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		s.panics.Add(1)
		errMsg := fmt.Sprintf("%v: %v\n\n%s", ErrPanicked, p, debug.Stack())
		s.mu.Lock()
		delete(s.active, job.Key)
		job.mu.Lock()
		followers := append([]*Job(nil), job.followers...)
		job.mu.Unlock()
		s.mu.Unlock()
		job.finish(StateFailed, nil, errMsg) // idempotent if already terminal
		for _, f := range followers {
			f.finish(StateFailed, nil, errMsg)
		}
	}()
	if s.testJobStarted != nil {
		s.testJobStarted(job)
	}
	job.setRunning()

	doc, cached, err := s.st.Do(job.Key, func() (doc []byte, err error) {
		defer func() {
			if p := recover(); p != nil {
				// Recover here, inside the singleflight fn: the key
				// resolves cleanly (errors are shared with waiters and
				// never cached), so piggybacked followers fail with the
				// same diagnostic and a resubmission retries for real.
				s.panics.Add(1)
				doc = nil
				err = fmt.Errorf("%w: %v\n\n%s", ErrPanicked, p, debug.Stack())
			}
		}()
		return s.simulate(job)
	})
	if err == nil && !cached && s.opt.OnStored != nil {
		// A fresh document just entered the store; let the cluster layer
		// replicate it to the ring successor.
		s.opt.OnStored(job.Key, doc)
	}

	var state State
	var errMsg string
	switch {
	case err == nil:
		state = stateForDoc(doc)
	case errors.Is(err, errNotCacheable) || errors.Is(err, context.Canceled):
		// Checkpoint: a partial document exists, keep it with the job
		// even though it never enters the store.
		if doc != nil {
			state = StateTruncated
		} else {
			state, errMsg = StateFailed, err.Error()
		}
	default:
		state, errMsg, doc = StateFailed, err.Error(), nil
	}

	// Release the key and collect piggybackers before finishing, so a
	// new submission of the same key either sees the stored entry or
	// starts fresh — never a finished "leader".
	s.mu.Lock()
	delete(s.active, job.Key)
	job.mu.Lock()
	followers := append([]*Job(nil), job.followers...)
	job.mu.Unlock()
	s.mu.Unlock()

	job.finish(state, doc, errMsg)
	for _, f := range followers {
		f.finish(state, doc, errMsg)
	}
	s.observeDuration(job.duration())
}

// simulate runs the job's simulation, publishing progress events, and
// returns the canonical result document. Errors wrap errNotCacheable
// when the outcome is nondeterministic (wall truncation, cancellation).
func (s *Scheduler) simulate(job *Job) ([]byte, error) {
	s.simsRun.Add(1)
	if s.opt.SimHook != nil {
		s.opt.SimHook(job.Spec)
	}
	// Trace-backed jobs replay through a streaming source — memory stays
	// bounded at one decoded chunk per core however long the file is.
	// Generated workloads keep the materialized fast path.
	var (
		tr  *workloads.Trace
		src workloads.Source
	)
	if job.Spec.Trace != "" {
		path, err := s.traces.Resolve(job.Spec.Trace)
		if err != nil {
			return nil, err
		}
		r, err := trace.OpenFile(path)
		if err != nil {
			return nil, s.quarantineIfCorrupt(job.Spec.Trace, err)
		}
		defer r.Close()
		if job.cfg.Design != system.Host && r.Cores() != job.cfg.NumUnits() {
			return nil, fmt.Errorf("scheduler: trace %q has %d cores, machine has %d units",
				job.Spec.Trace, r.Cores(), job.cfg.NumUnits())
		}
		src, err = r.Source()
		if err != nil {
			return nil, s.quarantineIfCorrupt(job.Spec.Trace, err)
		}
	} else {
		var err error
		tr, err = s.genTrace(job.Spec)
		if err != nil {
			return nil, err
		}
	}
	cfg := job.cfg
	cfg.OnEpoch = func(ei system.EpochInfo) {
		job.live.Publish(ei.Counters)
		job.publish(Event{Type: "epoch", Data: EpochEvent{
			Epoch:          ei.Epoch,
			ActiveStreams:  ei.ActiveStreams,
			Reconfigured:   ei.Reconfigured,
			SamplerCovered: ei.SamplerCovered,
			Arm:            ei.Arm,
			ArmSwitched:    ei.ArmSwitched,
			Degraded:       ei.Degraded,
			Counters:       ei.Counters,
		}})
		if ei.Degraded || ei.RemappedStreams > 0 {
			job.publish(Event{Type: "fault", Data: FaultEvent{
				Epoch:           ei.Epoch,
				FailedUnits:     ei.FailedUnits,
				RemappedStreams: ei.RemappedStreams,
				Degraded:        ei.Degraded,
			}})
		}
	}
	// An optional per-job deadline nests inside the drain context: the
	// run checkpoints as truncated when it expires, exactly like a
	// drain cancellation. The deadline is deliberately NOT part of the
	// cache key — a run that finishes under it is byte-identical to one
	// without it, and a deadline-truncated result is never cached. (A
	// submission that piggybacks on an in-flight identical job rides
	// that job's deadline, not its own.)
	runCtx := s.runCtx
	if job.Spec.DeadlineMS > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, time.Duration(job.Spec.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	var res *system.Result
	var err error
	switch {
	case s.opt.Parallel >= 2 && src != nil:
		res, err = system.RunSourcePipelinedContext(runCtx, cfg, src)
	case s.opt.Parallel >= 2:
		res, err = system.RunPipelinedContext(runCtx, cfg, tr)
	case src != nil:
		res, err = system.RunSourceContext(runCtx, cfg, src)
	default:
		res, err = system.RunContext(runCtx, cfg, tr)
	}
	if err != nil {
		if job.Spec.Trace != "" && errors.Is(err, trace.ErrCorrupt) {
			// Mid-replay corruption (a CRC mismatch the admission-time
			// digest could not see): the partial result is built on bad
			// bytes — discard it, fail the job, and quarantine the
			// digest so the next submission is rejected at admission.
			return nil, s.quarantineIfCorrupt(job.Spec.Trace, err)
		}
		if res == nil {
			return nil, err
		}
		// Checkpoint (drain cancellation or deadline expiry): encode the
		// partial result but keep it out of the store.
		doc, encErr := result.Encode(res)
		if encErr != nil {
			return nil, encErr
		}
		return doc, fmt.Errorf("%w: %w", errNotCacheable, err)
	}
	doc, err := result.Encode(res)
	if err != nil {
		return nil, err
	}
	if res.Truncated && res.TruncateReason == "wall-clock limit exceeded" {
		// Wall truncation depends on machine speed; never cache it.
		return doc, fmt.Errorf("%w: %s", errNotCacheable, res.TruncateReason)
	}
	return doc, nil
}

// quarantineIfCorrupt marks the named trace's digest bad when err
// proves its bytes corrupt (trace.ErrCorrupt), so subsequent
// submissions are rejected at admission instead of replaying garbage.
// Non-corruption errors (missing file, cores mismatch, I/O) pass
// through unmarked — those are not the bytes' fault.
func (s *Scheduler) quarantineIfCorrupt(name string, err error) error {
	if !errors.Is(err, trace.ErrCorrupt) {
		return err
	}
	digest := s.traces.Quarantine(name, err)
	if digest == "" {
		return err
	}
	return fmt.Errorf("scheduler: trace %q quarantined (digest %s): %w", name, digest, err)
}

// genTrace builds (or reuses) the workload trace for a spec. Distinct
// machine configs share traces when their workload parameters and unit
// counts agree; each use gets a Clone so runs stay independent.
func (s *Scheduler) genTrace(spec JobSpec) (*workloads.Trace, error) {
	d, err := system.ParseDesign(spec.Design)
	if err != nil {
		return nil, err
	}
	cores := system.DefaultConfig(system.NDPExt).NumUnits()
	if d != system.Host {
		cores = system.DefaultConfig(d).NumUnits()
	}
	key := simcache.Sum(spec.workloadCanon(""), []byte(fmt.Sprintf("cores=%d", cores)))
	tr, _, err := s.genTraces.Do(key, func() (*workloads.Trace, error) {
		gen, err := workloads.Get(spec.Workload)
		if err != nil {
			return nil, err
		}
		sc := workloads.DefaultScale()
		sc.AccessesPerCore = spec.Accesses
		sc.Mult = spec.Scale
		return gen(cores, spec.Seed, sc)
	})
	if err != nil {
		return nil, err
	}
	return tr.Clone(), nil
}

// Drain gracefully shuts the engine down: stop accepting submissions,
// let the workers finish every queued and running job, then persist the
// result-store index. If ctx expires first, running simulations are
// canceled — they checkpoint partial results and finish as truncated —
// and Drain still waits for the workers to wind down before persisting.
// No accepted job is ever lost: every one reaches a terminal state.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := !s.accepting
	s.accepting = false
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.runCancel() // checkpoint running sims
		<-done
	}
	s.runCancel()

	return s.st.Persist()
}
