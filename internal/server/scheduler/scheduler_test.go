// Scheduler-layer tests drive the engine directly — no HTTP anywhere.
// A layering test in the transport package enforces that this package
// (tests included) never imports net/http.
package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ndpext/internal/server/result"
	"ndpext/internal/server/store"
	"ndpext/internal/system"
)

// fastSpec is a spec small enough to simulate in well under a second.
func fastSpec(seed uint64) JobSpec {
	return JobSpec{Workload: "pr", Seed: seed, Accesses: 1000}
}

func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
}

func newTestStore(t *testing.T, opt store.Options) *store.Store {
	t.Helper()
	st, err := store.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newTestScheduler(t *testing.T, opt Options) *Scheduler {
	t.Helper()
	s := New(newTestStore(t, store.Options{}), nil, opt)
	s.Start()
	return s
}

// TestDedupSixteenSubmissionsFourSims is the headline engine property:
// 16 concurrent submissions spanning 4 distinct configs must finish
// with exactly 4 simulations executed — every duplicate is served by
// the result store or piggybacks on the identical in-flight job.
func TestDedupSixteenSubmissionsFourSims(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 4, QueueDepth: 32})
	defer s.Drain(context.Background())

	var (
		mu   sync.Mutex
		jobs []*Job
		wg   sync.WaitGroup
	)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(fastSpec(uint64(i%4) + 1))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			jobs = append(jobs, j)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(jobs) != 16 {
		t.Fatalf("accepted %d of 16 submissions", len(jobs))
	}
	leaders := 0
	for _, j := range jobs {
		waitJob(t, j)
		st := j.Status()
		if st.State != StateDone {
			t.Errorf("job %s: state %s (err %q), want done", j.ID, st.State, st.Error)
		}
		if len(st.Result) == 0 {
			t.Errorf("job %s: no result document", j.ID)
		}
		if !st.CacheHit && !st.Deduped {
			leaders++
		}
	}
	if got := s.SimsRun(); got != 4 {
		t.Errorf("SimsRun = %d, want exactly 4", got)
	}
	if leaders != 4 {
		t.Errorf("%d jobs ran fresh (neither cache_hit nor deduped), want 4", leaders)
	}

	// Identical configs must produce byte-identical result documents.
	docs := map[uint64][]byte{}
	for _, j := range jobs {
		st := j.Status()
		seed := j.Spec.Seed
		if prev, ok := docs[seed]; ok {
			if !bytes.Equal(prev, st.Result) {
				t.Errorf("seed %d: result documents differ across duplicates", seed)
			}
		} else {
			docs[seed] = st.Result
		}
	}
}

// TestQueueFullBackpressure fills the queue behind a deliberately held
// worker and checks admission rejects with ErrQueueFull while
// duplicates of queued work still piggyback.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	s := New(newTestStore(t, store.Options{}), nil, Options{Workers: 1, QueueDepth: 1})
	s.testJobStarted = func(j *Job) {
		started <- j
		<-release
	}
	s.Start()
	defer func() {
		s.Drain(context.Background())
	}()

	// First job occupies the only worker...
	a, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	// ...second fills the single queue slot...
	b, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// ...third bounces.
	if _, err := s.Submit(fastSpec(3)); err != ErrQueueFull {
		t.Fatalf("Submit with full queue: err = %v, want ErrQueueFull", err)
	}
	if got := s.Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	// A duplicate of a queued job piggybacks instead of bouncing, even
	// with the queue full.
	dup, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatalf("duplicate of queued job: %v", err)
	}
	if !dup.Status().Deduped {
		t.Error("duplicate of queued job did not piggyback")
	}

	close(release)
	for _, j := range []*Job{a, b, dup} {
		waitJob(t, j)
		if st := j.State(); st != StateDone {
			t.Errorf("job %s finished %s, want done", j.ID, st)
		}
	}
}

// TestAdaptiveRetryAfter checks the backpressure hint formula: the
// floor with no samples or an empty queue, scaling with backlog and
// mean duration, clamped at the ceiling.
func TestAdaptiveRetryAfter(t *testing.T) {
	floor, max := time.Second, 60*time.Second
	for _, tc := range []struct {
		queued, workers int
		mean            time.Duration
		want            time.Duration
	}{
		{queued: 5, workers: 2, mean: 0, want: floor},                // no samples yet
		{queued: 0, workers: 2, mean: 10 * time.Second, want: floor}, // nothing queued
		{queued: 4, workers: 2, mean: 3 * time.Second, want: 6 * time.Second},
		{queued: 1, workers: 4, mean: 100 * time.Millisecond, want: floor}, // below floor
		{queued: 64, workers: 1, mean: 30 * time.Second, want: max},        // clamped
	} {
		got := retryAfterFor(tc.queued, tc.workers, tc.mean, floor, max)
		if got != tc.want {
			t.Errorf("retryAfterFor(q=%d w=%d mean=%v) = %v, want %v",
				tc.queued, tc.workers, tc.mean, got, tc.want)
		}
	}

	// End to end: completed jobs feed the EWMA, and the hint grows with
	// queue depth once the mean is known.
	s := newTestScheduler(t, Options{Workers: 1, QueueDepth: 8, RetryAfter: time.Millisecond})
	defer s.Drain(context.Background())
	if got := s.RetryAfterHint(); got != time.Millisecond {
		t.Errorf("hint before any job = %v, want the floor", got)
	}
	j, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if s.meanNanos.Load() == 0 {
		t.Error("completed job did not feed the duration EWMA")
	}
}

// TestLaggedSubscriber overflows a tiny subscriber buffer and checks
// the dropped run surfaces as an explicit "lagged" event instead of a
// silent gap — and that publishing never blocks.
func TestLaggedSubscriber(t *testing.T) {
	spec := fastSpec(1).normalize()
	cfg := mustBuild(t, spec)
	j := newJob(spec.key(cfg, ""), spec, cfg)

	ch, unsub := j.subscribeBuf(2)
	defer unsub()

	for i := 0; i < 10; i++ {
		j.publish(Event{Type: "epoch", Data: i}) // must never block
	}
	// Buffer held events 0 and 1; 2..9 (8 events) were dropped.
	for i := 0; i < 2; i++ {
		ev := <-ch
		if ev.Type != "epoch" {
			t.Fatalf("event %d: type %q, want epoch", i, ev.Type)
		}
	}
	// The next publish finds a free slot: the lagged marker goes first.
	j.publish(Event{Type: "epoch", Data: 10})
	ev := <-ch
	if ev.Type != "lagged" {
		t.Fatalf("after overflow: type %q, want lagged", ev.Type)
	}
	lag, ok := ev.Data.(LaggedEvent)
	if !ok || lag.Dropped != 8 {
		t.Fatalf("lagged payload = %#v, want Dropped=8", ev.Data)
	}
	ev = <-ch
	if ev.Type != "epoch" {
		t.Fatalf("after lagged marker: type %q, want the fresh epoch event", ev.Type)
	}

	// Replay still carries the complete history for a new subscriber.
	replay, unsub2 := j.Subscribe()
	defer unsub2()
	if got, want := len(replay), 11; got != want {
		t.Errorf("replay buffered %d events, want %d", got, want)
	}

	// A subscriber lagging at finish gets a best-effort lagged marker
	// before its channel closes.
	tiny, unsub3 := j.subscribeBuf(0)
	_ = unsub3
	j.publish(Event{Type: "epoch", Data: 11}) // replay full: dropped
	<-tiny                                    // free one slot: the marker is best-effort
	j.finish(StateDone, []byte(`{}`), "")
	var sawLagged bool
	for ev := range tiny {
		if ev.Type == "lagged" {
			sawLagged = true
		}
	}
	if !sawLagged {
		t.Error("lagging subscriber closed without a lagged marker")
	}
}

func mustBuild(t *testing.T, js JobSpec) system.Config {
	t.Helper()
	cfg, err := js.normalize().build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestDrainNoLostJobs submits a batch, immediately drains, and checks
// every accepted job still reaches a terminal state.
func TestDrainNoLostJobs(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 2, QueueDepth: 16})

	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(fastSpec(uint64(i) + 1))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if st := j.State(); !st.terminal() {
			t.Errorf("job %s lost in drain: state %s", j.ID, st)
		}
	}
	if _, err := s.Submit(fastSpec(1)); err != ErrDraining {
		t.Errorf("Submit after drain: err = %v, want ErrDraining", err)
	}
	if _, err := s.SubmitBatch(BatchSpec{Designs: []string{"NDPExt"}, Workloads: []string{"pr"}}); err != ErrDraining {
		t.Errorf("SubmitBatch after drain: err = %v, want ErrDraining", err)
	}
}

// TestDrainCheckpointsRunningJob forces the drain deadline to expire
// while a large job is mid-flight: the simulation must be canceled,
// checkpointed as truncated with a partial result, and never cached.
func TestDrainCheckpointsRunningJob(t *testing.T) {
	s := newTestScheduler(t, Options{Workers: 1, QueueDepth: 4})

	// Big enough to still be mid-flight when the drain fires; short
	// epochs so the first epoch event (our "simulation is live" signal)
	// arrives quickly.
	big := JobSpec{Workload: "pr", Seed: 1, Accesses: 150_000, EpochCycles: 20_000}
	j, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub := j.Subscribe()
	defer unsub()
	deadline := time.After(60 * time.Second)
	for live := false; !live; {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("job finished before the drain could interrupt it")
			}
			live = ev.Type == "epoch"
		case <-deadline:
			t.Fatal("no epoch event; simulation never got going")
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already expired: checkpoint immediately
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	st := j.Status()
	if st.State != StateTruncated {
		t.Fatalf("checkpointed job state = %s (err %q), want truncated", st.State, st.Error)
	}
	var doc result.Doc
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		t.Fatalf("partial result document: %v", err)
	}
	if !doc.Truncated || doc.TruncateReason != "canceled" {
		t.Errorf("partial doc truncated=%v reason=%q, want canceled", doc.Truncated, doc.TruncateReason)
	}
	if doc.Accesses == 0 {
		t.Error("checkpoint carries zero completed accesses")
	}
	if n := s.CacheStats().Entries; n != 0 {
		t.Errorf("canceled result entered the store (%d entries)", n)
	}
}

// TestPersistWarmRestart drains a scheduler with a populated store,
// then builds a fresh stack from the same index file and checks an
// identical submission is served instantly without simulating.
func TestPersistWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.json")

	s1 := New(newTestStore(t, store.Options{Path: path}), nil, Options{Workers: 2, QueueDepth: 8})
	s1.Start()
	j, err := s1.Submit(fastSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache index not persisted: %v", err)
	}

	s2 := New(newTestStore(t, store.Options{Path: path}), nil, Options{Workers: 2, QueueDepth: 8})
	s2.Start()
	defer s2.Drain(context.Background())
	j2, err := s2.Submit(fastSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2) // store hits are terminal at submit; this is instant
	st := j2.Status()
	if !st.CacheHit {
		t.Error("warm-restarted scheduler missed the persisted store entry")
	}
	if st.State != StateDone {
		t.Errorf("state = %s, want done", st.State)
	}
	if got := s2.SimsRun(); got != 0 {
		t.Errorf("warm restart ran %d simulations, want 0", got)
	}
	if !bytes.Equal(st.Result, j.Status().Result) {
		t.Error("persisted result differs from the original document")
	}
}

func TestJobSpecNormalizeAndKey(t *testing.T) {
	def := JobSpec{Workload: "pr"}.normalize()
	want := JobSpec{Workload: "pr", Design: "NDPExt", Mem: "hbm", Seed: 1,
		Accesses: 30000, Scale: 1, Reconfig: "full", FaultSeed: 1, BanditSeed: 1}
	if def != want {
		t.Errorf("normalize() = %+v, want %+v", def, want)
	}

	// An omitted field and its explicit default must address the same
	// cache entry.
	keyOf := func(js JobSpec) string {
		t.Helper()
		js = js.normalize()
		cfg, err := js.build(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return js.key(cfg, "").String()
	}
	if keyOf(JobSpec{Workload: "pr"}) != keyOf(want) {
		t.Error("defaulted and explicit specs hash differently")
	}
	base := keyOf(JobSpec{Workload: "pr"})
	for name, js := range map[string]JobSpec{
		"workload":  {Workload: "bfs"},
		"design":    {Workload: "pr", Design: "Nexus"},
		"mem":       {Workload: "pr", Mem: "hmc"},
		"seed":      {Workload: "pr", Seed: 2},
		"accesses":  {Workload: "pr", Accesses: 40000},
		"scale":     {Workload: "pr", Scale: 2},
		"reconfig":  {Workload: "pr", Reconfig: "partial"},
		"epoch":     {Workload: "pr", EpochCycles: 123456},
		"faults":    {Workload: "pr", Faults: "cxl-retry,rate=0.01"},
		"faultseed": {Workload: "pr", FaultSeed: 9},
		"maxcycles": {Workload: "pr", MaxCycles: 5_000_000},
	} {
		if keyOf(js) == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
}
