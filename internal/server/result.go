package server

import (
	"encoding/json"

	"ndpext/internal/system"
	"ndpext/internal/telemetry"
)

// resultSchemaVersion tags the result document layout.
const resultSchemaVersion = 1

// ResultDoc is the canonical machine-readable form of one simulation's
// outcome, shared verbatim by the serving layer's result cache, job
// responses, and `ndpsim -json`. Latencies are nanoseconds, energies
// picojoules.
type ResultDoc struct {
	SchemaVersion int    `json:"schema_version"`
	Design        string `json:"design"`
	Workload      string `json:"workload"`

	MakespanNS  float64 `json:"makespan_ns"`
	Accesses    uint64  `json:"accesses"`
	L1Hits      uint64  `json:"l1_hits"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`

	CacheHitRate      float64 `json:"cache_hit_rate"`
	AvgAccessNS       float64 `json:"avg_access_ns"`
	AvgInterconnectNS float64 `json:"avg_interconnect_ns"`
	SLBHitRate        float64 `json:"slb_hit_rate,omitempty"`
	MetaHitRate       float64 `json:"meta_hit_rate,omitempty"`

	BreakdownNS BreakdownDoc `json:"breakdown_ns"`
	EnergyPJ    EnergyDoc    `json:"energy_pj"`

	Reconfigs  int    `json:"reconfigs,omitempty"`
	Exceptions uint64 `json:"exceptions,omitempty"`

	Truncated      bool   `json:"truncated,omitempty"`
	TruncateReason string `json:"truncate_reason,omitempty"`

	// Metrics is the run's full telemetry registry as a flat object
	// (dotted names, sorted keys). Absent for the Host design.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// BreakdownDoc is the per-level latency attribution in nanoseconds,
// using the telemetry level names.
type BreakdownDoc struct {
	Core      float64 `json:"core"`
	Meta      float64 `json:"meta"`
	IntraNoC  float64 `json:"intra-noc"`
	InterNoC  float64 `json:"inter-noc"`
	CacheDRAM float64 `json:"dram"`
	Extended  float64 `json:"extended"`
}

// EnergyDoc is the Fig. 6 energy decomposition in picojoules.
type EnergyDoc struct {
	Static  float64 `json:"static"`
	NDPDram float64 `json:"ndp_dram"`
	ExtDram float64 `json:"ext_dram"`
	NoC     float64 `json:"noc"`
	CXLLink float64 `json:"cxl_link"`
	SRAM    float64 `json:"sram"`
	Total   float64 `json:"total"`
}

// NewResultDoc flattens a run result into the canonical document.
func NewResultDoc(res *system.Result) ResultDoc {
	doc := ResultDoc{
		SchemaVersion: resultSchemaVersion,
		Design:        res.Design.String(),
		Workload:      res.Workload,

		MakespanNS:  res.Time.NS(),
		Accesses:    res.Accesses,
		L1Hits:      res.L1Hits,
		CacheHits:   res.CacheHits,
		CacheMisses: res.CacheMisses,

		CacheHitRate:      res.CacheHitRate(),
		AvgAccessNS:       res.Breakdown.AvgAccessNS(),
		AvgInterconnectNS: res.AvgInterconnectNS(),
		SLBHitRate:        res.SLBHitRate,
		MetaHitRate:       res.MetaHitRate,

		BreakdownNS: BreakdownDoc{
			Core:      res.Breakdown.Core.NS(),
			Meta:      res.Breakdown.Meta.NS(),
			IntraNoC:  res.Breakdown.IntraNoC.NS(),
			InterNoC:  res.Breakdown.InterNoC.NS(),
			CacheDRAM: res.Breakdown.CacheDRAM.NS(),
			Extended:  res.Breakdown.Extended.NS(),
		},
		EnergyPJ: EnergyDoc{
			Static:  res.Energy.StaticPJ,
			NDPDram: res.Energy.NDPDramPJ,
			ExtDram: res.Energy.ExtDramPJ,
			NoC:     res.Energy.NoCPJ,
			CXLLink: res.Energy.CXLLinkPJ,
			SRAM:    res.Energy.SRAMPJ,
			Total:   res.Energy.Total(),
		},

		Reconfigs:  res.Reconfigs,
		Exceptions: res.Exceptions,

		Truncated:      res.Truncated,
		TruncateReason: res.TruncateReason,
	}
	if reg := res.Metrics(); reg != nil {
		doc.Metrics = make(map[string]any, len(reg.Names()))
		reg.Each(func(name string, v telemetry.Value) {
			switch v.Kind {
			case telemetry.KindUint:
				doc.Metrics[name] = v.U
			case telemetry.KindFloat:
				doc.Metrics[name] = v.F
			case telemetry.KindTime:
				doc.Metrics[name] = v.T.NS()
			}
		})
	}
	return doc
}

// EncodeResult renders the canonical JSON result document for res: one
// object, no indentation, object keys in Go's deterministic order
// (struct fields in declaration order, map keys sorted). Equal results
// encode to identical bytes, which is what makes the document
// content-addressable and diff-able across runs.
func EncodeResult(res *system.Result) ([]byte, error) {
	return json.Marshal(NewResultDoc(res))
}
