package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndpext/internal/trace"
)

// ErrTracesDisabled is returned by registry lookups when no trace
// directory was configured.
var ErrTracesDisabled = errors.New("store: trace jobs not enabled (no trace directory configured)")

// ErrTraceQuarantined marks a trace whose bytes were proven corrupt (a
// CRC mismatch or undecodable framing during a replay). Submissions
// naming a quarantined digest are rejected at admission — corrupt bytes
// stay corrupt, so re-running them only burns a worker. Rewriting the
// file with fresh bytes produces a new digest and lifts the quarantine.
var ErrTraceQuarantined = errors.New("store: trace quarantined (corrupt bytes)")

// TraceRegistry is the digest-keyed registry behind -trace-dir: it maps
// job-facing trace names to files confined under one directory and to
// the SHA-256 content digests that key their results. The name is the
// API surface; the directory is the trust boundary; the digest is the
// identity — a re-recorded file with different bytes never collides
// with stale cached results, however it is named.
type TraceRegistry struct {
	dir string

	mu      sync.Mutex
	digests map[string]digestEntry
	bad     map[string]string // digest -> first corruption diagnostic

	quarantines atomic.Uint64
}

// digestEntry caches one file's content digest, invalidated whenever
// the file's (size, mtime) fingerprint changes.
type digestEntry struct {
	size   int64
	mtime  time.Time
	digest string
}

// NewTraceRegistry builds a registry rooted at dir. An empty dir yields
// a disabled registry whose lookups return ErrTracesDisabled.
func NewTraceRegistry(dir string) *TraceRegistry {
	return &TraceRegistry{
		dir:     dir,
		digests: make(map[string]digestEntry),
		bad:     make(map[string]string),
	}
}

// Enabled reports whether trace-backed jobs are available.
func (r *TraceRegistry) Enabled() bool { return r != nil && r.dir != "" }

// Dir returns the registry root ("" when disabled).
func (r *TraceRegistry) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Resolve maps a trace name to its file path, rejecting anything that
// could escape the registry directory (absolute paths, "..", empty
// names).
func (r *TraceRegistry) Resolve(name string) (string, error) {
	if !r.Enabled() {
		return "", ErrTracesDisabled
	}
	// IsLocal accepts "." (the directory itself), which is never a
	// trace file; reject it alongside escapes.
	if name == "" || name == "." || !filepath.IsLocal(name) {
		return "", fmt.Errorf("store: trace name %q escapes the trace directory", name)
	}
	return filepath.Join(r.dir, name), nil
}

// Digest returns the SHA-256 content digest of the named trace file,
// computed at most once per (size, mtime) fingerprint. Submissions key
// their cache entries by this digest, so it must always name the bytes
// currently on disk — a rewritten file is re-hashed. A digest proven
// corrupt by an earlier replay fails with ErrTraceQuarantined so the
// submission is rejected at admission instead of burning a worker.
func (r *TraceRegistry) Digest(name string) (string, error) {
	digest, err := r.digest(name)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	reason, bad := r.bad[digest]
	r.mu.Unlock()
	if bad {
		return "", fmt.Errorf("store: trace %q (digest %s): %w: %s", name, digest, ErrTraceQuarantined, reason)
	}
	return digest, nil
}

// digest is Digest without the quarantine check — the path Quarantine
// itself uses to map a failing name back to the digest being marked.
func (r *TraceRegistry) digest(name string) (string, error) {
	path, err := r.Resolve(name)
	if err != nil {
		return "", err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("store: trace %q: %w", name, err)
	}
	r.mu.Lock()
	e, ok := r.digests[name]
	r.mu.Unlock()
	if ok && e.size == fi.Size() && e.mtime.Equal(fi.ModTime()) {
		return e.digest, nil
	}
	digest, err := trace.DigestFile(path)
	if err != nil {
		return "", fmt.Errorf("store: digesting trace %q: %w", name, err)
	}
	r.mu.Lock()
	r.digests[name] = digestEntry{size: fi.Size(), mtime: fi.ModTime(), digest: digest}
	r.mu.Unlock()
	return digest, nil
}

// Quarantine marks the named trace's current content digest as corrupt,
// recording cause as the diagnostic. Idempotent per digest: only the
// first call for a given digest counts, so N piggybacked jobs failing
// on the same bytes record one quarantine. Returns the digest marked
// ("" if the file can no longer be resolved or hashed — e.g. it was
// deleted mid-flight — in which case nothing is marked; there is no
// digest left to protect).
func (r *TraceRegistry) Quarantine(name string, cause error) string {
	digest, err := r.digest(name)
	if err != nil {
		return ""
	}
	reason := "corrupt bytes"
	if cause != nil {
		reason = cause.Error()
	}
	r.mu.Lock()
	_, already := r.bad[digest]
	if !already {
		r.bad[digest] = reason
	}
	r.mu.Unlock()
	if !already {
		r.quarantines.Add(1)
	}
	return digest
}

// Quarantines counts distinct trace digests quarantined since startup
// (surfaced on /healthz).
func (r *TraceRegistry) Quarantines() uint64 {
	if r == nil {
		return 0
	}
	return r.quarantines.Load()
}

// TraceInfo describes one registered trace file.
type TraceInfo struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	Digest string `json:"digest"`
}

// List enumerates the registry's native trace files (by extension),
// sorted by name, each with its content digest. Files that vanish or
// fail to hash mid-listing are skipped rather than failing the listing.
func (r *TraceRegistry) List() ([]TraceInfo, error) {
	if !r.Enabled() {
		return nil, ErrTracesDisabled
	}
	var out []TraceInfo
	err := filepath.WalkDir(r.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if !strings.HasSuffix(d.Name(), ".ndptrc") {
			return nil
		}
		rel, err := filepath.Rel(r.dir, path)
		if err != nil {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		digest, err := r.Digest(rel)
		if err != nil {
			return nil
		}
		out = append(out, TraceInfo{Name: rel, Bytes: fi.Size(), Digest: digest})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list traces: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
