// Package store is the persistence layer of the serving stack: the
// content-addressed result store (a simcache-backed map from canonical
// input hashes to canonical result documents, with warm-restart index
// persistence) and the digest-keyed trace registry behind -trace-dir.
//
// Layering: store sits at the bottom of the serving stack. It may be
// imported by the scheduler and transport layers but imports neither,
// and it must never import net/http — an arch test enforces this.
package store

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"ndpext/internal/simcache"
)

// Options configures a Store. Zero values take the documented defaults.
type Options struct {
	// Entries bounds the result store; default 1024 (LRU beyond that).
	Entries int
	// TTL expires stored results; default 0 (never).
	TTL time.Duration
	// Path, when set, persists the index there on Persist and
	// warm-loads it in Open.
	Path string
	// Logf receives loud operational messages (index quarantine).
	// Default log.Printf; tests inject a recorder.
	Logf func(format string, args ...any)
}

// Store is the content-addressed result store: canonical result
// documents keyed by the SHA-256 of their job's canonical inputs.
// All methods are safe for concurrent use.
type Store struct {
	opt     Options
	results *simcache.Cache[[]byte]

	quarantines     atomic.Uint64 // corrupt warm-restart indexes quarantined
	quarantinedPath string        // where the last corrupt index went
}

// Open builds a store and warm-loads the index from Options.Path if it
// exists (a missing file is a cold start, not an error). A corrupt or
// unreadable index must not brick the server: it is quarantined —
// renamed to <path>.corrupt-<n> for offline inspection — logged loudly,
// and the store starts cold. The next Persist writes a fresh, clean
// index to the original path.
func Open(opt Options) (*Store, error) {
	if opt.Entries <= 0 {
		opt.Entries = 1024
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	s := &Store{opt: opt, results: simcache.New[[]byte](opt.Entries, opt.TTL)}
	if opt.Path != "" {
		if _, err := simcache.LoadFile(s.results, opt.Path); err != nil {
			qpath, qerr := quarantineFile(opt.Path)
			if qerr != nil {
				return nil, fmt.Errorf("store: warm-load index: %v (and quarantine failed: %w)", err, qerr)
			}
			// A partial load may have populated the cache before the
			// decoder tripped; drop everything — quarantine means cold.
			s.results = simcache.New[[]byte](opt.Entries, opt.TTL)
			s.quarantines.Add(1)
			s.quarantinedPath = qpath
			opt.Logf("QUARANTINE: warm-restart index %s is corrupt (%v); moved to %s, starting cold",
				opt.Path, err, qpath)
		}
	}
	return s, nil
}

// quarantineFile renames path to the first free <path>.corrupt-<n> so a
// corrupt index is preserved for inspection without blocking startup.
func quarantineFile(path string) (string, error) {
	for n := 1; ; n++ {
		q := fmt.Sprintf("%s.corrupt-%d", path, n)
		if _, err := os.Lstat(q); err == nil {
			continue
		} else if !os.IsNotExist(err) {
			return "", err
		}
		if err := os.Rename(path, q); err != nil {
			return "", err
		}
		return q, nil
	}
}

// Get returns the stored document for k, bumping its recency.
func (s *Store) Get(k simcache.Key) ([]byte, bool) { return s.results.Get(k) }

// Put stores a document computed elsewhere under its content address —
// the landing point for cluster replication. Like every entry, it is
// subject to LRU eviction and TTL expiry.
func (s *Store) Put(k simcache.Key, doc []byte) { s.results.Put(k, doc) }

// Contains reports residency without touching recency or stats.
func (s *Store) Contains(k simcache.Key) bool { return s.results.Contains(k) }

// Do returns the stored document for k, or computes it with fn exactly
// once across concurrent callers (singleflight); errors are not stored.
func (s *Store) Do(k simcache.Key, fn func() ([]byte, error)) ([]byte, bool, error) {
	return s.results.Do(k, fn)
}

// Stats returns the result store's activity counters.
func (s *Store) Stats() simcache.Stats { return s.results.Stats() }

// Persist writes the index to Options.Path atomically; a store opened
// without a path persists nothing.
func (s *Store) Persist() error {
	if s.opt.Path == "" {
		return nil
	}
	if err := simcache.SaveFile(s.results, s.opt.Path); err != nil {
		return fmt.Errorf("store: persist index: %w", err)
	}
	return nil
}

// Path returns the index path ("" when persistence is disabled).
func (s *Store) Path() string { return s.opt.Path }

// IndexQuarantines counts corrupt warm-restart indexes quarantined at
// Open (0 or 1 per process; surfaced on /healthz).
func (s *Store) IndexQuarantines() uint64 { return s.quarantines.Load() }

// QuarantinedPath returns where the corrupt index was moved ("" when
// the last Open loaded cleanly).
func (s *Store) QuarantinedPath() string { return s.quarantinedPath }
