package store

import (
	"bytes"
	"testing"
)

// TestPutInstallsWithoutComputing: Put (the cluster replication
// landing point) makes a document visible to Get/Contains and lets a
// later Do serve it without running its compute function.
func TestPutInstallsWithoutComputing(t *testing.T) {
	s, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := key("replicated-cell")
	doc := []byte(`{"schema_version":1,"from":"peer"}`)

	if s.Contains(k) {
		t.Fatal("fresh store contains the key")
	}
	s.Put(k, doc)
	if !s.Contains(k) {
		t.Fatal("Put did not install the document")
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, doc) {
		t.Fatalf("Get after Put = %q ok=%v", got, ok)
	}

	// Do must treat the installed document as authoritative.
	computed := false
	got, cached, err := s.Do(k, func() ([]byte, error) {
		computed = true
		return []byte(`{"recomputed":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if computed || !cached || !bytes.Equal(got, doc) {
		t.Fatalf("Do after Put: computed=%v cached=%v doc=%s", computed, cached, got)
	}

	// Put overwrites: last write wins, as a re-replicated newer result
	// must replace an older copy.
	doc2 := []byte(`{"schema_version":1,"from":"peer2"}`)
	s.Put(k, doc2)
	if got, _ := s.Get(k); !bytes.Equal(got, doc2) {
		t.Fatalf("second Put did not overwrite: %s", got)
	}
}
